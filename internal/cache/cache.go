// Package cache implements the set-associative cache models of the
// memory hierarchy (Table 1): a write-through, no-allocate L1 per SM and
// a write-back, write-allocate shared L2, both with a bounded number of
// MSHRs that merge secondary misses and exert backpressure when full.
package cache

import (
	"fmt"
	"sort"

	"gpues/internal/clock"
	"gpues/internal/obs"
)

// Backend is the next level below a cache (another cache or DRAM).
type Backend interface {
	// Fetch requests a line; done runs when the data is available.
	// A false return means the level cannot accept the request now and
	// the caller must retry.
	Fetch(addr uint64, done func()) bool
	// Write hands a line of store traffic downstream; done runs when
	// the write has been accepted (used for bandwidth accounting, not
	// for store completion).
	Write(addr uint64, done func()) bool
}

// WritePolicy selects how stores are handled.
type WritePolicy uint8

const (
	// WriteThrough (L1): stores update the line if present and always
	// forward downstream; misses do not allocate.
	WriteThrough WritePolicy = iota
	// WriteBack (L2): stores allocate and dirty the line; dirty victims
	// are written downstream on eviction.
	WriteBack
)

// Stats counts cache events.
type Stats struct {
	Hits       int64
	Misses     int64
	MSHRMerges int64
	Rejects    int64 // accesses refused because MSHRs were full
	WriteBacks int64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   int64
}

// mshr tracks one outstanding miss. MSHRs are pooled per cache: the
// waiters slice capacity and the two prebuilt closures (the delayed
// fetch issue and the fill completion) survive reuse, so a steady
// stream of misses allocates nothing.
type mshr struct {
	addr    uint64
	waiters []func()
	born    int64 // cycle the miss was allocated (leak detection)

	issueFn func() // issueFetch(m); also the downstream-full retry
	fillFn  func() // fill(m) — the downstream fetch completion
	next    *mshr  // free list
}

// Config sizes a cache.
type Config struct {
	Name    string
	SizeKB  int
	Ways    int
	LineB   int
	MSHRs   int
	Latency int64
	Policy  WritePolicy
}

// Cache is one cache level. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  int
	lines [][]line // [set][way]
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip wiring to the lower level, rebuilt by the harness before restore
	next  Backend
	mshrs map[uint64]*mshr // keyed by line address
	//simlint:ckptskip free list of recycled MSHRs, a pure allocation cache; an empty list after restore is correct
	pool  *mshr // free list of recycled MSHRs
	stats Stats
	tick  int64 // LRU clock
	//simlint:ckptskip retry closures; SaveState digests the count and replay rebuilds the population
	waiters []func()
}

// freeNotifier is implemented by levels that can call back when miss
// resources free up, avoiding per-cycle retry polling.
type freeNotifier interface{ OnFree(func()) }

// OnFree registers fn to run when an MSHR is released. Rejected callers
// use this instead of polling; fn typically retries the access and
// re-registers if still rejected.
func (c *Cache) OnFree(fn func()) { c.waiters = append(c.waiters, fn) }

// release drains waiters while miss resources are available.
func (c *Cache) release() {
	for len(c.waiters) > 0 && len(c.mshrs) < c.cfg.MSHRs {
		fn := c.waiters[0]
		c.waiters = c.waiters[1:]
		fn()
	}
}

// New builds a cache over the backend.
func New(cfg Config, q *clock.Queue, next Backend) (*Cache, error) {
	if cfg.LineB <= 0 || cfg.LineB&(cfg.LineB-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineB)
	}
	if cfg.Ways <= 0 || cfg.SizeKB <= 0 {
		return nil, fmt.Errorf("cache %s: bad geometry %d KB / %d ways", cfg.Name, cfg.SizeKB, cfg.Ways)
	}
	total := cfg.SizeKB * 1024 / cfg.LineB
	sets := total / cfg.Ways
	if sets == 0 {
		return nil, fmt.Errorf("cache %s: fewer lines (%d) than ways (%d)", cfg.Name, total, cfg.Ways)
	}
	ls := make([][]line, sets)
	for i := range ls {
		ls[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		lines: ls,
		q:     q,
		next:  next,
		mshrs: make(map[uint64]*mshr),
	}, nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// RegisterMetrics exposes the cache's counters as gauges.
func (c *Cache) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".hits", func() int64 { return c.stats.Hits })
	reg.Gauge(prefix+".misses", func() int64 { return c.stats.Misses })
	reg.Gauge(prefix+".mshr_merges", func() int64 { return c.stats.MSHRMerges })
	reg.Gauge(prefix+".rejects", func() int64 { return c.stats.Rejects })
	reg.Gauge(prefix+".writebacks", func() int64 { return c.stats.WriteBacks })
}

// InFlight returns the number of occupied MSHRs.
func (c *Cache) InFlight() int { return len(c.mshrs) }

// CheckInvariants validates the cache's structural state: MSHR
// occupancy within capacity, and (when maxAge > 0) no outstanding miss
// older than maxAge cycles — a stuck MSHR is a leaked miss.
func (c *Cache) CheckInvariants(now, maxAge int64) []string {
	var v []string
	if len(c.mshrs) > c.cfg.MSHRs {
		v = append(v, fmt.Sprintf("%s: %d MSHRs in flight exceed capacity %d",
			c.cfg.Name, len(c.mshrs), c.cfg.MSHRs))
	}
	if maxAge > 0 {
		// Sorted addresses keep the violation report deterministic run
		// to run (map iteration order is randomised).
		addrs := make([]uint64, 0, len(c.mshrs))
		for addr := range c.mshrs {
			addrs = append(addrs, addr)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, addr := range addrs {
			if age := now - c.mshrs[addr].born; age > maxAge {
				v = append(v, fmt.Sprintf("%s: miss on line %#x outstanding for %d cycles (leak?)",
					c.cfg.Name, addr, age))
			}
		}
	}
	return v
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineB-1) }

func (c *Cache) find(addr uint64) (setIdx int, l *line) {
	tag := addr / uint64(c.cfg.LineB)
	set := int(tag % uint64(c.sets))
	for w := range c.lines[set] {
		ln := &c.lines[set][w]
		if ln.valid && ln.tag == tag {
			return set, ln
		}
	}
	return set, nil
}

// install places the line, evicting the LRU victim; a dirty victim is
// written back downstream (retrying until accepted).
func (c *Cache) install(addr uint64, dirty bool) {
	tag := addr / uint64(c.cfg.LineB)
	set := int(tag % uint64(c.sets))
	victim := &c.lines[set][0]
	for w := range c.lines[set] {
		ln := &c.lines[set][w]
		if !ln.valid {
			victim = ln
			break
		}
		if ln.lru < victim.lru {
			victim = ln
		}
	}
	if victim.valid && victim.dirty {
		c.stats.WriteBacks++
		victimAddr := victim.tag * uint64(c.cfg.LineB)
		c.sendWrite(victimAddr)
	}
	c.tick++
	*victim = line{tag: tag, valid: true, dirty: dirty, lru: c.tick}
}

// sendWrite forwards write traffic downstream, retrying on rejection.
func (c *Cache) sendWrite(addr uint64) {
	if c.next == nil {
		return
	}
	if !c.next.Write(addr, func() {}) {
		if fn, ok := c.next.(freeNotifier); ok {
			fn.OnFree(func() { c.sendWrite(addr) })
		} else {
			c.q.After(1, func() { c.sendWrite(addr) })
		}
	}
}

// Access performs a load (write=false) or store (write=true) of one
// coalesced request. done runs when the access completes from the
// caller's perspective. Returns false when the access cannot be
// accepted (MSHRs full) — the caller must retry.
func (c *Cache) Access(addr uint64, write bool, done func()) bool {
	addr = c.lineAddr(addr)
	if write {
		return c.accessWrite(addr, done)
	}
	return c.accessRead(addr, done)
}

func (c *Cache) accessRead(addr uint64, done func()) bool {
	_, ln := c.find(addr)
	if ln != nil {
		c.stats.Hits++
		c.tick++
		ln.lru = c.tick
		c.q.After(c.cfg.Latency, done)
		return true
	}
	if m, ok := c.mshrs[addr]; ok {
		c.stats.MSHRMerges++
		m.waiters = append(m.waiters, done)
		return true
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.stats.Rejects++
		return false
	}
	c.stats.Misses++
	m := c.allocMSHR(addr)
	m.waiters = append(m.waiters, done)
	c.mshrs[addr] = m
	// Tag lookup takes the access latency before the miss goes down.
	c.q.After(c.cfg.Latency, m.issueFn)
	return true
}

// allocMSHR takes an MSHR from the pool (or builds one, wiring its
// reusable closures) and resets its per-miss state.
func (c *Cache) allocMSHR(addr uint64) *mshr {
	m := c.pool
	if m == nil {
		m = &mshr{}
		m.issueFn = func() { c.issueFetch(m) }
		m.fillFn = func() { c.fill(m) }
	} else {
		c.pool = m.next
		m.next = nil
	}
	m.addr = addr
	m.born = c.q.Now()
	m.waiters = m.waiters[:0]
	return m
}

func (c *Cache) issueFetch(m *mshr) {
	if !c.next.Fetch(m.addr, m.fillFn) {
		if fn, okN := c.next.(freeNotifier); okN {
			fn.OnFree(m.issueFn)
		} else {
			c.q.After(1, m.issueFn)
		}
	}
}

// fill completes a miss: install the line, retire the MSHR, run the
// merged waiters in arrival order, then recycle. Recycling happens
// last so a waiter that immediately re-misses allocates a different
// node than the one still being drained.
func (c *Cache) fill(m *mshr) {
	c.install(m.addr, false)
	delete(c.mshrs, m.addr)
	for _, w := range m.waiters {
		w()
	}
	c.release()
	c.putMSHR(m)
}

// putMSHR returns a retired MSHR to the free list. Callers must drop
// every reference first: the next allocMSHR may hand it out again.
//
//simlint:releases 0
func (c *Cache) putMSHR(m *mshr) {
	m.waiters = m.waiters[:0]
	m.next = c.pool
	c.pool = m
}

func (c *Cache) accessWrite(addr uint64, done func()) bool {
	_, ln := c.find(addr)
	switch c.cfg.Policy {
	case WriteThrough:
		if ln != nil {
			c.stats.Hits++
			c.tick++
			ln.lru = c.tick
		} else {
			c.stats.Misses++
		}
		// The store completes locally (store buffer); traffic continues
		// downstream in the background.
		c.sendWrite(addr)
		c.q.After(c.cfg.Latency, done)
		return true
	default: // WriteBack
		if ln != nil {
			c.stats.Hits++
			c.tick++
			ln.lru = c.tick
			ln.dirty = true
		} else {
			// Write-allocate without fetch: the whole line is assumed
			// written (coalesced 128 B stores make this the common case).
			c.stats.Misses++
			c.install(addr, true)
		}
		c.q.After(c.cfg.Latency, done)
		return true
	}
}

// Fetch implements Backend, so a cache can back another cache (the L1s
// fetch their misses from the L2).
func (c *Cache) Fetch(addr uint64, done func()) bool {
	return c.accessRead(c.lineAddr(addr), done)
}

// Write implements Backend for downstream write traffic.
func (c *Cache) Write(addr uint64, done func()) bool {
	return c.accessWrite(c.lineAddr(addr), done)
}

// Flush writes back all dirty lines and invalidates the cache (used at
// kernel boundaries).
func (c *Cache) Flush() {
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if ln.valid && ln.dirty {
				c.stats.WriteBacks++
				c.sendWrite(ln.tag * uint64(c.cfg.LineB))
			}
			*ln = line{}
		}
	}
}
