// Command gpusim runs one benchmark kernel through the GPU timing
// simulator and prints its execution statistics.
//
// Examples:
//
//	gpusim -workload sgemm
//	gpusim -workload lbm -scheme replay-queue
//	gpusim -workload stencil -paging -switching -link pcie
//	gpusim -workload halloc-spree -lazy -local
//	gpusim -workload stencil -paging -switching -trace run.trace.json -trace-filter fault,switch,migrate,replay
//	gpusim -workload sgemm -metrics metrics.csv
//	gpusim -list
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpues"
	"gpues/internal/obsrv"
	"gpues/internal/prof"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available workloads and exit")
		workload  = flag.String("workload", "sgemm", "workload to run (see -list)")
		schemeStr = flag.String("scheme", "baseline", "pipeline scheme: baseline, wd-commit, wd-lastcheck, replay-queue, operand-log")
		scale     = flag.Int("scale", 1, "dataset scale factor")
		linkStr   = flag.String("link", "nvlink", "CPU-GPU interconnect: nvlink or pcie")
		paging    = flag.Bool("paging", false, "start data in CPU memory (on-demand paging)")
		lazy      = flag.Bool("lazy", false, "leave output/heap pages unallocated (lazy allocation)")
		switching = flag.Bool("switching", false, "enable thread block switching on fault (use case 1)")
		local     = flag.Bool("local", false, "handle allocation-only faults on the GPU (use case 2)")
		logKB     = flag.Int("log-kb", 16, "operand log size in KB (operand-log scheme)")
		maxCycles = flag.Int64("max-cycles", 0, "abort with a stall report after this many cycles (0 = default)")
		chaosLvl  = flag.Int("chaos-level", 0, "fault-injection level: 0 none, 1 timing noise, 2 transient faults, 3 fault storm")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection RNG seed (with -chaos-level)")
		verbose   = flag.Bool("v", false, "print per-SM statistics")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file after the run")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (.bin for the compact binary format); view in Perfetto")
		traceFlt  = flag.String("trace-filter", "", "comma-separated event kinds or groups to record (all, pipeline, stall, fault, replay, switch, migrate, local); empty records everything")
		metricsFn = flag.String("metrics", "", "write the metrics registry snapshot to this file (.csv for CSV, otherwise JSON)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "write a checkpoint into -checkpoint-dir every N cycles (0 = off)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for periodic and stall checkpoints")
		resume    = flag.String("resume", "", "resume from a checkpoint file, or from the latest checkpoint in a directory")
		digestAt  = flag.Int64("digest-at", 0, "run to this cycle (-1 = completion), print per-component state digests as JSON, and exit (the simbisect probe)")
		perturbFl = flag.String("perturb", "", "comma-separated cycle:component artificial state divergences (for exercising simbisect; see docs/checkpointing.md)")
		excepMode = flag.String("exception-mode", "precise", "device exception delivery: precise (drain and kill the faulting warp) or preemptible (squash the block via context save)")
		flipSeed  = flag.Int64("flip-seed", 0, "bit-flip injection seed (with -flip-rate)")
		flipRate  = flag.Float64("flip-rate", 0, "per-lane-instruction bit-flip probability in [0,1] (0 = off)")
		protectN  = flag.Int("protect-threads", 0, "shield the first N threads of every block from bit flips")
		workers   = flag.Int("workers", 1, "tick-phase worker goroutines (1 = sequential; any count is bit-identical)")
		sampleEv  = flag.Int64("sample-every", 0, "sample every registered metric into the telemetry series every N cycles (0 = off)")
		seriesFn  = flag.String("series", "", "write the sampled telemetry series to this file (.csv for CSV, otherwise NDJSON); needs -sample-every")
		httpAddr  = flag.String("http", "", "serve live introspection (/status, /metrics, /series, /trace/last, pprof) on this host:port")
		httpWait  = flag.Duration("http-linger", 0, "keep the -http server up this long after the run completes")
	)
	flag.Parse()
	digestMode := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "digest-at" {
			digestMode = true
		}
	})

	// Validate flag values up front, before any simulation work: a bad
	// value must fail fast with a clear message, not be silently ignored.
	if *chaosLvl < 0 || *chaosLvl > 3 {
		fmt.Fprintf(os.Stderr, "-chaos-level %d out of range [0,3]\n", *chaosLvl)
		os.Exit(2)
	}
	if *traceFlt != "" {
		if _, err := gpues.ParseTraceFilter(*traceFlt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	mode, err := gpues.ParseExcepMode(*excepMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *flipRate < 0 || *flipRate > 1 {
		fmt.Fprintf(os.Stderr, "-flip-rate %v outside [0,1]\n", *flipRate)
		os.Exit(2)
	}
	if *protectN < 0 {
		fmt.Fprintf(os.Stderr, "-protect-threads %d must be non-negative\n", *protectN)
		os.Exit(2)
	}
	if *flipSeed != 0 && *flipRate == 0 {
		fmt.Fprintln(os.Stderr, "-flip-seed needs -flip-rate > 0")
		os.Exit(2)
	}
	if *workers < 1 || *workers > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr, "-workers %d out of range [1,%d] (NumCPU)\n", *workers, runtime.NumCPU())
		os.Exit(2)
	}
	if *sampleEv < 0 {
		fmt.Fprintf(os.Stderr, "-sample-every %d must be non-negative (0 = sampling off)\n", *sampleEv)
		os.Exit(2)
	}
	if *seriesFn != "" && *sampleEv == 0 {
		fmt.Fprintln(os.Stderr, "-series needs -sample-every > 0")
		os.Exit(2)
	}
	if *httpAddr != "" {
		if err := obsrv.ValidateAddr(*httpAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *httpWait != 0 && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "-http-linger needs -http")
		os.Exit(2)
	}
	if *httpWait < 0 {
		fmt.Fprintf(os.Stderr, "-http-linger %v must be non-negative\n", *httpWait)
		os.Exit(2)
	}

	if *list {
		for _, suite := range []string{"parboil", "halloc", "sdk"} {
			fmt.Printf("%s:\n", suite)
			for _, name := range gpues.WorkloadNames(suite) {
				desc, _ := gpues.WorkloadDescription(name)
				fmt.Printf("  %-16s %s\n", name, desc)
			}
		}
		return
	}

	cfg := gpues.DefaultConfig()
	switch *schemeStr {
	case "baseline":
		cfg.Scheme = gpues.Baseline
	case "wd-commit":
		cfg.Scheme = gpues.WarpDisableCommit
	case "wd-lastcheck":
		cfg.Scheme = gpues.WarpDisableLastCheck
	case "replay-queue":
		cfg.Scheme = gpues.ReplayQueue
	case "operand-log":
		cfg.Scheme = gpues.OperandLog
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeStr)
		os.Exit(2)
	}
	switch *linkStr {
	case "nvlink":
		cfg.Link = gpues.NVLinkConfig()
	case "pcie":
		cfg.Link = gpues.PCIeConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown link %q\n", *linkStr)
		os.Exit(2)
	}
	cfg.SM.OperandLog.SizeKB = *logKB
	cfg.MaxCycles = *maxCycles
	cfg.Workers = *workers
	cfg.SampleEvery = *sampleEv
	cfg.DemandPaging = *paging
	cfg.Scheduler.Enabled = *switching
	cfg.Local.Enabled = *local
	cfg.Excep.Mode = mode
	cfg.Excep.Flip = gpues.FlipConfig{Seed: *flipSeed, Rate: *flipRate, ProtectThreads: *protectN}

	place := gpues.ResidentPlacement()
	switch {
	case *paging && *lazy:
		fmt.Fprintln(os.Stderr, "-paging and -lazy are mutually exclusive")
		os.Exit(2)
	case *paging:
		place = gpues.DemandPagingPlacement()
	case *lazy:
		place = gpues.LazyOutputPlacement()
	}
	if (*switching || cfg.DemandPaging || *lazy) && cfg.Scheme == gpues.Baseline {
		// Preemption requires a preemptible pipeline; warn but allow the
		// stall-on-fault baseline for comparison runs.
		if *switching {
			fmt.Fprintln(os.Stderr, "note: block switching needs a preemptible scheme; using replay-queue")
			cfg.Scheme = gpues.ReplayQueue
		}
	}
	if mode == gpues.ExcepPreemptible && !cfg.Scheme.Preemptible() {
		fmt.Fprintln(os.Stderr, "-exception-mode preemptible needs a preemptible scheme (see -scheme)")
		os.Exit(2)
	}

	spec, err := gpues.BuildWorkload(*workload, gpues.WorkloadParams{Scale: *scale, Placement: place})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if digestMode {
		if err := runDigestProbe(cfg, spec, *digestAt, *chaosLvl, *chaosSeed, *perturbFl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Tracing: build the tracer up front; writeTrace runs on every exit
	// path (the trace of a failed run is the most valuable one).
	var tracer *gpues.Tracer
	if *traceOut != "" {
		mask, err := gpues.ParseTraceFilter(*traceFlt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tracer = gpues.NewTracer(gpues.TracerOptions{Filter: mask})
	}
	writeTrace := func() {
		if tracer == nil {
			return
		}
		if err := writeTraceFile(tracer, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Live introspection: start the server before the run so /status is
	// reachable while the simulation ticks. The simulator publishes
	// snapshots at its sequential flush point; the server never touches
	// simulator state.
	var srv *obsrv.Server
	if *httpAddr != "" {
		srv = obsrv.New(*httpAddr)
		bound, err := srv.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving http://%s\n", bound)
		defer srv.Close()
	}
	linger := func() {
		if srv != nil && *httpWait > 0 {
			fmt.Fprintf(os.Stderr, "lingering %v on http://%s\n", *httpWait, srv.Addr())
			time.Sleep(*httpWait)
		}
	}

	stopProf, err := prof.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var res *gpues.Result
	if *chaosLvl > 0 {
		if *perturbFl != "" {
			fmt.Fprintln(os.Stderr, "-perturb needs -digest-at or a chaos-free run")
			os.Exit(2)
		}
		plan, err := gpues.ChaosPlanForLevel(*chaosLvl, *chaosSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt := gpues.ChaosRunOptions{
			Tracer:          tracer,
			CheckpointEvery: *ckptEvery,
			CheckpointDir:   *ckptDir,
			Resume:          *resume,
		}
		if srv != nil {
			// Assign only a live server: a typed-nil in the interface field
			// would pass the != nil check inside RunChaosOpts.
			opt.Telemetry = srv
		}
		cr, err := gpues.RunChaosOpts(cfg, spec, plan, opt)
		if err != nil {
			exitOnExcep(err, writeTrace)
			fmt.Fprintln(os.Stderr, err)
			writeTrace()
			os.Exit(1)
		}
		res = cr.Result
		fmt.Printf("chaos         level %d seed %d: %s\n", *chaosLvl, *chaosSeed, cr.Summary)
		fmt.Printf("fingerprint   %#016x (%d events, %d walk faults injected)\n",
			cr.Fingerprint, len(cr.Events), res.InjectedFaults)
		if cr.OracleOK() {
			fmt.Println("oracle        final memory matches functional re-execution")
		} else {
			fmt.Fprintf(os.Stderr, "oracle        MISMATCH: %d bytes diverge, first at %#x\n",
				len(cr.Mismatches), cr.Mismatches[0].Addr)
			stopProf()
			writeTrace()
			os.Exit(1)
		}
	} else {
		s, err := gpues.NewSimulator(cfg, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.AttachTracer(tracer)
		s.CheckpointEvery = *ckptEvery
		s.CheckpointDir = *ckptDir
		if srv != nil {
			s.SetTelemetrySink(srv, 0)
		}
		if err := applyPerturbs(s, *perturbFl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *resume != "" {
			path, err := gpues.ResolveCheckpoint(*resume)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := s.RestoreFile(path); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("resumed       from %s (cycle %d)\n", path, s.Cycle())
		}
		res, err = s.Run()
		if err != nil {
			exitOnExcep(err, writeTrace)
			fmt.Fprintln(os.Stderr, err)
			writeTrace()
			os.Exit(1)
		}
	}
	stopProf()
	if err := prof.WriteHeap(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeTrace()
	if *metricsFn != "" {
		if err := writeMetricsFile(res.Metrics, *metricsFn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *seriesFn != "" {
		if err := writeSeriesFile(res.Series, *seriesFn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("workload      %s (scale %d, %d blocks of %d threads)\n",
		*workload, *scale, spec.Launch.Blocks(), spec.Launch.ThreadsPerBlock())
	fmt.Printf("scheme        %v, link %v\n", cfg.Scheme, cfg.Link.Kind)
	fmt.Printf("cycles        %d (%.1f us at %.0f GHz)\n",
		res.Cycles, float64(res.Cycles)/1000/cfg.System.FrequencyGHz, cfg.System.FrequencyGHz)
	fmt.Printf("committed     %d warp instructions, IPC %.2f\n", res.Committed, res.IPC())
	if res.Flips > 0 {
		fmt.Printf("flips         %d architectural bit flips injected (seed %d, rate %g)\n",
			res.Flips, *flipSeed, *flipRate)
	}
	fmt.Printf("occupancy     %d-%d blocks/SM (mean %.1f)\n",
		res.OccupancyMin, res.Occupancy, res.OccupancyMean)
	fmt.Printf("L2            %d hits / %d misses, %d writebacks\n", res.L2.Hits, res.L2.Misses, res.L2.WriteBacks)
	fmt.Printf("L2 TLB        %d hits / %d misses\n", res.L2TLB.Hits, res.L2TLB.Misses)
	fmt.Printf("walks         %d (%d faulted)\n", res.Walks, res.WalkFaults)
	fmt.Printf("DRAM          %d reads / %d writes, %d stall cycles\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.StallCycles)
	if res.FaultUnit.Raised > 0 {
		fmt.Printf("faults        %d raised, %d regions (%d merged), max queue %d\n",
			res.FaultUnit.Raised, res.FaultUnit.Regions, res.FaultUnit.Merged, res.FaultUnit.MaxQueue)
		fmt.Printf("routing       %d to CPU, %d to GPU-local handler\n",
			res.FaultUnit.RoutedCPU, res.FaultUnit.RoutedLocal)
		fmt.Printf("link          %.1f%% utilized\n", 100*res.LinkUtil)
	}
	var sq, rp, out, in int64
	for _, s := range res.SMs {
		sq += s.Squashed
		rp += s.Replays
		out += s.SwitchesOut
		in += s.SwitchesIn
	}
	if sq > 0 {
		fmt.Printf("preemption    %d squashed, %d replayed\n", sq, rp)
	}
	if out > 0 {
		fmt.Printf("switching     %d blocks out, %d restored\n", out, in)
	}
	if st := res.Stalls.Total(); st > 0 {
		fmt.Printf("stalls        ")
		first := true
		for r := gpues.StallReasonFirst; r < gpues.StallReasonCount; r++ {
			if res.Stalls[r] == 0 {
				continue
			}
			if !first {
				fmt.Printf(", ")
			}
			fmt.Printf("%s=%d", r, res.Stalls[r])
			first = false
		}
		fmt.Println()
	}
	if fl, ok := res.Metrics.Histograms["fault.latency_cycles"]; ok && fl.Count > 0 {
		fmt.Printf("fault latency mean %.0f cycles, p50 %d, p99 %d (%d regions)\n",
			fl.Mean, fl.P50, fl.P99, fl.Count)
	}
	if *verbose {
		fmt.Println("\nper-SM:")
		for i, s := range res.SMs {
			fmt.Printf("  SM%-2d committed=%8d active=%6.1f%% faults=%4d switches=%d/%d\n",
				i, s.Committed, 100*float64(s.ActiveCycles)/float64(s.Cycles),
				s.Faults, s.SwitchesOut, s.SwitchesIn)
		}
	}
	linger()
}

// exitOnExcep prints a device exception's structured records — the
// stack-trace report CI compares against golden files — and exits with
// status 3, distinct from the generic failure status 1 so callers can
// tell a caught device exception from a simulator failure. A non-
// exception error returns without acting.
func exitOnExcep(err error, flush func()) {
	var ee *gpues.ExcepError
	if !errors.As(err, &ee) {
		return
	}
	fmt.Fprintln(os.Stderr, err)
	for _, r := range ee.Records {
		fmt.Fprintln(os.Stderr, r.String())
	}
	flush()
	os.Exit(3)
}

// applyPerturbs parses a comma-separated cycle:component list and
// registers each as an artificial state divergence.
func applyPerturbs(s *gpues.Simulator, spec string) error {
	if spec == "" {
		return nil
	}
	for _, item := range strings.Split(spec, ",") {
		cycleStr, comp, ok := strings.Cut(item, ":")
		if !ok {
			return fmt.Errorf("-perturb %q is not cycle:component", item)
		}
		cycle, err := strconv.ParseInt(cycleStr, 10, 64)
		if err != nil || cycle < 0 {
			return fmt.Errorf("-perturb cycle %q must be a non-negative integer", cycleStr)
		}
		if err := s.InjectDivergence(cycle, comp); err != nil {
			return err
		}
	}
	return nil
}

// runDigestProbe runs the configured launch to the requested cycle and
// prints the per-component state digests as one JSON object — the
// probe protocol simbisect's -exec-a/-exec-b mode speaks.
func runDigestProbe(cfg gpues.Config, spec gpues.LaunchSpec, at int64, chaosLvl int, chaosSeed int64, perturbs string) error {
	s, err := gpues.NewSimulator(cfg, spec)
	if err != nil {
		return err
	}
	if chaosLvl > 0 {
		plan, err := gpues.ChaosPlanForLevel(chaosLvl, chaosSeed)
		if err != nil {
			return err
		}
		s.AttachChaos(plan)
	}
	if err := applyPerturbs(s, perturbs); err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	reached, err := s.StepTo(at)
	if err != nil {
		return err
	}
	probe := struct {
		At      int64                   `json:"at"`
		Cycle   int64                   `json:"cycle"`
		Done    bool                    `json:"done"`
		Digests []gpues.ComponentDigest `json:"digests"`
	}{At: at, Cycle: s.Cycle(), Done: !reached, Digests: s.ComponentDigests()}
	return json.NewEncoder(os.Stdout).Encode(probe)
}

// writeTraceFile exports the tracer: Chrome trace_event JSON, or the
// compact binary format when the path ends in .bin.
func writeTraceFile(tr *gpues.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		err = tr.WriteBinary(f)
	} else {
		err = tr.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSeriesFile exports the sampled telemetry series: CSV when the
// path ends in .csv, NDJSON otherwise.
func writeSeriesFile(v gpues.SeriesView, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = v.WriteCSV(f)
	} else {
		err = v.WriteNDJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMetricsFile exports the metrics snapshot: CSV when the path ends
// in .csv, JSON otherwise.
func writeMetricsFile(m gpues.MetricsSnapshot, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = m.WriteCSV(f)
	} else {
		err = m.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
