package shardpurity_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/shardpurity"
)

func TestShardpurity(t *testing.T) {
	analysistest.Run(t, shardpurity.Analyzer, "testdata/src/sp",
		"gpues/internal/analysis/shardpurity/testdata/src/sp")
}
