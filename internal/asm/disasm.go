package asm

import (
	"fmt"
	"math"
	"strings"

	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// Disassemble renders a kernel as a listing that Assemble parses back
// into an equivalent kernel.
func Disassemble(k *kernel.Kernel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".kernel %s\n", sanitizeName(k.Name))
	if k.RegsPerThread > 0 {
		fmt.Fprintf(&sb, ".regs %d\n", k.RegsPerThread)
	}
	if k.SharedMemBytes > 0 {
		fmt.Fprintf(&sb, ".shared %d\n", k.SharedMemBytes)
	}
	for i, v := range k.Params {
		fmt.Fprintf(&sb, ".param p%d %#x\n", i, v)
	}
	sb.WriteByte('\n')

	// Collect label positions: branch targets and reconvergence points.
	labels := map[int32]string{}
	for _, in := range k.Code {
		if in.Op != isa.OpBra {
			continue
		}
		if _, ok := labels[in.Target]; !ok {
			labels[in.Target] = fmt.Sprintf("L%d", in.Target)
		}
		if in.Reconv >= 0 {
			if _, ok := labels[in.Reconv]; !ok {
				labels[in.Reconv] = fmt.Sprintf("L%d", in.Reconv)
			}
		}
	}

	for pc, in := range k.Code {
		if name, ok := labels[int32(pc)]; ok {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		fmt.Fprintf(&sb, "    %s\n", formatInst(in, labels))
	}
	// A label can point one past the last instruction only via malformed
	// code; Validate rejects that, so no trailing label handling needed.
	return sb.String()
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "kernel"
	}
	return string(out)
}

func regName(r isa.Reg) string {
	if r == isa.RZ {
		return "rz"
	}
	return fmt.Sprintf("r%d", int16(r))
}

func memOperand(base isa.Reg, off int64) string {
	if off == 0 {
		return fmt.Sprintf("[%s]", regName(base))
	}
	return fmt.Sprintf("[%s%+d]", regName(base), off)
}

func sizeSuffix(size uint8) string {
	if size == 4 {
		return "u32"
	}
	return "u64"
}

var opMnemonics = map[isa.Op]string{
	isa.OpIAdd: "iadd", isa.OpISub: "isub", isa.OpIMul: "imul",
	isa.OpIMin: "imin", isa.OpIMax: "imax",
	isa.OpShl: "shl", isa.OpShr: "shr",
	isa.OpAnd: "and", isa.OpOr: "or", isa.OpXor: "xor",
	isa.OpFAdd: "fadd", isa.OpFSub: "fsub", isa.OpFMul: "fmul",
	isa.OpFMin: "fmin", isa.OpFMax: "fmax",
	isa.OpFRcp: "rcp", isa.OpFSqrt: "sqrt", isa.OpFRsqrt: "rsqrt",
	isa.OpFExp: "ex2", isa.OpFLog: "lg2", isa.OpFSin: "sin", isa.OpFCos: "cos",
	isa.OpI2F: "i2f", isa.OpF2I: "f2i",
}

func formatInst(in isa.Instruction, labels map[int32]string) string {
	pred := ""
	if in.Pred != isa.RegNone {
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		pred = fmt.Sprintf("@%s%s ", neg, regName(in.Pred))
	}

	switch in.Op {
	case isa.OpNop:
		return pred + "nop"
	case isa.OpExit:
		return pred + "exit"
	case isa.OpBar:
		return pred + "bar.sync"
	case isa.OpBra:
		target := labels[in.Target]
		if in.Pred == isa.RegNone {
			return pred + "bra " + target
		}
		if in.Reconv < 0 {
			return pred + "bra.uni " + target
		}
		return fmt.Sprintf("%sbra %s, %s", pred, target, labels[in.Reconv])
	case isa.OpMov:
		if in.SrcA == isa.RegNone {
			// Heuristic: immediates that decode to a clean float64 and
			// do not fit a plain small integer print as fmov; both parse
			// back to the same bits only when the caller knows which it
			// wants, so we print the integer form, which always
			// round-trips bit-exactly.
			return fmt.Sprintf("%smov %s, #%d", pred, regName(in.Dst), in.Imm)
		}
		return fmt.Sprintf("%smov %s, %s", pred, regName(in.Dst), regName(in.SrcA))
	case isa.OpS2R:
		return fmt.Sprintf("%ss2r %s, %v", pred, regName(in.Dst), isa.SReg(in.Imm))
	case isa.OpLdParam:
		return fmt.Sprintf("%sldc %s, param[%d]", pred, regName(in.Dst), in.Imm)
	case isa.OpIMad, isa.OpFFma:
		m := "imad"
		if in.Op == isa.OpFFma {
			m = "ffma"
		}
		return fmt.Sprintf("%s%s %s, %s, %s, %s", pred, m,
			regName(in.Dst), regName(in.SrcA), regName(in.SrcB), regName(in.SrcC))
	case isa.OpSetP, isa.OpFSetP:
		m := "isetp"
		if in.Op == isa.OpFSetP {
			m = "fsetp"
		}
		s := fmt.Sprintf("%s%s.%v %s, %s, %s", pred, m, in.Cmp,
			regName(in.Dst), regName(in.SrcA), regName(in.SrcB))
		if in.Imm != 0 {
			s += fmt.Sprintf(", #%d", in.Imm)
		}
		return s
	case isa.OpLdGlobal, isa.OpLdShared:
		space := "global"
		if in.Op == isa.OpLdShared {
			space = "shared"
		}
		return fmt.Sprintf("%sld.%s.%s %s, %s", pred, space, sizeSuffix(in.Size),
			regName(in.Dst), memOperand(in.SrcA, in.Imm))
	case isa.OpStGlobal, isa.OpStShared:
		space := "global"
		if in.Op == isa.OpStShared {
			space = "shared"
		}
		return fmt.Sprintf("%sst.%s.%s %s, %s", pred, space, sizeSuffix(in.Size),
			memOperand(in.SrcA, in.Imm), regName(in.SrcB))
	case isa.OpAssert:
		return fmt.Sprintf("%sassert %s, #%d", pred, regName(in.SrcA), in.Imm)
	case isa.OpTrap:
		return fmt.Sprintf("%strap #%d", pred, in.Imm)
	case isa.OpMalloc:
		if in.SrcA == isa.RegNone || in.SrcA == isa.RZ {
			return fmt.Sprintf("%smalloc %s, #%d", pred, regName(in.Dst), in.Imm)
		}
		return fmt.Sprintf("%smalloc %s, %s", pred, regName(in.Dst), regName(in.SrcA))
	case isa.OpAtomGlobal:
		s := fmt.Sprintf("%satom.global.%v.%s %s, %s, %s", pred, in.Atom, sizeSuffix(in.Size),
			regName(in.Dst), memOperand(in.SrcA, in.Imm), regName(in.SrcB))
		if in.Atom == isa.AtomCAS {
			s += ", " + regName(in.SrcC)
		}
		return s
	default:
		// Everything else prints from the mnemonic table below.
	}

	if m, ok := opMnemonics[in.Op]; ok {
		switch in.Op {
		case isa.OpFRcp, isa.OpFSqrt, isa.OpFRsqrt, isa.OpFExp, isa.OpFLog,
			isa.OpFSin, isa.OpFCos, isa.OpI2F, isa.OpF2I:
			return fmt.Sprintf("%s%s %s, %s", pred, m, regName(in.Dst), regName(in.SrcA))
		default:
			// Three-operand ALU: print register or immediate second
			// source; a trailing immediate prints when nonzero.
			s := fmt.Sprintf("%s%s %s, %s, %s", pred, m,
				regName(in.Dst), regName(in.SrcA), regName(in.SrcB))
			if in.Imm != 0 {
				s += fmt.Sprintf(", #%d", in.Imm)
			}
			return s
		}
	}
	return pred + "nop // unprintable op"
}

// FormatFloat64Imm is a helper for writing float immediates in
// hand-written listings: it returns the integer immediate encoding of a
// float64 value ("mov r1, #<this>").
func FormatFloat64Imm(f float64) string {
	return fmt.Sprintf("#%d", int64(math.Float64bits(f)))
}
