package interconnect

import (
	"fmt"

	"gpues/internal/ckpt"
)

// SaveState serializes the link: per-channel next-free cycles and the
// transfer statistics.
func (l *Link) SaveState(w *ckpt.Writer) {
	w.Int(len(l.channels))
	for _, c := range l.channels {
		w.I64(c)
	}
	w.I64(l.stats.Transfers)
	w.I64(l.stats.BusyCycles)
	w.I64(l.stats.StallCycles)
}

// RestoreState reads the SaveState stream back and installs it.
func (l *Link) RestoreState(r *ckpt.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(l.channels) {
		return fmt.Errorf("interconnect %s: %d channels, checkpoint has %d", l.name, len(l.channels), n)
	}
	for i := range l.channels {
		l.channels[i] = r.I64()
	}
	l.stats.Transfers = r.I64()
	l.stats.BusyCycles = r.I64()
	l.stats.StallCycles = r.I64()
	return r.Err()
}
