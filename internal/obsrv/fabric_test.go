package obsrv

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"gpues/internal/obs"
)

func fabricSnapshot() obs.Snapshot {
	r := obs.NewRegistry()
	r.Counter("fabric.jobs.submitted").Add(7)
	r.Counter("fabric.cache.hits").Add(3)
	r.Gauge("fabric.queue.depth", func() int64 { return 4 })
	return r.Snapshot()
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// The fabric snapshot renders on /metrics even when no simulator
// telemetry was ever published — a coordinator process has no
// simulation of its own.
func TestMetricsFabricOnly(t *testing.T) {
	s := New("127.0.0.1:0")
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if body := fetch(t, "http://"+addr+"/metrics"); body != "" {
		t.Fatalf("empty server served %q", body)
	}
	s.PublishFabric(fabricSnapshot())
	body := fetch(t, "http://"+addr+"/metrics")
	for _, w := range []string{
		"# TYPE gpues_fabric_jobs_submitted counter",
		"gpues_fabric_jobs_submitted 7",
		"gpues_fabric_cache_hits 3",
		"# TYPE gpues_fabric_queue_depth gauge",
		"gpues_fabric_queue_depth 4",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q:\n%s", w, body)
		}
	}
	if strings.Contains(body, "gpues_cycle") {
		t.Errorf("fabric-only exposition leaked a telemetry cycle line:\n%s", body)
	}
}
