package chaos

import (
	"fmt"

	"gpues/internal/ckpt"
)

// SaveState serializes the plan's injection progress: budget counters,
// event-log length and fingerprint, and the injected-page count. The
// RNG stream position is implied by the counters — replay re-draws the
// same sequence — so everything here is cross-checked, not installed.
func (p *Plan) SaveState(w *ckpt.Writer) {
	w.I64(p.cfg.Seed)
	w.Int(p.walkFaults)
	w.Int(p.issueStalls)
	w.Int(p.forcedSwitches)
	w.Int(len(p.injectedPages))
	w.Int(len(p.events))
	w.U64(p.Fingerprint())
}

// RestoreState reads the SaveState stream back and cross-checks the
// replayed plan against it.
func (p *Plan) RestoreState(r *ckpt.Reader) error {
	seed := r.I64()
	wf, is, fs := r.Int(), r.Int(), r.Int()
	pages, events := r.Int(), r.Int()
	fp := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if seed != p.cfg.Seed {
		return fmt.Errorf("chaos: plan seed %d, checkpoint has %d", p.cfg.Seed, seed)
	}
	if wf != p.walkFaults || is != p.issueStalls || fs != p.forcedSwitches ||
		pages != len(p.injectedPages) || events != len(p.events) {
		return fmt.Errorf("chaos: replayed injection counts (%d walk faults, %d stalls, %d switches, %d pages, %d events) do not match checkpoint (%d, %d, %d, %d, %d)",
			p.walkFaults, p.issueStalls, p.forcedSwitches, len(p.injectedPages), len(p.events),
			wf, is, fs, pages, events)
	}
	if got := p.Fingerprint(); got != fp {
		return fmt.Errorf("chaos: replayed event log fingerprint %#016x, checkpoint has %#016x", got, fp)
	}
	return nil
}
