package vm

import "fmt"

// PhysAllocator hands out physical page frames from a contiguous
// physical range. It is a simple free-list allocator: frames are
// returned most-recently-freed first.
//
// The GPU-local fault handler partitions the physical space across SMs
// (Partition) so that concurrent handlers allocate without contention,
// mirroring the paper's "address space partitioning techniques"
// (Section 4.2).
type PhysAllocator struct {
	base      uint64
	frameSize uint64
	nextFresh uint64 // next never-allocated frame
	limit     uint64 // end of range (exclusive)
	free      []uint64
	allocated int
}

// NewPhysAllocator returns an allocator over [base, base+size) with the
// given frame (page) size.
func NewPhysAllocator(base, size uint64, frameSize int) (*PhysAllocator, error) {
	if frameSize <= 0 || frameSize&(frameSize-1) != 0 {
		return nil, fmt.Errorf("vm: frame size %d not a positive power of two", frameSize)
	}
	if size == 0 || size%uint64(frameSize) != 0 {
		return nil, fmt.Errorf("vm: range size %d not a positive multiple of frame size %d", size, frameSize)
	}
	return &PhysAllocator{
		base:      base,
		frameSize: uint64(frameSize),
		nextFresh: base,
		limit:     base + size,
	}, nil
}

// FrameSize returns the frame size in bytes.
func (a *PhysAllocator) FrameSize() uint64 { return a.frameSize }

// Allocated returns the number of live frames.
func (a *PhysAllocator) Allocated() int { return a.allocated }

// FreeFrames returns how many frames remain available.
func (a *PhysAllocator) FreeFrames() int {
	fresh := int((a.limit - a.nextFresh) / a.frameSize)
	return fresh + len(a.free)
}

// Alloc returns a frame address, or an error when physical memory is
// exhausted.
func (a *PhysAllocator) Alloc() (uint64, error) {
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free = a.free[:n-1]
		a.allocated++
		return f, nil
	}
	if a.nextFresh >= a.limit {
		return 0, fmt.Errorf("vm: out of physical memory (%d frames in use)", a.allocated)
	}
	f := a.nextFresh
	a.nextFresh += a.frameSize
	a.allocated++
	return f, nil
}

// Free returns a frame to the allocator. Freeing an address outside the
// range or not frame-aligned is an error.
func (a *PhysAllocator) Free(frame uint64) error {
	if frame < a.base || frame >= a.limit || (frame-a.base)%a.frameSize != 0 {
		return fmt.Errorf("vm: free of invalid frame %#x", frame)
	}
	a.free = append(a.free, frame)
	a.allocated--
	return nil
}

// Exhaust consumes free frames until at most leave remain, returning
// how many were consumed. Chaos plans use it to drive the simulator
// into its out-of-memory paths; the consumed frames are never freed.
func (a *PhysAllocator) Exhaust(leave int) int {
	if leave < 0 {
		leave = 0
	}
	taken := 0
	for a.FreeFrames() > leave {
		if _, err := a.Alloc(); err != nil {
			break
		}
		taken++
	}
	return taken
}

// Partition splits the remaining fresh space into n equal sub-allocators
// (already-freed frames stay with the parent). Used to give each SM its
// own contention-free pool for local fault handling.
func (a *PhysAllocator) Partition(n int) ([]*PhysAllocator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: partition count %d", n)
	}
	framesLeft := (a.limit - a.nextFresh) / a.frameSize
	per := framesLeft / uint64(n)
	if per == 0 {
		return nil, fmt.Errorf("vm: %d frames cannot be split %d ways", framesLeft, n)
	}
	parts := make([]*PhysAllocator, n)
	cursor := a.nextFresh
	for i := 0; i < n; i++ {
		size := per * a.frameSize
		p, err := NewPhysAllocator(cursor, size, int(a.frameSize))
		if err != nil {
			return nil, err
		}
		parts[i] = p
		cursor += size
	}
	a.nextFresh = a.limit // parent's fresh space fully handed out
	return parts, nil
}
