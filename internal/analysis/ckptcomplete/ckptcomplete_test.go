package ckptcomplete_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/ckptcomplete"
)

func TestCkptcomplete(t *testing.T) {
	analysistest.Run(t, ckptcomplete.Analyzer, "testdata/src/cc",
		"gpues/internal/analysis/ckptcomplete/testdata/src/cc")
}
