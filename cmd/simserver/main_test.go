package main

import (
	"strings"
	"testing"
)

// The validation contract: every bad flag value must be rejected up
// front with a specific message (main prints it and exits 2), before
// any journal, socket or simulation work happens.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the validation message; "" = valid
	}{
		{"no mode", []string{}, "one of -listen"},
		{"both modes", []string{"-listen", ":0", "-join", "http://x:1"}, "mutually exclusive"},
		{"coordinator ok", []string{"-listen", ":0", "-journal", "j"}, ""},
		{"listen not hostport", []string{"-listen", "nope", "-journal", "j"}, "-listen"},
		{"listen without journal", []string{"-listen", ":0"}, "needs -journal"},
		{"submit with listen", []string{"-listen", ":0", "-journal", "j", "-submit", "{}"}, "need -join"},
		{"worker ok", []string{"-join", "http://127.0.0.1:8990"}, ""},
		{"join not a url", []string{"-join", "127.0.0.1:8990"}, "not an http(s) URL"},
		{"join with workers", []string{"-join", "http://x:1", "-workers", "2"}, "needs -listen"},
		{"negative workers", []string{"-listen", ":0", "-journal", "j", "-workers", "-1"}, "-workers"},
		{"huge workers", []string{"-listen", ":0", "-journal", "j", "-workers", "100000"}, "-workers"},
		{"zero lease", []string{"-listen", ":0", "-journal", "j", "-lease", "0s"}, "-lease"},
		{"negative lease", []string{"-listen", ":0", "-journal", "j", "-lease", "-5s"}, "-lease"},
		{"negative retries", []string{"-listen", ":0", "-journal", "j", "-max-retries", "-1"}, "-max-retries"},
		{"retries ok zero", []string{"-listen", ":0", "-journal", "j", "-max-retries", "0"}, ""},
		{"negative cap", []string{"-listen", ":0", "-journal", "j", "-queue-cap", "-1"}, "-queue-cap"},
		{"cap ok zero", []string{"-listen", ":0", "-journal", "j", "-queue-cap", "0"}, ""},
		{"zero drain", []string{"-listen", ":0", "-journal", "j", "-drain-timeout", "0s"}, "-drain-timeout"},
		{"negative backoff", []string{"-listen", ":0", "-journal", "j", "-backoff", "-1s"}, "-backoff"},
		{"negative tenant rate", []string{"-listen", ":0", "-journal", "j", "-tenant-rate", "-1"}, "-tenant-rate"},
		{"rate without burst", []string{"-listen", ":0", "-journal", "j", "-tenant-rate", "2", "-tenant-burst", "0"}, "-tenant-burst"},
		{"bad http addr", []string{"-listen", ":0", "-journal", "j", "-http", "nope"}, "-http"},
		{"zero slice", []string{"-join", "http://x:1", "-slice", "0"}, "-slice"},
		{"zero poll", []string{"-join", "http://x:1", "-poll", "0s"}, "-poll"},
		{"submit bad json", []string{"-join", "http://x:1", "-submit", "{"}, "not a JobSpec"},
		{"submit ok", []string{"-join", "http://x:1", "-submit", `{"benchmark":"sgemm"}`}, ""},
		{"wait without submit", []string{"-join", "http://x:1", "-wait"}, "-wait needs -submit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			msg := o.validate()
			if tc.want == "" {
				if msg != "" {
					t.Fatalf("valid flags rejected: %s", msg)
				}
				return
			}
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("message %q does not mention %q", msg, tc.want)
			}
		})
	}
}
