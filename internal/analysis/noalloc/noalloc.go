// Package noalloc checks functions annotated //simlint:noalloc for
// constructs the compiler must (or almost always must) heap-allocate:
// make/new, slice and map literals, address-of composite literals,
// closures, goroutine spawns, non-constant string concatenation,
// string<->[]byte/[]rune conversions, fmt calls, method values, and
// boxing of non-pointer-shaped values into interfaces.
//
// It complements the AllocsPerRun benchmarks: those only observe the
// branches a benchmark happens to execute, while the annotation covers
// every path of the function. Amortised growth paths that are allowed
// to allocate carry an explicit //simlint:ignore noalloc <reason>.
//
// Deliberately not flagged: plain append (in-capacity appends do not
// allocate, and the hot paths append into preallocated backing
// arrays), struct literals used as values, and calls to other
// functions (annotate the callees instead).
package noalloc

import (
	"go/ast"
	"go/types"

	"gpues/internal/analysis"
)

// Analyzer is the zero-allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag guaranteed-heap constructs inside functions annotated //simlint:noalloc",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncHasDirective(fn, "noalloc"); !ok {
				continue
			}
			c := &checker{pass: pass, fn: fn, calledFuns: map[ast.Expr]bool{}}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					c.calledFuns[ast.Unparen(call.Fun)] = true
				}
				return true
			})
			c.walk(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// calledFuns marks expressions in call position, so method values
	// that are immediately invoked are not mistaken for bound-method
	// closures.
	calledFuns map[ast.Expr]bool
}

// walk descends the annotated function's body. Function literals are
// flagged as closures and not entered: the literal itself is the
// allocation; its body belongs to a different (later) execution.
func (c *checker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "closure (func literal) allocates (//simlint:noalloc)")
			return false
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine (//simlint:noalloc)")
			return false
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.UnaryExpr:
			c.unary(n)
		case *ast.BinaryExpr:
			c.binary(n)
		case *ast.CallExpr:
			c.call(n)
			c.boxedArgs(n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					c.boxed(rhs, c.typeOf(n.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			c.returns(n)
		case *ast.ValueSpec:
			if n.Type != nil {
				for _, val := range n.Values {
					c.boxed(val, c.typeOf(n.Type))
				}
			}
		case *ast.SelectorExpr:
			c.methodValue(n)
		}
		return true
	})
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (c *checker) compositeLit(lit *ast.CompositeLit) {
	t := c.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates its backing array (//simlint:noalloc)")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates (//simlint:noalloc)")
	}
}

func (c *checker) unary(u *ast.UnaryExpr) {
	if u.Op.String() != "&" {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		c.pass.Reportf(u.Pos(), "&composite literal escapes to the heap (//simlint:noalloc)")
	}
}

func (c *checker) binary(b *ast.BinaryExpr) {
	if b.Op.String() != "+" {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		c.pass.Reportf(b.Pos(), "non-constant string concatenation allocates (//simlint:noalloc)")
	}
}

// call flags make/new, allocating conversions, and fmt calls.
func (c *checker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	switch obj := c.pass.TypesInfo.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			c.pass.Reportf(call.Pos(), "make allocates (//simlint:noalloc)")
		case "new":
			c.pass.Reportf(call.Pos(), "new allocates (//simlint:noalloc)")
		}
	case *types.Func:
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.pass.Reportf(call.Pos(), "fmt.%s allocates (formatting boxes its operands) (//simlint:noalloc)", obj.Name())
		}
	}
}

// conversion flags string<->byte/rune-slice conversions, which copy.
func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.typeOf(call.Args[0])
	if from == nil {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[call]; ok && tv.Value != nil {
		return // constant conversion
	}
	if isString(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isString(from) {
		c.pass.Reportf(call.Pos(), "string/slice conversion copies and allocates (//simlint:noalloc)")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// boxedArgs checks call arguments against interface-typed parameters.
func (c *checker) boxedArgs(call *ast.CallExpr) {
	if tv, ok := c.pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return // conversion, handled above
	}
	sigT := c.typeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.boxed(arg, pt)
	}
}

// returns checks returned values against interface-typed results.
func (c *checker) returns(ret *ast.ReturnStmt) {
	obj := c.pass.TypesInfo.Defs[c.fn.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if res.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		c.boxed(r, res.At(i).Type())
	}
}

// boxed reports expr if assigning it to target boxes a value into an
// interface. Pointer-shaped kinds store directly in the interface word
// and never allocate.
func (c *checker) boxed(expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if _, ok := from.Underlying().(*types.Interface); ok {
		return // interface-to-interface copies the word pair
	}
	if tv.IsNil() {
		return
	}
	if pointerShaped(from) {
		return
	}
	c.pass.Reportf(expr.Pos(), "value of type %s boxed into %s allocates (//simlint:noalloc)", from, target)
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// methodValue flags x.M used as a value (not immediately called),
// which allocates a bound-method closure.
func (c *checker) methodValue(sel *ast.SelectorExpr) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	// Only flag when the selector is the operand of something other
	// than a call: walk() has no parent links, so detect via Types —
	// a called method has no recorded value type... it does. Instead,
	// the caller marks calls: skip here if this selector is a call's
	// Fun (handled by recording in the checker).
	if c.calledFuns[sel] {
		return
	}
	c.pass.Reportf(sel.Pos(), "method value %s.%s allocates a bound-method closure (//simlint:noalloc)", exprString(sel.X), sel.Sel.Name)
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "expr"
}
