package experiments

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"gpues/internal/chaos"
	"gpues/internal/config"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

// chaosLevel is the preset injection aggressiveness of the sweep:
// level 2 adds transient walk faults and issue back-pressure on top of
// timing noise without degenerating into a pure fault storm.
const chaosLevel = 2

// chaosSeed derives a stable per-cell seed so the sweep is reproducible
// run to run.
func chaosSeed(bench, col string) int64 {
	h := fnv.New64a()
	h.Write([]byte(bench))
	h.Write([]byte{0})
	h.Write([]byte(col))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Chaos sweeps the preemptible schemes under deterministic fault
// injection: each benchmark runs demand paging with block switching,
// once clean and once under a level-2 chaos plan. The reported metric
// is the chaos run's slowdown over the clean run; every chaos run is
// checked against the functional oracle and the structural invariants,
// so the sweep doubles as a restartability regression test.
func Chaos(opt Options) (*Result, error) {
	opt = opt.normalize()
	benches := opt.parboil()
	schemes := []config.Scheme{
		config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	}

	type cell struct {
		bench, col string
		slowdown   float64
		err        error
	}
	sem := make(chan struct{}, opt.Parallelism)
	results := make(chan cell, len(benches)*len(schemes))
	var wg sync.WaitGroup
	var done atomic.Int64
	// Campaign progress counts clean/chaos halves: two per cell.
	total := len(benches) * len(schemes) * 2
	for _, bench := range benches {
		for _, scheme := range schemes {
			bench, scheme := bench, scheme
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				col := scheme.String()
				cfg := config.Default()
				cfg.Scheme = scheme
				cfg.DemandPaging = true
				cfg.Scheduler.Enabled = true
				if opt.Workers > 1 {
					cfg.Workers = opt.Workers
				}
				if opt.SampleEvery > 0 {
					cfg.SampleEvery = opt.SampleEvery
				}

				run := func(plan *chaos.Plan) (int64, error) {
					spec, err := workloads.Build(bench,
						workloads.Params{Scale: opt.Scale, Placement: workloads.DemandPaging()})
					if err != nil {
						return 0, err
					}
					cr, err := sim.RunChaos(cfg, spec, plan)
					if err != nil {
						return 0, err
					}
					if !cr.OracleOK() {
						return 0, fmt.Errorf("memory diverged from oracle (%d mismatches, first at %#x)",
							len(cr.Mismatches), cr.Mismatches[0].Addr)
					}
					return cr.Cycles, nil
				}

				// The oracle check needs the full memory trajectory, so
				// each half runs whole; done-files make a killed sweep
				// resume at clean/chaos-run granularity.
				resumable := func(suffix string, plan *chaos.Plan) (int64, error) {
					j := runJob{bench: bench, col: col + "-" + suffix}
					if opt.ResumeDir != "" {
						if cycles, ok := readDone(opt, "chaos", j); ok {
							if opt.Progress != nil {
								opt.Progress(fmt.Sprintf("%-14s %-14s %12d cycles (done, skipped)",
									bench, j.col, cycles))
							}
							opt.campaignStep(&done, total,
								fmt.Sprintf("%s/%s %d cycles (done, skipped)", bench, j.col, cycles))
							return cycles, nil
						}
					}
					cycles, err := run(plan)
					if err != nil {
						return 0, err
					}
					if opt.ResumeDir != "" {
						if err := writeDone(opt, "chaos", j, cycles); err != nil {
							return 0, fmt.Errorf("recording completion: %w", err)
						}
					}
					opt.campaignStep(&done, total,
						fmt.Sprintf("%s/%s %d cycles", bench, j.col, cycles))
					return cycles, nil
				}

				clean, err := resumable("clean", nil)
				if err != nil {
					results <- cell{bench, col, 0, fmt.Errorf("%s/%s clean: %w", bench, col, err)}
					return
				}
				plan, err := chaos.ForLevel(chaosLevel, chaosSeed(bench, col))
				if err != nil {
					results <- cell{bench, col, 0, err}
					return
				}
				stormy, err := resumable("chaos", plan)
				if err != nil {
					results <- cell{bench, col, 0, fmt.Errorf("%s/%s chaos: %w", bench, col, err)}
					return
				}
				if opt.Progress != nil {
					opt.Progress(fmt.Sprintf("%-14s %-14s clean=%d chaos=%d (%s)",
						bench, col, clean, stormy, plan.Summary()))
				}
				results <- cell{bench, col, float64(stormy) / float64(clean), nil}
			}()
		}
	}
	wg.Wait()
	close(results)

	values := make(map[string]map[string]float64)
	for c := range results {
		if c.err != nil {
			return nil, c.err
		}
		if values[c.bench] == nil {
			values[c.bench] = make(map[string]float64)
		}
		values[c.bench][c.col] = c.slowdown
	}

	res := &Result{
		ID:      "chaos",
		Title:   fmt.Sprintf("Slowdown under level-%d deterministic fault injection (oracle-checked)", chaosLevel),
		Metric:  "chaos cycles / clean cycles, lower is better",
		Geomean: map[string]float64{},
	}
	for _, s := range schemes {
		res.Columns = append(res.Columns, s.String())
	}
	for _, bench := range benches {
		res.Rows = append(res.Rows, Row{Benchmark: bench, Values: values[bench]})
	}
	for _, c := range res.Columns {
		res.Geomean[c] = geomean(res.Rows, c)
	}
	return res, nil
}
