// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the fault-free cost of the exception schemes
// (Figures 10 and 11), the operand log overheads (Table 2), thread
// block switching under demand paging (Figure 12) and GPU-local fault
// handling (Figures 13 and 14). Table 1 is the configuration itself.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gpues/internal/atomicio"
	"gpues/internal/config"
	"gpues/internal/excep"
	"gpues/internal/obs"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the workload dataset scale (1 = small/CI, 2-4 = paper
	// runs).
	Scale int
	// Benchmarks restricts the benchmark set (nil = the figure's full
	// suite).
	Benchmarks []string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Workers is the tick-phase worker-goroutine count inside each
	// simulation (config.Config.Workers; 0 or 1 = sequential). Results
	// are bit-identical at any worker count, so this is purely a
	// wall-clock knob; it composes with Parallelism (inter-simulation).
	Workers int
	// Progress, when set, receives one line per completed run.
	Progress func(string)
	// TraceDir, when set, writes one Chrome trace JSON per simulation
	// into the directory as <bench>-<column>.trace.json.
	TraceDir string
	// TraceFilter selects the traced event kinds (obs.ParseFilter
	// syntax; empty records everything).
	TraceFilter string
	// ResumeDir, when set, makes the campaign crash-recoverable:
	// finished runs record their cycle counts as
	// <fig>-<bench>-<col>.done.json (skipped on the next invocation),
	// and in-flight runs checkpoint periodically into
	// <fig>-<bench>-<col>.ckpts and resume from the latest checkpoint.
	// The chaos sweep resumes at cell granularity only: its oracle
	// check needs the full run's memory trajectory, so each clean or
	// chaos run executes whole, but finished halves record done-files
	// (as chaos-<bench>-<scheme>-{clean,chaos}.done.json) and are
	// skipped when a killed sweep is re-invoked.
	ResumeDir string
	// CheckpointEvery is the in-flight checkpoint period in cycles when
	// ResumeDir is set (0 = a sensible default).
	CheckpointEvery int64
	// Trials is the seeded trial count per resilience-campaign cell
	// (0 = the campaign default; other sweeps ignore it).
	Trials int
	// FlipSeed, when non-zero, pins the resilience campaign's base seed
	// for every cell (CI pinning); 0 derives a stable one per cell.
	FlipSeed int64
	// FlipRate, when positive, overrides the resilience campaign's flip
	// probability.
	FlipRate float64
	// ProtectPin, when set, replaces the resilience campaign's
	// protection ladder with the single absolute per-block thread count
	// in ProtectThreads.
	ProtectPin     bool
	ProtectThreads int
	// ExcepMode is the exception delivery mode during resilience trials
	// (the zero value is precise; preemptible switches trials to the
	// replay-queue scheme).
	ExcepMode excep.Mode
	// SampleEvery, when positive, enables metric sampling inside every
	// simulation (config.Config.SampleEvery). Purely observational:
	// sampled campaigns report the same cycle counts as unsampled ones.
	SampleEvery int64
	// CampaignProgress, when set, receives (done, total, line) after
	// every finished unit of campaign work — one simulation for the
	// figure campaigns, one trial for the resilience campaign, one
	// clean/chaos half for the chaos sweep. The live introspection
	// server's SetCampaign has exactly this shape.
	CampaignProgress func(done, total int, last string)
}

// defaultCheckpointEvery is the in-flight checkpoint period when
// Options.ResumeDir is set without an explicit CheckpointEvery.
const defaultCheckpointEvery = 100_000

func (o Options) checkpointEvery() int64 {
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return defaultCheckpointEvery
}

// campaignStep reports one finished unit of campaign work to the
// CampaignProgress hook; done is the campaign-wide atomic counter the
// concurrent workers share.
func (o Options) campaignStep(done *atomic.Int64, total int, last string) {
	if o.CampaignProgress == nil {
		return
	}
	o.CampaignProgress(int(done.Add(1)), total, last)
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is one regenerated table or figure: rows are benchmarks,
// columns are configurations, values are the figure's metric
// (normalized performance or speedup).
type Result struct {
	ID      string
	Title   string
	Metric  string
	Columns []string
	Rows    []Row
	// Geomean per column, as the paper reports.
	Geomean map[string]float64
}

// Row is one benchmark's results.
type Row struct {
	Benchmark string
	Values    map[string]float64
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s (%s)\n", r.ID, r.Title, r.Metric)
	fmt.Fprintf(&sb, "%-14s", "benchmark")
	for _, c := range r.Columns {
		fmt.Fprintf(&sb, " %12s", c)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s", row.Benchmark)
		for _, c := range r.Columns {
			fmt.Fprintf(&sb, " %12.3f", row.Values[c])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-14s", "geomean")
	for _, c := range r.Columns {
		fmt.Fprintf(&sb, " %12.3f", r.Geomean[c])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// geomean computes the geometric mean of the column across rows.
func geomean(rows []Row, col string) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		v := r.Values[col]
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// runJob identifies one simulation. bench doubles as the result row
// label; realBench, when set, is the workload actually built (used by
// the scalability/ablation sweeps whose rows are parameters, not
// benchmarks).
type runJob struct {
	bench     string
	realBench string
	col       string
	cfg       config.Config
	place     workloads.Placement
}

// buildSpec builds the job's workload afresh (runs mutate the
// functional memory, so every attempt needs its own image).
func buildSpec(opt Options, j runJob) (sim.LaunchSpec, error) {
	name := j.bench
	if j.realBench != "" {
		name = j.realBench
	}
	return workloads.Build(name, workloads.Params{Scale: opt.Scale, Placement: j.place})
}

// runOne runs one job, attaching a tracer and/or in-flight
// checkpointing as the options ask.
func runOne(opt Options, fig string, j runJob) (*sim.Result, error) {
	if opt.Workers > 1 {
		j.cfg.Workers = opt.Workers
	}
	if opt.SampleEvery > 0 {
		j.cfg.SampleEvery = opt.SampleEvery
	}
	spec, err := buildSpec(opt, j)
	if err != nil {
		return nil, err
	}
	if opt.TraceDir == "" && opt.ResumeDir == "" {
		return sim.RunSpec(j.cfg, spec)
	}
	var mask uint64
	if opt.TraceDir != "" {
		if mask, err = obs.ParseFilter(opt.TraceFilter); err != nil {
			return nil, err
		}
	}
	wire := func(spec sim.LaunchSpec) (*sim.Simulator, *obs.Tracer, error) {
		s, err := sim.New(j.cfg, spec)
		if err != nil {
			return nil, nil, err
		}
		var tr *obs.Tracer
		if opt.TraceDir != "" {
			tr = obs.New(obs.Options{Filter: mask})
			s.AttachTracer(tr)
		}
		if opt.ResumeDir != "" {
			s.CheckpointEvery = opt.checkpointEvery()
			s.CheckpointDir = jobCheckpointDir(opt.ResumeDir, fig, j)
		}
		return s, tr, nil
	}
	s, tr, err := wire(spec)
	if err != nil {
		return nil, err
	}
	if opt.ResumeDir != "" {
		if path, rerr := sim.ResolveCheckpoint(s.CheckpointDir); rerr == nil {
			if rerr := s.RestoreFile(path); rerr != nil {
				// Stale or incompatible checkpoint (changed config,
				// scale, or binary): discard it and run from scratch on
				// a fresh simulator and memory image.
				if opt.Progress != nil {
					opt.Progress(fmt.Sprintf("%s/%s: discarding checkpoint: %v", j.bench, j.col, rerr))
				}
				if spec, err = buildSpec(opt, j); err != nil {
					return nil, err
				}
				if s, tr, err = wire(spec); err != nil {
					return nil, err
				}
			}
		}
	}
	r, runErr := s.Run()
	if opt.TraceDir != "" {
		// Export even when the run failed — a failed run's trace is the
		// most useful one. The run error still wins the return.
		path := filepath.Join(opt.TraceDir, fmt.Sprintf("%s-%s.trace.json", j.bench, j.col))
		werr := func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = tr.WriteChrome(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}()
		if runErr == nil && werr != nil {
			return nil, werr
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	return r, nil
}

// doneRecord is the crash-recovery marker of one finished run.
type doneRecord struct {
	Fig    string `json:"fig"`
	Bench  string `json:"bench"`
	Col    string `json:"col"`
	Scale  int    `json:"scale"`
	Cycles int64  `json:"cycles"`
}

// jobKey is the per-run file stem inside ResumeDir.
func jobKey(fig string, j runJob) string {
	return fmt.Sprintf("%s-%s-%s", fig, j.bench, j.col)
}

func doneFilePath(dir, fig string, j runJob) string {
	return filepath.Join(dir, jobKey(fig, j)+".done.json")
}

func jobCheckpointDir(dir, fig string, j runJob) string {
	return filepath.Join(dir, jobKey(fig, j)+".ckpts")
}

// readDone returns a prior invocation's cycle count for the job, if a
// matching done-file exists. Torn or malformed files read as absent,
// so the job simply reruns.
func readDone(opt Options, fig string, j runJob) (int64, bool) {
	var d doneRecord
	if atomicio.ReadJSON(doneFilePath(opt.ResumeDir, fig, j), &d) != nil {
		return 0, false
	}
	if d.Fig != fig || d.Bench != j.bench || d.Col != j.col || d.Scale != opt.Scale {
		return 0, false
	}
	return d.Cycles, true
}

// writeDone atomically records a finished run (atomicio tmp+rename) and
// drops its now-useless in-flight checkpoints.
func writeDone(opt Options, fig string, j runJob, cycles int64) error {
	d := doneRecord{Fig: fig, Bench: j.bench, Col: j.col, Scale: opt.Scale, Cycles: cycles}
	if err := atomicio.WriteJSON(doneFilePath(opt.ResumeDir, fig, j), d); err != nil {
		return err
	}
	os.RemoveAll(jobCheckpointDir(opt.ResumeDir, fig, j))
	return nil
}

// runAll executes the figure's jobs with bounded parallelism and
// returns cycles[bench][col]. With Options.ResumeDir set, jobs already
// recorded as done are skipped and finishing jobs are recorded, so a
// killed campaign re-invoked with the same options continues where it
// stopped.
func runAll(opt Options, fig string, jobs []runJob) (map[string]map[string]int64, error) {
	type out struct {
		bench, col string
		cycles     int64
		err        error
	}
	sem := make(chan struct{}, opt.Parallelism)
	results := make(chan out, len(jobs))
	var wg sync.WaitGroup
	var done atomic.Int64
	total := len(jobs)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if opt.ResumeDir != "" {
				if cycles, ok := readDone(opt, fig, j); ok {
					line := fmt.Sprintf("%-14s %-14s %12d cycles (done, skipped)", j.bench, j.col, cycles)
					if opt.Progress != nil {
						opt.Progress(line)
					}
					opt.campaignStep(&done, total, line)
					results <- out{j.bench, j.col, cycles, nil}
					return
				}
			}
			r, err := runOne(opt, fig, j)
			if err != nil {
				results <- out{j.bench, j.col, 0, fmt.Errorf("%s/%s: %w", j.bench, j.col, err)}
				return
			}
			if opt.ResumeDir != "" {
				if err := writeDone(opt, fig, j, r.Cycles); err != nil {
					results <- out{j.bench, j.col, 0, fmt.Errorf("%s/%s: recording completion: %w", j.bench, j.col, err)}
					return
				}
			}
			line := fmt.Sprintf("%-14s %-14s %12d cycles", j.bench, j.col, r.Cycles)
			if opt.Progress != nil {
				opt.Progress(line)
			}
			opt.campaignStep(&done, total, line)
			results <- out{j.bench, j.col, r.Cycles, nil}
		}()
	}
	wg.Wait()
	close(results)
	cycles := make(map[string]map[string]int64)
	for o := range results {
		if o.err != nil {
			return nil, o.err
		}
		if cycles[o.bench] == nil {
			cycles[o.bench] = make(map[string]int64)
		}
		cycles[o.bench][o.col] = o.cycles
	}
	return cycles, nil
}

// assemble builds a Result with values[col] = cycles[base]/cycles[col]
// (relative performance, higher is better).
func assemble(id, title, metric string, benches, cols []string,
	cycles map[string]map[string]int64, baseCol string) *Result {
	res := &Result{ID: id, Title: title, Metric: metric, Columns: cols, Geomean: map[string]float64{}}
	sorted := append([]string(nil), benches...)
	sort.Strings(sorted)
	for _, bench := range sorted {
		row := Row{Benchmark: bench, Values: map[string]float64{}}
		base := cycles[bench][baseCol]
		for _, c := range cols {
			if v := cycles[bench][c]; v > 0 && base > 0 {
				row.Values[c] = float64(base) / float64(v)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for _, c := range cols {
		res.Geomean[c] = geomean(res.Rows, c)
	}
	return res
}

func (o Options) parboil() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workloads.Names("parboil")
}

// Fig10 regenerates Figure 10: performance of wd-commit, wd-lastcheck
// and replay-queue relative to the stall-on-fault baseline on
// fault-free (fully resident) runs.
func Fig10(opt Options) (*Result, error) {
	opt = opt.normalize()
	benches := opt.parboil()
	schemes := []config.Scheme{
		config.Baseline, config.WarpDisableCommit,
		config.WarpDisableLastCheck, config.ReplayQueue,
	}
	var jobs []runJob
	for _, bench := range benches {
		for _, s := range schemes {
			cfg := config.Default()
			cfg.Scheme = s
			jobs = append(jobs, runJob{bench: bench, col: s.String(), cfg: cfg, place: workloads.Resident()})
		}
	}
	cycles, err := runAll(opt, "fig10", jobs)
	if err != nil {
		return nil, err
	}
	cols := []string{"wd-commit", "wd-lastcheck", "replay-queue"}
	return assemble("fig10", "Performance of warp disable and replay queue pipelines",
		"normalized to baseline, higher is better", benches, cols, cycles, "baseline"), nil
}

// Fig11 regenerates Figure 11: operand log performance at 8, 16, 20 and
// 32 KB log sizes, relative to the baseline.
func Fig11(opt Options) (*Result, error) {
	opt = opt.normalize()
	benches := opt.parboil()
	sizes := []int{8, 16, 20, 32}
	var jobs []runJob
	for _, bench := range benches {
		base := config.Default()
		jobs = append(jobs, runJob{bench: bench, col: "baseline", cfg: base, place: workloads.Resident()})
		for _, kb := range sizes {
			cfg := config.Default()
			cfg.Scheme = config.OperandLog
			cfg.SM.OperandLog.SizeKB = kb
			jobs = append(jobs, runJob{bench: bench, col: fmt.Sprintf("log-%dKB", kb), cfg: cfg, place: workloads.Resident()})
		}
	}
	cycles, err := runAll(opt, "fig11", jobs)
	if err != nil {
		return nil, err
	}
	cols := []string{"log-8KB", "log-16KB", "log-20KB", "log-32KB"}
	return assemble("fig11", "Performance of the operand log scheme by log size",
		"normalized to baseline, higher is better", benches, cols, cycles, "baseline"), nil
}

// Fig12 regenerates Figure 12: speedup from thread block switching on
// fault under on-demand paging, for NVLink and PCIe, with normal and
// ideal (1-cycle) context switching; relative to the same system
// without switching.
func Fig12(opt Options) (*Result, error) {
	opt = opt.normalize()
	benches := opt.parboil()
	links := map[string]config.InterconnectConfig{
		"nvlink": config.NVLinkConfig(),
		"pcie":   config.PCIeConfig(),
	}
	var jobs []runJob
	for _, bench := range benches {
		for lname, link := range links {
			base := config.Default()
			base.Scheme = config.ReplayQueue
			base.DemandPaging = true
			base.Link = link
			jobs = append(jobs, runJob{bench: bench, col: lname + "-base", cfg: base, place: workloads.DemandPaging()})

			sw := base
			sw.Scheduler.Enabled = true
			jobs = append(jobs, runJob{bench: bench, col: lname, cfg: sw, place: workloads.DemandPaging()})

			ideal := sw
			ideal.Scheduler.IdealContextSwitch = true
			jobs = append(jobs, runJob{bench: bench, col: lname + "-ideal", cfg: ideal, place: workloads.DemandPaging()})
		}
	}
	cycles, err := runAll(opt, "fig12", jobs)
	if err != nil {
		return nil, err
	}
	// Each link normalizes to its own no-switching base.
	res := &Result{
		ID:      "fig12",
		Title:   "Thread block switching on fault vs. no switching",
		Metric:  "speedup over no-switching, higher is better",
		Columns: []string{"nvlink", "nvlink-ideal", "pcie", "pcie-ideal"},
		Geomean: map[string]float64{},
	}
	sorted := append([]string(nil), benches...)
	sort.Strings(sorted)
	for _, bench := range sorted {
		row := Row{Benchmark: bench, Values: map[string]float64{}}
		for lname := range links {
			base := cycles[bench][lname+"-base"]
			if base == 0 {
				continue
			}
			if v := cycles[bench][lname]; v > 0 {
				row.Values[lname] = float64(base) / float64(v)
			}
			if v := cycles[bench][lname+"-ideal"]; v > 0 {
				row.Values[lname+"-ideal"] = float64(base) / float64(v)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for _, c := range res.Columns {
		res.Geomean[c] = geomean(res.Rows, c)
	}
	return res, nil
}

// localHandlingFigure shares the Figure 13/14 machinery: speedup of
// GPU-local fault handling over CPU handling for lazily allocated
// pages, per interconnect.
func localHandlingFigure(opt Options, id, title string, benches []string) (*Result, error) {
	links := map[string]config.InterconnectConfig{
		"nvlink": config.NVLinkConfig(),
		"pcie":   config.PCIeConfig(),
	}
	var jobs []runJob
	for _, bench := range benches {
		for lname, link := range links {
			cpu := config.Default()
			cpu.Scheme = config.ReplayQueue
			cpu.Link = link
			cpu.LazyOutput = true
			jobs = append(jobs, runJob{bench: bench, col: lname + "-cpu", cfg: cpu, place: workloads.LazyOutput()})

			gpu := cpu
			gpu.Local.Enabled = true
			jobs = append(jobs, runJob{bench: bench, col: lname + "-gpu", cfg: gpu, place: workloads.LazyOutput()})
		}
	}
	cycles, err := runAll(opt, id, jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      id,
		Title:   title,
		Metric:  "speedup of GPU-local handling over CPU handling, higher is better",
		Columns: []string{"nvlink", "pcie"},
		Geomean: map[string]float64{},
	}
	sorted := append([]string(nil), benches...)
	sort.Strings(sorted)
	for _, bench := range sorted {
		row := Row{Benchmark: bench, Values: map[string]float64{}}
		for lname := range links {
			cpu := cycles[bench][lname+"-cpu"]
			gpu := cycles[bench][lname+"-gpu"]
			if cpu > 0 && gpu > 0 {
				row.Values[lname] = float64(cpu) / float64(gpu)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for _, c := range res.Columns {
		res.Geomean[c] = geomean(res.Rows, c)
	}
	return res, nil
}

// Fig13 regenerates Figure 13: local handling of faults to pages
// backing dynamic (device-malloc) allocations, on the Halloc suite and
// the quad-tree port.
func Fig13(opt Options) (*Result, error) {
	opt = opt.normalize()
	benches := opt.Benchmarks
	if len(benches) == 0 {
		benches = append(workloads.Names("halloc"), workloads.Names("sdk")...)
	}
	return localHandlingFigure(opt, "fig13",
		"Local handling of faults to dynamically allocated pages", benches)
}

// Fig14 regenerates Figure 14: local handling of faults to kernel
// output pages across the Parboil suite.
func Fig14(opt Options) (*Result, error) {
	opt = opt.normalize()
	return localHandlingFigure(opt, "fig14",
		"Local handling of faults to output pages", opt.parboil())
}

// Table1 renders the simulation parameters (the paper's Table 1).
func Table1() string {
	c := config.Default()
	var sb strings.Builder
	sb.WriteString("Table 1 — Simulation parameters\n")
	fmt.Fprintf(&sb, "SM:      %.0f GHz, %d max TBs, %d max warps, %d KB RF, %d KB shared\n",
		c.System.FrequencyGHz, c.SM.MaxThreadBlocks, c.SM.MaxWarps, c.SM.RegisterFileKB, c.SM.SharedMemoryKB)
	fmt.Fprintf(&sb, "Issue:   %d instructions from up to %d warps; %d math, %d SFU, %d ld/st, %d branch units\n",
		c.SM.IssueWidth, c.SM.IssueWarps, c.SM.MathUnits, c.SM.SpecialUnits, c.SM.LoadStore, c.SM.BranchUnits)
	fmt.Fprintf(&sb, "L1:      %d KB / %d-way / %d B lines, %d MSHRs, %d clk; L1 TLB %d entries / %d-way\n",
		c.SM.L1SizeKB, c.SM.L1Ways, c.SM.L1LineB, c.SM.L1MSHRs, c.SM.L1Latency, c.SM.L1TLBSize, c.SM.L1TLBWays)
	fmt.Fprintf(&sb, "System:  %d SMs; L2 %d KB / %d-way, %d clk, %d MSHRs; L2 TLB %d entries, %d MSHRs, %d clk\n",
		c.System.NumSMs, c.System.L2SizeKB, c.System.L2Ways, c.System.L2Latency, c.System.L2MSHRs,
		c.System.L2TLBEntries, c.System.L2TLBMSHRs, c.System.L2TLBLatency)
	fmt.Fprintf(&sb, "Walkers: %d page table walkers, %d clk walks\n", c.System.PTWalkers, c.System.WalkLatency)
	fmt.Fprintf(&sb, "DRAM:    %.0f GB/s, %d clk; pages %d B, fault handling granularity %d KB\n",
		c.System.DRAMBandwidthGBs, c.System.DRAMLatency, c.System.PageSize, c.System.FaultGranularity/1024)
	return sb.String()
}
