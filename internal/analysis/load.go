package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages from source with no toolchain help: the
// standard library resolves through the compiler's source importer
// (works offline, straight from GOROOT/src) and module-local import
// paths resolve against the module directory. Standalone simlint and
// the analysistest harness both load through it; the vettool protocol
// path in cmd/simlint instead consumes the export data `go vet` hands
// it.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std   types.ImporterFrom
	pkgs  map[string]*LoadedPackage
	order []*LoadedPackage
}

// LoadedPackage is one parsed and type-checked package, ready to run
// analyzers over.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader builds a loader rooted at the module directory.
func NewLoader(moduleDir, modulePath string) *Loader {
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		pkgs:       map[string]*LoadedPackage{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	return l
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func FindModule(dir string) (moduleDir, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import resolves one import path for the type checker.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// from source under the module directory, everything else goes to the
// standard library's source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		lp, err := l.LoadDir(filepath.Join(l.ModuleDir, rel), path, nil)
		if err != nil {
			return nil, err
		}
		return lp.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// moduleRel maps a module-local import path to its directory relative
// to the module root ("." for the root package itself).
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rel, true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir under the given
// import path, reusing the cached result when the path was already
// loaded (directly or as a dependency) — a path must never map to two
// distinct *types.Packages or cross-package types stop being
// identical. extraFiles, when non-nil, overrides the build-context
// file listing (the analysistest harness passes explicit files).
func (l *Loader) LoadDir(dir, path string, extraFiles []string) (*LoadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	var fileNames []string
	if extraFiles != nil {
		fileNames = extraFiles
	} else {
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", dir, err)
		}
		fileNames = append(fileNames, bp.GoFiles...)
		sort.Strings(fileNames)
		for i, f := range fileNames {
			fileNames[i] = filepath.Join(dir, f)
		}
	}
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	lp := &LoadedPackage{Path: path, Fset: l.Fset, Files: files, Types: pkg, Info: info}
	l.pkgs[path] = lp
	// A package finishes loading only after every import it pulled in
	// (type-checking resolves them through ImportFrom), so completion
	// order is a topological order: dependencies before dependents.
	// Drivers analyze in this order so facts flow forward.
	l.order = append(l.order, lp)
	return lp, nil
}

// Packages returns every module-local package loaded so far, in
// dependency order (imports before importers).
func (l *Loader) Packages() []*LoadedPackage {
	out := make([]*LoadedPackage, len(l.order))
	copy(out, l.order)
	return out
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// RunAnalyzer applies one analyzer's Run phase to a loaded package,
// returning the diagnostics that survive //simlint:ignore suppression,
// sorted by position. Facts may be nil for purely intraprocedural
// analyzers; fact-exporting analyzers write their summaries into it.
func RunAnalyzer(a *Analyzer, lp *LoadedPackage, facts *FactStore) ([]Diagnostic, error) {
	sup := BuildSuppressions(lp.Fset, lp.Files)
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Types,
		TypesInfo: lp.Info,
		Facts:     facts,
	}
	pass.Report = func(d Diagnostic) {
		if !sup.Suppressed(lp.Fset, a.Name, d) {
			diags = append(diags, d)
		}
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
