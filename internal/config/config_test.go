package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if c.System.NumSMs != 16 {
		t.Errorf("NumSMs = %d, want 16", c.System.NumSMs)
	}
	if c.SM.MaxWarps != 64 || c.SM.MaxThreadBlocks != 16 {
		t.Errorf("SM residency = %d warps / %d blocks, want 64/16",
			c.SM.MaxWarps, c.SM.MaxThreadBlocks)
	}
	if c.SM.RegisterFileKB != 256 || c.SM.SharedMemoryKB != 32 {
		t.Errorf("RF/shared = %d/%d KB, want 256/32", c.SM.RegisterFileKB, c.SM.SharedMemoryKB)
	}
	if c.SM.L1SizeKB != 32 || c.SM.L1Ways != 4 || c.SM.L1LineB != 128 ||
		c.SM.L1MSHRs != 32 || c.SM.L1Latency != 40 {
		t.Errorf("L1 config mismatch: %+v", c.SM)
	}
	if c.System.L2SizeKB != 2048 || c.System.L2Ways != 8 || c.System.L2Latency != 70 ||
		c.System.L2MSHRs != 512 {
		t.Errorf("L2 config mismatch: %+v", c.System)
	}
	if c.System.L2TLBEntries != 1024 || c.System.L2TLBMSHRs != 128 {
		t.Errorf("L2 TLB config mismatch: %+v", c.System)
	}
	if c.System.PTWalkers != 64 || c.System.WalkLatency != 500 {
		t.Errorf("walker config mismatch: %+v", c.System)
	}
	if c.System.DRAMBandwidthGBs != 256 || c.System.DRAMLatency != 200 {
		t.Errorf("DRAM config mismatch: %+v", c.System)
	}
	if c.System.PageSize != 4096 || c.System.FaultGranularity != 64*1024 {
		t.Errorf("paging config mismatch: %+v", c.System)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		Baseline:             "baseline",
		WarpDisableCommit:    "wd-commit",
		WarpDisableLastCheck: "wd-lastcheck",
		ReplayQueue:          "replay-queue",
		OperandLog:           "operand-log",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if Baseline.Preemptible() {
		t.Error("baseline must not be preemptible")
	}
	for _, s := range []Scheme{WarpDisableCommit, WarpDisableLastCheck, ReplayQueue, OperandLog} {
		if !s.Preemptible() {
			t.Errorf("%v must be preemptible", s)
		}
	}
	if got := Scheme(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown scheme string = %q", got)
	}
}

func TestFaultCostConstants(t *testing.T) {
	nv, pc := NVLinkConfig(), PCIeConfig()
	if nv.FaultCosts.MigrateUS != 12 || nv.FaultCosts.AllocOnlyUS != 10 {
		t.Errorf("NVLink fault costs = %+v, want 12/10 us", nv.FaultCosts)
	}
	if pc.FaultCosts.MigrateUS != 25 || pc.FaultCosts.AllocOnlyUS != 12 {
		t.Errorf("PCIe fault costs = %+v, want 25/12 us", pc.FaultCosts)
	}
	if nv.FaultCosts.CPUHandleUS != 2 || nv.FaultCosts.GPUHandleUS != 20 {
		t.Errorf("handler costs = %+v, want 2/20 us", nv.FaultCosts)
	}
	if nv.Kind.String() != "NVLink" || pc.Kind.String() != "PCIe" {
		t.Errorf("interconnect names = %q/%q", nv.Kind, pc.Kind)
	}
}

func TestCyclesConversion(t *testing.T) {
	c := Default()
	if got := c.Cycles(12); got != 12000 {
		t.Errorf("Cycles(12us) = %d, want 12000 at 1 GHz", got)
	}
	if got := c.Cycles(0.5); got != 500 {
		t.Errorf("Cycles(0.5us) = %d, want 500", got)
	}
	if bpc := c.BytesPerCycle(); bpc != 256 {
		t.Errorf("BytesPerCycle = %v, want 256", bpc)
	}
}

func TestOperandLogEntries(t *testing.T) {
	ol := OperandLogConfig{SizeKB: 8, EntryBytes: 256}
	if got := ol.Entries(); got != 32 {
		t.Errorf("8KB/256B = %d entries, want 32", got)
	}
	ol.SizeKB = 32
	if got := ol.Entries(); got != 128 {
		t.Errorf("32KB/256B = %d entries, want 128", got)
	}
	if (OperandLogConfig{}).Entries() != 0 {
		t.Error("zero config should have zero entries")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero warp size", func(c *Config) { c.SM.WarpSize = 0 }},
		{"zero warps", func(c *Config) { c.SM.MaxWarps = 0 }},
		{"zero SMs", func(c *Config) { c.System.NumSMs = 0 }},
		{"non power-of-two page", func(c *Config) { c.System.PageSize = 3000 }},
		{"granularity below page", func(c *Config) { c.System.FaultGranularity = 1024 }},
		{"granularity not multiple", func(c *Config) { c.System.FaultGranularity = 6144; c.System.PageSize = 4096 }},
		{"zero line size", func(c *Config) { c.SM.L1LineB = 0 }},
		{"log too small", func(c *Config) {
			c.Scheme = OperandLog
			c.SM.OperandLog = OperandLogConfig{SizeKB: 1, EntryBytes: 256}
		}},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", m.name)
		}
	}
}
