package tlb

import (
	"testing"

	"gpues/internal/clock"
	"gpues/internal/vm"
)

func drain(q *clock.Queue, max int64) {
	for i := int64(0); i < max && q.Len() > 0; i++ {
		q.Step()
	}
}

// presentSet is a Level answering from a fixed set of present pages.
type presentSet struct {
	q       *clock.Queue
	latency int64
	present map[uint64]bool
	lookups int
}

func (p *presentSet) Lookup(pageVA uint64, done func(Result)) bool {
	p.lookups++
	ok := p.present[pageVA&^4095]
	p.q.After(p.latency, func() {
		if ok {
			done(Result{Present: true})
		} else {
			done(Result{Fault: vm.FaultMigrate})
		}
	})
	return true
}

func l1Cfg() Config {
	return Config{Name: "l1tlb", Entries: 32, Ways: 8, Latency: 1}
}

func TestTLBMissFillHit(t *testing.T) {
	q := clock.New()
	next := &presentSet{q: q, latency: 70, present: map[uint64]bool{0x10000: true}}
	tl, err := New(l1Cfg(), 4096, q, next)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 Result
	var t1, t2 int64
	tl.Lookup(0x10008, func(r Result) { r1, t1 = r, q.Now() })
	drain(q, 1000)
	if !r1.Present || t1 < 71 {
		t.Errorf("miss result %+v at %d", r1, t1)
	}
	start := q.Now()
	tl.Lookup(0x10100, func(r Result) { r2, t2 = r, q.Now() }) // same page
	drain(q, 1000)
	if !r2.Present || t2-start != 1 {
		t.Errorf("hit result %+v latency %d, want 1", r2, t2-start)
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if next.lookups != 1 {
		t.Errorf("next lookups = %d, want 1", next.lookups)
	}
}

func TestTLBFaultNotCached(t *testing.T) {
	q := clock.New()
	next := &presentSet{q: q, latency: 10, present: map[uint64]bool{}}
	tl, _ := New(l1Cfg(), 4096, q, next)
	var r Result
	tl.Lookup(0x20000, func(res Result) { r = res })
	drain(q, 100)
	if r.Present || r.Fault != vm.FaultMigrate {
		t.Errorf("fault result = %+v", r)
	}
	if tl.Stats().Faults != 1 {
		t.Errorf("faults = %d", tl.Stats().Faults)
	}
	// The page becomes present (fault resolved); the next lookup must go
	// to the backend again, not be served from a stale cached fault.
	next.present[0x20000] = true
	tl.Lookup(0x20000, func(res Result) { r = res })
	drain(q, 100)
	if !r.Present {
		t.Error("lookup after resolution must be present")
	}
	if next.lookups != 2 {
		t.Errorf("backend lookups = %d, want 2 (faults are not cached)", next.lookups)
	}
}

func TestTLBMSHRMergeAndBackpressure(t *testing.T) {
	q := clock.New()
	next := &presentSet{q: q, latency: 100, present: map[uint64]bool{0x0: true, 0x1000: true, 0x2000: true}}
	cfg := l1Cfg()
	cfg.MSHRs = 2
	tl, _ := New(cfg, 4096, q, next)
	n := 0
	tl.Lookup(0x0, func(Result) { n++ })
	tl.Lookup(0x8, func(Result) { n++ }) // merges with first
	tl.Lookup(0x1000, func(Result) { n++ })
	if tl.Lookup(0x2000, func(Result) { n++ }) {
		t.Error("third distinct page must be rejected with 2 MSHRs")
	}
	if tl.InFlight() != 2 {
		t.Errorf("in flight = %d", tl.InFlight())
	}
	drain(q, 1000)
	if n != 3 {
		t.Errorf("completions = %d, want 3", n)
	}
	s := tl.Stats()
	if s.Merges != 1 || s.Rejects != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	q := clock.New()
	present := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		present[i*4096] = true
	}
	next := &presentSet{q: q, latency: 1, present: present}
	cfg := Config{Name: "tiny", Entries: 2, Ways: 2, Latency: 1}
	tl, _ := New(cfg, 4096, q, next)
	for _, p := range []uint64{0, 4096, 8192} {
		tl.Lookup(p, func(Result) {})
		drain(q, 100)
	}
	missesBefore := tl.Stats().Misses
	tl.Lookup(0, func(Result) {}) // was LRU, evicted
	drain(q, 100)
	if tl.Stats().Misses != missesBefore+1 {
		t.Error("LRU entry not evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	q := clock.New()
	next := &presentSet{q: q, latency: 1, present: map[uint64]bool{0: true}}
	tl, _ := New(l1Cfg(), 4096, q, next)
	tl.Lookup(0, func(Result) {})
	drain(q, 100)
	tl.Flush()
	tl.Lookup(0, func(Result) {})
	drain(q, 100)
	if tl.Stats().Misses != 2 {
		t.Errorf("misses after flush = %d, want 2", tl.Stats().Misses)
	}
}

func TestTLBConfigValidation(t *testing.T) {
	q := clock.New()
	if _, err := New(Config{Entries: 0, Ways: 1}, 4096, q, nil); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(Config{Entries: 10, Ways: 3}, 4096, q, nil); err == nil {
		t.Error("non-divisible ways accepted")
	}
	if _, err := New(Config{Entries: 8, Ways: 2}, 1000, q, nil); err == nil {
		t.Error("bad page size accepted")
	}
}

func TestFillUnitWalkAndFault(t *testing.T) {
	q := clock.New()
	pt, _ := vm.NewPageTable(4096)
	pt.Set(0x5000, vm.PTE{State: vm.PageGPU, PA: 0x100000})
	fu, err := NewFillUnit(q, 2, 500, func(va uint64) Result {
		e := pt.Lookup(va)
		if e.Present() {
			return Result{Present: true}
		}
		return Result{Fault: vm.FaultAllocOnly}
	})
	if err != nil {
		t.Fatal(err)
	}
	var rPresent, rFault Result
	var tDone int64
	fu.Lookup(0x5000, func(r Result) { rPresent, tDone = r, q.Now() })
	fu.Lookup(0x9000, func(r Result) { rFault = r })
	drain(q, 2000)
	if !rPresent.Present || tDone != 500 {
		t.Errorf("walk result %+v at %d, want present at 500", rPresent, tDone)
	}
	if rFault.Present || rFault.Fault != vm.FaultAllocOnly {
		t.Errorf("fault result = %+v", rFault)
	}
	if fu.Walks != 2 || fu.FaultsDetected != 1 {
		t.Errorf("walks=%d faults=%d", fu.Walks, fu.FaultsDetected)
	}
}

func TestFillUnitWalkerPoolQueueing(t *testing.T) {
	q := clock.New()
	fu, _ := NewFillUnit(q, 2, 100, func(va uint64) Result { return Result{Present: true} })
	var times []int64
	for i := 0; i < 4; i++ {
		fu.Lookup(uint64(i*4096), func(Result) { times = append(times, q.Now()) })
	}
	if fu.Busy() != 2 || fu.Queued() != 2 {
		t.Errorf("busy=%d queued=%d, want 2/2", fu.Busy(), fu.Queued())
	}
	drain(q, 2000)
	if len(times) != 4 {
		t.Fatalf("completions = %d", len(times))
	}
	// First two finish at 100, next two at 200.
	if times[0] != 100 || times[1] != 100 || times[2] != 200 || times[3] != 200 {
		t.Errorf("completion times = %v, want [100 100 200 200]", times)
	}
}

func TestFillUnitValidation(t *testing.T) {
	q := clock.New()
	if _, err := NewFillUnit(q, 0, 100, func(uint64) Result { return Result{} }); err == nil {
		t.Error("zero walkers accepted")
	}
	if _, err := NewFillUnit(q, 1, 100, nil); err == nil {
		t.Error("nil classify accepted")
	}
}

// Chain test: L1 TLB -> L2 TLB -> fill unit, checking that a miss
// traverses all levels and installs in both TLBs.
func TestTwoLevelChain(t *testing.T) {
	q := clock.New()
	fu, _ := NewFillUnit(q, 64, 500, func(va uint64) Result { return Result{Present: true} })
	l2, _ := New(Config{Name: "l2tlb", Entries: 1024, Ways: 8, MSHRs: 128, Latency: 70}, 4096, q, fu)
	l1, _ := New(l1Cfg(), 4096, q, l2)

	var done int64
	l1.Lookup(0x7000, func(Result) { done = q.Now() })
	drain(q, 5000)
	// 1 (L1) + 70 (L2) + 500 (walk) = 571.
	if done != 571 {
		t.Errorf("cold lookup at %d, want 571", done)
	}
	// Second access to same page: L1 hit at 1 cycle.
	start := q.Now()
	l1.Lookup(0x7008, func(Result) { done = q.Now() })
	drain(q, 100)
	if done-start != 1 {
		t.Errorf("warm lookup latency = %d, want 1", done-start)
	}
	// A different SM's L1 miss hits in L2: flush only L1.
	l1.Flush()
	start = q.Now()
	l1.Lookup(0x7000, func(Result) { done = q.Now() })
	drain(q, 1000)
	if done-start != 71 {
		t.Errorf("L2-hit lookup latency = %d, want 71", done-start)
	}
}
