// Command simstat analyzes telemetry series exported by gpusim -series
// (or the live server's /series endpoint).
//
// With one file it reports run-level analytics: steady-state IPC, peak
// stall attribution, fault phases, and the intervals with the heaviest
// stall concentration. With two files it diffs them as an A/B
// regression check: samples are aligned by cycle and every shared
// column's worst relative deviation is reported; -threshold turns the
// diff into a gate with a distinct exit code.
//
// Examples:
//
//	simstat run.series.ndjson
//	simstat -json -top 5 run.series.ndjson
//	simstat base.series.ndjson cand.series.ndjson
//	simstat -threshold 0 base.series.ndjson cand.series.ndjson
//
// Exit status: 0 on success (and on a diff within threshold), 1 when
// -threshold is set and the diff exceeds it, 2 on usage or input
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		asJSON    = flag.Bool("json", false, "emit the report or diff as JSON")
		top       = flag.Int("top", 8, "intervals (report) or columns (diff) to show")
		threshold = flag.Float64("threshold", -1, "diff gate: exit 1 when any aligned column deviates more than this percent, the runs end at different cycles, or columns are missing (-1 = report only)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simstat [flags] series.ndjson            report one run\n"+
				"       simstat [flags] a.ndjson b.ndjson        diff two runs (A = reference)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *top < 1 {
		fmt.Fprintf(os.Stderr, "-top %d must be at least 1\n", *top)
		os.Exit(2)
	}

	switch flag.NArg() {
	case 1:
		t, err := loadTable(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := writeReport(os.Stdout, flag.Arg(0), t, *top, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case 2:
		a, err := loadTable(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b, err := loadTable(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		d := diffSeries(a, b)
		if err := writeDiff(os.Stdout, flag.Arg(0), flag.Arg(1), d, *top, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if d.exceeds(*threshold) {
			fmt.Fprintf(os.Stderr, "diff exceeds threshold %g%%\n", *threshold)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
