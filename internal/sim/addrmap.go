package sim

import (
	"sort"

	"gpues/internal/vm"
)

// regionChecker builds the emulator's address-map predicate from the
// launch's region list: a base-sorted table binary-searched per access,
// with a one-entry cache for the common run of same-region accesses.
// Global accesses outside every region then raise a device
// illegal-address exception during emulation — the functional
// equivalent of an MMU fault on an unmapped VA — instead of aborting
// the timing run from the host side.
func regionChecker(regs []vm.Region) func(uint64) bool {
	sorted := make([]vm.Region, len(regs))
	copy(sorted, regs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	last := -1
	return func(a uint64) bool {
		if last >= 0 && sorted[last].Contains(a) {
			return true
		}
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Base > a }) - 1
		if i >= 0 && sorted[i].Contains(a) {
			last = i
			return true
		}
		return false
	}
}
