// Package sm implements the cycle-level Streaming Multiprocessor
// pipeline of Figure 1, including the paper's three preemptible
// exception schemes (Section 3) and the per-SM local block scheduler of
// use case 1 (Section 4.1, Figure 9).
//
// The pipeline models fetch, dual issue with scoreboarding and per-unit
// ports, operand read, variable-latency execution (math, special
// function, branch, shared and global memory pipelines) and
// out-of-order commit. Global memory instructions go through the
// coalescer, the per-SM L1 TLB and the L1 cache; translation misses
// continue into the shared L2 TLB and the fill unit, where page faults
// are detected.
package sm

import (
	"gpues/internal/emu"
	"gpues/internal/excep"
	"gpues/internal/isa"
	"gpues/internal/tlb"
	"gpues/internal/vm"
)

// fetchReason says why a warp's fetch is disabled.
type fetchReason uint8

const (
	fetchOK fetchReason = iota
	// fetchControl: a control-flow instruction was fetched; fetch
	// resumes at its commit (baseline behaviour, Section 2.1).
	fetchControl
	// fetchWarpDisable: a global memory instruction was fetched under a
	// warp-disable scheme; fetch resumes at its commit (wd-commit) or
	// its last TLB check (wd-lastcheck).
	fetchWarpDisable
)

// warpRT is the runtime state of one resident warp slot.
type warpRT struct {
	sm    *SM
	block *blockRT
	// idx is the warp index within its block.
	idx   int
	trace []emu.TraceInst
	// cursor is the next trace index to fetch.
	cursor int
	// replay holds trace indices of squashed (faulted) instructions, in
	// program order; they are re-fetched before cursor continues. This
	// is the replay queue content of Section 3.2 from the timing
	// perspective.
	replay []int32

	// buf is the fetched instruction awaiting issue (1-entry
	// instruction buffer); bufReady is the cycle it becomes issuable.
	buf      *flight
	bufReady int64

	fetchBlock fetchReason
	// fetchOwner is the flight whose commit/last-check unblocks fetch.
	fetchOwner *flight

	// Scoreboards: pendWrite marks registers with an in-flight writer
	// (released at commit); pendRead counts in-flight readers (released
	// at operand read, or at last TLB check for global memory
	// instructions under the replay-queue scheme).
	pendWrite [4]uint64
	pendRead  [isa.MaxRegs]uint8

	inFlight          int
	atBarrier         bool
	barFlight         *flight
	faultsOutstanding int
	done              bool

	// excep, when set, is the device exception the warp raised during
	// emulation: its trace ends just before the faulting instruction,
	// so the record is delivered once the warp drains (see deliverExcep).
	// excepDone marks that delivery has happened.
	excep     *excep.Record
	excepDone bool

	// Stall-attribution interval starts (cycle stamps): when the warp
	// last entered fault wait / parked at a barrier / had fetch blocked.
	faultWaitStart  int64
	barStart        int64
	fetchBlockStart int64

	// heldSrcs keeps, per squashed instruction (by trace index), the
	// source registers whose pendRead holds survive the fault under the
	// replay-queue scheme: the scheme releases global-memory sources
	// only after a successful last TLB check, so a faulted instruction
	// keeps blocking younger writers (no RAW on replay).
	heldSrcs map[int32][]isa.Reg
}

// memReqState tracks one coalesced request of a memory instruction.
type memReqState uint8

const (
	reqPending    memReqState = iota // translation in progress
	reqTranslated                    // translation hit, cache access in flight
	reqFaulted                       // translation faulted
	reqDone                          // data returned / store accepted
)

type memReq struct {
	line uint64
	// idx is the request's position in flight.reqs, so retry and
	// completion paths can reuse the flight's prebuilt per-index
	// closures instead of allocating fresh ones.
	idx       int32
	state     memReqState
	faultKind vm.FaultKind
}

// flight is one in-flight dynamic instruction. Flights are pooled per
// SM (see SM.newFlight/freeFlight): the per-use fields below reset on
// reuse, while the prebuilt closures and slice capacities persist so
// steady-state execution schedules events without allocating.
type flight struct {
	w        *warpRT
	ti       *emu.TraceInst
	tIdx     int32
	isReplay bool

	// srcHeld are the source registers still holding pendRead.
	srcHeld []isa.Reg
	// global memory execution state.
	reqs      []memReq
	tlbRem    int // requests without a first translation result
	reqRem    int // requests not yet done
	faulted   bool
	squashed  bool
	logHeld   int  // operand log entries held by this instruction
	wdOwner   bool // this flight disabled its warp's fetch (wd schemes)
	committed bool

	// Prebuilt closures, created once per pooled flight object. The
	// per-index ones resolve &reqs[i] at fire time, so reslicing reqs
	// between uses is safe.
	opReadFn func()             // wake + opRead(f)
	commitFn func()             // wake + commit(f)
	trFns    []func()           // [i]: translate(f, &reqs[i]); also the TLB OnFree retry
	tlbFns   []func(tlb.Result) // [i]: wake + onTranslated(f, &reqs[i], res)
	accFns   []func()           // [i]: accessDone(f, &reqs[i]) — the cache completion
	accRetry []func()           // [i]: access(f, &reqs[i]) — the MSHR-full retry

	poolNext *flight
}

func (f *flight) global() bool { return f.ti.Static.IsGlobalMem() }

// scoreboard helpers ---------------------------------------------------

func regBit(r isa.Reg) (int, uint64) { return int(r) >> 6, 1 << (uint64(r) & 63) }

func (w *warpRT) writePending(r isa.Reg) bool {
	if r == isa.RegNone || r == isa.RZ {
		return false
	}
	i, b := regBit(r)
	return w.pendWrite[i]&b != 0
}

func (w *warpRT) setWritePending(r isa.Reg) {
	if r == isa.RegNone || r == isa.RZ {
		return
	}
	i, b := regBit(r)
	w.pendWrite[i] |= b
}

func (w *warpRT) clearWritePending(r isa.Reg) {
	if r == isa.RegNone || r == isa.RZ {
		return
	}
	i, b := regBit(r)
	w.pendWrite[i] &^= b
}

// canIssue checks the scoreboard hazards for the buffered instruction:
// RAW (sources not pending a write), WAW (destination not pending a
// write) and WAR (destination not pending reads).
func (w *warpRT) canIssue(f *flight) bool {
	in := f.ti.Static
	for _, r := range [...]isa.Reg{in.SrcA, in.SrcB, in.SrcC, in.Pred} {
		if w.writePending(r) {
			return false
		}
	}
	if in.Writes() {
		if w.writePending(in.Dst) {
			return false
		}
		if w.pendRead[in.Dst] > 0 {
			return false
		}
	}
	return true
}

// acquire marks the scoreboard for an issuing instruction.
func (w *warpRT) acquire(f *flight) {
	in := f.ti.Static
	if in.Writes() {
		w.setWritePending(in.Dst)
	}
	w.acquireSources(f)
}

// acquireSources takes the pendRead holds for the instruction's sources.
func (w *warpRT) acquireSources(f *flight) {
	in := f.ti.Static
	f.srcHeld = f.srcHeld[:0]
	for _, r := range [...]isa.Reg{in.SrcA, in.SrcB, in.SrcC, in.Pred} {
		if r != isa.RegNone && r != isa.RZ {
			w.pendRead[r]++
			f.srcHeld = append(f.srcHeld, r)
		}
	}
}

// releaseSources drops the pendRead holds of the instruction (operand
// read in the baseline; last TLB check for global memory under the
// replay-queue scheme).
func (w *warpRT) releaseSources(f *flight) {
	for _, r := range f.srcHeld {
		w.pendRead[r]--
	}
	f.srcHeld = f.srcHeld[:0]
}

// releaseDest drops the pendWrite hold (commit, or squash).
func (w *warpRT) releaseDest(f *flight) {
	in := f.ti.Static
	if in.Writes() {
		w.clearWritePending(in.Dst)
	}
}

// insertReplay adds a trace index keeping program order.
func (w *warpRT) insertReplay(idx int32) {
	pos := len(w.replay)
	for pos > 0 && w.replay[pos-1] > idx {
		pos--
	}
	w.replay = append(w.replay, 0)
	copy(w.replay[pos+1:], w.replay[pos:])
	w.replay[pos] = idx
}

// nextFetchIndex returns the next trace index this warp would fetch,
// preferring the replay list, and whether one exists.
func (w *warpRT) nextFetchIndex() (int32, bool, bool) {
	if len(w.replay) > 0 {
		return w.replay[0], true, true
	}
	if w.cursor < len(w.trace) {
		return int32(w.cursor), false, true
	}
	return 0, false, false
}

// exhausted reports whether the warp has nothing left to run.
func (w *warpRT) exhausted() bool {
	return w.cursor >= len(w.trace) && len(w.replay) == 0 && w.buf == nil && w.inFlight == 0
}

// canIssueReplay checks hazards for a replayed (previously squashed)
// instruction. Under the replay-queue scheme its sources are still held
// (they were never released), so only destination hazards matter, and
// the instruction's own holds on its destination are discounted. Under
// the operand-log scheme the replay reads its operands from the log
// (Figure 8b), so source RAW does not apply at all.
func (w *warpRT) canIssueReplay(f *flight, heldOwn []isa.Reg, checkSources bool) bool {
	in := f.ti.Static
	if checkSources {
		for _, r := range [...]isa.Reg{in.SrcA, in.SrcB, in.SrcC, in.Pred} {
			if w.writePending(r) {
				return false
			}
		}
	}
	if in.Writes() {
		if w.writePending(in.Dst) {
			return false
		}
		pr := int(w.pendRead[in.Dst])
		for _, r := range heldOwn {
			if r == in.Dst {
				pr--
			}
		}
		if pr > 0 {
			return false
		}
	}
	return true
}
