package interconnect

import (
	"testing"

	"gpues/internal/clock"
)

func drain(q *clock.Queue) {
	for q.Len() > 0 {
		q.Step()
	}
}

func TestSingleChannelSerializes(t *testing.T) {
	q := clock.New()
	l, err := New("pcie", q, 1)
	if err != nil {
		t.Fatal(err)
	}
	var times []int64
	for i := 0; i < 3; i++ {
		l.Occupy(100, func() { times = append(times, q.Now()) })
	}
	drain(q)
	want := []int64{100, 200, 300}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("occupancy %d ended at %d, want %d", i, times[i], want[i])
		}
	}
	s := l.Stats()
	if s.Transfers != 3 || s.BusyCycles != 300 {
		t.Errorf("stats = %+v", s)
	}
	if s.StallCycles != 100+200 {
		t.Errorf("stall cycles = %d, want 300", s.StallCycles)
	}
}

func TestTwoChannelsOverlap(t *testing.T) {
	q := clock.New()
	l, _ := New("nvlink", q, 2)
	var times []int64
	for i := 0; i < 4; i++ {
		l.Occupy(100, func() { times = append(times, q.Now()) })
	}
	drain(q)
	// Two at a time: 100, 100, 200, 200.
	if times[0] != 100 || times[1] != 100 || times[2] != 200 || times[3] != 200 {
		t.Errorf("times = %v, want [100 100 200 200]", times)
	}
}

func TestUtilization(t *testing.T) {
	q := clock.New()
	l, _ := New("x", q, 1)
	l.Occupy(50, func() {})
	drain(q)
	q.SkipTo(100)
	if u := l.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestZeroCycleOccupancyRoundsUp(t *testing.T) {
	q := clock.New()
	l, _ := New("x", q, 1)
	fired := false
	l.Occupy(0, func() { fired = true })
	drain(q)
	if !fired || q.Now() != 1 {
		t.Errorf("zero occupancy fired=%v at %d", fired, q.Now())
	}
}

func TestValidation(t *testing.T) {
	q := clock.New()
	if _, err := New("bad", q, 0); err == nil {
		t.Error("zero channels accepted")
	}
	l, _ := New("n", q, 2)
	if l.Name() != "n" {
		t.Errorf("Name = %q", l.Name())
	}
}
