package host

import "gpues/internal/ckpt"

// SaveState serializes the dispatcher's grid progress.
func (d *Dispatcher) SaveState(w *ckpt.Writer) {
	w.Int(d.total)
	w.Int(d.next)
	w.Int(d.done)
}

// RestoreState reads the SaveState stream back and installs it.
func (d *Dispatcher) RestoreState(r *ckpt.Reader) error {
	d.total = r.Int()
	d.next = r.Int()
	d.done = r.Int()
	return r.Err()
}

// SaveState serializes the CPU fault service: the handler's next-free
// cycle and the service statistics. In-flight service completions are
// scheduled closures, rebuilt by replay.
func (s *FaultService) SaveState(w *ckpt.Writer) {
	w.I64(s.cpuFree)
	w.I64(s.stats.Served)
	w.I64(s.stats.Migrations)
	w.I64(s.stats.AllocOnly)
	w.I64(s.stats.PagesMapped)
	w.I64(s.stats.QueueCycles)
}

// RestoreState reads the SaveState stream back and installs it.
func (s *FaultService) RestoreState(r *ckpt.Reader) error {
	s.cpuFree = r.I64()
	s.stats.Served = r.I64()
	s.stats.Migrations = r.I64()
	s.stats.AllocOnly = r.I64()
	s.stats.PagesMapped = r.I64()
	s.stats.QueueCycles = r.I64()
	return r.Err()
}
