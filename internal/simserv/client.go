package simserv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a thin typed client for the coordinator API; the worker,
// the CLI's submit/wait verbs and the tests all speak through it.
type Client struct {
	// Base is the coordinator base URL, e.g. "http://127.0.0.1:8990".
	Base string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response decoded from the {"error": ...} body.
type apiError struct {
	Status     int
	RetryAfter string
	Msg        string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("simserv: HTTP %d: %s", e.Status, e.Msg)
}

// post sends req as JSON and decodes a 2xx body into resp (resp may be
// nil; a 204 decodes nothing). Non-2xx returns *apiError.
func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.httpc().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return decodeResp(r, resp)
}

func (c *Client) get(path string, resp any) error {
	r, err := c.httpc().Get(c.Base + path)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return decodeResp(r, resp)
}

func decodeResp(r *http.Response, resp any) error {
	if r.StatusCode == http.StatusNoContent {
		return nil
	}
	if r.StatusCode < 200 || r.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if json.Unmarshal(data, &e) != nil || e.Error == "" {
			e.Error = string(data)
		}
		return &apiError{Status: r.StatusCode, RetryAfter: r.Header.Get("Retry-After"), Msg: e.Error}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// IsStatus reports whether err is an API error with the given HTTP
// status (e.g. 409 for a fenced stale lease, 429 for backpressure).
func IsStatus(err error, status int) bool {
	e, ok := err.(*apiError)
	return ok && e.Status == status
}

// RetryAfter returns the Retry-After header of a 429/503 API error
// ("" otherwise).
func RetryAfter(err error) string {
	if e, ok := err.(*apiError); ok {
		return e.RetryAfter
	}
	return ""
}

// Submit enqueues a job.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.post("/v1/jobs", req, &resp)
	return resp, err
}

// Claim asks for work; ok is false when the coordinator has none (or
// is draining).
func (c *Client) Claim(worker string) (ClaimResponse, bool, error) {
	body, err := json.Marshal(ClaimRequest{Worker: worker})
	if err != nil {
		return ClaimResponse{}, false, err
	}
	r, err := c.httpc().Post(c.Base+"/v1/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		return ClaimResponse{}, false, err
	}
	defer r.Body.Close()
	if r.StatusCode == http.StatusNoContent {
		return ClaimResponse{}, false, nil
	}
	var resp ClaimResponse
	if err := decodeResp(r, &resp); err != nil {
		return ClaimResponse{}, false, err
	}
	return resp, true, nil
}

// Renew extends a lease and returns the coordinator's directive.
func (c *Client) Renew(jobID, worker string, token uint64) (string, error) {
	var resp RenewResponse
	if err := c.post("/v1/renew", RenewRequest{JobID: jobID, Worker: worker, Token: token}, &resp); err != nil {
		return "", err
	}
	return resp.Directive, nil
}

// Complete reports a finished run.
func (c *Client) Complete(req CompleteRequest) error {
	return c.post("/v1/complete", req, nil)
}

// Fail reports a failed attempt; retried is false when the job
// dead-lettered.
func (c *Client) Fail(req FailRequest) (bool, error) {
	var resp FailResponse
	err := c.post("/v1/fail", req, &resp)
	return resp.Retried, err
}

// Preempt hands a job back with a checkpoint.
func (c *Client) Preempt(req PreemptRequest) error {
	return c.post("/v1/preempt", req, nil)
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.get("/v1/jobs/"+id, &st)
	return st, err
}

// Jobs lists every job.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.get("/v1/jobs", &out)
	return out, err
}

// Stats fetches the fabric counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.get("/v1/stats", &st)
	return st, err
}
