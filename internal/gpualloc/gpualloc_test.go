package gpualloc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newAlloc(t *testing.T, superblocks int) *Allocator {
	t.Helper()
	a, err := New(0x10000000, uint64(superblocks)*SuperblockSize)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocBasic(t *testing.T) {
	a := newAlloc(t, 4)
	p1, err := a.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("duplicate allocation")
	}
	if p1 < a.Base() || p1 >= a.Base()+a.Size() {
		t.Errorf("allocation %#x outside heap", p1)
	}
	if a.LiveAllocs() != 2 {
		t.Errorf("live = %d, want 2", a.LiveAllocs())
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if a.LiveAllocs() != 1 {
		t.Errorf("live after free = %d, want 1", a.LiveAllocs())
	}
}

func TestAllocSizeClassAlignment(t *testing.T) {
	a := newAlloc(t, 8)
	for _, size := range []int{1, 16, 17, 100, 1000, 4096} {
		p, err := a.Alloc(3, size)
		if err != nil {
			t.Fatal(err)
		}
		// Chunks are size-class aligned relative to the superblock.
		off := p % SuperblockSize
		class := classFor(size)
		if off%uint64(sizeClasses[class]) != 0 {
			t.Errorf("alloc(%d) at %#x not aligned to class %d", size, p, sizeClasses[class])
		}
	}
}

func TestLargeAllocation(t *testing.T) {
	a := newAlloc(t, 8)
	p, err := a.Alloc(0, 3*SuperblockSize/2) // 1.5 superblocks -> 2
	if err != nil {
		t.Fatal(err)
	}
	if p%SuperblockSize != 0 {
		t.Errorf("large allocation %#x not superblock aligned", p)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// Freed superblocks are recycled.
	p2, err := a.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < p || p2 >= p+2*SuperblockSize {
		t.Logf("recycling note: alloc at %#x after freeing %#x", p2, p)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a := newAlloc(t, 2)
	p, _ := a.Alloc(0, 64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free not detected")
	}
	if err := a.Free(0xdeadbeef); err == nil {
		t.Error("free of wild pointer not detected")
	}
}

func TestHeapExhaustion(t *testing.T) {
	a := newAlloc(t, 1)
	// One superblock of 4 KiB chunks holds 256 allocations.
	n := 0
	for {
		if _, err := a.Alloc(n, 4096); err != nil {
			break
		}
		n++
		if n > 10000 {
			t.Fatal("allocator never exhausted a 1-superblock heap")
		}
	}
	if n != SuperblockSize/4096 {
		t.Errorf("allocations before exhaustion = %d, want %d", n, SuperblockSize/4096)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 12345); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := New(4096, SuperblockSize); err == nil {
		t.Error("unaligned base accepted")
	}
	a := newAlloc(t, 1)
	if _, err := a.Alloc(0, 0); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

// TestConcurrentNoOverlap: allocations from many goroutines never
// overlap (the lock-free bitmap discipline works under contention).
func TestConcurrentNoOverlap(t *testing.T) {
	a := newAlloc(t, 32)
	const (
		workers   = 16
		perWorker = 500
	)
	results := make([][]uint64, workers)
	sizes := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				size := 16 << rng.Intn(6) // 16..512
				p, err := a.Alloc(w*1000+i, size)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				results[w] = append(results[w], p)
				sizes[w] = append(sizes[w], size)
			}
		}(w)
	}
	wg.Wait()

	type span struct{ lo, hi uint64 }
	var spans []span
	for w := range results {
		for i, p := range results[w] {
			class := classFor(sizes[w][i])
			spans = append(spans, span{p, p + uint64(sizeClasses[class])})
		}
	}
	if len(spans) != workers*perWorker {
		t.Fatalf("allocations = %d, want %d", len(spans), workers*perWorker)
	}
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if seen[s.lo] {
			t.Fatalf("overlapping allocation at %#x", s.lo)
		}
		seen[s.lo] = true
	}
}

// TestConcurrentAllocFree: mixed alloc/free traffic stays consistent.
func TestConcurrentAllocFree(t *testing.T) {
	a := newAlloc(t, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var live []uint64
			for i := 0; i < 1000; i++ {
				if rng.Intn(3) != 0 || len(live) == 0 {
					p, err := a.Alloc(w, 16<<rng.Intn(8))
					if err != nil {
						t.Errorf("alloc: %v", err)
						return
					}
					live = append(live, p)
				} else {
					k := rng.Intn(len(live))
					if err := a.Free(live[k]); err != nil {
						t.Errorf("free: %v", err)
						return
					}
					live = append(live[:k], live[k+1:]...)
				}
			}
			for _, p := range live {
				if err := a.Free(p); err != nil {
					t.Errorf("final free: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if a.LiveAllocs() != 0 {
		t.Errorf("live allocations after teardown = %d, want 0", a.LiveAllocs())
	}
}

// Property: sequential alloc/free round trips preserve the invariant
// live == allocs - frees and never produce overlapping chunks.
func TestQuickAllocConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := New(0, 16*SuperblockSize)
		live := map[uint64]int{}
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := 16 << rng.Intn(9)
				p, err := a.Alloc(i, size)
				if err != nil {
					return false
				}
				if _, dup := live[p]; dup {
					return false
				}
				live[p] = size
			} else {
				for p := range live {
					if a.Free(p) != nil {
						return false
					}
					delete(live, p)
					break
				}
			}
		}
		return a.LiveAllocs() == int64(len(live))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
