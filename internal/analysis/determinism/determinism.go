// Package determinism flags constructs that can break the simulator's
// bit-identical replay guarantee: map iteration whose body mutates
// state or emits events (Go randomises map order per run), wall-clock
// reads, the global math/rand source, and goroutine spawns in the
// timing core.
//
// Goroutine spawns admit one sanctioned idiom: a function whose doc
// comment carries //simlint:shardsafe may spawn (directly or via
// enclosed function literals), asserting the deterministic-parallelism
// contract — workers touch only shard-private state plus staged effect
// ledgers flushed in deterministic order (docs/parallelism.md). Any
// spawn not under an annotated declaration is still flagged.
//
// The analyzer applies to the built-in list of timing-core packages
// plus any package carrying a //simlint:deterministic comment.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpues/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag nondeterministic constructs (unordered map iteration with side effects, " +
		"time.Now, global math/rand, goroutine spawns) in timing-core packages",
	Run: run,
}

// corePackages are the import-path segments (matched as suffixes under
// the module path) that are always in scope; other packages opt in
// with //simlint:deterministic.
var corePackages = []string{
	"internal/clock",
	"internal/sm",
	"internal/core",
	"internal/sim",
	"internal/cache",
	"internal/tlb",
	"internal/dram",
	"internal/interconnect",
	"internal/host",
	"internal/vm",
	"internal/emu",
	"internal/excep",
	"internal/obs",
	"internal/ckpt",
	"internal/bisect",
}

func inScope(pass *analysis.Pass) bool {
	if analysis.PackageHasDirective(pass.Files, "deterministic") {
		return true
	}
	path := pass.Pkg.Path()
	for _, seg := range corePackages {
		if path == seg || strings.HasSuffix(path, "/"+seg) || strings.Contains(path, "/"+seg+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	for _, file := range pass.Files {
		v := &visitor{pass: pass}
		ast.Walk(v, file)
	}
	return nil
}

// visitor walks one file keeping a stack of enclosing function bodies,
// so "local variable" questions resolve against the right scope.
type visitor struct {
	pass  *analysis.Pass
	funcs []ast.Node // *ast.FuncDecl or *ast.FuncLit
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		stack := make([]ast.Node, len(v.funcs)+1)
		copy(stack, v.funcs)
		stack[len(v.funcs)] = n
		return &visitor{pass: v.pass, funcs: stack}
	case *ast.GoStmt:
		if !v.shardsafe() {
			v.pass.Reportf(n.Pos(), "goroutine spawned in a timing-core package: tick-phase concurrency must stage shared-state effects and flush them in deterministic order; annotate the spawning function //simlint:shardsafe once it upholds that contract")
		}
	case *ast.CallExpr:
		v.checkCall(n)
	case *ast.RangeStmt:
		v.checkRange(n)
	}
	return v
}

// shardsafe reports whether the visit point sits inside a function
// whose declaration carries //simlint:shardsafe — the annotation by
// which deterministic-parallelism code (the sharded tick phase)
// declares that its goroutines only touch shard-private state plus
// staged effect ledgers flushed in a deterministic order. The
// directive must sit on a FuncDecl: function literals inherit it from
// their enclosing declaration, so an annotated spawner may pass
// closures to `go`, but an unannotated function can never launder a
// spawn through a literal.
func (v *visitor) shardsafe() bool {
	for _, fn := range v.funcs {
		if decl, ok := fn.(*ast.FuncDecl); ok {
			if _, ok := analysis.FuncHasDirective(decl, "shardsafe"); ok {
				return true
			}
		}
	}
	return false
}

// checkCall flags wall-clock reads and the shared math/rand source.
func (v *visitor) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(v.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			v.pass.Reportf(call.Pos(), "time.Now in a timing-core package: simulated components must derive time from the clock.Queue cycle, never the wall clock")
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" {
			v.pass.Reportf(call.Pos(), "global math/rand source in a timing-core package: use a seeded *rand.Rand carried by the component so runs replay bit-identically")
		}
	}
}

// calleeFunc resolves the called function object, if it is a named
// function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkRange applies the map-iteration rule: ranging over a map is
// fine only while the body does order-insensitive local accumulation;
// mutating anything non-local, calling out, sending, or returning
// early all observe the randomised order.
func (v *visitor) checkRange(rng *ast.RangeStmt) {
	t := v.pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if len(v.funcs) == 0 {
		return
	}
	fn := v.funcs[len(v.funcs)-1]
	if reason, pos := v.unsafeBody(rng, fn); reason != "" {
		v.pass.Reportf(pos, "map iteration order is nondeterministic and the loop body %s; iterate sorted keys (or a slice) so replays stay bit-identical", reason)
	}
}

// unsafeBody scans a map-range body for order-sensitive effects and
// returns a description of the first one, or "".
func (v *visitor) unsafeBody(rng *ast.RangeStmt, fn ast.Node) (reason string, pos token.Pos) {
	info := v.pass.TypesInfo
	local := func(e ast.Expr) bool { return isLocal(info, e, fn) }
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if allowedInRange(info, n) {
				return true
			}
			reason, pos = "calls out (the callee may emit events, mutate state, or observe order)", n.Pos()
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !local(lhs) {
					reason, pos = "assigns to non-local state", lhs.Pos()
					return false
				}
			}
		case *ast.IncDecStmt:
			if !local(n.X) {
				reason, pos = "mutates non-local state", n.Pos()
				return false
			}
		case *ast.SendStmt:
			reason, pos = "sends on a channel", n.Pos()
			return false
		case *ast.ReturnStmt:
			reason, pos = "returns early (the chosen element depends on iteration order)", n.Pos()
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			reason, pos = "spawns deferred or concurrent work", n.Pos()
			return false
		}
		return true
	})
	return reason, pos
}

// allowedInRange permits effect-free builtins, pure formatting, and
// append/delete: append-into-a-local is the blessed collect-then-sort
// idiom (the subsequent sort restores determinism) and delete of
// ranged keys is order-insensitive.
func allowedInRange(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "append", "delete", "copy", "make", "new", "real", "imag":
				return true
			}
		}
	case *ast.SelectorExpr:
		// Pure value-returning formatters: they observe only their
		// operands, so calling them per entry is order-insensitive.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf":
				return true
			}
		}
	}
	// Conversions (e.g. int64(v)) are effect-free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// isLocal reports whether expr is (rooted at) a variable declared
// inside fn — including the blank identifier — so mutating it cannot
// leak iteration order outside the loop's own computation.
func isLocal(info *types.Info, expr ast.Expr, fn ast.Node) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return true
			}
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
		case *ast.SelectorExpr:
			// Mutating a field reaches whatever the root refers to; a
			// selector rooted at a local pointer may still alias shared
			// state, but field writes through locally *declared* structs
			// stay local. Pointer-typed roots are treated as non-local.
			root := e.X
			if rt := info.Types[root].Type; rt != nil {
				if _, isPtr := rt.Underlying().(*types.Pointer); isPtr {
					return false
				}
			}
			expr = root
		case *ast.IndexExpr:
			// Element writes into a map/slice reach the backing store —
			// allowed when the container variable itself is declared in
			// fn (params included): building a local map or histogram
			// from map entries is order-insensitive. A container loaded
			// from a field (s.m[k] = v) may feed ordered consumers, so
			// it stays non-local.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				expr = id
				continue
			}
			return false
		case *ast.StarExpr:
			return false
		default:
			return false
		}
	}
}
