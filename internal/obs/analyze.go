package obs

import (
	"sort"
	"strings"
)

// Well-known series columns the derived-rate analytics key on. They
// match the metric names the simulator registers; a series missing one
// simply reports zero for the derived quantity.
const (
	// ColCommitted is the cumulative committed-instruction column.
	ColCommitted = "sm.committed"
	// ColFaultsRaised is the cumulative raised-page-fault column.
	ColFaultsRaised = "faultunit.raised"
	// ColOccupancy is the instantaneous resident-blocks gauge column.
	ColOccupancy = "sm.occupancy_blocks"
	// ColFaultLatCount/Sum are the fault-latency histogram columns.
	ColFaultLatCount = "fault.latency_cycles.count"
	ColFaultLatSum   = "fault.latency_cycles.sum"
	// StallColPrefix prefixes the per-reason stall-cycle columns.
	StallColPrefix = "sm.stall."
)

// SeriesTable is a decoded series: absolute values per sample, one
// column per metric. Tables come from SeriesView.Table (in-process) or
// ReadSeriesNDJSON (files).
type SeriesTable struct {
	Every  int64
	Names  []string
	Cycles []int64
	Cols   [][]int64
}

// Len returns the number of samples.
func (t *SeriesTable) Len() int { return len(t.Cycles) }

// Col returns the named column, or nil.
func (t *SeriesTable) Col(name string) []int64 {
	for i, n := range t.Names {
		if n == name {
			return t.Cols[i]
		}
	}
	return nil
}

// IntervalStats are the derived rates of one sampling interval — the
// span between two consecutive samples (the first interval starts at
// cycle 0).
type IntervalStats struct {
	// Cycle is the interval's end cycle; Cycles its length.
	Cycle  int64
	Cycles int64
	// Committed and Faults are the interval's deltas.
	Committed int64
	Faults    int64
	// IPC is committed instructions per cycle over the interval.
	IPC float64
	// FaultRate is raised faults per kilocycle over the interval.
	FaultRate float64
	// Occupancy is the resident-blocks gauge at the interval's end.
	Occupancy int64
	// TopStall is the stall reason with the largest share of the
	// interval's stall events; TopStallShare its fraction of them.
	TopStall      string
	TopStallShare float64
	// StallShares maps each stall reason (short name, without the
	// column prefix) to its fraction of the interval's stall events.
	// Reasons with no events in the interval are omitted.
	StallShares map[string]float64
}

// Analyze derives per-interval rates from a decoded series.
func Analyze(t *SeriesTable) []IntervalStats {
	if t == nil || t.Len() == 0 {
		return nil
	}
	committed := t.Col(ColCommitted)
	faults := t.Col(ColFaultsRaised)
	occ := t.Col(ColOccupancy)
	var stallNames []string
	var stallCols [][]int64
	for i, n := range t.Names {
		if strings.HasPrefix(n, StallColPrefix) {
			stallNames = append(stallNames, strings.TrimPrefix(n, StallColPrefix))
			stallCols = append(stallCols, t.Cols[i])
		}
	}
	delta := func(col []int64, i int) int64 {
		if col == nil {
			return 0
		}
		if i == 0 {
			return col[0]
		}
		return col[i] - col[i-1]
	}
	out := make([]IntervalStats, t.Len())
	for i := range out {
		st := IntervalStats{Cycle: t.Cycles[i], Cycles: delta(t.Cycles, i)}
		st.Committed = delta(committed, i)
		st.Faults = delta(faults, i)
		if occ != nil {
			st.Occupancy = occ[i]
		}
		if st.Cycles > 0 {
			st.IPC = float64(st.Committed) / float64(st.Cycles)
			st.FaultRate = 1000 * float64(st.Faults) / float64(st.Cycles)
		}
		var total int64
		ds := make([]int64, len(stallCols))
		for c, col := range stallCols {
			ds[c] = delta(col, i)
			total += ds[c]
		}
		if total > 0 {
			st.StallShares = make(map[string]float64, len(stallCols))
			for c, d := range ds {
				if d == 0 {
					continue
				}
				share := float64(d) / float64(total)
				st.StallShares[stallNames[c]] = share
				// Ties break toward the lexicographically first reason
				// (stallNames is sorted), keeping the pick deterministic.
				if share > st.TopStallShare {
					st.TopStall, st.TopStallShare = stallNames[c], share
				}
			}
		}
		out[i] = st
	}
	return out
}

// intervals is Analyze over the view (export-path convenience).
func (v SeriesView) intervals() []IntervalStats {
	return Analyze(v.Table())
}

// FaultPhase is one contiguous run of sampling intervals with fault
// activity — a paging or lazy-allocation burst.
type FaultPhase struct {
	// FromCycle..ToCycle spans the phase (interval boundaries).
	FromCycle int64
	ToCycle   int64
	// Faults raised during the phase.
	Faults int64
	// MeanLatency is the mean fault service latency of the regions that
	// resolved during the phase, in cycles (0 when none resolved).
	MeanLatency float64
	// IPC is the committed rate across the phase.
	IPC float64
}

// SeriesStats is the summary simstat and the benchmarks report.
type SeriesStats struct {
	Samples int
	Cycles  int64
	// SteadyIPC is the median per-interval IPC — robust against the
	// fault-burst and drain phases that drag the whole-run mean down.
	SteadyIPC float64
	// MeanIPC is committed/cycles over the sampled span.
	MeanIPC float64
	// PeakStall is the interval-level maximum single-reason stall
	// share, with its reason and the cycle it peaked at.
	PeakStallReason string
	PeakStallShare  float64
	PeakStallCycle  int64
	// TotalFaults is the raised-fault count over the sampled span.
	TotalFaults int64
	// FaultPhases are the contiguous fault-activity bursts.
	FaultPhases []FaultPhase
}

// Summarize condenses a decoded series into its headline statistics.
func Summarize(t *SeriesTable) SeriesStats {
	iv := Analyze(t)
	var s SeriesStats
	if len(iv) == 0 {
		return s
	}
	s.Samples = len(iv)
	s.Cycles = iv[len(iv)-1].Cycle
	var committed int64
	ipcs := make([]float64, 0, len(iv))
	for _, st := range iv {
		committed += st.Committed
		s.TotalFaults += st.Faults
		if st.Cycles > 0 {
			ipcs = append(ipcs, st.IPC)
		}
		if st.TopStallShare > s.PeakStallShare {
			s.PeakStallReason, s.PeakStallShare, s.PeakStallCycle = st.TopStall, st.TopStallShare, st.Cycle
		}
	}
	if s.Cycles > 0 {
		s.MeanIPC = float64(committed) / float64(s.Cycles)
	}
	if len(ipcs) > 0 {
		sort.Float64s(ipcs)
		mid := len(ipcs) / 2
		if len(ipcs)%2 == 1 {
			s.SteadyIPC = ipcs[mid]
		} else {
			s.SteadyIPC = (ipcs[mid-1] + ipcs[mid]) / 2
		}
	}
	s.FaultPhases = faultPhases(t, iv)
	return s
}

// faultPhases segments the intervals into contiguous fault-activity
// runs and attributes service latency to each from the fault-latency
// histogram columns.
func faultPhases(t *SeriesTable, iv []IntervalStats) []FaultPhase {
	latCount := t.Col(ColFaultLatCount)
	latSum := t.Col(ColFaultLatSum)
	delta := func(col []int64, i int) int64 {
		if col == nil {
			return 0
		}
		if i == 0 {
			return col[0]
		}
		return col[i] - col[i-1]
	}
	var phases []FaultPhase
	var cur *FaultPhase
	var curLatN, curLatSum, curCommitted, curCycles int64
	flush := func() {
		if cur == nil {
			return
		}
		if curLatN > 0 {
			cur.MeanLatency = float64(curLatSum) / float64(curLatN)
		}
		if curCycles > 0 {
			cur.IPC = float64(curCommitted) / float64(curCycles)
		}
		phases = append(phases, *cur)
		cur = nil
	}
	for i, st := range iv {
		active := st.Faults > 0 || delta(latCount, i) > 0
		if !active {
			flush()
			continue
		}
		if cur == nil {
			cur = &FaultPhase{FromCycle: st.Cycle - st.Cycles}
			curLatN, curLatSum, curCommitted, curCycles = 0, 0, 0, 0
		}
		cur.ToCycle = st.Cycle
		cur.Faults += st.Faults
		curLatN += delta(latCount, i)
		curLatSum += delta(latSum, i)
		curCommitted += st.Committed
		curCycles += st.Cycles
	}
	flush()
	return phases
}
