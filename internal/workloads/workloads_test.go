package workloads

import (
	"testing"

	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/sim"
	"gpues/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	parboil := Names("parboil")
	want := []string{"bfs", "cutcp", "histo", "lbm", "mri-gridding", "mri-q",
		"sad", "sgemm", "spmv", "stencil", "tpacf"}
	if len(parboil) != len(want) {
		t.Fatalf("parboil suite = %v, want %v", parboil, want)
	}
	for i := range want {
		if parboil[i] != want[i] {
			t.Errorf("parboil[%d] = %s, want %s", i, parboil[i], want[i])
		}
	}
	if got := len(Names("halloc")); got != 4 {
		t.Errorf("halloc suite has %d workloads, want 4", got)
	}
	if got := len(Names("sdk")); got != 1 {
		t.Errorf("sdk suite has %d workloads, want 1", got)
	}
	if len(Names("")) != len(All()) {
		t.Error("Names(\"\") must cover the registry")
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload must error")
	}
}

// TestAllWorkloadsEmulate builds every workload at scale 1 and runs the
// whole grid through the functional emulator: this catches divergence
// bugs, bad addresses and shared memory violations in every kernel.
func TestAllWorkloadsEmulate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			spec, err := w.Build(Params{Scale: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Launch.Kernel.Validate(); err != nil {
				t.Fatal(err)
			}
			e, err := emu.New(spec.Launch, spec.Memory, 128)
			if err != nil {
				t.Fatal(err)
			}
			totalInsts, totalMem := 0, 0
			for blk := 0; blk < spec.Launch.Blocks(); blk++ {
				bt, err := e.EmulateBlock(blk)
				if err != nil {
					t.Fatalf("block %d: %v", blk, err)
				}
				totalInsts += bt.DynInsts
				totalMem += bt.GlobalAccesses
				// Every global access must fall inside a registered
				// region (otherwise the timing run aborts).
				for i := range bt.Warps {
					for j := range bt.Warps[i].Insts {
						ti := &bt.Warps[i].Insts[j]
						if !ti.Static.IsGlobalMem() {
							continue
						}
						for _, line := range ti.Lines {
							if !inRegions(spec.Regions, line) {
								t.Fatalf("block %d pc %d: access %#x outside regions",
									blk, ti.PC, line)
							}
						}
					}
				}
			}
			if totalInsts == 0 || totalMem == 0 {
				t.Fatalf("degenerate workload: %d insts, %d mem accesses", totalInsts, totalMem)
			}
			t.Logf("%s: %d blocks, %d dyn warp insts, %d global accesses",
				w.Name, spec.Launch.Blocks(), totalInsts, totalMem)
		})
	}
}

func inRegions(regs []vm.Region, addr uint64) bool {
	for i := range regs {
		if regs[i].Contains(addr) {
			return true
		}
	}
	return false
}

// TestWorkloadsDeterministic: two builds with the same parameters yield
// identical traces (required for scheme comparisons to be meaningful).
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"sgemm", "spmv", "halloc-spree"} {
		a, err := Build(name, Params{Scale: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(name, Params{Scale: 1})
		if err != nil {
			t.Fatal(err)
		}
		ea, _ := emu.New(a.Launch, a.Memory, 128)
		eb, _ := emu.New(b.Launch, b.Memory, 128)
		ta, err := ea.EmulateBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := eb.EmulateBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		if ta.DynInsts != tb.DynInsts || ta.MemRequests != tb.MemRequests {
			t.Errorf("%s: builds differ (%d/%d insts, %d/%d reqs)",
				name, ta.DynInsts, tb.DynInsts, ta.MemRequests, tb.MemRequests)
		}
	}
}

// TestRepresentativeFullSim runs three representative workloads through
// the full timing simulator.
func TestRepresentativeFullSim(t *testing.T) {
	if testing.Short() {
		t.Skip("full sim runs")
	}
	for _, name := range []string{"sgemm", "lbm", "histo"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Build(name, Params{Scale: 1})
			if err != nil {
				t.Fatal(err)
			}
			cfg := config.Default()
			r, err := sim.RunSpec(cfg, spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.Blocks != spec.Launch.Blocks() {
				t.Errorf("completed %d of %d blocks", r.Blocks, spec.Launch.Blocks())
			}
			if r.FaultUnit.Raised != 0 {
				t.Errorf("resident run raised %d faults", r.FaultUnit.Raised)
			}
			t.Logf("%s: %d cycles, IPC %.2f, occupancy %d blocks/SM",
				name, r.Cycles, r.IPC(), r.Occupancy)
		})
	}
}

// TestLBMOccupancy: lbm must run at 8 warps (2 blocks of 4 warps) per
// SM, like the paper's register-starved original.
func TestLBMOccupancy(t *testing.T) {
	spec, err := Build("lbm", Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	occ := spec.Launch.Occupancy(cfg.SM.MaxThreadBlocks, cfg.SM.MaxWarps,
		cfg.SM.WarpSize, cfg.SM.RegisterFileKB, cfg.SM.SharedMemoryKB)
	if occ != 2 {
		t.Errorf("lbm occupancy = %d blocks, want 2 (8 warps)", occ)
	}
}

// TestPlacements: demand-paging and lazy-output placements register the
// right region kinds.
func TestPlacements(t *testing.T) {
	dp, err := Build("stencil", Params{Scale: 1, Placement: DemandPaging()})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]vm.RegionKind{}
	for _, r := range dp.Regions {
		kinds[r.Name] = r.Kind
	}
	if kinds["in"] != vm.RegionCPUInit || kinds["out"] != vm.RegionCPUClean {
		t.Errorf("demand paging kinds = %v", kinds)
	}
	lz, err := Build("stencil", Params{Scale: 1, Placement: LazyOutput()})
	if err != nil {
		t.Fatal(err)
	}
	kinds = map[string]vm.RegionKind{}
	for _, r := range lz.Regions {
		kinds[r.Name] = r.Kind
	}
	if kinds["in"] != vm.RegionGPUInit || kinds["out"] != vm.RegionLazy {
		t.Errorf("lazy output kinds = %v", kinds)
	}
}
