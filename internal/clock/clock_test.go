package clock

import "testing"

func TestEventOrdering(t *testing.T) {
	q := New()
	var order []int
	q.At(5, func() { order = append(order, 5) })
	q.At(2, func() { order = append(order, 2) })
	q.At(2, func() { order = append(order, 20) }) // same-cycle FIFO
	q.At(9, func() { order = append(order, 9) })
	for q.Len() > 0 {
		q.Step()
	}
	want := []int{2, 20, 5, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	q := New()
	fired := int64(-1)
	q.SkipTo(10)
	q.After(5, func() { fired = q.Now() })
	q.SkipTo(20)
	if fired != 15 {
		t.Errorf("fired at %d, want 15", fired)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	q := New()
	q.SkipTo(100)
	ran := false
	q.At(50, func() { ran = true })
	q.RunDue()
	if !ran {
		t.Error("past-scheduled event did not run")
	}
}

func TestCascadingSameCycleEvents(t *testing.T) {
	q := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			q.At(q.Now(), recurse)
		}
	}
	q.At(3, recurse)
	q.SkipTo(3)
	if depth != 5 {
		t.Errorf("cascade depth = %d, want 5", depth)
	}
}

func TestNextEvent(t *testing.T) {
	q := New()
	if _, ok := q.NextEvent(); ok {
		t.Error("empty queue reported an event")
	}
	q.At(42, func() {})
	if c, ok := q.NextEvent(); !ok || c != 42 {
		t.Errorf("NextEvent = %d,%v", c, ok)
	}
}

func TestSkipToNeverGoesBack(t *testing.T) {
	q := New()
	q.SkipTo(10)
	q.SkipTo(5)
	if q.Now() != 10 {
		t.Errorf("Now = %d, want 10", q.Now())
	}
}
