package sim

import (
	"testing"

	"gpues/internal/config"
	"gpues/internal/vm"
)

// TestCPUCleanOutputsAllocOnly: demand-paging placement marks outputs
// CPU-clean; writes to them must raise allocation-only faults (no data
// transfer), while dirty inputs migrate.
func TestCPUCleanOutputsAllocOnly(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	spec := testSpec(t, 8, 128, vm.RegionCPUInit, vm.RegionCPUClean)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUFaults.Migrations == 0 {
		t.Error("dirty inputs must migrate")
	}
	if r.CPUFaults.AllocOnly == 0 {
		t.Error("clean outputs must raise allocation-only faults")
	}
	if r.Blocks != 8 {
		t.Errorf("blocks = %d", r.Blocks)
	}
}

// TestPCIeSlowerThanNVLink: the same paging run costs more over PCIe
// (25 us vs 12 us migrations).
func TestPCIeSlowerThanNVLink(t *testing.T) {
	run := func(link config.InterconnectConfig) int64 {
		cfg := config.Default()
		cfg.Scheme = config.ReplayQueue
		cfg.DemandPaging = true
		cfg.Link = link
		spec := testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionGPUInit)
		r, err := RunSpec(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	nv := run(config.NVLinkConfig())
	pc := run(config.PCIeConfig())
	if pc <= nv {
		t.Errorf("PCIe run (%d cycles) not slower than NVLink (%d)", pc, nv)
	}
}

// TestOperandLogNeverSlowerThanReplayQueue at the largest log size: the
// log strictly relaxes the replay queue's source holds.
func TestOperandLogNeverSlowerThanReplayQueue(t *testing.T) {
	run := func(scheme config.Scheme, logKB int) int64 {
		cfg := config.Default()
		cfg.Scheme = scheme
		cfg.SM.OperandLog.SizeKB = logKB
		spec := testSpec(t, 32, 128, vm.RegionGPUInit, vm.RegionGPUInit)
		r, err := RunSpec(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	rq := run(config.ReplayQueue, 16)
	ol := run(config.OperandLog, 64)
	// 2% tolerance for second-order structural effects.
	if float64(ol) > float64(rq)*1.02 {
		t.Errorf("operand log with a large log (%d cycles) slower than replay queue (%d)", ol, rq)
	}
}

// TestGreedyIssueCompletes: the alternative scheduler runs the full
// system correctly.
func TestGreedyIssueCompletes(t *testing.T) {
	cfg := config.Default()
	cfg.SM.GreedyIssue = true
	spec := testSpec(t, 16, 128, vm.RegionGPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 16 {
		t.Errorf("blocks = %d, want 16", r.Blocks)
	}
	if r.Committed != 16*4*16 {
		t.Errorf("committed = %d", r.Committed)
	}
}

// TestLocalHandlerConcurrencyKnob: higher configured concurrency cannot
// slow the lazy-allocation run down.
func TestLocalHandlerConcurrencyKnob(t *testing.T) {
	run := func(conc int) int64 {
		cfg := config.Default()
		cfg.Scheme = config.ReplayQueue
		cfg.Local.Enabled = true
		cfg.Local.Concurrency = conc
		spec := testSpec(t, 32, 128, vm.RegionGPUInit, vm.RegionLazy)
		r, err := RunSpec(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	one := run(1)
	eight := run(8)
	if eight > one {
		t.Errorf("concurrency 8 (%d cycles) slower than 1 (%d)", eight, one)
	}
}

// TestSmallGPUStillWorks: a 2-SM configuration runs the full stack.
func TestSmallGPUStillWorks(t *testing.T) {
	cfg := config.Default()
	cfg.System.NumSMs = 2
	spec := testSpec(t, 16, 128, vm.RegionGPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SMs) != 2 || r.Blocks != 16 {
		t.Errorf("SMs=%d blocks=%d", len(r.SMs), r.Blocks)
	}
}

// TestGridSmallerThanGPU: fewer blocks than SMs leaves idle SMs without
// wedging the run loop.
func TestGridSmallerThanGPU(t *testing.T) {
	cfg := config.Default()
	spec := testSpec(t, 3, 64, vm.RegionGPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 3 {
		t.Errorf("blocks = %d, want 3", r.Blocks)
	}
}

// TestSwitchingWithOperandLog: block switching composes with the
// operand-log scheme (its log contents join the context).
func TestSwitchingWithOperandLog(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.OperandLog
	cfg.DemandPaging = true
	cfg.Scheduler.Enabled = true
	cfg.Scheduler.SwitchThreshold = 0
	cfg.SM.MaxThreadBlocks = 2 // force pending blocks so switching has work
	spec := testSpec(t, 64, 128, vm.RegionCPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 64 {
		t.Errorf("blocks = %d, want 64", r.Blocks)
	}
	var out int64
	for _, s := range r.SMs {
		out += s.SwitchesOut
	}
	t.Logf("switches out = %d", out)
}

// TestMaxCyclesGuard: a tiny cycle budget aborts with a clear error.
func TestMaxCyclesGuard(t *testing.T) {
	cfg := config.Default()
	spec := testSpec(t, 16, 128, vm.RegionGPUInit, vm.RegionGPUInit)
	s, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxCycles = 10
	if _, err := s.Run(); err == nil {
		t.Fatal("MaxCycles guard did not trip")
	}
}
