// Package vm implements the virtual memory substrate of the modelled
// system: a radix page table, physical memory allocators for the CPU and
// GPU memories, fault classification (migration vs. lazy allocation vs.
// invalid access), and the system-level synchronization (Szymanski's
// algorithm) the paper's concurrent memory management relies on
// (Section 4.2).
package vm

import "fmt"

// PageState describes where a virtual page currently lives.
type PageState uint8

const (
	// PageUnmapped pages have no physical backing anywhere. A GPU access
	// is a first-touch fault that only needs allocation (lazy
	// allocation).
	PageUnmapped PageState = iota
	// PageCPU pages are resident in CPU memory; a GPU access requires a
	// migration (allocation + data transfer if dirty).
	PageCPU
	// PageGPU pages are resident in GPU memory; accesses hit.
	PageGPU
)

// String names the state.
func (s PageState) String() string {
	switch s {
	case PageUnmapped:
		return "unmapped"
	case PageCPU:
		return "cpu"
	case PageGPU:
		return "gpu"
	}
	return fmt.Sprintf("PageState(%d)", uint8(s))
}

// PTE is a page table entry.
type PTE struct {
	State PageState
	// PA is the physical frame address in the memory named by State.
	PA uint64
	// Dirty marks CPU pages whose contents must be transferred on
	// migration. Clean CPU pages (and unmapped pages) only need
	// allocation.
	Dirty bool
}

// Present reports whether a GPU access to the page hits (no fault).
func (p PTE) Present() bool { return p.State == PageGPU }

// Page table geometry: 4 levels of 9 bits over 4 KB pages covers a
// 48-bit virtual address space, mirroring x86-64-style tables that GPU
// fill units walk.
const (
	levelBits = 9
	numLevels = 4
	fanout    = 1 << levelBits
)

type ptNode struct {
	children [fanout]*ptNode
	entries  []PTE // leaf level only
}

// PageTable is a radix page table over fixed-size pages. The zero value
// is not usable; call NewPageTable.
type PageTable struct {
	root      ptNode
	pageBits  uint
	pageSize  uint64
	numMapped int
}

// NewPageTable returns an empty table for the given page size (a power
// of two).
func NewPageTable(pageSize int) (*PageTable, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("vm: page size %d not a positive power of two", pageSize)
	}
	bits := uint(0)
	for 1<<bits < pageSize {
		bits++
	}
	return &PageTable{pageBits: bits, pageSize: uint64(pageSize)}, nil
}

// PageSize returns the page size in bytes.
func (pt *PageTable) PageSize() uint64 { return pt.pageSize }

// PageBase returns the page-aligned base of va.
func (pt *PageTable) PageBase(va uint64) uint64 { return va &^ (pt.pageSize - 1) }

// MappedPages returns the number of entries not in the unmapped state.
func (pt *PageTable) MappedPages() int { return pt.numMapped }

func (pt *PageTable) indices(va uint64) [numLevels]int {
	vpn := va >> pt.pageBits
	var idx [numLevels]int
	for l := numLevels - 1; l >= 0; l-- {
		idx[l] = int(vpn & (fanout - 1))
		vpn >>= levelBits
	}
	return idx
}

// Lookup walks the table and returns the entry for va. Missing paths
// return a zero (unmapped) entry. The walk visits one node per level,
// exactly what the fill unit's walkers model with their 500-cycle
// latency.
func (pt *PageTable) Lookup(va uint64) PTE {
	idx := pt.indices(va)
	n := &pt.root
	for l := 0; l < numLevels-1; l++ {
		n = n.children[idx[l]]
		if n == nil {
			return PTE{}
		}
	}
	if n.entries == nil {
		return PTE{}
	}
	return n.entries[idx[numLevels-1]]
}

// Set installs the entry for va, creating intermediate nodes as needed.
func (pt *PageTable) Set(va uint64, e PTE) {
	idx := pt.indices(va)
	n := &pt.root
	for l := 0; l < numLevels-1; l++ {
		c := n.children[idx[l]]
		if c == nil {
			c = &ptNode{}
			n.children[idx[l]] = c
		}
		n = c
	}
	if n.entries == nil {
		n.entries = make([]PTE, fanout)
	}
	old := n.entries[idx[numLevels-1]]
	if old.State == PageUnmapped && e.State != PageUnmapped {
		pt.numMapped++
	} else if old.State != PageUnmapped && e.State == PageUnmapped {
		pt.numMapped--
	}
	n.entries[idx[numLevels-1]] = e
}

// ForRange calls fn for each page base in [va, va+n), in ascending
// order. fn receives the page base address.
func (pt *PageTable) ForRange(va uint64, n int, fn func(pageVA uint64)) {
	if n <= 0 {
		return
	}
	first := pt.PageBase(va)
	last := pt.PageBase(va + uint64(n) - 1)
	for p := first; ; p += pt.pageSize {
		fn(p)
		if p == last {
			break
		}
	}
}
