// Package shardpurity proves the parallel tick phase's isolation
// contract at compile time: everything reachable from a tick root (a
// function annotated //simlint:tickroot — SM.TickStaged in the real
// machine) may mutate only per-shard receiver state and the staged
// effect ledgers (clock.Stage, obs.EmitStage). The three shared-effect
// streams a sequential tick would hit directly — clock.Queue.After,
// obs.Tracer.Emit, obs.Histogram.Observe — must be staged instead, and
// no tick-reachable code may write shared L2/DRAM/link/fault-queue
// state.
//
// Before this analyzer the contract was policed only at runtime, by the
// differential worker matrix (a stray unstaged effect shows up as a
// cycle-count or digest divergence across -workers values). Now a stray
// Queue.After in a tick-reachable function is a CI failure that names
// the call chain from the root.
//
// The proof is interprocedural and fact-based: each package's Run phase
// summarizes every function (banned effect calls, shared-state writes,
// dynamic calls, interface dispatches, static callees) as an exported
// PurityFact; the Finish phase walks the call graph those facts form,
// from every tick root, resolving interface dispatches against all
// implementations known to the program.
//
// A function annotated //simlint:shardsafe is a verified boundary: it
// upholds the contract by construction (it stages its effects when a
// ledger is installed, or is gated off the parallel path at runtime),
// so traversal stops there and its body is exempt. Every annotation is
// a reviewed assertion, same as the determinism analyzer's spawn rule.
package shardpurity

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gpues/internal/analysis"
)

// Analyzer is the parallel-tick purity check.
var Analyzer = &analysis.Analyzer{
	Name: "shardpurity",
	Doc: "prove code reachable from //simlint:tickroot functions stages every shared effect " +
		"(no direct Queue.After/Tracer.Emit/Histogram.Observe, no shared-state writes)",
	Run:       run,
	FactTypes: []analysis.Fact{(*PurityFact)(nil)},
	Finish:    finish,
}

// Site is one offending location inside a function: a banned call, a
// shared-state write, or an unresolvable dynamic call.
type Site struct {
	// What describes the offense for the diagnostic.
	What string
	// PosStr is the site's position, stable across fact serialization.
	PosStr string

	// pos is the in-process position; valid only when the fact was
	// produced in this process (gob does not carry it across).
	pos token.Pos
}

// IfaceSite is one interface-method dispatch; the Finish phase resolves
// it against every implementation the program knows.
type IfaceSite struct {
	// PkgPath and Iface name the interface type; Method the method.
	PkgPath, Iface, Method string
	// PosStr locates the call for diagnostics.
	PosStr string

	pos token.Pos
}

// PurityFact is one function's summary for the purity proof.
type PurityFact struct {
	// Shardsafe marks a //simlint:shardsafe boundary (body exempt).
	Shardsafe bool
	// Tickroot marks a //simlint:tickroot traversal root.
	Tickroot bool
	// DeclPosStr locates the declaration (used to attribute offenses
	// found in packages whose source the reporting pass cannot see).
	DeclPosStr string
	// Effects are direct calls into the banned shared-effect streams.
	Effects []Site
	// Writes are shared-state mutations.
	Writes []Site
	// Dynamics are calls through function values, which the static
	// graph cannot follow.
	Dynamics []Site
	// Ifaces are interface dispatches, resolved at Finish time.
	Ifaces []IfaceSite
	// Callees are the statically-resolved calls.
	Callees []analysis.FuncRef

	declPos token.Pos
}

// AFact marks PurityFact as a serializable fact.
func (*PurityFact) AFact() {}

// bannedMethods are the shared-effect streams the tick phase must
// stage. Receiver type and method name, keyed by the defining package's
// path suffix.
var bannedMethods = map[[2]string]string{
	{"internal/clock", "Queue.After"}:     "schedules directly on the shared event queue (stage it via clock.Stage / the SM ledger)",
	{"internal/obs", "Tracer.Emit"}:       "emits directly on the shared tracer (stage it via obs.EmitStage / the SM ledger)",
	{"internal/obs", "Histogram.Observe"}: "observes directly into a shared histogram (stage the sample in the SM ledger)",
}

// sharedPkgs are the packages whose receiver state is shared across
// shards (L2/DRAM/link/fault-queue and friends): a tick-reachable write
// to any of it breaks shard isolation. The SM package itself is absent
// on purpose — receiver state there is per-shard by construction.
var sharedPkgs = []string{
	"internal/clock",
	"internal/obs",
	"internal/cache",
	"internal/tlb",
	"internal/dram",
	"internal/interconnect",
	"internal/host",
	"internal/vm",
	"internal/emu",
	"internal/chaos",
	"internal/core",
	"internal/sim",
}

// ledgerTypes are the staged effect ledgers: per-shard by contract,
// writable from the tick phase, flushed deterministically by the main
// goroutine.
var ledgerTypes = map[[2]string]bool{
	{"internal/clock", "Stage"}:   true,
	{"internal/obs", "EmitStage"}: true,
}

func pkgIsShared(path string) bool {
	for _, seg := range sharedPkgs {
		if path == seg || strings.HasSuffix(path, "/"+seg) {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers to a named type.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeIn reports whether the named type is declared in a package whose
// path ends with seg, and matches name.
func typeMatches(named *types.Named, seg, name string) bool {
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Name() != name {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == seg || strings.HasSuffix(p, "/"+seg)
}

func isLedgerType(named *types.Named) bool {
	for key := range ledgerTypes {
		if typeMatches(named, key[0], key[1]) {
			return true
		}
	}
	return false
}

// run summarizes every function in the package as a PurityFact.
func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			fact := summarize(pass, fn)
			pass.ExportObjectFact(obj, fact)
		}
	}
	return nil
}

func posOf(pass *analysis.Pass, pos token.Pos) (token.Pos, string) {
	return pos, pass.Fset.Position(pos).String()
}

// summarize builds one function's PurityFact.
func summarize(pass *analysis.Pass, fn *ast.FuncDecl) *PurityFact {
	fact := &PurityFact{}
	fact.declPos, fact.DeclPosStr = posOf(pass, fn.Pos())
	if _, ok := analysis.FuncHasDirective(fn, "shardsafe"); ok {
		fact.Shardsafe = true
		return fact
	}
	if _, ok := analysis.FuncHasDirective(fn, "tickroot"); ok {
		fact.Tickroot = true
	}

	shared := pkgIsShared(pass.Pkg.Path())
	var recvObj types.Object
	recvLedger := false
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvObj = pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
		if recvObj != nil {
			recvLedger = isLedgerType(namedOf(recvObj.Type()))
		}
	}

	seenCallee := map[analysis.FuncRef]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			summarizeCall(pass, fact, n, seenCallee)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, fact, lhs, shared, recvObj, recvLedger)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, fact, n.X, shared, recvObj, recvLedger)
		case *ast.SendStmt:
			pos, str := posOf(pass, n.Pos())
			fact.Writes = append(fact.Writes, Site{What: "sends on a channel", PosStr: str, pos: pos})
		}
		return true
	})
	return fact
}

// summarizeCall classifies one call site: banned effect stream, static
// callee edge, interface dispatch, or dynamic call.
func summarizeCall(pass *analysis.Pass, fact *PurityFact, call *ast.CallExpr, seen map[analysis.FuncRef]bool) {
	// Conversions and builtins are effect-free here.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return
		}
	}
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil {
		pos, str := posOf(pass, call.Pos())
		fact.Dynamics = append(fact.Dynamics, Site{
			What:   "calls through a function value the static call graph cannot follow",
			PosStr: str, pos: pos,
		})
		return
	}
	sig := callee.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil && named.Obj().Pkg() != nil {
			pkgPath := named.Obj().Pkg().Path()
			for key, why := range bannedMethods {
				tname, mname, _ := strings.Cut(key[1], ".")
				if callee.Name() == mname && typeMatches(named, key[0], tname) {
					pos, str := posOf(pass, call.Pos())
					fact.Effects = append(fact.Effects, Site{
						What:   fmt.Sprintf("%s.%s %s", tname, mname, why),
						PosStr: str, pos: pos,
					})
					return
				}
			}
			if types.IsInterface(named.Obj().Type().Underlying()) || analysis.IsInterfaceCall(pass.TypesInfo, call) {
				pos, str := posOf(pass, call.Pos())
				fact.Ifaces = append(fact.Ifaces, IfaceSite{
					PkgPath: pkgPath, Iface: named.Obj().Name(), Method: callee.Name(),
					PosStr: str, pos: pos,
				})
				return
			}
		}
	}
	if ref, ok := analysis.FuncRefOf(callee); ok && !seen[ref] {
		seen[ref] = true
		fact.Callees = append(fact.Callees, ref)
	}
}

// checkWrite flags a mutation whose target is shared across shards: a
// package-level variable (any package), receiver state in a
// shared-component package, or anything reached through a value of a
// shared-package named type (s.q.x, l2.sets[i], ...). Ledger types are
// exempt — staging into them is the sanctioned idiom.
func checkWrite(pass *analysis.Pass, fact *PurityFact, lhs ast.Expr, sharedPkg bool, recvObj types.Object, recvLedger bool) {
	report := func(pos token.Pos, what string) {
		p, str := posOf(pass, pos)
		fact.Writes = append(fact.Writes, Site{What: what, PosStr: str, pos: p})
	}
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			if obj == nil || e.Name == "_" {
				return
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
				v.Parent() == v.Pkg().Scope() {
				report(e.Pos(), fmt.Sprintf("writes package-level variable %s", e.Name))
				return
			}
			if sharedPkg && !recvLedger && recvObj != nil && obj == recvObj {
				report(e.Pos(), "mutates receiver state of a shared component type")
				return
			}
			return
		case *ast.SelectorExpr:
			// Writing through a chain that passes a shared-package named
			// type mutates that shared object, whoever holds the pointer.
			if named := namedOf(pass.TypesInfo.Types[e.X].Type); named != nil && !isLedgerType(named) {
				if p := named.Obj().Pkg(); p != nil && pkgIsShared(p.Path()) && p.Path() != pass.Pkg.Path() {
					report(e.Pos(), fmt.Sprintf("writes state of shared type %s.%s", p.Name(), named.Obj().Name()))
					return
				}
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// ---- Finish: whole-program reachability from the tick roots ----

// finish walks the fact-built call graph from every tick root and
// reports each banned effect, shared write, and unprovable dynamic
// call reachable outside a shardsafe boundary, with the call chain
// that reaches it.
func finish(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	// Index every summarized function by ref; remember objects so
	// interface dispatches can be matched against receiver types.
	facts := map[analysis.FuncRef]*PurityFact{}
	objs := map[analysis.FuncRef]types.Object{}
	var roots []analysis.FuncRef
	for _, of := range prog.Facts.All((*PurityFact)(nil)) {
		fn, ok := of.Object.(*types.Func)
		if !ok {
			continue
		}
		ref, ok := analysis.FuncRefOf(fn)
		if !ok {
			continue
		}
		fact := of.Fact.(*PurityFact)
		facts[ref] = fact
		objs[ref] = fn
		if fact.Tickroot {
			roots = append(roots, ref)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}

	// All packages the program can name types in: the loaded packages
	// plus their transitive imports (vettool mode sees dependencies as
	// export data only, but their types still resolve).
	pkgs := map[string]*types.Package{}
	var addImports func(p *types.Package)
	addImports = func(p *types.Package) {
		if pkgs[p.Path()] != nil {
			return
		}
		pkgs[p.Path()] = p
		for _, imp := range p.Imports() {
			addImports(imp)
		}
	}
	for _, lp := range prog.Pkgs {
		addImports(lp.Types)
	}

	// BFS from the roots; parent edges reconstruct the chain shown in
	// diagnostics.
	type qitem struct {
		ref   analysis.FuncRef
		depth int
	}
	parent := map[analysis.FuncRef]analysis.FuncRef{}
	visited := map[analysis.FuncRef]bool{}
	var queue []qitem
	for _, r := range roots {
		visited[r] = true
		queue = append(queue, qitem{r, 0})
	}
	var diags []analysis.Diagnostic
	const maxDepth = 64 // cycle guard; chains are far shorter in practice

	push := func(from, to analysis.FuncRef, depth int) {
		if visited[to] || depth >= maxDepth {
			return
		}
		fact, ok := facts[to]
		if !ok || fact.Shardsafe {
			return // unknown (no body / out of program) or verified boundary
		}
		visited[to] = true
		parent[to] = from
		queue = append(queue, qitem{to, depth})
	}

	chainOf := func(ref analysis.FuncRef) string {
		var parts []string
		for r := ref; ; {
			parts = append(parts, r.String())
			p, ok := parent[r]
			if !ok {
				break
			}
			r = p
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, " → ")
	}

	report := func(ref analysis.FuncRef, s Site) {
		pos := s.pos
		msg := fmt.Sprintf("tick phase is not shard-pure: %s (at %s, reachable via %s); stage the effect through the SM ledger or mark a reviewed boundary //simlint:shardsafe",
			s.What, s.PosStr, chainOf(ref))
		if !pos.IsValid() {
			// Cross-process fact: anchor the diagnostic at the root.
			pos = facts[rootOf(parent, ref)].declPos
		}
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: msg})
	}

	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fact := facts[it.ref]
		for _, s := range fact.Effects {
			report(it.ref, s)
		}
		for _, s := range fact.Writes {
			report(it.ref, s)
		}
		for _, s := range fact.Dynamics {
			report(it.ref, s)
		}
		for _, c := range fact.Callees {
			push(it.ref, c, it.depth+1)
		}
		for _, is := range fact.Ifaces {
			for _, impl := range implementations(is, pkgs, objs) {
				push(it.ref, impl, it.depth+1)
			}
		}
	}
	return diags, nil
}

// rootOf follows parent edges to the BFS root.
func rootOf(parent map[analysis.FuncRef]analysis.FuncRef, ref analysis.FuncRef) analysis.FuncRef {
	for {
		p, ok := parent[ref]
		if !ok {
			return ref
		}
		ref = p
	}
}

// implementations resolves an interface dispatch to the summarized
// methods of every known type implementing the interface. Types the
// program has no summary for contribute nothing — in vettool mode an
// implementation living in a package that imports the current one is
// invisible, which is why CI runs the standalone whole-program mode.
func implementations(is IfaceSite, pkgs map[string]*types.Package, objs map[analysis.FuncRef]types.Object) []analysis.FuncRef {
	pkg := pkgs[is.PkgPath]
	if pkg == nil {
		return nil
	}
	tn, ok := pkg.Scope().Lookup(is.Iface).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []analysis.FuncRef
	for ref, obj := range objs {
		fn := obj.(*types.Func)
		if fn.Name() != is.Method {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		named := namedOf(recv.Type())
		if named == nil {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, ref)
		}
	}
	// objs is a map; sort so traversal (and thus the chains shown in
	// diagnostics) is deterministic run to run.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
