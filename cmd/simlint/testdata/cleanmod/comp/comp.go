// Package comp is a checkpoint-complete component: every field is
// saved and restored, so the suite must exit 0.
package comp

import "cleanmod/internal/ckpt"

// Counter is a fully covered Saver.
type Counter struct {
	ticks int64
	drops int64
}

// SaveState serializes both fields.
func (c *Counter) SaveState(w *ckpt.Writer) {
	w.I64(c.ticks)
	w.I64(c.drops)
}

// RestoreState reads both fields back.
func (c *Counter) RestoreState(r *ckpt.Reader) error {
	c.ticks = r.I64()
	c.drops = r.I64()
	return r.Err()
}
