package obs

import (
	"bytes"
	"strings"
	"testing"
)

// seriesRegistry builds a small registry with one of each instrument
// kind, returning the mutable handles.
func seriesRegistry() (*Registry, *Counter, *int64, *Histogram) {
	r := NewRegistry()
	c := r.Counter("sm.committed")
	g := new(int64)
	r.Gauge("sm.occupancy_blocks", func() int64 { return *g })
	h := r.Histogram("fault.latency_cycles")
	return r, c, g, h
}

func TestSamplerColumnsSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta")
	r.Gauge("alpha", func() int64 { return 0 })
	r.Histogram("mid")
	sp := NewSampler(100, r)
	want := []string{"alpha", "mid.count", "mid.sum", "zeta"}
	if len(sp.names) != len(want) {
		t.Fatalf("columns = %v, want %v", sp.names, want)
	}
	for i := range want {
		if sp.names[i] != want[i] {
			t.Fatalf("columns = %v, want %v", sp.names, want)
		}
	}
}

func TestSamplerDeltaRoundTrip(t *testing.T) {
	r, c, g, h := seriesRegistry()
	sp := NewSampler(1000, r)

	c.Add(10)
	*g = 4
	h.Observe(100)
	sp.Sample(1000)

	c.Add(5)
	*g = 2
	h.Observe(300)
	h.Observe(50)
	sp.Sample(2000)

	sp.Sample(5000) // idle interval: all deltas zero but the clock

	tab := sp.View().Table()
	if tab.Len() != 3 {
		t.Fatalf("table has %d rows, want 3", tab.Len())
	}
	wantCycles := []int64{1000, 2000, 5000}
	for i, w := range wantCycles {
		if tab.Cycles[i] != w {
			t.Fatalf("cycles = %v, want %v", tab.Cycles, wantCycles)
		}
	}
	check := func(col string, want []int64) {
		t.Helper()
		got := tab.Col(col)
		if got == nil {
			t.Fatalf("missing column %q (have %v)", col, tab.Names)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s = %v, want %v", col, got, want)
			}
		}
	}
	check("sm.committed", []int64{10, 15, 15})
	check("sm.occupancy_blocks", []int64{4, 2, 2})
	check("fault.latency_cycles.count", []int64{1, 3, 3})
	check("fault.latency_cycles.sum", []int64{100, 450, 450})
}

func TestSampleHotPathDoesNotAllocate(t *testing.T) {
	r, c, g, h := seriesRegistry()
	sp := NewSampler(10, r)
	cycle := int64(0)
	allocs := testing.AllocsPerRun(samplerWarmup-8, func() {
		cycle += 10
		c.Add(3)
		*g++
		h.Observe(cycle)
		sp.Sample(cycle)
	})
	if allocs != 0 {
		t.Fatalf("Sample allocated %.1f times per call within warm-up capacity", allocs)
	}
}

func TestSamplerGrowsPastWarmup(t *testing.T) {
	r, c, _, _ := seriesRegistry()
	sp := NewSampler(1, r)
	n := samplerWarmup*3 + 7
	for i := 1; i <= n; i++ {
		c.Add(1)
		sp.Sample(int64(i))
	}
	if sp.Len() != n {
		t.Fatalf("Len = %d, want %d", sp.Len(), n)
	}
	tab := sp.View().Table()
	col := tab.Col("sm.committed")
	if col[n-1] != int64(n) {
		t.Fatalf("final committed = %d, want %d", col[n-1], n)
	}
}

func TestSeriesViewIsStableUnderAppend(t *testing.T) {
	r, c, _, _ := seriesRegistry()
	sp := NewSampler(10, r)
	c.Add(7)
	sp.Sample(10)
	view := sp.View()
	// Keep sampling past the view; the view must not change, even
	// across a grow of the backing array.
	for i := 2; i <= samplerWarmup+4; i++ {
		c.Add(1)
		sp.Sample(int64(i * 10))
	}
	if view.N != 1 {
		t.Fatalf("view.N = %d, want 1", view.N)
	}
	if got := view.Table().Col("sm.committed")[0]; got != 7 {
		t.Fatalf("view committed = %d, want 7", got)
	}
}

func TestSeriesNDJSONRoundTripAndDeterminism(t *testing.T) {
	build := func() SeriesView {
		r, c, g, h := seriesRegistry()
		r2 := r.Counter("faultunit.raised")
		sp := NewSampler(500, r)
		for i := 1; i <= 4; i++ {
			c.Add(int64(100 * i))
			*g = int64(i)
			if i%2 == 0 {
				r2.Add(3)
				h.Observe(int64(40 * i))
			}
			sp.Sample(int64(500 * i))
		}
		return sp.View()
	}
	var a, b bytes.Buffer
	if err := build().WriteNDJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical series exported different NDJSON bytes")
	}
	if !strings.Contains(a.String(), seriesSchema) {
		t.Fatalf("export missing schema tag:\n%s", a.String())
	}

	tab, err := ReadSeriesNDJSON(&a)
	if err != nil {
		t.Fatal(err)
	}
	want := build().Table()
	if tab.Len() != want.Len() || len(tab.Names) != len(want.Names) {
		t.Fatalf("round trip shape %dx%d, want %dx%d", tab.Len(), len(tab.Names), want.Len(), len(want.Names))
	}
	for i := range want.Names {
		if tab.Names[i] != want.Names[i] {
			t.Fatalf("round trip names %v, want %v", tab.Names, want.Names)
		}
		for j := 0; j < want.Len(); j++ {
			if tab.Cols[i][j] != want.Cols[i][j] {
				t.Fatalf("round trip col %s[%d] = %d, want %d",
					want.Names[i], j, tab.Cols[i][j], want.Cols[i][j])
			}
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	r, c, _, _ := seriesRegistry()
	sp := NewSampler(10, r)
	c.Add(5)
	sp.Sample(10)
	c.Add(5)
	sp.Sample(20)
	var buf bytes.Buffer
	if err := sp.View().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "cycle,") {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "20,") {
		t.Fatalf("CSV row %q", lines[2])
	}
}

func TestAnalyzeDerivedRates(t *testing.T) {
	r := NewRegistry()
	committed := r.Counter(ColCommitted)
	faults := r.Counter(ColFaultsRaised)
	scoreboard := r.Counter(StallColPrefix + "scoreboard")
	faultWait := r.Counter(StallColPrefix + "fault-wait")
	sp := NewSampler(1000, r)

	committed.Add(2000) // interval 1: IPC 2.0, all stalls scoreboard
	scoreboard.Add(300)
	sp.Sample(1000)

	committed.Add(500) // interval 2: IPC 0.5, faults dominate
	faults.Add(8)
	scoreboard.Add(100)
	faultWait.Add(900)
	sp.Sample(2000)

	iv := Analyze(sp.View().Table())
	if len(iv) != 2 {
		t.Fatalf("got %d intervals, want 2", len(iv))
	}
	if iv[0].IPC != 2.0 || iv[0].TopStall != "scoreboard" || iv[0].TopStallShare != 1.0 {
		t.Fatalf("interval 1 = %+v", iv[0])
	}
	if iv[1].IPC != 0.5 {
		t.Fatalf("interval 2 IPC = %v, want 0.5", iv[1].IPC)
	}
	if iv[1].FaultRate != 8.0 {
		t.Fatalf("interval 2 fault rate = %v, want 8/kcycle", iv[1].FaultRate)
	}
	if iv[1].TopStall != "fault-wait" || iv[1].TopStallShare != 0.9 {
		t.Fatalf("interval 2 top stall = %s %.2f, want fault-wait 0.90",
			iv[1].TopStall, iv[1].TopStallShare)
	}
}

func TestSummarizeFaultPhases(t *testing.T) {
	r := NewRegistry()
	committed := r.Counter(ColCommitted)
	faults := r.Counter(ColFaultsRaised)
	lat := r.Histogram("fault.latency_cycles")
	sp := NewSampler(1000, r)

	step := func(c, f int64, lats ...int64) {
		committed.Add(c)
		faults.Add(f)
		for _, l := range lats {
			lat.Observe(l)
		}
		sp.Sample(sp.LastCycle() + 1000)
	}
	step(1000, 0)          // quiet
	step(200, 4, 500, 700) // phase 1
	step(100, 2, 600)      // phase 1
	step(1000, 0)          // quiet
	step(300, 1, 900)      // phase 2
	step(1000, 0)          // quiet

	st := Summarize(sp.View().Table())
	if st.Samples != 6 || st.Cycles != 6000 {
		t.Fatalf("summary = %+v", st)
	}
	if st.TotalFaults != 7 {
		t.Fatalf("total faults = %d, want 7", st.TotalFaults)
	}
	if len(st.FaultPhases) != 2 {
		t.Fatalf("phases = %+v, want 2", st.FaultPhases)
	}
	p1, p2 := st.FaultPhases[0], st.FaultPhases[1]
	if p1.FromCycle != 1000 || p1.ToCycle != 3000 || p1.Faults != 6 {
		t.Fatalf("phase 1 = %+v", p1)
	}
	if want := float64(500+700+600) / 3; p1.MeanLatency != want {
		t.Fatalf("phase 1 mean latency = %v, want %v", p1.MeanLatency, want)
	}
	if p2.FromCycle != 4000 || p2.ToCycle != 5000 || p2.Faults != 1 || p2.MeanLatency != 900 {
		t.Fatalf("phase 2 = %+v", p2)
	}
	// Median interval IPC: sorted IPCs are 0.1,0.2,0.3,1,1,1 → 0.65.
	if want := 0.65; st.SteadyIPC != want {
		t.Fatalf("steady IPC = %v, want %v", st.SteadyIPC, want)
	}
}

func TestTracerTailMatchesLastN(t *testing.T) {
	tr, cycle := boundTracer(0, 8)
	for i := 0; i < 50; i++ {
		*cycle = int64(i)
		tr.Emit(i%2, KCommit, int32(i), uint64(i), 0)
		if i%3 == 0 {
			tr.Emit(-1, KMigrateEnd, 0, uint64(i), 0)
		}
	}
	for _, n := range []int{1, 3, 8, 100} {
		want := tr.LastN(n)
		got := tr.Tail(n)
		if len(got) != len(want) {
			t.Fatalf("Tail(%d) has %d events, LastN has %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Tail(%d)[%d] = %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
	var nilTr *Tracer
	if ev := nilTr.Tail(5); ev != nil {
		t.Fatalf("nil tracer Tail = %v", ev)
	}
}
