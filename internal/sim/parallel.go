// Parallel tick phase: shard the SMs across worker goroutines while
// keeping every result bit-identical to the sequential run.
//
// The run loop alternates two phases each cycle. The tick phase
// advances every runnable SM by one cycle; the drain phase
// (clock.Queue.Step) runs the cycle's event callbacks, which is where
// all cross-component traffic happens — cache fills, TLB walks, fault
// service, block switching, dispatch. Only the tick phase is
// parallelized: SM.Tick touches nothing outside its own SM except
// three append-only effect streams (clock schedules, trace emissions,
// histogram samples), which TickStaged captures in a per-SM
// sm.Ledger. After the barrier the main goroutine flushes the ledgers
// in SM index order, replaying the effects in exactly the order the
// sequential sweep would have produced them — same queue sequence
// numbers, same tracer sequence numbers, same histogram state. The
// drain phase stays sequential because its callbacks make synchronous
// cross-domain calls with consumed return values (L1 miss → L2.Fetch,
// RaiseFault → queue position) and zero-latency shared→shard
// callbacks (an L2 fill runs L1 waiter closures at the same cycle);
// see docs/parallelism.md for why a windowed-lookahead drain cannot
// keep bit-identity here.
//
// Parallel ticking engages only when every SM's tick path is isolated:
// no OnEvent test hook, and no chaos plan drawing randomness at issue
// (chaos.Plan.TickOrderFree). Otherwise — and whenever fewer than two
// SMs are runnable — the loop falls back to direct sequential ticking,
// which is byte-identical to the staged path by construction, so the
// two may alternate freely within one run.
package sim

import (
	"math/bits"
	"sync"

	"gpues/internal/sm"
)

// tickShard outcome flags, written by workers into disjoint per-SM
// slots and consumed by the main goroutine after the barrier.
const (
	// tickTicked marks an SM that ran TickStaged this cycle (its ledger
	// must be flushed).
	tickTicked uint8 = 1 << iota
	// tickClear marks an SM whose active bit must be cleared (done or
	// idle, before or after its tick).
	tickClear
)

// shardPool drives one StepTo call's worker goroutines. Shards are
// static contiguous SM index ranges — SM residency is symmetric across
// the machine, so contiguous ranges balance well, and a static
// assignment keeps each SM on one worker (no cross-worker handoff of
// SM state between consecutive cycles).
type shardPool struct {
	s       *Simulator
	workers int
	shards  [][2]int // per-worker [lo, hi) SM index range
	start   []chan struct{}
	wg      sync.WaitGroup
}

// tickIsolated reports whether every SM's tick path is free of
// effects the ledger cannot stage: OnEvent hooks run synchronously
// inside Tick, and a chaos plan with issue-stall injection draws from
// the shared RNG in tick order.
func (s *Simulator) tickIsolated() bool {
	if s.chaos != nil && !s.chaos.TickOrderFree() {
		return false
	}
	for _, m := range s.sms {
		if !m.TickIsolated() {
			return false
		}
	}
	return true
}

// newShardPool builds the worker pool for one StepTo call, or returns
// nil when the run must tick sequentially (workers <= 1, a single SM,
// or a non-isolated tick path). The per-SM ledgers and result slots
// live on the Simulator and are reused across StepTo calls.
func (s *Simulator) newShardPool() *shardPool {
	w := s.workers
	if w > len(s.sms) {
		w = len(s.sms)
	}
	if w <= 1 || !s.tickIsolated() {
		return nil
	}
	if s.ledgers == nil {
		s.ledgers = make([]sm.Ledger, len(s.sms))
		s.tickRes = make([]uint8, len(s.sms))
	}
	p := &shardPool{s: s, workers: w,
		shards: make([][2]int, w), start: make([]chan struct{}, w)}
	for i := 0; i < w; i++ {
		p.shards[i] = [2]int{i * len(s.sms) / w, (i + 1) * len(s.sms) / w}
		p.start[i] = make(chan struct{}, 1)
	}
	return p
}

// launch starts the persistent worker goroutines. They live for the
// duration of one StepTo call; stop terminates them. Workers only
// mutate shard-private state (their SMs and ledgers) and their
// disjoint result slots between barrier entry and exit, and every
// effect that crosses the shard boundary goes through the staged
// ledgers the main goroutine flushes in SM index order.
//
//simlint:shardsafe
func (p *shardPool) launch() {
	for w := 0; w < p.workers; w++ {
		w := w
		go func() {
			lo, hi := p.shards[w][0], p.shards[w][1]
			for range p.start[w] {
				p.tickShard(lo, hi)
				p.wg.Done()
			}
		}()
	}
}

// stop terminates the workers. Safe between barriers only (never
// mid-phase); StepTo defers it at return, which is always between
// cycles.
func (p *shardPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}

// tickShard advances the shard's runnable SMs, mirroring the
// sequential loop's re-check semantics: a set bit whose SM reports
// done or idle is dropped without a tick. The active bitset is
// read-only during the phase; outcomes go to disjoint tickRes slots.
func (p *shardPool) tickShard(lo, hi int) {
	s := p.s
	for i := lo; i < hi; i++ {
		if s.active[i>>6]&(1<<(uint(i)&63)) == 0 {
			continue
		}
		m := s.sms[i]
		if m.Done() || m.Idle() {
			p.s.tickRes[i] = tickClear
			continue
		}
		m.TickStaged(&s.ledgers[i])
		r := tickTicked
		if m.Done() || m.Idle() {
			r |= tickClear
		}
		p.s.tickRes[i] = r
	}
}

// tick runs one tick phase: dispatch, barrier, then the ordered
// ledger flush and active-set update on the main goroutine. With at
// most one runnable SM it ticks inline instead — the staged and
// direct paths produce identical state, so the choice is invisible to
// results and saves the barrier round trip during fault-dominated
// phases where most of the machine sleeps.
func (p *shardPool) tick() bool {
	s := p.s
	n := 0
	for _, word := range s.active {
		n += bits.OnesCount64(word)
	}
	if n <= 1 {
		return s.tickSequential()
	}
	s.parTicks++
	p.wg.Add(p.workers)
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.wg.Wait()
	anyActive := false
	for i := range s.sms {
		r := s.tickRes[i]
		if r == 0 {
			continue
		}
		s.tickRes[i] = 0
		if r&tickTicked != 0 {
			anyActive = true
			s.sms[i].FlushLedger(&s.ledgers[i])
		}
		if r&tickClear != 0 {
			s.active[i>>6] &^= 1 << (uint(i) & 63)
		}
	}
	return anyActive
}

// ParallelTicks returns how many tick phases this simulator ran
// through the worker barrier (as opposed to inline sequential
// sweeps). It is diagnostic only — zero means the run was effectively
// sequential (workers <= 1, a gated tick path, or never more than one
// runnable SM at once) — and never feeds back into simulation state.
func (s *Simulator) ParallelTicks() int64 { return s.parTicks }

// tickSequential is the direct tick sweep: active SMs in index order,
// effects applied immediately. This is the pre-parallel code path,
// taken verbatim when no pool is in play — the -workers=1 byte-
// identity guarantee — and by the pool itself when at most one SM is
// runnable.
func (s *Simulator) tickSequential() bool {
	anyActive := false
	for w, word := range s.active {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			m := s.sms[w<<6+bit]
			if m.Done() || m.Idle() {
				s.active[w] &^= 1 << uint(bit)
				continue
			}
			m.Tick()
			anyActive = true
			if m.Done() || m.Idle() {
				s.active[w] &^= 1 << uint(bit)
			}
		}
	}
	return anyActive
}
