package sm

import (
	"gpues/internal/config"
	"gpues/internal/obs"
)

// This file implements the per-SM local scheduler of use case 1
// (Section 4.1, Figure 9): on a fault it may context switch the faulted
// thread block out (its state moving to a preallocated off-chip memory
// area) and run a ready off-chip block or a fresh pending block in its
// place. At most MaxExtraBlocks additional blocks may be brought to the
// SM beyond its occupancy; past that the SM cycles through its active
// and off-chip blocks.

// maybeSwitchOut is called when a block faults; queuePos is the fault's
// position in the global pending fault queue. Switching is worthwhile
// only when the fault will wait behind others (position above the
// threshold) and there is something else to run.
func (s *SM) maybeSwitchOut(b *blockRT, queuePos int) {
	if !s.cfg.Scheme.Preemptible() {
		return
	}
	if b.state != blockActive {
		return
	}
	// A switch needs a replacement block; check before consulting the
	// chaos plan so every recorded force-switch event is a real one.
	if !s.hasWorkToSwitchIn() {
		return
	}
	// The organic policy switches on queue position; a chaos plan may
	// force the switch regardless (the scheme must still be preemptible).
	organic := s.cfg.Scheduler.Enabled && queuePos >= s.cfg.Scheduler.SwitchThreshold
	if !organic && (s.chaos == nil || !s.chaos.ForceSwitch(s.ID)) {
		return
	}
	b.state = blockDraining
	b.switchOutStart = s.q.Now()
	s.stats.SwitchesOut++
	if s.tr != nil {
		s.tr.Emit(s.ID, obs.KSwitchOut, s.blockTID(b), uint64(b.id), uint64(queuePos))
	}
	s.afterDrainStep(b)
}

// hasWorkToSwitchIn reports whether the SM could run something in the
// freed slot: a ready off-chip block, or a fresh block within the extra
// block budget.
func (s *SM) hasWorkToSwitchIn() bool {
	for _, ob := range s.offchip {
		if ob.state == blockOffChip && ob.pendingFaults == 0 && !ob.excepted {
			return true
		}
	}
	return s.assigned < s.occupancy+s.cfg.Scheduler.MaxExtraBlocks &&
		s.src.PendingBlocks() > 0
}

// afterDrainStep advances a draining block: once every warp has no
// in-flight instruction left (a warp parked at a barrier counts as
// drained — barrier unit state is saved as part of the context), the
// context save begins.
func (s *SM) afterDrainStep(b *blockRT) {
	if b.state != blockDraining {
		return
	}
	for _, w := range b.warps {
		want := 0
		if w.atBarrier {
			want = 1
		}
		if w.inFlight > want {
			return
		}
	}
	s.saveBlock(b)
}

// contextSize is the number of bytes moved on a context switch: the
// architectural block state (registers, shared memory, control state)
// plus the replay queue entries and, under the operand-log scheme, the
// live log entries — both become part of the context (Sections 3.2,
// 3.3).
func (s *SM) contextSize(b *blockRT) int {
	size := b.contextBytes
	for _, w := range b.warps {
		size += len(w.replay) * 8
	}
	if s.cfg.Scheme == config.OperandLog {
		size += b.logUsed * s.cfg.SM.OperandLog.EntryBytes
	}
	return size
}

// move performs a context transfer, either through the DRAM model or in
// one cycle under the ideal-switch configuration (Figure 12's "ideal").
func (s *SM) move(bytes int, done func()) {
	if s.cfg.Scheduler.IdealContextSwitch {
		s.q.After(1, done)
		return
	}
	s.mover.Move(bytes, done)
}

// saveBlock writes the drained block's context off-chip and then refills
// the slot.
func (s *SM) saveBlock(b *blockRT) {
	b.state = blockSaving
	bytes := s.contextSize(b)
	s.stats.ContextBytes += int64(bytes)
	if s.tr != nil {
		s.tr.Emit(s.ID, obs.KSaveStart, s.blockTID(b), uint64(b.id), uint64(bytes))
	}
	s.move(bytes, func() {
		s.wake()
		if s.tr != nil {
			s.tr.Emit(s.ID, obs.KSaveEnd, s.blockTID(b), uint64(b.id), 0)
		}
		slot := b.slot
		b.state = blockOffChip
		b.slot = -1
		s.slots[slot] = nil
		for i := 0; i < s.warpsPerBlock; i++ {
			s.warps[slot*s.warpsPerBlock+i] = nil
			s.clrBuf(slot*s.warpsPerBlock + i)
		}
		s.offchip = append(s.offchip, b)
		s.refillAfterSwitch(slot)
	})
}

// refillAfterSwitch picks what to run in a slot freed by a switch-out:
// a ready off-chip block first, then a fresh pending block if the extra
// block budget allows; otherwise the slot waits for a fault resolution
// or block completion.
func (s *SM) refillAfterSwitch(slot int) {
	if s.restoreReadyBlock(slot) {
		return
	}
	if s.assigned < s.occupancy+s.cfg.Scheduler.MaxExtraBlocks {
		s.startBlock(slot)
	}
}

// restoreReadyBlock restores an off-chip block with no pending faults
// into the given slot, returning whether one was found.
func (s *SM) restoreReadyBlock(slot int) bool {
	if s.slots[slot] != nil {
		return false
	}
	idx := -1
	for i, ob := range s.offchip {
		if ob.state == blockOffChip && ob.pendingFaults == 0 && !ob.excepted {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	b := s.offchip[idx]
	s.offchip = append(s.offchip[:idx], s.offchip[idx+1:]...)
	b.state = blockRestoring
	b.slot = slot
	s.slots[slot] = b
	for i, w := range b.warps {
		s.warps[slot*s.warpsPerBlock+i] = w
		if w != nil && w.buf != nil {
			s.setBuf(slot*s.warpsPerBlock + i)
		}
	}
	for i := len(b.warps); i < s.warpsPerBlock; i++ {
		s.warps[slot*s.warpsPerBlock+i] = nil
		s.clrBuf(slot*s.warpsPerBlock + i)
	}
	bytes := s.contextSize(b)
	s.stats.ContextBytes += int64(bytes)
	if s.tr != nil {
		s.tr.Emit(s.ID, obs.KRestoreStart, s.blockTID(b), uint64(b.id), uint64(bytes))
	}
	s.move(bytes, func() {
		s.wake()
		b.state = blockActive
		s.stats.SwitchesIn++
		s.stats.Stalls[obs.StallOffChip] += s.q.Now() - b.switchOutStart
		if s.tr != nil {
			s.tr.Emit(s.ID, obs.KRestoreEnd, s.blockTID(b), uint64(b.id), 0)
		}
	})
	return true
}
