package sim

import (
	"testing"

	"gpues/internal/config"
	"gpues/internal/excep"
	"gpues/internal/vm"
)

// trialBounds keeps runaway flip trials (hung loops, corrupted
// schedules) short enough for a unit test.
var trialBounds = TrialOptions{MaxCycles: 500_000, MaxWarpInsts: 1 << 16}

func runTrial(t *testing.T, seed int64, rate float64, protect int) *Trial {
	t.Helper()
	cfg := config.Default()
	cfg.Excep.Flip = excep.FlipConfig{Seed: seed, Rate: rate, ProtectThreads: protect}
	spec := testSpec(t, 4, 64, vm.RegionGPUInit, vm.RegionGPUInit)
	tr, err := RunResilienceTrial(cfg, spec, trialBounds)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return tr
}

// TestTrialOutcomeExclusive is the classification property: every
// trial lands in exactly one outcome class, and each class is backed
// by the evidence that defines it — mismatches for SDC, a structured
// exception for the exception class, a terminal error for hangs and
// crashes, and neither for masked runs.
func TestTrialOutcomeExclusive(t *testing.T) {
	counts := make([]int, excep.NumOutcomes)
	const trials = 16
	for seed := int64(1); seed <= trials; seed++ {
		tr := runTrial(t, seed, 0.002, 0)
		if tr.Outcome >= excep.NumOutcomes {
			t.Fatalf("seed %d: outcome %d out of range", seed, tr.Outcome)
		}
		counts[tr.Outcome]++
		switch tr.Outcome {
		case excep.OutcomeMasked:
			if tr.Err != nil || len(tr.Mismatches) != 0 || tr.Excep != nil {
				t.Errorf("seed %d: masked trial carries evidence of another class: %+v", seed, tr)
			}
		case excep.OutcomeSDC:
			if tr.Err != nil || len(tr.Mismatches) == 0 || tr.Excep != nil {
				t.Errorf("seed %d: sdc trial without mismatches (or with an error): %+v", seed, tr)
			}
		case excep.OutcomeException:
			if tr.Err == nil || tr.Excep == nil || len(tr.Excep.Records) == 0 {
				t.Errorf("seed %d: exception trial without a structured exception: %+v", seed, tr)
			}
		case excep.OutcomeHang, excep.OutcomeCrash:
			if tr.Err == nil || tr.Excep != nil {
				t.Errorf("seed %d: %v trial without a terminal error: %+v", seed, tr.Outcome, tr)
			}
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != trials {
		t.Errorf("classified %d outcomes over %d trials, want exactly one each", total, trials)
	}
	t.Logf("outcome counts: masked=%d sdc=%d exception=%d crash=%d hang=%d",
		counts[excep.OutcomeMasked], counts[excep.OutcomeSDC],
		counts[excep.OutcomeException], counts[excep.OutcomeCrash], counts[excep.OutcomeHang])
}

// TestTrialClassificationStable reruns every seed and requires the
// bit-identical classification tuple.
func TestTrialClassificationStable(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		a := runTrial(t, seed, 0.002, 0)
		b := runTrial(t, seed, 0.002, 0)
		if a.Outcome != b.Outcome || a.Flips != b.Flips || a.Cycles != b.Cycles {
			t.Errorf("seed %d not reproducible: (%v,%d,%d) vs (%v,%d,%d)",
				seed, a.Outcome, a.Flips, a.Cycles, b.Outcome, b.Flips, b.Cycles)
		}
	}
}

// TestProtectAllThreadsMasks turns the partial-protection knob to the
// whole block: no flips inject, and the run must classify as masked.
func TestProtectAllThreadsMasks(t *testing.T) {
	tr := runTrial(t, 3, 0.01, 64) // 64 threads/block, all protected
	if tr.Flips != 0 {
		t.Errorf("fully protected trial injected %d flips", tr.Flips)
	}
	if tr.Outcome != excep.OutcomeMasked {
		t.Errorf("fully protected trial classified %v, want masked", tr.Outcome)
	}
}

// TestProtectionMonotone checks the knob's direction: protecting more
// threads never injects more flips at the same seed and rate.
func TestProtectionMonotone(t *testing.T) {
	prev := int64(-1)
	for _, protect := range []int{64, 32, 0} {
		tr := runTrial(t, 5, 0.005, protect)
		if prev >= 0 && tr.Flips < prev {
			t.Errorf("protect=%d injected %d flips, fewer than a stronger protection's %d",
				protect, tr.Flips, prev)
		}
		prev = tr.Flips
	}
}
