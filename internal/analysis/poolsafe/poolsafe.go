// Package poolsafe flags use-after-release of pooled objects: once a
// value has been handed back to an object pool — a call to a function
// annotated //simlint:releases, or sync.Pool.Put — any later use of
// the same variable in the releasing function is the static analogue
// of a use-after-free. The pool may hand the object to another owner
// at any subsequent cycle, so reads observe recycled state and writes
// corrupt the next owner.
//
// The check is intraprocedural and block-ordered: it tracks uses in
// statements after the releasing statement within the same (or a
// nested) block, and stops tracking a variable once it is reassigned
// (e.g. re-acquired from the pool or set to nil).
package poolsafe

import (
	"go/ast"
	"go/types"

	"gpues/internal/analysis"
)

// Analyzer is the pool-safety check.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "flag uses of a pooled object after it was released " +
		"(//simlint:releases annotations and sync.Pool.Put mark the release points)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	releases := analysis.ReleaseFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c := &checker{pass: pass, releases: releases}
				c.block(fn.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	releases map[types.Object]analysis.ReleaseSpec
}

// block scans one statement list in order. For every release call
// found in statement i, the released variable is hunted through
// statements i+1.. of the same list (descending into nested blocks);
// nested blocks are also scanned independently so releases inside them
// get the same treatment.
func (c *checker) block(b *ast.BlockStmt) {
	for i, stmt := range b.List {
		if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
			continue // deferred releases run at return; nothing after them
		}
		for _, released := range c.releasesIn(stmt) {
			c.huntUses(released, b.List[i+1:])
		}
		// Recurse into nested statement lists for their own releases.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if nb, ok := n.(*ast.BlockStmt); ok && nb != b {
				c.block(nb)
				return false
			}
			return true
		})
	}
}

// releasesIn collects the variables released by calls inside one
// statement. Only plain identifiers (including the receiver of a
// sync.Pool.Put-style method) are tracked; complex expressions cannot
// be matched reliably afterwards.
func (c *checker) releasesIn(stmt ast.Stmt) []types.Object {
	var out []types.Object
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false // a closure body runs later, not at this statement
		case *ast.BlockStmt:
			// A release inside a nested block (if/for body) may be
			// conditional; it is checked against that block's own
			// statement list when block() recurses, not against ours.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := c.releasedBy(call); obj != nil {
			out = append(out, obj)
		}
		return true
	})
	return out
}

// releasedBy resolves which variable, if any, a call releases.
func (c *checker) releasedBy(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id, sel = fun.Sel, fun
	default:
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	// sync.Pool.Put releases its argument.
	if fn.Name() == "Put" && isSyncPoolMethod(fn) {
		if len(call.Args) == 1 {
			return identObj(c.pass, call.Args[0])
		}
		return nil
	}
	spec, ok := c.releases[fn]
	if !ok {
		return nil
	}
	if spec.Arg < 0 {
		// Receiver released: x.Release() frees x.
		if sel != nil {
			return identObj(c.pass, sel.X)
		}
		return nil
	}
	if spec.Arg < len(call.Args) {
		return identObj(c.pass, call.Args[spec.Arg])
	}
	return nil
}

func isSyncPoolMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// identObj resolves expr to a plain variable object, or nil.
func identObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// huntUses walks the statements that follow a release in order,
// reporting every use of the released variable until a statement
// reassigns it (right-hand sides are still checked first: `x = x.next`
// after releasing x reads freed memory).
func (c *checker) huntUses(obj types.Object, rest []ast.Stmt) {
	for _, stmt := range rest {
		killed := false
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				c.reportUses(obj, rhs)
			}
			for _, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
					killed = true
				} else {
					c.reportUses(obj, lhs)
				}
			}
		default:
			c.reportUses(obj, stmt)
		}
		if killed {
			return
		}
	}
}

// reportUses reports each appearance of obj under node.
func (c *checker) reportUses(obj types.Object, node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
			c.pass.Reportf(id.Pos(), "use of %s after it was released to its pool: the pool may already have handed it to a new owner; copy what you need before the release (or reassign %s first)", id.Name, id.Name)
		}
		return true
	})
}
