package cacti

import (
	"math"
	"testing"
)

// paperTable2 is Table 2 of the paper, in percent.
var paperTable2 = map[int][4]float64{
	8:  {1.04, 0.47, 1.82, 1.28},
	16: {1.47, 0.67, 2.34, 1.64},
	20: {1.67, 0.76, 2.61, 1.83},
	32: {2.36, 1.08, 3.38, 2.37},
}

func within(got, want, tolPct float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= tolPct/100
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		want, ok := paperTable2[r.LogKB]
		if !ok {
			t.Fatalf("unexpected row %d KB", r.LogKB)
		}
		got := [4]float64{r.SMAreaPct, r.GPUAreaPct, r.SMPowerPct, r.GPUPowerPct}
		names := [4]string{"SM area", "GPU area", "SM power", "GPU power"}
		for i := range got {
			if !within(got[i], want[i], 3) {
				t.Errorf("%d KB %s = %.2f%%, paper %.2f%% (>3%% off)",
					r.LogKB, names[i], got[i], want[i])
			}
		}
	}
}

func TestOverheadsMonotonic(t *testing.T) {
	prev := Overheads{}
	for _, kb := range []int{4, 8, 16, 32, 64} {
		r, err := LogOverheads(kb)
		if err != nil {
			t.Fatal(err)
		}
		if r.AreaMM2 <= prev.AreaMM2 || r.TotalPowerW <= prev.TotalPowerW {
			t.Errorf("%d KB not larger than previous: %+v vs %+v", kb, r, prev)
		}
		prev = r
	}
}

func TestHeadlineClaim(t *testing.T) {
	// The abstract: "less than 1% area and 2% power overheads" for the
	// 16 KB log that reaches 99.2% performance.
	r, err := LogOverheads(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUAreaPct >= 1.0 {
		t.Errorf("16 KB GPU area = %.2f%%, paper claims < 1%%", r.GPUAreaPct)
	}
	if r.GPUPowerPct >= 2.0 {
		t.Errorf("16 KB GPU power = %.2f%%, paper claims < 2%%", r.GPUPowerPct)
	}
}

func TestPortScalingAndValidation(t *testing.T) {
	one := DefaultLogConfig(16)
	two := one
	two.Ports = 2
	if two.AreaMM2() <= one.AreaMM2() {
		t.Error("second port must cost area")
	}
	if _, err := LogOverheads(0); err == nil {
		t.Error("zero size accepted")
	}
	if one.PowerW(0) <= 0 {
		t.Error("idle array must still leak")
	}
	if one.PowerW(1e9) <= one.PowerW(0) {
		t.Error("active power must exceed idle power")
	}
}
