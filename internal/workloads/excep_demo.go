package workloads

import (
	"gpues/internal/gpualloc"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
)

// Exception demo workloads (suite "excep"): small kernels whose whole
// point is to raise a device exception deterministically. They back the
// documentation examples and the CI golden-stack-trace comparison, and
// are deliberately not part of any figure suite.

func init() {
	register(Workload{
		Name:        "assert-demo",
		Suite:       "excep",
		Description: "device assert fails for one global thread id inside a divergent branch (deterministic stack trace)",
		Build:       buildAssertDemo,
	})
	register(Workload{
		Name:        "oom-demo",
		Suite:       "excep",
		Description: "device mallocs outgrow a 1 MiB heap, raising a deterministic device-malloc OOM",
		Build:       buildOOMDemo,
	})
}

// assertDemoFailGid is the one global thread id whose assert fails: it
// sits mid-warp in the second block, so the report shows a non-zero
// block, warp and lane.
const assertDemoFailGid = 70

// buildAssertDemo emits a kernel where every thread writes its gid,
// then lanes in the lower half of each warp take a divergent branch
// whose body asserts gid != assertDemoFailGid. Thread 70 (block 1,
// warp 0, lane 6) is in the lower half, so the assert fires two
// reconvergence frames deep — a stable, documented stack trace.
func buildAssertDemo(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	blocks := 4 * p.Scale
	const threads = 64

	c := newBuildCtx(p.Seed)
	out := c.buffer("out", blocks*threads*8, p.Placement.Outputs)

	b := kernel.NewBuilder("assert-demo")
	pOut := b.AddParam(out)
	gid := emitGlobalTID(b)
	addr := b.Reg()
	base := b.Reg()
	lane := b.Reg()
	half := b.Reg()
	cond := b.Reg()
	b.Shl(addr, gid, 3)
	b.LoadParam(base, pOut)
	b.IAdd(addr, addr, base, 0)
	b.StGlobal(addr, 0, gid, 8)
	// Divergence: lanes with (gid & 31) < 16 take the checked path.
	b.And(lane, gid, isa.RZ, 31)
	b.SetP(isa.CmpLT, half, lane, isa.RZ, 16)
	thenL, recon := b.NewLabel(), b.NewLabel()
	b.BraIf(half, false, thenL, recon)
	b.Bra(recon) // upper half: nothing to check
	b.Bind(thenL)
	b.SetP(isa.CmpNE, cond, gid, isa.RZ, assertDemoFailGid)
	b.Assert(cond, 7)
	b.StGlobal(addr, 0, cond, 8) // survivors overwrite gid with 1
	b.Bind(recon)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: threads}}
	return c.spec(l), nil
}

// buildOOMDemo emits a kernel where every lane device-mallocs 64 KiB
// and fills the chunk's first line; a 1 MiB heap holds at most 16 such
// chunks, so with 64 threads the heap deterministically exhausts and
// the failing lane raises a device-malloc OOM.
func buildOOMDemo(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	const (
		threads   = 64
		chunk     = 64 * 1024
		heapBytes = gpualloc.SuperblockSize // 1 MiB
	)

	c := newBuildCtx(p.Seed)
	// The device heap must be superblock (1 MiB) aligned; buffer() only
	// guarantees the 64 KiB region granularity, so round up first.
	c.next = (c.next + gpualloc.SuperblockSize - 1) &^ (gpualloc.SuperblockSize - 1)
	heapBase := c.buffer("heap", heapBytes, p.Placement.Outputs)
	out := c.buffer("out", threads*8, p.Placement.Outputs)

	b := kernel.NewBuilder("oom-demo")
	pOut := b.AddParam(out)
	gid := emitGlobalTID(b)
	addr := b.Reg()
	base := b.Reg()
	ptr := b.Reg()
	b.Shl(addr, gid, 3)
	b.LoadParam(base, pOut)
	b.IAdd(addr, addr, base, 0)
	b.StGlobal(addr, 0, gid, 8)
	b.Malloc(ptr, isa.RegNone, chunk)
	b.StGlobal(ptr, 0, gid, 8)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{
		Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: threads},
		HeapBase: heapBase, HeapBytes: heapBytes,
	}
	return c.spec(l), nil
}
