// Package obsrv is the read-only live introspection server: it serves
// the telemetry snapshots a running simulation (or campaign) publishes
// at its sequential flush point over plain net/http — current status,
// Prometheus-style metrics, the sampled time series, the flight-
// recorder trace tail, and net/http/pprof.
//
// The server never touches simulator state: sim.TelemetrySnapshot is a
// value copy plus immutable views, handed over on the simulation
// goroutine and swapped in behind an atomic pointer. Handlers only ever
// read the snapshot they loaded, so serving is race-free while the
// simulation keeps running, and attaching a server cannot change
// simulated cycle counts.
package obsrv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gpues/internal/obs"
	"gpues/internal/sim"
)

// ValidateAddr checks a -http listen address up front: it must be a
// host:port (the host may be empty, the port a name or number).
func ValidateAddr(addr string) error {
	if addr == "" {
		return fmt.Errorf("obsrv: empty listen address")
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("obsrv: listen address %q is not host:port: %w", addr, err)
	}
	return nil
}

// published is one immutable generation of served state.
type published struct {
	snap sim.TelemetrySnapshot
	wall time.Time
	// rate is simulated cycles per wall second, measured between this
	// publish and the previous one (0 on the first).
	rate float64
}

// Campaign is the experiment-campaign progress shown on /status.
type Campaign struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Last  string `json:"last,omitempty"`
}

// Server is the live introspection HTTP server. It implements
// sim.TelemetrySink; attach it with Simulator.SetTelemetrySink (or the
// CLI -http flags) and Start it before the run.
type Server struct {
	addr  string
	ln    net.Listener
	srv   *http.Server
	start time.Time

	cur  atomic.Pointer[published]
	camp atomic.Pointer[Campaign]
	fab  atomic.Pointer[obs.Snapshot]

	// lastCycle/lastWall feed the wall-rate estimate; only the publish
	// path (one goroutine) touches them.
	lastCycle int64
	lastWall  time.Time
}

// New builds a server for the given listen address (host:port; use
// ":0" for an ephemeral port).
func New(addr string) *Server {
	s := &Server{addr: addr, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/trace/last", s.handleTraceLast)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	return s
}

// Start binds the listener and serves in a background goroutine. It
// returns the bound address (resolving a ":0" port).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and open connections.
func (s *Server) Close() error { return s.srv.Close() }

// PublishTelemetry installs a new snapshot generation. Called from the
// simulation goroutine (sim.TelemetrySink); never concurrently with
// itself.
func (s *Server) PublishTelemetry(snap sim.TelemetrySnapshot) {
	now := time.Now()
	p := &published{snap: snap, wall: now}
	if !s.lastWall.IsZero() {
		if dt := now.Sub(s.lastWall).Seconds(); dt > 0 {
			p.rate = float64(snap.Cycle-s.lastCycle) / dt
		}
	}
	s.lastCycle, s.lastWall = snap.Cycle, now
	s.cur.Store(p)
}

// SetCampaign publishes campaign progress (done/total runs plus the
// latest progress line). Safe to call from any goroutine.
func (s *Server) SetCampaign(done, total int, last string) {
	s.camp.Store(&Campaign{Done: done, Total: total, Last: last})
}

// PublishFabric installs a job-fabric metrics snapshot (simserv
// coordinator: queue depth, retries, lease expiries, cache hits);
// /metrics renders it alongside any simulator telemetry. Snapshots
// are immutable values, so the same swap-behind-a-pointer discipline
// applies. Safe to call from any goroutine, but callers must not
// mutate snap after publishing.
func (s *Server) PublishFabric(snap obs.Snapshot) {
	s.fab.Store(&snap)
}

// status is the /status JSON document.
type status struct {
	Published     bool      `json:"published"`
	Cycle         int64     `json:"cycle"`
	Finished      bool      `json:"finished"`
	WallRateCPS   float64   `json:"wall_rate_cps"`
	ActiveSMs     int       `json:"active_sms"`
	TotalSMs      int       `json:"total_sms"`
	BlocksDone    int       `json:"blocks_done"`
	BlocksTotal   int       `json:"blocks_total"`
	Committed     int64     `json:"committed"`
	Watchdog      *watchdog `json:"watchdog,omitempty"`
	Samples       int       `json:"samples"`
	SampleEvery   int64     `json:"sample_every,omitempty"`
	TraceEvents   int       `json:"trace_events"`
	Campaign      *Campaign `json:"campaign,omitempty"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

type watchdog struct {
	Window        int64 `json:"window"`
	SinceProgress int64 `json:"since_progress"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := status{UptimeSeconds: time.Since(s.start).Seconds()}
	if p := s.cur.Load(); p != nil {
		st.Published = true
		st.Cycle = p.snap.Cycle
		st.Finished = p.snap.Finished
		st.WallRateCPS = p.rate
		st.ActiveSMs = p.snap.ActiveSMs
		st.TotalSMs = p.snap.TotalSMs
		st.BlocksDone = p.snap.BlocksDone
		st.BlocksTotal = p.snap.BlocksTotal
		st.Committed = p.snap.Committed
		st.Samples = p.snap.Series.N
		st.SampleEvery = p.snap.Series.Every
		st.TraceEvents = len(p.snap.Trace)
		if p.snap.WatchdogWindow > 0 {
			st.Watchdog = &watchdog{Window: p.snap.WatchdogWindow, SinceProgress: p.snap.SinceProgress}
		}
	}
	st.Campaign = s.camp.Load()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&st) //nolint:errcheck // client went away
}

// promName rewrites a metric name into the Prometheus exposition
// grammar: gpues_<name> with [.-] folded to underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("gpues_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := s.cur.Load()
	fab := s.fab.Load()
	if p == nil && fab == nil {
		return // no data yet: an empty exposition is valid
	}
	if p != nil {
		fmt.Fprintf(w, "# TYPE gpues_cycle counter\ngpues_cycle %d\n", p.snap.Cycle)
		writeSnapshot(w, p.snap.Metrics)
	}
	if fab != nil {
		writeSnapshot(w, *fab)
	}
}

// writeSnapshot renders one obs.Snapshot in the Prometheus exposition
// format: counters, gauges, then histograms as summaries.
func writeSnapshot(w http.ResponseWriter, m obs.Snapshot) {
	writeGroup := func(vals map[string]int64, typ string) {
		names := make([]string, 0, len(vals))
		for n := range vals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pn := promName(n)
			fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", pn, typ, pn, vals[n])
		}
	}
	writeGroup(m.Counters, "counter")
	writeGroup(m.Gauges, "gauge")
	names := make([]string, 0, len(m.Histograms))
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s summary\n", pn)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", pn, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %d\n", pn, h.P90)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", pn, h.P99)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	var v obs.SeriesView
	if p := s.cur.Load(); p != nil {
		v = p.snap.Series
	}
	v.WriteNDJSON(w) //nolint:errcheck // client went away
}

func (s *Server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, fmt.Sprintf("bad n %q", q), http.StatusBadRequest)
			return
		}
		n = v
	}
	var events []obs.Event
	if p := s.cur.Load(); p != nil {
		events = p.snap.Trace
		if len(events) > n {
			events = events[len(events)-n:]
		}
	}
	type traceEvent struct {
		Cycle int64  `json:"cycle"`
		Seq   uint64 `json:"seq"`
		SM    int16  `json:"sm"`
		Warp  int32  `json:"warp"`
		Kind  string `json:"kind"`
		A     uint64 `json:"a"`
		B     uint64 `json:"b"`
	}
	out := make([]traceEvent, 0, len(events))
	for _, e := range events {
		out = append(out, traceEvent{Cycle: e.Cycle, Seq: e.Seq, SM: e.SM, Warp: e.Warp,
			Kind: e.Kind.String(), A: e.A, B: e.B})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client went away
}
