package core

import (
	"fmt"

	"gpues/internal/clock"
	"gpues/internal/obs"
	"gpues/internal/vm"
)

// LocalStats counts GPU-local fault handling activity.
type LocalStats struct {
	Handled     int64
	PagesMapped int64
	// SerialCycles accumulates time handler invocations waited for
	// their SM's handler slot (intra-SM serialization).
	SerialCycles int64
}

// LocalHandler is the GPU-resident page fault handler of use case 2
// (Section 4.2): when a warp faults on a page with no physical backing,
// it switches to system mode and runs the handler on its own SM —
// allocating a physical page from the SM's partition of the GPU
// physical space and updating the GPU page table — without interrupting
// the CPU.
//
// Handler invocations proceed in parallel up to the effective handler
// concurrency, which is where the throughput win over the single CPU
// handler comes from. The measured per-invocation latency is 20 us
// (Section 5.4), an order of magnitude above the CPU handler's, and the
// GPU still wins on throughput under fault storms.
// DefaultHandlerConcurrency returns the effective parallelism of the
// GPU-local handler for a GPU of the given size: any faulting warp can
// enter system mode, but the handlers serialize on the system-level
// synchronization (Szymanski's lock around the shared page table
// update, Section 4.2) and on shared allocator metadata, so the
// measured scalability of the prototype handler corresponds to a small
// effective concurrency — about one useful handler per five SMs
// (3 for the paper's 16-SM configuration) — rather than one per warp.
// Local handling therefore improves with the number of SMs
// (Section 5.5).
func DefaultHandlerConcurrency(numSMs int) int {
	c := numSMs / 5
	if c < 1 {
		c = 1
	}
	return c
}

type LocalHandler struct {
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip wiring to the address space, which checkpoints itself as its own section
	as *vm.AddressSpace
	//simlint:ckptskip construction-time region granularity, fixed for the life of the handler
	gran uint64
	//simlint:ckptskip construction-time handler cost, fixed for the life of the handler
	cost   int64   // handler occupancy in cycles
	free   []int64 // handler slot next-free cycles (global pool)
	allocs []*vm.PhysAllocator
	stats  LocalStats
	//simlint:ckptskip a non-nil error ends the run before any checkpoint is cut
	err error
	//simlint:ckptskip tracer wiring; trace emission is observability, not simulation state
	tr *obs.Tracer
}

// SetTracer installs the event tracer; nil disables tracing.
func (h *LocalHandler) SetTracer(tr *obs.Tracer) { h.tr = tr }

// RegisterMetrics exposes the local handler's counters as gauges.
func (h *LocalHandler) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".handled", func() int64 { return h.stats.Handled })
	reg.Gauge(prefix+".pages_mapped", func() int64 { return h.stats.PagesMapped })
	reg.Gauge(prefix+".serial_cycles", func() int64 { return h.stats.SerialCycles })
}

// NewLocalHandler builds the handler for numSMs SMs, partitioning the
// GPU physical allocator so concurrent handlers allocate without
// contention (the paper's address space partitioning).
func NewLocalHandler(q *clock.Queue, as *vm.AddressSpace, numSMs, granularity int,
	handlerCycles int64, concurrency int) (*LocalHandler, error) {
	if numSMs <= 0 || granularity <= 0 || handlerCycles <= 0 {
		return nil, fmt.Errorf("core: bad local handler config (%d SMs, %d gran, %d cycles)",
			numSMs, granularity, handlerCycles)
	}
	if concurrency <= 0 {
		concurrency = DefaultHandlerConcurrency(numSMs)
	}
	allocs, err := as.GPUPhys.Partition(numSMs)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning GPU physical memory: %w", err)
	}
	return &LocalHandler{
		q:      q,
		as:     as,
		gran:   uint64(granularity),
		cost:   handlerCycles,
		free:   make([]int64, concurrency),
		allocs: allocs,
	}, nil
}

// Stats returns a copy of the counters.
func (h *LocalHandler) Stats() LocalStats { return h.stats }

// Err returns the first local fault-resolution failure (partition
// exhaustion); the simulator surfaces it instead of a panic.
func (h *LocalHandler) Err() error { return h.err }

// Service implements Resolver: it runs the handler on the faulting
// warp's SM, allocating from that SM's partition.
func (h *LocalHandler) Service(regionBase uint64, kind vm.FaultKind, smID int, done func()) {
	if smID < 0 || smID >= len(h.allocs) {
		smID = 0
	}
	// Pick the earliest-free handler slot.
	best := 0
	for i := 1; i < len(h.free); i++ {
		if h.free[i] < h.free[best] {
			best = i
		}
	}
	now := h.q.Now()
	start := now
	if h.free[best] > start {
		start = h.free[best]
	}
	h.stats.SerialCycles += start - now
	h.free[best] = start + h.cost
	if h.tr != nil {
		h.tr.Emit(-1, obs.KLocalStart, int32(smID), regionBase, uint64(start-now))
	}
	h.q.At(start+h.cost, func() {
		if h.tr != nil {
			h.tr.Emit(-1, obs.KLocalEnd, int32(smID), regionBase, 0)
		}
		if err := h.mapRegion(regionBase, smID); err != nil {
			// Partition exhaustion: record for Simulator.firstError and
			// leave the fault pending so the run aborts with a structured
			// error instead of a panic.
			if h.err == nil {
				h.err = fmt.Errorf("core: local fault resolution at region %#x (SM %d) failed: %w",
					regionBase, smID, err)
			}
			return
		}
		h.stats.Handled++
		done()
	})
}

// mapRegion marks the region's pages GPU-owned and maps them from the
// SM's private allocator partition.
func (h *LocalHandler) mapRegion(regionBase uint64, smID int) error {
	pageSize := h.as.PageSize()
	for p := regionBase; p < regionBase+h.gran; p += pageSize {
		if h.as.RegionOf(p) == nil {
			continue
		}
		if _, err := h.as.MapToGPU(p, h.allocs[smID]); err != nil {
			return err
		}
		h.stats.PagesMapped++
	}
	return nil
}
