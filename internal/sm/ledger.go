// Effect ledgers for the parallel tick phase.
//
// SM.Tick touches shared simulator state at exactly three kinds of
// site, all append-only from the SM's point of view:
//
//   - clock.Queue.After — one site, the issue stage scheduling the
//     operand-read callback one cycle out (doIssue). The queue assigns
//     FIFO sequence numbers in call order, which fixes the drain order
//     of same-cycle events.
//   - obs.Tracer.Emit — the fetch/issue/stall trace sites. The tracer
//     assigns its global sequence number in call order, which fixes the
//     exported event order.
//   - obs.Histogram.Observe — the operand-log occupancy sample at
//     issue. Histogram state (buckets, count, sum, min, max) is
//     commutative over observation order, but the call still races if
//     made concurrently.
//
// Everything else Tick reads or writes is SM-private (warp and block
// runtime state, the flight pool, the SM's own stats) or frozen for the
// duration of the tick phase (clock.Queue.Now, the config, the chaos
// plan's fast-path fields). A Ledger captures the three shared-effect
// streams during a staged tick; the run loop flushes the ledgers in SM
// index order after the barrier, replaying every call in exactly the
// order a sequential tick sweep (SM 0, SM 1, ...) would have made it.
// Staged ticking is therefore bit-identical to direct ticking — same
// queue sequence numbers, same trace sequence numbers, same histogram
// state — which is the determinism argument of docs/parallelism.md.
package sm

import (
	"gpues/internal/clock"
	"gpues/internal/obs"
)

// Ledger stages the shared-state side effects of one SM's tick. It is
// owned by one goroutine at a time — the ticking worker between
// barriers, the flushing main goroutine otherwise — and is empty
// outside the tick phase, so it never carries state across cycle
// boundaries (and never appears in checkpoints).
type Ledger struct {
	// Events buffers clock schedules (the issue stage's operand-read
	// callbacks).
	Events clock.Stage
	// Trace buffers tracer emissions (fetch/issue/stall sites).
	Trace obs.EmitStage
	// logOcc buffers operand-log occupancy histogram samples.
	logOcc []int64
}

// observeLogOcc stages one operand-log occupancy sample.
//
//simlint:noalloc
func (l *Ledger) observeLogOcc(v int64) {
	if len(l.logOcc) < cap(l.logOcc) {
		l.logOcc = l.logOcc[:len(l.logOcc)+1]
		l.logOcc[len(l.logOcc)-1] = v
		return
	}
	//simlint:ignore noalloc grow path, runs once per high-water mark of staged samples
	l.logOcc = append(l.logOcc, v)
}

// Empty reports whether the ledger holds no staged effects.
func (l *Ledger) Empty() bool {
	return l.Events.Len() == 0 && l.Trace.Len() == 0 && len(l.logOcc) == 0
}

// TickStaged is Tick with every shared-state side effect staged into
// led instead of applied directly. The caller (the run loop's parallel
// tick phase) must guarantee tick isolation: no OnEvent hook installed
// and no chaos plan drawing randomness on the tick path (see
// Plan.TickOrderFree). FlushLedger applies the staged effects; until
// then the tick has touched only SM-private state, so concurrent
// TickStaged calls on distinct SMs are race-free.
//
// shardpurity proves that contract: the call graph reachable from here
// must stay inside per-SM receiver state and the staged ledgers.
//
//simlint:tickroot
func (s *SM) TickStaged(led *Ledger) {
	s.led = led
	s.Tick()
	s.led = nil
}

// FlushLedger applies the effects staged by the previous TickStaged
// call and resets the ledger. The run loop calls it single-threaded,
// in SM index order, which reproduces the sequential tick sweep's call
// order exactly. The three streams are mutually independent — queue
// sequence numbers, tracer sequence numbers and histogram state do not
// observe each other — so their relative flush order is immaterial;
// within each stream, recording order is preserved.
//
//simlint:noalloc
func (s *SM) FlushLedger(led *Ledger) {
	led.Events.FlushTo(s.q)
	led.Trace.FlushTo(s.tr)
	for _, v := range led.logOcc {
		s.met.LogOcc.Observe(v)
	}
	led.logOcc = led.logOcc[:0]
}

// TickIsolated reports whether this SM's tick path is free of
// observation hooks that staged ticking cannot reproduce: the OnEvent
// test hook runs synchronously inside Tick and may read shared state,
// so any SM carrying one forces the run loop back to sequential
// ticking.
func (s *SM) TickIsolated() bool { return s.OnEvent == nil }
