// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report. CI runs it after the benchmark job to
// publish a BENCH_<sha>.json artifact holding wall time (ns/op), the
// simulated cycle counts (sim-cycles), and the observability metrics
// the fault-driven benchmarks attach (fault-lat-mean, fault-lat-p99,
// and the per-reason stall-<reason> breakdown), so a perf or timing
// regression between two commits is a one-line diff of two artifacts.
// For the parallel-simulation benchmarks (BenchmarkParallel subcases
// named .../workers-N) it additionally derives speedup-vs-workers-1
// from sibling wall times, recording each host's parallel scaling.
//
// Example:
//
//	go test -run '^$' -bench=. -benchtime=1x . | benchjson -commit "$GITHUB_SHA" -o BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		commit = flag.String("commit", os.Getenv("GITHUB_SHA"), "commit hash recorded in the report")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Commit = *commit
	deriveSpeedups(rep)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` text output and collects the benchmark
// result lines plus the goos/goarch/pkg/cpu header fields.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		parseLine(rep, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return rep, nil
}
