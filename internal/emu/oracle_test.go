package emu

import (
	"math"
	"math/rand"
	"testing"

	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// This file cross-checks the emulator's ALU semantics against an
// independent Go interpreter on randomly generated straight-line
// programs. Any divergence between the two implementations is a bug in
// one of them.

// oracleExec interprets one instruction for a single lane over a plain
// register array — deliberately written separately from the emulator.
func oracleExec(in isa.Instruction, regs []uint64, lane, tid int) {
	read := func(r isa.Reg) uint64 {
		if r == isa.RZ || r == isa.RegNone {
			return 0
		}
		return regs[r]
	}
	write := func(r isa.Reg, v uint64) {
		if r != isa.RZ && r != isa.RegNone {
			regs[r] = v
		}
	}
	a, b, c := read(in.SrcA), read(in.SrcB), read(in.SrcC)
	f := math.Float64frombits
	fb := math.Float64bits
	switch in.Op {
	case isa.OpIAdd:
		write(in.Dst, a+b+uint64(in.Imm))
	case isa.OpISub:
		write(in.Dst, a-b)
	case isa.OpIMul:
		if in.SrcB != isa.RZ && in.SrcB != isa.RegNone {
			write(in.Dst, a*b)
		} else {
			write(in.Dst, a*uint64(in.Imm))
		}
	case isa.OpIMad:
		write(in.Dst, a*b+c)
	case isa.OpIMin:
		if int64(a) < int64(b) {
			write(in.Dst, a)
		} else {
			write(in.Dst, b)
		}
	case isa.OpIMax:
		if int64(a) > int64(b) {
			write(in.Dst, a)
		} else {
			write(in.Dst, b)
		}
	case isa.OpShl:
		write(in.Dst, a<<((b+uint64(in.Imm))&63))
	case isa.OpShr:
		write(in.Dst, a>>((b+uint64(in.Imm))&63))
	case isa.OpAnd:
		if in.SrcB != isa.RZ && in.SrcB != isa.RegNone {
			write(in.Dst, a&b)
		} else {
			write(in.Dst, a&uint64(in.Imm))
		}
	case isa.OpOr:
		write(in.Dst, a|b|uint64(in.Imm))
	case isa.OpXor:
		write(in.Dst, a^b^uint64(in.Imm))
	case isa.OpMov:
		if in.SrcA != isa.RegNone {
			write(in.Dst, a)
		} else {
			write(in.Dst, uint64(in.Imm))
		}
	case isa.OpSetP:
		lhs, rhs := int64(a), int64(b)+in.Imm
		var ok bool
		switch in.Cmp {
		case isa.CmpEQ:
			ok = lhs == rhs
		case isa.CmpNE:
			ok = lhs != rhs
		case isa.CmpLT:
			ok = lhs < rhs
		case isa.CmpLE:
			ok = lhs <= rhs
		case isa.CmpGT:
			ok = lhs > rhs
		case isa.CmpGE:
			ok = lhs >= rhs
		}
		if ok {
			write(in.Dst, 1)
		} else {
			write(in.Dst, 0)
		}
	case isa.OpFAdd:
		write(in.Dst, fb(f(a)+f(b)))
	case isa.OpFSub:
		write(in.Dst, fb(f(a)-f(b)))
	case isa.OpFMul:
		write(in.Dst, fb(f(a)*f(b)))
	case isa.OpFFma:
		write(in.Dst, fb(math.FMA(f(a), f(b), f(c))))
	case isa.OpI2F:
		write(in.Dst, fb(float64(int64(a))))
	case isa.OpS2R:
		switch isa.SReg(in.Imm) {
		case isa.SRLaneID:
			write(in.Dst, uint64(lane))
		case isa.SRTidX:
			write(in.Dst, uint64(tid))
		}
	}
}

// randALUProgram builds a random straight-line program over registers
// r0..r15 plus an epilogue that stores every register to out.
func randALUProgram(rng *rand.Rand, outBase uint64) (*kernel.Kernel, []isa.Instruction) {
	const nRegs = 16
	b := kernel.NewBuilder("fuzz")
	po := b.AddParam(outBase)

	regs := make([]isa.Reg, nRegs)
	for i := range regs {
		regs[i] = b.Reg()
	}
	var body []isa.Instruction

	emit := func(in isa.Instruction) {
		b.Emit(in)
		body = append(body, in)
	}
	rreg := func() isa.Reg {
		if rng.Intn(8) == 0 {
			return isa.RZ
		}
		return regs[rng.Intn(nRegs)]
	}

	// Seed registers: lane id and small constants.
	seed1 := isa.NewInstruction(isa.OpS2R)
	seed1.Dst, seed1.Imm = regs[0], int64(isa.SRLaneID)
	emit(seed1)
	for i := 1; i < 4; i++ {
		mv := isa.NewInstruction(isa.OpMov)
		mv.Dst, mv.Imm = regs[i], rng.Int63n(1000)-500
		emit(mv)
	}
	// Give a few registers float values for the FP ops.
	for i := 4; i < 8; i++ {
		mv := isa.NewInstruction(isa.OpMov)
		mv.Dst = regs[i]
		mv.Imm = int64(math.Float64bits(rng.Float64()*16 - 8))
		emit(mv)
	}

	ops := []isa.Op{
		isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIMad, isa.OpIMin, isa.OpIMax,
		isa.OpShl, isa.OpShr, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMov,
		isa.OpSetP, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFFma, isa.OpI2F,
	}
	for i := 0; i < 60; i++ {
		in := isa.NewInstruction(ops[rng.Intn(len(ops))])
		in.Dst = regs[rng.Intn(nRegs)]
		in.SrcA = rreg()
		switch in.Op {
		case isa.OpIMad, isa.OpFFma:
			in.SrcB = rreg()
			in.SrcC = rreg()
		case isa.OpMov:
			if rng.Intn(2) == 0 {
				in.SrcA = isa.RegNone
				in.Imm = rng.Int63n(4096)
			}
		case isa.OpShl, isa.OpShr:
			in.SrcB = isa.RZ
			in.Imm = rng.Int63n(63)
		case isa.OpSetP:
			in.SrcB = rreg()
			in.Imm = rng.Int63n(64) - 32
			in.Cmp = isa.Cmp(rng.Intn(6))
		case isa.OpI2F:
			// unary
		default:
			in.SrcB = rreg()
			if rng.Intn(2) == 0 {
				in.Imm = rng.Int63n(100)
			}
		}
		emit(in)
	}

	// Epilogue: store all registers (outside the oracle's scope).
	addr := b.Reg()
	lane := b.Reg()
	b.S2R(lane, isa.SRLaneID)
	b.LoadParam(addr, po)
	b.IMul(lane, lane, isa.RZ, nRegs*8)
	b.IAdd(addr, addr, lane, 0)
	for i := 0; i < nRegs; i++ {
		b.StGlobal(addr, int64(i*8), regs[i], 8)
	}
	b.Exit()
	return b.MustBuild(), body
}

func TestEmulatorMatchesOracle(t *testing.T) {
	const outBase = uint64(0x100000)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k, body := randALUProgram(rng, outBase)
		mem := NewMemory()
		l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
		e, err := New(l, mem, 128)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.EmulateBlock(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Oracle: run the body per lane.
		for lane := 0; lane < 32; lane++ {
			regs := make([]uint64, isa.MaxRegs)
			for _, in := range body {
				oracleExec(in, regs, lane, lane)
			}
			for r := 0; r < 16; r++ {
				got := mem.ReadU64(outBase + uint64(lane*16*8+r*8))
				if got != regs[r] {
					t.Fatalf("seed %d lane %d r%d: emulator %#x, oracle %#x",
						seed, lane, r, got, regs[r])
				}
			}
		}
	}
}
