package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count. Add is nil-receiver safe
// and allocation-free, so components can increment unconditionally.
type Counter struct {
	v int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// histBuckets is the number of log2 histogram buckets: bucket 0 holds
// values <= 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram records a value distribution in log2 buckets with exact
// count/sum/min/max. Percentiles are bucket-resolution approximations
// (the bucket's upper bound, clamped to the observed max), which keeps
// them deterministic and allocation-free. Observe is nil-receiver safe.
type Histogram struct {
	buckets  [histBuckets]int64
	count    int64
	sum      int64
	min, max int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// quantile returns the approximate q-quantile (0 < q <= 1): the upper
// bound of the bucket holding the q*count-th observation, clamped to
// [min, max].
func (h *Histogram) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			var ub int64
			if i > 0 {
				ub = 1 << uint(i)
			}
			if ub > h.max {
				ub = h.max
			}
			if ub < h.min {
				ub = h.min
			}
			return ub
		}
	}
	return h.max
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.count == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		Mean:  float64(h.sum) / float64(h.count),
		P50:   h.quantile(0.50),
		P90:   h.quantile(0.90),
		P99:   h.quantile(0.99),
	}
}

// Registry holds the named instruments of one simulation. Registration
// happens at wiring time; the hot path touches only the returned
// instrument pointers. Single-threaded, like the simulation.
type Registry struct {
	counters map[string]*Counter
	//simlint:ckptskip gauge closures read component state that restores separately; SaveState records readings for the digest only
	gauges map[string]func() int64
	hists  map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers a read-at-snapshot value source under name.
// Re-registering replaces the source.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.gauges[name] = fn
}

// Histogram registers (or returns the existing) histogram under name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every registered instrument,
// exportable as JSON or CSV and embedded in sim.Result.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every instrument. A nil registry yields a zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	// Sorted names keep the reads deterministic: gauge callbacks run in
	// a fixed order, so a callback with side effects (or one that reads
	// state another callback touches) cannot vary between runs.
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for _, n := range sortedNames(r.counters) {
			s.Counters[n] = r.counters[n].Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for _, n := range sortedNames(r.gauges) {
			s.Gauges[n] = r.gauges[n]()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, n := range sortedNames(r.hists) {
			s.Histograms[n] = r.hists[n].Snapshot()
		}
	}
	return s
}

// sortedNames returns the map's keys in sorted order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts
// map keys, so the output is byte-deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as sorted name,value rows (histograms
// expand into .count/.sum/.min/.max/.mean/.p50/.p90/.p99 rows), so two
// snapshots diff line by line.
func (s Snapshot) WriteCSV(w io.Writer) error {
	type row struct {
		name  string
		value string
	}
	var rows []row
	for n, v := range s.Counters {
		rows = append(rows, row{n, fmt.Sprintf("%d", v)})
	}
	for n, v := range s.Gauges {
		rows = append(rows, row{n, fmt.Sprintf("%d", v)})
	}
	for n, h := range s.Histograms {
		rows = append(rows,
			row{n + ".count", fmt.Sprintf("%d", h.Count)},
			row{n + ".sum", fmt.Sprintf("%d", h.Sum)},
			row{n + ".min", fmt.Sprintf("%d", h.Min)},
			row{n + ".max", fmt.Sprintf("%d", h.Max)},
			row{n + ".mean", fmt.Sprintf("%g", h.Mean)},
			row{n + ".p50", fmt.Sprintf("%d", h.P50)},
			row{n + ".p90", fmt.Sprintf("%d", h.P90)},
			row{n + ".p99", fmt.Sprintf("%d", h.P99)},
		)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	if _, err := io.WriteString(w, "metric,value\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s\n", r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}
