package determinism_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/det",
		"gpues/internal/analysis/determinism/testdata/src/det")
}
