// Package clock provides the discrete-event backbone of the timing
// simulator: a current cycle and a queue of scheduled callbacks. The SM
// pipelines tick cycle by cycle; the memory system components (caches,
// TLBs, DRAM, interconnect, host) schedule completions on the queue.
// When every SM is idle the main loop skips directly to the next event
// cycle, which makes fault-dominated phases cheap to simulate.
package clock

import "container/heap"

type event struct {
	cycle int64
	seq   uint64 // FIFO order among same-cycle events
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Queue is the simulation clock and event queue. Not safe for
// concurrent use; the whole timing simulation is single-threaded.
type Queue struct {
	now    int64
	seq    uint64
	events eventHeap
}

// New returns a queue at cycle 0.
func New() *Queue { return &Queue{} }

// Now returns the current cycle.
func (q *Queue) Now() int64 { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// At schedules fn to run at the given absolute cycle. Events scheduled
// in the past run at the current cycle's drain. Same-cycle events run in
// scheduling order.
func (q *Queue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	heap.Push(&q.events, event{cycle: cycle, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay int64, fn func()) { q.At(q.now+delay, fn) }

// RunDue runs every event scheduled at or before the current cycle,
// including events those events schedule for the current cycle.
func (q *Queue) RunDue() {
	for len(q.events) > 0 && q.events[0].cycle <= q.now {
		e := heap.Pop(&q.events).(event)
		e.fn()
	}
}

// Step advances the clock by one cycle and runs due events.
func (q *Queue) Step() {
	q.now++
	q.RunDue()
}

// NextEvent returns the cycle of the earliest pending event.
func (q *Queue) NextEvent() (int64, bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].cycle, true
}

// SkipTo advances the clock to the given cycle (never backwards),
// running intermediate events at their own scheduled cycles so that
// callbacks observe the correct Now. Used when all SMs are asleep.
func (q *Queue) SkipTo(cycle int64) {
	for len(q.events) > 0 && q.events[0].cycle <= cycle {
		if c := q.events[0].cycle; c > q.now {
			q.now = c
		}
		e := heap.Pop(&q.events).(event)
		e.fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}
