package simserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"gpues/internal/sim"
)

// RunMetrics is the result summary a worker attaches to a completion;
// it rides through the result cache verbatim, so a cache-served
// submission sees the original run's numbers.
type RunMetrics struct {
	Cycles     int64   `json:"cycles"`
	Committed  int64   `json:"committed"`
	Blocks     int     `json:"blocks"`
	LinkUtil   float64 `json:"link_util"`
	WalkFaults int64   `json:"walk_faults"`
	Exceptions int64   `json:"exceptions"`
}

// Worker pulls jobs from a coordinator and simulates them. Execution
// is sliced: the simulator advances SliceCycles at a time and the
// lease is renewed between slices, so a preemption request (drain,
// migration) is honored within one slice by checkpointing into the
// spool and handing the job back.
type Worker struct {
	Client *Client
	// Name identifies this worker in leases and results.
	Name string
	// Spool is the shared checkpoint spool directory (the
	// coordinator's SpoolDir when co-located; any shared path
	// otherwise).
	Spool string
	// SliceCycles is the renewal granularity (default 50_000 cycles).
	SliceCycles int64
	// Poll is the idle claim interval (default 200ms).
	Poll time.Duration
	// Log receives progress lines (nil = silent).
	Log func(string)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(fmt.Sprintf(format, args...))
	}
}

func (w *Worker) slice() int64 {
	if w.SliceCycles > 0 {
		return w.SliceCycles
	}
	return 50_000
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

// Run claims and executes jobs until ctx is canceled. Transport errors
// back off to the poll interval: the worker rides out a coordinator
// restart and resumes claiming from the recovered queue.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		claim, ok, err := w.Client.Claim(w.Name)
		if err != nil || !ok {
			if err != nil {
				w.logf("worker %s: claim: %v", w.Name, err)
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.poll()):
			}
			continue
		}
		w.runJob(ctx, claim)
	}
}

// RunOne claims and executes at most one job; claimed reports whether
// there was work. Tests use it to step workers deterministically.
func (w *Worker) RunOne(ctx context.Context) (claimed bool, err error) {
	claim, ok, err := w.Client.Claim(w.Name)
	if err != nil || !ok {
		return false, err
	}
	w.runJob(ctx, claim)
	return true, nil
}

// fail reports a failed attempt, rendering a stall report if the
// error carries one.
func (w *Worker) fail(claim ClaimResponse, err error) {
	req := FailRequest{JobID: claim.JobID, Worker: w.Name, Token: claim.Token, Error: err.Error()}
	var stall *sim.StallError
	if errors.As(err, &stall) {
		req.Error = fmt.Sprintf("stall: %s at cycle %d", stall.Report.Reason, stall.Report.Cycle)
		req.Stall = stall.Report.String()
	}
	if _, ferr := w.Client.Fail(req); ferr != nil {
		w.logf("worker %s: fail report for %s rejected: %v", w.Name, claim.JobID, ferr)
	}
}

func (w *Worker) runJob(ctx context.Context, claim ClaimResponse) {
	cfg, spec, err := claim.Spec.Build()
	if err != nil {
		w.fail(claim, err)
		return
	}
	s, err := sim.New(cfg, spec)
	if err != nil {
		w.fail(claim, err)
		return
	}
	if claim.Checkpoint != "" {
		// Resume the preempted run. RestoreFile replays to the
		// checkpoint cycle and byte-compares every component, so a
		// corrupt or mismatched checkpoint surfaces here as a
		// DivergenceError; Fail wipes it and the retry starts clean.
		if err := s.RestoreFile(claim.Checkpoint); err != nil {
			w.fail(claim, fmt.Errorf("restore %s: %w", claim.Checkpoint, err))
			return
		}
		w.logf("worker %s: resumed %s from %s at cycle %d", w.Name, claim.JobID, claim.Checkpoint, s.Cycle())
	} else if err := s.Start(); err != nil {
		w.fail(claim, err)
		return
	}

	for {
		if ctx.Err() != nil {
			// Shutting down without a checkpoint: let the lease lapse,
			// the reaper requeues the job.
			return
		}
		reached, err := s.StepTo(s.Cycle() + w.slice())
		if err != nil {
			w.fail(claim, err)
			return
		}
		if !reached {
			// Launch finished: finalize (exception drain, telemetry
			// close) and report.
			res, err := s.Run()
			if err != nil {
				w.fail(claim, err)
				return
			}
			w.complete(claim, res)
			return
		}
		directive, err := w.Client.Renew(claim.JobID, w.Name, claim.Token)
		if err != nil {
			w.logf("worker %s: renew %s: %v", w.Name, claim.JobID, err)
			continue // transient transport error: keep simulating
		}
		switch directive {
		case DirectiveOK:
		case DirectivePreempt:
			w.preempt(claim, s)
			return
		case DirectiveLost:
			w.logf("worker %s: lease on %s lost, abandoning at cycle %d", w.Name, claim.JobID, s.Cycle())
			return
		default:
			w.logf("worker %s: unknown directive %q, abandoning", w.Name, directive)
			return
		}
	}
}

func (w *Worker) complete(claim ClaimResponse, res *sim.Result) {
	m := RunMetrics{
		Cycles:     res.Cycles,
		Committed:  res.Committed,
		Blocks:     res.Blocks,
		LinkUtil:   res.LinkUtil,
		WalkFaults: res.WalkFaults,
		Exceptions: res.Exceptions,
	}
	metrics, _ := json.Marshal(m)
	err := w.Client.Complete(CompleteRequest{
		JobID: claim.JobID, Worker: w.Name, Token: claim.Token,
		Cycles: res.Cycles, Committed: res.Committed, Metrics: metrics,
	})
	if err != nil {
		// A stale rejection (409) means the reaper reassigned the job;
		// the fencing token did its job and someone else's result wins.
		w.logf("worker %s: complete %s rejected: %v", w.Name, claim.JobID, err)
		return
	}
	w.logf("worker %s: completed %s in %d cycles", w.Name, claim.JobID, res.Cycles)
}

func (w *Worker) preempt(claim ClaimResponse, s *sim.Simulator) {
	dir := filepath.Join(w.Spool, claim.JobID, fmt.Sprintf("att%03d-%s", claim.Attempt, w.Name))
	path, err := s.WriteCheckpoint(dir)
	if err != nil {
		w.fail(claim, fmt.Errorf("preempt checkpoint: %w", err))
		return
	}
	err = w.Client.Preempt(PreemptRequest{
		JobID: claim.JobID, Worker: w.Name, Token: claim.Token, Checkpoint: path,
	})
	if err != nil {
		w.logf("worker %s: preempt handoff of %s rejected: %v", w.Name, claim.JobID, err)
		return
	}
	w.logf("worker %s: preempted %s at cycle %d -> %s", w.Name, claim.JobID, s.Cycle(), path)
}
