package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gpues"
	"gpues/internal/obs"
)

// buildSeries samples a synthetic run shape into a decoded table:
// steady commit progress, a fault burst with latency observations in
// the middle third, and a fault-wait stall dominating that burst.
func buildSeries(t *testing.T, samples int, burstFaults int64) *gpues.SeriesTable {
	t.Helper()
	r := obs.NewRegistry()
	committed := r.Counter(obs.ColCommitted)
	faults := r.Counter(obs.ColFaultsRaised)
	fw := r.Counter(obs.StallColPrefix + "fault-wait")
	sb := r.Counter(obs.StallColPrefix + "scoreboard")
	lat := r.Histogram("fault.latency_cycles")
	occ := int64(32)
	r.Gauge(obs.ColOccupancy, func() int64 { return occ })

	sp := obs.NewSampler(1000, r)
	for i := 1; i <= samples; i++ {
		inBurst := i > samples/3 && i <= 2*samples/3
		if inBurst {
			committed.Add(200)
			faults.Add(burstFaults)
			fw.Add(700)
			sb.Add(100)
			for f := int64(0); f < burstFaults; f++ {
				lat.Observe(20_000)
			}
		} else {
			committed.Add(650)
			sb.Add(200)
			fw.Add(150)
		}
		sp.Sample(int64(i) * 1000)
	}

	var buf bytes.Buffer
	if err := sp.View().WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tab, err := gpues.ReadSeriesNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestReportText(t *testing.T) {
	tab := buildSeries(t, 30, 3)
	var out bytes.Buffer
	if err := writeReport(&out, "run.ndjson", tab, 5, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"30 samples every 1000 cycles",
		"ipc           steady 0.650",
		"peak stall    fault-wait",
		"faults        30 raised in 1 phase(s)",
		"mean latency 20000 cycles",
		"top 5 intervals by stall share:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report misses %q:\n%s", want, text)
		}
	}
}

func TestReportJSON(t *testing.T) {
	tab := buildSeries(t, 30, 3)
	var out bytes.Buffer
	if err := writeReport(&out, "run.ndjson", tab, 4, true); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out.String())
	}
	if rep.Samples != 30 || rep.Every != 1000 {
		t.Errorf("samples/every = %d/%d", rep.Samples, rep.Every)
	}
	if rep.Stats.PeakStallReason != "fault-wait" {
		t.Errorf("peak stall = %q", rep.Stats.PeakStallReason)
	}
	if len(rep.Intervals) != 4 {
		t.Errorf("got %d top intervals, want 4", len(rep.Intervals))
	}
	// Burst intervals dominate the stall-share ranking.
	for _, iv := range rep.Intervals {
		if iv.TopStall != "fault-wait" {
			t.Errorf("interval at %d attributes to %q", iv.Cycle, iv.TopStall)
		}
	}
}

func TestDiffIdenticalPasses(t *testing.T) {
	a := buildSeries(t, 20, 3)
	b := buildSeries(t, 20, 3)
	d := diffSeries(a, b)
	if d.Aligned != 20 || d.OnlyA != 0 || d.OnlyB != 0 {
		t.Fatalf("alignment = %d/%d/%d", d.Aligned, d.OnlyA, d.OnlyB)
	}
	if d.maxRelPct() != 0 {
		t.Fatalf("identical series deviate: %+v", d.Cols)
	}
	if d.exceeds(0) {
		t.Error("identical series exceed a zero threshold")
	}
	var out bytes.Buffer
	if err := writeDiff(&out, "a", "b", d, 8, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "identical across aligned samples") {
		t.Errorf("diff text:\n%s", out.String())
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	a := buildSeries(t, 20, 3)
	b := buildSeries(t, 24, 9) // longer run, 3x the faults
	d := diffSeries(a, b)
	if d.CyclesA == d.CyclesB {
		t.Fatal("test runs should end at different cycles")
	}
	if !d.exceeds(0) || !d.exceeds(50) {
		t.Error("regression not gated")
	}
	if d.maxRelPct() <= 0 {
		t.Fatalf("no deviation found: %+v", d.Cols)
	}
	// faultunit.raised deviates worst: 3 vs 9 per burst interval is a
	// 66.7% relative deviation.
	if worst := d.Cols[0]; worst.MaxRelPct < 60 {
		t.Errorf("worst deviation %+v", worst)
	}
	var out bytes.Buffer
	if err := writeDiff(&out, "a", "b", d, 3, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "REGRESSION") {
		t.Errorf("cycle mismatch not flagged:\n%s", text)
	}
	if !strings.Contains(text, "top 3 columns by deviation:") {
		t.Errorf("deviation table missing:\n%s", text)
	}

	// Without a threshold the diff only reports.
	if d.exceeds(-1) {
		t.Error("threshold -1 must never gate")
	}
}

func TestDiffMissingColumnGates(t *testing.T) {
	a := buildSeries(t, 10, 2)
	// b lacks the occupancy gauge.
	r := obs.NewRegistry()
	r.Counter(obs.ColCommitted).Add(1)
	sp := obs.NewSampler(1000, r)
	sp.Sample(1000)
	var buf bytes.Buffer
	if err := sp.View().WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := gpues.ReadSeriesNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := diffSeries(a, b)
	if len(d.MissingInB) == 0 {
		t.Fatalf("missing columns not detected: %+v", d)
	}
	if !d.exceeds(100) {
		t.Error("missing columns must gate at any threshold")
	}
}

func TestRelPct(t *testing.T) {
	cases := []struct {
		a, b int64
		want float64
	}{
		{0, 0, 0}, {5, 5, 0}, {100, 50, 50}, {50, 100, 50}, {-10, 10, 200}, {0, 4, 100},
	}
	for _, c := range cases {
		if got := relPct(c.a, c.b); got != c.want {
			t.Errorf("relPct(%d,%d) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}
