package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gpues
cpu: AMD EPYC 7B13
BenchmarkFig10/baseline         	       1	 579904096 ns/op	    117137 sim-cycles
BenchmarkFig10/replay-queue     	       1	 541994459 ns/op	    129906 sim-cycles	    100209 fault-lat-mean	    239999 fault-lat-p99	  66348088 stall-fault-wait
BenchmarkTable2                 	       1	     17834 ns/op
BenchmarkEmulator               	       1	  80718509 ns/op	   2626064 warp-insts/s
--- some test log noise
PASS
ok  	gpues	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Package != "gpues" {
		t.Fatalf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.Package)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFig10/baseline" || b.N != 1 {
		t.Fatalf("first = %+v", b)
	}
	if b.Metrics["ns/op"] != 579904096 || b.Metrics["sim-cycles"] != 117137 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	rq := rep.Benchmarks[1]
	if rq.Metrics["fault-lat-p99"] != 239999 || rq.Metrics["stall-fault-wait"] != 66348088 {
		t.Fatalf("fault metrics = %v", rq.Metrics)
	}
	if rep.Benchmarks[2].Metrics["sim-cycles"] != 0 {
		t.Fatalf("Table2 should have no sim-cycles: %v", rep.Benchmarks[2].Metrics)
	}
	if rep.Benchmarks[3].Metrics["warp-insts/s"] != 2626064 {
		t.Fatalf("emulator metrics = %v", rep.Benchmarks[3].Metrics)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBad x 1 ns/op\nBenchmarkShort 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("malformed lines parsed: %+v", rep.Benchmarks)
	}
}
