package cache

import (
	"testing"

	"gpues/internal/clock"
)

// fakeBackend records traffic and answers fetches after a fixed delay.
type fakeBackend struct {
	q       *clock.Queue
	latency int64
	fetches int
	writes  int
	reject  bool
}

func (b *fakeBackend) Fetch(addr uint64, done func()) bool {
	if b.reject {
		return false
	}
	b.fetches++
	b.q.After(b.latency, done)
	return true
}

func (b *fakeBackend) Write(addr uint64, done func()) bool {
	if b.reject {
		return false
	}
	b.writes++
	b.q.After(b.latency, done)
	return true
}

func run(q *clock.Queue, maxCycles int64) {
	for i := int64(0); i < maxCycles && q.Len() > 0; i++ {
		q.Step()
	}
}

func l1Config() Config {
	return Config{Name: "L1", SizeKB: 32, Ways: 4, LineB: 128, MSHRs: 32, Latency: 40, Policy: WriteThrough}
}

func TestCacheReadMissThenHit(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 100}
	c, err := New(l1Config(), q, be)
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 int64 = -1, -1
	if !c.Access(0x1000, false, func() { t1 = q.Now() }) {
		t.Fatal("first access rejected")
	}
	run(q, 1000)
	if t1 < 140 {
		t.Errorf("miss completed at %d, want >= 140 (40 tag + 100 backend)", t1)
	}
	if be.fetches != 1 {
		t.Errorf("backend fetches = %d, want 1", be.fetches)
	}
	c.Access(0x1000, false, func() { t2 = q.Now() })
	start := q.Now()
	run(q, 1000)
	if t2-start != 40 {
		t.Errorf("hit latency = %d, want 40", t2-start)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheMSHRMerge(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 100}
	c, _ := New(l1Config(), q, be)
	done := 0
	// Two accesses to the same line and one to a different offset in it.
	c.Access(0x2000, false, func() { done++ })
	c.Access(0x2040, false, func() { done++ }) // same 128B line
	c.Access(0x2000, false, func() { done++ })
	run(q, 1000)
	if done != 3 {
		t.Errorf("completions = %d, want 3", done)
	}
	if be.fetches != 1 {
		t.Errorf("backend fetches = %d, want 1 (merged)", be.fetches)
	}
	if s := c.Stats(); s.MSHRMerges != 2 {
		t.Errorf("merges = %d, want 2", s.MSHRMerges)
	}
}

func TestCacheMSHRBackpressure(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 10000}
	cfg := l1Config()
	cfg.MSHRs = 2
	c, _ := New(cfg, q, be)
	if !c.Access(0x0000, false, func() {}) {
		t.Fatal("access 1 rejected")
	}
	if !c.Access(0x1000, false, func() {}) {
		t.Fatal("access 2 rejected")
	}
	if c.Access(0x2000, false, func() {}) {
		t.Error("access 3 must be rejected: MSHRs full")
	}
	if c.InFlight() != 2 {
		t.Errorf("in flight = %d", c.InFlight())
	}
	if s := c.Stats(); s.Rejects != 1 {
		t.Errorf("rejects = %d, want 1", s.Rejects)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 1}
	// Tiny direct-ish cache: 1 KB, 2 ways, 128 B lines -> 4 sets.
	cfg := Config{Name: "t", SizeKB: 1, Ways: 2, LineB: 128, MSHRs: 8, Latency: 1, Policy: WriteThrough}
	c, _ := New(cfg, q, be)
	// Three lines mapping to the same set (stride = sets*line = 512).
	for _, a := range []uint64{0, 512, 1024} {
		c.Access(a, false, func() {})
		run(q, 100)
	}
	// Line 0 was LRU and must have been evicted: re-access misses.
	before := c.Stats().Misses
	c.Access(0, false, func() {})
	run(q, 100)
	if c.Stats().Misses != before+1 {
		t.Error("LRU line not evicted")
	}
	// Line 1024 (MRU) still resident.
	beforeHits := c.Stats().Hits
	c.Access(1024, false, func() {})
	run(q, 100)
	if c.Stats().Hits != beforeHits+1 {
		t.Error("MRU line evicted")
	}
}

func TestWriteThroughForwardsTraffic(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 1}
	c, _ := New(l1Config(), q, be)
	done := false
	c.Access(0x3000, true, func() { done = true })
	run(q, 100)
	if !done {
		t.Error("store never completed")
	}
	if be.writes != 1 {
		t.Errorf("downstream writes = %d, want 1", be.writes)
	}
	// Write-through no-allocate: a read after a write miss still misses.
	c.Access(0x3000, false, func() {})
	run(q, 100)
	if c.Stats().Hits != 0 {
		t.Error("write miss must not allocate in write-through cache")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 1}
	cfg := Config{Name: "L2", SizeKB: 1, Ways: 2, LineB: 128, MSHRs: 8, Latency: 1, Policy: WriteBack}
	c, _ := New(cfg, q, be)
	// Dirty a line, then evict it with two more lines in the same set.
	c.Access(0, true, func() {})
	run(q, 10)
	if be.writes != 0 {
		t.Fatal("write-back cache must not forward stores immediately")
	}
	c.Access(512, false, func() {})
	run(q, 10)
	c.Access(1024, false, func() {})
	run(q, 10)
	if be.writes != 1 {
		t.Errorf("dirty eviction writes = %d, want 1", be.writes)
	}
	if c.Stats().WriteBacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().WriteBacks)
	}
}

func TestWriteBackHitDirtiesLine(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 1}
	cfg := Config{Name: "L2", SizeKB: 1, Ways: 2, LineB: 128, MSHRs: 8, Latency: 1, Policy: WriteBack}
	c, _ := New(cfg, q, be)
	c.Access(0, false, func() {})
	run(q, 10)
	c.Access(0, true, func() {}) // hit, dirties
	run(q, 10)
	c.Flush()
	run(q, 10)
	if be.writes != 1 {
		t.Errorf("flush writes = %d, want 1 dirty line", be.writes)
	}
}

func TestCacheRetriesRejectedBackend(t *testing.T) {
	q := clock.New()
	be := &fakeBackend{q: q, latency: 1, reject: true}
	cfg := l1Config()
	cfg.Latency = 1
	c, _ := New(cfg, q, be)
	done := false
	c.Access(0x100, false, func() { done = true })
	run(q, 5)
	be.reject = false // backend recovers
	run(q, 100)
	if !done {
		t.Error("access never completed after backend recovered")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	q := clock.New()
	bad := []Config{
		{Name: "a", SizeKB: 32, Ways: 4, LineB: 100, MSHRs: 1, Latency: 1},
		{Name: "b", SizeKB: 0, Ways: 4, LineB: 128, MSHRs: 1, Latency: 1},
		{Name: "c", SizeKB: 32, Ways: 0, LineB: 128, MSHRs: 1, Latency: 1},
		{Name: "d", SizeKB: 1, Ways: 16, LineB: 1024, MSHRs: 1, Latency: 1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, q, nil); err == nil {
			t.Errorf("config %q must be rejected", cfg.Name)
		}
	}
}
