package kernel

import (
	"strings"
	"testing"

	"gpues/internal/isa"
)

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder("labels")
	r := b.Reg()
	p := b.Reg()
	loop := b.NewLabel()
	b.MovI(r, 4)
	b.Bind(loop)
	b.IAdd(r, r, isa.RZ, -1)
	b.SetP(isa.CmpGT, p, r, isa.RZ, 0)
	b.BraIfUniform(p, false, loop)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := k.Code[3]
	if br.Op != isa.OpBra || br.Target != 1 {
		t.Errorf("back edge target = %d, want 1", br.Target)
	}
	if br.Reconv != -1 {
		t.Errorf("uniform branch reconv = %d, want -1", br.Reconv)
	}
}

func TestBuilderForwardLabelAndReconv(t *testing.T) {
	b := NewBuilder("fwd")
	p := b.Reg()
	thenL := b.NewLabel()
	out := b.NewLabel()
	b.MovI(p, 1)
	b.BraIf(p, false, thenL, out)
	b.Nop() // else path
	b.Bind(thenL)
	b.Nop() // then path
	b.Bind(out)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := k.Code[1]
	if br.Target != 3 || br.Reconv != 4 {
		t.Errorf("branch target/reconv = %d/%d, want 3/4", br.Target, br.Reconv)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("unbound label", func(t *testing.T) {
		b := NewBuilder("bad")
		l := b.NewLabel()
		b.Bra(l)
		b.Exit()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unbound") {
			t.Errorf("Build() err = %v, want unbound label error", err)
		}
	})
	t.Run("no exit", func(t *testing.T) {
		b := NewBuilder("noexit")
		b.Nop()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "exit") {
			t.Errorf("Build() err = %v, want missing-exit error", err)
		}
	})
	t.Run("double bind", func(t *testing.T) {
		b := NewBuilder("dbl")
		l := b.NewLabel()
		b.Bind(l)
		b.Nop()
		b.Bind(l)
		b.Exit()
		if _, err := b.Build(); err == nil {
			t.Error("Build() = nil error, want double-bind error")
		}
	})
	t.Run("bad param index", func(t *testing.T) {
		b := NewBuilder("param")
		b.LoadParam(b.Reg(), 3) // no params added
		b.Exit()
		if _, err := b.Build(); err == nil {
			t.Error("Build() = nil error, want param range error")
		}
	})
	t.Run("bad mem size", func(t *testing.T) {
		b := NewBuilder("size")
		r := b.Reg()
		b.LdGlobal(r, r, 0, 3)
		b.Exit()
		if _, err := b.Build(); err == nil {
			t.Error("Build() = nil error, want size error")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder("e").Build(); err == nil {
			t.Error("Build() of empty kernel must fail")
		}
	})
}

func TestValidateBranchRange(t *testing.T) {
	k := &Kernel{Name: "k", Code: []isa.Instruction{func() isa.Instruction {
		in := isa.NewInstruction(isa.OpBra)
		in.Target = 99
		return in
	}(), isa.NewInstruction(isa.OpExit)}}
	if err := k.Validate(); err == nil {
		t.Error("Validate() must reject out-of-range target")
	}
}

func TestOccupancy(t *testing.T) {
	// 256 threads/block, 32 regs/thread, no shared memory:
	// register limit = 256KB/4B / (32*256) = 8 blocks.
	k := &Kernel{Name: "k", RegsPerThread: 32}
	l := Launch{Kernel: k, Grid: Dim3{X: 100}, Block: Dim3{X: 256}}
	if got := l.Occupancy(16, 64, 32, 256, 32); got != 8 {
		t.Errorf("occupancy = %d, want 8 (register limited)", got)
	}
	// Warp slots limit: 64 warps / 8 warps-per-block = 8 blocks, but with
	// 8 regs/thread registers allow 32 -> warp limited.
	k2 := &Kernel{Name: "k2", RegsPerThread: 8}
	l2 := Launch{Kernel: k2, Grid: Dim3{X: 100}, Block: Dim3{X: 256}}
	if got := l2.Occupancy(16, 64, 32, 256, 32); got != 8 {
		t.Errorf("occupancy = %d, want 8 (warp limited)", got)
	}
	// lbm-like: 128 threads/block, 256 regs/thread ->
	// 256KB/4 = 65536 regs; per block 128*256 = 32768 -> 2 blocks, 8 warps.
	k3 := &Kernel{Name: "lbm", RegsPerThread: 256}
	l3 := Launch{Kernel: k3, Grid: Dim3{X: 100}, Block: Dim3{X: 128}}
	if got := l3.Occupancy(16, 64, 32, 256, 32); got != 2 {
		t.Errorf("lbm occupancy = %d blocks, want 2 (8 warps)", got)
	}
	// Shared memory limit: 16KB/block in a 32KB SM -> 2 blocks.
	k4 := &Kernel{Name: "shm", RegsPerThread: 8, SharedMemBytes: 16 * 1024}
	l4 := Launch{Kernel: k4, Grid: Dim3{X: 100}, Block: Dim3{X: 32}}
	if got := l4.Occupancy(16, 64, 32, 256, 32); got != 2 {
		t.Errorf("occupancy = %d, want 2 (shared memory limited)", got)
	}
	// Floor of 1: even absurd usage yields one resident block.
	k5 := &Kernel{Name: "huge", RegsPerThread: 255, SharedMemBytes: 64 * 1024}
	l5 := Launch{Kernel: k5, Grid: Dim3{X: 1}, Block: Dim3{X: 1024}}
	if got := l5.Occupancy(16, 64, 32, 256, 32); got != 1 {
		t.Errorf("occupancy = %d, want 1", got)
	}
}

func TestLaunchGeometry(t *testing.T) {
	l := Launch{Kernel: &Kernel{}, Grid: Dim3{X: 4, Y: 3}, Block: Dim3{X: 96}}
	if l.Blocks() != 12 {
		t.Errorf("Blocks() = %d, want 12", l.Blocks())
	}
	if l.ThreadsPerBlock() != 96 {
		t.Errorf("ThreadsPerBlock() = %d, want 96", l.ThreadsPerBlock())
	}
	if l.WarpsPerBlock(32) != 3 {
		t.Errorf("WarpsPerBlock(32) = %d, want 3", l.WarpsPerBlock(32))
	}
	// Partial warp rounds up.
	l.Block = Dim3{X: 33}
	if l.WarpsPerBlock(32) != 2 {
		t.Errorf("WarpsPerBlock(32) with 33 threads = %d, want 2", l.WarpsPerBlock(32))
	}
	if (Dim3{}).Count() != 1 {
		t.Errorf("zero Dim3 must count as 1")
	}
}

func TestSetParam(t *testing.T) {
	b := NewBuilder("p")
	idx := b.AddParam(0)
	b.SetParam(idx, 42)
	b.LoadParam(b.Reg(), idx)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.Params[idx] != 42 {
		t.Errorf("param = %d, want 42", k.Params[idx])
	}
	b2 := NewBuilder("p2")
	b2.SetParam(5, 1) // out of range
	b2.Exit()
	if _, err := b2.Build(); err == nil {
		t.Error("SetParam out of range must surface at Build")
	}
}

func TestRegsPerThreadDerivation(t *testing.T) {
	b := NewBuilder("regs")
	for i := 0; i < 10; i++ {
		b.Reg()
	}
	b.Exit()
	k := b.MustBuild()
	if k.RegsPerThread != 20 {
		t.Errorf("derived regs/thread = %d, want 20 (2 slots per 64-bit reg)", k.RegsPerThread)
	}
	b2 := NewBuilder("explicit").SetRegsPerThread(200)
	b2.Exit()
	if k2 := b2.MustBuild(); k2.RegsPerThread != 200 {
		t.Errorf("explicit regs/thread = %d, want 200", k2.RegsPerThread)
	}
}
