// Package emu implements the execution-driven functional simulator of
// the paper's methodology (Section 5.1): it executes kernels written in
// the internal ISA and produces the dynamic instruction and memory
// traces that the timing simulator consumes.
package emu

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// chunkBits selects the sparse-memory chunk size (64 KB).
const chunkBits = 16

const chunkSize = 1 << chunkBits

// Memory is the functional view of the unified virtual address space:
// it holds contents only. Page residency and ownership (the timing
// view) live in the vm package; both index the same virtual addresses.
//
// Memory is sparse: chunks materialize on first write. Reads of
// untouched memory return zero without allocating.
type Memory struct {
	chunks map[uint64][]byte
	// Written counts bytes backed by materialized chunks, for tests and
	// footprint reporting.
	allocated int
	// Single-entry chunk cache: warp accesses are heavily clustered, so
	// most lookups hit the chunk of the previous one. Chunks are never
	// removed from the map, so the cached slice cannot go stale.
	//simlint:ckptskip lookup cache; a cold start after restore is correct and self-repopulates
	lastKey uint64
	//simlint:ckptskip lookup cache; a cold start after restore is correct and self-repopulates
	lastChunk []byte
}

// NewMemory returns an empty functional memory.
func NewMemory() *Memory {
	return &Memory{chunks: make(map[uint64][]byte)}
}

// AllocatedBytes returns the number of bytes materialized so far.
func (m *Memory) AllocatedBytes() int { return m.allocated }

func (m *Memory) chunk(addr uint64, create bool) []byte {
	key := addr >> chunkBits
	if m.lastChunk != nil && m.lastKey == key {
		return m.lastChunk
	}
	c := m.chunks[key]
	if c == nil && create {
		c = make([]byte, chunkSize)
		m.chunks[key] = c
		m.allocated += chunkSize
	}
	if c != nil {
		m.lastKey, m.lastChunk = key, c
	}
	return c
}

// Read returns the little-endian value of the given size (1, 2, 4 or 8
// bytes) at addr. Accesses may cross chunk boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	if off := addr & (chunkSize - 1); int(off)+size <= chunkSize {
		c := m.chunk(addr, false)
		if c == nil {
			return 0
		}
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(c[off:])
		case 4:
			return uint64(binary.LittleEndian.Uint32(c[off:]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(c[off:]))
		case 1:
			return uint64(c[off])
		}
	}
	// Slow path: byte-wise, possibly spanning chunks.
	var v uint64
	for i := 0; i < size; i++ {
		c := m.chunk(addr+uint64(i), false)
		var b byte
		if c != nil {
			b = c[(addr+uint64(i))&(chunkSize-1)]
		}
		v |= uint64(b) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	if off := addr & (chunkSize - 1); int(off)+size <= chunkSize {
		c := m.chunk(addr, true)
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(c[off:], v)
			return
		case 4:
			binary.LittleEndian.PutUint32(c[off:], uint32(v))
			return
		case 2:
			binary.LittleEndian.PutUint16(c[off:], uint16(v))
			return
		case 1:
			c[off] = byte(v)
			return
		}
	}
	for i := 0; i < size; i++ {
		c := m.chunk(addr+uint64(i), true)
		c[(addr+uint64(i))&(chunkSize-1)] = byte(v >> (8 * i))
	}
}

// ReadU32 reads a 32-bit value.
func (m *Memory) ReadU32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// WriteU32 writes a 32-bit value.
func (m *Memory) WriteU32(addr uint64, v uint32) { m.Write(addr, 4, uint64(v)) }

// ReadU64 reads a 64-bit value.
func (m *Memory) ReadU64(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteU64 writes a 64-bit value.
func (m *Memory) WriteU64(addr uint64, v uint64) { m.Write(addr, 8, v) }

// ReadF32 reads a float32.
func (m *Memory) ReadF32(addr uint64) float32 {
	return math.Float32frombits(m.ReadU32(addr))
}

// WriteF32 writes a float32.
func (m *Memory) WriteF32(addr uint64, v float32) {
	m.WriteU32(addr, math.Float32bits(v))
}

// ReadF64 reads a float64.
func (m *Memory) ReadF64(addr uint64) float64 {
	return math.Float64frombits(m.ReadU64(addr))
}

// WriteF64 writes a float64.
func (m *Memory) WriteF64(addr uint64, v float64) {
	m.WriteU64(addr, math.Float64bits(v))
}

// Atom performs the read-modify-write op at addr and returns the old
// value. Emulation is single-threaded, so the operation is trivially
// atomic; inter-block ordering follows block emulation order, which is
// a valid (if arbitrary) interleaving.
func (m *Memory) Atom(addr uint64, size int, op func(old uint64) (new uint64, store bool)) uint64 {
	old := m.Read(addr, size)
	if nv, store := op(old); store {
		m.Write(addr, size, nv)
	}
	return old
}

// Fill writes n zero bytes starting at addr, materializing the chunks
// (used by workloads to pre-touch CPU-initialized buffers).
func (m *Memory) Fill(addr uint64, n int) {
	for i := 0; i < n; i += chunkSize {
		m.chunk(addr+uint64(i), true)
	}
	if n > 0 {
		m.chunk(addr+uint64(n-1), true)
	}
}

// Clone returns a deep copy of the memory, used to snapshot the initial
// state before a run so the functional oracle can re-execute from it.
func (m *Memory) Clone() *Memory {
	c := &Memory{chunks: make(map[uint64][]byte, len(m.chunks)), allocated: m.allocated}
	for key, data := range m.chunks {
		dup := make([]byte, chunkSize)
		copy(dup, data)
		//simlint:ignore determinism copying entries into a freshly made map is order-insensitive
		c.chunks[key] = dup
	}
	return c
}

// Mismatch is one byte of disagreement between two memories.
type Mismatch struct {
	Addr      uint64
	Got, Want byte
}

// Diff compares m (got) against want byte by byte, treating
// unmaterialized chunks as zeros, and returns up to max mismatches
// (max <= 0 means unbounded). Equal memories return nil.
func (m *Memory) Diff(want *Memory, max int) []Mismatch {
	seen := make(map[uint64]bool, len(m.chunks)+len(want.chunks))
	for k := range m.chunks {
		seen[k] = true
	}
	for k := range want.chunks {
		seen[k] = true
	}
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []Mismatch
	for _, key := range keys {
		a, b := m.chunks[key], want.chunks[key]
		for off := 0; off < chunkSize; off++ {
			var ga, gb byte
			if a != nil {
				ga = a[off]
			}
			if b != nil {
				gb = b[off]
			}
			if ga != gb {
				out = append(out, Mismatch{Addr: key<<chunkBits | uint64(off), Got: ga, Want: gb})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// String summarizes the memory for debugging.
func (m *Memory) String() string {
	return fmt.Sprintf("emu.Memory{%d chunks, %d KiB}", len(m.chunks), m.allocated/1024)
}
