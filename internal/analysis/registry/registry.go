// Package registry lists every simlint analyzer, in the order drivers
// run and document them.
package registry

import (
	"gpues/internal/analysis"
	"gpues/internal/analysis/ckptcomplete"
	"gpues/internal/analysis/determinism"
	"gpues/internal/analysis/directive"
	"gpues/internal/analysis/enumswitch"
	"gpues/internal/analysis/noalloc"
	"gpues/internal/analysis/poolsafe"
	"gpues/internal/analysis/shardpurity"
)

// All returns the full analyzer suite. The interprocedural members
// (ckptcomplete, shardpurity) export facts during their Run phase and
// prove their whole-program property in Finish.
func All() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		determinism.Analyzer,
		poolsafe.Analyzer,
		noalloc.Analyzer,
		enumswitch.Analyzer,
		directive.Analyzer,
		ckptcomplete.Analyzer,
		shardpurity.Analyzer,
	}
	for _, a := range as {
		analysis.RegisterFactTypes(a)
	}
	return as
}
