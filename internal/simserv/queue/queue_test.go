package queue

import (
	"errors"
	"testing"
)

func testCfg() Config {
	return Config{
		Cap:        4,
		Lease:      100,
		MaxRetries: 2,
		Backoff:    10,
		MaxBackoff: 80,
		Seed:       42,
	}
}

func submit(t *testing.T, q *Queue, id string, now int64) *Job {
	t.Helper()
	j := &Job{ID: id, Spec: []byte(`{}`)}
	if err := q.Submit(j, now); err != nil {
		t.Fatalf("submit %s: %v", id, err)
	}
	return j
}

func TestSubmitClaimFIFO(t *testing.T) {
	q := New(testCfg())
	submit(t, q, "b", 1)
	submit(t, q, "a", 2) // later submit, lexically earlier: FIFO must win
	submit(t, q, "c", 3)

	for _, want := range []string{"b", "a", "c"} {
		j, tok, ok := q.Claim("w1", 10)
		if !ok || j.ID != want {
			t.Fatalf("claim = %v, want %s", j, want)
		}
		if tok == 0 || j.Token != tok || j.State != Leased || j.Worker != "w1" {
			t.Fatalf("lease not installed: %+v", j)
		}
		if j.LeaseExpiry != 110 {
			t.Fatalf("lease expiry = %d, want 110", j.LeaseExpiry)
		}
	}
	if _, _, ok := q.Claim("w1", 10); ok {
		t.Fatal("claim on empty queue succeeded")
	}
}

func TestSubmitCapAndDuplicates(t *testing.T) {
	q := New(testCfg())
	for _, id := range []string{"a", "b", "c", "d"} {
		submit(t, q, id, 1)
	}
	if err := q.Submit(&Job{ID: "e"}, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("over-cap submit: %v, want ErrFull", err)
	}
	if err := q.Submit(&Job{ID: "a"}, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate submit: %v, want ErrDuplicate", err)
	}
	if err := q.Submit(&Job{}, 1); err == nil {
		t.Fatal("empty job id accepted")
	}
	if c := q.Counters(); c.RejectedFull != 1 || c.Submitted != 4 {
		t.Fatalf("counters = %+v", c)
	}
	// Completion frees a slot.
	j, tok, _ := q.Claim("w1", 2)
	if _, err := q.Complete(j.ID, "w1", tok, Result{Cycles: 7}, 3); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(&Job{ID: "e"}, 4); err != nil {
		t.Fatalf("submit after completion: %v", err)
	}
	if q.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", q.Depth())
	}
}

func TestCompleteExactlyOnce(t *testing.T) {
	q := New(testCfg())
	submit(t, q, "a", 1)
	j, tok, _ := q.Claim("w1", 2)

	if _, err := q.Complete("a", "w2", tok, Result{}, 3); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong worker: %v, want ErrStale", err)
	}
	if _, err := q.Complete("a", "w1", tok+1, Result{}, 3); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong token: %v, want ErrStale", err)
	}
	if _, err := q.Complete("nope", "w1", tok, Result{}, 3); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown job: %v, want ErrUnknown", err)
	}

	done, err := q.Complete("a", "w1", tok, Result{Cycles: 101471, Committed: 9}, 3)
	if err != nil || len(done) != 1 {
		t.Fatalf("complete: %v, %v", done, err)
	}
	if j.State != Done || j.Result.Cycles != 101471 || j.Result.Worker != "w1" {
		t.Fatalf("job after complete: %+v res %+v", j, j.Result)
	}
	// Replay of the same report must be rejected, not double-counted.
	if _, err := q.Complete("a", "w1", tok, Result{}, 4); !errors.Is(err, ErrStale) {
		t.Fatalf("duplicate complete: %v, want ErrStale", err)
	}
	c := q.Counters()
	if c.Completed != 1 || c.StaleOps != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLeaseExpiryFencesOldWorker(t *testing.T) {
	q := New(testCfg())
	submit(t, q, "a", 1)
	_, tok1, _ := q.Claim("w1", 2)

	// Nothing expires before the deadline.
	if exp := q.ExpireLeases(101); len(exp) != 0 {
		t.Fatalf("early expiry: %v", exp)
	}
	exp := q.ExpireLeases(102)
	if len(exp) != 1 || exp[0].ID != "a" || exp[0].State != Queued {
		t.Fatalf("expiry = %+v", exp)
	}

	// w1 is still running and reports late: fenced.
	if _, err := q.Complete("a", "w1", tok1, Result{}, 150); !errors.Is(err, ErrStale) {
		t.Fatalf("late complete: %v, want ErrStale", err)
	}
	if _, err := q.Renew("a", "w1", tok1, 150); !errors.Is(err, ErrStale) {
		t.Fatalf("late renew: %v, want ErrStale", err)
	}

	// The job is claimable again after its backoff, by a new token.
	j := exp[0]
	if j.NotBefore <= 102 {
		t.Fatalf("no backoff applied: %+v", j)
	}
	j2, tok2, ok := q.Claim("w2", j.NotBefore)
	if !ok || j2.ID != "a" || tok2 == tok1 {
		t.Fatalf("reclaim = %+v tok %d", j2, tok2)
	}
	if _, err := q.Complete("a", "w2", tok2, Result{Cycles: 5}, 200); err != nil {
		t.Fatal(err)
	}
	c := q.Counters()
	if c.LeaseExpiries != 1 || c.Retries != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestFailBackoffAndDeadLetter(t *testing.T) {
	cfg := testCfg()
	q := New(cfg)
	submit(t, q, "a", 0)

	var delays []int64
	now := int64(0)
	for i := 0; ; i++ {
		j, tok, ok := q.Claim("w1", now)
		if !ok {
			t.Fatalf("claim %d failed at now=%d", i, now)
		}
		retried, err := q.Fail(j.ID, "w1", tok, "watchdog stall", "SM3 warp 2 @pc 0x40", now)
		if err != nil {
			t.Fatal(err)
		}
		if !retried {
			if i != cfg.MaxRetries {
				t.Fatalf("dead-lettered after %d failures, want %d", i+1, cfg.MaxRetries+1)
			}
			break
		}
		delays = append(delays, j.NotBefore-now)
		now = j.NotBefore
	}

	j, _ := q.Get("a")
	if j.State != Dead || j.StallReport != "SM3 warp 2 @pc 0x40" || j.LastError != "watchdog stall" {
		t.Fatalf("dead letter = %+v", j)
	}
	if _, _, ok := q.Claim("w1", now+1000); ok {
		t.Fatal("dead job claimed")
	}
	// Exponential base with bounded jitter: delay i in [base<<i, 1.5*(base<<i)).
	for i, d := range delays {
		base := cfg.Backoff << i
		if base > cfg.MaxBackoff {
			base = cfg.MaxBackoff
		}
		if d < base || d >= base+base/2 {
			t.Errorf("delay %d = %d, want in [%d, %d)", i, d, base, base+base/2)
		}
	}
	c := q.Counters()
	if c.DeadLetters != 1 || c.Failures != int64(cfg.MaxRetries)+1 {
		t.Fatalf("counters = %+v", c)
	}
	if q.Depth() != 0 {
		t.Fatalf("dead job still resident: depth=%d", q.Depth())
	}
}

func TestBackoffDeterministicAcrossQueues(t *testing.T) {
	run := func(seed int64) []int64 {
		cfg := testCfg()
		cfg.Seed = seed
		q := New(cfg)
		submit(t, q, "job-7", 0)
		var delays []int64
		now := int64(0)
		for {
			j, tok, ok := q.Claim("w", now)
			if !ok {
				break
			}
			retried, _ := q.Fail(j.ID, "w", tok, "x", "", now)
			if !retried {
				break
			}
			delays = append(delays, j.NotBefore-now)
			now = j.NotBefore
		}
		return delays
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("delay runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("different seeds produced identical jitter: %v", a)
	}
}

func TestCoalescingSingleflight(t *testing.T) {
	q := New(Config{Cap: 10, Lease: 100, MaxRetries: 1, Seed: 1})
	p := &Job{ID: "p", Key: "fp:abc"}
	if err := q.Submit(p, 1); err != nil {
		t.Fatal(err)
	}
	f1 := &Job{ID: "f1", Key: "fp:abc"}
	f2 := &Job{ID: "f2", Key: "fp:abc"}
	other := &Job{ID: "o", Key: "fp:xyz"}
	for _, j := range []*Job{f1, f2, other} {
		if err := q.Submit(j, 2); err != nil {
			t.Fatal(err)
		}
	}
	if f1.CoalescedInto != "p" || f2.CoalescedInto != "p" || other.CoalescedInto != "" {
		t.Fatalf("coalescing: f1=%q f2=%q o=%q", f1.CoalescedInto, f2.CoalescedInto, other.CoalescedInto)
	}

	// Only p and o are claimable: one simulation per distinct key.
	j1, tok, _ := q.Claim("w1", 3)
	j2, _, _ := q.Claim("w2", 3)
	if j1.ID != "p" || j2.ID != "o" {
		t.Fatalf("claims = %v, %v", j1.ID, j2.ID)
	}
	if _, _, ok := q.Claim("w3", 3); ok {
		t.Fatal("follower was claimed")
	}

	done, err := q.Complete("p", "w1", tok, Result{Cycles: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("completed %d jobs, want primary+2 followers", len(done))
	}
	if done[0].ID != "p" || done[0].Result.CacheHit {
		t.Fatalf("primary result: %+v", done[0].Result)
	}
	for _, f := range done[1:] {
		if f.State != Done || !f.Result.CacheHit || f.Result.Cycles != 9 {
			t.Fatalf("follower %s result: %+v", f.ID, f.Result)
		}
	}
	if c := q.Counters(); c.Coalesced != 2 || c.Completed != 3 {
		t.Fatalf("counters = %+v", c)
	}

	// A fresh submission with the same key gets no resident primary now.
	late := &Job{ID: "late", Key: "fp:abc"}
	if err := q.Submit(late, 5); err != nil || late.CoalescedInto != "" {
		t.Fatalf("late submit coalesced onto finished job: %+v, %v", late, err)
	}
}

func TestCoalescedFollowersDieWithPrimary(t *testing.T) {
	q := New(Config{Cap: 10, Lease: 100, MaxRetries: 0, Seed: 1})
	submitKey := func(id string) *Job {
		j := &Job{ID: id, Key: "fp:k"}
		if err := q.Submit(j, 1); err != nil {
			t.Fatal(err)
		}
		return j
	}
	p, f := submitKey("p"), submitKey("f")
	_, tok, _ := q.Claim("w1", 2)
	if retried, err := q.Fail("p", "w1", tok, "boom", "", 2); err != nil || retried {
		t.Fatalf("fail: retried=%v err=%v", retried, err)
	}
	if p.State != Dead || f.State != Dead {
		t.Fatalf("states: p=%v f=%v", p.State, f.State)
	}
	if f.LastError == "" {
		t.Fatal("follower dead-letter carries no cause")
	}
	if c := q.Counters(); c.DeadLetters != 2 {
		t.Fatalf("counters = %+v", c)
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d", q.Depth())
	}
}

func TestCompleteCached(t *testing.T) {
	q := New(testCfg())
	p := &Job{ID: "p", Key: "fp:k"}
	f := &Job{ID: "f", Key: "fp:k"}
	for _, j := range []*Job{p, f} {
		if err := q.Submit(j, 1); err != nil {
			t.Fatal(err)
		}
	}
	done, err := q.CompleteCached("p", Result{Cycles: 33, Metrics: []byte(`{"ipc":2}`)}, 2)
	if err != nil || len(done) != 2 {
		t.Fatalf("cached complete: %v, %v", done, err)
	}
	for _, j := range done {
		if j.State != Done || !j.Result.CacheHit || j.Result.Cycles != 33 {
			t.Fatalf("job %s: %+v", j.ID, j.Result)
		}
		if string(j.Result.Metrics) != `{"ipc":2}` {
			t.Fatalf("cached metrics not carried: %s", j.Result.Metrics)
		}
	}
	// Cached completion of a leased job is refused.
	submit(t, q, "x", 3)
	q.Claim("w1", 3)
	if _, err := q.CompleteCached("x", Result{}, 4); err == nil {
		t.Fatal("cached completion of leased job accepted")
	}
	if _, err := q.CompleteCached("nope", Result{}, 4); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown: %v", err)
	}
}

func TestPreemptAndResume(t *testing.T) {
	q := New(testCfg())
	submit(t, q, "a", 1)
	j, tok, _ := q.Claim("w1", 2)

	if !q.RequestPreempt("a") {
		t.Fatal("RequestPreempt on leased job failed")
	}
	if q.RequestPreempt("nope") {
		t.Fatal("RequestPreempt on unknown job succeeded")
	}
	preempt, err := q.Renew("a", "w1", tok, 10)
	if err != nil || !preempt {
		t.Fatalf("renew: preempt=%v err=%v", preempt, err)
	}
	if j.LeaseExpiry != 110 {
		t.Fatalf("renew did not extend lease: %d", j.LeaseExpiry)
	}

	if err := q.Preempt("a", "w1", tok, "/spool/a/ckpt-000050000.ckpt", 12); err != nil {
		t.Fatal(err)
	}
	if j.State != Queued || j.Checkpoint == "" || j.NotBefore != 0 || j.PreemptRequested {
		t.Fatalf("after preempt: %+v", j)
	}
	// No retry consumed: preemption is cooperative.
	if j.Retries != 0 {
		t.Fatalf("preempt consumed a retry: %+v", j)
	}

	// Immediately claimable; resume counted; checkpoint visible to claimant.
	j2, tok2, ok := q.Claim("w2", 13)
	if !ok || j2.Checkpoint != "/spool/a/ckpt-000050000.ckpt" || tok2 == tok {
		t.Fatalf("resume claim: %+v tok=%d", j2, tok2)
	}
	c := q.Counters()
	if c.Preemptions != 1 || c.Resumes != 1 {
		t.Fatalf("counters = %+v", c)
	}

	// A failure wipes the checkpoint: retries run from scratch.
	if _, err := q.Fail("a", "w2", tok2, "divergence", "", 14); err != nil {
		t.Fatal(err)
	}
	if j2.Checkpoint != "" {
		t.Fatalf("failed job kept checkpoint: %+v", j2)
	}
}

func TestExpiryKeepsCheckpoint(t *testing.T) {
	q := New(testCfg())
	submit(t, q, "a", 1)
	_, tok, _ := q.Claim("w1", 2)
	if err := q.Preempt("a", "w1", tok, "/spool/ck", 3); err != nil {
		t.Fatal(err)
	}
	j, tok2, _ := q.Claim("w2", 4)
	_ = tok2
	q.ExpireLeases(4 + testCfg().Lease)
	if j.Checkpoint != "/spool/ck" {
		t.Fatalf("expiry wiped checkpoint: %+v", j)
	}
	if j.LastError == "" {
		t.Fatal("expiry recorded no cause")
	}
}

func TestLoadReorderRoundTrip(t *testing.T) {
	cfg := testCfg()
	q := New(cfg)
	submit(t, q, "a", 1)
	submit(t, q, "b", 2)
	submit(t, q, "c", 3)
	ja, tokA, _ := q.Claim("w1", 4)
	if _, err := q.Complete("a", "w1", tokA, Result{Cycles: 1}, 5); err != nil {
		t.Fatal(err)
	}
	_ = ja

	// Rebuild a second queue from the first one's records, shuffled.
	q2 := New(cfg)
	jobs := q.Jobs()
	for i := len(jobs) - 1; i >= 0; i-- {
		cp := *jobs[i]
		q2.Load(&cp)
	}
	q2.Reorder()

	if q2.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", q2.Depth())
	}
	got, _ := q2.Get("a")
	if got.State != Done || got.Result.Cycles != 1 {
		t.Fatalf("done job lost: %+v", got)
	}
	// Claim order resumes FIFO; new tokens never collide with old ones.
	j, tok, ok := q2.Claim("w2", 10)
	if !ok || j.ID != "b" {
		t.Fatalf("claim after load = %+v", j)
	}
	if tok <= tokA {
		t.Fatalf("token %d not past loaded high-water %d", tok, tokA)
	}
	// A new submission's Seq continues past the loaded ones.
	submit(t, q2, "d", 11)
	d, _ := q2.Get("d")
	if d.Seq <= 3 {
		t.Fatalf("seq not resumed: %+v", d)
	}
}

func TestNextWake(t *testing.T) {
	q := New(testCfg())
	if _, ok := q.NextWake(0); ok {
		t.Fatal("empty queue has a wake time")
	}
	submit(t, q, "a", 1)
	// Eligible-now queued job needs no timer.
	if _, ok := q.NextWake(1); ok {
		t.Fatal("eligible job scheduled a wake")
	}
	_, tok, _ := q.Claim("w1", 2)
	at, ok := q.NextWake(2)
	if !ok || at != 102 {
		t.Fatalf("wake = %d,%v want lease expiry 102", at, ok)
	}
	// A backing-off job wakes at NotBefore; the earlier timer wins.
	submit(t, q, "b", 3)
	jb, tokB, _ := q.Claim("w2", 3)
	if _, err := q.Fail("b", "w2", tokB, "x", "", 3); err != nil {
		t.Fatal(err)
	}
	at, ok = q.NextWake(4)
	want := jb.NotBefore
	if want > 102 {
		want = 102
	}
	if !ok || at != want {
		t.Fatalf("wake = %d,%v want %d", at, ok, want)
	}
	if _, err := q.Complete("a", "w1", tok, Result{}, 5); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Queued: "queued", Leased: "leased", Done: "done", Dead: "dead", State(9): "State(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
