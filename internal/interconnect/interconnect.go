// Package interconnect models the CPU-GPU system link (NVLink or PCIe
// 3.0) as a small number of transfer channels with occupancy: page
// migration and fault signalling traffic queue for a free channel in
// arrival order. The heavy contention of this link under concurrent
// faults is what both use cases of the paper exploit or avoid.
package interconnect

import (
	"fmt"

	"gpues/internal/clock"
	"gpues/internal/obs"
)

// Stats counts link activity.
type Stats struct {
	Transfers   int64
	BusyCycles  int64
	StallCycles int64 // time requests waited for a free channel
}

// Jitter is the chaos hook of the link: it returns extra occupancy
// cycles to add to one transfer. A nil Jitter costs a pointer test.
type Jitter interface {
	TransferJitter(cycles int64) int64
}

// Link is the CPU-GPU interconnect.
type Link struct {
	//simlint:ckptskip identity assigned at construction; the checkpoint section is keyed by it
	name string
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q        *clock.Queue
	channels []int64 // nextFree cycle per channel
	//simlint:ckptskip chaos hook, rebound by AttachChaos on restore; the plan checkpoints its own progress
	jitter Jitter
	stats  Stats
}

// New builds a link with the given number of parallel channels.
func New(name string, q *clock.Queue, channels int) (*Link, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("interconnect %s: %d channels", name, channels)
	}
	return &Link{name: name, q: q, channels: make([]int64, channels)}, nil
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Stats returns a copy of the counters.
func (l *Link) Stats() Stats { return l.stats }

// RegisterMetrics exposes the link counters as gauges.
func (l *Link) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".transfers", func() int64 { return l.stats.Transfers })
	reg.Gauge(prefix+".busy_cycles", func() int64 { return l.stats.BusyCycles })
	reg.Gauge(prefix+".stall_cycles", func() int64 { return l.stats.StallCycles })
}

// SetJitter installs the chaos hook; nil removes it.
func (l *Link) SetJitter(j Jitter) { l.jitter = j }

// Occupy reserves a channel for the given number of cycles and calls
// done when the occupancy ends. Requests wait for the earliest-free
// channel.
func (l *Link) Occupy(cycles int64, done func()) {
	if cycles <= 0 {
		cycles = 1
	}
	if l.jitter != nil {
		if j := l.jitter.TransferJitter(cycles); j > 0 {
			cycles += j
		}
	}
	now := l.q.Now()
	// Any channel already free (nextFree <= now) behaves identically to
	// the earliest-free one — the transfer starts now either way, and
	// the clock never goes back, so values at or below now stay
	// interchangeable forever. Take the first free channel and skip the
	// full min scan in the common uncontended case.
	best := 0
	for i := 0; i < len(l.channels); i++ {
		if l.channels[i] <= now {
			best = i
			break
		}
		if l.channels[i] < l.channels[best] {
			best = i
		}
	}
	start := now
	if l.channels[best] > start {
		start = l.channels[best]
	}
	l.stats.Transfers++
	l.stats.StallCycles += start - now
	l.stats.BusyCycles += cycles
	l.channels[best] = start + cycles
	l.q.At(start+cycles, done)
}

// Utilization returns the fraction of cycles the link was busy over the
// elapsed simulation time (capped at the channel count).
func (l *Link) Utilization() float64 {
	if l.q.Now() == 0 {
		return 0
	}
	return float64(l.stats.BusyCycles) / float64(l.q.Now()*int64(len(l.channels)))
}
