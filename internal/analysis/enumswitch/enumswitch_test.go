package enumswitch_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/enumswitch"
)

func TestEnumswitch(t *testing.T) {
	analysistest.Run(t, enumswitch.Analyzer, "testdata/src/enums",
		"gpues/internal/analysis/enumswitch/testdata/src/enums")
}
