// Package isa defines the instruction set of the modelled GPU. The ISA is
// designed to mimic modern GPU ISAs (Section 5.1 of the paper): a large
// unified register file, explicit management of the SIMT divergence
// stack, fused multiply-add, and approximate complex math instructions
// executed by a special function unit.
//
// Instructions are register-to-register with an optional immediate.
// Branches carry an explicit reconvergence point (the immediate
// post-dominator), which the kernel builder computes from the structured
// control flow it emits; the functional emulator uses it to drive the
// divergence stack.
package isa

import "fmt"

// Reg identifies a general-purpose register. Registers hold 64-bit
// values functionally; for occupancy accounting a register costs one
// 32-bit register-file slot and pointer-sized values cost two (see
// kernel.Metadata).
type Reg int16

// RegNone marks an unused operand slot.
const RegNone Reg = -1

// RZ is the hardwired zero register.
const RZ Reg = 255

// MaxRegs is the number of addressable registers per thread.
const MaxRegs = 256

// String formats the register the way the paper's examples do (R3, RZ).
func (r Reg) String() string {
	switch r {
	case RegNone:
		return "-"
	case RZ:
		return "RZ"
	default:
		return fmt.Sprintf("R%d", int16(r))
	}
}

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpNop does nothing for one pipeline pass.
	OpNop Op = iota

	// Integer ALU (math units).
	OpIAdd // Rd = Ra + Rb + imm
	OpISub // Rd = Ra - Rb
	OpIMul // Rd = Ra * Rb
	OpIMad // Rd = Ra * Rb + Rc
	OpIMin // Rd = min(Ra, Rb) signed
	OpIMax // Rd = max(Ra, Rb) signed
	OpShl  // Rd = Ra << (Rb + imm)
	OpShr  // Rd = Ra >> (Rb + imm) logical
	OpAnd  // Rd = Ra & Rb&imm-combined
	OpOr   // Rd = Ra | Rb | imm
	OpXor  // Rd = Ra ^ Rb ^ imm
	OpMov  // Rd = Ra (or imm when Ra == RegNone)
	OpSetP // Rd = compare(Ra, Rb+imm) ? 1 : 0, per Cmp

	// Floating point (math units). Values are float64 stored in the
	// 64-bit register.
	OpFAdd // Rd = Ra + Rb
	OpFSub // Rd = Ra - Rb
	OpFMul // Rd = Ra * Rb
	OpFFma // Rd = Ra*Rb + Rc (fused)
	OpFMin // Rd = min(Ra, Rb)
	OpFMax // Rd = max(Ra, Rb)
	OpFSetP
	OpI2F // Rd = float(Ra) signed
	OpF2I // Rd = int(Ra) truncating

	// Special function unit (approximate complex math).
	OpFRcp  // Rd = 1/Ra
	OpFSqrt // Rd = sqrt(Ra)
	OpFRsqrt
	OpFExp // Rd = 2^Ra
	OpFLog // Rd = log2(Ra)
	OpFSin
	OpFCos

	// Special register and constant access (math units).
	OpS2R // Rd = special register Imm (see SReg)
	OpLdParam

	// Memory (load/store pipeline). Global ops are the only ones that
	// can page fault.
	OpLdGlobal // Rd = mem[Ra + imm]
	OpStGlobal // mem[Ra + imm] = Rb
	OpAtomGlobal
	OpLdShared // Rd = shared[Ra + imm]
	OpStShared // shared[Ra + imm] = Rb

	// Control flow (branch unit). Fetch of the warp is disabled after
	// fetching any of these and re-enabled at their commit.
	OpBra  // conditional/unconditional branch with reconvergence point
	OpBar  // block-wide barrier
	OpExit // thread exit

	// Exception support (math units; see internal/excep). An assert
	// whose condition holds and a malloc that succeeds execute like
	// plain ALU instructions; the failing cases raise a device
	// exception in the emulator and never reach the timing pipeline.
	OpAssert // raise KindAssert on lanes where Ra == 0; Imm is the assert id
	OpTrap   // raise KindTrap on any active lane; Imm is the trap code
	OpMalloc // Rd = device-heap alloc of Ra (or Imm) bytes; OOM raises KindDeviceOOM

	opCount
)

// Cmp selects the comparison performed by OpSetP/OpFSetP.
type Cmp uint8

const (
	CmpEQ Cmp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the comparison mnemonic suffix.
func (c Cmp) String() string {
	switch c {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	}
	return fmt.Sprintf("cmp%d", uint8(c))
}

// AtomOp selects the read-modify-write performed by OpAtomGlobal.
type AtomOp uint8

const (
	AtomAdd AtomOp = iota
	AtomMax
	AtomMin
	AtomExch
	AtomCAS
	AtomAnd
	AtomOr
)

// String returns the atomic mnemonic suffix.
func (a AtomOp) String() string {
	switch a {
	case AtomAdd:
		return "add"
	case AtomMax:
		return "max"
	case AtomMin:
		return "min"
	case AtomExch:
		return "exch"
	case AtomCAS:
		return "cas"
	case AtomAnd:
		return "and"
	case AtomOr:
		return "or"
	}
	return fmt.Sprintf("atom%d", uint8(a))
}

// SReg identifies a special register readable with OpS2R.
type SReg uint8

const (
	SRTidX SReg = iota
	SRTidY
	SRCtaIDX
	SRCtaIDY
	SRNTidX // block dimension X
	SRNTidY
	SRGridDimX
	SRGridDimY
	SRLaneID
	SRWarpID
	SRNumSReg
)

// String returns the special register name.
func (s SReg) String() string {
	names := [...]string{"tid.x", "tid.y", "ctaid.x", "ctaid.y",
		"ntid.x", "ntid.y", "griddim.x", "griddim.y", "laneid", "warpid"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("sreg%d", uint8(s))
}

// Unit identifies the back-end execution unit class of an opcode.
type Unit uint8

const (
	UnitMath Unit = iota
	UnitSpecial
	UnitLoadStore
	UnitBranch
	UnitNone // Nop
)

// String returns a short unit name.
func (u Unit) String() string {
	switch u {
	case UnitMath:
		return "math"
	case UnitSpecial:
		return "sfu"
	case UnitLoadStore:
		return "ldst"
	case UnitBranch:
		return "branch"
	case UnitNone:
		return "none"
	}
	return "none"
}

// Instruction is one static instruction of a kernel.
type Instruction struct {
	Op   Op
	Dst  Reg
	SrcA Reg
	SrcB Reg
	SrcC Reg
	Imm  int64 // immediate operand; float immediates via math.Float64bits

	// Pred, when not RegNone, predicates the instruction per lane on the
	// low bit of the register; PredNeg inverts the sense.
	Pred    Reg
	PredNeg bool

	// Cmp selects the comparison for OpSetP/OpFSetP; Atom the RMW for
	// OpAtomGlobal.
	Cmp  Cmp
	Atom AtomOp

	// Size is the per-lane access size in bytes for memory operations
	// (4 or 8).
	Size uint8

	// Target and Reconv are static instruction indices for OpBra: the
	// branch target and the reconvergence point (immediate
	// post-dominator) at which diverged lanes rejoin. A branch with
	// Reconv < 0 asserts it is warp-uniform.
	Target int32
	Reconv int32
}

// NewInstruction returns an instruction with all register slots unused,
// so constructors only fill what they need.
func NewInstruction(op Op) Instruction {
	return Instruction{
		Op: op, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone,
		Pred: RegNone, Target: -1, Reconv: -1,
	}
}

// IsGlobalMem reports whether the instruction accesses global memory and
// can therefore page fault. These are the only potentially faulting
// instructions in the model, mirroring the paper.
func (in Instruction) IsGlobalMem() bool {
	return in.Op == OpLdGlobal || in.Op == OpStGlobal || in.Op == OpAtomGlobal
}

// IsMem reports whether the instruction is executed by the load/store
// pipelines (global or shared).
func (in Instruction) IsMem() bool {
	switch in.Op {
	case OpLdGlobal, OpStGlobal, OpAtomGlobal, OpLdShared, OpStShared:
		return true
	default:
		return false
	}
}

// IsControl reports whether fetching the instruction suspends further
// fetch for the warp until it commits (control flow).
func (in Instruction) IsControl() bool {
	switch in.Op {
	case OpBra, OpBar, OpExit:
		return true
	default:
		return false
	}
}

// Writes reports whether the instruction writes Dst.
func (in Instruction) Writes() bool {
	return in.Dst != RegNone && in.Dst != RZ
}

// ExecUnit returns the back-end unit class that executes the opcode.
func (in Instruction) ExecUnit() Unit {
	switch in.Op {
	case OpNop:
		return UnitNone
	case OpFRcp, OpFSqrt, OpFRsqrt, OpFExp, OpFLog, OpFSin, OpFCos:
		return UnitSpecial
	case OpLdGlobal, OpStGlobal, OpAtomGlobal, OpLdShared, OpStShared:
		return UnitLoadStore
	case OpBra, OpBar, OpExit:
		return UnitBranch
	default:
		return UnitMath
	}
}

// SourceRegs appends the valid source registers of the instruction to
// dst and returns it. RZ is excluded: it is not scoreboarded.
func (in Instruction) SourceRegs(dst []Reg) []Reg {
	for _, r := range [...]Reg{in.SrcA, in.SrcB, in.SrcC, in.Pred} {
		if r != RegNone && r != RZ {
			dst = append(dst, r)
		}
	}
	return dst
}

// Mnemonic returns the assembly mnemonic of the opcode.
func (o Op) Mnemonic() string {
	if int(o) < len(mnemonics) {
		return mnemonics[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

var mnemonics = [...]string{
	OpNop:  "nop",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpIMad: "imad",
	OpIMin: "imin", OpIMax: "imax",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpMov: "mov", OpSetP: "isetp",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFFma: "ffma",
	OpFMin: "fmin", OpFMax: "fmax", OpFSetP: "fsetp",
	OpI2F: "i2f", OpF2I: "f2i",
	OpFRcp: "rcp", OpFSqrt: "sqrt", OpFRsqrt: "rsqrt",
	OpFExp: "ex2", OpFLog: "lg2", OpFSin: "sin", OpFCos: "cos",
	OpS2R: "s2r", OpLdParam: "ldc",
	OpLdGlobal: "ld.global", OpStGlobal: "st.global", OpAtomGlobal: "atom.global",
	OpLdShared: "ld.shared", OpStShared: "st.shared",
	OpBra: "bra", OpBar: "bar.sync", OpExit: "exit",
	OpAssert: "assert", OpTrap: "trap", OpMalloc: "malloc",
}

// String disassembles the instruction.
func (in Instruction) String() string {
	s := ""
	if in.Pred != RegNone {
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		s = fmt.Sprintf("@%s%v ", neg, in.Pred)
	}
	s += in.Op.Mnemonic()
	switch in.Op {
	case OpSetP, OpFSetP:
		s += "." + in.Cmp.String()
	case OpAtomGlobal:
		s += "." + in.Atom.String()
	default:
		// Every other opcode prints without a modifier suffix.
	}
	switch in.Op {
	case OpNop, OpBar, OpExit:
		return s
	case OpBra:
		return fmt.Sprintf("%s -> %d (reconv %d)", s, in.Target, in.Reconv)
	case OpLdGlobal, OpLdShared:
		return fmt.Sprintf("%s %v, [%v+%d].%d", s, in.Dst, in.SrcA, in.Imm, in.Size)
	case OpStGlobal, OpStShared:
		return fmt.Sprintf("%s [%v+%d].%d, %v", s, in.SrcA, in.Imm, in.Size, in.SrcB)
	case OpS2R:
		return fmt.Sprintf("%s %v, %v", s, in.Dst, SReg(in.Imm))
	case OpLdParam:
		return fmt.Sprintf("%s %v, param[%d]", s, in.Dst, in.Imm)
	default:
		return fmt.Sprintf("%s %v, %v, %v, %v, imm=%d", s, in.Dst, in.SrcA, in.SrcB, in.SrcC, in.Imm)
	}
}
