// Checkpoint/restore for the full simulator. The clock queue stores
// scheduled closures, which cannot be serialized; a checkpoint instead
// captures the cycle plus every component's architectural state (and a
// structural summary of its closure-bound state), and restore replays
// a fresh simulator to the checkpoint cycle — deterministic execution
// makes the replay bit-identical — then verifies each component's
// re-serialized state byte-for-byte against the checkpoint before
// installing the installable parts. Every restore therefore doubles as
// a determinism audit: any nondeterminism between the writing run and
// the replay surfaces as a DivergenceError naming the component.
package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gpues/internal/ckpt"
	"gpues/internal/config"
)

// namedSaver pairs a checkpoint section name with its component.
type namedSaver struct {
	name  string
	saver ckpt.Saver
}

// saverList enumerates every stateful component in a fixed order. The
// names are the checkpoint section names; they are stable across runs
// of the same configuration, so two runs' checkpoints can be compared
// section by section.
func (s *Simulator) saverList() []namedSaver {
	list := []namedSaver{
		{"clock", s.q},
		{"host.dispatcher", s.disp},
		{"host.faultservice", s.cpu},
		{"host.excep", s.board},
		{"core.faultunit", s.funit},
		{"vm", s.as},
		{"emu.memory", s.spec.Memory},
		{"dram", s.mem},
		{"link", s.link},
		{"cache.l2", s.l2},
		{"tlb.l2", s.l2tlb},
		{"tlb.fillunit", s.fu},
		{"obs.metrics", s.reg},
	}
	if s.local != nil {
		list = append(list, namedSaver{"core.localhandler", s.local})
	}
	if s.chaos != nil {
		list = append(list, namedSaver{"chaos", s.chaos})
	}
	for i, m := range s.sms {
		list = append(list, namedSaver{fmt.Sprintf("sm.%d", i), m})
		list = append(list, namedSaver{fmt.Sprintf("cache.l1.%d", i), s.l1s[i]})
		list = append(list, namedSaver{fmt.Sprintf("tlb.l1.%d", i), s.l1tlbs[i]})
	}
	list = append(list, namedSaver{"sim.core", (*simCore)(s)})
	return list
}

// simCore is the simulator's own loop state as a checkpoint component:
// the runnable-SM bitset. The remaining loop fields (watchdog, sweep
// schedule, checkpoint schedule) intentionally stay out — they mutate
// after the loop-top point a checkpoint captures, and they influence
// only abort conditions, never simulated state.
type simCore Simulator

// SaveState serializes the active-SM bitset.
func (c *simCore) SaveState(w *ckpt.Writer) {
	w.Int(len(c.active))
	for _, word := range c.active {
		w.U64(word)
	}
}

// RestoreState reads the SaveState stream back and installs it.
func (c *simCore) RestoreState(r *ckpt.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(c.active) {
		return fmt.Errorf("sim: %d active-set words, checkpoint has %d", len(c.active), n)
	}
	for i := range c.active {
		c.active[i] = r.U64()
	}
	return r.Err()
}

// FingerprintConfig returns the checkpoint config fingerprint of cfg —
// the value stamped into every checkpoint and used as half of the
// result-cache key. The worker count and sampling period are excluded:
// neither ever changes simulation results, so runs differing only in
// those fields are interchangeable.
func FingerprintConfig(cfg config.Config) uint64 {
	cfg.Workers = 0
	cfg.SampleEvery = 0
	return ckpt.Digest([]byte(fmt.Sprintf("%#v", cfg)))
}

// FingerprintSpec hashes a launch spec: kernel identity and shape, the
// registered regions, and the current functional memory image. New
// calls it before any simulation runs, so the memory digest covers the
// initial image; callers fingerprinting for the result cache must do
// the same (runs mutate the functional memory).
func FingerprintSpec(spec LaunchSpec) uint64 {
	h := ckpt.NewHasher()
	h.Bytes([]byte(spec.Launch.Kernel.Name))
	h.U64(uint64(len(spec.Launch.Kernel.Code)))
	h.U64(uint64(spec.Launch.Blocks()))
	h.U64(uint64(spec.Launch.ThreadsPerBlock()))
	for _, r := range spec.Regions {
		h.Bytes([]byte(r.Name))
		h.U64(r.Base)
		h.U64(r.Size)
		h.U64(uint64(r.Kind))
	}
	w := ckpt.NewWriter()
	spec.Memory.SaveState(w)
	h.Bytes(w.Data())
	return h.Sum()
}

// Fingerprints returns the simulator's config and spec fingerprints —
// the pair a checkpoint must match to restore here, and the key the
// simulation service's result cache is built on.
func (s *Simulator) Fingerprints() (cfgFP, specFP uint64) { return s.cfgFP, s.specFP }

// Capture serializes the complete current state into a checkpoint.
// Valid only at a cycle boundary (the main loop's top); callers inside
// the loop are maybeWriteCheckpoint and stallError, callers outside
// must go through StepTo.
func (s *Simulator) Capture() *ckpt.Checkpoint {
	ck := &ckpt.Checkpoint{
		Version:  ckpt.Version,
		Cycle:    s.q.Now(),
		ConfigFP: s.cfgFP,
		SpecFP:   s.specFP,
	}
	w := ckpt.NewWriter()
	for _, ns := range s.saverList() {
		w.Reset()
		ns.saver.SaveState(w)
		w.U64(s.nonces[ns.name])
		data := make([]byte, len(w.Data()))
		copy(data, w.Data())
		ck.Sections = append(ck.Sections, ckpt.Section{Name: ns.name, Data: data})
	}
	return ck
}

// ComponentDigests returns the per-component state digests at the
// current cycle boundary — the bisection probe primitive.
func (s *Simulator) ComponentDigests() []ckpt.SectionDigest {
	return s.Capture().Digests()
}

// WriteCheckpoint captures the current state and writes it into dir
// (created if missing) under the canonical cycle-stamped name. The
// write is atomic, so a kill mid-write never leaves a partial file.
func (s *Simulator) WriteCheckpoint(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	ck := s.Capture()
	path := filepath.Join(dir, ckpt.FileName(ck.Cycle))
	if err := ck.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// maybeWriteCheckpoint writes the periodic checkpoint when one is due.
// Disabled while replaying: the replay must not overwrite the files it
// is restoring from.
func (s *Simulator) maybeWriteCheckpoint(now int64) error {
	if s.replaying || s.CheckpointEvery <= 0 || s.CheckpointDir == "" || now < s.nextCkpt {
		return nil
	}
	for s.nextCkpt <= now {
		s.nextCkpt += s.CheckpointEvery
	}
	_, err := s.WriteCheckpoint(s.CheckpointDir)
	return err
}

// ResolveCheckpoint turns a user-supplied resume argument into a
// checkpoint file path: a directory resolves to its latest valid
// checkpoint, anything else is taken as the file itself.
func ResolveCheckpoint(pathOrDir string) (string, error) {
	info, err := os.Stat(pathOrDir)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return pathOrDir, nil
	}
	path, _, err := ckpt.Latest(pathOrDir)
	if err != nil {
		return "", fmt.Errorf("sim: no usable checkpoint in %s: %w", pathOrDir, err)
	}
	return path, nil
}

// DivergenceError reports that a component's replayed state does not
// match its checkpoint section — either real nondeterminism between
// the checkpointing run and the restoring one, or a configuration
// drift the fingerprints could not catch.
type DivergenceError struct {
	Component string
	Cycle     int64
}

// Error renders the divergence.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("sim: state of %q diverged from checkpoint at cycle %d", e.Component, e.Cycle)
}

// RestoreFile loads the checkpoint at path and restores it; see
// Restore.
func (s *Simulator) RestoreFile(path string) error {
	ck, err := ckpt.ReadFile(path)
	if err != nil {
		return err
	}
	return s.Restore(ck)
}

// Restore brings a freshly built simulator to the checkpoint's state:
// replay to the checkpoint cycle, verify every component's
// re-serialized state byte-for-byte against its section, then install
// the installable state. The simulator must be configured exactly as
// the checkpointing run was (same config, spec, chaos plan, tracer)
// and must not have run yet; call Run afterwards to continue to
// completion.
func (s *Simulator) Restore(ck *ckpt.Checkpoint) error {
	if s.started {
		return fmt.Errorf("sim: restore must precede Run")
	}
	if ck.ConfigFP != s.cfgFP {
		return fmt.Errorf("sim: checkpoint config fingerprint %#016x does not match simulator %#016x",
			ck.ConfigFP, s.cfgFP)
	}
	if ck.SpecFP != s.specFP {
		return fmt.Errorf("sim: checkpoint spec fingerprint %#016x does not match simulator %#016x",
			ck.SpecFP, s.specFP)
	}
	if err := s.Start(); err != nil {
		return err
	}
	s.replaying = true
	reached, err := s.StepTo(ck.Cycle)
	s.replaying = false
	if err != nil {
		return err
	}
	if !reached {
		return fmt.Errorf("sim: replay finished at cycle %d before reaching checkpoint cycle %d",
			s.q.Now(), ck.Cycle)
	}
	if got := s.q.Now(); got != ck.Cycle {
		return fmt.Errorf("sim: replay stopped at cycle %d, checkpoint is at %d", got, ck.Cycle)
	}

	savers := s.saverList()
	fresh := s.Capture()
	if len(fresh.Sections) != len(ck.Sections) {
		return fmt.Errorf("sim: simulator has %d components, checkpoint has %d (chaos/local wiring must match)",
			len(fresh.Sections), len(ck.Sections))
	}
	for _, sec := range fresh.Sections {
		want := ck.Section(sec.Name)
		if want == nil {
			return fmt.Errorf("sim: checkpoint has no section %q", sec.Name)
		}
		if !bytes.Equal(sec.Data, want.Data) {
			return &DivergenceError{Component: sec.Name, Cycle: ck.Cycle}
		}
	}

	for _, ns := range savers {
		sec := ck.Section(ns.name)
		r := ckpt.NewReader(sec.Data)
		if err := ns.saver.RestoreState(r); err != nil {
			return fmt.Errorf("sim: restore %s: %w", ns.name, err)
		}
		s.nonces[ns.name] = r.U64()
		if err := r.Err(); err != nil {
			return fmt.Errorf("sim: restore %s: %w", ns.name, err)
		}
		if rem := r.Remaining(); rem != 0 {
			return fmt.Errorf("sim: restore %s: %d trailing bytes", ns.name, rem)
		}
	}

	if s.CheckpointEvery > 0 {
		s.nextCkpt = (ck.Cycle/s.CheckpointEvery + 1) * s.CheckpointEvery
	}
	return nil
}

// InjectDivergence registers an artificial single-component state
// perturbation at the given cycle: the component's divergence nonce is
// bumped when the main loop reaches that cycle. The nonce rides in the
// component's checkpoint section, so digests (and bisection) see a
// divergence from exactly that cycle on, while timing and results are
// untouched — the mechanism that lets bisection be tested end to end.
func (s *Simulator) InjectDivergence(cycle int64, component string) error {
	if cycle < 0 {
		return fmt.Errorf("sim: divergence cycle %d out of range", cycle)
	}
	for _, ns := range s.saverList() {
		if ns.name == component {
			if s.perturbs == nil {
				s.perturbs = make(map[int64][]string)
			}
			s.perturbs[cycle] = append(s.perturbs[cycle], component)
			return nil
		}
	}
	return fmt.Errorf("sim: unknown component %q (see docs/checkpointing.md for section names)", component)
}

// applyPerturbs applies (once) every registered divergence at or below
// the current cycle. Applied entries are deleted, so re-entering the
// loop top at the same cycle cannot double-apply.
func (s *Simulator) applyPerturbs(now int64) {
	if len(s.perturbs) == 0 {
		return
	}
	due := make([]int64, 0, len(s.perturbs))
	for c := range s.perturbs {
		if c <= now {
			due = append(due, c)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, c := range due {
		for _, comp := range s.perturbs[c] {
			s.nonces[comp]++
		}
		delete(s.perturbs, c)
	}
}
