package obs

import (
	"fmt"

	"gpues/internal/ckpt"
)

// SaveState serializes the registry: counter values and histogram
// contents (installable on restore), plus gauge readings for the
// digest — gauges read component state that restores separately, so
// they are cross-checked rather than installed.
func (r *Registry) SaveState(w *ckpt.Writer) {
	w.Int(len(r.counters))
	for _, n := range sortedNames(r.counters) {
		w.String(n)
		w.I64(r.counters[n].v)
	}
	w.Int(len(r.gauges))
	for _, n := range sortedNames(r.gauges) {
		w.String(n)
		w.I64(r.gauges[n]())
	}
	w.Int(len(r.hists))
	for _, n := range sortedNames(r.hists) {
		h := r.hists[n]
		w.String(n)
		w.I64(h.count)
		w.I64(h.sum)
		w.I64(h.min)
		w.I64(h.max)
		for _, b := range h.buckets {
			w.I64(b)
		}
	}
}

// RestoreState reads the SaveState stream back, installing counters
// and histograms and discarding the recorded gauge readings (live
// gauges re-read the restored component state).
func (r *Registry) RestoreState(rd *ckpt.Reader) error {
	nc := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	for i := 0; i < nc; i++ {
		name := rd.String()
		v := rd.I64()
		if _, ok := r.counters[name]; !ok {
			return fmt.Errorf("obs: checkpoint has unknown counter %q", name)
		}
		r.counters[name].v = v
	}
	ng := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	for i := 0; i < ng; i++ {
		_ = rd.String()
		rd.I64()
	}
	nh := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	for i := 0; i < nh; i++ {
		name := rd.String()
		h, ok := r.hists[name]
		if !ok {
			return fmt.Errorf("obs: checkpoint has unknown histogram %q", name)
		}
		h.count = rd.I64()
		h.sum = rd.I64()
		h.min = rd.I64()
		h.max = rd.I64()
		for j := range h.buckets {
			h.buckets[j] = rd.I64()
		}
	}
	return rd.Err()
}
