package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gpues
cpu: AMD EPYC 7B13
BenchmarkFig10/baseline         	       1	 579904096 ns/op	    117137 sim-cycles
BenchmarkFig10/replay-queue     	       1	 541994459 ns/op	    129906 sim-cycles	    100209 fault-lat-mean	    239999 fault-lat-p99	  66348088 stall-fault-wait
BenchmarkTable2                 	       1	     17834 ns/op
BenchmarkEmulator               	       1	  80718509 ns/op	   2626064 warp-insts/s
--- some test log noise
PASS
ok  	gpues	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Package != "gpues" {
		t.Fatalf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.Package)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFig10/baseline" || b.N != 1 {
		t.Fatalf("first = %+v", b)
	}
	if b.Metrics["ns/op"] != 579904096 || b.Metrics["sim-cycles"] != 117137 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	rq := rep.Benchmarks[1]
	if rq.Metrics["fault-lat-p99"] != 239999 || rq.Metrics["stall-fault-wait"] != 66348088 {
		t.Fatalf("fault metrics = %v", rq.Metrics)
	}
	if rep.Benchmarks[2].Metrics["sim-cycles"] != 0 {
		t.Fatalf("Table2 should have no sim-cycles: %v", rep.Benchmarks[2].Metrics)
	}
	if rep.Benchmarks[3].Metrics["warp-insts/s"] != 2626064 {
		t.Fatalf("emulator metrics = %v", rep.Benchmarks[3].Metrics)
	}
}

// TestDeriveSpeedups covers the parallel-benchmark post-pass: every
// .../workers-N subcase gains a speedup-vs-workers-1 metric computed
// from its workers-1 sibling's wall time, and benchmarks outside the
// naming scheme (or shapes missing their workers-1 sibling) are left
// untouched.
func TestDeriveSpeedups(t *testing.T) {
	const input = `BenchmarkParallel/fig12-paging-switching/workers-1 1 8000 ns/op 129906 sim-cycles 1 workers
BenchmarkParallel/fig12-paging-switching/workers-2 1 4000 ns/op 129906 sim-cycles 2 workers
BenchmarkParallel/fig12-paging-switching/workers-8 1 2000 ns/op 129906 sim-cycles 8 workers
BenchmarkParallel/orphan/workers-4 1 1000 ns/op 7 sim-cycles 4 workers
BenchmarkFig10/baseline 1 579904096 ns/op 117137 sim-cycles
`
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	deriveSpeedups(rep)
	got := map[string]float64{}
	for _, b := range rep.Benchmarks {
		if v, ok := b.Metrics["speedup-vs-workers-1"]; ok {
			got[b.Name] = v
		}
	}
	want := map[string]float64{
		"BenchmarkParallel/fig12-paging-switching/workers-1": 1,
		"BenchmarkParallel/fig12-paging-switching/workers-2": 2,
		"BenchmarkParallel/fig12-paging-switching/workers-8": 4,
	}
	if len(got) != len(want) {
		t.Fatalf("speedups on %v, want exactly %v", got, want)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s speedup = %g, want %g", name, got[name], v)
		}
	}
}

// TestParseSeriesMetrics covers the telemetry-derived units the
// fault-driven benchmarks report (steady-ipc, peak-stall-share):
// fractional values must come through the generic value/unit parsing
// without disturbing the metrics that were already there.
func TestParseSeriesMetrics(t *testing.T) {
	const input = "BenchmarkFig12/switching 1 541994459 ns/op 129906 sim-cycles " +
		"0.652 steady-ipc 0.874 peak-stall-share 100209 fault-lat-mean\n"
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1", len(rep.Benchmarks))
	}
	m := rep.Benchmarks[0].Metrics
	if m["steady-ipc"] != 0.652 || m["peak-stall-share"] != 0.874 {
		t.Fatalf("series metrics = %v", m)
	}
	if m["ns/op"] != 541994459 || m["sim-cycles"] != 129906 || m["fault-lat-mean"] != 100209 {
		t.Fatalf("existing metrics disturbed: %v", m)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBad x 1 ns/op\nBenchmarkShort 1\nBenchmarkNoMetrics 1 foo bar\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("malformed lines parsed: %+v", rep.Benchmarks)
	}
}

// TestParseToleratesMissingMetrics covers lines where an optional
// metric (fault-lat-* under a scheme that took no faults) is absent or
// left its unit without a value: the metrics that did parse must
// survive instead of the whole line being dropped.
func TestParseToleratesMissingMetrics(t *testing.T) {
	const input = "BenchmarkFig10/baseline 1 579904096 ns/op 117137 sim-cycles fault-lat-mean 239999 fault-lat-p99\n" +
		"BenchmarkFig10/nofault 1 1000 ns/op NaN fault-lat-mean +Inf fault-lat-p99 42 sim-cycles\n"
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Metrics["ns/op"] != 579904096 || b.Metrics["sim-cycles"] != 117137 {
		t.Fatalf("parsed metrics lost: %v", b.Metrics)
	}
	if b.Metrics["fault-lat-p99"] != 239999 {
		t.Fatalf("resync after valueless unit failed: %v", b.Metrics)
	}
	if _, ok := b.Metrics["fault-lat-mean"]; ok {
		t.Fatalf("valueless unit should be absent: %v", b.Metrics)
	}
	nf := rep.Benchmarks[1]
	if _, ok := nf.Metrics["fault-lat-mean"]; ok {
		t.Fatalf("NaN metric kept: %v", nf.Metrics)
	}
	if _, ok := nf.Metrics["fault-lat-p99"]; ok {
		t.Fatalf("Inf metric kept: %v", nf.Metrics)
	}
	if nf.Metrics["ns/op"] != 1000 || nf.Metrics["sim-cycles"] != 42 {
		t.Fatalf("finite metrics lost: %v", nf.Metrics)
	}
}
