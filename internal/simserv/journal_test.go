package simserv

import (
	"os"
	"path/filepath"
	"testing"

	"gpues/internal/simserv/queue"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jr, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*queue.Job{
		{ID: "a", Seq: 2, State: queue.Queued, Spec: []byte(`{"benchmark":"sgemm"}`)},
		{ID: "b", Seq: 1, State: queue.Done, Result: &queue.Result{Cycles: 42}},
	}
	for _, j := range jobs {
		if err := jr.Record(j); err != nil {
			t.Fatal(err)
		}
	}
	got, skipped, err := jr.Load()
	if err != nil || len(skipped) != 0 {
		t.Fatalf("load: %v skipped %v", err, skipped)
	}
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		t.Fatalf("loaded (Seq order) = %+v", got)
	}
	if got[0].Result == nil || got[0].Result.Cycles != 42 {
		t.Fatalf("result lost: %+v", got[0])
	}
}

func TestJournalSkipsTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	jr, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Record(&queue.Job{ID: "good", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// A .tmp orphan (kill mid-write) and a corrupt record must both be
	// skipped without failing recovery.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "torn.json.tmp"), []byte(`{"id":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "bad.json"), []byte(`{"id":`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A record whose ID does not match its filename is corrupt too.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "mismatch.json"), []byte(`{"id":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := jr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "good" {
		t.Fatalf("loaded = %+v", got)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want bad.json and mismatch.json", skipped)
	}
}

func TestOpenJournalValidation(t *testing.T) {
	if _, err := OpenJournal(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
