package emu

import (
	"testing"

	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// buildVecAdd builds out[i] = a[i] + b[i] over float64 with one thread
// per element.
func buildVecAdd(aAddr, bAddr, outAddr uint64) *kernel.Kernel {
	b := kernel.NewBuilder("vecadd")
	pa := b.AddParam(aAddr)
	pb := b.AddParam(bAddr)
	po := b.AddParam(outAddr)

	tid := b.Reg()
	ctaid := b.Reg()
	ntid := b.Reg()
	gid := b.Reg()
	off := b.Reg()
	base := b.Reg()
	va := b.Reg()
	vb := b.Reg()

	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid) // gid = ctaid*ntid + tid
	b.Shl(off, gid, 3)            // byte offset (8B elements)
	b.LoadParam(base, pa)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(va, base, 0, 8)
	b.LoadParam(base, pb)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(vb, base, 0, 8)
	b.FAdd(va, va, vb)
	b.LoadParam(base, po)
	b.IAdd(base, base, off, 0)
	b.StGlobal(base, 0, va, 8)
	b.Exit()
	return b.MustBuild()
}

func TestVecAddFunctional(t *testing.T) {
	const n = 256
	aAddr, bAddr, oAddr := uint64(0x10000), uint64(0x20000), uint64(0x30000)
	mem := NewMemory()
	for i := 0; i < n; i++ {
		mem.WriteF64(aAddr+uint64(i*8), float64(i))
		mem.WriteF64(bAddr+uint64(i*8), float64(2*i))
	}
	k := buildVecAdd(aAddr, bAddr, oAddr)
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 4}, Block: kernel.Dim3{X: 64}}
	e, err := New(l, mem, 128)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for blk := 0; blk < l.Blocks(); blk++ {
		bt, err := e.EmulateBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		total += bt.DynInsts
		if bt.GlobalAccesses != 2*2+1*2 {
			// 2 warps x (2 loads + 1 store) = 6 global accesses.
			t.Errorf("block %d global accesses = %d, want 6", blk, bt.GlobalAccesses)
		}
	}
	for i := 0; i < n; i++ {
		want := float64(i) + float64(2*i)
		if got := mem.ReadF64(oAddr + uint64(i*8)); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
	if total == 0 {
		t.Error("no dynamic instructions recorded")
	}
}

func TestCoalescingUnitStride(t *testing.T) {
	// 32 lanes x 8 B unit-stride = 256 B = exactly 2 lines of 128 B.
	mem := NewMemory()
	k := buildVecAdd(0x10000, 0x20000, 0x30000)
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ti := range bt.Warps[0].Insts {
		if ti.Static.IsGlobalMem() && len(ti.Lines) != 2 {
			t.Errorf("unit-stride 8B access coalesced to %d requests, want 2: %v", len(ti.Lines), ti.String())
		}
	}
	if bt.MemRequests != 6 {
		t.Errorf("block mem requests = %d, want 6 (3 accesses x 2 lines)", bt.MemRequests)
	}
}

func TestCoalesceScattered(t *testing.T) {
	var addrs [32]uint64
	for lane := 0; lane < 32; lane++ {
		addrs[lane] = uint64(lane) * 4096 // one page apart: no sharing
	}
	lines := coalesce(nil, &addrs, ^uint32(0), 4, 128)
	if len(lines) != 32 {
		t.Errorf("scattered access = %d requests, want 32", len(lines))
	}
	// All lanes in the same line collapse to one request.
	for lane := range addrs {
		addrs[lane] = 64
	}
	lines = coalesce(nil, &addrs, ^uint32(0), 4, 128)
	if len(lines) != 1 || lines[0] != 0 {
		t.Errorf("same-line access = %v, want [0]", lines)
	}
}

func TestCoalesceStraddle(t *testing.T) {
	var addrs [32]uint64
	addrs[0] = 124 // 8-byte access crossing the 128 B boundary
	lines := coalesce(nil, &addrs, 1, 8, 128)
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 128 {
		t.Errorf("straddling access = %v, want [0 128]", lines)
	}
}

func TestDivergenceReconvergence(t *testing.T) {
	// Each lane: if (lane < 16) out[lane] = 1 else out[lane] = 2;
	// then out2[lane] = 3 (post-reconvergence, full mask).
	out, out2 := uint64(0x10000), uint64(0x20000)
	b := kernel.NewBuilder("diverge")
	po := b.AddParam(out)
	po2 := b.AddParam(out2)
	lane := b.Reg()
	p := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	thenL := b.NewLabel()
	recon := b.NewLabel()

	b.S2R(lane, isa.SRLaneID)
	b.SetP(isa.CmpLT, p, lane, isa.RZ, 16)
	b.LoadParam(addr, po)
	b.Shl(v, lane, 3)
	b.IAdd(addr, addr, v, 0)
	b.BraIf(p, false, thenL, recon)
	b.MovI(v, 2) // else
	b.StGlobal(addr, 0, v, 8)
	b.Bra(recon)
	b.Bind(thenL)
	b.MovI(v, 1) // then
	b.StGlobal(addr, 0, v, 8)
	b.Bind(recon)
	b.LoadParam(addr, po2)
	b.Shl(v, lane, 3)
	b.IAdd(addr, addr, v, 0)
	b.MovI(v, 3)
	b.StGlobal(addr, 0, v, 8)
	b.Exit()

	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 32; lane++ {
		want := uint64(2)
		if lane < 16 {
			want = 1
		}
		if got := mem.ReadU64(out + uint64(lane*8)); got != want {
			t.Errorf("out[%d] = %d, want %d", lane, got, want)
		}
		if got := mem.ReadU64(out2 + uint64(lane*8)); got != 3 {
			t.Errorf("out2[%d] = %d, want 3 (post-reconvergence)", lane, got)
		}
	}
	// The post-reconvergence store must execute once with a full mask.
	fullMaskStores := 0
	for _, ti := range bt.Warps[0].Insts {
		if ti.Static.Op == isa.OpStGlobal && ti.Mask == ^uint32(0) {
			fullMaskStores++
		}
	}
	if fullMaskStores != 1 {
		t.Errorf("full-mask stores = %d, want 1 (reconverged store)", fullMaskStores)
	}
}

func TestUniformLoop(t *testing.T) {
	// sum = 0; for i in 0..9: sum += i; out[tid] = sum
	b := kernel.NewBuilder("loop")
	po := b.AddParam(0x40000)
	tid := b.Reg()
	sum := b.Reg()
	i := b.Reg()
	p := b.Reg()
	addr := b.Reg()

	b.S2R(tid, isa.SRTidX)
	b.MovI(sum, 0)
	b.MovI(i, 0)
	loop := b.Here()
	b.IAdd(sum, sum, i, 0)
	b.IAdd(i, i, isa.RZ, 1)
	b.SetP(isa.CmpLT, p, i, isa.RZ, 10)
	b.BraIfUniform(p, false, loop)
	b.LoadParam(addr, po)
	b.Shl(i, tid, 3)
	b.IAdd(addr, addr, i, 0)
	b.StGlobal(addr, 0, sum, 8)
	b.Exit()

	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	if _, err := e.EmulateBlock(0); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 32; lane++ {
		if got := mem.ReadU64(0x40000 + uint64(lane*8)); got != 45 {
			t.Fatalf("out[%d] = %d, want 45", lane, got)
		}
	}
}

func TestDivergentUniformAssertFails(t *testing.T) {
	b := kernel.NewBuilder("badloop")
	lane := b.Reg()
	p := b.Reg()
	l0 := b.NewLabel()
	b.S2R(lane, isa.SRLaneID)
	b.Bind(l0)
	b.SetP(isa.CmpLT, p, lane, isa.RZ, 5)
	b.BraIfUniform(p, false, l0) // diverges: only lanes < 5 take it
	b.Exit()
	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	if _, err := e.EmulateBlock(0); err == nil {
		t.Fatal("divergent uniform-asserted branch must error")
	}
}

func TestBarrierAndSharedMemory(t *testing.T) {
	// Block-wide reversal through shared memory:
	// shared[tid] = tid; barrier; out[tid] = shared[ntid-1-tid].
	const threads = 128
	b := kernel.NewBuilder("reverse").SetSharedMem(threads * 8)
	po := b.AddParam(0x50000)
	tid := b.Reg()
	ntid := b.Reg()
	off := b.Reg()
	roff := b.Reg()
	v := b.Reg()
	addr := b.Reg()

	b.S2R(tid, isa.SRTidX)
	b.S2R(ntid, isa.SRNTidX)
	b.Shl(off, tid, 3)
	b.StShared(off, 0, tid, 8)
	b.Bar()
	b.ISub(roff, ntid, tid)
	b.IAdd(roff, roff, isa.RZ, -1)
	b.Shl(roff, roff, 3)
	b.LdShared(v, roff, 0, 8)
	b.LoadParam(addr, po)
	b.IAdd(addr, addr, off, 0)
	b.StGlobal(addr, 0, v, 8)
	b.Exit()

	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: threads}}
	e, _ := New(l, mem, 128)
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt.Warps) != threads/32 {
		t.Fatalf("warps = %d, want %d", len(bt.Warps), threads/32)
	}
	for i := 0; i < threads; i++ {
		want := uint64(threads - 1 - i)
		if got := mem.ReadU64(0x50000 + uint64(i*8)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestAtomicsAccumulate(t *testing.T) {
	// Every thread atomically adds 1 to a counter; also checks the old
	// values are all distinct (true serialization).
	b := kernel.NewBuilder("atom")
	pc := b.AddParam(0x60000)
	pold := b.AddParam(0x70000)
	addr := b.Reg()
	one := b.Reg()
	old := b.Reg()
	tid := b.Reg()
	oaddr := b.Reg()

	ctaid := b.Reg()
	ntid := b.Reg()
	b.LoadParam(addr, pc)
	b.MovI(one, 1)
	b.AtomGlobal(isa.AtomAdd, old, addr, one, isa.RegNone, 8)
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(tid, ctaid, ntid, tid)
	b.LoadParam(oaddr, pold)
	b.Shl(tid, tid, 3)
	b.IAdd(oaddr, oaddr, tid, 0)
	b.StGlobal(oaddr, 0, old, 8)
	b.Exit()

	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 2}, Block: kernel.Dim3{X: 64}}
	e, _ := New(l, mem, 128)
	for blk := 0; blk < 2; blk++ {
		if _, err := e.EmulateBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if got := mem.ReadU64(0x60000); got != 128 {
		t.Errorf("counter = %d, want 128", got)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 128; i++ {
		v := mem.ReadU64(0x70000 + uint64(i*8))
		if seen[v] {
			t.Fatalf("duplicate atomic ticket %d", v)
		}
		seen[v] = true
	}
}

func TestPartialWarp(t *testing.T) {
	// 40 threads = 1 full warp + 8 lanes.
	b := kernel.NewBuilder("partial")
	po := b.AddParam(0x80000)
	tid := b.Reg()
	addr := b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.LoadParam(addr, po)
	b.Shl(tid, tid, 3)
	b.IAdd(addr, addr, tid, 0)
	b.MovI(tid, 7)
	b.StGlobal(addr, 0, tid, 8)
	b.Exit()

	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 40}}
	e, _ := New(l, mem, 128)
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt.Warps) != 2 {
		t.Fatalf("warps = %d, want 2", len(bt.Warps))
	}
	// The partial warp's stores carry only 8 active lanes.
	for _, ti := range bt.Warps[1].Insts {
		if ti.Static.Op == isa.OpStGlobal && ti.Mask != 0xff {
			t.Errorf("partial warp store mask = %#x, want 0xff", ti.Mask)
		}
	}
	for i := 0; i < 40; i++ {
		if got := mem.ReadU64(0x80000 + uint64(i*8)); got != 7 {
			t.Fatalf("out[%d] = %d, want 7", i, got)
		}
	}
	if got := mem.ReadU64(0x80000 + 40*8); got != 0 {
		t.Errorf("store beyond thread count: %d", got)
	}
}

func TestPredicatedExit(t *testing.T) {
	// Lanes >= 8 exit early; remaining lanes store.
	b := kernel.NewBuilder("pexit")
	po := b.AddParam(0x90000)
	lane := b.Reg()
	p := b.Reg()
	addr := b.Reg()
	one := b.Reg()
	b.S2R(lane, isa.SRLaneID)
	b.SetP(isa.CmpGE, p, lane, isa.RZ, 8)
	// Lanes >= 8 branch directly to the exit; lanes < 8 store first.
	done := b.NewLabel()
	recon := b.NewLabel()
	b.BraIf(p, false, done, recon)
	b.LoadParam(addr, po)
	b.Shl(one, lane, 3)
	b.IAdd(addr, addr, one, 0)
	b.MovI(one, 1)
	b.StGlobal(addr, 0, one, 8)
	b.Bind(done)
	b.Bind(recon)
	b.Exit()

	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	if _, err := e.EmulateBlock(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint64(0)
		if i < 8 {
			want = 1
		}
		if got := mem.ReadU64(0x90000 + uint64(i*8)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestRunawayLoopDetected(t *testing.T) {
	b := kernel.NewBuilder("forever")
	l0 := b.Here()
	b.Nop()
	b.Bra(l0)
	b.Exit()
	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	e.MaxWarpInsts = 1000
	if _, err := e.EmulateBlock(0); err == nil {
		t.Fatal("infinite loop must be detected")
	}
}

func TestSharedMemoryBounds(t *testing.T) {
	b := kernel.NewBuilder("oob").SetSharedMem(64)
	off := b.Reg()
	b.MovI(off, 1000)
	b.StShared(off, 0, off, 8)
	b.Exit()
	mem := NewMemory()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	if _, err := e.EmulateBlock(0); err == nil {
		t.Fatal("out-of-bounds shared access must error")
	}
}

func TestEmulateBlockRange(t *testing.T) {
	b := kernel.NewBuilder("k")
	b.Exit()
	l := &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 2}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, NewMemory(), 128)
	if _, err := e.EmulateBlock(-1); err == nil {
		t.Error("negative block must error")
	}
	if _, err := e.EmulateBlock(2); err == nil {
		t.Error("out-of-range block must error")
	}
}

func TestTouchedPages(t *testing.T) {
	mem := NewMemory()
	k := buildVecAdd(0x10000, 0x20000, 0x30000)
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := New(l, mem, 128)
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	pages := bt.TouchedPages(4096)
	want := map[uint64]bool{0x10000: true, 0x20000: true, 0x30000: true}
	if len(pages) != 3 {
		t.Errorf("touched pages = %v, want %v", pages, want)
	}
	for p := range want {
		if !pages[p] {
			t.Errorf("page %#x not touched", p)
		}
	}
}
