package sim

import (
	"testing"

	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/vm"
)

// testSpec builds a vector-add launch: out[i] = a[i] + b[i], 8-byte
// floats, one thread per element. placement selects the region kind of
// the inputs; outKind that of the output.
func testSpec(t *testing.T, blocks, threads int, inKind, outKind vm.RegionKind) LaunchSpec {
	t.Helper()
	n := blocks * threads
	const (
		aAddr = uint64(0x1000000)
		bAddr = uint64(0x2000000)
		oAddr = uint64(0x3000000)
	)
	mem := emu.NewMemory()
	for i := 0; i < n; i++ {
		mem.WriteF64(aAddr+uint64(i*8), float64(i))
		mem.WriteF64(bAddr+uint64(i*8), float64(i)*2)
	}

	b := kernel.NewBuilder("vecadd")
	pa := b.AddParam(aAddr)
	pb := b.AddParam(bAddr)
	po := b.AddParam(oAddr)
	tid, ctaid, ntid := b.Reg(), b.Reg(), b.Reg()
	gid, off, base, va, vb := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid)
	b.Shl(off, gid, 3)
	b.LoadParam(base, pa)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(va, base, 0, 8)
	b.LoadParam(base, pb)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(vb, base, 0, 8)
	b.FAdd(va, va, vb)
	b.LoadParam(base, po)
	b.IAdd(base, base, off, 0)
	b.StGlobal(base, 0, va, 8)
	b.Exit()
	k := b.MustBuild()

	size := uint64(n * 8)
	if size < 4096 {
		size = 4096
	}
	return LaunchSpec{
		Launch: &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: threads}},
		Memory: mem,
		Regions: []vm.Region{
			{Name: "a", Base: aAddr, Size: size, Kind: inKind},
			{Name: "b", Base: bAddr, Size: size, Kind: inKind},
			{Name: "out", Base: oAddr, Size: size, Kind: outKind},
		},
	}
}

func TestFaultFreeRunCompletes(t *testing.T) {
	cfg := config.Default()
	spec := testSpec(t, 32, 128, vm.RegionGPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if r.Blocks != 32 {
		t.Errorf("blocks completed = %d, want 32", r.Blocks)
	}
	// 32 blocks x 4 warps x 16 instructions.
	want := int64(32 * 4 * 16)
	if r.Committed != want {
		t.Errorf("committed = %d, want %d", r.Committed, want)
	}
	if r.FaultUnit.Raised != 0 {
		t.Errorf("faults in a fault-free run: %+v", r.FaultUnit)
	}
	if r.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	// Output data correct (functional check through the full stack).
	for i := 0; i < 32*128; i++ {
		want := float64(i) * 3
		if got := spec.Memory.ReadF64(0x3000000 + uint64(i*8)); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSchemePerformanceOrdering(t *testing.T) {
	// Fault-free run: the baseline is the performance ceiling; wd-commit
	// the floor (Section 5.2).
	cycles := map[config.Scheme]int64{}
	for _, sch := range []config.Scheme{
		config.Baseline, config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	} {
		cfg := config.Default()
		cfg.Scheme = sch
		spec := testSpec(t, 32, 128, vm.RegionGPUInit, vm.RegionGPUInit)
		r, err := RunSpec(cfg, spec)
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		cycles[sch] = r.Cycles
	}
	t.Logf("cycles: %v", cycles)
	if cycles[config.Baseline] > cycles[config.WarpDisableCommit] {
		t.Errorf("baseline (%d cycles) slower than wd-commit (%d)",
			cycles[config.Baseline], cycles[config.WarpDisableCommit])
	}
	if cycles[config.WarpDisableLastCheck] > cycles[config.WarpDisableCommit] {
		t.Errorf("wd-lastcheck (%d) slower than wd-commit (%d)",
			cycles[config.WarpDisableLastCheck], cycles[config.WarpDisableCommit])
	}
	if cycles[config.ReplayQueue] > cycles[config.WarpDisableLastCheck] {
		t.Errorf("replay-queue (%d) slower than wd-lastcheck (%d)",
			cycles[config.ReplayQueue], cycles[config.WarpDisableLastCheck])
	}
}

func TestDemandPagingMigratesAndCompletes(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	spec := testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionGPUInit)
	s, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultUnit.Raised == 0 {
		t.Fatal("demand paging run raised no faults")
	}
	if r.CPUFaults.Migrations == 0 {
		t.Error("no migrations served")
	}
	if r.Blocks != 16 {
		t.Errorf("blocks = %d, want 16", r.Blocks)
	}
	// After the run, the input pages must be GPU-resident.
	as := s.AddressSpace()
	if as.Classify(0x1000000) != vm.FaultNone {
		t.Error("input page not migrated")
	}
	// Demand paging must be slower than the fault-free run.
	base, err := RunSpec(config.Default(), testSpec(t, 16, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= base.Cycles {
		t.Errorf("demand paging (%d cycles) not slower than resident run (%d)", r.Cycles, base.Cycles)
	}
}

func TestDemandPagingBaselineStallOnFault(t *testing.T) {
	// The stall-on-fault baseline must also complete demand paging runs
	// (requests replay from microarchitectural state).
	cfg := config.Default()
	cfg.Scheme = config.Baseline
	cfg.DemandPaging = true
	spec := testSpec(t, 8, 128, vm.RegionCPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultUnit.Raised == 0 {
		t.Fatal("no faults raised")
	}
	if r.Blocks != 8 {
		t.Errorf("blocks = %d, want 8", r.Blocks)
	}
	// No squashes in the baseline: instructions stall, never replay.
	for _, st := range r.SMs {
		if st.Squashed != 0 || st.Replays != 0 {
			t.Errorf("baseline squashed=%d replays=%d, want 0/0", st.Squashed, st.Replays)
		}
	}
}

func TestPreemptibleFaultSquashesAndReplays(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	spec := testSpec(t, 8, 128, vm.RegionCPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	var squashed, replays int64
	for _, st := range r.SMs {
		squashed += st.Squashed
		replays += st.Replays
	}
	if squashed == 0 {
		t.Error("preemptible scheme must squash faulting instructions")
	}
	if replays < squashed {
		t.Errorf("replays (%d) < squashes (%d): some instructions never replayed", replays, squashed)
	}
}

func TestLazyOutputLocalHandling(t *testing.T) {
	// Output pages unallocated; compare CPU handling vs GPU-local
	// handling (use case 2). Local handling must win under fault storms.
	run := func(local bool) *Result {
		cfg := config.Default()
		cfg.Scheme = config.ReplayQueue
		cfg.Local.Enabled = local
		spec := testSpec(t, 32, 128, vm.RegionGPUInit, vm.RegionLazy)
		r, err := RunSpec(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cpu := run(false)
	gpu := run(true)
	if cpu.FaultUnit.Raised == 0 || gpu.FaultUnit.Raised == 0 {
		t.Fatal("lazy output run raised no faults")
	}
	if gpu.Local.Handled == 0 {
		t.Error("local handler never ran")
	}
	if gpu.FaultUnit.RoutedLocal == 0 {
		t.Error("no faults routed to the local handler")
	}
	if cpu.FaultUnit.RoutedLocal != 0 {
		t.Error("faults routed locally with local handling disabled")
	}
	t.Logf("cpu=%d cycles, gpu-local=%d cycles", cpu.Cycles, gpu.Cycles)
}

func TestBlockSwitchingRunCompletes(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	cfg.Scheduler.Enabled = true
	spec := testSpec(t, 64, 128, vm.RegionCPUInit, vm.RegionGPUInit)
	r, err := RunSpec(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 64 {
		t.Errorf("blocks = %d, want 64", r.Blocks)
	}
	var out, in int64
	for _, st := range r.SMs {
		out += st.SwitchesOut
		in += st.SwitchesIn
	}
	t.Logf("switches out=%d in=%d", out, in)
	if out > 0 && in == 0 {
		t.Error("blocks switched out but never restored")
	}
}

func TestInvalidAccessAborts(t *testing.T) {
	cfg := config.Default()
	// Kernel writing far outside any registered region.
	b := kernel.NewBuilder("wild")
	addr := b.Reg()
	b.MovI(addr, 0x7f00000000)
	b.StGlobal(addr, 0, addr, 8)
	b.Exit()
	spec := LaunchSpec{
		Launch: &kernel.Launch{Kernel: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}},
		Memory: emu.NewMemory(),
	}
	if _, err := RunSpec(cfg, spec); err == nil {
		t.Fatal("invalid access must abort the simulation")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := config.Default()
	if _, err := New(cfg, LaunchSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	cfg.System.NumSMs = 0
	if _, err := New(cfg, testSpec(t, 1, 32, vm.RegionGPUInit, vm.RegionGPUInit)); err == nil {
		t.Error("invalid config accepted")
	}
}
