package experiments

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"gpues/internal/config"
	"gpues/internal/excep"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

// resilienceFlipRate is the per-lane-instruction flip probability of
// the campaign: low enough that single-digit flip counts dominate,
// high enough that every cell sees flips at scale 1.
const resilienceFlipRate = 1e-4

// defaultResilienceTrials is the seeded trial count per campaign cell
// when Options.Trials is unset.
const defaultResilienceTrials = 5

// resilienceWarpInsts caps functional emulation per warp during
// trials, so a flipped loop bound classifies as a hang quickly instead
// of burning the emulator's full default budget.
const resilienceWarpInsts = 1 << 18

// resilienceProtections is the swept partial-thread-protection ladder,
// as a percentage of each block's threads.
var resilienceProtections = []int{0, 50, 100}

// resilienceSeed derives the stable base seed of one campaign cell.
func resilienceSeed(bench, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(bench))
	h.Write([]byte{0})
	h.Write([]byte(label))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// protCell is one rung of the protection sweep: a row-label suffix and
// the protected-thread count as a function of the block size.
type protCell struct {
	label   string
	threads func(tpb int) int
}

func (o Options) protCells() []protCell {
	if o.ProtectPin {
		n := o.ProtectThreads
		return []protCell{{fmt.Sprintf("t%d", n), func(int) int { return n }}}
	}
	cells := make([]protCell, 0, len(resilienceProtections))
	for _, pct := range resilienceProtections {
		pct := pct
		cells = append(cells, protCell{fmt.Sprintf("p%d", pct),
			func(tpb int) int { return tpb * pct / 100 }})
	}
	return cells
}

// Resilience runs the bit-flip resilience campaign: every benchmark ×
// protection-level cell runs a fixed count of seeded trials, each
// classified by the exact functional oracle into masked / sdc /
// exception / crash / hang. Rows are bench/pN (N = percent of each
// block's threads shielded from flips; bench/tN for a pinned absolute
// count), columns are outcome classes, values are trial counts —
// deterministic for a given seed ladder, so CI can compare them
// exactly.
func Resilience(opt Options) (*Result, error) {
	opt = opt.normalize()
	benches := opt.parboil()
	trials := opt.Trials
	if trials <= 0 {
		trials = defaultResilienceTrials
	}
	rate := resilienceFlipRate
	if opt.FlipRate > 0 {
		rate = opt.FlipRate
	}
	prots := opt.protCells()

	type cell struct {
		row    string
		counts []float64
		err    error
	}
	sem := make(chan struct{}, opt.Parallelism)
	results := make(chan cell, len(benches)*len(prots))
	var wg sync.WaitGroup
	var doneTrials atomic.Int64
	// Campaign progress counts individual trials.
	totalTrials := len(benches) * len(prots) * trials
	for _, bench := range benches {
		for _, prot := range prots {
			bench, prot := bench, prot
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				row := fmt.Sprintf("%s/%s", bench, prot.label)
				counts := make([]float64, excep.NumOutcomes)
				base := opt.FlipSeed
				if base == 0 {
					base = resilienceSeed(bench, prot.label)
				}
				for trial := 0; trial < trials; trial++ {
					spec, err := workloads.Build(bench,
						workloads.Params{Scale: opt.Scale, Placement: workloads.Resident()})
					if err != nil {
						results <- cell{row, nil, err}
						return
					}
					cfg := config.Default()
					cfg.Excep.Mode = opt.ExcepMode
					if opt.ExcepMode == excep.ModePreemptible {
						cfg.Scheme = config.ReplayQueue
					}
					if opt.Workers > 1 {
						cfg.Workers = opt.Workers
					}
					cfg.Excep.Flip = excep.FlipConfig{
						Seed:           base + int64(trial),
						Rate:           rate,
						ProtectThreads: prot.threads(spec.Launch.ThreadsPerBlock()),
					}
					tr, err := sim.RunResilienceTrial(cfg, spec,
						sim.TrialOptions{MaxWarpInsts: resilienceWarpInsts})
					if err != nil {
						results <- cell{row, nil, fmt.Errorf("%s trial %d: %w", row, trial, err)}
						return
					}
					counts[tr.Outcome]++
					line := fmt.Sprintf("%-20s trial %d: %-9v flips=%d cycles=%d",
						row, trial, tr.Outcome, tr.Flips, tr.Cycles)
					if opt.Progress != nil {
						opt.Progress(line)
					}
					opt.campaignStep(&doneTrials, totalTrials, line)
				}
				results <- cell{row, counts, nil}
			}()
		}
	}
	wg.Wait()
	close(results)

	res := &Result{
		ID:      "resilience",
		Title:   fmt.Sprintf("Bit-flip outcome classification (%d trials/cell, rate %.0e, %v delivery)", trials, rate, opt.ExcepMode),
		Metric:  "trials per outcome class",
		Geomean: map[string]float64{},
	}
	for o := excep.Outcome(0); o < excep.NumOutcomes; o++ {
		res.Columns = append(res.Columns, o.String())
	}
	byRow := map[string][]float64{}
	for c := range results {
		if c.err != nil {
			return nil, c.err
		}
		byRow[c.row] = c.counts
	}
	for _, bench := range benches {
		for _, prot := range prots {
			row := Row{Benchmark: fmt.Sprintf("%s/%s", bench, prot.label), Values: map[string]float64{}}
			counts := byRow[row.Benchmark]
			for o := excep.Outcome(0); o < excep.NumOutcomes; o++ {
				row.Values[o.String()] = counts[o]
			}
			res.Rows = append(res.Rows, row)
		}
	}
	for _, col := range res.Columns {
		res.Geomean[col] = geomean(res.Rows, col)
	}
	return res, nil
}
