package sm

import (
	"testing"

	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/kernel"
	"gpues/internal/vm"
)

// Unit tests for the local scheduler's decision logic (use case 1).

// switchHarness builds a harness with switching enabled, occupancy 1
// and the given number of blocks, with A's page faulting.
func switchHarness(t *testing.T, blocks int, mut func(*config.Config)) *harness {
	t.Helper()
	var traces []*emu.BlockTrace
	var launch *kernel.Launch
	for i := 0; i < blocks; i++ {
		bt, l, _ := figure3Trace()
		bt.BlockID = i
		if i > 0 {
			// Later blocks touch distinct, non-faulting pages.
			bt.Warps[0].Insts[0].Lines = []uint64{uint64(0x100000 + i*0x1000)}
			bt.Warps[0].Insts[2].Lines = []uint64{uint64(0x200000 + i*0x1000)}
		}
		launch = l
		traces = append(traces, bt)
	}
	launch.Grid = kernel.Dim3{X: blocks}
	h := newHarnessCfg(t, config.ReplayQueue, traces, launch, func(cfg *config.Config) {
		cfg.Scheduler = config.SchedulerConfig{
			Enabled:         true,
			MaxExtraBlocks:  4,
			SwitchThreshold: 0,
		}
		cfg.SM.MaxThreadBlocks = 1
		if mut != nil {
			mut(cfg)
		}
	})
	h.fault[0x10000] = vm.FaultMigrate // block 0's first load faults
	return h
}

// driveToFault runs until the sink holds a pending fault.
func driveToFault(t *testing.T, h *harness) {
	t.Helper()
	for len(h.sink.pending) == 0 {
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, ok := h.q.NextEvent()
			if !ok {
				t.Fatal("deadlock before fault")
			}
			h.q.SkipTo(next)
		}
		if h.q.Now() > 100000 {
			t.Fatal("fault never raised")
		}
	}
}

func TestSwitchRequiresScheduler(t *testing.T) {
	h := switchHarness(t, 2, func(cfg *config.Config) { cfg.Scheduler.Enabled = false })
	driveToFault(t, h)
	h.sink.resolveAll(20000)
	h.run(500000)
	if out := h.sm.Stats().SwitchesOut; out != 0 {
		t.Errorf("switches with scheduler disabled = %d", out)
	}
}

func TestSwitchThresholdGates(t *testing.T) {
	// The fake sink returns increasing positions (1, 2, ...); a
	// threshold above any returned position suppresses switching.
	h := switchHarness(t, 2, func(cfg *config.Config) { cfg.Scheduler.SwitchThreshold = 100 })
	driveToFault(t, h)
	h.sink.resolveAll(20000)
	h.run(500000)
	if out := h.sm.Stats().SwitchesOut; out != 0 {
		t.Errorf("switches above threshold = %d, want 0", out)
	}
}

func TestNoSwitchWithoutPendingWork(t *testing.T) {
	// Single block in the grid: nothing to switch in, so the block
	// stays resident even though it faulted.
	h := switchHarness(t, 1, nil)
	driveToFault(t, h)
	h.sink.resolveAll(20000)
	h.run(500000)
	if out := h.sm.Stats().SwitchesOut; out != 0 {
		t.Errorf("switched out with no replacement work: %d", out)
	}
	if h.src.done != 1 {
		t.Errorf("blocks done = %d", h.src.done)
	}
}

func TestExtraBlockBudgetBoundsAssignment(t *testing.T) {
	// Many pending blocks, all fault: the SM may hold at most
	// occupancy + MaxExtraBlocks assigned blocks at once.
	var traces []*emu.BlockTrace
	var launch *kernel.Launch
	const blocks = 12
	for i := 0; i < blocks; i++ {
		bt, l, _ := figure3Trace()
		bt.BlockID = i
		// Every block faults on its own page.
		bt.Warps[0].Insts[0].Lines = []uint64{uint64(0x300000 + i*0x1000)}
		bt.Warps[0].Insts[2].Lines = []uint64{uint64(0x400000 + i*0x1000)}
		launch = l
		traces = append(traces, bt)
	}
	launch.Grid = kernel.Dim3{X: blocks}
	h := newHarnessCfg(t, config.ReplayQueue, traces, launch, func(cfg *config.Config) {
		cfg.Scheduler = config.SchedulerConfig{Enabled: true, MaxExtraBlocks: 2, SwitchThreshold: 0}
		cfg.SM.MaxThreadBlocks = 1
	})
	for i := 0; i < blocks; i++ {
		h.fault[uint64(0x300000+i*0x1000)] = vm.FaultMigrate
	}

	maxAssigned := 0
	for i := 0; i < 2_000_000; i++ {
		if h.sm.Done() {
			break
		}
		if h.sm.assigned > maxAssigned {
			maxAssigned = h.sm.assigned
		}
		if len(h.sink.pending) > 0 && h.sm.Idle() {
			h.sink.resolveAll(1000)
		}
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, ok := h.q.NextEvent()
			if !ok {
				t.Fatal("deadlock")
			}
			h.q.SkipTo(next)
		}
	}
	if !h.sm.Done() {
		t.Fatal("never finished")
	}
	// occupancy 1 + 2 extra = 3.
	if maxAssigned > 3 {
		t.Errorf("max assigned blocks = %d, want <= 3 (occupancy 1 + 2 extra)", maxAssigned)
	}
	if h.src.done != blocks {
		t.Errorf("blocks done = %d, want %d", h.src.done, blocks)
	}
	if h.sm.Stats().SwitchesOut == 0 {
		t.Error("no switching happened in an all-faulting grid")
	}
}

func TestIdealContextSwitchCheaper(t *testing.T) {
	run := func(ideal bool) int64 {
		h := switchHarness(t, 4, func(cfg *config.Config) {
			cfg.Scheduler.IdealContextSwitch = ideal
		})
		driveToFault(t, h)
		h.sink.resolveAll(30000)
		h.run(1_000_000)
		return h.q.Now()
	}
	normal := run(false)
	ideal := run(true)
	if ideal > normal {
		t.Errorf("ideal switching (%d cycles) slower than normal (%d)", ideal, normal)
	}
}

func TestContextSizeIncludesReplayAndLog(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarnessCfg(t, config.OperandLog, []*emu.BlockTrace{bt}, launch, nil)
	b := h.sm.slots[0]
	base := h.sm.contextSize(b)
	if base != h.sm.blockBytes {
		t.Fatalf("empty context = %d, want %d", base, h.sm.blockBytes)
	}
	// Pending replay entries and live log entries enlarge the context.
	b.warps[0].replay = append(b.warps[0].replay, 0, 2)
	b.logUsed = 3
	grown := h.sm.contextSize(b)
	want := base + 2*8 + 3*h.cfg.SM.OperandLog.EntryBytes
	if grown != want {
		t.Errorf("context with state = %d, want %d", grown, want)
	}
}

func TestSwitchedBlockRestoresAndFinishes(t *testing.T) {
	h := switchHarness(t, 3, nil)
	driveToFault(t, h)
	h.sink.resolveAll(50000)
	h.run(1_000_000)
	st := h.sm.Stats()
	if st.SwitchesOut == 0 || st.SwitchesIn == 0 {
		t.Fatalf("switches out/in = %d/%d", st.SwitchesOut, st.SwitchesIn)
	}
	if h.src.done != 3 {
		t.Errorf("blocks done = %d, want 3", h.src.done)
	}
	if len(h.sm.offchip) != 0 {
		t.Errorf("%d blocks stranded off-chip", len(h.sm.offchip))
	}
	if err := h.sm.scoreboardsClean(); err != nil {
		t.Error(err)
	}
}
