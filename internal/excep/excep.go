// Package excep defines the device-raised exception model layered on
// top of the paper's replay/squash machinery: the exception taxonomy
// (assert failures, illegal and misaligned addresses, device-malloc
// OOM, trap instructions), the two delivery modes (precise and
// preemptible), the structured per-warp exception record with its
// device stack trace, and the outcome taxonomy of the bit-flip
// resilience campaign.
//
// The package is a leaf: it imports nothing from the simulator, so the
// config, emulator, SM, host and driver layers can all share its types
// without cycles. See docs/exceptions.md for the full semantics.
package excep

import (
	"fmt"
	"strings"
)

// Kind classifies a device-raised exception.
type Kind uint8

const (
	// KindAssert is a failed device-side assertion (the assert
	// instruction with a false condition on an active lane).
	KindAssert Kind = iota
	// KindIllegalAddress is a global access to an unmapped address: the
	// null page and its surroundings, or — when the emulator has the
	// launch's address map — any address outside every mapped region
	// (the functional equivalent of an MMU fault).
	KindIllegalAddress
	// KindMisaligned is a global access whose address is not a multiple
	// of the access size.
	KindMisaligned
	// KindDeviceOOM is a device-side malloc that exhausted the device
	// heap (gpualloc).
	KindDeviceOOM
	// KindTrap is an explicit trap instruction reaching an active lane,
	// or — under bit-flip injection — hardware-detected control-flow
	// corruption: a branch asserted warp-uniform that diverged.
	KindTrap
	// NumKinds bounds the Kind range for iteration.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindAssert:         "assert",
	KindIllegalAddress: "illegal-address",
	KindMisaligned:     "misaligned",
	KindDeviceOOM:      "device-oom",
	KindTrap:           "trap",
}

// String returns the kind's stable report name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Mode selects how a raised exception is delivered to the host.
type Mode uint8

const (
	// ModePrecise drains the offending warp's outstanding work, kills
	// the warp, and reports a structured device stack trace. Older
	// instructions commit; the faulting one and everything younger do
	// not.
	ModePrecise Mode = iota
	// ModePreemptible squashes the offending block through the paper's
	// block-switch path (SM-state save) and propagates the exception to
	// the host; the block never switches back in.
	ModePreemptible
	// NumModes bounds the Mode range.
	NumModes
)

var modeNames = [NumModes]string{
	ModePrecise:     "precise",
	ModePreemptible: "preemptible",
}

// String returns the mode's flag-value name.
func (m Mode) String() string {
	if m < NumModes {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode parses a -exception-mode flag value.
func ParseMode(s string) (Mode, error) {
	for m := Mode(0); m < NumModes; m++ {
		if s == modeNames[m] {
			return m, nil
		}
	}
	return 0, fmt.Errorf("excep: unknown exception mode %q (want precise or preemptible)", s)
}

// Frame is one level of the device stack trace: a divergence-stack
// entry of the emulator at the moment the exception was raised,
// outermost first. RPC is the reconvergence PC of that level; Mask is
// the lane mask active within it.
type Frame struct {
	PC   int32
	RPC  int32
	Mask uint32
}

// Record is one raised device exception: what happened, where, and the
// device stack trace leading to it. Records are built functionally by
// the emulator, so they are bit-identical across reruns of the same
// seed.
type Record struct {
	Kind  Kind
	Block int32
	Warp  int32
	// Lane is the lowest active lane the condition fired on.
	Lane int32
	// PC and Mnemonic identify the faulting instruction.
	PC       int32
	Mnemonic string
	// Addr is the faulting address (illegal/misaligned kinds).
	Addr uint64
	// Detail is the kind-specific message (assert ids, OOM usage).
	Detail string
	// Frames is the divergence stack at the raise, outermost first; the
	// last frame is the faulting one.
	Frames []Frame
}

// String renders the record as the multi-line device stack-trace
// report the CLI prints (and CI golden-compares).
func (r *Record) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "device exception: %s at pc %d (%s), block %d warp %d lane %d",
		r.Kind, r.PC, r.Mnemonic, r.Block, r.Warp, r.Lane)
	if r.Kind == KindIllegalAddress || r.Kind == KindMisaligned {
		fmt.Fprintf(&sb, ", address %#x", r.Addr)
	}
	if r.Detail != "" {
		fmt.Fprintf(&sb, "\n  detail: %s", r.Detail)
	}
	for i, f := range r.Frames {
		fmt.Fprintf(&sb, "\n  frame %d: pc %d reconverge %d mask %#08x", i, f.PC, f.RPC, f.Mask)
	}
	return sb.String()
}

// Error is the run-terminating error carrying the exception records
// the host observed at its poll boundary (recover it with errors.As).
type Error struct {
	// Cycle is the host poll boundary the run terminated at.
	Cycle int64
	// Records holds every exception posted up to that boundary, in
	// post order.
	Records []*Record
}

// Error summarizes the first record; the full reports come from
// Records.
func (e *Error) Error() string {
	if len(e.Records) == 0 {
		return fmt.Sprintf("excep: device exception at cycle %d", e.Cycle)
	}
	r := e.Records[0]
	extra := ""
	if len(e.Records) > 1 {
		extra = fmt.Sprintf(" (+%d more)", len(e.Records)-1)
	}
	return fmt.Sprintf("excep: %s at pc %d, block %d warp %d (host observed at cycle %d)%s",
		r.Kind, r.PC, r.Block, r.Warp, e.Cycle, extra)
}

// Outcome classifies one resilience-campaign trial.
type Outcome uint8

const (
	// OutcomeMasked: the run completed and the final memory matches the
	// clean functional oracle — the flips had no architectural effect.
	OutcomeMasked Outcome = iota
	// OutcomeSDC: the run completed but the final memory differs from
	// the oracle — silent data corruption.
	OutcomeSDC
	// OutcomeException: a flip escalated into a device-raised exception
	// that the subsystem caught and reported.
	OutcomeException
	// OutcomeCrash: the run aborted with an error outside the exception
	// and hang taxonomies (kernel abort, emulation failure).
	OutcomeCrash
	// OutcomeHang: the run stopped making progress — the timing
	// watchdog fired, or the functional emulation ran away (instruction
	// budget or barrier deadlock).
	OutcomeHang
	// NumOutcomes bounds the Outcome range for iteration.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	OutcomeMasked:    "masked",
	OutcomeSDC:       "sdc",
	OutcomeException: "exception",
	OutcomeCrash:     "crash",
	OutcomeHang:      "hang",
}

// String returns the outcome's table name.
func (o Outcome) String() string {
	if o < NumOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}
