package workloads

import (
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
)

// Compute-bound Parboil workloads: cutcp, mri-q, tpacf, mri-gridding.

func init() {
	register(Workload{
		Name:        "cutcp",
		Suite:       "parboil",
		Description: "cutoff Coulomb potential: per-point loop over atoms with rsqrt, predicated cutoff, tiny memory footprint",
		Build:       buildCutcp,
	})
	register(Workload{
		Name:        "mri-q",
		Suite:       "parboil",
		Description: "MRI Q computation: sin/cos-heavy loop over k-space samples, highly cache-resident inputs",
		Build:       buildMriQ,
	})
	register(Workload{
		Name:        "tpacf",
		Suite:       "parboil",
		Description: "two-point angular correlation: pairwise dot products, sqrt/log chains, histogram atomics",
		Build:       buildTpacf,
	})
	register(Workload{
		Name:        "mri-gridding",
		Suite:       "parboil",
		Description: "MRI gridding: data-dependent per-sample work with two-orders-of-magnitude block imbalance, grid atomics",
		Build:       buildMriGridding,
	})
}

// buildCutcp: each thread evaluates the potential at one lattice point
// against a shared atom list (the atom pages are read by every block —
// maximal reuse).
func buildCutcp(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	points := 16384 * p.Scale
	const atoms = 24

	c := newBuildCtx(p.Seed)
	atomBuf := c.buffer("atoms", atoms*4*8, p.Placement.Inputs) // x,y,z,q
	ptBuf := c.buffer("points", points*2*8, p.Placement.Inputs) // x,y
	outBuf := c.buffer("potential", points*8, p.Placement.Outputs)
	c.fillF64(atomBuf, atoms*4)
	c.fillF64(ptBuf, points*2)

	b := kernel.NewBuilder("cutcp")
	pAtoms := b.AddParam(atomBuf)
	pPts := b.AddParam(ptBuf)
	pOut := b.AddParam(outBuf)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	ptA := b.Reg()
	px := b.Reg()
	py := b.Reg()
	b.Shl(ptA, gid, 4) // 2 coords x 8 B
	b.LoadParam(tmp, pPts)
	b.IAdd(ptA, ptA, tmp, 0)
	b.LdGlobal(px, ptA, 0, 8)
	b.LdGlobal(py, ptA, 8, 8)

	acc := b.Reg()
	ax := b.Reg()
	ay := b.Reg()
	aq := b.Reg()
	dx := b.Reg()
	dy := b.Reg()
	r2 := b.Reg()
	rinv := b.Reg()
	atomA := b.Reg()
	cutP := b.Reg()
	cutoff := b.Reg()
	b.MovI(acc, 0)
	b.FMovI(cutoff, 0.25)
	b.LoadParam(atomA, pAtoms)
	uniformLoop(b, atoms, func(i isa.Reg) {
		b.LdGlobal(ax, atomA, 0, 8)
		b.LdGlobal(ay, atomA, 8, 8)
		b.LdGlobal(aq, atomA, 24, 8)
		b.IAdd(atomA, atomA, isa.RZ, 32)
		b.FSub(dx, px, ax)
		b.FSub(dy, py, ay)
		b.FMul(r2, dx, dx)
		b.FFma(r2, dy, dy, r2)
		b.FRsqrt(rinv, r2)
		// Within cutoff (r2 < cutoff): acc += q * rinv. Predicated FFMA.
		b.FSetP(isa.CmpLT, cutP, r2, cutoff)
		in := isa.NewInstruction(isa.OpFFma)
		in.Dst, in.SrcA, in.SrcB, in.SrcC = acc, aq, rinv, acc
		in.Pred = cutP
		emitRaw(b, in)
	})
	outA := b.Reg()
	b.Shl(outA, gid, 3)
	b.LoadParam(tmp, pOut)
	b.IAdd(outA, outA, tmp, 0)
	b.StGlobal(outA, 0, acc, 8)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: points / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildMriQ: Q[t] = sum_k phi[k] * (cos + sin of 2*pi*k.x[t]): the
// special-function-unit-bound Parboil kernel.
func buildMriQ(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	samples := 16384 * p.Scale
	const kpoints = 24

	c := newBuildCtx(p.Seed)
	kBuf := c.buffer("kspace", kpoints*2*8, p.Placement.Inputs)
	xBuf := c.buffer("x", samples*8, p.Placement.Inputs)
	outBuf := c.buffer("Q", samples*2*8, p.Placement.Outputs)
	c.fillF64(kBuf, kpoints*2)
	c.fillF64(xBuf, samples)

	b := kernel.NewBuilder("mri-q")
	pK := b.AddParam(kBuf)
	pX := b.AddParam(xBuf)
	pOut := b.AddParam(outBuf)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	xA := b.Reg()
	x := b.Reg()
	b.Shl(xA, gid, 3)
	b.LoadParam(tmp, pX)
	b.IAdd(xA, xA, tmp, 0)
	b.LdGlobal(x, xA, 0, 8)

	accR := b.Reg()
	accI := b.Reg()
	kv := b.Reg()
	phi := b.Reg()
	ang := b.Reg()
	sv := b.Reg()
	cv := b.Reg()
	kA := b.Reg()
	b.MovI(accR, 0)
	b.MovI(accI, 0)
	b.LoadParam(kA, pK)
	uniformLoop(b, kpoints, func(i isa.Reg) {
		b.LdGlobal(kv, kA, 0, 8)
		b.LdGlobal(phi, kA, 8, 8)
		b.IAdd(kA, kA, isa.RZ, 16)
		b.FMul(ang, kv, x)
		b.FSin(sv, ang)
		b.FCos(cv, ang)
		b.FFma(accR, phi, cv, accR)
		b.FFma(accI, phi, sv, accI)
	})
	outA := b.Reg()
	b.Shl(outA, gid, 4)
	b.LoadParam(tmp, pOut)
	b.IAdd(outA, outA, tmp, 0)
	b.StGlobal(outA, 0, accR, 8)
	b.StGlobal(outA, 8, accI, 8)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: samples / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildTpacf: each thread correlates its point against a window of
// others: dot product, sqrt/log chain, then a histogram atomic.
func buildTpacf(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	points := 8192 * p.Scale
	const window = 16
	const bins = 64

	c := newBuildCtx(p.Seed)
	ptBuf := c.buffer("points", (points+window)*3*8, p.Placement.Inputs)
	histBuf := c.buffer("hist", bins*8, p.Placement.Outputs)
	c.fillF64(ptBuf, (points+window)*3)

	b := kernel.NewBuilder("tpacf")
	pPts := b.AddParam(ptBuf)
	pHist := b.AddParam(histBuf)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	pA := b.Reg()
	x := b.Reg()
	y := b.Reg()
	z := b.Reg()
	b.IMul(pA, gid, isa.RZ, 24)
	b.LoadParam(tmp, pPts)
	b.IAdd(pA, pA, tmp, 0)
	b.LdGlobal(x, pA, 0, 8)
	b.LdGlobal(y, pA, 8, 8)
	b.LdGlobal(z, pA, 16, 8)

	ox := b.Reg()
	oy := b.Reg()
	oz := b.Reg()
	dot := b.Reg()
	mag := b.Reg()
	bin := b.Reg()
	binA := b.Reg()
	one := b.Reg()
	old := b.Reg()
	histBase := b.Reg()
	b.MovI(one, 1)
	b.LoadParam(histBase, pHist)
	uniformLoop(b, window, func(i isa.Reg) {
		b.LdGlobal(ox, pA, 24, 8)
		b.LdGlobal(oy, pA, 32, 8)
		b.LdGlobal(oz, pA, 40, 8)
		b.IAdd(pA, pA, isa.RZ, 24)
		b.FMul(dot, x, ox)
		b.FFma(dot, y, oy, dot)
		b.FFma(dot, z, oz, dot)
		// angle proxy: bin = int(|log2(sqrt(dot^2) + 1)| * 8) & (bins-1)
		b.FMul(mag, dot, dot)
		b.FSqrt(mag, mag)
		fone := b.Reg()
		b.FMovI(fone, 1)
		b.FAdd(mag, mag, fone)
		b.FLog(mag, mag)
		scale := b.Reg()
		b.FMovI(scale, 8)
		b.FMul(mag, mag, scale)
		b.F2I(bin, mag)
		b.And(bin, bin, isa.RZ, bins-1)
		b.Shl(bin, bin, 3)
		b.IAdd(binA, bin, histBase, 0)
		b.AtomGlobal(isa.AtomAdd, old, binA, one, isa.RegNone, 8)
	})
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: points / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildMriGridding: per-thread trip counts come from the input; most
// blocks do little work, but one block per 16 carries a two-orders-of-
// magnitude heavier load, reproducing the kernel's block imbalance
// (Section 5.3's mri-gridding discussion).
func buildMriGridding(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	samples := 8192 * p.Scale
	const (
		lightWork = 2
		heavyWork = 350
	)
	blocks := samples / 128

	c := newBuildCtx(p.Seed)
	workBuf := c.buffer("work", samples*8, p.Placement.Inputs)
	dataBuf := c.buffer("data", samples*8, p.Placement.Inputs)
	gridBuf := c.buffer("grid", 16384*8, p.Placement.Outputs)
	c.fillF64(dataBuf, samples)
	// Heavy blocks recur at a fixed stride through the whole grid, so
	// the in-order distribution spreads them almost evenly across SMs —
	// and context switching, which perturbs which SM pulls which pending
	// block, breaks that balance (Section 5.3's mri-gridding analysis).
	for i := 0; i < samples; i++ {
		w := uint64(lightWork)
		if (i/128)%4 == 0 {
			w = heavyWork
		}
		c.mem.WriteU64(workBuf+uint64(i*8), w)
	}

	// Sample staging buffers: 8 KB of shared memory (occupancy 4).
	b := kernel.NewBuilder("mri-gridding").SetSharedMem(8 * 1024)
	pWork := b.AddParam(workBuf)
	pData := b.AddParam(dataBuf)
	pGrid := b.AddParam(gridBuf)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	wA := b.Reg()
	count := b.Reg()
	val := b.Reg()
	b.Shl(wA, gid, 3)
	b.LoadParam(tmp, pWork)
	b.IAdd(wA, wA, tmp, 0)
	b.LdGlobal(count, wA, 0, 8)
	b.Shl(wA, gid, 3)
	b.LoadParam(tmp, pData)
	b.IAdd(wA, wA, tmp, 0)
	b.LdGlobal(val, wA, 0, 8)

	i := b.Reg()
	wgt := b.Reg()
	cell := b.Reg()
	cellA := b.Reg()
	one := b.Reg()
	old := b.Reg()
	gridBase := b.Reg()
	b.MovI(i, 0)
	b.MovI(one, 1)
	b.LoadParam(gridBase, pGrid)
	divergentWhile(b, i, count, func() {
		// wgt = exp2(-val*i) flavoured arithmetic; cell = hash(gid, i)
		b.I2F(wgt, i)
		b.FMul(wgt, wgt, val)
		b.FExp(wgt, wgt)
		b.IMul(cell, i, isa.RZ, 2654435761)
		b.IAdd(cell, cell, gid, 0)
		b.And(cell, cell, isa.RZ, 16383)
		b.Shl(cell, cell, 3)
		b.IAdd(cellA, cell, gridBase, 0)
		b.AtomGlobal(isa.AtomAdd, old, cellA, one, isa.RegNone, 8)
	})
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// emitRaw appends a hand-constructed instruction to the builder (used
// for predicated ALU forms the helper methods do not cover).
func emitRaw(b *kernel.Builder, in isa.Instruction) { b.Emit(in) }
