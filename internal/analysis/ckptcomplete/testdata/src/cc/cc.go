// Package cc is the ckptcomplete corpus: Saver types with complete,
// incomplete, asymmetric and exempted field coverage.
package cc

import "gpues/internal/ckpt"

// Good covers every field, one of them through a helper method — the
// proof must follow the call.
type Good struct {
	a int64
	b uint64
}

func (g *Good) SaveState(w *ckpt.Writer) {
	w.I64(g.a)
	g.saveRest(w)
}

func (g *Good) saveRest(w *ckpt.Writer) {
	w.U64(g.b)
}

func (g *Good) RestoreState(r *ckpt.Reader) error {
	g.a = r.I64()
	g.b = r.U64()
	return r.Err()
}

// Missing has a field SaveState never touches: the injected defect a
// divergent replay would otherwise surface at run time.
type Missing struct {
	kept    int64
	dropped int64 // want "field Missing.dropped is not covered by SaveState"
}

func (m *Missing) SaveState(w *ckpt.Writer) {
	w.I64(m.kept)
}

func (m *Missing) RestoreState(r *ckpt.Reader) error {
	m.kept = r.I64()
	return r.Err()
}

// Asym saves both fields but restores only one.
type Asym struct {
	installed int64
	oneWay    int64 // want "field Asym.oneWay is written by SaveState but never read back by RestoreState"
}

func (a *Asym) SaveState(w *ckpt.Writer) {
	w.I64(a.installed)
	w.I64(a.oneWay)
}

func (a *Asym) RestoreState(r *ckpt.Reader) error {
	a.installed = r.I64()
	return r.Err()
}

// Skipped exempts its uncovered field with a reasoned directive; no
// diagnostic may fire (the no-false-positive case).
type Skipped struct {
	saved int64
	//simlint:ckptskip wiring rebuilt by the harness before restore
	wiring func()
}

func (s *Skipped) SaveState(w *ckpt.Writer) {
	w.I64(s.saved)
}

func (s *Skipped) RestoreState(r *ckpt.Reader) error {
	s.saved = r.I64()
	return r.Err()
}

// NoReason carries a bare ckptskip: the exemption must say why.
type NoReason struct {
	saved int64
	//simlint:ckptskip
	bare int64 // want "//simlint:ckptskip needs a reason"
}

func (n *NoReason) SaveState(w *ckpt.Writer) {
	w.I64(n.saved)
}

func (n *NoReason) RestoreState(r *ckpt.Reader) error {
	n.saved = r.I64()
	return r.Err()
}

// NotASaver has uncovered fields but no RestoreState; the analyzer
// only governs full ckpt.Saver implementations.
type NotASaver struct {
	anything int64
}

func (n *NotASaver) SaveState(w *ckpt.Writer) {}
