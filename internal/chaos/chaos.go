// Package chaos implements deterministic, seeded fault injection for
// the full-GPU simulator. A Plan perturbs the timing layer — transient
// page faults at the fill-unit walkers, delayed CPU fault-service
// completions, jittered interconnect transfers, artificial issue
// back-pressure (operand-log exhaustion / replay-queue pressure), and
// forced local-scheduler block switches — without ever touching the
// functional layer, so a correct simulator produces bit-identical
// architectural results under any plan (the paper's restartability
// property, checked by sim.RunChaos against the functional oracle).
//
// Every decision is drawn from a single seeded source in simulation
// call order; since the timing simulation is single-threaded and
// deterministic, the same seed reproduces the same injected-fault log
// and the same cycle count. The zero value of Config injects nothing,
// and a nil hook costs the components a single pointer test.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Config parameterizes a Plan. The zero value injects nothing.
type Config struct {
	// Seed makes the plan reproducible: equal configs produce equal
	// injection sequences.
	Seed int64

	// WalkFaultProb is the probability that a page-table walk which
	// would hit is instead reported as a transient alloc-only fault
	// (at most once per page, so every scheme — including the
	// stall-on-fault baseline, whose request replay does not re-raise —
	// is guaranteed to make progress).
	WalkFaultProb float64
	// MaxWalkFaults bounds the total injected walk faults (0 = none).
	MaxWalkFaults int

	// ServiceDelayMaxCycles adds a uniform [0, max) delay to every CPU
	// fault-service completion.
	ServiceDelayMaxCycles int64
	// LinkJitterMaxCycles adds a uniform [0, max) occupancy jitter to
	// every interconnect transfer.
	LinkJitterMaxCycles int64

	// IssueStallProb is the probability that an issuable global-memory
	// instruction is artificially stalled for one cycle, modelling
	// operand-log partition exhaustion and replay-queue back-pressure.
	IssueStallProb float64
	// MaxIssueStalls bounds the total injected issue stalls (0 = none).
	MaxIssueStalls int

	// ForceSwitchProb is the probability that a faulting block is
	// switched out regardless of its pending-queue position (the local
	// scheduler's threshold is bypassed; the scheme must still be
	// preemptible).
	ForceSwitchProb float64
	// MaxForcedSwitches bounds the forced switches (0 = none).
	MaxForcedSwitches int

	// ExhaustGPUMemory drains the GPU physical allocator at attach time,
	// leaving only LeaveGPUFrames free frames, to drive the OOM paths.
	// Runs under memory exhaustion are expected to fail with a
	// structured error, never a panic.
	ExhaustGPUMemory bool
	// LeaveGPUFrames is how many free frames survive ExhaustGPUMemory.
	LeaveGPUFrames int

	// InvariantInterval is the cycle period of the structural invariant
	// sweep sim.Run performs while this plan is attached (0 selects the
	// simulator default; negative disables periodic sweeps — the
	// end-of-run sweep always runs).
	InvariantInterval int64
}

// EventKind classifies an injected event.
type EventKind uint8

// The injected event kinds.
const (
	EventWalkFault EventKind = iota
	EventServiceDelay
	EventLinkJitter
	EventIssueStall
	EventForceSwitch
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventWalkFault:
		return "walk-fault"
	case EventServiceDelay:
		return "service-delay"
	case EventLinkJitter:
		return "link-jitter"
	case EventIssueStall:
		return "issue-stall"
	case EventForceSwitch:
		return "force-switch"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one injected perturbation, recorded for reproducibility
// checks and diagnostics.
type Event struct {
	Cycle int64
	Kind  EventKind
	// Arg is kind-specific: the faulted page VA, the injected delay in
	// cycles, or the SM ID.
	Arg uint64
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("cycle %d: %s(%#x)", e.Cycle, e.Kind, e.Arg)
}

// Plan is a live injection plan. It implements the chaos hooks of the
// component packages (tlb.WalkInjector, host.Delayer,
// interconnect.Jitter, sm.Chaos); sim.Simulator.AttachChaos wires it
// through the whole system. A nil *Plan is a valid no-op everywhere it
// is accepted.
type Plan struct {
	cfg Config
	//simlint:ckptskip stream position is implied by the saved injection counters; replay re-draws the same sequence from cfg.Seed
	rng *rand.Rand
	//simlint:ckptskip clock hookup, rebound by AttachChaos when the plan is rewired on restore
	now func() int64

	injectedPages  map[uint64]bool
	walkFaults     int
	issueStalls    int
	forcedSwitches int
	events         []Event
}

// New builds a plan from the config.
func New(cfg Config) *Plan {
	return &Plan{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		now:           func() int64 { return 0 },
		injectedPages: make(map[uint64]bool),
	}
}

// ForLevel returns a preset plan of increasing aggressiveness:
//
//	0 — no injection (the zero plan; costs nothing)
//	1 — timing noise: delayed fault services, jittered transfers
//	2 — level 1 plus transient walk faults and issue back-pressure
//	3 — fault storm: aggressive rates plus forced block switches
func ForLevel(level int, seed int64) (*Plan, error) {
	cfg := Config{Seed: seed}
	switch level {
	case 0:
	case 1:
		cfg.ServiceDelayMaxCycles = 2_000
		cfg.LinkJitterMaxCycles = 500
	case 2:
		cfg.ServiceDelayMaxCycles = 2_000
		cfg.LinkJitterMaxCycles = 500
		cfg.WalkFaultProb = 0.05
		cfg.MaxWalkFaults = 256
		cfg.IssueStallProb = 0.02
		cfg.MaxIssueStalls = 10_000
	case 3:
		cfg.ServiceDelayMaxCycles = 10_000
		cfg.LinkJitterMaxCycles = 2_000
		cfg.WalkFaultProb = 0.20
		cfg.MaxWalkFaults = 1_024
		cfg.IssueStallProb = 0.05
		cfg.MaxIssueStalls = 50_000
		cfg.ForceSwitchProb = 0.5
		cfg.MaxForcedSwitches = 64
	default:
		return nil, fmt.Errorf("chaos: level %d out of range [0,3]", level)
	}
	return New(cfg), nil
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Bind gives the plan access to the simulation clock so events carry
// cycle stamps. The simulator calls it at attach time.
func (p *Plan) Bind(now func() int64) {
	if now != nil {
		p.now = now
	}
}

func (p *Plan) record(kind EventKind, arg uint64) {
	p.events = append(p.events, Event{Cycle: p.now(), Kind: kind, Arg: arg})
}

// InjectWalkFault implements tlb.WalkInjector: it turns a hitting
// page-table walk into a transient alloc-only fault, at most once per
// page and MaxWalkFaults times in total.
func (p *Plan) InjectWalkFault(pageVA uint64) bool {
	if p == nil || p.cfg.WalkFaultProb <= 0 || p.walkFaults >= p.cfg.MaxWalkFaults {
		return false
	}
	if p.injectedPages[pageVA] {
		return false
	}
	if p.rng.Float64() >= p.cfg.WalkFaultProb {
		return false
	}
	p.injectedPages[pageVA] = true
	p.walkFaults++
	p.record(EventWalkFault, pageVA)
	return true
}

// ServiceDelay implements host.Delayer: extra cycles added to one CPU
// fault-service round trip.
func (p *Plan) ServiceDelay(regionBase uint64) int64 {
	if p == nil || p.cfg.ServiceDelayMaxCycles <= 0 {
		return 0
	}
	d := p.rng.Int63n(p.cfg.ServiceDelayMaxCycles)
	if d > 0 {
		p.record(EventServiceDelay, uint64(d))
	}
	return d
}

// TransferJitter implements interconnect.Jitter: extra occupancy cycles
// for one link transfer.
func (p *Plan) TransferJitter(cycles int64) int64 {
	if p == nil || p.cfg.LinkJitterMaxCycles <= 0 {
		return 0
	}
	d := p.rng.Int63n(p.cfg.LinkJitterMaxCycles)
	if d > 0 {
		p.record(EventLinkJitter, uint64(d))
	}
	return d
}

// StallIssue implements part of sm.Chaos: an artificial one-cycle issue
// stall for a global-memory instruction.
//
// Shard-pure by runtime gating: sim.Run's parallel tick phase requires
// Plan.TickOrderFree — a plan whose tick-path hooks draw no randomness
// and record no events — so during TickStaged this body returns
// without mutating the shared plan.
//
//simlint:shardsafe
func (p *Plan) StallIssue(smID int, isReplay bool) bool {
	if p == nil || p.cfg.IssueStallProb <= 0 || p.issueStalls >= p.cfg.MaxIssueStalls {
		return false
	}
	if p.rng.Float64() >= p.cfg.IssueStallProb {
		return false
	}
	p.issueStalls++
	p.record(EventIssueStall, uint64(smID))
	return true
}

// TickOrderFree reports whether the plan draws no randomness from the
// SM tick path (doIssue/doFetch), i.e. whether StallIssue always
// returns false before touching the RNG. The parallel tick phase in
// sim.StepTo requires this: the plan's single RNG is consumed in
// simulation call order, and ticking SMs concurrently would reorder
// tick-path draws across worker counts. Plans with issue-stall
// injection enabled force the run loop back to sequential ticking —
// still bit-identical, just not parallel. Every other hook
// (InjectWalkFault, ServiceDelay, TransferJitter, ForceSwitch) is
// reached only from event callbacks, which the sequential drain phase
// runs in deterministic queue order regardless of the worker count.
func (p *Plan) TickOrderFree() bool {
	return p == nil || p.cfg.IssueStallProb <= 0 || p.cfg.MaxIssueStalls <= 0
}

// ForceSwitch implements part of sm.Chaos: switch the faulting block
// out regardless of its pending-queue position.
func (p *Plan) ForceSwitch(smID int) bool {
	if p == nil || p.cfg.ForceSwitchProb <= 0 || p.forcedSwitches >= p.cfg.MaxForcedSwitches {
		return false
	}
	if p.rng.Float64() >= p.cfg.ForceSwitchProb {
		return false
	}
	p.forcedSwitches++
	p.record(EventForceSwitch, uint64(smID))
	return true
}

// Events returns the injected-event log in injection order.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	return p.events
}

// Fingerprint hashes the event log; two runs of the same plan on the
// same workload must produce equal fingerprints (bit-reproducibility).
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [17]byte
	for _, e := range p.Events() {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Cycle))
		buf[8] = byte(e.Kind)
		binary.LittleEndian.PutUint64(buf[9:], e.Arg)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Summary renders per-kind injection counts on one line.
func (p *Plan) Summary() string {
	counts := map[EventKind]int{}
	for _, e := range p.Events() {
		counts[e.Kind]++
	}
	if len(counts) == 0 {
		return "no events injected"
	}
	var parts []string
	for _, k := range []EventKind{EventWalkFault, EventServiceDelay, EventLinkJitter, EventIssueStall, EventForceSwitch} {
		if n := counts[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, k))
		}
	}
	return strings.Join(parts, ", ")
}
