// Package ckptcomplete proves checkpoint field coverage at compile
// time: for every type implementing ckpt.Saver, every struct field must
// be touched by SaveState (serialized, or structurally summarized for
// the digest) and symmetrically touched by RestoreState — or carry an
// explicit //simlint:ckptskip <reason> exemption on its declaration.
//
// Adding a field to a checkpointable component without serializing it
// previously surfaced only at runtime, as a ckpt.DivergenceError digest
// mismatch after a divergent replay — a simbisect hunt away from the
// actual one-line omission. This analyzer turns that hunt into a CI
// failure at the field declaration.
//
// The proof is interprocedural: SaveState may delegate to helper
// methods (in this package or another), so the analyzer summarizes
// every function's field accesses as an exported fact and unions the
// summaries over the static call graph reachable from each Saver
// method, within a bounded depth.
package ckptcomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"gpues/internal/analysis"
)

// Analyzer is the checkpoint field-coverage check.
var Analyzer = &analysis.Analyzer{
	Name: "ckptcomplete",
	Doc: "prove every field of a ckpt.Saver type is covered by SaveState and RestoreState " +
		"or exempted with //simlint:ckptskip <reason>",
	Run:       run,
	FactTypes: []analysis.Fact{(*AccessFact)(nil)},
}

// AccessFact summarizes one function for the coverage proof: which
// struct fields it touches, grouped by the owning named type, and which
// functions it statically calls (so the proof can follow SaveState into
// helpers across package boundaries).
type AccessFact struct {
	// Fields maps a type key ("pkgpath\x00TypeName") to the names of
	// that type's top-level fields the function reads or writes.
	Fields map[string][]string
	// Callees are the functions and methods this one statically calls.
	Callees []analysis.FuncRef
}

// AFact marks AccessFact as a serializable fact.
func (*AccessFact) AFact() {}

// typeKey names a type across fact boundaries.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "\x00" + obj.Name()
}

func run(pass *analysis.Pass) error {
	// Phase 1: summarize every declared function in the package and
	// export the summaries as facts.
	local := map[types.Object]*AccessFact{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			fact := summarize(pass, fn)
			local[obj] = fact
			pass.ExportObjectFact(obj, fact)
		}
	}

	// Phase 2: check every Saver type declared in this package.
	imports := importClosure(pass.Pkg)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				save, restore := saverMethods(named)
				if save == nil || restore == nil {
					continue
				}
				checkType(pass, named, st, save, restore, local, imports)
			}
		}
	}
	return nil
}

// summarize walks one function body collecting field accesses and
// static callees.
func summarize(pass *analysis.Pass, fn *ast.FuncDecl) *AccessFact {
	fact := &AccessFact{Fields: map[string][]string{}}
	seenField := map[string]map[string]bool{}
	seenCallee := map[analysis.FuncRef]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return true
			}
			// Index()[0] is the top-level field of the receiver type —
			// for promoted fields that is the embedded field itself,
			// which is exactly the coverage unit.
			idx := sel.Index()
			stru, ok := named.Underlying().(*types.Struct)
			if !ok || len(idx) == 0 || idx[0] >= stru.NumFields() {
				return true
			}
			key := typeKey(named)
			name := stru.Field(idx[0]).Name()
			if seenField[key] == nil {
				seenField[key] = map[string]bool{}
			}
			if !seenField[key][name] {
				seenField[key][name] = true
				fact.Fields[key] = append(fact.Fields[key], name)
			}
		case *ast.CallExpr:
			callee := analysis.CalleeFunc(pass.TypesInfo, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if ref, ok := analysis.FuncRefOf(callee); ok && !seenCallee[ref] {
				seenCallee[ref] = true
				fact.Callees = append(fact.Callees, ref)
			}
		}
		return true
	})
	return fact
}

// saverMethods returns the type's SaveState(*ckpt.Writer) and
// RestoreState(*ckpt.Reader) methods, or nils.
func saverMethods(named *types.Named) (save, restore *types.Func) {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		sig := m.Type().(*types.Signature)
		switch m.Name() {
		case "SaveState":
			if sig.Params().Len() == 1 && isCkptPtr(sig.Params().At(0).Type(), "Writer") {
				save = m
			}
		case "RestoreState":
			if sig.Params().Len() == 1 && isCkptPtr(sig.Params().At(0).Type(), "Reader") {
				restore = m
			}
		}
	}
	return save, restore
}

// isCkptPtr reports whether t is *ckpt.<name>.
func isCkptPtr(t types.Type, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/ckpt")
}

// maxDepth bounds the call-graph walk from a Saver method; checkpoint
// serialization helpers are shallow, so a deep chain means recursion or
// an accidental walk into unrelated code.
const maxDepth = 8

// coveredFields unions the field accesses of every function reachable
// from root (depth-bounded) for the given type key.
func coveredFields(pass *analysis.Pass, root *types.Func, key string,
	local map[types.Object]*AccessFact, imports map[string]*types.Package) map[string]bool {
	covered := map[string]bool{}
	type item struct {
		obj   types.Object
		depth int
	}
	visited := map[types.Object]bool{}
	queue := []item{{root, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.obj] {
			continue
		}
		visited[it.obj] = true
		fact, ok := local[it.obj]
		if !ok {
			var imported AccessFact
			if !pass.ImportObjectFact(it.obj, &imported) {
				continue
			}
			fact = &imported
		}
		for _, name := range fact.Fields[key] {
			covered[name] = true
		}
		if it.depth >= maxDepth {
			continue
		}
		for _, ref := range fact.Callees {
			if obj := resolveRef(pass, ref, imports); obj != nil {
				queue = append(queue, item{obj, it.depth + 1})
			}
		}
	}
	return covered
}

// resolveRef maps a FuncRef back to a types.Object in the current
// type-checking session.
func resolveRef(pass *analysis.Pass, ref analysis.FuncRef, imports map[string]*types.Package) types.Object {
	pkgPath, objPath := ref.Split()
	var pkg *types.Package
	if pkgPath == pass.Pkg.Path() {
		pkg = pass.Pkg
	} else {
		pkg = imports[pkgPath]
	}
	if pkg == nil {
		return nil
	}
	obj, err := analysis.ResolveObjectPath(pkg, objPath)
	if err != nil {
		return nil
	}
	return obj
}

// importClosure indexes the package's transitive imports by path.
func importClosure(pkg *types.Package) map[string]*types.Package {
	out := map[string]*types.Package{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if out[imp.Path()] != nil {
				continue
			}
			out[imp.Path()] = imp
			walk(imp)
		}
	}
	walk(pkg)
	return out
}

// checkType applies the coverage proof to one Saver type.
func checkType(pass *analysis.Pass, named *types.Named, st *ast.StructType,
	save, restore *types.Func, local map[types.Object]*AccessFact, imports map[string]*types.Package) {
	key := typeKey(named)
	saved := coveredFields(pass, save, key, local, imports)
	restored := coveredFields(pass, restore, key, local, imports)
	tname := named.Obj().Name()

	for _, field := range st.Fields.List {
		skip, reason := ckptskip(field)
		if skip && strings.TrimSpace(reason) == "" {
			pass.Reportf(field.Pos(), "//simlint:ckptskip needs a reason: say why %s's field needs no serialization", tname)
			continue
		}
		names := fieldNames(field)
		for _, name := range names {
			if name == "_" {
				continue
			}
			switch {
			case skip:
				// Exempted; the reason on the declaration documents why.
			case !saved[name]:
				pass.Reportf(field.Pos(), "field %s.%s is not covered by SaveState: serialize it (and read it back in RestoreState) or exempt it with //simlint:ckptskip <reason>", tname, name)
			case !restored[name]:
				pass.Reportf(field.Pos(), "field %s.%s is written by SaveState but never read back by RestoreState: restore it symmetrically or exempt it with //simlint:ckptskip <reason>", tname, name)
			}
		}
	}
}

// fieldNames lists the names a field declaration introduces (the type
// name itself for embedded fields).
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, id := range field.Names {
			names[i] = id.Name
		}
		return names
	}
	// Embedded field: strip pointer and qualifier.
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return []string{t.Name}
	case *ast.SelectorExpr:
		return []string{t.Sel.Name}
	}
	return nil
}

// ckptskip reports whether the field carries a //simlint:ckptskip
// directive (in its doc comment or trailing line comment) and returns
// the reason.
func ckptskip(field *ast.Field) (ok bool, reason string) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if verb, args := analysis.DirectiveOf(c); verb == "ckptskip" {
				return true, args
			}
		}
	}
	return false, ""
}
