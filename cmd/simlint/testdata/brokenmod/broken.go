// Package brokenmod does not parse: the driver must report exit 1,
// distinct from the findings exit 2.
package brokenmod

func unterminated( {
