package directive_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/directive"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, directive.Analyzer, "testdata/src/dir",
		"gpues/internal/analysis/directive/testdata/src/dir")
}
