package workloads

import (
	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// This file holds the small code-generation idioms shared by the
// workload kernels.

// emitGlobalTID emits gid = ctaid.x * ntid.x + tid.x into a fresh
// register and returns it.
func emitGlobalTID(b *kernel.Builder) isa.Reg {
	tid := b.Reg()
	ctaid := b.Reg()
	ntid := b.Reg()
	gid := b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid)
	return gid
}

// uniformLoop emits a counted loop executing body n times; the trip
// count is warp-uniform by construction. body receives the induction
// register.
func uniformLoop(b *kernel.Builder, n int64, body func(i isa.Reg)) {
	i := b.Reg()
	p := b.Reg()
	b.MovI(i, 0)
	top := b.Here()
	body(i)
	b.IAdd(i, i, isa.RZ, 1)
	b.SetP(isa.CmpLT, p, i, isa.RZ, n)
	b.BraIfUniform(p, false, top)
}

// divergentWhile emits a data-dependent loop: each lane iterates while
// i < count (count is a per-lane register), diverging as lanes finish.
// i must be initialized by the caller and is incremented per iteration.
func divergentWhile(b *kernel.Builder, i, count isa.Reg, body func()) {
	p := b.Reg()
	exit := b.NewLabel()
	top := b.Here()
	b.SetP(isa.CmpGE, p, i, count, 0)
	b.BraIf(p, false, exit, exit)
	body()
	b.IAdd(i, i, isa.RZ, 1)
	b.Bra(top)
	b.Bind(exit)
}

// emitLoadStream emits the lbm-style pointer-chase idiom: a load through
// an address register immediately followed by an update of that same
// register, creating the WAR hazard chain that distinguishes the
// replay-queue scheme from the operand log (Section 5.2's lbm
// discussion):
//
//	ld   dst, [addr]
//	iadd addr, addr, stride
func emitLoadStream(b *kernel.Builder, dst, addr isa.Reg, stride int64, size int) {
	b.LdGlobal(dst, addr, 0, size)
	b.IAdd(addr, addr, isa.RZ, stride)
}

// emitStoreStream is the store version of emitLoadStream.
func emitStoreStream(b *kernel.Builder, val, addr isa.Reg, stride int64, size int) {
	b.StGlobal(addr, 0, val, size)
	b.IAdd(addr, addr, isa.RZ, stride)
}
