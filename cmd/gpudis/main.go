// Command gpudis disassembles a bundled workload kernel (or assembles a
// .s listing) and reports static and dynamic statistics.
//
// Examples:
//
//	gpudis -workload lbm                  # print the kernel listing
//	gpudis -workload sgemm -stats        # listing + dynamic trace stats
//	gpudis -in kernel.s -stats -grid 64 -block 128
package main

import (
	"flag"
	"fmt"
	"os"

	"gpues/internal/asm"
	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "bundled workload to disassemble")
		inFile   = flag.String("in", "", "assemble a .s listing instead")
		stats    = flag.Bool("stats", false, "emulate and print dynamic statistics")
		scale    = flag.Int("scale", 1, "workload scale")
		gridX    = flag.Int("grid", 1, "grid size for -in listings")
		blockX   = flag.Int("block", 128, "block size for -in listings")
	)
	flag.Parse()

	var launch *kernel.Launch
	var mem *emu.Memory
	switch {
	case *workload != "":
		spec, err := workloads.Build(*workload, workloads.Params{Scale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		launch = spec.Launch
		mem = spec.Memory
	case *inFile != "":
		src, err := os.ReadFile(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k, err := asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		launch = &kernel.Launch{Kernel: k,
			Grid: kernel.Dim3{X: *gridX}, Block: kernel.Dim3{X: *blockX}}
		mem = emu.NewMemory()
	default:
		fmt.Fprintln(os.Stderr, "need -workload or -in; see -h")
		os.Exit(2)
	}

	fmt.Print(asm.Disassemble(launch.Kernel))

	// Static summary.
	classes := map[isa.Unit]int{}
	globalMem := 0
	for _, in := range launch.Kernel.Code {
		classes[in.ExecUnit()]++
		if in.IsGlobalMem() {
			globalMem++
		}
	}
	fmt.Printf("\n// static: %d instructions (%d math, %d sfu, %d ld/st [%d global], %d branch)\n",
		len(launch.Kernel.Code), classes[isa.UnitMath], classes[isa.UnitSpecial],
		classes[isa.UnitLoadStore], globalMem, classes[isa.UnitBranch])
	fmt.Printf("// launch: %d blocks x %d threads, %d regs/thread, %d B shared\n",
		launch.Blocks(), launch.ThreadsPerBlock(),
		launch.Kernel.RegsPerThread, launch.Kernel.SharedMemBytes)

	if !*stats {
		return
	}
	e, err := emu.New(launch, mem, 128)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dyn, accesses, reqs := 0, 0, 0
	pages := map[uint64]bool{}
	for b := 0; b < launch.Blocks(); b++ {
		bt, err := e.EmulateBlock(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dyn += bt.DynInsts
		accesses += bt.GlobalAccesses
		reqs += bt.MemRequests
		for p := range bt.TouchedPages(4096) {
			pages[p] = true
		}
	}
	fmt.Printf("// dynamic: %d warp instructions, %d global accesses -> %d coalesced requests (%.2f req/access)\n",
		dyn, accesses, reqs, float64(reqs)/float64(max(1, accesses)))
	fmt.Printf("// footprint: %d distinct 4 KB pages (%d KB)\n", len(pages), len(pages)*4)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
