package cache

import (
	"fmt"
	"sort"

	"gpues/internal/ckpt"
)

// SaveState serializes the cache: LRU clock, statistics, the full tag
// array, and a structural summary of the in-flight MSHRs (sorted by
// line address — the mshrs map must never be iterated raw). MSHR
// waiter closures are rebuilt by replay on restore.
func (c *Cache) SaveState(w *ckpt.Writer) {
	w.I64(c.tick)
	w.I64(c.stats.Hits)
	w.I64(c.stats.Misses)
	w.I64(c.stats.MSHRMerges)
	w.I64(c.stats.Rejects)
	w.I64(c.stats.WriteBacks)

	w.Int(c.sets)
	w.Int(c.cfg.Ways)
	for _, set := range c.lines {
		for i := range set {
			l := &set[i]
			w.U64(l.tag)
			w.Bool(l.valid)
			w.Bool(l.dirty)
			w.I64(l.lru)
		}
	}

	w.Int(len(c.waiters))
	addrs := make([]uint64, 0, len(c.mshrs))
	for a := range c.mshrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		m := c.mshrs[a]
		w.U64(a)
		w.I64(m.born)
		w.Int(len(m.waiters))
	}
}

// RestoreState reads the SaveState stream back: tag array, LRU clock
// and statistics are installed; the MSHR summary is cross-checked
// against the replayed population.
func (c *Cache) RestoreState(r *ckpt.Reader) error {
	c.tick = r.I64()
	c.stats.Hits = r.I64()
	c.stats.Misses = r.I64()
	c.stats.MSHRMerges = r.I64()
	c.stats.Rejects = r.I64()
	c.stats.WriteBacks = r.I64()

	sets := r.Int()
	ways := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != c.sets || ways != c.cfg.Ways {
		return fmt.Errorf("cache %s: geometry %dx%d does not match checkpoint %dx%d",
			c.cfg.Name, c.sets, c.cfg.Ways, sets, ways)
	}
	for _, set := range c.lines {
		for i := range set {
			l := &set[i]
			l.tag = r.U64()
			l.valid = r.Bool()
			l.dirty = r.Bool()
			l.lru = r.I64()
		}
	}

	r.Int() // waiter count: closures, rebuilt by replay
	n := r.Int()
	for i := 0; i < n; i++ {
		r.U64()
		r.I64()
		r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(c.mshrs) {
		return fmt.Errorf("cache %s: replayed %d MSHRs, checkpoint has %d", c.cfg.Name, len(c.mshrs), n)
	}
	return nil
}
