// Package analysis is the simulator's static-analysis framework: a
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// core (the container has no module cache, so the real framework is
// unavailable), scoped to exactly what the simlint analyzers need.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. The drivers — cmd/simlint in standalone and vettool
// mode, and the analysistest harness — construct Passes and apply the
// shared suppression rules before surfacing diagnostics.
//
// Source directives understood by the suite:
//
//	//simlint:noalloc
//	    On a function's doc comment: the function body must contain no
//	    guaranteed-heap construct (checked by the noalloc analyzer).
//
//	//simlint:releases <n|recv>
//	    On a function's doc comment: calling the function releases its
//	    n-th argument (0-based) or its receiver back into an object
//	    pool; any later use of that value in the caller is a
//	    use-after-release (checked by the poolsafe analyzer).
//
//	//simlint:deterministic
//	    On a package comment: opts the package into the determinism
//	    analyzer's rules in addition to the built-in package list.
//
//	//simlint:shardsafe
//	    On a function's doc comment: the function (and the function
//	    literals it encloses) may spawn goroutines inside a timing-core
//	    package. The annotation asserts the deterministic-parallelism
//	    contract of docs/parallelism.md: spawned goroutines touch only
//	    shard-private state plus staged effect ledgers that the main
//	    goroutine flushes in a deterministic order. Unannotated spawns
//	    are still flagged by the determinism analyzer.
//
//	//simlint:ckptskip <reason>
//	    On a struct field of a checkpointable type (one implementing
//	    ckpt.Saver): exempts the field from the ckptcomplete analyzer's
//	    save/restore coverage proof. The reason is mandatory and should
//	    say why the field needs no serialization (rebuilt by replay,
//	    immutable config, derived cache, ...).
//
//	//simlint:tickroot
//	    On a function's doc comment: marks an entry point of the
//	    parallel tick phase. The shardpurity analyzer proves everything
//	    reachable from a tick root mutates only per-shard receiver
//	    state and the staged effect ledgers.
//
//	//simlint:ignore <analyzer> <reason>
//	    On (or on the line above) a flagged line: suppresses that
//	    analyzer's diagnostics for the line. The reason is mandatory.
//
// Unknown //simlint: verbs are themselves diagnosed (the directive
// analyzer), so a typo cannot silently disable a check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore directives.
	Name string
	// Doc is a one-paragraph description, shown by `simlint -list`.
	Doc string
	// Run applies the check to one package. Interprocedural analyzers
	// use Run to summarize the package as exported facts (and to report
	// anything provable locally).
	Run func(*Pass) error
	// FactTypes lists prototype values of every fact type Run exports,
	// so drivers can register them for serialization. Empty for purely
	// intraprocedural analyzers.
	FactTypes []Fact
	// Finish, when non-nil, runs once after every package's Run phase
	// with the whole-program view: this is where interprocedural
	// analyzers walk the fact-built call graph and report.
	Finish func(*Program) ([]Diagnostic, error)
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the run-wide fact store; dependency packages' facts are
	// already in it when Run starts (drivers analyze in dependency
	// order, or preload serialized facts in vettool mode).
	Facts *FactStore

	// Report delivers one diagnostic. Drivers install it; analyzers
	// usually call Reportf instead.
	Report func(Diagnostic)
}

// ExportObjectFact attaches fact to obj for downstream passes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts != nil {
		p.Facts.Export(obj, fact)
	}
}

// ImportObjectFact copies the fact of fact's type attached to obj into
// fact, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.Facts != nil && p.Facts.Import(obj, fact)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directivePrefix introduces every simlint source directive.
const directivePrefix = "//simlint:"

// KnownDirectives is the set of //simlint: verbs the suite understands.
// The directive analyzer diagnoses any other verb, so a typo like
// //simlint:noaloc fails the build instead of silently disabling a
// check. New directives must be registered here.
var KnownDirectives = map[string]bool{
	"noalloc":       true,
	"releases":      true,
	"deterministic": true,
	"shardsafe":     true,
	"ignore":        true,
	"ckptskip":      true,
	"tickroot":      true,
}

// DirectiveOf exposes directive parsing to the analyzer packages: it
// splits a comment into its simlint verb and argument string, returning
// an empty verb when the comment is not a simlint directive.
func DirectiveOf(c *ast.Comment) (verb, args string) { return directive(c) }

// directive splits one comment into a simlint directive verb and its
// argument string ("" verb when the comment is not a directive).
func directive(c *ast.Comment) (verb, args string) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", ""
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args)
}

// FuncHasDirective reports whether fn's doc comment carries the given
// simlint directive verb (e.g. "noalloc") and returns its argument.
func FuncHasDirective(fn *ast.FuncDecl, verb string) (string, bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if v, args := directive(c); v == verb {
			return args, true
		}
	}
	return "", false
}

// PackageHasDirective reports whether any file-level (package doc or
// floating) comment in the pass carries the directive verb.
func PackageHasDirective(files []*ast.File, verb string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if v, _ := directive(c); v == verb {
					return true
				}
			}
		}
	}
	return false
}

// ReleaseSpec describes a //simlint:releases annotation resolved
// against the type-checked function it annotates.
type ReleaseSpec struct {
	// Arg is the 0-based index of the released parameter, or -1 when
	// the receiver is released.
	Arg int
}

// ParseReleases interprets the argument of a //simlint:releases
// directive ("recv" or a 0-based parameter index).
func ParseReleases(args string) (ReleaseSpec, error) {
	if args == "recv" {
		return ReleaseSpec{Arg: -1}, nil
	}
	n, err := strconv.Atoi(args)
	if err != nil || n < 0 {
		return ReleaseSpec{}, fmt.Errorf("simlint:releases wants %q or a parameter index, got %q", "recv", args)
	}
	return ReleaseSpec{Arg: n}, nil
}

// ReleaseFuncs indexes every //simlint:releases-annotated function in
// the pass by its types.Object, so call sites can be matched without
// name heuristics.
func ReleaseFuncs(pass *Pass) map[types.Object]ReleaseSpec {
	out := map[types.Object]ReleaseSpec{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, ok := FuncHasDirective(fn, "releases")
			if !ok {
				continue
			}
			spec, err := ParseReleases(args)
			if err != nil {
				pass.Reportf(fn.Pos(), "%v", err)
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				out[obj] = spec
			}
		}
	}
	return out
}

// Suppressions indexes //simlint:ignore directives: for each file line
// carrying (or directly below) an ignore comment, the set of analyzer
// names it silences.
type Suppressions map[suppressionKey]bool

type suppressionKey struct {
	file string
	line int
	name string
}

// BuildSuppressions scans the files' comments for ignore directives.
// A directive with no reason is itself a diagnostic at drive time (see
// Suppressed), so sloppily silenced findings stay visible.
func BuildSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	s := Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, args := directive(c)
				if verb != "ignore" {
					continue
				}
				name, reason, _ := strings.Cut(args, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					// Malformed: suppress nothing; the finding survives.
					continue
				}
				p := fset.Position(c.Pos())
				// The directive covers its own line and the next one, so
				// it can sit at end-of-line or on the line above.
				s[suppressionKey{p.Filename, p.Line, name}] = true
				s[suppressionKey{p.Filename, p.Line + 1, name}] = true
			}
		}
	}
	return s
}

// Suppressed reports whether the diagnostic is silenced by an ignore
// directive for the analyzer.
func (s Suppressions) Suppressed(fset *token.FileSet, name string, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	return s[suppressionKey{p.Filename, p.Line, name}]
}
