// Package ckpt implements the versioned, deterministic whole-simulator
// checkpoint format. A checkpoint captures the state of every
// registered component at one cycle boundary as a named, digested
// section; the file carries a format version, fingerprints of the
// configuration and launch spec it belongs to, and a trailing
// whole-file digest so a checkpoint truncated by a crash (kill -9
// mid-write) is detected rather than restored.
//
// Components implement Saver: SaveState appends the component's state
// to a Writer as a flat sequence of typed fields; RestoreState reads
// the same fields back in the same order. Serialization must be
// deterministic — in particular, map-keyed state must be written in
// sorted key order (the simlint determinism analyzer covers this
// package). Section digests double as the per-component state
// fingerprints that cmd/simbisect compares when binary-searching for
// the first cycle two runs diverge.
//
// See docs/checkpointing.md for the format layout, the determinism
// contract and the restore (replay-and-verify) model.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gpues/internal/atomicio"
)

// Magic identifies a checkpoint file; the trailing digit is the layout
// generation and only changes when the envelope itself (not section
// payloads) becomes incompatible.
const Magic = "GPUCKPT1"

// Version is the current checkpoint format version. Bump it whenever
// any component's SaveState layout changes: restore refuses checkpoints
// written by a different version instead of misparsing them.
const Version uint32 = 1

// fnv64a is the FNV-1a digest used for section, file and streaming
// state digests. It is not cryptographic; it only needs to make state
// divergence and file truncation visible.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Digest returns the FNV-1a hash of b.
func Digest(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// Hasher is a streaming FNV-1a digest for components that fingerprint
// large state (page tables, functional memory) instead of serializing
// it byte for byte.
type Hasher struct{ h uint64 }

// NewHasher returns a Hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// U64 folds v into the digest.
func (s *Hasher) U64(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= uint64(byte(v >> (8 * i)))
		s.h *= fnvPrime
	}
}

// Bytes folds b into the digest.
func (s *Hasher) Bytes(b []byte) {
	h := s.h
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	s.h = h
}

// Sum returns the current digest value.
func (s *Hasher) Sum() uint64 { return s.h }

// Saver is the common interface every stateful simulator component
// implements to participate in checkpointing. SaveState appends the
// component's state to w; RestoreState consumes the exact same field
// sequence from r. The two must stay symmetric: restore is verified by
// byte-comparing a fresh SaveState against the checkpoint section.
//
// State that cannot be serialized (scheduled event closures, pooled
// objects in flight) is represented structurally — counts and sorted
// summaries — and rebuilt by deterministic replay on restore; see
// docs/checkpointing.md.
type Saver interface {
	SaveState(w *Writer)
	RestoreState(r *Reader) error
}

// Writer accumulates one component's serialized state as a flat byte
// stream of typed, little-endian fields.
type Writer struct{ buf []byte }

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Reset clears the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.buf) }

// Data returns the accumulated bytes (not a copy).
func (w *Writer) Data() []byte { return w.buf }

// U64 appends v.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends v.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// U32 appends v.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Int appends v as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends b as one byte.
func (w *Writer) Bool(b bool) {
	var v byte
	if b {
		v = 1
	}
	w.buf = append(w.buf, v)
}

// F64 appends the IEEE-754 bits of f.
func (w *Writer) F64(f float64) { w.U64(math.Float64bits(f)) }

// Bytes appends b length-prefixed.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s length-prefixed.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a field stream written by Writer. Errors are sticky:
// after the first short read every accessor returns the zero value and
// Err reports the failure, so RestoreState bodies can read
// unconditionally and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader reads the field stream in b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(n int) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: truncated section: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.fail(n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads one uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads one int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U32 reads one uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int reads one int64 as an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// F64 reads one float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads one length-prefixed byte slice (a view into the buffer).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(int(n))
		return nil
	}
	return r.take(int(n))
}

// String reads one length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Section is one component's serialized state within a checkpoint.
type Section struct {
	Name string
	Data []byte
}

// Digest returns the section's state digest.
func (s *Section) Digest() uint64 { return Digest(s.Data) }

// SectionDigest names one component's state digest; simbisect compares
// slices of these across two runs.
type SectionDigest struct {
	Name   string
	Digest uint64
}

// Checkpoint is one decoded (or to-be-encoded) checkpoint: the cycle it
// was taken at, the fingerprints of the configuration and launch spec
// that produced it, and one section per registered component.
type Checkpoint struct {
	Version  uint32
	Cycle    int64
	ConfigFP uint64
	SpecFP   uint64
	Sections []Section
}

// Section returns the named section, or nil.
func (c *Checkpoint) Section(name string) *Section {
	for i := range c.Sections {
		if c.Sections[i].Name == name {
			return &c.Sections[i]
		}
	}
	return nil
}

// Digests returns the per-section digests in section order.
func (c *Checkpoint) Digests() []SectionDigest {
	out := make([]SectionDigest, len(c.Sections))
	for i := range c.Sections {
		out[i] = SectionDigest{Name: c.Sections[i].Name, Digest: c.Sections[i].Digest()}
	}
	return out
}

// Encode serializes the checkpoint:
//
//	magic[8] version:u32 cycle:i64 configFP:u64 specFP:u64 nSections:u32
//	( name:str data:bytes digest:u64 )*
//	fileDigest:u64   — FNV-1a over every preceding byte
func (c *Checkpoint) Encode() []byte {
	w := NewWriter()
	w.buf = append(w.buf, Magic...)
	w.U32(c.Version)
	w.I64(c.Cycle)
	w.U64(c.ConfigFP)
	w.U64(c.SpecFP)
	w.U32(uint32(len(c.Sections)))
	for i := range c.Sections {
		s := &c.Sections[i]
		w.String(s.Name)
		w.Bytes(s.Data)
		w.U64(s.Digest())
	}
	w.U64(Digest(w.buf))
	return w.buf
}

// Decode parses and fully validates an encoded checkpoint: magic,
// version, every section digest and the trailing file digest. A file
// cut short by a crash fails here instead of restoring garbage.
func Decode(b []byte) (*Checkpoint, error) {
	if len(b) < len(Magic)+8 || string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("ckpt: not a checkpoint file (bad magic)")
	}
	body, tail := b[:len(b)-8], b[len(b)-8:]
	if got, want := binary.LittleEndian.Uint64(tail), Digest(body); got != want {
		return nil, fmt.Errorf("ckpt: file digest mismatch (%#016x != %#016x): truncated or corrupt", got, want)
	}
	r := NewReader(body[len(Magic):])
	c := &Checkpoint{Version: r.U32()}
	if c.Version != Version {
		return nil, fmt.Errorf("ckpt: format version %d, this binary reads version %d", c.Version, Version)
	}
	c.Cycle = r.I64()
	c.ConfigFP = r.U64()
	c.SpecFP = r.U64()
	n := int(r.U32())
	for i := 0; i < n; i++ {
		name := r.String()
		data := append([]byte(nil), r.Bytes()...)
		digest := r.U64()
		if r.err != nil {
			break
		}
		if got := Digest(data); got != digest {
			return nil, fmt.Errorf("ckpt: section %q digest mismatch (%#016x != %#016x)", name, got, digest)
		}
		c.Sections = append(c.Sections, Section{Name: name, Data: data})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after %d sections", r.Remaining(), n)
	}
	return c, nil
}

// WriteFile atomically writes the checkpoint to path (tmp+rename via
// atomicio), so a reader (or a resume after kill -9) only ever sees
// complete files.
func (c *Checkpoint) WriteFile(path string) error {
	return atomicio.WriteFile(path, c.Encode())
}

// ReadFile reads and validates the checkpoint at path.
func ReadFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// FileName returns the canonical checkpoint file name for a cycle;
// zero-padding keeps lexical and numeric order identical.
func FileName(cycle int64) string { return fmt.Sprintf("ckpt-%012d.ckpt", cycle) }

// Latest returns the path of the newest (highest-cycle) valid
// checkpoint in dir, skipping files that fail validation (e.g. a write
// interrupted before the atomic rename never produces one, but a copy
// truncated in transit would). It returns os.ErrNotExist when the
// directory holds no valid checkpoint.
func Latest(dir string) (string, *Checkpoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var (
		bestPath string
		best     *Checkpoint
		firstErr error
	)
	for _, name := range names {
		path := filepath.Join(dir, name)
		c, err := ReadFile(path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || c.Cycle > best.Cycle {
			bestPath, best = path, c
		}
	}
	if best != nil {
		return bestPath, best, nil
	}
	if firstErr != nil {
		return "", nil, fmt.Errorf("ckpt: no valid checkpoint in %s: %w", dir, firstErr)
	}
	return "", nil, fmt.Errorf("ckpt: no checkpoint in %s: %w", dir, os.ErrNotExist)
}
