package emu

import (
	"fmt"
	"math/bits"

	"gpues/internal/excep"
	"gpues/internal/isa"
)

// TraceInst is one dynamic warp instruction in a trace: the static
// instruction it came from plus the runtime information the timing
// simulator needs (active mask and, for memory instructions, the
// coalesced line addresses).
type TraceInst struct {
	// PC is the static instruction index in the kernel code.
	PC int32
	// Static points at the kernel's instruction.
	Static *isa.Instruction
	// Mask is the set of active lanes when the instruction executed.
	Mask uint32
	// Lines holds the coalesced memory request addresses: one entry per
	// unique cache line touched by the active lanes, aligned to the line
	// size, in first-touch lane order. Nil for non-memory instructions
	// and for memory instructions whose lanes were all predicated off.
	// For shared memory instructions the addresses are offsets within
	// the block's shared memory partition.
	Lines []uint64
}

// ActiveLanes returns the number of active lanes.
func (ti *TraceInst) ActiveLanes() int {
	n := 0
	for m := ti.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// String formats the trace instruction for debugging.
func (ti *TraceInst) String() string {
	return fmt.Sprintf("pc=%d mask=%08x %v lines=%d", ti.PC, ti.Mask, ti.Static, len(ti.Lines))
}

// WarpTrace is the dynamic instruction sequence of one warp.
type WarpTrace struct {
	// WarpID is the warp index within its thread block.
	WarpID int
	// Insts is the dynamic instruction stream in execution order.
	Insts []TraceInst
	// Excep, when set, is the device exception the warp raised: Insts
	// ends just before the faulting instruction and the timing layer
	// delivers the record once the warp drains (see internal/sm).
	Excep *excep.Record
}

// BlockTrace is the dynamic trace of one thread block: one WarpTrace per
// warp, plus summary statistics.
type BlockTrace struct {
	// BlockID is the linear block index within the grid.
	BlockID int
	Warps   []WarpTrace

	// DynInsts is the total dynamic warp-instruction count.
	DynInsts int
	// GlobalAccesses is the number of global memory instructions.
	GlobalAccesses int
	// MemRequests is the number of coalesced global memory requests.
	MemRequests int
}

// TouchedPages returns the set of distinct virtual pages referenced by
// the block's global memory instructions, for the given page size.
func (bt *BlockTrace) TouchedPages(pageSize int) map[uint64]bool {
	pages := make(map[uint64]bool)
	mask := ^uint64(pageSize - 1)
	for i := range bt.Warps {
		for j := range bt.Warps[i].Insts {
			ti := &bt.Warps[i].Insts[j]
			if ti.Static.IsGlobalMem() {
				for _, a := range ti.Lines {
					pages[a&mask] = true
				}
			}
		}
	}
	return pages
}

// coalesce appends to dst the unique line-aligned addresses covered by
// the per-lane accesses [addr, addr+size) for lanes set in mask,
// preserving first-touch order. The warp coalescing unit of the baseline
// SM generates exactly one memory request per unique line (Figure 5).
func coalesce(dst []uint64, addrs *[32]uint64, mask uint32, size int, lineSize uint64) []uint64 {
	lineMask := ^(lineSize - 1)
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		first := addrs[lane] & lineMask
		last := (addrs[lane] + uint64(size) - 1) & lineMask
		for line := first; ; line += lineSize {
			seen := false
			for _, d := range dst {
				if d == line {
					seen = true
					break
				}
			}
			if !seen {
				dst = append(dst, line)
			}
			if line == last {
				break
			}
		}
	}
	return dst
}
