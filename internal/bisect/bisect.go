// Package bisect finds the first cycle at which two simulator runs
// diverge. Both runs are probed at cycle boundaries for their
// per-component state digests (ckpt section digests); because the
// simulator is deterministic, digests agree at every cycle before the
// first divergence and disagree at every cycle after it, so a binary
// search needs only O(log N) replays to pin the exact cycle and the
// first component whose state differs.
package bisect

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"gpues/internal/ckpt"
	"gpues/internal/sim"
)

// Probe is one run's state observation at (or just after) a requested
// cycle.
type Probe struct {
	// At is the requested cycle; Cycle is where the run actually
	// stopped — the first cycle boundary at or after At (the event
	// queue can skip quiet cycles), or the completion cycle when the
	// run finished first.
	At    int64 `json:"at"`
	Cycle int64 `json:"cycle"`
	// Done means the run completed before reaching At.
	Done bool `json:"done"`
	// Digests are the per-component state digests at Cycle.
	Digests []ckpt.SectionDigest `json:"digests"`
}

// Runner produces probes for one configuration of the simulator.
type Runner interface {
	// ProbeAt runs a fresh instance to the requested cycle (-1 means
	// completion) and returns the observation.
	ProbeAt(cycle int64) (Probe, error)
}

// SimRunner probes in-process: Build constructs a fresh, fully
// configured simulator (config, spec, chaos plan, injected
// divergences) for every probe.
type SimRunner struct {
	Build func() (*sim.Simulator, error)
}

// ProbeAt implements Runner.
func (r SimRunner) ProbeAt(cycle int64) (Probe, error) {
	s, err := r.Build()
	if err != nil {
		return Probe{}, err
	}
	if err := s.Start(); err != nil {
		return Probe{}, err
	}
	reached, err := s.StepTo(cycle)
	if err != nil {
		return Probe{}, err
	}
	return Probe{
		At:      cycle,
		Cycle:   s.Cycle(),
		Done:    !reached,
		Digests: s.ComponentDigests(),
	}, nil
}

// ExecRunner probes by spawning a gpusim-compatible binary: Argv is
// the full command line minus the probe flags; ProbeAt appends
// "-digest-at <cycle>" and parses the JSON probe the command prints on
// stdout. This is how two different binaries (e.g. two builds across a
// suspect commit) are bisected against each other.
type ExecRunner struct {
	Argv []string
}

// ProbeAt implements Runner.
func (r ExecRunner) ProbeAt(cycle int64) (Probe, error) {
	if len(r.Argv) == 0 {
		return Probe{}, fmt.Errorf("bisect: empty exec command")
	}
	args := append(append([]string(nil), r.Argv[1:]...), "-digest-at", fmt.Sprint(cycle))
	cmd := exec.Command(r.Argv[0], args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return Probe{}, fmt.Errorf("bisect: %s: %w", strings.Join(r.Argv, " "), err)
	}
	var p Probe
	if err := json.Unmarshal(out, &p); err != nil {
		return Probe{}, fmt.Errorf("bisect: parsing probe from %s: %w", r.Argv[0], err)
	}
	return p, nil
}

// firstDiff returns the name of the first component whose digest
// differs between two probes ("" when they fully agree). A component
// present on only one side counts as differing.
func firstDiff(a, b Probe) string {
	bd := make(map[string]uint64, len(b.Digests))
	for _, d := range b.Digests {
		bd[d.Name] = d.Digest
	}
	for _, d := range a.Digests {
		got, ok := bd[d.Name]
		if !ok || got != d.Digest {
			return d.Name
		}
		delete(bd, d.Name)
	}
	if len(bd) > 0 {
		names := make([]string, 0, len(bd))
		for n := range bd {
			names = append(names, n)
		}
		sort.Strings(names)
		return names[0]
	}
	return ""
}

// agree reports whether two probes observed identical state.
func agree(a, b Probe) bool {
	return a.Cycle == b.Cycle && a.Done == b.Done && firstDiff(a, b) == ""
}

// divergedAt names the cycle a differing probe pair witnessed: the
// actual stop cycle when both runs stopped together (state divergence
// only), the requested cycle when even the stop cycles disagree
// (timing divergence — the runs took different schedules).
func divergedAt(at int64, a, b Probe) int64 {
	if a.Cycle == b.Cycle {
		return a.Cycle
	}
	return at
}

// Report is the outcome of a bisection.
type Report struct {
	// Diverged is false when the two runs agree over the whole range.
	Diverged bool
	// FirstCycle is the first probed cycle at which state differed;
	// Component is the first differing component at that cycle.
	FirstCycle int64
	Component  string
	// A and B are the two runs' probes at FirstCycle (or at the range
	// end when Diverged is false).
	A, B Probe
	// Probes counts the replays each side performed.
	Probes int
}

// String renders the verdict on one line.
func (r *Report) String() string {
	if !r.Diverged {
		return fmt.Sprintf("no divergence through cycle %d (%d probes per side)", r.A.Cycle, r.Probes)
	}
	return fmt.Sprintf("first divergence at cycle %d in component %q (%d probes per side)",
		r.FirstCycle, r.Component, r.Probes)
}

// FirstDivergence binary-searches [lo, hi] for the first cycle at
// which the two runs' state digests differ. lo must be a cycle where
// they agree (0 — or the nearest shared checkpoint's cycle — always
// qualifies for runs of the same config); hi is the upper bound, -1
// meaning run to completion. Determinism makes divergence monotone:
// once state differs it differs forever, which is what the binary
// search relies on.
func FirstDivergence(a, b Runner, lo, hi int64) (*Report, error) {
	probes := 0
	probe := func(cycle int64) (Probe, Probe, error) {
		probes++
		pa, err := a.ProbeAt(cycle)
		if err != nil {
			return Probe{}, Probe{}, fmt.Errorf("run A: %w", err)
		}
		pb, err := b.ProbeAt(cycle)
		if err != nil {
			return Probe{}, Probe{}, fmt.Errorf("run B: %w", err)
		}
		return pa, pb, nil
	}

	la, lb, err := probe(lo)
	if err != nil {
		return nil, err
	}
	if !agree(la, lb) {
		return nil, fmt.Errorf("bisect: runs already differ at lower bound %d (component %q); lower the bound",
			lo, firstDiff(la, lb))
	}
	ha, hb, err := probe(hi)
	if err != nil {
		return nil, err
	}
	if agree(ha, hb) {
		return &Report{Diverged: false, A: ha, B: hb, Probes: probes}, nil
	}
	hiCycle := hi
	if hiCycle < 0 {
		// Completion probes: bound the search by the later finisher.
		hiCycle = ha.Cycle
		if hb.Cycle > hiCycle {
			hiCycle = hb.Cycle
		}
	}

	best := Report{Diverged: true, FirstCycle: divergedAt(hiCycle, ha, hb), Component: firstDiff(ha, hb), A: ha, B: hb}
	for hiCycle-lo > 1 {
		mid := lo + (hiCycle-lo)/2
		ma, mb, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if agree(ma, mb) {
			lo = mid
		} else {
			hiCycle = mid
			best = Report{Diverged: true, FirstCycle: divergedAt(mid, ma, mb), Component: firstDiff(ma, mb), A: ma, B: mb}
		}
	}
	best.Probes = probes
	return &best, nil
}

// NearestShared scans two checkpoint directories (from two runs of the
// same workload) and returns the highest cycle at which both hold a
// checkpoint with identical per-component digests — the natural lower
// bound for FirstDivergence, found without any replay. It returns 0
// (always a valid lower bound) when the directories share no agreeing
// checkpoint.
func NearestShared(dirA, dirB string) (int64, error) {
	a, err := digestsByCycle(dirA)
	if err != nil {
		return 0, err
	}
	b, err := digestsByCycle(dirB)
	if err != nil {
		return 0, err
	}
	cycles := make([]int64, 0, len(a))
	for cycle := range a {
		cycles = append(cycles, cycle)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] > cycles[j] })
	for _, cycle := range cycles {
		if db, ok := b[cycle]; ok && digestsEqual(a[cycle], db) {
			return cycle, nil
		}
	}
	return 0, nil
}

func digestsByCycle(dir string) (map[int64][]ckpt.SectionDigest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[int64][]ckpt.SectionDigest)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		c, err := ckpt.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue // unreadable checkpoints just don't contribute
		}
		out[c.Cycle] = c.Digests()
	}
	return out, nil
}

func digestsEqual(a, b []ckpt.SectionDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
