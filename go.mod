module gpues

go 1.22
