// Resilience trials: run a launch under deterministic bit-flip
// injection and classify what the flips did to it. The classifier is
// the contract of the campaign — every trial lands in exactly one
// outcome class, and because the injector, the simulator, and the
// functional oracle are all deterministic, reruns of the same
// (config, spec, seed) reproduce the classification bit for bit.
package sim

import (
	"errors"
	"fmt"

	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/excep"
)

// TrialOptions bounds one resilience trial.
type TrialOptions struct {
	// MaxCycles caps the timing run (0 keeps the simulator default);
	// trials that exceed the cap classify as hangs.
	MaxCycles int64
	// MaxWarpInsts caps functional emulation per warp (0 keeps the
	// emulator default); a flipped loop bound then hangs functionally
	// instead of running for the full default budget.
	MaxWarpInsts int
	// MaxMismatches caps the recorded SDC evidence (0 = the chaos
	// oracle's default cap).
	MaxMismatches int
}

// Trial is one classified flip-injection run.
type Trial struct {
	Outcome excep.Outcome
	// Flips is the number of architectural bit flips injected.
	Flips int64
	// Cycles is the simulated cycle the trial ended at.
	Cycles int64
	// Excep is the structured device exception for OutcomeException.
	Excep *excep.Error
	// Err is the terminal error behind crash and hang outcomes.
	Err error
	// Mismatches is the capped list of corrupted result bytes behind
	// OutcomeSDC.
	Mismatches []emu.Mismatch
}

// RunResilienceTrial runs cfg/spec once — cfg.Excep.Flip chooses the
// flip seed, rate, and thread protection — and classifies the outcome:
//
//	masked     completed, memory byte-identical to the clean oracle
//	sdc        completed, memory differs (silent data corruption)
//	exception  terminated by a device-raised exception
//	hang       stopped making progress (watchdog, cycle cap, deadlock,
//	           or functional non-termination)
//	crash      any other terminal failure
//
// The oracle is a fresh flip-free functional execution of the grid
// from the initial memory image, so masked-vs-SDC is exact, not
// heuristic.
func RunResilienceTrial(cfg config.Config, spec LaunchSpec, opt TrialOptions) (*Trial, error) {
	if spec.Memory == nil {
		return nil, fmt.Errorf("sim: launch spec needs memory")
	}
	snapshot := spec.Memory.Clone()
	s, err := New(cfg, spec)
	if err != nil {
		return nil, err
	}
	if opt.MaxCycles > 0 {
		s.MaxCycles = opt.MaxCycles
	}
	if opt.MaxWarpInsts > 0 {
		s.emul.MaxWarpInsts = opt.MaxWarpInsts
	}
	r, runErr := s.Run()
	if r == nil {
		r = s.Collect()
	}
	t := &Trial{Flips: r.Flips, Cycles: r.Cycles, Err: runErr}
	if runErr == nil {
		maxMis := opt.MaxMismatches
		if maxMis <= 0 {
			maxMis = maxOracleMismatches
		}
		oracle, oerr := oracleMemory(spec.Launch, snapshot, cfg.SM.L1LineB)
		if oerr != nil {
			return nil, fmt.Errorf("sim: functional oracle failed: %w", oerr)
		}
		t.Mismatches = spec.Memory.Diff(oracle, maxMis)
		if len(t.Mismatches) == 0 {
			t.Outcome = excep.OutcomeMasked
		} else {
			t.Outcome = excep.OutcomeSDC
		}
		return t, nil
	}
	var ee *excep.Error
	var he *emu.HangError
	var se *StallError
	switch {
	case errors.As(runErr, &ee):
		t.Outcome = excep.OutcomeException
		t.Excep = ee
	case errors.As(runErr, &he):
		t.Outcome = excep.OutcomeHang
	case errors.As(runErr, &se) && stallIsHang(se.Report.Reason):
		t.Outcome = excep.OutcomeHang
	default:
		t.Outcome = excep.OutcomeCrash
	}
	return t, nil
}

// stallIsHang separates non-termination stall reasons from structural
// failures: the former are the hang class, the latter crashes.
func stallIsHang(reason string) bool {
	switch reason {
	case "watchdog", "max-cycles", "deadlock":
		return true
	}
	return false
}
