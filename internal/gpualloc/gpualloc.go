// Package gpualloc implements a Halloc-style high-throughput dynamic
// memory allocator for the GPU device heap [Adinetz & Pleiter 2014],
// the allocator whose benchmark suite the paper uses to evaluate local
// fault handling (Section 5.4, Figure 13).
//
// The design follows Halloc's structure: the heap is carved into fixed
// 1 MiB superblocks; each superblock is dedicated to one size class and
// subdivided into equal chunks tracked by a lock-free occupancy bitmap.
// Allocation hashes the requesting thread onto a bitmap word and claims
// a free bit with an atomic step sequence, so concurrent threads spread
// across the bitmap instead of contending on a single head pointer.
// Allocations larger than the biggest size class fall back to a
// coarse-grained superblock-granular path.
//
// Why this exists in Go rather than in the simulated ISA: the paper's
// Figure 13 workloads need the *address stream* of dynamic allocation —
// scattered first touches of heap pages — not the allocator's own
// instruction timing (the fault handling cost is the measured 20 us
// constant). Workload builders call this allocator while generating
// kernels, and the kernels then touch the returned addresses, faulting
// exactly like device-malloc code would. The allocator is nonetheless a
// faithful concurrent implementation, safe for parallel use.
package gpualloc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// SuperblockSize is the granularity at which the heap is carved up.
const SuperblockSize = 1 << 20

// sizeClasses are the chunk sizes served by slab superblocks.
var sizeClasses = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// MaxSlabAlloc is the largest request served from slabs; larger
// requests take whole superblocks.
const MaxSlabAlloc = 4096

type superblock struct {
	base   uint64
	class  int // index into sizeClasses, -1 for large allocations
	chunks int
	words  []atomic.Uint64 // occupancy bitmap
	used   atomic.Int64
}

// Allocator is a device-heap allocator over a virtual address range.
type Allocator struct {
	base uint64
	size uint64

	mu     sync.Mutex // guards superblock creation / recycling only
	nextSB uint64
	freeSB []uint64
	// slabs[class] is the list of superblocks serving that class.
	slabs  [][]*superblock
	large  map[uint64]int // base -> superblock count, for large allocs
	byBase map[uint64]*superblock

	allocs atomic.Int64
	frees  atomic.Int64
}

// New builds an allocator over [base, base+size). Size must be a
// multiple of the superblock size.
func New(base, size uint64) (*Allocator, error) {
	if size == 0 || size%SuperblockSize != 0 {
		return nil, fmt.Errorf("gpualloc: heap size %d not a positive multiple of %d", size, SuperblockSize)
	}
	if base%SuperblockSize != 0 {
		return nil, fmt.Errorf("gpualloc: heap base %#x not superblock-aligned", base)
	}
	return &Allocator{
		base:   base,
		size:   size,
		nextSB: base,
		slabs:  make([][]*superblock, len(sizeClasses)),
		large:  make(map[uint64]int),
		byBase: make(map[uint64]*superblock),
	}, nil
}

// Base returns the heap's base address.
func (a *Allocator) Base() uint64 { return a.base }

// Size returns the heap size in bytes.
func (a *Allocator) Size() uint64 { return a.size }

// LiveAllocs returns the number of outstanding allocations.
func (a *Allocator) LiveAllocs() int64 { return a.allocs.Load() - a.frees.Load() }

func classFor(size int) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1
}

// newSuperblock carves a run of n fresh superblocks.
func (a *Allocator) newSuperblock(n uint64) (uint64, error) {
	// Reuse a recycled superblock when a single one is needed.
	if n == 1 && len(a.freeSB) > 0 {
		b := a.freeSB[len(a.freeSB)-1]
		a.freeSB = a.freeSB[:len(a.freeSB)-1]
		return b, nil
	}
	need := n * SuperblockSize
	if a.nextSB+need > a.base+a.size {
		return 0, fmt.Errorf("gpualloc: out of device heap (%d of %d bytes used)",
			a.nextSB-a.base, a.size)
	}
	b := a.nextSB
	a.nextSB += need
	return b, nil
}

// Alloc returns the device address of a new allocation of the given
// size, like device-side malloc. Safe for concurrent use.
func (a *Allocator) Alloc(thread int, size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpualloc: allocation of %d bytes", size)
	}
	class := classFor(size)
	if class < 0 {
		return a.allocLarge(size)
	}
	for {
		sb := a.pickSuperblock(class)
		if addr, ok := sb.claim(thread); ok {
			a.allocs.Add(1)
			return addr, nil
		}
		// Superblock full: grow the class.
		if err := a.growClass(class, sb); err != nil {
			return 0, err
		}
	}
}

// pickSuperblock returns a superblock of the class with expected free
// space, creating the first one on demand. Threads spread over the
// class's superblocks by hashing.
func (a *Allocator) pickSuperblock(class int) *superblock {
	a.mu.Lock()
	defer a.mu.Unlock()
	list := a.slabs[class]
	// Prefer the emptiest superblock of the class.
	var best *superblock
	for _, sb := range list {
		if best == nil || sb.used.Load() < best.used.Load() {
			best = sb
		}
	}
	if best != nil && best.used.Load() < int64(best.chunks) {
		return best
	}
	sb, err := a.addSuperblockLocked(class)
	if err != nil && best != nil {
		return best // let the caller observe fullness and fail upward
	}
	if err != nil {
		// Out of heap entirely: return a dummy full superblock so the
		// caller's claim fails and growClass reports the error.
		return &superblock{class: class}
	}
	return sb
}

func (a *Allocator) addSuperblockLocked(class int) (*superblock, error) {
	base, err := a.newSuperblock(1)
	if err != nil {
		return nil, err
	}
	chunk := sizeClasses[class]
	chunks := SuperblockSize / chunk
	sb := &superblock{
		base:   base,
		class:  class,
		chunks: chunks,
		words:  make([]atomic.Uint64, (chunks+63)/64),
	}
	a.slabs[class] = append(a.slabs[class], sb)
	a.byBase[base] = sb
	return sb, nil
}

func (a *Allocator) growClass(class int, full *superblock) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Another thread may have grown the class already.
	for _, sb := range a.slabs[class] {
		if sb != full && sb.used.Load() < int64(sb.chunks) {
			return nil
		}
	}
	_, err := a.addSuperblockLocked(class)
	return err
}

// claim finds and sets a free bit, starting from a hash of the thread
// id (Halloc's contention-spreading trick).
func (sb *superblock) claim(thread int) (uint64, bool) {
	if sb.chunks == 0 {
		return 0, false
	}
	if sb.used.Load() >= int64(sb.chunks) {
		return 0, false
	}
	n := len(sb.words)
	start := (thread * 2654435761) % n
	if start < 0 {
		start += n
	}
	for i := 0; i < n; i++ {
		w := &sb.words[(start+i)%n]
		for {
			old := w.Load()
			if old == ^uint64(0) {
				break // word full
			}
			bit := freeBit(old, (start+i)%n, sb.chunks)
			if bit < 0 {
				break
			}
			if w.CompareAndSwap(old, old|(1<<uint(bit))) {
				sb.used.Add(1)
				idx := ((start+i)%n)*64 + bit
				return sb.base + uint64(idx*sizeClasses[sb.class]), true
			}
		}
	}
	return 0, false
}

// freeBit returns the lowest clear bit of w that maps to a valid chunk,
// or -1.
func freeBit(w uint64, wordIdx, chunks int) int {
	for b := 0; b < 64; b++ {
		if w&(1<<uint(b)) == 0 {
			if wordIdx*64+b < chunks {
				return b
			}
			return -1
		}
	}
	return -1
}

func (a *Allocator) allocLarge(size int) (uint64, error) {
	n := uint64((size + SuperblockSize - 1) / SuperblockSize)
	a.mu.Lock()
	defer a.mu.Unlock()
	base, err := a.newSuperblock(n)
	if err != nil {
		return 0, err
	}
	a.large[base] = int(n)
	a.allocs.Add(1)
	return base, nil
}

// Free releases an allocation returned by Alloc. Safe for concurrent
// use.
func (a *Allocator) Free(addr uint64) error {
	sbBase := addr &^ (SuperblockSize - 1)
	a.mu.Lock()
	if n, ok := a.large[sbBase]; ok && addr == sbBase {
		delete(a.large, sbBase)
		for i := 0; i < n; i++ {
			a.freeSB = append(a.freeSB, sbBase+uint64(i*SuperblockSize))
		}
		a.mu.Unlock()
		a.frees.Add(1)
		return nil
	}
	sb := a.byBase[sbBase]
	a.mu.Unlock()
	if sb == nil {
		return fmt.Errorf("gpualloc: free of unallocated address %#x", addr)
	}
	chunk := sizeClasses[sb.class]
	off := addr - sb.base
	if off%uint64(chunk) != 0 {
		return fmt.Errorf("gpualloc: free of misaligned address %#x (class %d)", addr, chunk)
	}
	idx := int(off) / chunk
	w := &sb.words[idx/64]
	mask := uint64(1) << uint(idx%64)
	for {
		old := w.Load()
		if old&mask == 0 {
			return fmt.Errorf("gpualloc: double free of %#x", addr)
		}
		if w.CompareAndSwap(old, old&^mask) {
			sb.used.Add(-1)
			a.frees.Add(1)
			return nil
		}
	}
}
