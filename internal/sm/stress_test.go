package sm

import (
	"fmt"
	"math/rand"
	"testing"

	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/vm"
)

// Randomized pipeline stress: generate random warp traces (ALU and
// global memory instructions with random register dependencies), inject
// faults on random pages, and check the pipeline's accounting
// invariants — every instruction commits exactly once, every squash is
// replayed, and the scoreboards are clean at the end.

// randTrace builds a random trace of n instructions for one warp, plus
// its backing static code. Page addresses come from the given pool.
func randTrace(rng *rand.Rand, n int, pages []uint64, code *[]isa.Instruction) []emu.TraceInst {
	full := ^uint32(0)
	var insts []emu.TraceInst
	for i := 0; i < n; i++ {
		var in isa.Instruction
		switch rng.Intn(5) {
		case 0, 1: // ALU with random deps
			in = isa.NewInstruction(isa.OpIAdd)
			in.Dst = isa.Reg(rng.Intn(24))
			in.SrcA = isa.Reg(rng.Intn(24))
			in.SrcB = isa.Reg(rng.Intn(24))
		case 2: // load
			in = isa.NewInstruction(isa.OpLdGlobal)
			in.Dst = isa.Reg(rng.Intn(24))
			in.SrcA = isa.Reg(rng.Intn(24))
			in.Size = 8
		case 3: // store
			in = isa.NewInstruction(isa.OpStGlobal)
			in.SrcA = isa.Reg(rng.Intn(24))
			in.SrcB = isa.Reg(rng.Intn(24))
			in.Size = 8
		case 4: // FMA chain
			in = isa.NewInstruction(isa.OpFFma)
			in.Dst = isa.Reg(rng.Intn(24))
			in.SrcA = isa.Reg(rng.Intn(24))
			in.SrcB = isa.Reg(rng.Intn(24))
			in.SrcC = isa.Reg(rng.Intn(24))
		}
		*code = append(*code, in)
		ti := emu.TraceInst{PC: int32(len(*code) - 1), Static: &(*code)[len(*code)-1], Mask: full}
		if in.IsGlobalMem() {
			nl := 1 + rng.Intn(3)
			for j := 0; j < nl; j++ {
				page := pages[rng.Intn(len(pages))]
				ti.Lines = append(ti.Lines, page+uint64(rng.Intn(32))*128)
			}
		}
		insts = append(insts, ti)
	}
	ex := isa.NewInstruction(isa.OpExit)
	*code = append(*code, ex)
	insts = append(insts, emu.TraceInst{PC: int32(len(*code) - 1), Static: &(*code)[len(*code)-1], Mask: full})
	return insts
}

func stressOnce(t *testing.T, seed int64, scheme config.Scheme, inject bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pages := make([]uint64, 8)
	for i := range pages {
		pages[i] = uint64(0x100000 + i*0x1000)
	}

	var code []isa.Instruction
	code = make([]isa.Instruction, 0, 4096) // stable backing array for Static pointers

	const (
		warps  = 4
		blocks = 3
	)
	var traces []*emu.BlockTrace
	total := 0
	for b := 0; b < blocks; b++ {
		bt := &emu.BlockTrace{BlockID: b}
		for w := 0; w < warps; w++ {
			insts := randTrace(rng, 20+rng.Intn(40), pages, &code)
			total += len(insts)
			bt.Warps = append(bt.Warps, emu.WarpTrace{WarpID: w, Insts: insts})
		}
		traces = append(traces, bt)
	}

	k := &kernel.Kernel{Name: "stress", Code: code, RegsPerThread: 48}
	launch := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: warps * 32}}
	h := newHarnessCfg(t, scheme, traces, launch, func(cfg *config.Config) {
		cfg.SM.MaxThreadBlocks = 2 // force one pending block
	})

	if inject {
		// Random pages fault until resolved.
		for _, p := range pages {
			if rng.Intn(2) == 0 {
				h.fault[p] = vm.FaultMigrate
			}
		}
	}

	// Drive with periodic fault resolution.
	for i := 0; i < 1_000_000; i++ {
		if h.sm.Done() {
			break
		}
		if len(h.sink.pending) > 0 && rng.Intn(50) == 0 {
			h.sink.resolveAll(int64(10 + rng.Intn(5000)))
		}
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, ok := h.q.NextEvent()
			if !ok {
				if len(h.sink.pending) > 0 {
					h.sink.resolveAll(100)
					continue
				}
				t.Fatalf("seed %d: deadlock at cycle %d with no pending faults", seed, h.q.Now())
			}
			h.q.SkipTo(next)
		}
	}
	if !h.sm.Done() {
		t.Fatalf("seed %d: SM never finished", seed)
	}

	st := h.sm.Stats()
	// Every dynamic instruction commits exactly once; replays re-commit
	// squashed ones, which the counter does not double-count.
	if st.Committed != int64(total) {
		t.Errorf("seed %d: committed %d of %d instructions", seed, st.Committed, total)
	}
	if st.Replays != st.Squashed {
		t.Errorf("seed %d: %d squashes but %d replays", seed, st.Squashed, st.Replays)
	}
	if inject && scheme.Preemptible() && st.Faults > 0 && st.Squashed == 0 {
		t.Errorf("seed %d: faults without squashes under %v", seed, scheme)
	}
	if h.src.done != blocks {
		t.Errorf("seed %d: %d blocks completed, want %d", seed, h.src.done, blocks)
	}
}

func TestStressFaultFree(t *testing.T) {
	for _, scheme := range []config.Scheme{
		config.Baseline, config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				stressOnce(t, seed, scheme, false)
			}
		})
	}
}

func TestStressWithFaults(t *testing.T) {
	for _, scheme := range []config.Scheme{
		config.Baseline, config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for seed := int64(100); seed < 115; seed++ {
				stressOnce(t, seed, scheme, true)
			}
		})
	}
}

// TestStressSchemesAgreeOnWork: all schemes retire the same instruction
// count for the same trace (they differ only in timing).
func TestStressSchemesAgreeOnWork(t *testing.T) {
	counts := map[config.Scheme]int64{}
	for _, scheme := range []config.Scheme{
		config.Baseline, config.WarpDisableCommit, config.ReplayQueue, config.OperandLog,
	} {
		rng := rand.New(rand.NewSource(7))
		pages := []uint64{0x100000, 0x101000}
		var code []isa.Instruction
		code = make([]isa.Instruction, 0, 1024)
		bt := &emu.BlockTrace{BlockID: 0}
		for w := 0; w < 2; w++ {
			bt.Warps = append(bt.Warps, emu.WarpTrace{WarpID: w, Insts: randTrace(rng, 30, pages, &code)})
		}
		k := &kernel.Kernel{Name: "agree", Code: code, RegsPerThread: 48}
		launch := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 64}}
		h := newHarness(t, scheme, []*emu.BlockTrace{bt}, launch)
		h.run(1_000_000)
		counts[scheme] = h.sm.Stats().Committed
	}
	want := counts[config.Baseline]
	for s, c := range counts {
		if c != want {
			t.Errorf("%v committed %d, baseline %d", s, c, want)
		}
	}
}

// invariantCheck exposes scoreboard state for the stress tests.
func (s *SM) scoreboardsClean() error {
	for _, w := range s.warps {
		if w == nil {
			continue
		}
		for i, c := range w.pendRead {
			if c != 0 {
				return fmt.Errorf("warp %d: pendRead[r%d] = %d", w.idx, i, c)
			}
		}
		for i, bits := range w.pendWrite {
			if bits != 0 {
				return fmt.Errorf("warp %d: pendWrite[%d] = %#x", w.idx, i, bits)
			}
		}
	}
	return nil
}

func TestScoreboardsCleanAfterRun(t *testing.T) {
	bt, launch, _ := figure3Trace()
	for _, scheme := range []config.Scheme{config.Baseline, config.ReplayQueue, config.OperandLog} {
		h := newHarness(t, scheme, []*emu.BlockTrace{bt}, launch)
		h.run(100000)
		if err := h.sm.scoreboardsClean(); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

// TestGreedyIssuePolicy: the greedy-then-oldest scheduler is a valid
// alternative policy — same committed work, different issue interleaving.
func TestGreedyIssuePolicy(t *testing.T) {
	for _, greedy := range []bool{false, true} {
		bt, launch, _ := figure3Trace()
		h := newHarnessCfg(t, config.Baseline, []*emu.BlockTrace{bt}, launch,
			func(cfg *config.Config) { cfg.SM.GreedyIssue = greedy })
		h.run(100000)
		if got := h.sm.Stats().Committed; got != 5 {
			t.Errorf("greedy=%v: committed %d, want 5", greedy, got)
		}
	}
}
