package sm

import (
	"fmt"
	"sort"

	"gpues/internal/ckpt"
)

// SaveState serializes the SM: statistics and scheduler scalars
// (installable), the buffered-instruction mask, and a full structural
// record of every resident and switched-out block — per-warp cursors,
// replay queues, scoreboards and stall stamps. In-flight instructions
// live as pooled flights referenced by scheduled closures, so flights
// themselves are represented only by the per-warp counts and flags
// that name them; replay rebuilds the objects.
func (s *SM) SaveState(w *ckpt.Writer) {
	w.I64(s.stats.Cycles)
	w.I64(s.stats.ActiveCycles)
	w.I64(s.stats.Committed)
	w.I64(s.stats.Issued)
	w.I64(s.stats.Fetched)
	w.I64(s.stats.GlobalMemInsts)
	w.I64(s.stats.MemRequests)
	w.I64(s.stats.Faults)
	w.I64(s.stats.Squashed)
	w.I64(s.stats.Replays)
	w.I64(s.stats.BlocksRun)
	w.I64(s.stats.SwitchesOut)
	w.I64(s.stats.SwitchesIn)
	w.I64(s.stats.ContextBytes)
	w.I64(s.stats.IssueStallLog)
	w.I64(s.stats.IssueStallScore)
	w.I64(s.stats.IssueStallChaos)
	w.I64(s.stats.Exceptions)
	for _, v := range s.stats.Stalls {
		w.I64(v)
	}

	w.Int(s.lastFetch)
	w.Int(s.lastIssue)
	w.Bool(s.idle)
	w.Int(s.assigned)
	w.Int(len(s.bufMask))
	for _, m := range s.bufMask {
		w.U64(m)
	}

	w.Int(len(s.slots))
	for _, b := range s.slots {
		if b == nil {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		saveBlock(w, b)
	}
	w.Int(len(s.offchip))
	for _, b := range s.offchip {
		saveBlock(w, b)
	}
}

func saveBlock(w *ckpt.Writer, b *blockRT) {
	w.Int(b.id)
	w.Int(b.slot)
	w.U64(uint64(b.state))
	w.Int(b.liveWarps)
	w.Int(b.barrierCount)
	w.Int(b.logUsed)
	w.Int(b.pendingFaults)
	w.Int(b.contextBytes)
	w.I64(b.switchOutStart)
	w.Bool(b.excepted)
	w.Int(len(b.warps))
	for _, wr := range b.warps {
		saveWarp(w, wr)
	}
}

func saveWarp(w *ckpt.Writer, wr *warpRT) {
	w.Int(wr.idx)
	w.Int(wr.cursor)
	w.Int(len(wr.replay))
	for _, t := range wr.replay {
		w.U64(uint64(t))
	}
	w.Bool(wr.buf != nil)
	if wr.buf != nil {
		w.U64(uint64(wr.buf.tIdx))
	}
	w.I64(wr.bufReady)
	w.U64(uint64(wr.fetchBlock))
	w.Bool(wr.fetchOwner != nil)
	for _, p := range wr.pendWrite {
		w.U64(p)
	}
	w.Bytes(wr.pendRead[:])
	w.Int(wr.inFlight)
	w.Bool(wr.atBarrier)
	w.Bool(wr.barFlight != nil)
	w.Int(wr.faultsOutstanding)
	w.Bool(wr.done)
	w.Bool(wr.excep != nil)
	w.Bool(wr.excepDone)
	w.I64(wr.faultWaitStart)
	w.I64(wr.barStart)
	w.I64(wr.fetchBlockStart)

	tIdxs := make([]int32, 0, len(wr.heldSrcs))
	for t := range wr.heldSrcs {
		tIdxs = append(tIdxs, t)
	}
	sort.Slice(tIdxs, func(i, j int) bool { return tIdxs[i] < tIdxs[j] })
	w.Int(len(tIdxs))
	for _, t := range tIdxs {
		w.U64(uint64(t))
		regs := wr.heldSrcs[t]
		w.Int(len(regs))
		for _, reg := range regs {
			w.U64(uint64(reg))
		}
	}
}

// RestoreState reads the SaveState stream back: statistics and
// scheduler scalars are installed, the structural block/warp records
// are consumed and cross-checked against the replayed population
// (replay already rebuilt the closure-bound pipeline state).
func (s *SM) RestoreState(r *ckpt.Reader) error {
	s.stats.Cycles = r.I64()
	s.stats.ActiveCycles = r.I64()
	s.stats.Committed = r.I64()
	s.stats.Issued = r.I64()
	s.stats.Fetched = r.I64()
	s.stats.GlobalMemInsts = r.I64()
	s.stats.MemRequests = r.I64()
	s.stats.Faults = r.I64()
	s.stats.Squashed = r.I64()
	s.stats.Replays = r.I64()
	s.stats.BlocksRun = r.I64()
	s.stats.SwitchesOut = r.I64()
	s.stats.SwitchesIn = r.I64()
	s.stats.ContextBytes = r.I64()
	s.stats.IssueStallLog = r.I64()
	s.stats.IssueStallScore = r.I64()
	s.stats.IssueStallChaos = r.I64()
	s.stats.Exceptions = r.I64()
	for i := range s.stats.Stalls {
		s.stats.Stalls[i] = r.I64()
	}

	s.lastFetch = r.Int()
	s.lastIssue = r.Int()
	s.idle = r.Bool()
	s.assigned = r.Int()
	nm := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nm != len(s.bufMask) {
		return fmt.Errorf("sm %d: %d bufMask words, checkpoint has %d", s.ID, len(s.bufMask), nm)
	}
	for i := range s.bufMask {
		s.bufMask[i] = r.U64()
	}

	ns := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if ns != len(s.slots) {
		return fmt.Errorf("sm %d: %d block slots, checkpoint has %d", s.ID, len(s.slots), ns)
	}
	for i, b := range s.slots {
		present := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if present != (b != nil) {
			return fmt.Errorf("sm %d: slot %d occupancy does not match checkpoint", s.ID, i)
		}
		if present {
			if err := skipBlock(r, b); err != nil {
				return fmt.Errorf("sm %d slot %d: %w", s.ID, i, err)
			}
		}
	}
	no := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if no != len(s.offchip) {
		return fmt.Errorf("sm %d: %d off-chip blocks, checkpoint has %d", s.ID, len(s.offchip), no)
	}
	for i, b := range s.offchip {
		if err := skipBlock(r, b); err != nil {
			return fmt.Errorf("sm %d off-chip %d: %w", s.ID, i, err)
		}
	}
	return r.Err()
}

// skipBlock consumes one block record (the mirror of saveBlock),
// cross-checking identity against the replayed block.
func skipBlock(r *ckpt.Reader, b *blockRT) error {
	id := r.Int()
	r.Int() // slot
	state := blockState(r.U64())
	r.Int()  // liveWarps
	r.Int()  // barrierCount
	r.Int()  // logUsed
	r.Int()  // pendingFaults
	r.Int()  // contextBytes
	r.I64()  // switchOutStart
	r.Bool() // excepted
	nw := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if id != b.id || state != b.state {
		return fmt.Errorf("replayed block %d (state %d), checkpoint has block %d (state %d)",
			b.id, b.state, id, state)
	}
	if nw != len(b.warps) {
		return fmt.Errorf("block %d: %d warps, checkpoint has %d", b.id, len(b.warps), nw)
	}
	for _, wr := range b.warps {
		if err := skipWarp(r, wr); err != nil {
			return fmt.Errorf("block %d: %w", b.id, err)
		}
	}
	return r.Err()
}

// skipWarp consumes one warp record (the mirror of saveWarp).
func skipWarp(r *ckpt.Reader, wr *warpRT) error {
	idx := r.Int()
	r.Int() // cursor
	nr := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if idx != wr.idx {
		return fmt.Errorf("replayed warp %d, checkpoint has warp %d", wr.idx, idx)
	}
	for i := 0; i < nr; i++ {
		r.U64() // replay-queue entry
	}
	if r.Bool() { // buffered instruction present
		r.U64() // its trace index
	}
	r.I64()  // bufReady
	r.U64()  // fetchBlock
	r.Bool() // fetchOwner present
	for i := 0; i < len(wr.pendWrite); i++ {
		r.U64()
	}
	r.Bytes() // pendRead
	r.Int()   // inFlight
	r.Bool()  // atBarrier
	r.Bool()  // barFlight present
	r.Int()   // faultsOutstanding
	r.Bool()  // done
	r.Bool()  // excep present
	r.Bool()  // excepDone
	r.I64()   // faultWaitStart
	r.I64()   // barStart
	r.I64()   // fetchBlockStart
	nh := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nh; i++ {
		r.U64()
		ng := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for j := 0; j < ng; j++ {
			r.U64()
		}
	}
	return r.Err()
}
