package noalloc_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "testdata/src/na",
		"gpues/internal/analysis/noalloc/testdata/src/na")
}
