package emu

import (
	"strings"
	"testing"

	"gpues/internal/excep"
	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// emuRaise emulates block 0 of a one-block launch and returns the
// exception record of the first warp that raised one, failing the test
// when emulation errors or no warp raised.
func emuRaise(t *testing.T, l *kernel.Launch) (*BlockTrace, *excep.Record) {
	t.Helper()
	e, err := New(l, NewMemory(), 128)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bt.Warps {
		if bt.Warps[i].Excep != nil {
			return bt, bt.Warps[i].Excep
		}
	}
	t.Fatal("no warp raised a device exception")
	return nil, nil
}

func oneBlock(k *kernel.Kernel, threads int) *kernel.Launch {
	return &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: threads}}
}

func TestAssertRaisesAndTruncates(t *testing.T) {
	b := kernel.NewBuilder("assert")
	tid, cond, x := b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTidX)                  // pc 0
	b.SetP(isa.CmpNE, cond, tid, isa.RZ, 5) // pc 1
	b.Assert(cond, 3)                       // pc 2: fails on lane 5
	b.MovI(x, 1)                            // pc 3: must never trace
	b.Exit()
	bt, r := emuRaise(t, oneBlock(b.MustBuild(), 32))

	if r.Kind != excep.KindAssert {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindAssert)
	}
	if r.Lane != 5 || r.Warp != 0 || r.Block != 0 {
		t.Errorf("raised at block %d warp %d lane %d, want 0/0/5", r.Block, r.Warp, r.Lane)
	}
	if r.PC != 2 {
		t.Errorf("faulting PC = %d, want 2", r.PC)
	}
	if !strings.Contains(r.Detail, "assert 3") {
		t.Errorf("detail %q does not name assert id 3", r.Detail)
	}
	// The trace ends just before the faulting instruction.
	insts := bt.Warps[0].Insts
	if len(insts) == 0 || insts[len(insts)-1].PC != 1 {
		t.Fatalf("trace must end at pc 1 (pre-assert), got %v", insts)
	}
	for _, ti := range insts {
		if ti.PC >= 2 {
			t.Errorf("instruction at pc %d traced past the fault", ti.PC)
		}
	}
	if len(r.Frames) == 0 {
		t.Fatal("record has no stack frames")
	}
	if top := r.Frames[len(r.Frames)-1]; top.PC != r.PC {
		t.Errorf("top frame PC = %d, want faulting PC %d", top.PC, r.PC)
	}
}

// TestDivergentAssertFrames raises inside a divergent region: the
// record must carry the divergence stack — a base frame plus the branch
// frame whose mask names exactly the lanes that took the faulting path.
func TestDivergentAssertFrames(t *testing.T) {
	b := kernel.NewBuilder("divassert")
	lane, p, q, v := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	thenL, recon := b.NewLabel(), b.NewLabel()
	b.S2R(lane, isa.SRLaneID)
	b.SetP(isa.CmpLT, p, lane, isa.RZ, 16)
	b.BraIf(p, false, thenL, recon)
	b.MovI(v, 2) // else path
	b.Bra(recon)
	b.Bind(thenL)
	b.SetP(isa.CmpNE, q, lane, isa.RZ, 3)
	b.Assert(q, 11) // fails on lane 3 of the taken path
	b.Bind(recon)
	b.Exit()
	_, r := emuRaise(t, oneBlock(b.MustBuild(), 32))

	if r.Kind != excep.KindAssert || r.Lane != 3 {
		t.Errorf("got %v at lane %d, want assert at lane 3", r.Kind, r.Lane)
	}
	if len(r.Frames) < 2 {
		t.Fatalf("got %d stack frames, want >= 2 (base + divergent branch)", len(r.Frames))
	}
	top := r.Frames[len(r.Frames)-1]
	if top.Mask != 0x0000ffff {
		t.Errorf("top frame mask = %08x, want 0000ffff (lanes 0-15)", top.Mask)
	}
	if top.PC != r.PC {
		t.Errorf("top frame PC = %d, want faulting PC %d", top.PC, r.PC)
	}
}

func TestTrapRaises(t *testing.T) {
	b := kernel.NewBuilder("trap")
	lane, p := b.Reg(), b.Reg()
	b.S2R(lane, isa.SRLaneID)
	b.SetP(isa.CmpEQ, p, lane, isa.RZ, 7)
	b.TrapIf(p, false, 9)
	b.Exit()
	_, r := emuRaise(t, oneBlock(b.MustBuild(), 32))

	if r.Kind != excep.KindTrap {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindTrap)
	}
	if r.Lane != 7 {
		t.Errorf("lane = %d, want 7", r.Lane)
	}
	if !strings.Contains(r.Detail, "trap 9") {
		t.Errorf("detail %q does not name trap code 9", r.Detail)
	}
}

func TestMallocWithoutHeapRaisesOOM(t *testing.T) {
	b := kernel.NewBuilder("noheap")
	d := b.Reg()
	b.Malloc(d, isa.RZ, 64)
	b.Exit()
	_, r := emuRaise(t, oneBlock(b.MustBuild(), 32))
	if r.Kind != excep.KindDeviceOOM {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindDeviceOOM)
	}
}

func TestMallocExhaustionRaisesOOM(t *testing.T) {
	b := kernel.NewBuilder("oom")
	d := b.Reg()
	b.Malloc(d, isa.RZ, 1<<21) // 2 MiB per lane from a 1 MiB heap
	b.Exit()
	l := oneBlock(b.MustBuild(), 32)
	l.HeapBase, l.HeapBytes = 1<<20, 1<<20
	_, r := emuRaise(t, l)
	if r.Kind != excep.KindDeviceOOM {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindDeviceOOM)
	}
}

func TestMallocSucceedsWithinHeap(t *testing.T) {
	b := kernel.NewBuilder("heapok")
	lane, d := b.Reg(), b.Reg()
	b.S2R(lane, isa.SRLaneID)
	b.Malloc(d, isa.RZ, 64)
	b.StGlobal(d, 0, lane, 8) // returned pointers must be writable
	b.Exit()
	l := oneBlock(b.MustBuild(), 32)
	l.HeapBase, l.HeapBytes = 1<<20, 1<<20
	e, err := New(l, NewMemory(), 128)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := e.EmulateBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Warps[0].Excep != nil {
		t.Fatalf("in-budget malloc raised %v", bt.Warps[0].Excep)
	}
}

func TestIllegalAddressRaises(t *testing.T) {
	b := kernel.NewBuilder("nullderef")
	addr, v := b.Reg(), b.Reg()
	b.MovI(addr, 0x100) // below IllegalFloor
	b.LdGlobal(v, addr, 0, 8)
	b.Exit()
	_, r := emuRaise(t, oneBlock(b.MustBuild(), 32))
	if r.Kind != excep.KindIllegalAddress {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindIllegalAddress)
	}
	if r.Addr != 0x100 {
		t.Errorf("faulting address = %#x, want 0x100", r.Addr)
	}
}

func TestMisalignedAccessRaises(t *testing.T) {
	b := kernel.NewBuilder("misaligned")
	addr, v := b.Reg(), b.Reg()
	b.MovI(addr, 0x10004) // 4-byte offset on an 8-byte access
	b.LdGlobal(v, addr, 0, 8)
	b.Exit()
	_, r := emuRaise(t, oneBlock(b.MustBuild(), 32))
	if r.Kind != excep.KindMisaligned {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindMisaligned)
	}
	if r.Addr != 0x10004 {
		t.Errorf("faulting address = %#x, want 0x10004", r.Addr)
	}
}
