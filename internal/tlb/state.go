package tlb

import (
	"fmt"
	"sort"

	"gpues/internal/ckpt"
)

// SaveState serializes the TLB: LRU clock, statistics, the full entry
// array, and a structural summary of in-flight miss handling (sorted by
// VPN — the mshrs map must never be iterated raw). Waiter and delivery
// closures are rebuilt by replay on restore.
func (t *TLB) SaveState(w *ckpt.Writer) {
	w.I64(t.tick)
	w.I64(t.stats.Hits)
	w.I64(t.stats.Misses)
	w.I64(t.stats.Merges)
	w.I64(t.stats.Rejects)
	w.I64(t.stats.Faults)

	w.Int(t.sets)
	w.Int(t.cfg.Ways)
	for _, set := range t.entries {
		for i := range set {
			e := &set[i]
			w.U64(e.vpn)
			w.Bool(e.valid)
			w.I64(e.lru)
		}
	}

	w.Int(len(t.waiters))
	vpns := make([]uint64, 0, len(t.mshrs))
	for v := range t.mshrs {
		vpns = append(vpns, v)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	w.Int(len(vpns))
	for _, v := range vpns {
		m := t.mshrs[v]
		w.U64(v)
		w.U64(m.pageVA)
		w.I64(m.born)
		w.Int(len(m.waiters))
	}
}

// RestoreState reads the SaveState stream back, installing the entry
// array and statistics and cross-checking the replayed MSHR population.
func (t *TLB) RestoreState(r *ckpt.Reader) error {
	t.tick = r.I64()
	t.stats.Hits = r.I64()
	t.stats.Misses = r.I64()
	t.stats.Merges = r.I64()
	t.stats.Rejects = r.I64()
	t.stats.Faults = r.I64()

	sets := r.Int()
	ways := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != t.sets || ways != t.cfg.Ways {
		return fmt.Errorf("tlb %s: geometry %dx%d does not match checkpoint %dx%d",
			t.cfg.Name, t.sets, t.cfg.Ways, sets, ways)
	}
	for _, set := range t.entries {
		for i := range set {
			e := &set[i]
			e.vpn = r.U64()
			e.valid = r.Bool()
			e.lru = r.I64()
		}
	}

	r.Int() // waiter count: closures, rebuilt by replay
	n := r.Int()
	for i := 0; i < n; i++ {
		r.U64()
		r.U64()
		r.I64()
		r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(t.mshrs) {
		return fmt.Errorf("tlb %s: replayed %d MSHRs, checkpoint has %d", t.cfg.Name, len(t.mshrs), n)
	}
	return nil
}

// SaveState serializes the fill unit: walk counters, busy walkers and
// the queued walk requests in queue order (their completion closures
// are rebuilt by replay).
func (f *FillUnit) SaveState(w *ckpt.Writer) {
	w.I64(f.Walks)
	w.I64(f.FaultsDetected)
	w.I64(f.FaultsInjected)
	w.Int(f.busy)
	w.Int(len(f.queue))
	for i := range f.queue {
		w.U64(f.queue[i].pageVA)
	}
}

// RestoreState reads the SaveState stream back, installing counters and
// cross-checking the replayed walker occupancy and queue.
func (f *FillUnit) RestoreState(r *ckpt.Reader) error {
	f.Walks = r.I64()
	f.FaultsDetected = r.I64()
	f.FaultsInjected = r.I64()
	busy := r.Int()
	n := r.Int()
	for i := 0; i < n; i++ {
		r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if busy != f.busy || n != len(f.queue) {
		return fmt.Errorf("fillunit: replayed %d busy / %d queued, checkpoint has %d / %d",
			f.busy, len(f.queue), busy, n)
	}
	return nil
}
