package simserv

import (
	"encoding/json"

	"gpues/internal/simserv/queue"
)

// The wire types of the fabric's HTTP/JSON API (documented in
// docs/simserver.md). Every request is a POST with a JSON body unless
// noted; errors come back as {"error": "..."} with a 4xx/5xx status.

// SubmitRequest enqueues one simulation job.
type SubmitRequest struct {
	// ID is the caller's idempotency key; empty lets the coordinator
	// assign one.
	ID     string  `json:"id,omitempty"`
	Tenant string  `json:"tenant,omitempty"`
	Spec   JobSpec `json:"spec"`
}

// SubmitResponse acknowledges a submission. A result-cache hit
// completes the job at admission: State is "done" and Result is set
// before any worker hears about it.
type SubmitResponse struct {
	ID     string        `json:"id"`
	State  string        `json:"state"`
	Result *queue.Result `json:"result,omitempty"`
}

// ClaimRequest asks for work on behalf of a worker.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse hands out one job under a fresh lease. Checkpoint,
// when set, is a checkpoint file the worker must resume from instead
// of starting the simulation from cycle zero. A 204 means no work.
type ClaimResponse struct {
	JobID string  `json:"job_id"`
	Token uint64  `json:"token"`
	Spec  JobSpec `json:"spec"`
	// LeaseNS is the lease duration in nanoseconds; the worker must
	// renew well inside it or the reaper hands the job to someone else.
	LeaseNS    int64  `json:"lease_ns"`
	Checkpoint string `json:"checkpoint,omitempty"`
	Attempt    int    `json:"attempt"`
}

// RenewRequest extends a lease mid-run.
type RenewRequest struct {
	JobID  string `json:"job_id"`
	Worker string `json:"worker"`
	Token  uint64 `json:"token"`
}

// Renew directives.
const (
	// DirectiveOK: keep running.
	DirectiveOK = "ok"
	// DirectivePreempt: checkpoint now and hand the job back (drain or
	// migration); keep renewing until the preempt report is accepted.
	DirectivePreempt = "preempt"
	// DirectiveLost: the lease is gone (expired or superseded) — abandon
	// the run; any report would be rejected as stale anyway.
	DirectiveLost = "lost"
)

// RenewResponse carries the coordinator's directive.
type RenewResponse struct {
	Directive string `json:"directive"`
}

// CompleteRequest reports a finished simulation.
type CompleteRequest struct {
	JobID     string `json:"job_id"`
	Worker    string `json:"worker"`
	Token     uint64 `json:"token"`
	Cycles    int64  `json:"cycles"`
	Committed int64  `json:"committed"`
	// Metrics is the worker's result summary (opaque to the fabric;
	// cached and returned verbatim to every submitter of this spec).
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// FailRequest reports a failed attempt.
type FailRequest struct {
	JobID  string `json:"job_id"`
	Worker string `json:"worker"`
	Token  uint64 `json:"token"`
	Error  string `json:"error"`
	// Stall is the rendered sim stall report, when the failure was a
	// stall; it rides to the dead-letter state.
	Stall string `json:"stall,omitempty"`
}

// FailResponse reports the job's fate.
type FailResponse struct {
	// Retried: the job was requeued with backoff. False: dead-lettered.
	Retried bool `json:"retried"`
}

// PreemptRequest hands a leased job back with an in-flight checkpoint.
type PreemptRequest struct {
	JobID      string `json:"job_id"`
	Worker     string `json:"worker"`
	Token      uint64 `json:"token"`
	Checkpoint string `json:"checkpoint"`
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID          string        `json:"id"`
	Tenant      string        `json:"tenant,omitempty"`
	State       string        `json:"state"`
	Attempts    int           `json:"attempts"`
	Retries     int           `json:"retries"`
	Worker      string        `json:"worker,omitempty"`
	Checkpoint  string        `json:"checkpoint,omitempty"`
	Coalesced   string        `json:"coalesced_into,omitempty"`
	LastError   string        `json:"last_error,omitempty"`
	StallReport string        `json:"stall_report,omitempty"`
	Result      *queue.Result `json:"result,omitempty"`
}

// Stats is the /v1/stats document.
type Stats struct {
	Depth    int            `json:"depth"`
	Leased   int            `json:"leased"`
	Draining bool           `json:"draining"`
	Counters queue.Counters `json:"counters"`
	// CacheHits/CacheMisses count submit-time result-cache lookups.
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	RejectedQuota int64 `json:"rejected_quota"`
	// DrainMS is the duration of the last completed drain.
	DrainMS int64 `json:"drain_ms,omitempty"`
}

func statusOf(j *queue.Job) JobStatus {
	return JobStatus{
		ID:          j.ID,
		Tenant:      j.Tenant,
		State:       j.State.String(),
		Attempts:    j.Attempts,
		Retries:     j.Retries,
		Worker:      j.Worker,
		Checkpoint:  j.Checkpoint,
		Coalesced:   j.CoalescedInto,
		LastError:   j.LastError,
		StallReport: j.StallReport,
		Result:      j.Result,
	}
}
