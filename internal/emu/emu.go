package emu

import (
	"fmt"
	"math"
	"math/bits"

	"gpues/internal/excep"
	"gpues/internal/gpualloc"
	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// DefaultMaxWarpInsts bounds the dynamic instructions emulated per warp,
// to turn runaway kernels into errors instead of hangs.
const DefaultMaxWarpInsts = 8 << 20

// IllegalFloor is the lowest legal global address: accesses below it
// (the null page and its surroundings; workloads place buffers at
// 16 MB+) raise a KindIllegalAddress device exception.
const IllegalFloor = 1 << 16

// HangError marks functional non-termination — a warp exceeding its
// dynamic instruction budget or a block deadlocking at a barrier. It
// is the functional analogue of a timing-watchdog hang and is
// classified as one by the resilience campaign (recover with
// errors.As).
type HangError struct{ msg string }

func (e *HangError) Error() string { return e.msg }

func hangErrorf(format string, args ...any) error {
	return &HangError{msg: fmt.Sprintf(format, args...)}
}

// Emulator executes thread blocks of a kernel launch functionally and
// produces their dynamic traces. One Emulator serves one launch; blocks
// may be emulated lazily in any order (the order becomes the observed
// inter-block interleaving for atomics).
type Emulator struct {
	launch   *kernel.Launch
	mem      *Memory
	lineSize uint64

	// MaxWarpInsts bounds the dynamic instruction count per warp.
	MaxWarpInsts int

	// AddrValid, when set, is the launch's address map: global accesses
	// to addresses it rejects raise an illegal-address exception, the
	// functional equivalent of an MMU fault on an unmapped VA. Unset,
	// only the IllegalFloor check applies (the timing layer still
	// aborts on unmapped accesses).
	AddrValid func(addr uint64) bool

	// Blocks are emulated one at a time, so one set of execution
	// scratch state serves every block: warp contexts (their 64 KB
	// register files are the dominant per-block allocation) and the
	// shared-memory buffer are pooled, trace slices are presized to the
	// longest warp trace seen so far, and coalesced line addresses are
	// carved out of a chunked arena instead of one slice per
	// instruction. Traces and arena chunks still escape into the
	// returned BlockTrace; only state that does not escape is reused.
	ctxs      []*warpCtx
	sharedBuf []byte
	traceHint int
	arena     []uint64

	// flip is the armed bit-flip injector (zero = off); flips counts
	// the flips applied so far across all blocks.
	flip  excep.FlipConfig
	flips int64
	// heap backs OpMalloc when the launch declares a device heap.
	heap *gpualloc.Allocator
}

// arenaChunk is the allocation granule for coalesced line addresses.
const arenaChunk = 8192

// New returns an Emulator for the launch. lineSize is the cache line
// size used by the coalescing unit (128 B in the baseline).
func New(l *kernel.Launch, mem *Memory, lineSize int) (*Emulator, error) {
	if err := l.Kernel.Validate(); err != nil {
		return nil, err
	}
	if l.ThreadsPerBlock() <= 0 || l.ThreadsPerBlock() > 32*64 {
		return nil, fmt.Errorf("emu: block of %d threads unsupported", l.ThreadsPerBlock())
	}
	if l.Blocks() <= 0 {
		return nil, fmt.Errorf("emu: empty grid")
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("emu: line size %d not a power of two", lineSize)
	}
	var heap *gpualloc.Allocator
	if l.HeapBytes > 0 {
		var err error
		if heap, err = gpualloc.New(l.HeapBase, l.HeapBytes); err != nil {
			return nil, err
		}
	}
	return &Emulator{
		launch:       l,
		mem:          mem,
		lineSize:     uint64(lineSize),
		MaxWarpInsts: DefaultMaxWarpInsts,
		heap:         heap,
	}, nil
}

// ConfigureFlips arms the bit-flip injector for the launch. Call
// before any block is emulated.
func (e *Emulator) ConfigureFlips(cfg excep.FlipConfig) { e.flip = cfg }

// Flips returns the number of bit flips injected so far. Blocks are
// emulated deterministically, so the count is seed-stable.
func (e *Emulator) Flips() int64 { return e.flips }

// Memory returns the functional memory the emulator executes against.
func (e *Emulator) Memory() *Memory { return e.mem }

// Launch returns the launch being emulated.
func (e *Emulator) Launch() *kernel.Launch { return e.launch }

type stackEntry struct {
	pc, rpc int32
	mask    uint32
}

type warpCtx struct {
	id        int
	regs      [][isa.MaxRegs]uint64 // per lane
	stack     []stackEntry
	exited    uint32
	threads   uint32 // lanes that hold live threads (partial last warp)
	atBarrier bool
	done      bool
	insts     int
	trace     []TraceInst

	// excep is the warp's raised exception, if any: the trace ends
	// just before the faulting instruction and the warp counts as done
	// (so barriers release, matching a killed warp in the SM).
	excep *excep.Record
	// flipAddrXor holds this instruction's transient address flips,
	// applied by execMem to the effective addresses of lanes in
	// flipAddrMask.
	flipAddrMask uint32
	flipAddrXor  [32]uint64
}

// EmulateBlock executes thread block blockID to completion and returns
// its trace. It is safe to call for each block exactly once per launch;
// global memory side effects accumulate in the shared Memory.
func (e *Emulator) EmulateBlock(blockID int) (*BlockTrace, error) {
	if blockID < 0 || blockID >= e.launch.Blocks() {
		return nil, fmt.Errorf("emu: block %d out of range [0,%d)", blockID, e.launch.Blocks())
	}
	threads := e.launch.ThreadsPerBlock()
	numWarps := (threads + 31) / 32
	sharedSize := e.launch.Kernel.SharedMemBytes
	if cap(e.sharedBuf) < sharedSize {
		e.sharedBuf = make([]byte, sharedSize)
	}
	shared := e.sharedBuf[:sharedSize]
	clear(shared)

	for len(e.ctxs) < numWarps {
		e.ctxs = append(e.ctxs, &warpCtx{regs: make([][isa.MaxRegs]uint64, 32)})
	}
	warps := e.ctxs[:numWarps]
	for w := 0; w < numWarps; w++ {
		lanes := 32
		if rem := threads - w*32; rem < 32 {
			lanes = rem
		}
		var tm uint32
		if lanes == 32 {
			tm = ^uint32(0)
		} else {
			tm = (1 << lanes) - 1
		}
		ctx := warps[w]
		for i := range ctx.regs {
			ctx.regs[i] = [isa.MaxRegs]uint64{}
		}
		ctx.id = w
		ctx.stack = append(ctx.stack[:0], stackEntry{pc: 0, rpc: -2, mask: tm})
		ctx.exited = 0
		ctx.threads = tm
		ctx.atBarrier = false
		ctx.done = false
		ctx.insts = 0
		ctx.trace = make([]TraceInst, 0, e.traceHint)
		ctx.excep = nil
		ctx.flipAddrMask = 0
	}

	// Round-robin warp execution, switching at barriers, until all warps
	// are done. A pass with no progress means a malformed barrier.
	for {
		allDone := true
		progress := false
		for _, w := range warps {
			if w.done {
				continue
			}
			allDone = false
			if w.atBarrier {
				continue
			}
			before := w.insts
			if err := e.runWarp(w, blockID, shared); err != nil {
				return nil, fmt.Errorf("emu: block %d warp %d: %w", blockID, w.id, err)
			}
			if w.insts != before || w.done {
				progress = true
			}
		}
		if allDone {
			break
		}
		// Release the barrier once every live warp has arrived.
		arrived := true
		for _, w := range warps {
			if !w.done && !w.atBarrier {
				arrived = false
				break
			}
		}
		if arrived {
			for _, w := range warps {
				w.atBarrier = false
			}
			progress = true
		}
		if !progress {
			return nil, hangErrorf("emu: block %d deadlocked at a barrier (divergent __syncthreads?)", blockID)
		}
	}

	bt := &BlockTrace{BlockID: blockID, Warps: make([]WarpTrace, numWarps)}
	for w, ctx := range warps {
		if len(ctx.trace) > e.traceHint {
			e.traceHint = len(ctx.trace)
		}
		tr := ctx.trace
		ctx.trace = nil
		bt.Warps[w] = WarpTrace{WarpID: w, Insts: tr, Excep: ctx.excep}
		bt.DynInsts += len(tr)
		for i := range tr {
			ti := &tr[i]
			if ti.Static.IsGlobalMem() {
				bt.GlobalAccesses++
				bt.MemRequests += len(ti.Lines)
			}
		}
	}
	return bt, nil
}

// runWarp executes the warp until it exits or reaches a barrier.
func (e *Emulator) runWarp(w *warpCtx, blockID int, shared []byte) error {
	code := e.launch.Kernel.Code
	for {
		if len(w.stack) == 0 {
			w.done = true
			return nil
		}
		top := &w.stack[len(w.stack)-1]
		if top.rpc >= 0 && top.pc == top.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		active := top.mask &^ w.exited
		if active == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.pc < 0 || int(top.pc) >= len(code) {
			return fmt.Errorf("pc %d out of range", top.pc)
		}
		w.insts++
		max := e.MaxWarpInsts
		if max == 0 {
			max = DefaultMaxWarpInsts
		}
		if w.insts > max {
			return hangErrorf("exceeded %d dynamic instructions (runaway loop?)", max)
		}

		in := &code[top.pc]
		execMask := active
		if in.Pred != isa.RegNone {
			var pm uint32
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				p := e.readReg(w, lane, in.Pred)&1 != 0
				if p != in.PredNeg {
					pm |= 1 << lane
				}
			}
			execMask = pm
		}
		if e.flip.Enabled() {
			execMask = e.injectFlips(w, in, active, execMask, blockID)
		}

		ti := TraceInst{PC: top.pc, Static: in, Mask: execMask}

		switch in.Op {
		case isa.OpBra:
			taken := execMask
			notTaken := active &^ taken
			w.trace = append(w.trace, ti)
			switch {
			case taken == 0:
				top.pc++
			case notTaken == 0:
				top.pc = in.Target
			default:
				if in.Reconv < 0 {
					// A divergent asserted-uniform branch is an emulator
					// invariant violation — except under fault injection,
					// where an injected flip corrupting the predicate is
					// the expected cause: there it models hardware
					// detecting control-flow corruption at a .uni branch
					// and raises a trap, so the campaign exercises the
					// exception path instead of aborting the simulator.
					if e.flip.Enabled() {
						minority := taken
						if bits.OnesCount32(notTaken) < bits.OnesCount32(taken) {
							minority = notTaken
						}
						e.raise(w, blockID, excep.KindTrap, top.pc, in, minority, 0,
							fmt.Sprintf("uniform branch diverged (taken=%08x)", taken))
						return nil
					}
					return fmt.Errorf("pc %d: branch asserted warp-uniform diverged (taken=%08x)", top.pc, taken)
				}
				fall := top.pc + 1
				top.mask = active
				top.pc = in.Reconv
				w.stack = append(w.stack,
					stackEntry{pc: fall, rpc: in.Reconv, mask: notTaken},
					stackEntry{pc: in.Target, rpc: in.Reconv, mask: taken},
				)
			}
			continue

		case isa.OpExit:
			w.trace = append(w.trace, ti)
			w.exited |= execMask
			top.pc++
			continue

		case isa.OpBar:
			w.trace = append(w.trace, ti)
			top.pc++
			w.atBarrier = true
			return nil

		case isa.OpLdGlobal, isa.OpStGlobal, isa.OpAtomGlobal, isa.OpLdShared, isa.OpStShared:
			if err := e.execMem(w, in, execMask, blockID, shared, &ti); err != nil {
				return fmt.Errorf("pc %d (%v): %w", top.pc, in, err)
			}
			if w.excep != nil {
				return nil
			}
			w.trace = append(w.trace, ti)
			top.pc++
			continue

		case isa.OpAssert:
			var failed uint32
			for m := execMask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				if e.readReg(w, lane, in.SrcA) == 0 {
					failed |= 1 << lane
				}
			}
			if failed != 0 {
				e.raise(w, blockID, excep.KindAssert, top.pc, in, failed, 0,
					fmt.Sprintf("assert %d failed on %d lane(s)", in.Imm, bits.OnesCount32(failed)))
				return nil
			}
			w.trace = append(w.trace, ti)
			top.pc++
			continue

		case isa.OpTrap:
			if execMask != 0 {
				e.raise(w, blockID, excep.KindTrap, top.pc, in, execMask, 0,
					fmt.Sprintf("trap %d", in.Imm))
				return nil
			}
			w.trace = append(w.trace, ti)
			top.pc++
			continue

		case isa.OpMalloc:
			e.execMalloc(w, in, execMask, blockID, top.pc)
			if w.excep != nil {
				return nil
			}
			w.trace = append(w.trace, ti)
			top.pc++
			continue

		default:
			for m := execMask; m != 0; m &= m - 1 {
				e.execALU(w, in, bits.TrailingZeros32(m), blockID)
			}
			w.trace = append(w.trace, ti)
			top.pc++
			continue
		}
	}
}

// raise builds the warp's exception record from its current divergence
// stack and retires the warp: the trace ends just before the faulting
// instruction, which therefore never reaches the timing pipeline, and
// the warp counts as done so block barriers release (the SM kills the
// warp the same way at delivery). lanes is the set of lanes the
// condition fired on; the report names the lowest.
func (e *Emulator) raise(w *warpCtx, blockID int, k excep.Kind, pc int32, in *isa.Instruction, lanes uint32, addr uint64, detail string) {
	frames := make([]excep.Frame, len(w.stack))
	for i, s := range w.stack {
		frames[i] = excep.Frame{PC: s.pc, RPC: s.rpc, Mask: s.mask}
	}
	if n := len(frames); n > 0 {
		// The top entry's pc is the faulting instruction itself.
		frames[n-1].PC = pc
	}
	w.excep = &excep.Record{
		Kind: k, Block: int32(blockID), Warp: int32(w.id),
		Lane: int32(bits.TrailingZeros32(lanes)),
		PC:   pc, Mnemonic: in.Op.Mnemonic(),
		Addr: addr, Detail: detail, Frames: frames,
	}
	w.done = true
}

// injectFlips applies this instruction's bit-flip decisions to the
// warp's architectural state: a source-register bit (persistent), the
// lane's participation bit (transient, the predicate flip), or — for
// memory instructions — an effective-address bit (transient, applied
// by execMem through flipAddrXor). Decisions are pure functions of the
// site, so reruns of the same seed flip identically.
func (e *Emulator) injectFlips(w *warpCtx, in *isa.Instruction, active, execMask uint32, blockID int) uint32 {
	for m := w.flipAddrMask; m != 0; m &= m - 1 {
		w.flipAddrXor[bits.TrailingZeros32(m)] = 0
	}
	w.flipAddrMask = 0
	memOp := in.IsMem()
	inst := int32(w.insts)
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		d, ok := e.flip.At(int32(blockID), int32(w.id), int32(lane), inst, w.id*32+lane, memOp)
		if !ok {
			continue
		}
		switch d.Target {
		case excep.TargetRegister:
			var srcs [4]isa.Reg
			n := 0
			for _, r := range [...]isa.Reg{in.SrcA, in.SrcB, in.SrcC, in.Pred} {
				if r != isa.RegNone && r != isa.RZ {
					srcs[n] = r
					n++
				}
			}
			if n == 0 {
				continue // no register state read here: the flip lands in unused space
			}
			w.regs[lane][srcs[int(d.Src)%n]] ^= 1 << (d.Bit & 63)
		case excep.TargetPredicate:
			execMask ^= 1 << lane
		case excep.TargetAddress:
			w.flipAddrXor[lane] ^= 1 << (d.Bit & 63)
			w.flipAddrMask |= 1 << lane
		}
		e.flips++
	}
	return execMask
}

// execMalloc serves a device-malloc instruction lane by lane; heap
// exhaustion (or a missing heap) raises KindDeviceOOM.
func (e *Emulator) execMalloc(w *warpCtx, in *isa.Instruction, mask uint32, blockID int, pc int32) {
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		size := in.Imm
		if in.SrcA != isa.RegNone && in.SrcA != isa.RZ {
			size = int64(e.readReg(w, lane, in.SrcA))
		}
		if e.heap == nil {
			e.raise(w, blockID, excep.KindDeviceOOM, pc, in, 1<<lane, 0,
				"device malloc without a device heap")
			return
		}
		tid := blockID*e.launch.ThreadsPerBlock() + w.id*32 + lane
		addr, err := e.heap.Alloc(tid, int(size))
		if err != nil {
			e.raise(w, blockID, excep.KindDeviceOOM, pc, in, 1<<lane, 0, err.Error())
			return
		}
		e.writeReg(w, lane, in.Dst, addr)
	}
}

func (e *Emulator) readReg(w *warpCtx, lane int, r isa.Reg) uint64 {
	if r == isa.RZ || r == isa.RegNone {
		return 0
	}
	return w.regs[lane][r]
}

func (e *Emulator) writeReg(w *warpCtx, lane int, r isa.Reg, v uint64) {
	if r == isa.RZ || r == isa.RegNone {
		return
	}
	w.regs[lane][r] = v
}

func f(v uint64) float64  { return math.Float64frombits(v) }
func fb(v float64) uint64 { return math.Float64bits(v) }
func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (e *Emulator) execALU(w *warpCtx, in *isa.Instruction, lane, blockID int) {
	a := e.readReg(w, lane, in.SrcA)
	b := e.readReg(w, lane, in.SrcB)
	var v uint64
	switch in.Op {
	case isa.OpNop:
		return
	case isa.OpIAdd:
		v = a + b + uint64(in.Imm)
	case isa.OpISub:
		v = a - b
	case isa.OpIMul:
		if in.SrcB != isa.RZ && in.SrcB != isa.RegNone {
			v = a * b
		} else {
			v = a * uint64(in.Imm)
		}
	case isa.OpIMad:
		v = a*b + e.readReg(w, lane, in.SrcC)
	case isa.OpIMin:
		if int64(a) < int64(b) {
			v = a
		} else {
			v = b
		}
	case isa.OpIMax:
		if int64(a) > int64(b) {
			v = a
		} else {
			v = b
		}
	case isa.OpShl:
		v = a << ((b + uint64(in.Imm)) & 63)
	case isa.OpShr:
		v = a >> ((b + uint64(in.Imm)) & 63)
	case isa.OpAnd:
		if in.SrcB != isa.RZ && in.SrcB != isa.RegNone {
			v = a & b
		} else {
			v = a & uint64(in.Imm)
		}
	case isa.OpOr:
		v = a | b | uint64(in.Imm)
	case isa.OpXor:
		v = a ^ b ^ uint64(in.Imm)
	case isa.OpMov:
		if in.SrcA != isa.RegNone {
			v = a
		} else {
			v = uint64(in.Imm)
		}
	case isa.OpSetP:
		v = boolVal(icmp(in.Cmp, int64(a), int64(b)+in.Imm))
	case isa.OpFAdd:
		v = fb(f(a) + f(b))
	case isa.OpFSub:
		v = fb(f(a) - f(b))
	case isa.OpFMul:
		v = fb(f(a) * f(b))
	case isa.OpFFma:
		v = fb(math.FMA(f(a), f(b), f(e.readReg(w, lane, in.SrcC))))
	case isa.OpFMin:
		v = fb(math.Min(f(a), f(b)))
	case isa.OpFMax:
		v = fb(math.Max(f(a), f(b)))
	case isa.OpFSetP:
		v = boolVal(fcmp(in.Cmp, f(a), f(b)))
	case isa.OpI2F:
		v = fb(float64(int64(a)))
	case isa.OpF2I:
		x := f(a)
		if math.IsNaN(x) {
			v = 0
		} else {
			v = uint64(int64(x))
		}
	case isa.OpFRcp:
		v = fb(1 / f(a))
	case isa.OpFSqrt:
		v = fb(math.Sqrt(f(a)))
	case isa.OpFRsqrt:
		v = fb(1 / math.Sqrt(f(a)))
	case isa.OpFExp:
		v = fb(math.Exp2(f(a)))
	case isa.OpFLog:
		v = fb(math.Log2(f(a)))
	case isa.OpFSin:
		v = fb(math.Sin(f(a)))
	case isa.OpFCos:
		v = fb(math.Cos(f(a)))
	case isa.OpS2R:
		v = e.sreg(w, lane, isa.SReg(in.Imm), blockID)
	case isa.OpLdParam:
		v = e.launch.Kernel.Params[in.Imm]
	default:
		// Unknown ops execute as nop; Validate rejects them earlier.
		return
	}
	e.writeReg(w, lane, in.Dst, v)
}

func icmp(c isa.Cmp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func fcmp(c isa.Cmp, a, b float64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func (e *Emulator) sreg(w *warpCtx, lane int, s isa.SReg, blockID int) uint64 {
	bdimX := e.launch.Block.X
	if bdimX == 0 {
		bdimX = 1
	}
	gdimX := e.launch.Grid.X
	if gdimX == 0 {
		gdimX = 1
	}
	t := w.id*32 + lane
	switch s {
	case isa.SRTidX:
		return uint64(t % bdimX)
	case isa.SRTidY:
		return uint64(t / bdimX)
	case isa.SRCtaIDX:
		return uint64(blockID % gdimX)
	case isa.SRCtaIDY:
		return uint64(blockID / gdimX)
	case isa.SRNTidX:
		return uint64(bdimX)
	case isa.SRNTidY:
		y := e.launch.Block.Y
		if y == 0 {
			y = 1
		}
		return uint64(y)
	case isa.SRGridDimX:
		return uint64(gdimX)
	case isa.SRGridDimY:
		y := e.launch.Grid.Y
		if y == 0 {
			y = 1
		}
		return uint64(y)
	case isa.SRLaneID:
		return uint64(lane)
	case isa.SRWarpID:
		return uint64(w.id)
	}
	return 0
}

// coalesceArena coalesces the per-lane accesses into line addresses
// backed by the emulator's arena: the worst-case entry count is
// reserved up front so the append inside coalesce never reallocates,
// and the arena advances past the entries actually produced. Retired
// chunks stay referenced by the traces that point into them and are
// collected when those traces are dropped.
func (e *Emulator) coalesceArena(addrs *[32]uint64, mask uint32, size int) []uint64 {
	span := int(uint64(size-1)/e.lineSize) + 2
	need := 32 * span
	if cap(e.arena)-len(e.arena) < need {
		n := arenaChunk
		if need > n {
			n = need
		}
		e.arena = make([]uint64, 0, n)
	}
	dst := coalesce(e.arena[len(e.arena):len(e.arena)], addrs, mask, size, e.lineSize)
	e.arena = e.arena[:len(e.arena)+len(dst)]
	return dst
}

func (e *Emulator) execMem(w *warpCtx, in *isa.Instruction, mask uint32, blockID int, shared []byte, ti *TraceInst) error {
	size := int(in.Size)
	var addrs [32]uint64
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		addrs[lane] = e.readReg(w, lane, in.SrcA) + uint64(in.Imm)
	}
	for m := w.flipAddrMask & mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		addrs[lane] ^= w.flipAddrXor[lane]
	}
	if in.IsGlobalMem() {
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := addrs[lane]
			if a < IllegalFloor {
				e.raise(w, blockID, excep.KindIllegalAddress, ti.PC, in, 1<<lane, a,
					"global access below the mapped address space")
				return nil
			}
			if a%uint64(size) != 0 {
				e.raise(w, blockID, excep.KindMisaligned, ti.PC, in, 1<<lane, a,
					fmt.Sprintf("address not %d-byte aligned", size))
				return nil
			}
			if e.AddrValid != nil && !e.AddrValid(a) {
				e.raise(w, blockID, excep.KindIllegalAddress, ti.PC, in, 1<<lane, a,
					"global access outside any mapped region")
				return nil
			}
		}
	}

	switch in.Op {
	case isa.OpLdShared, isa.OpStShared:
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			off := addrs[lane]
			if off+uint64(size) > uint64(len(shared)) {
				return fmt.Errorf("shared access at %d beyond %d B partition", off, len(shared))
			}
			if in.Op == isa.OpLdShared {
				var v uint64
				for i := 0; i < size; i++ {
					v |= uint64(shared[off+uint64(i)]) << (8 * i)
				}
				e.writeReg(w, lane, in.Dst, v)
			} else {
				v := e.readReg(w, lane, in.SrcB)
				for i := 0; i < size; i++ {
					shared[off+uint64(i)] = byte(v >> (8 * i))
				}
			}
		}
		if mask != 0 {
			ti.Lines = e.coalesceArena(&addrs, mask, size)
		}
		return nil

	case isa.OpLdGlobal:
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.writeReg(w, lane, in.Dst, e.mem.Read(addrs[lane], size))
		}
	case isa.OpStGlobal:
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.mem.Write(addrs[lane], size, e.readReg(w, lane, in.SrcB))
		}
	case isa.OpAtomGlobal:
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			v := e.readReg(w, lane, in.SrcB)
			cmp := e.readReg(w, lane, in.SrcC)
			old := e.mem.Atom(addrs[lane], size, func(o uint64) (uint64, bool) {
				switch in.Atom {
				case isa.AtomAdd:
					return o + v, true
				case isa.AtomMax:
					if int64(v) > int64(o) {
						return v, true
					}
					return o, false
				case isa.AtomMin:
					if int64(v) < int64(o) {
						return v, true
					}
					return o, false
				case isa.AtomExch:
					return v, true
				case isa.AtomCAS:
					if o == cmp {
						return v, true
					}
					return o, false
				case isa.AtomAnd:
					return o & v, true
				case isa.AtomOr:
					return o | v, true
				}
				return o, false
			})
			e.writeReg(w, lane, in.Dst, old)
		}
	default:
		return fmt.Errorf("execMem: %v is not a memory op", in.Op)
	}
	if mask != 0 {
		ti.Lines = e.coalesceArena(&addrs, mask, size)
	}
	return nil
}
