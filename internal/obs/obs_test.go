package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func boundTracer(filter uint64, ringSize int) (*Tracer, *int64) {
	cycle := new(int64)
	tr := New(Options{Filter: filter, RingSize: ringSize})
	tr.Bind(2, func() int64 { return *cycle })
	return tr, cycle
}

func TestEmitAndMerge(t *testing.T) {
	tr, cycle := boundTracer(0, 16)
	*cycle = 5
	tr.Emit(0, KFetch, 3, 1, 2)
	tr.Emit(1, KCommit, 4, 7, 8)
	*cycle = 9
	tr.Emit(-1, KRegionQueued, 0, 0x40000, 1)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d, want 3", len(ev))
	}
	// Merged in emission order regardless of ring.
	if ev[0].Kind != KFetch || ev[1].Kind != KCommit || ev[2].Kind != KRegionQueued {
		t.Fatalf("order = %v %v %v", ev[0].Kind, ev[1].Kind, ev[2].Kind)
	}
	if ev[2].SM != -1 || ev[2].Cycle != 9 || ev[2].A != 0x40000 {
		t.Fatalf("system event = %+v", ev[2])
	}
	if ev[0].Warp != 3 || ev[0].SM != 0 || ev[0].Cycle != 5 {
		t.Fatalf("sm event = %+v", ev[0])
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	tr, cycle := boundTracer(0, 4)
	for i := 0; i < 10; i++ {
		*cycle = int64(i)
		tr.Emit(0, KIssue, 0, uint64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.A != want {
			t.Fatalf("event %d: A = %d, want %d", i, e.A, want)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

func TestFilter(t *testing.T) {
	m, err := ParseFilter("fault,switch")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := boundTracer(m, 16)
	tr.Emit(0, KFetch, 0, 0, 0)     // filtered out
	tr.Emit(0, KSquash, 0, 0, 0)    // fault group
	tr.Emit(0, KSwitchOut, 0, 0, 0) // switch group
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
	if tr.Enabled(KFetch) || !tr.Enabled(KSquash) {
		t.Fatal("Enabled does not reflect the filter")
	}

	// Individual kind names parse too.
	m, err = ParseFilter("commit")
	if err != nil {
		t.Fatal(err)
	}
	if m != 1<<KCommit {
		t.Fatalf("mask = %#x", m)
	}
	if _, err := ParseFilter("nonsense"); err == nil {
		t.Fatal("unknown filter token accepted")
	}
	m, err = ParseFilter("")
	if err != nil || m != AllKinds {
		t.Fatalf("empty filter: mask=%#x err=%v", m, err)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	for r := StallReason(0); r < NumStallReasons; r++ {
		if stallNames[r] == "" {
			t.Errorf("stall reason %d has no name", r)
		}
	}
}

// TestEmitDoesNotAllocate is the hot-path guard: emitting into a warm
// tracer, emitting through a nil tracer, and updating instruments must
// all be allocation-free.
func TestEmitDoesNotAllocate(t *testing.T) {
	tr, cycle := boundTracer(0, 1024)
	*cycle = 1
	var nilTr *Tracer
	c := &Counter{}
	h := &Histogram{}
	var nilC *Counter
	var nilH *Histogram

	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(1, KCommit, 7, 1, 2)
	}); n != 0 {
		t.Errorf("enabled Emit allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Emit(1, KCommit, 7, 1, 2)
		nilC.Add(1)
		nilH.Observe(5)
	}); n != 0 {
		t.Errorf("nil-receiver path allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(12345)
	}); n != 0 {
		t.Errorf("instrument update allocates %.1f/op", n)
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Bucket-resolution approximations: p50 of 1..100 lands in the
	// [32,64) bucket, p99 in [64,128) clamped to max.
	if s.P50 != 64 {
		t.Fatalf("p50 = %d", s.P50)
	}
	if s.P99 != 100 {
		t.Fatalf("p99 = %d", s.P99)
	}
	if (&Histogram{}).Snapshot() != (HistogramSnapshot{}) {
		t.Fatal("empty histogram snapshot not zero")
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(1)
		r.Gauge("z.gauge", func() int64 { return 9 })
		r.Histogram("m.hist").Observe(10)
		return r.Snapshot()
	}
	var j1, j2, c1, c2 bytes.Buffer
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatal("JSON snapshots differ across identical builds")
	}
	if err := build().WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Fatal("CSV snapshots differ across identical builds")
	}
	if !strings.HasPrefix(c1.String(), "metric,value\n") {
		t.Fatalf("csv header missing: %q", c1.String())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr, cycle := boundTracer(0, 64)
	*cycle = 42
	tr.Emit(0, KFaultRaised, 5, 0x1000, 1)
	tr.Emit(-1, KMigrateStart, 0, 0x40000, 3)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("BADMAGIC"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestChromeExportValid(t *testing.T) {
	tr, cycle := boundTracer(0, 64)
	*cycle = 10
	tr.Emit(0, KFaultRaised, 3, 0x1000, 1)
	tr.Emit(0, KSaveStart, 0, 2, 4096)
	*cycle = 20
	tr.Emit(0, KSaveEnd, 0, 2, 0)
	tr.Emit(-1, KMigrateStart, 0, 0x40000, 0)
	*cycle = 900
	tr.Emit(-1, KMigrateEnd, 0, 0x40000, 0)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 3 process_name metadata rows (2 SMs + system) + 5 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("trace events = %d, want 8", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 3 || phases["i"] != 1 || phases["b"] != 2 || phases["e"] != 2 {
		t.Fatalf("phase counts = %v", phases)
	}
	// Span begin/end pairs share an id.
	var ids []string
	for _, e := range doc.TraceEvents {
		if e["name"] == "migrate-start" || e["name"] == "migrate-end" {
			ids = append(ids, e["id"].(string))
		}
	}
	if len(ids) != 2 || ids[0] != ids[1] {
		t.Fatalf("migrate span ids = %v", ids)
	}
}

func TestLastN(t *testing.T) {
	tr, cycle := boundTracer(0, 64)
	for i := 0; i < 10; i++ {
		*cycle = int64(i)
		tr.Emit(0, KCommit, 0, uint64(i), 0)
	}
	last := tr.LastN(3)
	if len(last) != 3 || last[0].A != 7 || last[2].A != 9 {
		t.Fatalf("LastN = %+v", last)
	}
	var nilTr *Tracer
	if nilTr.LastN(3) != nil {
		t.Fatal("nil tracer LastN != nil")
	}
}
