// Differential tests for the telemetry subsystem: sampling at the
// sequential flush point must leave sim-cycles and per-component
// digests bit-identical across worker counts, sampling periods, and
// tracing — and two runs with the same sampling period must export
// byte-identical series.
package sim_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"gpues/internal/excep"
	"gpues/internal/obs"
	"gpues/internal/sim"
)

// telemetryCase is the Fig12 shape — demand paging with block
// switching — whose fault bursts exercise every derived-rate column.
func telemetryCase() parCase {
	for _, pc := range parCases() {
		if pc.name == "fig12-sgemm-paging-switching" {
			return pc
		}
	}
	panic("fig12 case missing from parCases")
}

// runTelemetry runs the case under the given knobs and returns the
// result, the end-of-run digests, and the exported series bytes.
func runTelemetry(t *testing.T, workers int, sampleEvery int64, traced bool) (*sim.Result, []byte, []byte) {
	t.Helper()
	pc := telemetryCase()
	cfg := caseConfig(pc, excep.ModePrecise, workers)
	cfg.SampleEvery = sampleEvery
	s, err := sim.New(cfg, buildSpec(t, pc))
	if err != nil {
		t.Fatal(err)
	}
	if traced {
		s.AttachTracer(obs.New(obs.Options{}))
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var series bytes.Buffer
	if err := r.Series.WriteNDJSON(&series); err != nil {
		t.Fatal(err)
	}
	var digests bytes.Buffer
	fmt.Fprintf(&digests, "%v", s.ComponentDigests())
	return r, digests.Bytes(), series.Bytes()
}

func TestTelemetryDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is long")
	}
	// Reference: sequential, unsampled, untraced.
	refR, refD, _ := runTelemetry(t, 1, 0, false)
	// Series reference per sampling period, from the sequential run.
	seriesRef := map[int64][]byte{}
	for _, every := range []int64{1000, 64 * 1024} {
		_, _, sb := runTelemetry(t, 1, every, false)
		seriesRef[every] = sb
	}

	for _, workers := range []int{1, 4} {
		for _, every := range []int64{0, 1000, 64 * 1024} {
			for _, traced := range []bool{false, true} {
				name := fmt.Sprintf("w%d-every%d-traced%v", workers, every, traced)
				t.Run(name, func(t *testing.T) {
					r, d, sb := runTelemetry(t, workers, every, traced)
					if r.Cycles != refR.Cycles {
						t.Errorf("cycles = %d, reference %d", r.Cycles, refR.Cycles)
					}
					if r.Committed != refR.Committed {
						t.Errorf("committed = %d, reference %d", r.Committed, refR.Committed)
					}
					if !bytes.Equal(d, refD) {
						t.Errorf("component digests diverge from the unsampled sequential reference")
					}
					if every == 0 {
						if r.Series.N != 0 {
							t.Errorf("unsampled run has %d samples", r.Series.N)
						}
						return
					}
					if !bytes.Equal(sb, seriesRef[every]) {
						t.Errorf("series bytes diverge from the sequential reference (%d vs %d bytes)",
							len(sb), len(seriesRef[every]))
					}
				})
			}
		}
	}
}

func TestSampledSeriesMatchesResult(t *testing.T) {
	r, _, _ := runTelemetry(t, 1, 1000, false)
	if r.Series.N < 2 {
		t.Fatalf("sampled run produced %d samples", r.Series.N)
	}
	tab := r.Series.Table()
	last := tab.Len() - 1
	if got := tab.Cycles[last]; got != r.Cycles {
		t.Errorf("final sample at cycle %d, run finished at %d", got, r.Cycles)
	}
	if got := tab.Col(obs.ColCommitted)[last]; got != r.Committed {
		t.Errorf("final sampled committed = %d, result has %d", got, r.Committed)
	}
	if got := tab.Col(obs.ColFaultsRaised)[last]; got != r.FaultUnit.Raised {
		t.Errorf("final sampled faults = %d, result has %d", got, r.FaultUnit.Raised)
	}
	// The demand-paging run must expose its fault phase to the analyzer.
	st := obs.Summarize(tab)
	if st.TotalFaults == 0 || len(st.FaultPhases) == 0 {
		t.Errorf("summary misses the paging fault burst: %+v", st)
	}
	if st.SteadyIPC <= 0 {
		t.Errorf("steady IPC = %v", st.SteadyIPC)
	}
}

// collectSink records every published snapshot.
type collectSink struct {
	snaps []sim.TelemetrySnapshot
}

func (c *collectSink) PublishTelemetry(s sim.TelemetrySnapshot) { c.snaps = append(c.snaps, s) }

func TestTelemetrySinkPublishes(t *testing.T) {
	pc := telemetryCase()
	cfg := caseConfig(pc, excep.ModePrecise, 1)
	cfg.SampleEvery = 1000
	s, err := sim.New(cfg, buildSpec(t, pc))
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	s.SetTelemetrySink(sink, 0) // defaults to the sampling period
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.snaps) < 2 {
		t.Fatalf("got %d publishes", len(sink.snaps))
	}
	last := sink.snaps[len(sink.snaps)-1]
	if !last.Finished {
		t.Error("final publish not marked finished")
	}
	if last.Cycle != r.Cycles {
		t.Errorf("final publish at cycle %d, run finished at %d", last.Cycle, r.Cycles)
	}
	if last.TotalSMs != cfg.System.NumSMs {
		t.Errorf("TotalSMs = %d, want %d", last.TotalSMs, cfg.System.NumSMs)
	}
	if last.BlocksDone != last.BlocksTotal || last.BlocksTotal == 0 {
		t.Errorf("blocks %d/%d at completion", last.BlocksDone, last.BlocksTotal)
	}
	if last.Committed != r.Committed {
		t.Errorf("published committed = %d, result has %d", last.Committed, r.Committed)
	}
	if last.Series.N != r.Series.N {
		t.Errorf("published series has %d samples, result has %d", last.Series.N, r.Series.N)
	}
	if len(last.Metrics.Counters)+len(last.Metrics.Gauges) == 0 {
		t.Error("published metrics snapshot is empty")
	}
	prev := int64(-1)
	for i, sn := range sink.snaps {
		if sn.Cycle < prev {
			t.Fatalf("publish %d at cycle %d after cycle %d", i, sn.Cycle, prev)
		}
		prev = sn.Cycle
	}

	// Attaching a sink must not change the simulation.
	plain, _, _ := runTelemetry(t, 1, 1000, false)
	if plain.Cycles != r.Cycles {
		t.Errorf("sink changed cycles: %d vs %d", r.Cycles, plain.Cycles)
	}
	if !reflect.DeepEqual(plain.Metrics, r.Metrics) {
		t.Error("sink changed the metrics snapshot")
	}
}
