// Command simlint runs the simulator's static-analysis suite
// (internal/analysis: determinism, poolsafe, noalloc, enumswitch,
// directive, ckptcomplete, shardpurity).
//
// Two modes:
//
//   - Standalone: `simlint ./...` loads the named packages from source
//     (no build cache needed) and prints findings. This is what CI
//     gates on.
//
//   - Vettool: `go vet -vettool=$(which simlint) ./...` — the go
//     command invokes simlint once per package with a JSON config file
//     carrying export data, per the x/tools unitchecker protocol,
//     which this command reimplements on the stdlib.
//
// Exit status: 0 clean, 1 driver error, 2 findings (matching go vet).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gpues/internal/analysis"
	"gpues/internal/analysis/registry"
)

func main() {
	// The go command probes vettools before use: `-V=full` must print a
	// stable build identifier, `-flags` the supported flag set.
	if len(os.Args) > 1 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			printVersion()
			return
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			printFlags()
			return
		}
	}

	var (
		jsonOut  = flag.Bool("json", false, "emit JSON diagnostics (vettool protocol)")
		_        = flag.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility)")
		list     = flag.Bool("list", false, "list the registered analyzers with one-line docs and exit 0")
		listAlso = flag.Bool("analyzers", false, "alias for -list")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] ./... | simlint <vet>.cfg\n\nAnalyzers:\n")
		for _, a := range registry.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list || *listAlso {
		listAnalyzers(os.Stdout)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0], *jsonOut))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// listAnalyzers prints the registered analyzers with their one-line
// docs (the -list contract: exit 0, one analyzer per line).
func listAnalyzers(w io.Writer) {
	for _, a := range registry.All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(w, "%s: %s\n", a.Name, doc)
	}
}

// standalone loads packages from source and runs the suite
// whole-program: every module-local package in the requested set's
// import closure gets a fact-producing Run phase (in dependency order,
// so facts flow forward), then each interprocedural analyzer finishes
// over the assembled program. Diagnostics are only printed for the
// packages the user asked for.
func standalone(patterns []string) int {
	moduleDir, modulePath, err := analysis.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	dirs, err := expandPatterns(moduleDir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	loader := analysis.NewLoader(moduleDir, modulePath)
	exit := 0
	requested := map[string]bool{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(moduleDir, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := loader.LoadDir(dir, path, nil); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			exit = 1
			continue
		}
		requested[path] = true
	}

	// Run phases over the full closure, reporting only requested
	// packages; dependency packages still run so their facts exist.
	facts := analysis.NewFactStore()
	found := 0
	pkgs := loader.Packages()
	for _, lp := range pkgs {
		found += reportAll(lp, facts, requested[lp.Path])
	}

	// Finish phases over the whole program.
	prog := analysis.NewProgram(loader.Fset, pkgs, facts)
	for _, a := range registry.All() {
		diags, err := analysis.RunFinish(a, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			if exit == 0 {
				exit = 1
			}
			continue
		}
		for _, d := range diags {
			lp := prog.PackageAt(d.Pos)
			if lp == nil || !requested[lp.Path] {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", prog.Fset.Position(d.Pos), a.Name, d.Message)
			found++
		}
	}
	if found > 0 && exit == 0 {
		exit = 2
	}
	return exit
}

// expandPatterns resolves ./...-style patterns and plain directories
// into the set of package directories to analyze.
func expandPatterns(moduleDir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, rec := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = moduleDir
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !rec {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// reportAll runs every analyzer over one loaded package (populating the
// shared fact store) and, when report is set, prints the surviving
// diagnostics; returns how many were printed.
func reportAll(lp *analysis.LoadedPackage, facts *analysis.FactStore, report bool) int {
	n := 0
	for _, a := range registry.All() {
		diags, err := analysis.RunAnalyzer(a, lp, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", lp.Path, err)
			continue
		}
		if !report {
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", lp.Fset.Position(d.Pos), a.Name, d.Message)
			n++
		}
	}
	return n
}

// ---- go vet -vettool protocol (unitchecker reimplementation) ----

// vetConfig is the JSON the go command writes for each vetted package.
// Field set and semantics follow x/tools/go/analysis/unitchecker.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitCheck(cfgFile string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The simlint invariants govern the simulator's runtime code, not
		// its tests (which legitimately spawn goroutines, range over maps
		// while asserting, etc.) — matching standalone mode, which loads
		// only non-test files.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// External test package: nothing in scope, but the go command
		// still expects the facts file to exist.
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "simlint:", err)
				return 1
			}
		}
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer:  imp,
		GoVersion: strings.TrimPrefix(cfg.GoVersion, "v"),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
	}
	info := analysis.NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}

	lp := &analysis.LoadedPackage{Path: cfg.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info}

	// Facts protocol: decode upstream .vetx fact files into the store
	// before running, so interprocedural analyzers see their
	// dependencies' summaries; encode this package's facts afterwards.
	// registry.All registers the fact types with gob — it must run
	// before the first DecodeFacts call.
	analyzers := registry.All()
	facts := analysis.NewFactStore()
	byImport := map[string]*types.Package{}
	var index func(p *types.Package)
	index = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if byImport[imp.Path()] != nil {
				continue
			}
			byImport[imp.Path()] = imp
			index(imp)
		}
	}
	index(pkg)
	lookup := func(path string) *types.Package { return byImport[path] }
	// Sorted for deterministic decode order.
	var vetxPaths []string
	for p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil || len(data) == 0 {
			continue // dependency produced no facts (or pre-facts cache entry)
		}
		if err := facts.DecodeFacts(data, lookup); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: decoding facts for %s: %v\n", p, err)
			return 1
		}
	}

	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	found := 0
	byAnalyzer := map[string][]jsonDiag{}
	for _, a := range analyzers {
		diags, err := analysis.RunAnalyzer(a, lp, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
			continue
		}
		if cfg.VetxOnly {
			continue // facts produced; diagnostics belong to the reporting run
		}
		for _, d := range diags {
			found++
			if jsonOut {
				byAnalyzer[a.Name] = append(byAnalyzer[a.Name],
					jsonDiag{Posn: fset.Position(d.Pos).String(), Message: d.Message})
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			}
		}
	}

	if cfg.VetxOutput != "" {
		// Re-export the whole store (own facts plus upstream ones) so
		// downstream units see transitive summaries even when the go
		// command only hands them direct-dependency .vetx files.
		data, err := facts.EncodeFacts(map[*types.Package]bool{pkg: true}, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Finish phase over the single-unit program: interprocedural
	// analyzers prove what they can from this package plus imported
	// facts. (Whole-program guarantees — e.g. implementations declared
	// in packages that import this one — need standalone mode, which CI
	// uses.)
	prog := analysis.NewProgram(fset, []*analysis.LoadedPackage{lp}, facts)
	for _, a := range analyzers {
		diags, err := analysis.RunFinish(a, prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
			continue
		}
		for _, d := range diags {
			if lp2 := prog.PackageAt(d.Pos); lp2 == nil {
				continue // position outside this unit's files
			}
			found++
			if jsonOut {
				byAnalyzer[a.Name] = append(byAnalyzer[a.Name],
					jsonDiag{Posn: fset.Position(d.Pos).String(), Message: d.Message})
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			}
		}
	}

	if jsonOut {
		// unitchecker shape: {"pkg": {"analyzer": [diags]}}
		out := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0
	}
	if found > 0 {
		return 2
	}
	return 0
}

// printVersion emits the build-identity line the go command uses for
// tool caching (mirrors x/tools analysisflags' -V=full output).
func printVersion() {
	progname, _ := os.Executable()
	f, err := os.Open(progname)
	if err == nil {
		h := sha256.New()
		io.Copy(h, f)
		f.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)[:24]))
		return
	}
	fmt.Printf("%s version devel\n", progname)
}

// printFlags answers the go command's flag probe with the flags vet is
// allowed to pass through.
func printFlags() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		{Name: "c", Bool: false, Usage: "context lines (accepted, unused)"},
	}
	data, _ := json.Marshal(flags)
	os.Stdout.Write(data)
}
