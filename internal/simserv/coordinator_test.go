package simserv

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpues/internal/obs"
	"gpues/internal/sim"
	"gpues/internal/simserv/queue"
)

// harness is a coordinator under a fake clock behind a real HTTP
// server. Tests drive time via advance() and the reaper via tick(), so
// every lease expiry and backoff is deterministic.
type harness struct {
	t     *testing.T
	dir   string
	now   *atomic.Int64
	coord *Coordinator
	srv   *httptest.Server
	cl    *Client
}

func defaultOptions(dir string, now *atomic.Int64) Options {
	return Options{
		Queue: queue.Config{
			Cap:        16,
			Lease:      int64(10 * time.Second),
			MaxRetries: 2,
			Backoff:    int64(time.Millisecond),
			Seed:       7,
		},
		JournalDir: dir,
		Now:        now.Load,
	}
}

func newHarness(t *testing.T, mut func(*Options)) *harness {
	t.Helper()
	h := &harness{t: t, dir: t.TempDir(), now: &atomic.Int64{}}
	h.now.Store(int64(time.Hour)) // arbitrary nonzero epoch
	opt := defaultOptions(h.dir, h.now)
	if mut != nil {
		mut(&opt)
	}
	h.start(opt)
	return h
}

func (h *harness) start(opt Options) {
	h.t.Helper()
	coord, err := NewCoordinator(opt)
	if err != nil {
		h.t.Fatal(err)
	}
	h.coord = coord
	h.srv = httptest.NewServer(coord)
	h.t.Cleanup(h.srv.Close)
	h.cl = &Client{Base: h.srv.URL}
}

// restart abandons the running coordinator (a SIGKILL: no drain, no
// flush beyond what the journal already holds) and opens a fresh one
// on the same journal under the same clock.
func (h *harness) restart(mut func(*Options)) {
	h.t.Helper()
	h.srv.Close()
	opt := defaultOptions(h.dir, h.now)
	if mut != nil {
		mut(&opt)
	}
	h.start(opt)
}

func (h *harness) advance(d time.Duration) {
	h.now.Add(int64(d))
	h.coord.Tick(h.now.Load())
}

func (h *harness) submit(t *testing.T, req SubmitRequest) SubmitResponse {
	t.Helper()
	resp, err := h.cl.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

var specSgemm = JobSpec{Benchmark: "sgemm", Scale: 1}

func TestSubmitClaimCompleteHTTP(t *testing.T) {
	h := newHarness(t, nil)
	resp := h.submit(t, SubmitRequest{Spec: specSgemm})
	if resp.State != "queued" || resp.ID == "" {
		t.Fatalf("submit = %+v", resp)
	}

	claim, ok, err := h.cl.Claim("w1")
	if err != nil || !ok {
		t.Fatalf("claim: %v ok=%v", err, ok)
	}
	if claim.JobID != resp.ID || claim.Token == 0 || claim.Spec.Benchmark != "sgemm" {
		t.Fatalf("claim = %+v", claim)
	}
	if d, err := h.cl.Renew(claim.JobID, "w1", claim.Token); err != nil || d != DirectiveOK {
		t.Fatalf("renew = %q, %v", d, err)
	}
	err = h.cl.Complete(CompleteRequest{
		JobID: claim.JobID, Worker: "w1", Token: claim.Token,
		Cycles: 12345, Committed: 99, Metrics: []byte(`{"cycles":12345}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.cl.Job(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil || st.Result.Cycles != 12345 || st.Result.Worker != "w1" {
		t.Fatalf("status = %+v", st)
	}
	// Duplicate completion: fenced with 409.
	err = h.cl.Complete(CompleteRequest{JobID: claim.JobID, Worker: "w1", Token: claim.Token, Cycles: 1})
	if !IsStatus(err, http.StatusConflict) {
		t.Fatalf("duplicate complete: %v, want 409", err)
	}
	stats, err := h.cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters.Completed != 1 || stats.Counters.StaleOps != 1 || stats.Depth != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestUnknownSpecRejectedAtAdmission(t *testing.T) {
	h := newHarness(t, nil)
	_, err := h.cl.Submit(SubmitRequest{Spec: JobSpec{Benchmark: "nope"}})
	if !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("unknown benchmark: %v, want 400", err)
	}
	_, err = h.cl.Submit(SubmitRequest{Spec: JobSpec{Benchmark: "sgemm", Scheme: "bogus"}})
	if !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("unknown scheme: %v, want 400", err)
	}
}

func TestAdmissionCapReturns429WithRetryAfter(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.Queue.Cap = 2 })
	h.submit(t, SubmitRequest{ID: "a", Spec: specSgemm})
	h.submit(t, SubmitRequest{ID: "b", Spec: JobSpec{Benchmark: "sgemm", Scale: 2}})
	_, err := h.cl.Submit(SubmitRequest{ID: "c", Spec: specSgemm})
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("over-cap submit: %v, want 429", err)
	}
	if RetryAfter(err) == "" {
		t.Fatal("429 without Retry-After")
	}
	// Duplicate ID is a conflict, not a capacity problem.
	_, err = h.cl.Submit(SubmitRequest{ID: "a", Spec: specSgemm})
	if !IsStatus(err, http.StatusConflict) {
		t.Fatalf("duplicate id: %v, want 409", err)
	}
}

func TestTenantQuota(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.TenantRate = 1 // 1/s
		o.TenantBurst = 1
	})
	h.submit(t, SubmitRequest{ID: "a", Tenant: "alice", Spec: specSgemm})
	_, err := h.cl.Submit(SubmitRequest{ID: "b", Tenant: "alice", Spec: specSgemm})
	if !IsStatus(err, http.StatusTooManyRequests) || RetryAfter(err) == "" {
		t.Fatalf("over-quota: %v (retry-after %q), want 429", err, RetryAfter(err))
	}
	// Another tenant has its own bucket.
	h.submit(t, SubmitRequest{ID: "c", Tenant: "bob", Spec: specSgemm})
	// The bucket refills with (fake) time.
	h.advance(2 * time.Second)
	h.submit(t, SubmitRequest{ID: "d", Tenant: "alice", Spec: specSgemm})
	stats, _ := h.cl.Stats()
	if stats.RejectedQuota != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLeaseExpiryRequeuesAndFencesOverHTTP(t *testing.T) {
	h := newHarness(t, nil)
	resp := h.submit(t, SubmitRequest{Spec: specSgemm})
	claim, ok, _ := h.cl.Claim("w1")
	if !ok {
		t.Fatal("no claim")
	}
	h.advance(11 * time.Second) // past the 10s lease: reaper requeues
	if d, _ := h.cl.Renew(claim.JobID, "w1", claim.Token); d != DirectiveLost {
		t.Fatalf("zombie renew directive = %q, want lost", d)
	}
	h.advance(10 * time.Millisecond) // past retry backoff
	claim2, ok, _ := h.cl.Claim("w2")
	if !ok || claim2.JobID != resp.ID || claim2.Attempt != 2 {
		t.Fatalf("reclaim = %+v ok=%v", claim2, ok)
	}
	// The zombie's completion is fenced; the live worker's lands.
	err := h.cl.Complete(CompleteRequest{JobID: resp.ID, Worker: "w1", Token: claim.Token, Cycles: 666})
	if !IsStatus(err, http.StatusConflict) {
		t.Fatalf("zombie complete: %v, want 409", err)
	}
	if err := h.cl.Complete(CompleteRequest{JobID: resp.ID, Worker: "w2", Token: claim2.Token, Cycles: 777}); err != nil {
		t.Fatal(err)
	}
	st, _ := h.cl.Job(resp.ID)
	if st.State != "done" || st.Result.Cycles != 777 {
		t.Fatalf("final = %+v", st)
	}
}

func TestFailRetriesThenDeadLetterWithStall(t *testing.T) {
	h := newHarness(t, nil) // MaxRetries 2: 3 attempts
	resp := h.submit(t, SubmitRequest{Spec: specSgemm})
	for attempt := 1; ; attempt++ {
		h.advance(20 * time.Millisecond) // past any backoff
		claim, ok, err := h.cl.Claim("w")
		if err != nil || !ok {
			t.Fatalf("claim %d: %v ok=%v", attempt, err, ok)
		}
		retried, err := h.cl.Fail(FailRequest{
			JobID: claim.JobID, Worker: "w", Token: claim.Token,
			Error: "stall: watchdog", Stall: "stall report (watchdog) at cycle 5000",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !retried {
			if attempt != 3 {
				t.Fatalf("dead-lettered after %d attempts, want 3", attempt)
			}
			break
		}
	}
	st, _ := h.cl.Job(resp.ID)
	if st.State != "dead" || st.StallReport == "" || st.Retries != 3 {
		t.Fatalf("dead letter = %+v", st)
	}
	// Dead jobs stay visible (the dead-letter queue) but hold no slot.
	stats, _ := h.cl.Stats()
	if stats.Depth != 0 || stats.Counters.DeadLetters != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// The crash-recovery acceptance: a coordinator that vanishes without
// any shutdown path (SIGKILL) must restart into exactly the queue it
// last acknowledged — done stays done with its result, leased work is
// reclaimed by the reaper, nothing is lost or duplicated.
func TestCoordinatorRestartRecoversQueue(t *testing.T) {
	h := newHarness(t, nil)
	// Three jobs: one completes, one is mid-lease, one never claimed.
	done := h.submit(t, SubmitRequest{ID: "done-job", Spec: specSgemm})
	leased := h.submit(t, SubmitRequest{ID: "leased-job", Spec: JobSpec{Benchmark: "sgemm", Scale: 2}})
	_ = h.submit(t, SubmitRequest{ID: "queued-job", Spec: JobSpec{Benchmark: "mri-q", Scale: 1}})

	c1, ok, _ := h.cl.Claim("w1")
	if !ok || c1.JobID != done.ID {
		t.Fatalf("claim = %+v", c1)
	}
	if err := h.cl.Complete(CompleteRequest{JobID: c1.JobID, Worker: "w1", Token: c1.Token, Cycles: 4242, Metrics: []byte(`{"ipc":1}`)}); err != nil {
		t.Fatal(err)
	}
	c2, ok, _ := h.cl.Claim("w2")
	if !ok || c2.JobID != leased.ID {
		t.Fatalf("claim = %+v", c2)
	}

	h.restart(nil) // SIGKILL + new process on the same journal

	jobs, err := h.cl.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(jobs), jobs)
	}
	st, _ := h.cl.Job("done-job")
	if st.State != "done" || st.Result == nil || st.Result.Cycles != 4242 {
		t.Fatalf("done job lost: %+v", st)
	}
	st, _ = h.cl.Job("leased-job")
	if st.State != "leased" || st.Worker != "w2" {
		t.Fatalf("lease not recovered: %+v", st)
	}

	// The dead worker's lease expires on the recovered clock; its job
	// requeues. The zombie's late report is still fenced.
	h.advance(11 * time.Second)
	st, _ = h.cl.Job("leased-job")
	if st.State != "queued" {
		t.Fatalf("lease not reaped after restart: %+v", st)
	}
	err = h.cl.Complete(CompleteRequest{JobID: "leased-job", Worker: "w2", Token: c2.Token, Cycles: 1})
	if !IsStatus(err, http.StatusConflict) {
		t.Fatalf("zombie complete after restart: %v, want 409", err)
	}

	// Finish everything; each job completes exactly once.
	h.advance(20 * time.Millisecond)
	for {
		claim, ok, err := h.cl.Claim("w3")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if err := h.cl.Complete(CompleteRequest{JobID: claim.JobID, Worker: "w3", Token: claim.Token, Cycles: 100}); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := h.cl.Stats()
	if stats.Depth != 0 || stats.Counters.Completed != 2 { // post-restart counter: leased-job + queued-job
		t.Fatalf("stats after recovery = %+v", stats)
	}

	// The result cache survived the crash: an identical submission is
	// served from the done job's journaled result.
	hit := h.submit(t, SubmitRequest{ID: "cache-check", Spec: specSgemm})
	if hit.State != "done" || hit.Result == nil || !hit.Result.CacheHit || hit.Result.Cycles != 4242 {
		t.Fatalf("cache not rebuilt from journal: %+v", hit)
	}

	// A second restart after full completion recovers an all-terminal
	// queue with nothing claimable.
	h.restart(nil)
	if _, ok, _ := h.cl.Claim("w4"); ok {
		t.Fatal("claim succeeded on fully completed queue")
	}
}

func TestDrainPreemptsAndRejects(t *testing.T) {
	h := newHarness(t, nil)
	h.submit(t, SubmitRequest{ID: "running", Spec: specSgemm})
	claim, ok, _ := h.cl.Claim("w1")
	if !ok {
		t.Fatal("no claim")
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- h.coord.Drain(5 * time.Second) }()
	waitUntil(t, func() bool { return h.coord.Draining() })

	// Draining: no new work in, no new claims out.
	_, err := h.cl.Submit(SubmitRequest{ID: "late", Spec: specSgemm})
	if !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("submit during drain: %v, want 503", err)
	}
	if _, ok, _ := h.cl.Claim("w2"); ok {
		t.Fatal("claim handed out during drain")
	}

	// The leased worker is told to checkpoint at its next renewal...
	d, err := h.cl.Renew(claim.JobID, "w1", claim.Token)
	if err != nil || d != DirectivePreempt {
		t.Fatalf("renew during drain = %q, %v; want preempt", d, err)
	}
	// ...and its handoff completes the drain.
	if err := h.cl.Preempt(PreemptRequest{JobID: claim.JobID, Worker: "w1", Token: claim.Token, Checkpoint: "/spool/x"}); err != nil {
		t.Fatal(err)
	}
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}
	st, _ := h.cl.Job("running")
	if st.State != "queued" || st.Checkpoint != "/spool/x" {
		t.Fatalf("preempted job = %+v", st)
	}
	stats, _ := h.cl.Stats()
	if !stats.Draining || stats.Counters.Preemptions != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// A successor coordinator on the same journal is not draining and
	// resumes the preempted job from its checkpoint.
	h.restart(nil)
	claim2, ok, _ := h.cl.Claim("w3")
	if !ok || claim2.Checkpoint != "/spool/x" {
		t.Fatalf("resume claim after drained handover = %+v ok=%v", claim2, ok)
	}
}

func TestDrainTimesOutOnStuckWorker(t *testing.T) {
	h := newHarness(t, nil)
	h.submit(t, SubmitRequest{Spec: specSgemm})
	if _, ok, _ := h.cl.Claim("w1"); !ok {
		t.Fatal("no claim")
	}
	// The worker never checkpoints: drain must give up, not hang.
	if err := h.coord.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("drain with a stuck lease returned nil")
	}
}

// An idle coordinator drains instantly.
func TestDrainIdle(t *testing.T) {
	h := newHarness(t, nil)
	if err := h.coord.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// captureSink records the last published fabric snapshot.
type captureSink struct {
	mu   sync.Mutex
	last obs.Snapshot
	n    int
}

func (s *captureSink) PublishFabric(snap obs.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last, s.n = snap, s.n+1
}

// Every fabric state change publishes a metrics snapshot to the sink
// (the obsrv server in production), with queue counters mirrored as
// Prometheus-typed counters and live state as gauges.
func TestFabricMetricsPublishedToSink(t *testing.T) {
	sink := &captureSink{}
	h := newHarness(t, func(o *Options) { o.Sink = sink })
	h.submit(t, SubmitRequest{ID: "a", Spec: specSgemm})
	claim, ok, _ := h.cl.Claim("w1")
	if !ok {
		t.Fatal("no claim")
	}
	sink.mu.Lock()
	depth := sink.last.Gauges["fabric.queue.depth"]
	leased := sink.last.Gauges["fabric.queue.leased"]
	sink.mu.Unlock()
	if depth != 1 || leased != 1 {
		t.Fatalf("gauges after claim: depth=%d leased=%d", depth, leased)
	}
	if err := h.cl.Complete(CompleteRequest{JobID: claim.JobID, Worker: "w1", Token: claim.Token, Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	h.submit(t, SubmitRequest{ID: "b", Spec: specSgemm}) // cache hit
	sink.mu.Lock()
	defer sink.mu.Unlock()
	c := sink.last.Counters
	if c["fabric.jobs.submitted"] != 2 || c["fabric.jobs.completed"] != 2 || c["fabric.cache.hits"] != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if sink.n < 4 {
		t.Fatalf("published %d snapshots, want one per transition", sink.n)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerEndToEnd runs the real worker against the real coordinator
// with real simulations: the job's reported cycle count must equal a
// direct sequential sim.RunSpec of the same spec — the fabric adds
// scheduling, not noise.
func TestWorkerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg, lspec, err := specSgemm.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.RunSpec(cfg, lspec)
	if err != nil {
		t.Fatal(err)
	}

	h := newHarness(t, func(o *Options) { o.Now = nil }) // real clock: the worker renews on wall time
	w := &Worker{
		Client:      h.cl,
		Name:        "e2e-w1",
		Spool:       h.coord.SpoolDir(),
		SliceCycles: 20_000,
		Poll:        5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx) //nolint:errcheck // returns nil on cancel

	resp := h.submit(t, SubmitRequest{Spec: specSgemm})
	waitUntil(t, func() bool {
		st, err := h.cl.Job(resp.ID)
		return err == nil && st.State == "done"
	})
	st, _ := h.cl.Job(resp.ID)
	if st.Result.Cycles != ref.Cycles {
		t.Fatalf("fabric cycles %d != sequential reference %d", st.Result.Cycles, ref.Cycles)
	}
	if st.Result.Committed != ref.Committed {
		t.Fatalf("fabric committed %d != reference %d", st.Result.Committed, ref.Committed)
	}
}
