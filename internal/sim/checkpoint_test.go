package sim

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpues/internal/chaos"
	"gpues/internal/ckpt"
	"gpues/internal/config"
	"gpues/internal/vm"
)

// runRef runs cfg on a fresh spec uninterrupted and returns the result.
func runRef(t *testing.T, cfg config.Config, spec func() LaunchSpec) *Result {
	t.Helper()
	r, err := RunSpec(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// saveAt runs a fresh simulator to cycle at and returns the captured
// checkpoint.
func saveAt(t *testing.T, cfg config.Config, spec func() LaunchSpec, at int64) *ckpt.Checkpoint {
	t.Helper()
	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	reached, err := s.StepTo(at)
	if err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatalf("run finished at cycle %d before snapshot cycle %d", s.Cycle(), at)
	}
	return s.Capture()
}

// resumeFrom restores ck onto a fresh simulator and runs to completion.
func resumeFrom(t *testing.T, cfg config.Config, spec func() LaunchSpec, ck *ckpt.Checkpoint) *Result {
	t.Helper()
	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ck); err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkIdentical fails unless the resumed result matches the
// uninterrupted reference exactly — cycles, all statistics, metrics.
func checkIdentical(t *testing.T, ref, got *Result) {
	t.Helper()
	if got.Cycles != ref.Cycles {
		t.Fatalf("resumed run took %d cycles, uninterrupted run %d", got.Cycles, ref.Cycles)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got %+v\nwant %+v", got, ref)
	}
}

// TestCheckpointResumeBitIdentical is the core differential test: for
// every Fig10 scheme, snapshot mid-run, restore onto a fresh
// simulator, run to completion, and require a bit-identical Result.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, sch := range []config.Scheme{
		config.Baseline, config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	} {
		sch := sch
		t.Run(sch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Scheme = sch
			spec := func() LaunchSpec { return testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionCPUInit) }
			ref := runRef(t, cfg, spec)
			at := ref.Cycles / 2
			ck := saveAt(t, cfg, spec, at)
			// SkipTo can jump over event-free stretches, so the snapshot
			// lands on the first cycle boundary at or after the target.
			if ck.Cycle < at || ck.Cycle >= ref.Cycles {
				t.Fatalf("checkpoint at cycle %d, want within [%d, %d)", ck.Cycle, at, ref.Cycles)
			}
			checkIdentical(t, ref, resumeFrom(t, cfg, spec, ck))
		})
	}
}

// TestCheckpointRoundTripThroughFile exercises the on-disk path:
// periodic checkpoints during a run, resume from the latest file.
func TestCheckpointRoundTripThroughFile(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	spec := func() LaunchSpec { return testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionCPUInit) }
	ref := runRef(t, cfg, spec)

	dir := t.TempDir()
	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	s.CheckpointEvery = ref.Cycles / 4
	s.CheckpointDir = dir
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointing must not perturb the run itself.
	checkIdentical(t, ref, r)

	path, ck, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cycle <= 0 || ck.Cycle >= ref.Cycles {
		t.Fatalf("latest checkpoint at cycle %d, want within (0, %d)", ck.Cycle, ref.Cycles)
	}
	s2, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, ref, r2)
}

// TestCheckpointResumeUnderChaos snapshots a chaos run mid-flight —
// faults, forced switches and injected stalls in the air — and
// requires bit-identical resumption, including the injected-event log.
func TestCheckpointResumeUnderChaos(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	spec := func() LaunchSpec { return testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionCPUInit) }
	newPlan := func() *chaos.Plan {
		p, err := chaos.ForLevel(3, 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	refSim, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	refSim.AttachChaos(newPlan())
	ref, err := refSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	refFP := refSim.chaos.Fingerprint()

	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	s.AttachChaos(newPlan())
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	at := ref.Cycles / 2
	if reached, err := s.StepTo(at); err != nil || !reached {
		t.Fatalf("StepTo(%d): reached=%v err=%v", at, reached, err)
	}
	ck := s.Capture()

	s2, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachChaos(newPlan())
	if err := s2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, ref, r2)
	if fp := s2.chaos.Fingerprint(); fp != refFP {
		t.Fatalf("resumed chaos event log fingerprint %#x, want %#x", fp, refFP)
	}
}

// TestCheckpointMidFault snapshots at the first cycle with a pending
// fault in the fault unit, so restore is exercised with in-flight
// fault state.
func TestCheckpointMidFault(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	spec := func() LaunchSpec { return testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionCPUInit) }
	ref := runRef(t, cfg, spec)

	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	at := int64(-1)
	for c := int64(1); c < ref.Cycles; c++ {
		reached, err := s.StepTo(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reached {
			break
		}
		if s.funit.Pending() > 0 {
			at = s.Cycle()
			break
		}
	}
	if at < 0 {
		t.Fatal("no cycle with a pending fault found")
	}
	ck := s.Capture()
	checkIdentical(t, ref, resumeFrom(t, cfg, spec, ck))
}

// TestCheckpointMidBlockSwitch snapshots while a block switch is in
// flight (a block off-chip or mid-transition) under the
// block-switching scheme with forced switches.
func TestCheckpointMidBlockSwitch(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	cfg.Scheduler.Enabled = true
	cfg.Scheduler.SwitchThreshold = 0
	cfg.SM.MaxThreadBlocks = 2 // force pending blocks so switching has work
	spec := func() LaunchSpec { return testSpec(t, 64, 128, vm.RegionCPUInit, vm.RegionGPUInit) }
	newPlan := func() *chaos.Plan {
		return chaos.New(chaos.Config{Seed: 11, ForceSwitchProb: 1, MaxForcedSwitches: 64})
	}

	refSim, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	refSim.AttachChaos(newPlan())
	ref, err := refSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var totalSwitches int64
	for _, st := range ref.SMs {
		totalSwitches += st.SwitchesOut
	}
	if totalSwitches == 0 {
		t.Fatal("no block switches occurred; test setup cannot exercise mid-switch snapshots")
	}

	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	s.AttachChaos(newPlan())
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	at := int64(-1)
	for c := int64(1); c < ref.Cycles; c++ {
		reached, err := s.StepTo(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reached {
			break
		}
		for _, m := range s.sms {
			if m.Snapshot().OffChip > 0 {
				at = s.Cycle()
				break
			}
		}
		if at >= 0 {
			break
		}
	}
	if at < 0 {
		t.Skip("no mid-switch cycle observed")
	}
	ck := s.Capture()

	s2, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachChaos(newPlan())
	if err := s2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, ref, r2)
}

// TestCheckpointPropertyRandom is the property test: random scheme,
// placement, grid shape and snapshot cycle — save → restore → run to
// end must always be bit-identical to the uninterrupted run.
func TestCheckpointPropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	rng := rand.New(rand.NewSource(42))
	schemes := []config.Scheme{
		config.Baseline, config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	}
	for i := 0; i < 6; i++ {
		sch := schemes[rng.Intn(len(schemes))]
		blocks := 8 + rng.Intn(16)
		inKind := vm.RegionCPUInit
		if rng.Intn(2) == 0 {
			inKind = vm.RegionGPUInit
		}
		chaosSeed := rng.Int63()
		useChaos := rng.Intn(2) == 0
		frac := 0.1 + 0.8*rng.Float64()

		cfg := config.Default()
		cfg.Scheme = sch
		spec := func() LaunchSpec { return testSpec(t, blocks, 128, inKind, vm.RegionCPUInit) }
		newPlan := func() *chaos.Plan {
			if !useChaos {
				return nil
			}
			p, err := chaos.ForLevel(2, chaosSeed)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}

		refSim, err := New(cfg, spec())
		if err != nil {
			t.Fatal(err)
		}
		refSim.AttachChaos(newPlan())
		ref, err := refSim.Run()
		if err != nil {
			t.Fatal(err)
		}

		at := int64(float64(ref.Cycles) * frac)
		if at < 1 {
			at = 1
		}
		s, err := New(cfg, spec())
		if err != nil {
			t.Fatal(err)
		}
		s.AttachChaos(newPlan())
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		reached, err := s.StepTo(at)
		if err != nil {
			t.Fatal(err)
		}
		if !reached {
			t.Fatalf("case %d: finished before snapshot cycle %d", i, at)
		}
		ck := s.Capture()

		s2, err := New(cfg, spec())
		if err != nil {
			t.Fatal(err)
		}
		s2.AttachChaos(newPlan())
		if err := s2.Restore(ck); err != nil {
			t.Fatalf("case %d (scheme=%v chaos=%v at=%d): %v", i, sch, useChaos, at, err)
		}
		r2, err := s2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r2.Cycles != ref.Cycles || !reflect.DeepEqual(ref, r2) {
			t.Fatalf("case %d (scheme=%v chaos=%v at=%d): resumed run differs", i, sch, useChaos, at)
		}
	}
}

// TestRestoreRejectsMismatchedConfig: a checkpoint from one config must
// not restore onto a simulator built for another.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := config.Default()
	spec := func() LaunchSpec { return testSpec(t, 8, 128, vm.RegionGPUInit, vm.RegionGPUInit) }
	ck := saveAt(t, cfg, spec, 100)

	other := config.Default()
	other.Scheme = config.ReplayQueue
	s, err := New(other, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ck); err == nil {
		t.Fatal("restore onto a different config must fail")
	}
}

// TestInjectedDivergenceDetected: a nonce perturbation in the
// checkpointing run must surface as a DivergenceError naming the
// component when a clean replay verifies against it.
func TestInjectedDivergenceDetected(t *testing.T) {
	cfg := config.Default()
	spec := func() LaunchSpec { return testSpec(t, 8, 128, vm.RegionGPUInit, vm.RegionGPUInit) }

	s, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectDivergence(50, "cache.l2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if reached, err := s.StepTo(100); err != nil || !reached {
		t.Fatalf("StepTo: reached=%v err=%v", reached, err)
	}
	ck := s.Capture()

	clean, err := New(cfg, spec())
	if err != nil {
		t.Fatal(err)
	}
	err = clean.Restore(ck)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("restore error = %v, want DivergenceError", err)
	}
	if de.Component != "cache.l2" {
		t.Errorf("divergent component = %q, want cache.l2", de.Component)
	}
	if de.Cycle != 100 {
		t.Errorf("divergence reported at cycle %d, want 100", de.Cycle)
	}

	// InjectDivergence must reject unknown components.
	if err := s.InjectDivergence(10, "no.such.component"); err == nil {
		t.Error("unknown component accepted")
	}
}

// TestWatchdogWritesStallCheckpoint: a stalled run with a checkpoint
// dir configured leaves an automatic stall checkpoint referenced in
// its report.
func TestWatchdogWritesStallCheckpoint(t *testing.T) {
	cfg := config.Default()
	cfg.MaxCycles = 500 // force a max-cycles stall mid-run
	dir := t.TempDir()
	s, err := New(cfg, testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionCPUInit))
	if err != nil {
		t.Fatal(err)
	}
	s.CheckpointDir = dir
	_, err = s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("run error = %v, want StallError", err)
	}
	if se.Report.Checkpoint == "" {
		t.Fatal("stall report carries no checkpoint path")
	}
	if _, err := os.Stat(se.Report.Checkpoint); err != nil {
		t.Fatalf("stall checkpoint missing: %v", err)
	}
	if filepath.Dir(se.Report.Checkpoint) != dir {
		t.Errorf("stall checkpoint %s not in %s", se.Report.Checkpoint, dir)
	}
	// The stall checkpoint must itself restore cleanly.
	s2, err := New(cfg, testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionCPUInit))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreFile(se.Report.Checkpoint); err != nil {
		t.Fatalf("restore from stall checkpoint: %v", err)
	}
}
