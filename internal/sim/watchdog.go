package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpues/internal/host"
	"gpues/internal/obs"
	"gpues/internal/sm"
)

// DefaultProgressWindow is the watchdog window: a simulation that makes
// no progress for this many cycles aborts with a stall report — 0.1% of
// DefaultMaxCycles, so livelocks surface three orders of magnitude
// sooner than the hard cycle bound.
const DefaultProgressWindow = 2_000_000

// watchdog detects livelock: it fires when the progress signature stays
// unchanged for a full window of cycles.
type watchdog struct {
	window   int64
	lastSig  int64
	lastMove int64 // cycle the signature last changed
}

// observe reports whether the run has stalled as of cycle.
func (w *watchdog) observe(cycle, sig int64) bool {
	if sig != w.lastSig {
		w.lastSig = sig
		w.lastMove = cycle
		return false
	}
	return cycle-w.lastMove >= w.window
}

// progressSignature folds every form of forward progress into one
// counter: committed instructions, block issue/completion, fault
// resolutions (pages mapped on either handler) and context movement.
// Re-walks and re-translations are deliberately excluded — a fault loop
// that never resolves must read as no progress.
func (s *Simulator) progressSignature() int64 {
	var sig int64
	for _, m := range s.sms {
		st := m.Stats()
		sig += st.Committed + st.ContextBytes + st.SwitchesIn
	}
	sig += int64(s.disp.Issued()) + int64(s.disp.Completed())
	sig += s.cpu.Stats().PagesMapped
	if s.local != nil {
		sig += s.local.Stats().PagesMapped
	}
	return sig
}

// StallReport is the structured diagnostic emitted when a run aborts
// without completing: deadlock (all SMs idle, no pending events),
// livelock (watchdog window expired), an invariant violation, or the
// hard MaxCycles bound.
type StallReport struct {
	Reason string // "deadlock", "watchdog", "invariant" or "max-cycles"
	Cycle  int64
	// Window is the watchdog window that expired (watchdog reason).
	Window int64
	// Violations lists invariant violations (invariant reason).
	Violations []string
	// Checkpoint is the path of the automatic stall checkpoint (empty
	// when checkpointing is off or the stall state is not resumable).
	Checkpoint string

	Committed     int64
	BlocksIssued  int
	BlocksDone    int
	BlocksPending int
	FaultQueue    int // pending fault queue length
	CPUFaults     host.FaultStats
	FillBusy      int // active page table walkers
	FillQueued    int // walks waiting for a walker
	L2MSHRs       int
	L2TLBMSHRs    int
	EventsPending int // events left in the clock queue
	SMs           []sm.Snapshot
	// Trace holds the newest tracer events at the time of the stall
	// (empty when no tracer was attached) — the flight recorder.
	Trace []obs.Event
	// LastSample is the most recent telemetry sample (zero unless
	// Config.SampleEvery was positive) — the metric trajectory into
	// the stall, complementing the event tail above.
	LastSample obs.SamplePoint
}

// String renders the full multi-line report.
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall report (%s) at cycle %d", r.Reason, r.Cycle)
	if r.Reason == "watchdog" {
		fmt.Fprintf(&b, ": no progress for %d cycles", r.Window)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  violation: %s", v)
	}
	fmt.Fprintf(&b, "\n  blocks: %d issued, %d done, %d pending; %d instructions committed",
		r.BlocksIssued, r.BlocksDone, r.BlocksPending, r.Committed)
	fmt.Fprintf(&b, "\n  faults: queue=%d, CPU served=%d (queue wait %d cycles)",
		r.FaultQueue, r.CPUFaults.Served, r.CPUFaults.QueueCycles)
	fmt.Fprintf(&b, "\n  translation: %d walkers busy, %d walks queued, L2TLB MSHRs=%d, L2 MSHRs=%d",
		r.FillBusy, r.FillQueued, r.L2TLBMSHRs, r.L2MSHRs)
	fmt.Fprintf(&b, "\n  clock: %d events pending", r.EventsPending)
	if r.Checkpoint != "" {
		fmt.Fprintf(&b, "\n  checkpoint: %s", r.Checkpoint)
	}
	for _, snap := range r.SMs {
		if snap.Assigned == 0 {
			continue // an SM with no work cannot be the culprit
		}
		fmt.Fprintf(&b, "\n%s", snap)
	}
	if r.LastSample.Values != nil {
		fmt.Fprintf(&b, "\n  last %s", r.LastSample)
	}
	if len(r.Trace) > 0 {
		fmt.Fprintf(&b, "\n  last %d trace events:", len(r.Trace))
		for _, e := range r.Trace {
			fmt.Fprintf(&b, "\n    %s", e)
		}
	}
	return b.String()
}

// StallError is the error a non-completing run returns; it carries the
// full report (errors.As recovers it for programmatic access).
type StallError struct {
	Report StallReport
}

// Error renders the report: a stalled simulation is terminal, so the
// diagnostics ride on the error itself.
func (e *StallError) Error() string {
	return "sim: " + e.Report.String()
}

// stallTraceEvents is how many of the newest tracer events ride on a
// stall report.
const stallTraceEvents = 64

// stallError captures the system state into a StallError.
func (s *Simulator) stallError(reason string, violations []string) error {
	rep := StallReport{
		Reason:        reason,
		Cycle:         s.q.Now(),
		Violations:    violations,
		BlocksIssued:  s.disp.Issued(),
		BlocksDone:    s.disp.Completed(),
		BlocksPending: s.disp.PendingBlocks(),
		FaultQueue:    s.funit.Pending(),
		CPUFaults:     s.cpu.Stats(),
		FillBusy:      s.fu.Busy(),
		FillQueued:    s.fu.Queued(),
		L2MSHRs:       s.l2.InFlight(),
		L2TLBMSHRs:    s.l2tlb.InFlight(),
		EventsPending: s.q.Len(),
	}
	if reason == "watchdog" {
		rep.Window = s.progressWindow
	}
	rep.Trace = s.tracer.LastN(stallTraceEvents)
	if s.sampler.Len() > 0 {
		rep.LastSample = s.sampler.Last()
	}
	for _, m := range s.sms {
		st := m.Stats()
		rep.Committed += st.Committed
		rep.SMs = append(rep.SMs, m.Snapshot())
	}
	// Write an automatic checkpoint so the stall state can be reloaded
	// for bisection or inspection. Only loop-top reasons qualify: a
	// deadlock is raised after the cycle's ticks, where the state no
	// longer matches what a replay to this cycle would reach.
	if s.CheckpointDir != "" && !s.replaying && reason != "deadlock" && !s.finished() {
		if err := os.MkdirAll(s.CheckpointDir, 0o755); err == nil {
			path := filepath.Join(s.CheckpointDir, fmt.Sprintf("stall-%012d.ckpt", rep.Cycle))
			if err := s.Capture().WriteFile(path); err == nil {
				rep.Checkpoint = path
			}
		}
	}
	return &StallError{Report: rep}
}

// maxMSHRAge bounds how long any cache or TLB miss may legitimately
// stay outstanding; it tracks the watchdog window, which already bounds
// system-wide progress gaps.
func (s *Simulator) maxMSHRAge() int64 {
	if s.progressWindow > 0 {
		return s.progressWindow
	}
	return DefaultProgressWindow
}

// CheckInvariants sweeps the structural invariants of the whole system:
// block conservation across dispatcher and SMs, per-SM scoreboard and
// block bookkeeping, cache/TLB MSHR occupancy and leak detection, and
// fill-unit walker accounting. It returns one message per violation.
func (s *Simulator) CheckInvariants() []string {
	var v []string
	now := s.q.Now()
	maxAge := s.maxMSHRAge()

	// Block conservation: every block handed out is either done or
	// owned by exactly one SM (resident or switched out).
	assigned := 0
	for _, m := range s.sms {
		assigned += m.AssignedBlocks()
	}
	if got, want := s.disp.Completed()+assigned, s.disp.Issued(); got != want {
		v = append(v, fmt.Sprintf("block conservation: %d issued but %d done + %d assigned",
			want, s.disp.Completed(), assigned))
	}
	for _, m := range s.sms {
		v = append(v, m.CheckInvariants(now, maxAge)...)
	}
	v = append(v, s.l2.CheckInvariants(now, maxAge)...)
	v = append(v, s.l2tlb.CheckInvariants(now, maxAge)...)
	v = append(v, s.fu.CheckInvariants()...)
	return v
}
