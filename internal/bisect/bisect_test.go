package bisect

import (
	"os"
	"path/filepath"
	"testing"

	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
	"gpues/internal/vm"
)

// testSpec builds a small vecadd launch. Each call builds a fresh
// functional memory, so every probe's simulator starts from the same
// initial image.
func testSpec(t *testing.T, blocks, threads int) sim.LaunchSpec {
	t.Helper()
	n := blocks * threads
	const (
		aAddr = uint64(0x1000000)
		bAddr = uint64(0x2000000)
		oAddr = uint64(0x3000000)
	)
	mem := emu.NewMemory()
	for i := 0; i < n; i++ {
		mem.WriteF64(aAddr+uint64(i*8), float64(i))
		mem.WriteF64(bAddr+uint64(i*8), float64(i)*2)
	}

	b := kernel.NewBuilder("vecadd")
	pa := b.AddParam(aAddr)
	pb := b.AddParam(bAddr)
	po := b.AddParam(oAddr)
	tid, ctaid, ntid := b.Reg(), b.Reg(), b.Reg()
	gid, off, base, va, vb := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid)
	b.Shl(off, gid, 3)
	b.LoadParam(base, pa)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(va, base, 0, 8)
	b.LoadParam(base, pb)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(vb, base, 0, 8)
	b.FAdd(va, va, vb)
	b.LoadParam(base, po)
	b.IAdd(base, base, off, 0)
	b.StGlobal(base, 0, va, 8)
	b.Exit()
	k := b.MustBuild()

	size := uint64(n * 8)
	if size < 4096 {
		size = 4096
	}
	return sim.LaunchSpec{
		Launch: &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: threads}},
		Memory: mem,
		Regions: []vm.Region{
			{Name: "a", Base: aAddr, Size: size, Kind: vm.RegionGPUInit},
			{Name: "b", Base: bAddr, Size: size, Kind: vm.RegionGPUInit},
			{Name: "out", Base: oAddr, Size: size, Kind: vm.RegionGPUInit},
		},
	}
}

// builder returns a SimRunner Build function; inject != nil perturbs
// that component's digest at the given cycle.
func builder(t *testing.T, injectCycle int64, injectComp string) func() (*sim.Simulator, error) {
	cfg := config.Default()
	return func() (*sim.Simulator, error) {
		s, err := sim.New(cfg, testSpec(t, 16, 128))
		if err != nil {
			return nil, err
		}
		if injectComp != "" {
			if err := s.InjectDivergence(injectCycle, injectComp); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

func TestBisectPinpointsSeededDivergence(t *testing.T) {
	a := SimRunner{Build: builder(t, 0, "")}
	b := SimRunner{Build: builder(t, 50, "cache.l2")}

	rep, err := FirstDivergence(a, b, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged {
		t.Fatal("seeded divergence not detected")
	}
	if rep.Component != "cache.l2" {
		t.Errorf("component = %q, want cache.l2", rep.Component)
	}
	if rep.FirstCycle != 50 {
		t.Errorf("first divergence at cycle %d, want 50", rep.FirstCycle)
	}
	t.Logf("report: %s", rep)
}

func TestBisectNoDivergence(t *testing.T) {
	a := SimRunner{Build: builder(t, 0, "")}
	b := SimRunner{Build: builder(t, 0, "")}

	rep, err := FirstDivergence(a, b, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatalf("identical runs reported divergent: %s", rep)
	}
	if !rep.A.Done || !rep.B.Done {
		t.Error("completion probes must report Done")
	}
}

func TestBisectRejectsDivergentLowerBound(t *testing.T) {
	a := SimRunner{Build: builder(t, 0, "")}
	b := SimRunner{Build: builder(t, 5, "dram")}
	if _, err := FirstDivergence(a, b, 100, -1); err == nil {
		t.Fatal("lower bound past the divergence must be rejected")
	}
}

func TestNearestShared(t *testing.T) {
	dirA := t.TempDir()
	dirB := t.TempDir()

	// Run A checkpoints every 200 cycles clean; run B does the same but
	// diverges at cycle 500, so the checkpoints at 200 and 400 agree and
	// later ones do not.
	runTo := func(build func() (*sim.Simulator, error), dir string) {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		s.CheckpointEvery = 200
		s.CheckpointDir = dir
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	runTo(builder(t, 0, ""), dirA)
	runTo(builder(t, 500, "dram"), dirB)

	cycle, err := NearestShared(dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if cycle != 400 {
		t.Errorf("nearest shared checkpoint at cycle %d, want 400", cycle)
	}

	// And the shared cycle is a valid bisection lower bound.
	rep, err := FirstDivergence(
		SimRunner{Build: builder(t, 0, "")},
		SimRunner{Build: builder(t, 500, "dram")},
		cycle, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 500 can fall in a quiet stretch the event queue skips, so
	// the first *observable* boundary is the first loop-top cycle at or
	// after it.
	if !rep.Diverged || rep.Component != "dram" || rep.FirstCycle < 500 {
		t.Errorf("report = %s, want dram at >= 500", rep)
	}
}

func TestDigestsByCycleSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := writeGarbage(filepath.Join(dir, "ckpt-000000000001.ckpt")); err != nil {
		t.Fatal(err)
	}
	m, err := digestsByCycle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Errorf("garbage checkpoint contributed digests: %v", m)
	}
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("not a checkpoint"), 0o644)
}
