package obs

// StallReason classifies why a warp could not issue (or make fetch
// progress), reproducing the Figure-12-style cycle breakdown across the
// exception schemes. In-loop reasons (scoreboard, port, log, chaos) are
// counted at the issue stage's stall sites; interval reasons
// (fault-wait, barrier, fetch-*, off-chip) accumulate the cycles
// between the blocking event and its release.
type StallReason uint8

const (
	// StallScoreboard: a RAW/WAW/WAR scoreboard hazard blocked issue.
	StallScoreboard StallReason = iota
	// StallPort: the instruction's execution-unit issue port was
	// exhausted this cycle.
	StallPort
	// StallLogFull: the operand log partition had no free entries
	// (operand-log scheme back-pressure, Section 3.3).
	StallLogFull
	// StallChaos: injected issue back-pressure (chaos plans).
	StallChaos
	// StallFaultWait: cycles a warp spent disabled with outstanding
	// page faults (squash to last resolution).
	StallFaultWait
	// StallBarrier: cycles warps waited at bar.sync.
	StallBarrier
	// StallFetchCtl: cycles fetch was blocked behind an in-flight
	// control instruction (baseline fetch rule, Section 2.1).
	StallFetchCtl
	// StallFetchWD: cycles fetch was blocked by warp disable (commit or
	// last-TLB-check variant, Section 3.1).
	StallFetchWD
	// StallOffChip: cycles a block spent switched out (drain start to
	// switch-in completion), per block.
	StallOffChip

	NumStallReasons
)

var stallNames = [NumStallReasons]string{
	StallScoreboard: "scoreboard",
	StallPort:       "port",
	StallLogFull:    "log-full",
	StallChaos:      "chaos",
	StallFaultWait:  "fault-wait",
	StallBarrier:    "barrier",
	StallFetchCtl:   "fetch-control",
	StallFetchWD:    "fetch-warp-disable",
	StallOffChip:    "off-chip",
}

// String returns the kebab-case reason name used in metrics and docs.
func (r StallReason) String() string {
	if r < NumStallReasons {
		return stallNames[r]
	}
	return "unknown"
}

// StallBreakdown accumulates cycles (or stall occurrences for the
// in-loop reasons) per reason.
type StallBreakdown [NumStallReasons]int64

// Add folds another breakdown in.
func (b *StallBreakdown) Add(o StallBreakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Total sums all reasons.
func (b StallBreakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}
