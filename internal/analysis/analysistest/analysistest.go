// Package analysistest is a golden-file test harness for the simlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the stdlib only: a testdata package is type-checked from source,
// the analyzer runs over it, and its diagnostics are matched against
// `// want "regexp"` comments on the expected lines. Every diagnostic
// must be wanted and every want must be hit, so the corpus doubles as
// a no-false-positive test: clean patterns carry no want comments and
// any diagnostic on them fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gpues/internal/analysis"
)

// Run loads the single package in dir (relative to the test's working
// directory) under the given import path, applies the analyzer, and
// compares diagnostics against the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgpath string) {
	t.Helper()
	moduleDir, modulePath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", abs)
	}

	loader := analysis.NewLoader(moduleDir, modulePath)
	lp, err := loader.LoadDir(abs, pkgpath, files)
	if err != nil {
		t.Fatal(err)
	}

	// Fact-based analyzers summarize dependencies before the corpus
	// package (the loader's order is topological), then finish over the
	// whole mini-program. Only corpus-file diagnostics are matched
	// against wants: the dependency packages are real repo packages and
	// their findings belong to the repo-wide simlint run, not here.
	analysis.RegisterFactTypes(a)
	facts := analysis.NewFactStore()
	var diags []analysis.Diagnostic
	for _, dep := range loader.Packages() {
		ds, err := analysis.RunAnalyzer(a, dep, facts)
		if err != nil {
			t.Fatal(err)
		}
		if dep == lp {
			diags = ds
		}
	}
	prog := analysis.NewProgram(lp.Fset, loader.Packages(), facts)
	fdiags, err := analysis.RunFinish(a, prog)
	if err != nil {
		t.Fatal(err)
	}
	corpus := map[string]bool{}
	for _, name := range files {
		corpus[name] = true
	}
	for _, d := range fdiags {
		if corpus[lp.Fset.Position(d.Pos).Filename] {
			diags = append(diags, d)
		}
	}

	wants := collectWants(t, lp)
	for _, d := range diags {
		p := lp.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		if !consume(wants[key], d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.rx)
			}
		}
	}
}

type want struct {
	rx  *regexp.Regexp
	hit bool
}

func consume(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.hit && w.rx.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans `// want "rx" ["rx"...]` comments, keyed by the
// file:line they sit on.
func collectWants(t *testing.T, lp *analysis.LoadedPackage) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or trail one (a directive
				// corpus wants diagnostics on the directive comment itself:
				// `//simlint:noaloc x // want "unknown"`).
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				p := lp.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, rx := range parseWantArgs(t, key, rest) {
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	return wants
}

// parseWantArgs splits a want payload into its quoted regexps.
func parseWantArgs(t *testing.T, key, s string) []*regexp.Regexp {
	t.Helper()
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q", key, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want string", key)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", key, s[:end+1], err)
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", key, lit, err)
		}
		out = append(out, rx)
		s = s[end+1:]
	}
}
