package core

import (
	"fmt"
	"sort"

	"gpues/internal/ckpt"
)

// SaveState serializes the fault unit: queue depth, statistics, and the
// pending regions sorted by base address (the pending map must never be
// iterated raw). Region waiter closures are rebuilt by replay.
func (u *FaultUnit) SaveState(w *ckpt.Writer) {
	w.Int(u.queued)
	w.I64(u.stats.Raised)
	w.I64(u.stats.Regions)
	w.I64(u.stats.Merged)
	w.I64(u.stats.RoutedCPU)
	w.I64(u.stats.RoutedLocal)
	w.Int(u.stats.MaxQueue)

	bases := make([]uint64, 0, len(u.pending))
	for b := range u.pending {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	w.Int(len(bases))
	for _, b := range bases {
		rf := u.pending[b]
		w.U64(b)
		w.Int(rf.pos)
		w.I64(rf.born)
		w.Int(len(rf.waiters))
	}
}

// RestoreState reads the SaveState stream back, installing counters and
// cross-checking the replayed pending-region population.
func (u *FaultUnit) RestoreState(r *ckpt.Reader) error {
	u.queued = r.Int()
	u.stats.Raised = r.I64()
	u.stats.Regions = r.I64()
	u.stats.Merged = r.I64()
	u.stats.RoutedCPU = r.I64()
	u.stats.RoutedLocal = r.I64()
	u.stats.MaxQueue = r.Int()

	n := r.Int()
	for i := 0; i < n; i++ {
		r.U64()
		r.Int()
		r.I64()
		r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(u.pending) {
		return fmt.Errorf("faultunit: replayed %d pending regions, checkpoint has %d", len(u.pending), n)
	}
	return nil
}

// SaveState serializes the GPU-local handler: per-slot next-free
// cycles, statistics, and each SM partition's physical allocator.
func (h *LocalHandler) SaveState(w *ckpt.Writer) {
	w.Int(len(h.free))
	for _, f := range h.free {
		w.I64(f)
	}
	w.I64(h.stats.Handled)
	w.I64(h.stats.PagesMapped)
	w.I64(h.stats.SerialCycles)
	w.Int(len(h.allocs))
	for _, a := range h.allocs {
		a.SaveState(w)
	}
}

// RestoreState reads the SaveState stream back and installs it.
func (h *LocalHandler) RestoreState(r *ckpt.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(h.free) {
		return fmt.Errorf("localhandler: %d slots, checkpoint has %d", len(h.free), n)
	}
	for i := range h.free {
		h.free[i] = r.I64()
	}
	h.stats.Handled = r.I64()
	h.stats.PagesMapped = r.I64()
	h.stats.SerialCycles = r.I64()
	na := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if na != len(h.allocs) {
		return fmt.Errorf("localhandler: %d allocator partitions, checkpoint has %d", len(h.allocs), na)
	}
	for _, a := range h.allocs {
		if err := a.RestoreState(r); err != nil {
			return err
		}
	}
	return r.Err()
}
