package core

import (
	"strings"
	"testing"

	"gpues/internal/clock"
	"gpues/internal/vm"
)

// recResolver records service requests and resolves them after a fixed
// delay.
type recResolver struct {
	q     *clock.Queue
	delay int64
	calls []uint64
	smIDs []int
}

func (r *recResolver) Service(region uint64, kind vm.FaultKind, smID int, done func()) {
	r.calls = append(r.calls, region)
	r.smIDs = append(r.smIDs, smID)
	r.q.After(r.delay, done)
}

func drain(q *clock.Queue) {
	for q.Len() > 0 {
		q.Step()
	}
}

func TestFaultUnitMergesRegions(t *testing.T) {
	q := clock.New()
	cpu := &recResolver{q: q, delay: 100}
	fu, err := NewFaultUnit(q, 64*1024, cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	// Three pages in the same 64 KB region, one in another.
	p0 := fu.RaiseFault(0x10000, vm.FaultMigrate, 0, func() { resolved++ })
	p1 := fu.RaiseFault(0x12000, vm.FaultMigrate, 1, func() { resolved++ })
	p2 := fu.RaiseFault(0x1f000, vm.FaultMigrate, 2, func() { resolved++ })
	p3 := fu.RaiseFault(0x20000, vm.FaultMigrate, 3, func() { resolved++ })
	if p0 != 0 || p1 != 0 || p2 != 0 {
		t.Errorf("merged faults share queue position 0: got %d %d %d", p0, p1, p2)
	}
	if p3 != 1 {
		t.Errorf("second region position = %d, want 1", p3)
	}
	if fu.Pending() != 2 {
		t.Errorf("pending regions = %d, want 2", fu.Pending())
	}
	drain(q)
	if resolved != 4 {
		t.Errorf("resolved callbacks = %d, want 4", resolved)
	}
	if len(cpu.calls) != 2 {
		t.Errorf("resolver served %d regions, want 2 (merged)", len(cpu.calls))
	}
	st := fu.Stats()
	if st.Raised != 4 || st.Regions != 2 || st.Merged != 2 || st.MaxQueue != 2 {
		t.Errorf("stats = %+v", st)
	}
	if fu.Pending() != 0 {
		t.Errorf("pending after drain = %d", fu.Pending())
	}
}

func TestFaultUnitRouting(t *testing.T) {
	q := clock.New()
	cpu := &recResolver{q: q, delay: 10}
	local := &recResolver{q: q, delay: 10}
	fu, _ := NewFaultUnit(q, 64*1024, cpu, local)
	fu.RaiseFault(0x10000, vm.FaultMigrate, 0, func() {})
	fu.RaiseFault(0x20000, vm.FaultAllocOnly, 1, func() {})
	drain(q)
	if len(cpu.calls) != 1 || cpu.calls[0] != 0x10000 {
		t.Errorf("CPU served %v, want [0x10000] (migrations always go to the CPU)", cpu.calls)
	}
	if len(local.calls) != 1 || local.calls[0] != 0x20000 {
		t.Errorf("local served %v, want [0x20000]", local.calls)
	}
	st := fu.Stats()
	if st.RoutedCPU != 1 || st.RoutedLocal != 1 {
		t.Errorf("routing stats = %+v", st)
	}
	// Without a local handler, alloc-only faults go to the CPU.
	fu2, _ := NewFaultUnit(q, 64*1024, cpu, nil)
	fu2.RaiseFault(0x30000, vm.FaultAllocOnly, 0, func() {})
	drain(q)
	if len(cpu.calls) != 2 {
		t.Error("alloc-only fault not routed to CPU when local handling is off")
	}
}

func TestFaultUnitInvalidAborts(t *testing.T) {
	q := clock.New()
	cpu := &recResolver{q: q, delay: 10}
	fu, _ := NewFaultUnit(q, 64*1024, cpu, nil)
	fu.RaiseFault(0xdead0000, vm.FaultInvalid, 5, func() {})
	if fu.Err() == nil {
		t.Fatal("invalid fault must set the abort error")
	}
	if !strings.Contains(fu.Err().Error(), "SM 5") {
		t.Errorf("abort error %q should name the SM", fu.Err())
	}
	if len(cpu.calls) != 0 {
		t.Error("invalid fault must not be serviced")
	}
}

func TestFaultUnitValidation(t *testing.T) {
	q := clock.New()
	if _, err := NewFaultUnit(q, 0, &recResolver{}, nil); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := NewFaultUnit(q, 3000, &recResolver{}, nil); err == nil {
		t.Error("non power-of-two granularity accepted")
	}
	if _, err := NewFaultUnit(q, 65536, nil, nil); err == nil {
		t.Error("nil CPU resolver accepted")
	}
}

func newAS(t *testing.T) *vm.AddressSpace {
	t.Helper()
	as, err := vm.NewAddressSpace(4096, 64<<20, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.AddRegion(vm.Region{Name: "heap", Base: 0, Size: 32 << 20, Kind: vm.RegionLazy}); err != nil {
		t.Fatal(err)
	}
	return as
}

func TestLocalHandlerMapsRegion(t *testing.T) {
	q := clock.New()
	as := newAS(t)
	lh, err := NewLocalHandler(q, as, 16, 64*1024, 20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt int64 = -1
	lh.Service(0x10000, vm.FaultAllocOnly, 3, func() { doneAt = q.Now() })
	drain(q)
	if doneAt != 20000 {
		t.Errorf("handler completed at %d, want 20000 (20 us at 1 GHz)", doneAt)
	}
	// All 16 pages of the region mapped.
	for p := uint64(0x10000); p < 0x20000; p += 4096 {
		if as.Classify(p) != vm.FaultNone {
			t.Errorf("page %#x not mapped after handling", p)
		}
	}
	st := lh.Stats()
	if st.Handled != 1 || st.PagesMapped != 16 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLocalHandlerConcurrencyBound(t *testing.T) {
	q := clock.New()
	as := newAS(t)
	lh, _ := NewLocalHandler(q, as, 16, 64*1024, 1000, 0)
	conc := DefaultHandlerConcurrency(16)
	if conc != 3 {
		t.Fatalf("default concurrency for 16 SMs = %d, want 3", conc)
	}
	var times []int64
	// Twice the slot count: the second wave queues behind the first.
	for i := 0; i < 2*conc; i++ {
		lh.Service(uint64(i)<<16, vm.FaultAllocOnly, i%16, func() { times = append(times, q.Now()) })
	}
	drain(q)
	first, second := 0, 0
	for _, ts := range times {
		switch ts {
		case 1000:
			first++
		case 2000:
			second++
		default:
			t.Errorf("completion at %d, want 1000 or 2000", ts)
		}
	}
	if first != conc || second != conc {
		t.Errorf("wave sizes = %d/%d, want %d/%d", first, second, conc, conc)
	}
	if lh.Stats().SerialCycles == 0 {
		t.Error("queued handlers must record serialization")
	}
}

func TestLocalHandlerUsesSMPartition(t *testing.T) {
	q := clock.New()
	as := newAS(t)
	lh, _ := NewLocalHandler(q, as, 4, 64*1024, 100, 0)
	lh.Service(0x40000, vm.FaultAllocOnly, 2, func() {})
	drain(q)
	if lh.allocs[2].Allocated() != 16 {
		t.Errorf("SM 2 partition allocated %d frames, want 16", lh.allocs[2].Allocated())
	}
	for i, a := range lh.allocs {
		if i != 2 && a.Allocated() != 0 {
			t.Errorf("partition %d allocated %d frames, want 0", i, a.Allocated())
		}
	}
	// Out-of-range SM ids clamp rather than crash.
	lh.Service(0x100000, vm.FaultAllocOnly, -1, func() {})
	drain(q)
}

func TestLocalHandlerValidation(t *testing.T) {
	q := clock.New()
	as := newAS(t)
	if _, err := NewLocalHandler(q, as, 0, 65536, 100, 0); err == nil {
		t.Error("zero SMs accepted")
	}
	if _, err := NewLocalHandler(q, as, 4, 65536, 0, 0); err == nil {
		t.Error("zero handler cost accepted")
	}
}
