// Package config holds the simulation parameters of the modelled GPU
// system. The defaults reproduce Table 1 of the paper: an NVIDIA Kepler
// K20-class GPU with 16 SMs running at 1 GHz, attached to the host over
// NVLink or PCI Express 3.0.
package config

import (
	"fmt"

	"gpues/internal/excep"
)

// Scheme selects the SM pipeline organization with respect to exception
// support. Baseline is the stall-on-fault pipeline of current GPUs (no
// preemptible faults); the remaining schemes are the paper's proposals
// (Section 3).
type Scheme int

const (
	// Baseline stalls faulting instructions in the pipeline while the
	// CPU resolves the fault (treated as a very long TLB miss). Faulted
	// warps cannot be preempted.
	Baseline Scheme = iota
	// WarpDisableCommit treats global memory instructions as instruction
	// barriers: warp fetch is disabled from the fetch of a global memory
	// instruction until its commit.
	WarpDisableCommit
	// WarpDisableLastCheck re-enables warp fetch as soon as the last
	// coalesced request of the memory instruction passes its TLB check
	// (the earliest fault-safe point).
	WarpDisableLastCheck
	// ReplayQueue captures in-flight global memory instructions in a
	// replay queue and releases their source operand scoreboards only
	// after the last TLB check.
	ReplayQueue
	// OperandLog additionally logs source operands of global memory
	// instructions so the baseline early scoreboard release is kept.
	OperandLog
)

// String returns the name used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case WarpDisableCommit:
		return "wd-commit"
	case WarpDisableLastCheck:
		return "wd-lastcheck"
	case ReplayQueue:
		return "replay-queue"
	case OperandLog:
		return "operand-log"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Preemptible reports whether the scheme supports preempting and
// restarting faulted warps (i.e., any scheme other than the baseline).
func (s Scheme) Preemptible() bool { return s != Baseline }

// Interconnect identifies the CPU-GPU system interconnect.
type Interconnect int

const (
	// NVLink models an NVLink 1.0-class link.
	NVLink Interconnect = iota
	// PCIe models a PCI Express 3.0 x16 link.
	PCIe
)

// String returns the name used in the paper's figures.
func (ic Interconnect) String() string {
	if ic == NVLink {
		return "NVLink"
	}
	return "PCIe"
}

// SMConfig holds the per-SM parameters (Table 1, top half).
type SMConfig struct {
	MaxThreadBlocks int // resident thread blocks per SM
	MaxWarps        int // resident warps per SM
	WarpSize        int // threads per warp
	RegisterFileKB  int // unified register file size
	SharedMemoryKB  int // scratch-pad (CUDA shared memory) size
	IssueWidth      int // instructions issued per cycle (total)
	IssueWarps      int // distinct warps that may issue in one cycle
	// GreedyIssue selects a greedy-then-oldest warp scheduler: the warp
	// that issued last keeps priority until it stalls. False selects
	// loose round-robin (the baseline's behaviour). An extension beyond
	// the paper, exposed for scheduling studies.
	GreedyIssue bool

	// Back-end execution units.
	MathUnits    int
	SpecialUnits int
	LoadStore    int
	BranchUnits  int

	// Back-end latencies in cycles (not in Table 1; chosen to match a
	// Kepler-class SM).
	MathLatency    int
	SpecialLatency int
	BranchLatency  int
	SharedLatency  int

	// L1 data cache.
	L1SizeKB   int
	L1Ways     int
	L1LineB    int
	L1MSHRs    int
	L1Latency  int
	L1TLBSize  int
	L1TLBWays  int
	L1TLBLat   int
	OperandLog OperandLogConfig
}

// OperandLogConfig configures the operand log scheme (Section 3.3).
type OperandLogConfig struct {
	// SizeKB is the per-SM log size. The log is partitioned evenly among
	// the thread blocks resident at kernel launch.
	SizeKB int
	// EntryBytes is the size of one log entry: one 8-byte operand for
	// each of the 32 threads of a warp (512 B would hold address+data;
	// the paper's entry is one operand wide: loads take one entry,
	// stores two).
	EntryBytes int
}

// Entries returns the total number of log entries.
func (c OperandLogConfig) Entries() int {
	if c.EntryBytes == 0 {
		return 0
	}
	return c.SizeKB * 1024 / c.EntryBytes
}

// SystemConfig holds the chip- and system-level parameters (Table 1,
// bottom half).
type SystemConfig struct {
	NumSMs       int
	FrequencyGHz float64

	L2SizeKB  int
	L2Ways    int
	L2LineB   int
	L2MSHRs   int
	L2Latency int

	L2TLBEntries int
	L2TLBWays    int
	L2TLBMSHRs   int
	L2TLBLatency int

	PTWalkers   int
	WalkLatency int

	DRAMBandwidthGBs float64
	DRAMLatency      int

	PageSize          int // GPU page size in bytes (4 KB)
	FaultGranularity  int // handling/migration granularity (64 KB)
	GPUMemoryMB       int // GPU physical memory
	CPUMemoryMB       int // host physical memory visible to the model
	PendingFaultQueue int // capacity of the global pending fault queue
}

// FaultCosts holds the measured principal components of a page fault
// round trip (Section 5.3/5.4), in microseconds.
type FaultCosts struct {
	MigrateUS   float64 // fault requiring a data transfer (page dirty in CPU)
	AllocOnlyUS float64 // fault requiring only allocation (page not dirty)
	CPUHandleUS float64 // CPU handler occupancy per fault
	GPUHandleUS float64 // GPU-local handler latency per fault
}

// InterconnectConfig describes the CPU-GPU link.
type InterconnectConfig struct {
	Kind           Interconnect
	BandwidthGBs   float64 // unidirectional payload bandwidth
	LatencyUS      float64 // one-way signalling latency
	FaultCosts     FaultCosts
	DuplexChannels int // concurrent transfers the link sustains
}

// SchedulerConfig configures the use-case 1 local scheduler (Section 4.1).
type SchedulerConfig struct {
	// MaxExtraBlocks bounds the off-chip blocks a single SM may
	// accumulate (4 in the paper's configuration).
	MaxExtraBlocks int
	// SwitchThreshold is the minimum position in the global pending
	// fault queue for which switching out the faulted block is deemed
	// worthwhile.
	SwitchThreshold int
	// IdealContextSwitch charges 1 cycle for save and 1 for restore
	// instead of the state-size-derived cost.
	IdealContextSwitch bool
	// Enabled turns block switching on.
	Enabled bool
}

// LocalHandlerConfig configures use-case 2 (Section 4.2).
type LocalHandlerConfig struct {
	// Enabled routes first-touch (allocation-only) faults to the
	// GPU-resident handler instead of the CPU.
	Enabled bool
	// Concurrency bounds how many handler invocations run usefully in
	// parallel across the GPU; the handlers serialize on system-level
	// synchronization (Szymanski's lock around shared page table
	// updates). 0 selects the default of one handler per five SMs
	// (3 for the 16-SM baseline), which matches the measured
	// scalability the paper reports.
	Concurrency int
}

// ExcepConfig configures device-side exception handling (the taxonomy
// and delivery modes of internal/excep) and the seeded bit-flip
// resilience campaign.
type ExcepConfig struct {
	// Mode selects exception delivery: precise (drain outstanding
	// replays, kill the offending warp, run the rest of the machine on)
	// or preemptible (squash the offending block through the
	// block-switch save path). Preemptible delivery needs a scheme that
	// can preempt, i.e. any scheme other than the baseline.
	Mode excep.Mode
	// PollEvery is the host's exception-flag polling granularity in
	// cycles — the model's API-call boundary. The run terminates with
	// the structured exception error at the first poll boundary after
	// the first record posts (or at launch completion, if sooner).
	// 0 selects the host default.
	PollEvery int64
	// Flip is the seeded architectural bit-flip injection campaign;
	// a zero Rate disables injection entirely.
	Flip excep.FlipConfig
}

// Config is the complete configuration of a simulation.
type Config struct {
	SM        SMConfig
	System    SystemConfig
	Link      InterconnectConfig
	Scheme    Scheme
	Scheduler SchedulerConfig
	Local     LocalHandlerConfig
	Excep     ExcepConfig

	// DemandPaging starts all data in CPU memory and migrates on fault.
	// When false, data is pre-placed in GPU memory (explicit transfers).
	DemandPaging bool
	// LazyOutput leaves kernel output pages unallocated so first writes
	// fault (use-case 2, Figure 14).
	LazyOutput bool
	// LazyHeap leaves device-heap pages unallocated so first allocator
	// touches fault (use-case 2, Figure 13).
	LazyHeap bool

	// Workers is the number of worker goroutines the run loop may use
	// for the parallel tick phase: SM ticks are sharded across workers
	// each cycle, with all shared-state side effects staged into
	// per-SM ledgers and flushed in SM index order after the barrier,
	// so results — sim-cycles, metrics, traces, per-component digests —
	// are bit-identical at every worker count (see docs/parallelism.md).
	// 0 or 1 selects the sequential path, byte-identical to a build
	// without the knob. Workers is excluded from the checkpoint config
	// fingerprint: a checkpoint taken at one worker count restores at
	// any other.
	Workers int

	// SampleEvery, when positive, samples every registered metric into
	// the in-memory telemetry series each time the main loop crosses a
	// multiple of this many cycles (at the sequential post-tick flush
	// point, so sampling is bit-identical at any worker count and a
	// sampled run's cycles and digests match an unsampled one's).
	// 0 disables the sampler. Like Workers, SampleEvery is excluded
	// from the checkpoint config fingerprint.
	SampleEvery int64

	// MaxCycles aborts the simulation past this many cycles (a last-ditch
	// livelock bound; the progress watchdog normally fires far earlier).
	// 0 selects the simulator default.
	MaxCycles int64
	// ProgressWindow is the watchdog window in cycles: a run that makes
	// no progress (no commits, no fault resolutions, no block or context
	// movement) for a full window aborts with a structured stall report.
	// 0 selects the simulator default; negative disables the watchdog.
	ProgressWindow int64
}

// Default returns the Table 1 configuration with an NVLink interconnect
// and the baseline pipeline.
func Default() Config {
	return Config{
		SM: SMConfig{
			MaxThreadBlocks: 16,
			MaxWarps:        64,
			WarpSize:        32,
			RegisterFileKB:  256,
			SharedMemoryKB:  32,
			IssueWidth:      2,
			IssueWarps:      2,
			MathUnits:       2,
			SpecialUnits:    1,
			LoadStore:       1,
			BranchUnits:     1,
			MathLatency:     10,
			SpecialLatency:  16,
			BranchLatency:   8,
			SharedLatency:   24,
			L1SizeKB:        32,
			L1Ways:          4,
			L1LineB:         128,
			L1MSHRs:         32,
			L1Latency:       40,
			L1TLBSize:       32,
			L1TLBWays:       8,
			L1TLBLat:        1,
			OperandLog: OperandLogConfig{
				SizeKB:     16,
				EntryBytes: 256, // 32 threads x 8 B operand
			},
		},
		System: SystemConfig{
			NumSMs:            16,
			FrequencyGHz:      1.0,
			L2SizeKB:          2048,
			L2Ways:            8,
			L2LineB:           128,
			L2MSHRs:           512,
			L2Latency:         70,
			L2TLBEntries:      1024,
			L2TLBWays:         8,
			L2TLBMSHRs:        128,
			L2TLBLatency:      70,
			PTWalkers:         64,
			WalkLatency:       500,
			DRAMBandwidthGBs:  256,
			DRAMLatency:       200,
			PageSize:          4096,
			FaultGranularity:  64 * 1024,
			GPUMemoryMB:       4096,
			CPUMemoryMB:       8192,
			PendingFaultQueue: 4096,
		},
		Link:   NVLinkConfig(),
		Scheme: Baseline,
		Scheduler: SchedulerConfig{
			MaxExtraBlocks:  4,
			SwitchThreshold: 1,
		},
		Excep: ExcepConfig{
			Mode:      excep.ModePrecise,
			PollEvery: 1024,
		},
	}
}

// NVLinkConfig returns the NVLink interconnect parameters with the fault
// costs measured in Section 5.3 (12 us with transfer, 10 us alloc-only).
func NVLinkConfig() InterconnectConfig {
	return InterconnectConfig{
		Kind:         NVLink,
		BandwidthGBs: 40,
		LatencyUS:    1.0,
		FaultCosts: FaultCosts{
			MigrateUS:   12,
			AllocOnlyUS: 10,
			CPUHandleUS: 2,
			GPUHandleUS: 20,
		},
		DuplexChannels: 2,
	}
}

// PCIeConfig returns the PCIe 3.0 interconnect parameters with the fault
// costs measured in Section 5.3 (25 us with transfer, 12 us alloc-only).
func PCIeConfig() InterconnectConfig {
	return InterconnectConfig{
		Kind:         PCIe,
		BandwidthGBs: 12,
		LatencyUS:    2.5,
		FaultCosts: FaultCosts{
			MigrateUS:   25,
			AllocOnlyUS: 12,
			CPUHandleUS: 2,
			GPUHandleUS: 20,
		},
		DuplexChannels: 1,
	}
}

// Cycles converts a duration in microseconds to clock cycles at the
// configured frequency.
func (c *Config) Cycles(us float64) int64 {
	return int64(us * c.System.FrequencyGHz * 1000)
}

// BytesPerCycle returns the DRAM bandwidth expressed in bytes per core
// clock cycle.
func (c *Config) BytesPerCycle() float64 {
	return c.System.DRAMBandwidthGBs / c.System.FrequencyGHz
}

// Validate checks the configuration for inconsistencies that would make
// the simulation meaningless, returning a descriptive error.
func (c *Config) Validate() error {
	switch {
	case c.SM.WarpSize <= 0:
		return fmt.Errorf("config: warp size must be positive, got %d", c.SM.WarpSize)
	case c.SM.MaxWarps <= 0 || c.SM.MaxThreadBlocks <= 0:
		return fmt.Errorf("config: SM residency limits must be positive (warps=%d blocks=%d)",
			c.SM.MaxWarps, c.SM.MaxThreadBlocks)
	case c.System.NumSMs <= 0:
		return fmt.Errorf("config: need at least one SM, got %d", c.System.NumSMs)
	case c.System.PageSize <= 0 || c.System.PageSize&(c.System.PageSize-1) != 0:
		return fmt.Errorf("config: page size must be a positive power of two, got %d", c.System.PageSize)
	case c.System.FaultGranularity < c.System.PageSize:
		return fmt.Errorf("config: fault granularity %d below page size %d",
			c.System.FaultGranularity, c.System.PageSize)
	case c.System.FaultGranularity%c.System.PageSize != 0:
		return fmt.Errorf("config: fault granularity %d not a multiple of page size %d",
			c.System.FaultGranularity, c.System.PageSize)
	case c.SM.L1LineB <= 0 || c.System.L2LineB <= 0:
		return fmt.Errorf("config: cache line sizes must be positive")
	case c.Scheme == OperandLog && c.SM.OperandLog.Entries() < c.SM.MaxThreadBlocks:
		return fmt.Errorf("config: operand log of %d entries cannot give one entry to each of %d blocks",
			c.SM.OperandLog.Entries(), c.SM.MaxThreadBlocks)
	case c.Excep.Mode < 0 || c.Excep.Mode >= excep.NumModes:
		return fmt.Errorf("config: unknown exception mode %d", int(c.Excep.Mode))
	case c.Excep.Mode == excep.ModePreemptible && !c.Scheme.Preemptible():
		return fmt.Errorf("config: preemptible exception delivery requires a preemptible scheme, not %s",
			c.Scheme)
	case c.Excep.PollEvery < 0:
		return fmt.Errorf("config: exception poll period %d must not be negative", c.Excep.PollEvery)
	case c.Excep.Flip.Rate < 0 || c.Excep.Flip.Rate > 1:
		return fmt.Errorf("config: flip rate %g outside [0,1]", c.Excep.Flip.Rate)
	case c.Excep.Flip.ProtectThreads < 0:
		return fmt.Errorf("config: protected thread count %d must not be negative",
			c.Excep.Flip.ProtectThreads)
	case c.Workers < 0:
		return fmt.Errorf("config: worker count %d must not be negative (0 or 1 = sequential)",
			c.Workers)
	case c.SampleEvery < 0:
		return fmt.Errorf("config: sample period %d must not be negative (0 = sampling off)",
			c.SampleEvery)
	}
	return nil
}
