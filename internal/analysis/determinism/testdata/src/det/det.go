// Package det is the determinism analyzer's golden corpus: each
// flagged construct carries a want comment; the clean patterns below it
// must produce no diagnostics.
//
//simlint:deterministic
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type state struct {
	counts map[string]int64
	names  []string
	total  int64
}

func (s *state) emit(string) {}

// --- flagged constructs ------------------------------------------------

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a timing-core package"
}

func globalRand() int {
	return rand.Intn(6) // want "global math/rand source"
}

func spawn(fn func()) {
	go fn() // want "goroutine spawned in a timing-core package"
}

// A function literal cannot launder a spawn: only a declaration-level
// //simlint:shardsafe annotation sanctions it.
func spawnViaLiteral() {
	launch := func() {
		go func() {}() // want "goroutine spawned in a timing-core package"
	}
	launch()
}

func (s *state) mutatesThroughPointer() {
	for range s.counts {
		s.total++ // want "loop body mutates non-local state"
	}
}

func (s *state) assignsNonLocal() {
	for k := range s.counts {
		s.names = append(s.names, k) // want "loop body assigns to non-local state"
	}
}

func (s *state) callsOut() {
	for k := range s.counts {
		s.emit(k) // want "loop body calls out"
	}
}

func firstKey(m map[string]int64) string {
	for k := range m {
		return k // want "returns early"
	}
	return ""
}

func pump(m map[string]int64, ch chan string) {
	for k := range m {
		ch <- k // want "sends on a channel"
	}
}

// --- clean patterns (no diagnostics allowed) ---------------------------

func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func (s *state) sortedKeys() []string {
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sum(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

func clear(m map[string]int64) {
	for k := range m {
		delete(m, k)
	}
}

func copyInto(src map[string]int64) map[string]string {
	dst := make(map[string]string, len(src))
	for k, v := range src {
		dst[k] = fmt.Sprintf("%d", v)
	}
	return dst
}

// The sanctioned concurrency idiom: a shardsafe-annotated declaration
// may spawn, both directly and through nested function literals
// (workers stage effects into ledgers flushed deterministically).
//
//simlint:shardsafe
func launchWorkers(n int, work func(int)) {
	for w := 0; w < n; w++ {
		w := w
		go work(w)
		go func() {
			inner := func() { go work(w) }
			inner()
		}()
	}
}
