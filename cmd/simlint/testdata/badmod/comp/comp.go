// Package comp carries the deliberate defect: a Saver field SaveState
// never serializes. The suite must exit nonzero on it — this fixture
// is the CI negative gate proving the analyzer still bites.
package comp

import "badmod/internal/ckpt"

// Counter has one field its checkpoint methods forgot.
type Counter struct {
	ticks     int64
	forgotten int64
}

// SaveState serializes only ticks; forgotten is the injected gap.
func (c *Counter) SaveState(w *ckpt.Writer) {
	w.I64(c.ticks)
}

// RestoreState mirrors SaveState.
func (c *Counter) RestoreState(r *ckpt.Reader) error {
	c.ticks = r.I64()
	return r.Err()
}
