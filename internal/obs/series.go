package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Sampler snapshots every registered instrument of a Registry into an
// append-only, delta-encoded in-memory time series. One sample is a row
// of int64 deltas — the cycle delta followed by one delta per column —
// so a long mostly-steady run compresses into small numbers and the
// whole series lives in one flat slice.
//
// Columns are fixed at construction: every counter and gauge
// contributes one column under its metric name, every histogram
// contributes "<name>.count" and "<name>.sum", all sorted by column
// name. The sorted order makes both the read sweep and the exports
// deterministic.
//
// The sampler only reads instruments; it never schedules clock events
// or otherwise feeds back into the simulation, so a sampled run is
// bit-identical to an unsampled one. Sample is allocation-free after
// the backing array's warm-up (see the noalloc annotation).
type Sampler struct {
	every int64
	names []string
	read  []func() int64

	// vals and prev are the current and previous readings; data holds
	// the delta rows back to back (stride = 1 + len(names)).
	vals []int64
	prev []int64
	data []int64

	n         int
	lastCycle int64
}

// samplerWarmup is the row capacity preallocated at construction; runs
// with more samples grow the backing array geometrically (off the
// noalloc hot path).
const samplerWarmup = 512

// NewSampler builds a sampler over r's instruments with the given
// sampling period in cycles. The column set is frozen at this point, so
// build it after every instrument is registered. A nil registry yields
// a sampler with no columns (still safe to use).
func NewSampler(every int64, r *Registry) *Sampler {
	sp := &Sampler{every: every}
	if r != nil {
		for _, n := range sortedNames(r.counters) {
			c := r.counters[n]
			sp.names = append(sp.names, n)
			sp.read = append(sp.read, c.Value)
		}
		for _, n := range sortedNames(r.gauges) {
			sp.names = append(sp.names, n)
			sp.read = append(sp.read, r.gauges[n])
		}
		for _, n := range sortedNames(r.hists) {
			h := r.hists[n]
			sp.names = append(sp.names, n+".count", n+".sum")
			sp.read = append(sp.read, h.Count, func() int64 { return h.sum })
		}
		// The three groups are each sorted, but the merged column list
		// must be too: sort names and reads together.
		sort.Sort(&columnSort{sp.names, sp.read})
	}
	sp.vals = make([]int64, len(sp.read))
	sp.prev = make([]int64, len(sp.read))
	sp.data = make([]int64, 0, (1+len(sp.read))*samplerWarmup)
	return sp
}

// columnSort sorts column names and their read funcs in lockstep.
type columnSort struct {
	names []string
	read  []func() int64
}

func (c *columnSort) Len() int           { return len(c.names) }
func (c *columnSort) Less(i, j int) bool { return c.names[i] < c.names[j] }
func (c *columnSort) Swap(i, j int) {
	c.names[i], c.names[j] = c.names[j], c.names[i]
	c.read[i], c.read[j] = c.read[j], c.read[i]
}

// Every returns the sampling period in cycles.
func (sp *Sampler) Every() int64 {
	if sp == nil {
		return 0
	}
	return sp.every
}

// Len returns the number of samples taken.
func (sp *Sampler) Len() int {
	if sp == nil {
		return 0
	}
	return sp.n
}

// Sample reads every column and appends one delta row for the given
// cycle. Callers sample at monotonically non-decreasing cycles; the
// simulator's flush-point hook does.
//
//simlint:noalloc
func (sp *Sampler) Sample(cycle int64) {
	for i, f := range sp.read {
		sp.vals[i] = f()
	}
	stride := 1 + len(sp.vals)
	if cap(sp.data)-len(sp.data) < stride {
		//simlint:ignore noalloc grow path, runs once per capacity doubling past the warm-up
		grown := make([]int64, len(sp.data), 2*cap(sp.data)+stride)
		copy(grown, sp.data)
		sp.data = grown
	}
	sp.data = sp.data[:len(sp.data)+stride]
	row := sp.data[len(sp.data)-stride:]
	row[0] = cycle - sp.lastCycle
	for i, v := range sp.vals {
		row[i+1] = v - sp.prev[i]
	}
	copy(sp.prev, sp.vals)
	sp.lastCycle = cycle
	sp.n++
}

// LastCycle returns the cycle of the most recent sample (0 before any).
func (sp *Sampler) LastCycle() int64 {
	if sp == nil {
		return 0
	}
	return sp.lastCycle
}

// View returns an immutable view of the series so far. The view aliases
// the sampler's backing array but only its already-written prefix: rows
// are append-only and never rewritten, so a view taken at the flush
// point stays valid — and race-free — while the sampler keeps
// appending. A nil sampler yields an empty view.
func (sp *Sampler) View() SeriesView {
	if sp == nil {
		return SeriesView{}
	}
	return SeriesView{
		Every: sp.every,
		Names: sp.names,
		Data:  sp.data[:len(sp.data):len(sp.data)],
		N:     sp.n,
	}
}

// Last returns the most recent sample as absolute values — the
// flight-recorder point a StallReport embeds. Cold path; allocates.
func (sp *Sampler) Last() SamplePoint {
	if sp == nil || sp.n == 0 {
		return SamplePoint{}
	}
	p := SamplePoint{Cycle: sp.lastCycle, Values: make(map[string]int64, len(sp.names))}
	for i, n := range sp.names {
		p.Values[n] = sp.prev[i]
	}
	return p
}

// SamplePoint is one sample with absolute values, keyed by column name.
type SamplePoint struct {
	Cycle  int64
	Values map[string]int64
}

// String renders the point's nonzero values in sorted order.
func (p SamplePoint) String() string {
	if p.Values == nil {
		return fmt.Sprintf("sample at cycle %d (empty)", p.Cycle)
	}
	names := sortedNames(p.Values)
	s := fmt.Sprintf("sample at cycle %d:", p.Cycle)
	for _, n := range names {
		if v := p.Values[n]; v != 0 {
			s += fmt.Sprintf(" %s=%d", n, v)
		}
	}
	return s
}

// SeriesView is an immutable snapshot of a sampler's series: the delta
// rows written so far, with stride 1+len(Names) (cycle delta first).
// The zero view is an empty series.
type SeriesView struct {
	Every int64
	Names []string
	Data  []int64
	N     int
}

// Stride returns the row width in int64s.
func (v SeriesView) Stride() int { return 1 + len(v.Names) }

// Row returns sample i's delta row (cycle delta at index 0).
func (v SeriesView) Row(i int) []int64 {
	st := v.Stride()
	return v.Data[i*st : (i+1)*st]
}

// Table decodes the delta rows into an absolute-valued table.
func (v SeriesView) Table() *SeriesTable {
	t := &SeriesTable{
		Every:  v.Every,
		Names:  append([]string(nil), v.Names...),
		Cycles: make([]int64, v.N),
		Cols:   make([][]int64, len(v.Names)),
	}
	for c := range t.Cols {
		t.Cols[c] = make([]int64, v.N)
	}
	var cycle int64
	acc := make([]int64, len(v.Names))
	for i := 0; i < v.N; i++ {
		row := v.Row(i)
		cycle += row[0]
		t.Cycles[i] = cycle
		for c := range acc {
			acc[c] += row[c+1]
			t.Cols[c][i] = acc[c]
		}
	}
	return t
}

// seriesSchema tags the NDJSON header line.
const seriesSchema = "gpues-series/1"

// seriesHeader is the first NDJSON line: schema, sampling period, and
// the column names that give meaning to each row's value vector.
type seriesHeader struct {
	Schema  string   `json:"schema"`
	Every   int64    `json:"every"`
	Columns []string `json:"columns"`
}

// seriesRow is one NDJSON sample: the absolute cycle, the absolute
// column values, and the derived per-interval rates (the interval is
// the span since the previous row, or since cycle 0 for the first).
type seriesRow struct {
	Cycle int64   `json:"cycle"`
	V     []int64 `json:"v"`
	// Derived rates; omitted when the interval spans zero cycles.
	IPC           *float64 `json:"ipc,omitempty"`
	FaultRate     *float64 `json:"fault_rate,omitempty"`
	Occupancy     *int64   `json:"occupancy,omitempty"`
	TopStall      string   `json:"top_stall,omitempty"`
	TopStallShare *float64 `json:"top_stall_share,omitempty"`
}

// WriteNDJSON writes the series as newline-delimited JSON: one header
// line (schema, period, columns) followed by one line per sample with
// absolute values plus derived interval rates. encoding/json keys are
// struct-ordered, so the output is byte-deterministic.
func (v SeriesView) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(seriesHeader{Schema: seriesSchema, Every: v.Every, Columns: v.Names}); err != nil {
		return err
	}
	stats := v.intervals()
	var cycle int64
	acc := make([]int64, len(v.Names))
	vals := make([]int64, len(v.Names))
	occIdx := v.findColumn(ColOccupancy)
	for i := 0; i < v.N; i++ {
		row := v.Row(i)
		cycle += row[0]
		for c := range acc {
			acc[c] += row[c+1]
			vals[c] = acc[c]
		}
		out := seriesRow{Cycle: cycle, V: vals}
		if st := stats[i]; st.Cycles > 0 {
			ipc, fr, share := st.IPC, st.FaultRate, st.TopStallShare
			out.IPC, out.FaultRate = &ipc, &fr
			out.TopStall = st.TopStall
			out.TopStallShare = &share
		}
		if occIdx >= 0 {
			occ := vals[occIdx]
			out.Occupancy = &occ
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes the series as a plain CSV of absolute values:
// a "cycle,<names...>" header and one row per sample.
func (v SeriesView) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for _, n := range v.Names {
		bw.WriteByte(',')
		bw.WriteString(n)
	}
	bw.WriteByte('\n')
	var cycle int64
	acc := make([]int64, len(v.Names))
	for i := 0; i < v.N; i++ {
		row := v.Row(i)
		cycle += row[0]
		fmt.Fprintf(bw, "%d", cycle)
		for c := range acc {
			acc[c] += row[c+1]
			fmt.Fprintf(bw, ",%d", acc[c])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// findColumn returns the index of the named column, or -1.
func (v SeriesView) findColumn(name string) int {
	for i, n := range v.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// ReadSeriesNDJSON parses a series written by WriteNDJSON back into an
// absolute-valued table (derived fields are recomputed, not trusted).
func ReadSeriesNDJSON(r io.Reader) (*SeriesTable, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("obs: series stream is empty")
	}
	var hdr seriesHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("obs: series header: %w", err)
	}
	if hdr.Schema != seriesSchema {
		return nil, fmt.Errorf("obs: series schema %q, want %q", hdr.Schema, seriesSchema)
	}
	t := &SeriesTable{Every: hdr.Every, Names: hdr.Columns, Cols: make([][]int64, len(hdr.Columns))}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row seriesRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("obs: series row %d: %w", len(t.Cycles)+1, err)
		}
		if len(row.V) != len(t.Names) {
			return nil, fmt.Errorf("obs: series row %d has %d values, want %d",
				len(t.Cycles)+1, len(row.V), len(t.Names))
		}
		t.Cycles = append(t.Cycles, row.Cycle)
		for c, v := range row.V {
			t.Cols[c] = append(t.Cols[c], v)
		}
	}
	return t, sc.Err()
}
