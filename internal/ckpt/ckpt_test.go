package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	w := NewWriter()
	w.U64(42)
	w.I64(-7)
	w.Int(13)
	w.Bool(true)
	w.F64(3.5)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	data := append([]byte(nil), w.Data()...)
	return &Checkpoint{
		Version:  Version,
		Cycle:    12345,
		ConfigFP: 0xdead,
		SpecFP:   0xbeef,
		Sections: []Section{
			{Name: "alpha", Data: data},
			{Name: "beta", Data: []byte("state")},
			{Name: "empty", Data: nil},
		},
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U64(42)
	w.I64(-7)
	w.U32(9)
	w.Int(13)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.5)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")

	r := NewReader(w.Data())
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.U32(); got != 9 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.Int(); got != 13 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2}) // too short for any field
	if got := r.U64(); got != 0 {
		t.Errorf("U64 on short buffer = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("short read must set the error")
	}
	// Every subsequent read stays zero-valued and the error sticks.
	if r.Int() != 0 || r.Bool() || r.Bytes() != nil {
		t.Error("reads after error must return zero values")
	}
	if r.Err() == nil {
		t.Error("error must be sticky")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != c.Cycle || got.ConfigFP != c.ConfigFP || got.SpecFP != c.SpecFP {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Sections) != len(c.Sections) {
		t.Fatalf("%d sections, want %d", len(got.Sections), len(c.Sections))
	}
	for i := range c.Sections {
		if got.Sections[i].Name != c.Sections[i].Name {
			t.Errorf("section %d name %q, want %q", i, got.Sections[i].Name, c.Sections[i].Name)
		}
		if string(got.Sections[i].Data) != string(c.Sections[i].Data) {
			t.Errorf("section %q data mismatch", c.Sections[i].Name)
		}
	}
	if s := got.Section("beta"); s == nil || string(s.Data) != "state" {
		t.Error("Section lookup failed")
	}
	if got.Section("nope") != nil {
		t.Error("unknown section must return nil")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	b := sampleCheckpoint().Encode()
	// Every proper prefix must be rejected — the crash-mid-write cases.
	for _, cut := range []int{1, 8, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b := sampleCheckpoint().Encode()
	// Flip a byte in the middle (section payload): the file digest
	// catches it.
	mut := append([]byte(nil), b...)
	mut[len(mut)/2] ^= 0xff
	if _, err := Decode(mut); err == nil {
		t.Error("corrupted payload accepted")
	}
	// Bad magic.
	mut = append([]byte(nil), b...)
	mut[0] = 'X'
	if _, err := Decode(mut); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	c := sampleCheckpoint()
	c.Version = Version + 1
	if _, err := Decode(c.Encode()); err == nil {
		t.Error("future format version accepted")
	}
}

func TestWriteFileAtomicAndReadBack(t *testing.T) {
	dir := t.TempDir()
	c := sampleCheckpoint()
	path := filepath.Join(dir, FileName(c.Cycle))
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != c.Cycle {
		t.Errorf("cycle = %d, want %d", got.Cycle, c.Cycle)
	}
}

func TestLatestPicksHighestCycleAndSkipsInvalid(t *testing.T) {
	dir := t.TempDir()
	for _, cycle := range []int64{100, 5000, 900} {
		c := sampleCheckpoint()
		c.Cycle = cycle
		if err := c.WriteFile(filepath.Join(dir, FileName(cycle))); err != nil {
			t.Fatal(err)
		}
	}
	// A stall checkpoint whose name sorts after the periodic ones but
	// whose cycle is lower must not shadow them.
	c := sampleCheckpoint()
	c.Cycle = 200
	if err := c.WriteFile(filepath.Join(dir, "stall-000000000200.ckpt")); err != nil {
		t.Fatal(err)
	}
	// A corrupt file is skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-999999999999.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	path, best, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cycle != 5000 {
		t.Errorf("latest cycle = %d, want 5000", best.Cycle)
	}
	if filepath.Base(path) != FileName(5000) {
		t.Errorf("latest path = %s", path)
	}
}

func TestLatestEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Latest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("empty dir error = %v, want ErrNotExist", err)
	}
}

func TestHasherMatchesDigest(t *testing.T) {
	b := []byte("some state bytes")
	h := NewHasher()
	h.Bytes(b)
	if h.Sum() != Digest(b) {
		t.Error("streaming hasher disagrees with one-shot digest")
	}
}
