package sim

import (
	"errors"
	"testing"

	"gpues/internal/ckpt"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/excep"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/vm"
)

// excepSpec builds a launch whose kernel stores gid to out[gid] and
// then asserts gid != failGid: exactly one warp raises KindAssert. A
// second store after the assertion overwrites out[gid] with 1, so the
// faulting warp's elements keep their gid value — evidence that its
// trace was truncated at the assert while every other warp ran on.
func excepSpec(t *testing.T, blocks, threads int, failGid int64) LaunchSpec {
	t.Helper()
	const oAddr = uint64(0x1000000)
	mem := emu.NewMemory()

	b := kernel.NewBuilder("assertdemo")
	po := b.AddParam(oAddr)
	tid, ctaid, ntid := b.Reg(), b.Reg(), b.Reg()
	gid, off, base, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid)
	b.Shl(off, gid, 3)
	b.LoadParam(base, po)
	b.IAdd(base, base, off, 0)
	b.StGlobal(base, 0, gid, 8)
	b.SetP(isa.CmpNE, cond, gid, isa.RZ, failGid)
	b.Assert(cond, 7)
	b.StGlobal(base, 0, cond, 8)
	b.Exit()
	k := b.MustBuild()

	size := uint64(blocks * threads * 8)
	if size < 4096 {
		size = 4096
	}
	return LaunchSpec{
		Launch: &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: threads}},
		Memory: mem,
		Regions: []vm.Region{
			{Name: "out", Base: oAddr, Size: size, Kind: vm.RegionGPUInit},
		},
	}
}

// runExcep runs the spec and requires the run to fail with a device
// exception, returning the structured error.
func runExcep(t *testing.T, cfg config.Config, spec LaunchSpec) *excep.Error {
	t.Helper()
	_, err := RunSpec(cfg, spec)
	if err == nil {
		t.Fatal("run completed without the expected device exception")
	}
	var ee *excep.Error
	if !errors.As(err, &ee) {
		t.Fatalf("run failed with %v, want *excep.Error", err)
	}
	return ee
}

func TestPreciseExceptionReported(t *testing.T) {
	cfg := config.Default()
	spec := excepSpec(t, 4, 64, 70) // block 1, warp 0, lane 6
	ee := runExcep(t, cfg, spec)
	if len(ee.Records) != 1 {
		t.Fatalf("got %d exception records, want 1: %v", len(ee.Records), ee)
	}
	r := ee.Records[0]
	if r.Kind != excep.KindAssert {
		t.Errorf("kind = %v, want %v", r.Kind, excep.KindAssert)
	}
	if r.Block != 1 || r.Warp != 0 || r.Lane != 6 {
		t.Errorf("raised at block %d warp %d lane %d, want 1/0/6", r.Block, r.Warp, r.Lane)
	}
	// The grid here finishes before the first poll boundary, so the
	// exception surfaces at the launch-completion drain; either way the
	// run must terminate with the error, never swallow it.
	if ee.Cycle <= 0 {
		t.Errorf("exception observed at non-positive cycle %d", ee.Cycle)
	}
	// Precise delivery: the faulting warp's trace ended at the assert,
	// so its lanes (gids 64..95) never ran the post-assert store; every
	// other thread overwrote its element with 1.
	for i := 0; i < 4*64; i++ {
		want := uint64(1)
		if i >= 64 && i < 96 {
			want = uint64(i)
		}
		if got := spec.Memory.ReadU64(0x1000000 + uint64(i*8)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestExceptionPollBoundary shrinks the poll period so the host's
// in-loop flag check — not the launch-completion drain — observes the
// exception: the terminating cycle must sit on a poll-period boundary
// while the rest of the grid is still running.
func TestExceptionPollBoundary(t *testing.T) {
	cfg := config.Default()
	cfg.Excep.PollEvery = 16
	ee := runExcep(t, cfg, excepSpec(t, 32, 64, 70))
	if ee.Cycle%cfg.Excep.PollEvery != 0 {
		t.Errorf("terminated at cycle %d, not a multiple of the %d-cycle poll period",
			ee.Cycle, cfg.Excep.PollEvery)
	}
}

func TestExceptionDeterminism(t *testing.T) {
	run := func() (int64, string) {
		ee := runExcep(t, config.Default(), excepSpec(t, 4, 64, 70))
		return ee.Cycle, ee.Records[0].String()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Errorf("exception cycle differs across identical runs: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Errorf("exception report differs across identical runs:\n%s\nvs\n%s", s1, s2)
	}
}

func TestPreemptibleExceptionSquash(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.Excep.Mode = excep.ModePreemptible
	spec := excepSpec(t, 4, 64, 70)
	s, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	var ee *excep.Error
	if !errors.As(err, &ee) {
		t.Fatalf("run failed with %v, want *excep.Error", err)
	}
	if ee.Records[0].Kind != excep.KindAssert {
		t.Errorf("kind = %v, want %v", ee.Records[0].Kind, excep.KindAssert)
	}
	res := s.Collect()
	if res.Exceptions != 1 {
		t.Errorf("delivered exceptions = %d, want 1", res.Exceptions)
	}
	// Preemptible delivery squashes the faulting block through the
	// context-save path instead of just killing the warp.
	var switchesOut, contextBytes int64
	for _, st := range res.SMs {
		switchesOut += st.SwitchesOut
		contextBytes += st.ContextBytes
	}
	if switchesOut < 1 {
		t.Errorf("switches out = %d, want >= 1 (excepted block must drain off-chip)", switchesOut)
	}
	if contextBytes <= 0 {
		t.Errorf("context bytes = %d, want > 0", contextBytes)
	}
}

func TestPreemptibleExceptionDeterminism(t *testing.T) {
	run := func() (int64, string) {
		cfg := config.Default()
		cfg.Scheme = config.ReplayQueue
		cfg.Excep.Mode = excep.ModePreemptible
		ee := runExcep(t, cfg, excepSpec(t, 4, 64, 70))
		return ee.Cycle, ee.Records[0].String()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("preemptible exception not seed-stable: cycle %d/%d, report %q vs %q", c1, c2, s1, s2)
	}
}

func TestPreemptibleRequiresPreemptibleScheme(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.Baseline
	cfg.Excep.Mode = excep.ModePreemptible
	if _, err := New(cfg, excepSpec(t, 1, 32, 5)); err == nil {
		t.Fatal("New accepted preemptible exception mode with the non-preemptible baseline scheme")
	}
}

// TestExceptionCheckpointRestore checkpoints through the window between
// the exception post and the host's poll boundary, restores the latest
// checkpoint into a fresh simulator (the restore's byte-compare is the
// digest audit), and requires the resumed run to terminate with the
// identical exception.
func TestExceptionCheckpointRestore(t *testing.T) {
	cfg := config.Default()
	dir := t.TempDir()
	s, err := New(cfg, excepSpec(t, 4, 64, 70))
	if err != nil {
		t.Fatal(err)
	}
	s.CheckpointDir = dir
	s.CheckpointEvery = 256
	_, err = s.Run()
	var ee1 *excep.Error
	if !errors.As(err, &ee1) {
		t.Fatalf("run failed with %v, want *excep.Error", err)
	}

	path, ck, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cycle > ee1.Cycle {
		t.Fatalf("latest checkpoint at cycle %d is past the exception cycle %d", ck.Cycle, ee1.Cycle)
	}
	s2, err := New(cfg, excepSpec(t, 4, 64, 70))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreFile(path); err != nil {
		t.Fatalf("restore (digest audit) failed: %v", err)
	}
	_, err = s2.Run()
	var ee2 *excep.Error
	if !errors.As(err, &ee2) {
		t.Fatalf("restored run failed with %v, want *excep.Error", err)
	}
	if ee1.Cycle != ee2.Cycle {
		t.Errorf("restored run terminated at cycle %d, original at %d", ee2.Cycle, ee1.Cycle)
	}
	if ee1.Records[0].String() != ee2.Records[0].String() {
		t.Errorf("restored exception report differs:\n%s\nvs\n%s",
			ee2.Records[0].String(), ee1.Records[0].String())
	}
}

// TestFlipCampaignSeedStable reruns a bit-flip injection campaign and
// requires every observable — flip count, terminal cycle, success or
// the exact error — to be identical: the injector is a pure function
// of (seed, architectural coordinates), never of host state.
func TestFlipCampaignSeedStable(t *testing.T) {
	run := func() (flips, cycles int64, errStr string) {
		cfg := config.Default()
		cfg.Excep.Flip = excep.FlipConfig{Seed: 42, Rate: 0.01}
		spec := testSpec(t, 8, 64, vm.RegionGPUInit, vm.RegionGPUInit)
		s, err := New(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			errStr = err.Error()
		}
		if res == nil {
			res = s.Collect()
		}
		return res.Flips, res.Cycles, errStr
	}
	f1, c1, e1 := run()
	f2, c2, e2 := run()
	if f1 != f2 || c1 != c2 || e1 != e2 {
		t.Errorf("flip campaign not seed-stable: flips %d/%d, cycles %d/%d, err %q vs %q",
			f1, f2, c1, c2, e1, e2)
	}
	if f1 == 0 {
		t.Error("campaign at rate 0.01 injected no flips")
	}
}
