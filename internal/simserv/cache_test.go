package simserv

import (
	"fmt"
	"sync"
	"testing"
)

// The result cache is keyed on the simulator's config/spec
// fingerprints, so two spellings of the same simulation share an
// entry and any config change misses.

func TestSpecKeyNormalizesSpelling(t *testing.T) {
	a, err := JobSpec{Benchmark: "sgemm"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Benchmark: "sgemm", Scale: 1, Scheme: "baseline", Link: "nvlink", Placement: "resident"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("defaulted and explicit spellings differ: %s vs %s", a, b)
	}
	for _, mut := range []JobSpec{
		{Benchmark: "sgemm", Scale: 2},
		{Benchmark: "sgemm", Scheme: "replay-queue"},
		{Benchmark: "sgemm", Link: "pcie"},
		{Benchmark: "sgemm", Placement: "paging"},
		{Benchmark: "sgemm", Switching: true, Scheme: "replay-queue"},
		{Benchmark: "mri-q"},
	} {
		k, err := mut.Key()
		if err != nil {
			t.Fatalf("%+v: %v", mut, err)
		}
		if k == a {
			t.Fatalf("config change %+v did not change the key", mut)
		}
	}
}

func TestCacheHitServesOriginalMetrics(t *testing.T) {
	h := newHarness(t, nil)
	h.submit(t, SubmitRequest{ID: "first", Spec: specSgemm})
	claim, ok, _ := h.cl.Claim("w1")
	if !ok {
		t.Fatal("no claim")
	}
	metrics := []byte(`{"cycles":101471,"committed":524288,"link_util":0.42}`)
	if err := h.cl.Complete(CompleteRequest{
		JobID: claim.JobID, Worker: "w1", Token: claim.Token,
		Cycles: 101471, Committed: 524288, Metrics: metrics,
	}); err != nil {
		t.Fatal(err)
	}

	// Identical spec, different spelling: completes at admission with
	// the original run's result and metrics, no worker involved.
	resp := h.submit(t, SubmitRequest{ID: "second", Spec: JobSpec{Benchmark: "sgemm", Scale: 1, Scheme: "baseline"}})
	if resp.State != "done" || resp.Result == nil {
		t.Fatalf("cache hit = %+v", resp)
	}
	if !resp.Result.CacheHit || resp.Result.Cycles != 101471 || resp.Result.Worker != "w1" {
		t.Fatalf("cached result = %+v", resp.Result)
	}
	if string(resp.Result.Metrics) != string(metrics) {
		t.Fatalf("cached metrics = %s, want original %s", resp.Result.Metrics, metrics)
	}
	if _, ok, _ := h.cl.Claim("w2"); ok {
		t.Fatal("cache-served job reached a worker")
	}

	// A config change invalidates: different scheme misses the cache
	// and queues for real execution.
	miss := h.submit(t, SubmitRequest{ID: "third", Spec: JobSpec{Benchmark: "sgemm", Scheme: "replay-queue"}})
	if miss.State != "queued" {
		t.Fatalf("changed config served from cache: %+v", miss)
	}

	stats, _ := h.cl.Stats()
	if stats.CacheHits != 1 || stats.CacheMisses != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	snap := h.coord.MetricsSnapshot()
	if snap.Counters["fabric.cache.hits"] != 1 || snap.Counters["fabric.cache.misses"] != 2 {
		t.Fatalf("metrics = %+v", snap.Counters)
	}
}

// Concurrent identical submissions while nothing is cached yet must
// collapse onto one simulation (singleflight): one claim reaches a
// worker, every submission completes with that run's result.
func TestSingleflightCollapsesConcurrentSubmissions(t *testing.T) {
	h := newHarness(t, nil)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = h.cl.Submit(SubmitRequest{ID: fmt.Sprintf("dup-%d", i), Spec: specSgemm})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	// Exactly one of the eight is claimable.
	claim, ok, _ := h.cl.Claim("w1")
	if !ok {
		t.Fatal("no claim")
	}
	if _, ok, _ := h.cl.Claim("w2"); ok {
		t.Fatal("second claim for identical submissions: singleflight broken")
	}
	if err := h.cl.Complete(CompleteRequest{
		JobID: claim.JobID, Worker: "w1", Token: claim.Token,
		Cycles: 4242, Metrics: []byte(`{"cycles":4242}`),
	}); err != nil {
		t.Fatal(err)
	}

	// Every submission is done with the one run's cycles; followers
	// and later cache hits are marked as such.
	primaries := 0
	for i := 0; i < n; i++ {
		st, err := h.cl.Job(fmt.Sprintf("dup-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" || st.Result == nil || st.Result.Cycles != 4242 {
			t.Fatalf("dup-%d = %+v", i, st)
		}
		if !st.Result.CacheHit {
			primaries++
		}
	}
	if primaries != 1 {
		t.Fatalf("%d primary results, want exactly 1 simulation", primaries)
	}
	stats, _ := h.cl.Stats()
	if stats.Counters.Completed != n {
		t.Fatalf("completed = %d, want %d", stats.Counters.Completed, n)
	}
	// One more identical submission now hits the cache outright.
	late := h.submit(t, SubmitRequest{ID: "late", Spec: specSgemm})
	if late.State != "done" || !late.Result.CacheHit {
		t.Fatalf("late = %+v", late)
	}
}
