// Package asm provides a textual assembly format for the simulator's
// ISA: a disassembler that renders a kernel as a .s listing and an
// assembler that parses the listing back. The two round-trip, so
// kernels can be dumped, edited by hand and re-run.
//
// Format (one instruction per line, ';' or '//' start comments):
//
//	.kernel saxpy
//	.regs 16            // occupancy cost per thread, 32-bit units
//	.shared 2048        // static shared memory per block, bytes
//	.param X 0x1000000  // launch parameter (name, value)
//
//	    s2r     r0, tid.x
//	    ldc     r1, param[0]
//	    mov     r2, #42
//	    fmov    r3, #1.5
//	    iadd    r4, r1, r0, 8
//	    isetp.lt r5, r4, rz, 100
//	loop:
//	    ld.global.u64  r6, [r4+0]
//	    st.shared.u32  [r7+16], r6
//	    atom.global.add.u64 r8, [r9], r6
//	    @r5 bra loop, join
//	    @!r5 bra.uni done
//	join:
//	    bar.sync
//	done:
//	    exit
//
// Predicated branches name their reconvergence label after a comma;
// bra.uni asserts warp uniformity (no reconvergence point needed).
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gpues/internal/isa"
	"gpues/internal/kernel"
)

// Assemble parses a listing into a kernel.
func Assemble(src string) (*kernel.Kernel, error) {
	p := &parser{
		labels: map[string]int32{},
		params: map[string]int{},
	}
	lines := strings.Split(src, "\n")

	// Pass 1: directives and label positions.
	pc := int32(0)
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "."):
			if err := p.directive(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		case strings.HasSuffix(line, ":"):
			name := strings.TrimSuffix(line, ":")
			if !validLabel(name) {
				return nil, fmt.Errorf("line %d: bad label %q", ln+1, name)
			}
			if _, dup := p.labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, name)
			}
			p.labels[name] = pc
		default:
			pc++
		}
	}

	// Pass 2: instructions.
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" || strings.HasPrefix(line, ".") || strings.HasSuffix(line, ":") {
			continue
		}
		in, err := p.instruction(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		p.code = append(p.code, in)
	}

	if p.name == "" {
		p.name = "kernel"
	}
	k := &kernel.Kernel{
		Name:           p.name,
		Code:           p.code,
		RegsPerThread:  p.regs,
		SharedMemBytes: p.shared,
		Params:         p.paramVals,
	}
	if k.RegsPerThread == 0 {
		k.RegsPerThread = 2 * (maxReg(p.code) + 1)
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustAssemble panics on error, for static listings in tests.
func MustAssemble(src string) *kernel.Kernel {
	k, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return k
}

type parser struct {
	name      string
	regs      int
	shared    int
	params    map[string]int
	paramVals []uint64
	labels    map[string]int32
	code      []isa.Instruction
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (p *parser) directive(line string) error {
	f := strings.Fields(line)
	switch f[0] {
	case ".kernel":
		if len(f) != 2 {
			return fmt.Errorf(".kernel wants a name")
		}
		p.name = f[1]
	case ".regs":
		if len(f) != 2 {
			return fmt.Errorf(".regs wants a count")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad .regs %q", f[1])
		}
		p.regs = n
	case ".shared":
		if len(f) != 2 {
			return fmt.Errorf(".shared wants a byte count")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad .shared %q", f[1])
		}
		p.shared = n
	case ".param":
		if len(f) != 3 {
			return fmt.Errorf(".param wants a name and a value")
		}
		v, err := strconv.ParseUint(f[2], 0, 64)
		if err != nil {
			return fmt.Errorf("bad .param value %q", f[2])
		}
		p.params[f[1]] = len(p.paramVals)
		p.paramVals = append(p.paramVals, v)
	default:
		return fmt.Errorf("unknown directive %s", f[0])
	}
	return nil
}

// instruction parses one instruction line.
func (p *parser) instruction(line string) (isa.Instruction, error) {
	in := isa.NewInstruction(isa.OpNop)

	// Optional predicate prefix: @rN or @!rN.
	if strings.HasPrefix(line, "@") {
		rest := line[1:]
		if strings.HasPrefix(rest, "!") {
			in.PredNeg = true
			rest = rest[1:]
		}
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return in, fmt.Errorf("predicate without instruction")
		}
		r, err := parseReg(rest[:sp])
		if err != nil {
			return in, err
		}
		in.Pred = r
		line = strings.TrimSpace(rest[sp:])
	}

	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp >= 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	ops := splitOperands(rest)
	return p.decode(in, strings.ToLower(mnem), ops)
}

// splitOperands splits "r1, [r2+8], #3" into trimmed pieces.
func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseReg(s string) (isa.Reg, error) {
	ls := strings.ToLower(s)
	if ls == "rz" {
		return isa.RZ, nil
	}
	if len(ls) < 2 || ls[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(ls[1:])
	if err != nil || n < 0 || n >= isa.MaxRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimPrefix(s, "#")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned immediates too.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseRegOrImm distinguishes "r4" from "#12".
func regOrImm(s string) (isa.Reg, int64, bool, error) {
	if strings.HasPrefix(s, "#") {
		v, err := parseImm(s)
		return isa.RegNone, v, false, err
	}
	r, err := parseReg(s)
	return r, 0, true, err
}

// parseMemOperand parses "[rA+imm]" or "[rA-imm]" or "[rA]".
func parseMemOperand(s string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	off := int64(0)
	regPart := body
	if i := strings.IndexAny(body[1:], "+-"); i >= 0 {
		i++ // relative to body
		regPart = body[:i]
		v, err := parseImm(body[i:])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := parseReg(strings.TrimSpace(regPart))
	return r, off, err
}

func memSize(suffix string) (int, error) {
	switch suffix {
	case "u32", "32":
		return 4, nil
	case "u64", "64":
		return 8, nil
	}
	return 0, fmt.Errorf("bad memory size %q (want u32 or u64)", suffix)
}

var cmpNames = map[string]isa.Cmp{
	"eq": isa.CmpEQ, "ne": isa.CmpNE, "lt": isa.CmpLT,
	"le": isa.CmpLE, "gt": isa.CmpGT, "ge": isa.CmpGE,
}

var atomNames = map[string]isa.AtomOp{
	"add": isa.AtomAdd, "max": isa.AtomMax, "min": isa.AtomMin,
	"exch": isa.AtomExch, "cas": isa.AtomCAS, "and": isa.AtomAnd, "or": isa.AtomOr,
}

var sregNames = func() map[string]isa.SReg {
	m := map[string]isa.SReg{}
	for s := isa.SReg(0); s < isa.SRNumSReg; s++ {
		m[s.String()] = s
	}
	return m
}()

// alu3Ops maps simple three-operand mnemonics to opcodes.
var alu3Ops = map[string]isa.Op{
	"iadd": isa.OpIAdd, "isub": isa.OpISub, "imul": isa.OpIMul,
	"imin": isa.OpIMin, "imax": isa.OpIMax,
	"shl": isa.OpShl, "shr": isa.OpShr,
	"and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul,
	"fmin": isa.OpFMin, "fmax": isa.OpFMax,
}

var unaryOps = map[string]isa.Op{
	"rcp": isa.OpFRcp, "sqrt": isa.OpFSqrt, "rsqrt": isa.OpFRsqrt,
	"ex2": isa.OpFExp, "lg2": isa.OpFLog, "sin": isa.OpFSin, "cos": isa.OpFCos,
	"i2f": isa.OpI2F, "f2i": isa.OpF2I,
}

func (p *parser) decode(in isa.Instruction, mnem string, ops []string) (isa.Instruction, error) {
	base := mnem
	var suffixes []string
	if i := strings.IndexByte(mnem, '.'); i >= 0 {
		base = mnem[:i]
		suffixes = strings.Split(mnem[i+1:], ".")
	}

	want := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	switch {
	case mnem == "nop":
		in.Op = isa.OpNop
		return in, want(0)

	case mnem == "exit":
		in.Op = isa.OpExit
		return in, want(0)

	case mnem == "bar.sync" || mnem == "bar":
		in.Op = isa.OpBar
		return in, want(0)

	case base == "bra":
		in.Op = isa.OpBra
		uniform := len(suffixes) == 1 && suffixes[0] == "uni"
		if uniform || in.Pred == isa.RegNone {
			if err := want(1); err != nil {
				return in, err
			}
			t, ok := p.labels[ops[0]]
			if !ok {
				return in, fmt.Errorf("unknown label %q", ops[0])
			}
			in.Target = t
			return in, nil
		}
		if err := want(2); err != nil {
			return in, fmt.Errorf("predicated bra wants target and reconvergence labels")
		}
		t, ok := p.labels[ops[0]]
		if !ok {
			return in, fmt.Errorf("unknown label %q", ops[0])
		}
		r, ok := p.labels[ops[1]]
		if !ok {
			return in, fmt.Errorf("unknown reconvergence label %q", ops[1])
		}
		in.Target, in.Reconv = t, r
		return in, nil

	case base == "mov" || base == "fmov":
		in.Op = isa.OpMov
		if err := want(2); err != nil {
			return in, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		in.Dst = d
		if strings.HasPrefix(ops[1], "#") {
			if base == "fmov" {
				f, err := strconv.ParseFloat(strings.TrimPrefix(ops[1], "#"), 64)
				if err != nil {
					return in, fmt.Errorf("bad float immediate %q", ops[1])
				}
				in.Imm = int64(math.Float64bits(f))
			} else {
				v, err := parseImm(ops[1])
				if err != nil {
					return in, err
				}
				in.Imm = v
			}
			return in, nil
		}
		a, err := parseReg(ops[1])
		if err != nil {
			return in, err
		}
		in.SrcA = a
		return in, nil

	case base == "s2r":
		in.Op = isa.OpS2R
		if err := want(2); err != nil {
			return in, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		sr, ok := sregNames[strings.ToLower(ops[1])]
		if !ok {
			return in, fmt.Errorf("unknown special register %q", ops[1])
		}
		in.Dst, in.Imm = d, int64(sr)
		return in, nil

	case base == "ldc":
		in.Op = isa.OpLdParam
		if err := want(2); err != nil {
			return in, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		in.Dst = d
		arg := ops[1]
		if strings.HasPrefix(arg, "param[") && strings.HasSuffix(arg, "]") {
			n, err := strconv.Atoi(arg[6 : len(arg)-1])
			if err != nil {
				return in, fmt.Errorf("bad param index %q", arg)
			}
			in.Imm = int64(n)
			return in, nil
		}
		idx, ok := p.params[arg]
		if !ok {
			return in, fmt.Errorf("unknown param %q", arg)
		}
		in.Imm = int64(idx)
		return in, nil

	case base == "imad" || base == "ffma":
		if base == "imad" {
			in.Op = isa.OpIMad
		} else {
			in.Op = isa.OpFFma
		}
		if err := want(4); err != nil {
			return in, err
		}
		var err error
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.SrcA, err = parseReg(ops[1]); err != nil {
			return in, err
		}
		if in.SrcB, err = parseReg(ops[2]); err != nil {
			return in, err
		}
		if in.SrcC, err = parseReg(ops[3]); err != nil {
			return in, err
		}
		return in, nil

	case base == "isetp" || base == "fsetp":
		if len(suffixes) != 1 {
			return in, fmt.Errorf("%s wants a comparison suffix", base)
		}
		cmp, ok := cmpNames[suffixes[0]]
		if !ok {
			return in, fmt.Errorf("unknown comparison %q", suffixes[0])
		}
		if base == "isetp" {
			in.Op = isa.OpSetP
		} else {
			in.Op = isa.OpFSetP
		}
		in.Cmp = cmp
		if len(ops) != 3 && len(ops) != 4 {
			return in, fmt.Errorf("%s wants 3-4 operands", mnem)
		}
		var err error
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.SrcA, err = parseReg(ops[1]); err != nil {
			return in, err
		}
		if in.SrcB, err = parseReg(ops[2]); err != nil {
			return in, err
		}
		if len(ops) == 4 {
			if in.Imm, err = parseImm(ops[3]); err != nil {
				return in, err
			}
		}
		return in, nil

	case mnem == "assert":
		in.Op = isa.OpAssert
		if err := want(2); err != nil {
			return in, err
		}
		var err error
		if in.SrcA, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.Imm, err = parseImm(ops[1]); err != nil {
			return in, err
		}
		return in, nil

	case mnem == "trap":
		in.Op = isa.OpTrap
		if err := want(1); err != nil {
			return in, err
		}
		var err error
		if in.Imm, err = parseImm(ops[0]); err != nil {
			return in, err
		}
		return in, nil

	case mnem == "malloc":
		in.Op = isa.OpMalloc
		if err := want(2); err != nil {
			return in, err
		}
		var err error
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		r, imm, isReg, err := regOrImm(ops[1])
		if err != nil {
			return in, err
		}
		if isReg {
			in.SrcA = r
		} else {
			// Immediate size: RZ marks "use the immediate", matching the
			// builder's normalization.
			in.SrcA = isa.RZ
			in.Imm = imm
		}
		return in, nil

	case base == "ld" || base == "st" || base == "atom":
		return p.decodeMem(in, base, suffixes, ops)

	default:
		if op, ok := unaryOps[base]; ok {
			in.Op = op
			if err := want(2); err != nil {
				return in, err
			}
			var err error
			if in.Dst, err = parseReg(ops[0]); err != nil {
				return in, err
			}
			if in.SrcA, err = parseReg(ops[1]); err != nil {
				return in, err
			}
			return in, nil
		}
		if op, ok := alu3Ops[base]; ok {
			in.Op = op
			if len(ops) != 3 && len(ops) != 4 {
				return in, fmt.Errorf("%s wants 3-4 operands", mnem)
			}
			var err error
			if in.Dst, err = parseReg(ops[0]); err != nil {
				return in, err
			}
			if in.SrcA, err = parseReg(ops[1]); err != nil {
				return in, err
			}
			r, imm, isReg, err := regOrImm(ops[2])
			if err != nil {
				return in, err
			}
			if isReg {
				in.SrcB = r
			} else {
				in.SrcB = isa.RZ
				in.Imm = imm
			}
			if len(ops) == 4 {
				if in.Imm, err = parseImm(ops[3]); err != nil {
					return in, err
				}
			}
			return in, nil
		}
	}
	return in, fmt.Errorf("unknown mnemonic %q", mnem)
}

func (p *parser) decodeMem(in isa.Instruction, base string, suffixes, ops []string) (isa.Instruction, error) {
	if len(suffixes) < 2 {
		return in, fmt.Errorf("%s wants .space.size suffixes", base)
	}
	space := suffixes[0]
	var err error
	switch base {
	case "ld":
		size, serr := memSize(suffixes[1])
		if serr != nil {
			return in, serr
		}
		in.Size = uint8(size)
		switch space {
		case "global":
			in.Op = isa.OpLdGlobal
		case "shared":
			in.Op = isa.OpLdShared
		default:
			return in, fmt.Errorf("unknown space %q", space)
		}
		if len(ops) != 2 {
			return in, fmt.Errorf("ld wants dst, [addr]")
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.SrcA, in.Imm, err = parseMemOperand(ops[1]); err != nil {
			return in, err
		}
		return in, nil

	case "st":
		size, serr := memSize(suffixes[1])
		if serr != nil {
			return in, serr
		}
		in.Size = uint8(size)
		switch space {
		case "global":
			in.Op = isa.OpStGlobal
		case "shared":
			in.Op = isa.OpStShared
		default:
			return in, fmt.Errorf("unknown space %q", space)
		}
		if len(ops) != 2 {
			return in, fmt.Errorf("st wants [addr], src")
		}
		if in.SrcA, in.Imm, err = parseMemOperand(ops[0]); err != nil {
			return in, err
		}
		if in.SrcB, err = parseReg(ops[1]); err != nil {
			return in, err
		}
		return in, nil

	case "atom":
		if space != "global" {
			return in, fmt.Errorf("atomics are global only")
		}
		if len(suffixes) != 3 {
			return in, fmt.Errorf("atom wants .global.op.size")
		}
		aop, ok := atomNames[suffixes[1]]
		if !ok {
			return in, fmt.Errorf("unknown atomic op %q", suffixes[1])
		}
		size, serr := memSize(suffixes[2])
		if serr != nil {
			return in, serr
		}
		in.Op = isa.OpAtomGlobal
		in.Atom = aop
		in.Size = uint8(size)
		wantOps := 3
		if aop == isa.AtomCAS {
			wantOps = 4
		}
		if len(ops) != wantOps {
			return in, fmt.Errorf("atom.%s wants %d operands", suffixes[1], wantOps)
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.SrcA, in.Imm, err = parseMemOperand(ops[1]); err != nil {
			return in, err
		}
		if in.SrcB, err = parseReg(ops[2]); err != nil {
			return in, err
		}
		if aop == isa.AtomCAS {
			if in.SrcC, err = parseReg(ops[3]); err != nil {
				return in, err
			}
		}
		return in, nil
	}
	return in, fmt.Errorf("unknown memory mnemonic %q", base)
}

func maxReg(code []isa.Instruction) int {
	max := 0
	for i := range code {
		for _, r := range [...]isa.Reg{code[i].Dst, code[i].SrcA, code[i].SrcB, code[i].SrcC, code[i].Pred} {
			if r != isa.RegNone && r != isa.RZ && int(r) > max {
				max = int(r)
			}
		}
	}
	return max
}
