package vm

import "fmt"

// RegionKind selects the initial placement of a virtual memory region.
type RegionKind uint8

const (
	// RegionCPUInit regions hold input data written by the CPU before
	// launch: pages start CPU-resident and dirty, so a GPU touch
	// triggers a migration fault with a data transfer.
	RegionCPUInit RegionKind = iota
	// RegionLazy regions (kernel outputs, device heap) start unmapped:
	// a GPU touch triggers an allocation-only fault.
	RegionLazy
	// RegionGPUInit regions are pre-placed in GPU memory (explicit
	// transfer before launch): no faults.
	RegionGPUInit
	// RegionCPUClean regions are CPU-owned but never written (e.g.
	// zero-initialized output buffers): a GPU touch faults but only
	// needs allocation, not a data transfer (Figure 2's "pages not
	// dirty" case).
	RegionCPUClean
)

// String names the region kind.
func (k RegionKind) String() string {
	switch k {
	case RegionCPUInit:
		return "cpu-init"
	case RegionLazy:
		return "lazy"
	case RegionGPUInit:
		return "gpu-init"
	case RegionCPUClean:
		return "cpu-clean"
	}
	return fmt.Sprintf("RegionKind(%d)", uint8(k))
}

// Region is a named virtual address range registered with the address
// space.
type Region struct {
	Name string
	Base uint64
	Size uint64
	Kind RegionKind
}

// Contains reports whether va falls inside the region.
func (r *Region) Contains(va uint64) bool {
	return va >= r.Base && va < r.Base+r.Size
}

// FaultKind classifies a GPU access to a page.
type FaultKind uint8

const (
	// FaultNone: the page is GPU-resident, the access hits.
	FaultNone FaultKind = iota
	// FaultMigrate: the page is CPU-resident and dirty; resolving needs
	// allocation plus a data transfer over the interconnect.
	FaultMigrate
	// FaultAllocOnly: the page has no physical backing (or is a clean
	// CPU page); resolving only needs allocation and a page table
	// update — the class of faults use-case 2 handles on the GPU.
	FaultAllocOnly
	// FaultInvalid: the access is outside every registered region; the
	// kernel must be aborted.
	FaultInvalid
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultMigrate:
		return "migrate"
	case FaultAllocOnly:
		return "alloc-only"
	case FaultInvalid:
		return "invalid"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// AddressSpace is the unified CPU/GPU virtual address space of one
// process: the GPU page table the fill unit walks, the CPU-side page
// state, the physical allocators of both memories, and the registered
// regions.
type AddressSpace struct {
	GPUTable *PageTable
	CPUTable *PageTable
	GPUPhys  *PhysAllocator
	CPUPhys  *PhysAllocator

	regions []Region
	//simlint:ckptskip construction-time geometry, fixed for the life of the address space
	pageSize uint64
}

// NewAddressSpace builds an address space with the given page size and
// physical memory sizes in bytes.
func NewAddressSpace(pageSize int, gpuMemBytes, cpuMemBytes uint64) (*AddressSpace, error) {
	gpt, err := NewPageTable(pageSize)
	if err != nil {
		return nil, err
	}
	cpt, err := NewPageTable(pageSize)
	if err != nil {
		return nil, err
	}
	gphys, err := NewPhysAllocator(0, gpuMemBytes, pageSize)
	if err != nil {
		return nil, fmt.Errorf("vm: gpu allocator: %w", err)
	}
	cphys, err := NewPhysAllocator(0, cpuMemBytes, pageSize)
	if err != nil {
		return nil, fmt.Errorf("vm: cpu allocator: %w", err)
	}
	return &AddressSpace{
		GPUTable: gpt,
		CPUTable: cpt,
		GPUPhys:  gphys,
		CPUPhys:  cphys,
		pageSize: uint64(pageSize),
	}, nil
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() uint64 { return as.pageSize }

// AddRegion registers a region and installs its initial page state.
// Regions must not overlap.
func (as *AddressSpace) AddRegion(r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("vm: empty region %q", r.Name)
	}
	for i := range as.regions {
		o := &as.regions[i]
		if r.Base < o.Base+o.Size && o.Base < r.Base+r.Size {
			return fmt.Errorf("vm: region %q overlaps %q", r.Name, o.Name)
		}
	}
	switch r.Kind {
	case RegionCPUInit:
		var err error
		as.CPUTable.ForRange(r.Base, int(r.Size), func(p uint64) {
			if err != nil {
				return
			}
			pa, e := as.CPUPhys.Alloc()
			if e != nil {
				err = e
				return
			}
			as.CPUTable.Set(p, PTE{State: PageCPU, PA: pa, Dirty: true})
		})
		if err != nil {
			return fmt.Errorf("vm: region %q: %w", r.Name, err)
		}
	case RegionGPUInit:
		var err error
		as.GPUTable.ForRange(r.Base, int(r.Size), func(p uint64) {
			if err != nil {
				return
			}
			pa, e := as.GPUPhys.Alloc()
			if e != nil {
				err = e
				return
			}
			as.GPUTable.Set(p, PTE{State: PageGPU, PA: pa})
		})
		if err != nil {
			return fmt.Errorf("vm: region %q: %w", r.Name, err)
		}
	case RegionCPUClean:
		var err error
		as.CPUTable.ForRange(r.Base, int(r.Size), func(p uint64) {
			if err != nil {
				return
			}
			pa, e := as.CPUPhys.Alloc()
			if e != nil {
				err = e
				return
			}
			as.CPUTable.Set(p, PTE{State: PageCPU, PA: pa, Dirty: false})
		})
		if err != nil {
			return fmt.Errorf("vm: region %q: %w", r.Name, err)
		}
	case RegionLazy:
		// Nothing to install: pages stay unmapped until first touch.
	default:
		return fmt.Errorf("vm: region %q has unknown kind %v", r.Name, r.Kind)
	}
	as.regions = append(as.regions, r)
	return nil
}

// RegionOf returns the region containing va, or nil.
func (as *AddressSpace) RegionOf(va uint64) *Region {
	for i := range as.regions {
		if as.regions[i].Contains(va) {
			return &as.regions[i]
		}
	}
	return nil
}

// Regions returns the registered regions.
func (as *AddressSpace) Regions() []Region { return as.regions }

// Classify determines what a GPU access to va needs, exactly the
// decision tree of the fault handler in Section 4.2: GPU-resident pages
// hit; CPU-owned dirty pages need migration; pages without physical
// memory (or clean CPU pages) only need allocation; accesses outside
// every region are invalid.
func (as *AddressSpace) Classify(va uint64) FaultKind {
	page := as.GPUTable.PageBase(va)
	if as.GPUTable.Lookup(page).Present() {
		return FaultNone
	}
	if as.RegionOf(va) == nil {
		return FaultInvalid
	}
	cpu := as.CPUTable.Lookup(page)
	if cpu.State == PageCPU && cpu.Dirty {
		return FaultMigrate
	}
	return FaultAllocOnly
}

// MapToGPU resolves a fault on the page containing va: it allocates a
// GPU frame (from alloc, or the shared GPU allocator when alloc is
// nil), unmaps any CPU-side entry, and installs the GPU mapping. It
// returns whether a data transfer was required (the page was dirty in
// CPU memory). Mapping an already-present page is a no-op.
func (as *AddressSpace) MapToGPU(va uint64, alloc *PhysAllocator) (transferred bool, err error) {
	page := as.GPUTable.PageBase(va)
	if as.GPUTable.Lookup(page).Present() {
		return false, nil
	}
	if as.RegionOf(va) == nil {
		return false, fmt.Errorf("vm: mapping invalid address %#x", va)
	}
	if alloc == nil {
		alloc = as.GPUPhys
	}
	pa, err := alloc.Alloc()
	if err != nil {
		return false, err
	}
	cpu := as.CPUTable.Lookup(page)
	if cpu.State == PageCPU {
		transferred = cpu.Dirty
		if e := as.CPUPhys.Free(cpu.PA); e != nil {
			return false, e
		}
		as.CPUTable.Set(page, PTE{})
	}
	as.GPUTable.Set(page, PTE{State: PageGPU, PA: pa})
	return transferred, nil
}

// ResidentGPUPages returns the number of pages mapped in the GPU table.
func (as *AddressSpace) ResidentGPUPages() int { return as.GPUTable.MappedPages() }
