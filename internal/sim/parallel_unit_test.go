package sim

import (
	"testing"

	"gpues/internal/chaos"
	"gpues/internal/config"
	"gpues/internal/vm"
)

// parTestSim builds a started simulator over the synthetic vecadd
// kernel with the given worker count.
func parTestSim(t *testing.T, workers int) *Simulator {
	t.Helper()
	cfg := config.Default()
	cfg.Workers = workers
	s, err := New(cfg, testSpec(t, 16, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardPoolGating pins down when the parallel tick phase may
// engage: only with workers >= 2, no OnEvent hook on any SM, and no
// chaos plan drawing randomness on the tick path.
func TestShardPoolGating(t *testing.T) {
	if s := parTestSim(t, 1); s.newShardPool() != nil {
		t.Error("workers=1 built a shard pool; must stay on the sequential path")
	}
	if s := parTestSim(t, 4); s.newShardPool() == nil {
		t.Error("workers=4 with an isolated tick path built no shard pool")
	}

	s := parTestSim(t, 4)
	s.sms[3].OnEvent = func(string, int, int32, int64) {}
	if s.newShardPool() != nil {
		t.Error("an SM with an OnEvent hook must force sequential ticking")
	}
	s.sms[3].OnEvent = nil
	if s.newShardPool() == nil {
		t.Error("clearing the OnEvent hook did not re-enable the pool")
	}

	for _, tc := range []struct {
		level    int
		wantPool bool
	}{
		{0, true}, {1, true}, {2, false}, {3, false},
	} {
		s := parTestSim(t, 4)
		plan, err := chaos.ForLevel(tc.level, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.AttachChaos(plan)
		if got := s.newShardPool() != nil; got != tc.wantPool {
			t.Errorf("chaos level %d: pool=%v, want %v (TickOrderFree=%v)",
				tc.level, got, tc.wantPool, plan.TickOrderFree())
		}
	}
}

// TestShardPoolLedgersDrained runs a workers=4 launch to completion
// and requires every ledger to be empty afterwards: staged effects
// must never survive a cycle boundary (they would otherwise leak into
// checkpoints and divergence bisection). Whether the barrier path
// actually engaged is workload-dependent — the synthetic vecadd rarely
// has two SMs runnable at once — so engagement itself is asserted by
// the differential matrix in parallel_test.go over real workloads.
func TestShardPoolLedgersDrained(t *testing.T) {
	s := parTestSim(t, 4)
	if _, err := s.StepTo(-1); err != nil {
		t.Fatal(err)
	}
	if s.ledgers == nil {
		t.Fatal("run at workers=4 never built the shard pool")
	}
	for i := range s.ledgers {
		if !s.ledgers[i].Empty() {
			t.Errorf("ledger %d still holds staged effects after the run", i)
		}
	}
}

// TestShardPoolShards pins the shard partition: contiguous, disjoint,
// covering, and never more shards than SMs.
func TestShardPoolShards(t *testing.T) {
	s := parTestSim(t, 64) // more workers than the 16 SMs of the default config
	p := s.newShardPool()
	if p == nil {
		t.Fatal("no pool")
	}
	if p.workers != len(s.sms) {
		t.Fatalf("%d workers for %d SMs; want the worker count clamped to the SM count", p.workers, len(s.sms))
	}
	next := 0
	for w, sh := range p.shards {
		if sh[0] != next {
			t.Fatalf("shard %d starts at %d, want %d (contiguous cover)", w, sh[0], next)
		}
		if sh[1] < sh[0] {
			t.Fatalf("shard %d is inverted: %v", w, sh)
		}
		next = sh[1]
	}
	if next != len(s.sms) {
		t.Fatalf("shards cover [0,%d), want [0,%d)", next, len(s.sms))
	}
}
