// Package workloads provides the benchmark kernels of the paper's
// evaluation: synthetic reconstructions of the 11 Parboil benchmarks
// [Stratton et al. 2012] (Section 5.1), four Halloc-style dynamic
// allocation benchmarks and a quad-tree builder (Section 5.4).
//
// Each workload reproduces the *architectural signature* of its
// original — occupancy, register pressure, arithmetic intensity, memory
// access pattern, divergence, atomics, inter-block data reuse and load
// balance — rather than its exact numerics; the paper's figures depend
// on those signatures. Every builder initializes functional memory
// deterministically, so repeated builds produce identical traces.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"gpues/internal/emu"
	"gpues/internal/kernel"
	"gpues/internal/sim"
	"gpues/internal/vm"
)

// Placement selects where buffers live at kernel launch.
type Placement struct {
	// Inputs is the region kind of kernel input buffers: GPUInit for
	// fault-free runs (explicit transfers), CPUInit for on-demand
	// paging.
	Inputs vm.RegionKind
	// Outputs is the kind of kernel output buffers (and the device
	// heap): GPUInit for preallocated, Lazy for first-touch faults.
	Outputs vm.RegionKind
}

// Resident places everything in GPU memory: the fault-free
// configuration of Figures 10 and 11.
func Resident() Placement {
	return Placement{Inputs: vm.RegionGPUInit, Outputs: vm.RegionGPUInit}
}

// DemandPaging starts all data in CPU memory, as in Figure 12: inputs
// dirty (migration faults), outputs clean (allocation-only faults).
func DemandPaging() Placement {
	return Placement{Inputs: vm.RegionCPUInit, Outputs: vm.RegionCPUClean}
}

// LazyOutput leaves outputs (and heap) unallocated, as in Figures 13
// and 14.
func LazyOutput() Placement {
	return Placement{Inputs: vm.RegionGPUInit, Outputs: vm.RegionLazy}
}

// Params configures a workload build.
type Params struct {
	// Scale multiplies the dataset size; 1 is the small (CI) size, 2-4
	// the sizes used by the experiment harness.
	Scale int
	// Placement is the buffer placement policy.
	Placement Placement
	// Seed perturbs the deterministic input generation.
	Seed int64
}

// normalize fills defaults.
func (p Params) normalize() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	var zero Placement
	if p.Placement == zero {
		p.Placement = Resident()
	}
	return p
}

// Workload is a named benchmark.
type Workload struct {
	Name        string
	Suite       string // "parboil", "halloc" or "sdk"
	Description string
	Build       func(p Params) (sim.LaunchSpec, error)
}

var registry []Workload

func register(w Workload) {
	registry = append(registry, w)
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns the registered workload names for a suite ("" = all),
// sorted.
func Names(suite string) []string {
	var out []string
	for _, w := range registry {
		if suite == "" || w.Suite == suite {
			out = append(out, w.Name)
		}
	}
	sort.Strings(out)
	return out
}

// All returns all registered workloads.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	return out
}

// Build builds the named workload.
func Build(name string, p Params) (sim.LaunchSpec, error) {
	w, err := Get(name)
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	return w.Build(p)
}

// ---- builder scaffolding ----------------------------------------------

// regionAlign keeps buffers aligned to the 64 KB fault handling
// granularity so no handling region spans two buffers.
const regionAlign = 64 * 1024

// buildCtx accumulates the memory image and region list of a workload.
type buildCtx struct {
	mem  *emu.Memory
	regs []vm.Region
	next uint64
	rng  *rand.Rand
}

func newBuildCtx(seed int64) *buildCtx {
	return &buildCtx{
		mem:  emu.NewMemory(),
		next: 16 * 1024 * 1024, // leave low VA unused
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// buffer reserves a named region of the given size and kind, returning
// its base address.
func (c *buildCtx) buffer(name string, size int, kind vm.RegionKind) uint64 {
	if size <= 0 {
		size = 1
	}
	base := (c.next + regionAlign - 1) &^ (regionAlign - 1)
	padded := (uint64(size) + regionAlign - 1) &^ (regionAlign - 1)
	c.next = base + padded
	c.regs = append(c.regs, vm.Region{Name: name, Base: base, Size: padded, Kind: kind})
	return base
}

// spec assembles the final LaunchSpec.
func (c *buildCtx) spec(l *kernel.Launch) sim.LaunchSpec {
	return sim.LaunchSpec{Launch: l, Memory: c.mem, Regions: c.regs}
}

// fillF64 writes n pseudo-random float64 values in [0,1) at base.
func (c *buildCtx) fillF64(base uint64, n int) {
	for i := 0; i < n; i++ {
		c.mem.WriteF64(base+uint64(i*8), c.rng.Float64())
	}
}

// fillU64 writes n pseudo-random uint64 values below limit at base.
func (c *buildCtx) fillU64(base uint64, n int, limit uint64) {
	for i := 0; i < n; i++ {
		c.mem.WriteU64(base+uint64(i*8), c.rng.Uint64()%limit)
	}
}
