package workloads

import (
	"fmt"

	"gpues/internal/gpualloc"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
	"gpues/internal/vm"
)

// Dynamic-allocation workloads (Section 5.4, Figure 13): four
// Halloc-style benchmarks and the quad-tree SDK sample port. The device
// heap is managed by the gpualloc allocator; builders run the
// allocation sequence while generating the kernel, and the kernel then
// touches the allocated chunks, producing the scattered first-touch
// fault stream of device-side malloc. A small metadata region absorbs
// the allocator's own atomic traffic.

func init() {
	register(Workload{
		Name:        "halloc-spree",
		Suite:       "halloc",
		Description: "every thread allocates one 256 B chunk and fills it (pure allocation throughput)",
		Build:       func(p Params) (sim.LaunchSpec, error) { return buildHallocFill(p, "halloc-spree", 256, 1, false) },
	})
	register(Workload{
		Name:        "halloc-cycle",
		Suite:       "halloc",
		Description: "alloc/fill/free cycles per thread; freed chunks are reused by later threads",
		Build:       func(p Params) (sim.LaunchSpec, error) { return buildHallocFill(p, "halloc-cycle", 512, 4, true) },
	})
	register(Workload{
		Name:        "halloc-varsize",
		Suite:       "halloc",
		Description: "mixed allocation sizes (16 B - 512 B) across threads, stressing all slab classes",
		Build:       buildHallocVarsize,
	})
	register(Workload{
		Name:        "halloc-churn",
		Suite:       "halloc",
		Description: "fragmenting allocate-two-free-one churn across the heap",
		Build:       buildHallocChurn,
	})
	register(Workload{
		Name:        "quadtree",
		Suite:       "sdk",
		Description: "quad-tree construction with dynamically allocated nodes (ported CUDA SDK sample)",
		Build:       buildQuadtree,
	})
}

// hallocCtx couples a build context with a device heap.
type hallocCtx struct {
	*buildCtx
	heap     *gpualloc.Allocator
	heapBase uint64
	metaBuf  uint64
}

// newHallocCtx reserves a heap of the given number of superblocks plus
// the allocator metadata region.
func newHallocCtx(p Params, superblocks int) (*hallocCtx, error) {
	c := newBuildCtx(p.Seed)
	// The heap must be superblock (1 MiB) aligned for the allocator.
	c.next = (c.next + gpualloc.SuperblockSize - 1) &^ (gpualloc.SuperblockSize - 1)
	heapSize := superblocks * gpualloc.SuperblockSize
	heapBase := c.buffer("heap", heapSize, p.Placement.Outputs)
	meta := c.buffer("alloc-meta", 64*1024, vm.RegionGPUInit)
	heap, err := gpualloc.New(heapBase, uint64(heapSize))
	if err != nil {
		return nil, err
	}
	return &hallocCtx{buildCtx: c, heap: heap, heapBase: heapBase, metaBuf: meta}, nil
}

// emitHeapTouch emits the body of a "use this allocation" sequence: an
// allocator metadata atomic, then stores covering the chunk.
func emitHeapTouch(b *kernel.Builder, ptr, metaBase, one, scratch isa.Reg, size int) {
	// Allocator bookkeeping: one atomic on a metadata word indexed by
	// the chunk's superblock.
	b.Shr(scratch, ptr, 20)
	b.And(scratch, scratch, isa.RZ, 1023)
	b.Shl(scratch, scratch, 3)
	b.IAdd(scratch, scratch, metaBase, 0)
	old := scratch // reuse: atomic result overwrites the address temp
	b.AtomGlobal(isa.AtomAdd, old, scratch, one, isa.RegNone, 8)
	// Fill the chunk with 8-byte stores.
	addr := ptr
	for off := 0; off < size; off += 64 {
		// One store per 64 B keeps the instruction count moderate while
		// still touching every cache line of the chunk.
		b.StGlobal(addr, int64(off), one, 8)
	}
}

// buildHallocFill: each thread performs `rounds` allocations of `size`
// bytes, filling each; when freeing, each round's chunk is released
// before the next thread allocates (heavy reuse).
func buildHallocFill(p Params, name string, size, rounds int, free bool) (sim.LaunchSpec, error) {
	p = p.normalize()
	threads := 16384 * p.Scale
	superblocks := 8 * p.Scale * rounds
	if free {
		superblocks = 8 * p.Scale
	}
	c, err := newHallocCtx(p, superblocks+8)
	if err != nil {
		return sim.LaunchSpec{}, err
	}

	// Precompute the allocation addresses (the substitution for running
	// malloc inside the kernel; see the package comment).
	ptrBuf := c.buffer("ptrs", threads*rounds*8, vm.RegionGPUInit)
	for t := 0; t < threads; t++ {
		var mine []uint64
		for r := 0; r < rounds; r++ {
			a, err := c.heap.Alloc(t, size)
			if err != nil {
				return sim.LaunchSpec{}, fmt.Errorf("%s: %w", name, err)
			}
			c.mem.WriteU64(ptrBuf+uint64((t*rounds+r)*8), a)
			mine = append(mine, a)
		}
		if free {
			for _, a := range mine {
				if err := c.heap.Free(a); err != nil {
					return sim.LaunchSpec{}, err
				}
			}
		}
	}

	b := kernel.NewBuilder(name)
	pPtrs := b.AddParam(ptrBuf)
	pMeta := b.AddParam(c.metaBuf)
	gid := emitGlobalTID(b)
	tmp := b.Reg()
	tabA := b.Reg()
	ptr := b.Reg()
	one := b.Reg()
	scratch := b.Reg()
	metaBase := b.Reg()
	b.MovI(one, 1)
	b.LoadParam(metaBase, pMeta)
	b.IMul(tabA, gid, isa.RZ, int64(rounds*8))
	b.LoadParam(tmp, pPtrs)
	b.IAdd(tabA, tabA, tmp, 0)
	for r := 0; r < rounds; r++ {
		b.LdGlobal(ptr, tabA, int64(r*8), 8)
		emitHeapTouch(b, ptr, metaBase, one, scratch, size)
	}
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: threads / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildHallocVarsize: sizes cycle through the slab classes by thread.
func buildHallocVarsize(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	threads := 16384 * p.Scale
	sizes := []int{16, 32, 64, 128, 256, 512}

	c, err := newHallocCtx(p, 8*p.Scale+8)
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	ptrBuf := c.buffer("ptrs", threads*8, vm.RegionGPUInit)
	for t := 0; t < threads; t++ {
		a, err := c.heap.Alloc(t, sizes[t%len(sizes)])
		if err != nil {
			return sim.LaunchSpec{}, err
		}
		c.mem.WriteU64(ptrBuf+uint64(t*8), a)
	}

	b := kernel.NewBuilder("halloc-varsize")
	pPtrs := b.AddParam(ptrBuf)
	pMeta := b.AddParam(c.metaBuf)
	gid := emitGlobalTID(b)
	tmp := b.Reg()
	tabA := b.Reg()
	ptr := b.Reg()
	one := b.Reg()
	scratch := b.Reg()
	metaBase := b.Reg()
	b.MovI(one, 1)
	b.LoadParam(metaBase, pMeta)
	b.Shl(tabA, gid, 3)
	b.LoadParam(tmp, pPtrs)
	b.IAdd(tabA, tabA, tmp, 0)
	b.LdGlobal(ptr, tabA, 0, 8)
	// Touch up to 128 B (covers the small classes fully; larger chunks
	// partially, like typical varsize consumers).
	emitHeapTouch(b, ptr, metaBase, one, scratch, 128)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: threads / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildHallocChurn: allocate two chunks, free the first, allocate a
// third — the freed space is recycled, fragmenting occupancy across
// superblocks.
func buildHallocChurn(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	threads := 8192 * p.Scale
	const size = 256

	c, err := newHallocCtx(p, 12*p.Scale+8)
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	ptrBuf := c.buffer("ptrs", threads*2*8, vm.RegionGPUInit)
	for t := 0; t < threads; t++ {
		a1, err := c.heap.Alloc(t, size)
		if err != nil {
			return sim.LaunchSpec{}, err
		}
		a2, err := c.heap.Alloc(t, size)
		if err != nil {
			return sim.LaunchSpec{}, err
		}
		if err := c.heap.Free(a1); err != nil {
			return sim.LaunchSpec{}, err
		}
		a3, err := c.heap.Alloc(t, size)
		if err != nil {
			return sim.LaunchSpec{}, err
		}
		c.mem.WriteU64(ptrBuf+uint64(t*16), a2)
		c.mem.WriteU64(ptrBuf+uint64(t*16+8), a3)
	}

	b := kernel.NewBuilder("halloc-churn")
	pPtrs := b.AddParam(ptrBuf)
	pMeta := b.AddParam(c.metaBuf)
	gid := emitGlobalTID(b)
	tmp := b.Reg()
	tabA := b.Reg()
	ptr := b.Reg()
	one := b.Reg()
	scratch := b.Reg()
	metaBase := b.Reg()
	b.MovI(one, 1)
	b.LoadParam(metaBase, pMeta)
	b.Shl(tabA, gid, 4)
	b.LoadParam(tmp, pPtrs)
	b.IAdd(tabA, tabA, tmp, 0)
	for r := 0; r < 2; r++ {
		b.LdGlobal(ptr, tabA, int64(r*8), 8)
		emitHeapTouch(b, ptr, metaBase, one, scratch, size)
	}
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: threads / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// quadNode is the builder-side quad-tree node (64 B on the device:
// 4 child pointers + bounds/data words).
type quadNode struct {
	addr     uint64
	children [4]*quadNode
	depth    int
}

const quadNodeSize = 64

// buildQuadtree: points are inserted into a quad-tree whose nodes are
// dynamically allocated (each node allocates its children on demand —
// the paper's port of the CUDA SDK sample). The kernel walks each
// point's path, reading child pointers from heap nodes, and writes the
// point into its leaf.
func buildQuadtree(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	points := 8192 * p.Scale
	const maxDepth = 6

	c, err := newHallocCtx(p, 8*p.Scale+8)
	if err != nil {
		return sim.LaunchSpec{}, err
	}

	// Build the tree: each point descends by quadrant (2 pseudo-random
	// bits per level from the point id hash), allocating nodes on first
	// use — exactly the allocation pattern the device code would have.
	root := &quadNode{depth: 0}
	root.addr, err = c.heap.Alloc(0, quadNodeSize)
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	depthBuf := c.buffer("depths", points*8, vm.RegionGPUInit)
	leafBuf := c.buffer("leaves", points*8, vm.RegionGPUInit)
	quadrant := func(pt, level int) int {
		h := uint32(pt) * 2654435761
		return int((h >> (2 * uint(level))) & 3)
	}
	for pt := 0; pt < points; pt++ {
		n := root
		depth := 1 + (pt*7+int(c.rng.Int31n(3)))%(maxDepth-1)
		for lv := 0; lv < depth; lv++ {
			qd := quadrant(pt, lv)
			if n.children[qd] == nil {
				child := &quadNode{depth: n.depth + 1}
				child.addr, err = c.heap.Alloc(pt, quadNodeSize)
				if err != nil {
					return sim.LaunchSpec{}, err
				}
				n.children[qd] = child
				// Write the child pointer into the parent node's slot.
				c.mem.WriteU64(n.addr+uint64(qd*8), child.addr)
			}
			n = n.children[qd]
		}
		c.mem.WriteU64(depthBuf+uint64(pt*8), uint64(depth))
		c.mem.WriteU64(leafBuf+uint64(pt*8), n.addr)
	}

	// Quadrant selectors are recomputed on the device from the point id
	// with the same hash.
	b := kernel.NewBuilder("quadtree")
	pDepths := b.AddParam(depthBuf)
	pLeaves := b.AddParam(leafBuf)
	pMeta := b.AddParam(c.metaBuf)
	pRoot := b.AddParam(root.addr)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	depth := b.Reg()
	node := b.Reg()
	hash := b.Reg()
	qd := b.Reg()
	lv := b.Reg()
	one := b.Reg()
	scratch := b.Reg()
	metaBase := b.Reg()
	b.MovI(one, 1)
	b.LoadParam(metaBase, pMeta)
	b.Shl(tmp, gid, 3)
	da := b.Reg()
	b.LoadParam(da, pDepths)
	b.IAdd(da, da, tmp, 0)
	b.LdGlobal(depth, da, 0, 8)
	b.LoadParam(node, pRoot)
	b.IMul(hash, gid, isa.RZ, 2654435761)
	b.And(hash, hash, isa.RZ, (1<<32)-1)
	b.MovI(lv, 0)
	divergentWhile(b, lv, depth, func() {
		// qd = (hash >> 2*lv) & 3 ; node = node.children[qd]
		b.Shl(qd, lv, 1)
		b.Shr(scratch, hash, 0) // copy hash
		sh := b.Reg()
		b.Mov(sh, hash)
		// scratch = hash >> (2*lv): Shr takes reg+imm shift amount.
		shr := isa.NewInstruction(isa.OpShr)
		shr.Dst, shr.SrcA, shr.SrcB = scratch, sh, qd
		b.Emit(shr)
		b.And(qd, scratch, isa.RZ, 3)
		b.Shl(qd, qd, 3)
		b.IAdd(qd, qd, node, 0)
		b.LdGlobal(node, qd, 0, 8)
	})
	// Write the point into its leaf (matches the precomputed leaf).
	leafA := b.Reg()
	b.Shl(tmp, gid, 3)
	b.LoadParam(leafA, pLeaves)
	b.IAdd(leafA, leafA, tmp, 0)
	leaf := b.Reg()
	b.LdGlobal(leaf, leafA, 0, 8)
	b.StGlobal(leaf, 32, gid, 8)
	b.Shr(scratch, leaf, 20)
	b.And(scratch, scratch, isa.RZ, 1023)
	b.Shl(scratch, scratch, 3)
	b.IAdd(scratch, scratch, metaBase, 0)
	b.AtomGlobal(isa.AtomAdd, tmp, scratch, one, isa.RegNone, 8)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: points / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}
