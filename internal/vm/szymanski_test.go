package vm

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSzymanskiMutualExclusion(t *testing.T) {
	const (
		procs = 8
		iters = 200
	)
	l := NewSzymanskiLock(procs)
	if l.N() != procs {
		t.Fatalf("N = %d", l.N())
	}
	var inside atomic.Int32
	var violations atomic.Int32
	counter := 0 // unsynchronized except by the lock

	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock(id)
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				counter++
				inside.Add(-1)
				l.Unlock(id)
			}
		}(id)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d mutual exclusion violations", v)
	}
	if counter != procs*iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, procs*iters)
	}
}

func TestSzymanskiSingleProcess(t *testing.T) {
	l := NewSzymanskiLock(1)
	for i := 0; i < 10; i++ {
		l.Lock(0)
		l.Unlock(0)
	}
}

func TestSzymanskiTwoProcessesAlternating(t *testing.T) {
	// CPU (0) vs GPU (1) handler contention, as in Section 4.2.
	l := NewSzymanskiLock(2)
	shared := make([]int, 0, 100)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Lock(id)
				shared = append(shared, id)
				l.Unlock(id)
			}
		}(id)
	}
	wg.Wait()
	if len(shared) != 100 {
		t.Errorf("appends = %d, want 100 (append race lost entries)", len(shared))
	}
}
