// Package simserv is the simulation-as-a-service job fabric: a
// coordinator that accepts simulation jobs over HTTP/JSON and hands
// them to pull-based workers under a claim/lease protocol, with
// bounded retries, checkpoint-carrying preemption, a fingerprint-keyed
// result cache, per-tenant admission control, a crash-only journal,
// and graceful drain. The deterministic queue state machine underneath
// lives in simserv/queue; this package owns everything with a clock,
// a socket or a disk.
package simserv

import (
	"fmt"

	"gpues/internal/config"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

// JobSpec names one simulation: a benchmark plus the configuration
// axes the CLI exposes. It is the submit payload and the unit the
// result cache is keyed on (via the simulator's config/spec
// fingerprints, not this struct's encoding — two spellings of the
// same simulation share a cache entry).
type JobSpec struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale,omitempty"` // default 1
	// Scheme is the pipeline scheme: baseline, wd-commit,
	// wd-lastcheck, replay-queue or operand-log (default baseline).
	Scheme string `json:"scheme,omitempty"`
	// Link is the CPU-GPU interconnect: nvlink or pcie (default nvlink).
	Link string `json:"link,omitempty"`
	// Placement is the initial data placement: resident, paging or
	// lazy (default resident).
	Placement string `json:"placement,omitempty"`
	// Switching enables thread block switching on fault (use case 1).
	Switching bool `json:"switching,omitempty"`
	// Local handles allocation-only faults on the GPU (use case 2).
	Local bool `json:"local,omitempty"`
	// MaxCycles aborts the run with a stall report past this cycle
	// (0 = simulator default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// scale returns the effective dataset scale.
func (js JobSpec) scale() int {
	if js.Scale == 0 {
		return 1
	}
	return js.Scale
}

// Build materializes the simulator inputs. It validates every axis on
// the way: an unknown benchmark, scheme, link or placement fails here,
// at admission, not on a worker.
func (js JobSpec) Build() (config.Config, sim.LaunchSpec, error) {
	cfg := config.Default()
	switch js.Scheme {
	case "", "baseline":
		cfg.Scheme = config.Baseline
	case "wd-commit":
		cfg.Scheme = config.WarpDisableCommit
	case "wd-lastcheck":
		cfg.Scheme = config.WarpDisableLastCheck
	case "replay-queue":
		cfg.Scheme = config.ReplayQueue
	case "operand-log":
		cfg.Scheme = config.OperandLog
	default:
		return cfg, sim.LaunchSpec{}, fmt.Errorf("simserv: unknown scheme %q", js.Scheme)
	}
	switch js.Link {
	case "", "nvlink":
		cfg.Link = config.NVLinkConfig()
	case "pcie":
		cfg.Link = config.PCIeConfig()
	default:
		return cfg, sim.LaunchSpec{}, fmt.Errorf("simserv: unknown link %q", js.Link)
	}
	place := workloads.Resident()
	switch js.Placement {
	case "", "resident":
	case "paging":
		place = workloads.DemandPaging()
		cfg.DemandPaging = true
	case "lazy":
		place = workloads.LazyOutput()
	default:
		return cfg, sim.LaunchSpec{}, fmt.Errorf("simserv: unknown placement %q", js.Placement)
	}
	cfg.Scheduler.Enabled = js.Switching
	cfg.Local.Enabled = js.Local
	if js.MaxCycles > 0 {
		cfg.MaxCycles = js.MaxCycles
	}
	if js.scale() < 1 {
		return cfg, sim.LaunchSpec{}, fmt.Errorf("simserv: scale %d must be >= 1", js.Scale)
	}
	spec, err := workloads.Build(js.Benchmark, workloads.Params{Scale: js.scale(), Placement: place})
	if err != nil {
		return cfg, sim.LaunchSpec{}, err
	}
	return cfg, spec, nil
}

// Key returns the result-cache / singleflight key: the simulator's
// config and launch-spec fingerprints, the same pair a checkpoint is
// stamped with. Building the workload image is cheap next to
// simulating it; identical simulations always collide here even when
// their JobSpecs differ in spelling (e.g. "" vs "baseline").
func (js JobSpec) Key() (string, error) {
	cfg, spec, err := js.Build()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("cfg%016x-spec%016x", sim.FingerprintConfig(cfg), sim.FingerprintSpec(spec)), nil
}
