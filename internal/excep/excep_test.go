package excep

import (
	"errors"
	"strings"
	"testing"
)

func TestKindModeOutcomeNames(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	for m := Mode(0); m < NumModes; m++ {
		if s := m.String(); s == "" || strings.HasPrefix(s, "Mode(") {
			t.Errorf("Mode %d has no name", m)
		}
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	for o := Outcome(0); o < NumOutcomes; o++ {
		if s := o.String(); s == "" || strings.HasPrefix(s, "Outcome(") {
			t.Errorf("Outcome %d has no name", o)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := &Record{
		Kind: KindIllegalAddress, Block: 3, Warp: 1, Lane: 7,
		PC: 12, Mnemonic: "ld.global", Addr: 0x40,
		Frames: []Frame{{PC: 0, RPC: -1, Mask: 0xffffffff}, {PC: 12, RPC: 14, Mask: 0x80}},
	}
	s := r.String()
	for _, want := range []string{"illegal-address", "pc 12", "block 3 warp 1 lane 7", "address 0x40", "frame 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestErrorAs(t *testing.T) {
	var err error = &Error{Cycle: 1000, Records: []*Record{{Kind: KindAssert}}}
	var ee *Error
	if !errors.As(err, &ee) || ee.Cycle != 1000 {
		t.Fatalf("errors.As failed on %v", err)
	}
	if !strings.Contains(err.Error(), "assert") {
		t.Errorf("error text %q missing kind", err.Error())
	}
}

// TestFlipDeterminism: decisions are a pure function of the site; the
// same seed yields bit-identical decisions in any query order.
func TestFlipDeterminism(t *testing.T) {
	cfg := FlipConfig{Seed: 7, Rate: 0.05}
	type site struct{ b, w, l, i int32 }
	sites := []site{}
	for b := int32(0); b < 4; b++ {
		for w := int32(0); w < 2; w++ {
			for l := int32(0); l < 32; l++ {
				for i := int32(0); i < 50; i++ {
					sites = append(sites, site{b, w, l, i})
				}
			}
		}
	}
	first := map[site]Decision{}
	hits := 0
	for _, s := range sites {
		if d, ok := cfg.At(s.b, s.w, s.l, s.i, int(s.l), s.i%3 == 0); ok {
			first[s] = d
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("rate 0.05 over 12800 sites produced no flips")
	}
	// Reverse order must reproduce the exact same decisions.
	for j := len(sites) - 1; j >= 0; j-- {
		s := sites[j]
		d, ok := cfg.At(s.b, s.w, s.l, s.i, int(s.l), s.i%3 == 0)
		if prev, had := first[s]; had != ok || (ok && d != prev) {
			t.Fatalf("site %+v: decision not order-independent", s)
		}
	}
}

func TestFlipProtectThreads(t *testing.T) {
	cfg := FlipConfig{Seed: 7, Rate: 1, ProtectThreads: 16}
	for tid := 0; tid < 16; tid++ {
		if _, ok := cfg.At(0, 0, int32(tid), 0, tid, true); ok {
			t.Errorf("protected thread %d flipped", tid)
		}
	}
	if _, ok := cfg.At(0, 0, 16, 0, 16, true); !ok {
		t.Error("unprotected thread did not flip at rate 1")
	}
}

func TestFlipTargets(t *testing.T) {
	cfg := FlipConfig{Seed: 3, Rate: 1}
	sawAddr := false
	for i := int32(0); i < 200; i++ {
		d, ok := cfg.At(0, 0, 0, i, 0, false)
		if !ok {
			t.Fatal("rate 1 must always flip")
		}
		if d.Target == TargetAddress {
			t.Fatal("address target on a non-memory instruction")
		}
		if d2, _ := cfg.At(0, 0, 0, i, 0, true); d2.Target == TargetAddress {
			sawAddr = true
		}
	}
	if !sawAddr {
		t.Error("no address flip in 200 memory sites at rate 1")
	}
	if TargetRegister.String() != "register" || TargetPredicate.String() != "predicate" || TargetAddress.String() != "address" {
		t.Error("target names wrong")
	}
}
