package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// Object paths name package-level objects and their members in a form
// that is stable across type-checking sessions, so a fact exported
// while analyzing a dependency from source can be re-attached to the
// same logical object when the dependent package sees it through
// export data (a minimal, simlint-scoped take on
// golang.org/x/tools/go/types/objectpath):
//
//	N:Name          package-scope func, var, const or type
//	M:Type.Method   method of a package-level named type (any receiver)
//	F:Type.Field    top-level field of a package-level struct type
func ObjectPath(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if obj.Parent() == pkg.Scope() {
		return "N:" + obj.Name(), true
	}
	switch o := obj.(type) {
	case *types.Func:
		recv := o.Type().(*types.Signature).Recv()
		if recv == nil {
			return "", false
		}
		name, ok := recvTypeName(recv.Type())
		if !ok {
			return "", false
		}
		return "M:" + name + "." + o.Name(), true
	case *types.Var:
		if !o.IsField() {
			return "", false
		}
		if name, ok := fieldOwner(pkg, o); ok {
			return "F:" + name + "." + o.Name(), true
		}
	}
	return "", false
}

// recvTypeName unwraps a receiver type to its named type's name.
func recvTypeName(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

// fieldOwner finds the package-level struct type declaring field, by
// scanning the package scope (fields do not link back to their owner).
func fieldOwner(pkg *types.Package, field *types.Var) (string, bool) {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return name, true
			}
		}
	}
	return "", false
}

// ResolveObjectPath is the inverse of ObjectPath against a loaded (or
// export-data-imported) package.
func ResolveObjectPath(pkg *types.Package, path string) (types.Object, error) {
	kind, rest, ok := strings.Cut(path, ":")
	if !ok {
		return nil, fmt.Errorf("malformed object path %q", path)
	}
	switch kind {
	case "N":
		if obj := pkg.Scope().Lookup(rest); obj != nil {
			return obj, nil
		}
		return nil, fmt.Errorf("%s: no package-level object %q", pkg.Path(), rest)
	case "M", "F":
		tname, member, ok := strings.Cut(rest, ".")
		if !ok {
			return nil, fmt.Errorf("malformed object path %q", path)
		}
		tn, ok2 := pkg.Scope().Lookup(tname).(*types.TypeName)
		if !ok2 {
			return nil, fmt.Errorf("%s: no type %q", pkg.Path(), tname)
		}
		if kind == "M" {
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return nil, fmt.Errorf("%s.%s: not a named type", pkg.Path(), tname)
			}
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Name() == member {
					return m, nil
				}
			}
			return nil, fmt.Errorf("%s.%s: no method %q", pkg.Path(), tname, member)
		}
		st, ok2 := tn.Type().Underlying().(*types.Struct)
		if !ok2 {
			return nil, fmt.Errorf("%s.%s: not a struct", pkg.Path(), tname)
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == member {
				return f, nil
			}
		}
		return nil, fmt.Errorf("%s.%s: no field %q", pkg.Path(), tname, member)
	}
	return nil, fmt.Errorf("unknown object path kind %q", kind)
}
