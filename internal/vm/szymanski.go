package vm

import (
	"runtime"
	"sync/atomic"
)

// SzymanskiLock implements Szymanski's n-process mutual exclusion
// algorithm with linear wait, the algorithm the paper's prototype uses
// for system-level synchronization between the CPU and the GPU memory
// managers (Section 4.2). It relies only on single-writer shared flags,
// which is what makes it usable across a non-coherent CPU-GPU
// interconnect where atomic read-modify-write across the link is
// expensive or unavailable.
//
// Flag protocol per process i (values 0..4):
//
//	0: non-critical section
//	1: wants to enter, waiting for the door
//	2: waiting for other processes in the entry room
//	3: inside the entry room, door open
//	4: door closed behind it, heading to the critical section
type SzymanskiLock struct {
	flags []atomic.Int32
}

// NewSzymanskiLock returns a lock for n processes (ids 0..n-1).
func NewSzymanskiLock(n int) *SzymanskiLock {
	return &SzymanskiLock{flags: make([]atomic.Int32, n)}
}

// N returns the number of participating processes.
func (l *SzymanskiLock) N() int { return len(l.flags) }

func (l *SzymanskiLock) spin(cond func() bool) {
	for !cond() {
		runtime.Gosched()
	}
}

// Lock enters the critical section as process id.
func (l *SzymanskiLock) Lock(id int) {
	n := len(l.flags)
	self := &l.flags[id]

	// Stand in the doorway: declare intention.
	self.Store(1)
	l.spin(func() bool {
		for i := 0; i < n; i++ {
			if l.flags[i].Load() >= 3 {
				return false
			}
		}
		return true
	})

	// Cross the doorway.
	self.Store(3)
	// If someone else is still at stage 1, close ranks: wait for a
	// process that has reached stage 4 (door closed).
	waiting := false
	for i := 0; i < n; i++ {
		if i != id && l.flags[i].Load() == 1 {
			waiting = true
			break
		}
	}
	if waiting {
		self.Store(2)
		l.spin(func() bool {
			for i := 0; i < n; i++ {
				if l.flags[i].Load() == 4 {
					return true
				}
			}
			return false
		})
	}

	// Close the door.
	self.Store(4)

	// Wait for lower-numbered processes to leave the entry room
	// (linear-wait priority).
	l.spin(func() bool {
		for i := 0; i < id; i++ {
			if l.flags[i].Load() >= 2 {
				return false
			}
		}
		return true
	})
}

// Unlock leaves the critical section as process id, waiting for
// higher-numbered processes still between the doors.
func (l *SzymanskiLock) Unlock(id int) {
	n := len(l.flags)
	l.spin(func() bool {
		for i := id + 1; i < n; i++ {
			f := l.flags[i].Load()
			if f == 2 || f == 3 {
				return false
			}
		}
		return true
	})
	l.flags[id].Store(0)
}
