package dram

import "gpues/internal/ckpt"

// SaveState serializes the DRAM model: the bandwidth pipe position and
// the access statistics.
func (d *DRAM) SaveState(w *ckpt.Writer) {
	w.F64(d.nextFree)
	w.I64(d.stats.Reads)
	w.I64(d.stats.Writes)
	w.I64(d.stats.BytesRead)
	w.I64(d.stats.BytesWrit)
	w.I64(d.stats.StallCycles)
}

// RestoreState reads the SaveState stream back and installs it.
func (d *DRAM) RestoreState(r *ckpt.Reader) error {
	d.nextFree = r.F64()
	d.stats.Reads = r.I64()
	d.stats.Writes = r.I64()
	d.stats.BytesRead = r.I64()
	d.stats.BytesWrit = r.I64()
	d.stats.StallCycles = r.I64()
	return r.Err()
}
