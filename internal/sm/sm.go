package sm

import (
	"math/bits"

	"gpues/internal/cache"
	"gpues/internal/clock"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/excep"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/obs"
	"gpues/internal/tlb"
	"gpues/internal/vm"
)

// FaultSink receives page faults detected by the SM's memory pipeline.
// It is implemented by the system-level exception unit (internal/core),
// which routes faults to the CPU driver or the GPU-local handler.
type FaultSink interface {
	// RaiseFault reports a faulting page. resolved runs when the fault
	// (its 64 KB handling region) has been resolved. The return value is
	// the position of the fault in the global pending fault queue, which
	// the local scheduler compares against its switch threshold.
	RaiseFault(pageVA uint64, kind vm.FaultKind, smID int, resolved func()) int
}

// BlockSource hands out pending thread blocks (the global thread block
// scheduler of Figure 1) and is notified of completions.
type BlockSource interface {
	// NextBlock returns the trace of the next pending block, or false
	// when the grid is exhausted.
	NextBlock(smID int) (*emu.BlockTrace, bool)
	// BlockDone reports a completed block.
	BlockDone(smID, blockID int)
	// PendingBlocks returns how many blocks have not been issued yet.
	PendingBlocks() int
}

// ContextMover moves block context to/from off-chip memory (the DRAM
// model); done runs when the transfer completes.
type ContextMover interface {
	Move(bytes int, done func())
}

// ExcepSink receives device-raised exception records once the timing
// layer delivers them; the host exception board (internal/host)
// implements it by latching the record behind the host-mapped
// exception flag that the driver polls at API-call granularity.
type ExcepSink interface {
	// PostExcep publishes one exception record at the given cycle.
	PostExcep(now int64, r *excep.Record)
}

// Chaos is the SM's fault-injection hook (internal/chaos implements
// it): StallIssue may artificially hold back an issuable global-memory
// instruction for a cycle (operand-log / replay-queue back-pressure);
// ForceSwitch may switch a faulting block out regardless of its
// pending-queue position. A nil Chaos costs a pointer test.
type Chaos interface {
	StallIssue(smID int, isReplay bool) bool
	ForceSwitch(smID int) bool
}

// Stats counts SM activity.
type Stats struct {
	Cycles         int64
	ActiveCycles   int64 // cycles with at least one fetch or issue
	Committed      int64
	Issued         int64
	Fetched        int64
	GlobalMemInsts int64
	MemRequests    int64
	Faults         int64
	Squashed       int64
	Replays        int64
	BlocksRun      int64
	SwitchesOut    int64
	SwitchesIn     int64
	ContextBytes   int64
	// Exceptions counts device-exception records this SM delivered to
	// the host exception board.
	Exceptions      int64
	IssueStallLog   int64 // operand log full
	IssueStallScore int64 // scoreboard hazard
	IssueStallChaos int64 // injected back-pressure (chaos plans)
	// Stalls is the full per-reason breakdown: issue-stage stall
	// occurrences (scoreboard, port, log-full, chaos) and blocked-cycle
	// intervals (fault-wait, barrier, fetch-control, fetch-warp-disable,
	// off-chip). The IssueStall* fields above are retained views of
	// three of its buckets.
	Stalls obs.StallBreakdown
}

type blockState uint8

const (
	blockActive blockState = iota
	blockDraining
	blockSaving
	blockOffChip
	blockRestoring
)

// blockRT is a resident (or switched-out) thread block.
type blockRT struct {
	id    int
	slot  int // SM block slot while active; -1 when off-chip
	state blockState
	warps []*warpRT

	liveWarps     int // warps not done
	barrierCount  int
	logUsed       int // operand log entries in use
	pendingFaults int // unresolved faults across its warps
	contextBytes  int
	// excepted marks a block squashed by preemptible exception
	// delivery: it drains, saves off-chip, and is never restored or
	// finished — the host terminates the launch at its next poll.
	excepted bool
	// switchOutStart is the cycle the block began draining for a switch
	// (off-chip stall attribution).
	switchOutStart int64
}

// SM is one streaming multiprocessor.
type SM struct {
	//simlint:ckptskip identity assigned at construction; the checkpoint section is keyed by it
	ID int
	//simlint:ckptskip immutable run configuration, re-supplied by the harness
	cfg *config.Config
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue

	//simlint:ckptskip wiring to the private L1, which checkpoints itself as its own section
	l1 *cache.Cache
	//simlint:ckptskip wiring to the private L1 TLB, which checkpoints itself as its own section
	l1tlb *tlb.TLB
	//simlint:ckptskip wiring to the fault coordinator, rebuilt by the harness before restore
	sink FaultSink
	//simlint:ckptskip wiring to the block dispatcher, rebuilt by the harness before restore
	src BlockSource
	//simlint:ckptskip wiring to the context mover, rebuilt by the harness before restore
	mover ContextMover
	//simlint:ckptskip chaos hook, rebound by AttachChaos on restore; the plan checkpoints its own progress
	chaos Chaos
	//simlint:ckptskip wiring to the exception board, rebuilt by the harness before restore
	excep ExcepSink

	//simlint:ckptskip kernel launch description, re-supplied by the replayed workload
	launch *kernel.Launch
	//simlint:ckptskip derived from launch at BeginKernel, which replay re-executes before restore
	occupancy int // concurrent blocks this kernel supports
	//simlint:ckptskip derived from launch at BeginKernel, which replay re-executes before restore
	warpsPerBlock int
	//simlint:ckptskip derived from launch at BeginKernel, which replay re-executes before restore
	logPerBlock int // operand log entries per block partition
	//simlint:ckptskip derived from launch at BeginKernel, which replay re-executes before restore
	blockBytes int // architectural context size of one block

	slots   []*blockRT // active block slots (nil = free)
	offchip []*blockRT // switched-out blocks
	// assigned counts blocks this SM currently owns in any state.
	assigned int

	//simlint:ckptskip flat view over the blocks' warp arrays; saveBlock serializes every warp through its owning block
	warps     []*warpRT // all warp slots (occupancy * warpsPerBlock)
	lastFetch int
	lastIssue int
	// bufMask marks warp slots holding a fetched instruction (bit i set
	// iff warps[i] != nil && warps[i].buf != nil). doIssue walks only
	// the set bits — in the same ascending wrap-around order as a full
	// slot scan, which skips empty slots anyway.
	bufMask []uint64

	// flightPool is a free list of flight objects; see newFlight.
	//simlint:ckptskip free list, a pure allocation cache; an empty list after restore is correct
	flightPool *flight

	idle  bool // nothing proceeded last tick; sleep until next event
	stats Stats

	// onWake, when set, fires on the idle→awake transition; the main
	// loop uses it to put the SM back into its active set.
	//simlint:ckptskip wiring to the main loop, rebuilt by the harness before restore
	onWake func()

	// OnEvent, when set, receives pipeline events for tests and tracing:
	// kind is one of "fetch", "issue", "lastcheck", "commit", "squash";
	// tIdx is the dynamic instruction's trace index within its warp.
	//simlint:ckptskip test and tracing hook; observability, not simulation state
	OnEvent func(kind string, warp int, tIdx int32, cycle int64)

	// tr, when attached, receives typed trace events (internal/obs); a
	// nil tracer costs one branch per emission site.
	//simlint:ckptskip tracer wiring; trace emission is observability, not simulation state
	tr *obs.Tracer
	// led, while non-nil (inside TickStaged only), redirects the tick
	// path's shared-state side effects — clock schedules, trace
	// emissions, histogram samples — into the ledger for an ordered
	// post-barrier flush; see ledger.go.
	//simlint:ckptskip transient, non-nil only inside TickStaged; checkpoints are never taken mid-tick
	led *Ledger
	// met holds the shared aggregate instruments the simulator passes
	// in; its pointers are nil-safe, so observations run unconditionally.
	//simlint:ckptskip wiring to shared instruments; the obs registry checkpoints them as its own section
	met Metrics
}

// Metrics are the aggregate instruments the simulator shares across its
// SMs. The zero value records nothing.
type Metrics struct {
	// ReplayOcc samples the replay list length at each insertion
	// (Section 3.2 replay queue occupancy).
	ReplayOcc *obs.Histogram
	// LogOcc samples a block's operand log occupancy at each
	// allocation (Section 3.3).
	LogOcc *obs.Histogram
}

// event fires the OnEvent hook. Shard-pure by runtime gating, not by
// staging: sim.Run's TickIsolated check refuses the parallel tick phase
// while any OnEvent hook is installed, so during TickStaged this body
// is a no-op.
//
//simlint:shardsafe
func (s *SM) event(kind string, w *warpRT, tIdx int32) {
	if s.OnEvent != nil {
		s.OnEvent(kind, w.idx, tIdx, s.q.Now())
	}
}

// SetTracer attaches the event tracer; nil removes it.
func (s *SM) SetTracer(tr *obs.Tracer) { s.tr = tr }

// SetMetrics installs the shared instruments.
func (s *SM) SetMetrics(m Metrics) { s.met = m }

// warpID is a warp's stable identity across context switches:
// blockID*warpsPerBlock + warp index (the trace timeline key).
func (s *SM) warpID(w *warpRT) int32 {
	return int32(w.block.id*s.warpsPerBlock + w.idx)
}

// blockTID is the timeline key block-level events share with the
// block's first warp.
func (s *SM) blockTID(b *blockRT) int32 { return int32(b.id * s.warpsPerBlock) }

// trace emits one pipeline-shaped event (A=trace index, B=block id).
// During a staged tick the emission is buffered in the ledger instead,
// preserving per-SM order; the Enabled pre-check keeps the staged path
// from buffering events the tracer's filter would drop anyway.
//
//simlint:shardsafe
func (s *SM) trace(k obs.Kind, w *warpRT, tIdx int32) {
	if s.tr == nil {
		return
	}
	if s.led != nil {
		if s.tr.Enabled(k) {
			s.led.Trace.Emit(s.ID, k, s.warpID(w), uint64(tIdx), uint64(w.block.id))
		}
		return
	}
	s.tr.Emit(s.ID, k, s.warpID(w), uint64(tIdx), uint64(w.block.id))
}

// schedule books an event callback after d cycles. During a staged
// tick the booking is buffered in the ledger (FlushLedger replays it
// onto the shared queue in SM index order); otherwise it goes straight
// to the queue.
//
//simlint:shardsafe
func (s *SM) schedule(d int64, fn func()) {
	if s.led != nil {
		s.led.Events.After(d, fn)
		return
	}
	s.q.After(d, fn)
}

// observeLogOcc samples the operand-log occupancy histogram. During a
// staged tick the sample is buffered in the ledger; otherwise it is
// observed directly.
//
//simlint:shardsafe
func (s *SM) observeLogOcc(v int64) {
	if s.led != nil {
		s.led.observeLogOcc(v)
		return
	}
	s.met.LogOcc.Observe(v)
}

// stall counts one issue-stage stall occurrence and traces it. Like
// trace, a staged tick buffers the emission in the ledger.
//
//simlint:shardsafe
func (s *SM) stall(w *warpRT, f *flight, r obs.StallReason) {
	s.stats.Stalls[r]++
	if s.tr == nil {
		return
	}
	if s.led != nil {
		if s.tr.Enabled(obs.KStall) {
			s.led.Trace.Emit(s.ID, obs.KStall, s.warpID(w), uint64(r), uint64(f.tIdx))
		}
		return
	}
	s.tr.Emit(s.ID, obs.KStall, s.warpID(w), uint64(r), uint64(f.tIdx))
}

// New builds an SM bound to its L1 cache, L1 TLB and the system-level
// services.
func New(id int, cfg *config.Config, q *clock.Queue, l1 *cache.Cache, l1tlb *tlb.TLB,
	sink FaultSink, src BlockSource, mover ContextMover) *SM {
	return &SM{
		ID:    id,
		cfg:   cfg,
		q:     q,
		l1:    l1,
		l1tlb: l1tlb,
		sink:  sink,
		src:   src,
		mover: mover,
	}
}

// Stats returns a copy of the counters.
func (s *SM) Stats() Stats { return s.stats }

// SetChaos installs the fault-injection hook; nil removes it.
func (s *SM) SetChaos(c Chaos) { s.chaos = c }

// SetExcepSink installs the device-exception sink; nil removes it.
func (s *SM) SetExcepSink(e ExcepSink) { s.excep = e }

// PrepareLaunch sizes the SM for a kernel launch: computes occupancy,
// partitions the operand log among the resident blocks (Section 3.3),
// and derives the per-block context size used by the switching cost
// model.
func (s *SM) PrepareLaunch(l *kernel.Launch) {
	s.launch = l
	s.occupancy = l.Occupancy(s.cfg.SM.MaxThreadBlocks, s.cfg.SM.MaxWarps,
		s.cfg.SM.WarpSize, s.cfg.SM.RegisterFileKB, s.cfg.SM.SharedMemoryKB)
	s.warpsPerBlock = l.WarpsPerBlock(s.cfg.SM.WarpSize)
	if s.cfg.Scheme == config.OperandLog && s.occupancy > 0 {
		s.logPerBlock = s.cfg.SM.OperandLog.Entries() / s.occupancy
		if s.logPerBlock < 1 {
			s.logPerBlock = 1
		}
	} else {
		s.logPerBlock = 0
	}
	// Context of one block: registers of all threads (4 B units),
	// static shared memory, and divergence/barrier control state.
	regBytes := l.Kernel.RegsPerThread * 4 * l.ThreadsPerBlock()
	s.blockBytes = regBytes + l.Kernel.SharedMemBytes + 64*s.warpsPerBlock

	s.slots = make([]*blockRT, s.occupancy)
	s.offchip = nil
	s.assigned = 0
	s.warps = make([]*warpRT, s.occupancy*s.warpsPerBlock)
	s.lastFetch, s.lastIssue = 0, 0
	s.bufMask = make([]uint64, (len(s.warps)+63)/64)
	s.idle = false
}

// Occupancy returns the number of concurrent blocks for the prepared
// launch.
func (s *SM) Occupancy() int { return s.occupancy }

// FillBlocks pulls blocks from the source until all slots are occupied
// or the grid is exhausted (initial batch at launch).
func (s *SM) FillBlocks() {
	for slot := range s.slots {
		if s.slots[slot] == nil {
			if !s.startBlock(slot) {
				return
			}
		}
	}
}

// startBlock activates the next pending block in the given slot.
func (s *SM) startBlock(slot int) bool {
	bt, ok := s.src.NextBlock(s.ID)
	if !ok {
		return false
	}
	s.activateBlock(slot, bt)
	return true
}

// activateBlock installs a block trace into a slot.
func (s *SM) activateBlock(slot int, bt *emu.BlockTrace) {
	b := &blockRT{
		id:           bt.BlockID,
		slot:         slot,
		state:        blockActive,
		contextBytes: s.blockBytes,
	}
	b.warps = make([]*warpRT, len(bt.Warps))
	for i := range bt.Warps {
		w := &warpRT{
			sm:    s,
			block: b,
			idx:   i,
			trace: bt.Warps[i].Insts,
			excep: bt.Warps[i].Excep,
		}
		if len(w.trace) == 0 {
			w.done = true
		} else {
			b.liveWarps++
		}
		b.warps[i] = w
		s.warps[slot*s.warpsPerBlock+i] = w
	}
	// Blocks may have fewer warps than the slot width (never more).
	for i := len(bt.Warps); i < s.warpsPerBlock; i++ {
		s.warps[slot*s.warpsPerBlock+i] = nil
	}
	s.slots[slot] = b
	s.assigned++
	s.stats.BlocksRun++
	s.wake()
	// A warp that faulted before executing any instruction has an empty
	// trace: it is born done and its exception delivers at activation.
	for _, w := range b.warps {
		if w.done && w.excep != nil {
			s.deliverExcep(w)
		}
	}
	if b.liveWarps == 0 && !b.excepted {
		s.blockFinished(b)
	}
}

// deliverExcep posts a drained warp's pending exception record to the
// host exception board. Precise delivery stops there: the offending
// warp is dead (its truncated trace — outstanding replays included —
// has fully drained and committed, so every older instruction's
// effects are architecturally visible) and the rest of the machine
// runs on until the host polls the exception flag. Preemptible
// delivery additionally squashes the offending block through the
// block-switch path: the block drains, saves its context off-chip via
// the paper's SM-state save machinery, and is never restored.
func (s *SM) deliverExcep(w *warpRT) {
	if w.excep == nil || w.excepDone {
		return
	}
	w.excepDone = true
	s.stats.Exceptions++
	if s.tr != nil {
		s.tr.Emit(s.ID, obs.KExcep, s.warpID(w), uint64(w.excep.Kind), uint64(w.block.id))
	}
	if s.excep != nil {
		s.excep.PostExcep(s.q.Now(), w.excep)
	}
	if s.cfg.Excep.Mode != excep.ModePreemptible {
		return
	}
	b := w.block
	b.excepted = true
	if b.state != blockActive {
		// Already draining or off-chip (a fault-driven switch raced the
		// delivery); the excepted mark keeps it from ever restoring.
		return
	}
	b.state = blockDraining
	b.switchOutStart = s.q.Now()
	s.stats.SwitchesOut++
	if s.tr != nil {
		s.tr.Emit(s.ID, obs.KSwitchOut, s.blockTID(b), uint64(b.id), 0)
	}
	s.afterDrainStep(b)
}

// newFlight takes a flight from the pool (or builds one, wiring its
// reusable closures to the new object) and resets its per-use state.
// Slice capacities and the closure set survive reuse, so the
// fetch/issue/memory path stops allocating once the pool is warm.
func (s *SM) newFlight(w *warpRT, ti *emu.TraceInst, tIdx int32, isReplay bool) *flight {
	f := s.flightPool
	if f == nil {
		f = &flight{}
		f.opReadFn = func() { s.wake(); s.opRead(f) }
		f.commitFn = func() { s.wake(); s.commit(f) }
	} else {
		s.flightPool = f.poolNext
		f.poolNext = nil
	}
	f.w, f.ti, f.tIdx, f.isReplay = w, ti, tIdx, isReplay
	f.srcHeld = f.srcHeld[:0]
	f.reqs = f.reqs[:0]
	f.tlbRem, f.reqRem = 0, 0
	f.faulted, f.squashed, f.committed = false, false, false
	f.logHeld = 0
	f.wdOwner = false
	return f
}

// freeFlight returns a flight to the pool. Callers must guarantee no
// scheduled event still references it: commit (all translations and
// cache completions have fired by then) and the fetch-buffer flush in
// squashAndRaise (never issued, so nothing was scheduled) qualify.
// Squashed flights are never recycled — stale TLB fill and cache
// callbacks may still hold them, relying on the squashed flag staying
// set.
//
//simlint:releases 0
func (s *SM) freeFlight(f *flight) {
	if f.squashed {
		return
	}
	f.w, f.ti = nil, nil
	f.poolNext = s.flightPool
	s.flightPool = f
}

// SetWakeHook installs the idle→awake notification used by the
// active-set scheduler in sim.Run; nil removes it.
func (s *SM) SetWakeHook(h func()) { s.onWake = h }

// wake marks the SM runnable; every event callback that changes SM
// state calls it.
//
// Shard-pure as a boundary: wake only does work on the idle→awake
// transition, and a ticking SM is by definition not idle — during
// TickStaged the body is a no-op, so the onWake callback into the run
// loop's active set fires only from the single-threaded drain phase.
//
//simlint:shardsafe
func (s *SM) wake() {
	if s.idle {
		s.idle = false
		if s.onWake != nil {
			s.onWake()
		}
	}
}

// Idle reports whether the SM had nothing to do at its last tick and is
// waiting for an event.
func (s *SM) Idle() bool { return s.idle }

// Done reports whether the SM has no resident or off-chip work.
func (s *SM) Done() bool { return s.assigned == 0 }

// Tick advances the SM by one cycle. Issue runs before fetch so a warp
// whose buffered instruction issues this cycle can refill its buffer in
// the same cycle (the instruction buffer is one entry deep), giving the
// back-to-back fetch/issue cadence of the paper's timing diagrams.
func (s *SM) Tick() {
	s.stats.Cycles++
	issued := s.doIssue()
	fetched := s.doFetch()
	if fetched || issued {
		s.stats.ActiveCycles++
	} else {
		s.idle = true
	}
}

// fetchWidth is how many warps may fetch per cycle (dual-ported
// instruction cache).
const fetchWidth = 2

func (s *SM) doFetch() bool {
	if len(s.warps) == 0 {
		return false
	}
	budget := fetchWidth
	n := len(s.warps)
	pos := s.lastFetch + 1
	if pos >= n {
		pos -= n
	}
	for i := 0; i < n && budget > 0; i, pos = i+1, wrapNext(pos, n) {
		w := s.warps[pos]
		if w == nil || w.done || w.buf != nil || w.fetchBlock != fetchOK ||
			w.atBarrier || w.faultsOutstanding > 0 || w.block.state != blockActive {
			continue
		}
		idx, isReplay, ok := w.nextFetchIndex()
		if !ok {
			continue
		}
		ti := &w.trace[idx]
		f := s.newFlight(w, ti, idx, isReplay)
		if isReplay {
			w.replay = w.replay[1:]
			s.stats.Replays++
		} else {
			w.cursor++
		}
		w.buf = f
		s.setBuf(pos)
		w.bufReady = s.q.Now() + 1
		if ti.Static.IsControl() {
			w.fetchBlock = fetchControl
			w.fetchOwner = f
			w.fetchBlockStart = s.q.Now()
		} else if ti.Static.IsGlobalMem() &&
			(s.cfg.Scheme == config.WarpDisableCommit || s.cfg.Scheme == config.WarpDisableLastCheck) {
			w.fetchBlock = fetchWarpDisable
			w.fetchOwner = f
			f.wdOwner = true
			w.fetchBlockStart = s.q.Now()
		}
		s.lastFetch = pos
		s.stats.Fetched++
		s.event("fetch", w, idx)
		if isReplay {
			s.trace(obs.KReplayFetch, w, idx)
		} else {
			s.trace(obs.KFetch, w, idx)
		}
		budget--
	}
	return budget < fetchWidth
}

// wrapNext advances a round-robin index without a modulo.
func wrapNext(pos, n int) int {
	pos++
	if pos == n {
		pos = 0
	}
	return pos
}

func (s *SM) setBuf(i int) { s.bufMask[i>>6] |= 1 << (uint(i) & 63) }
func (s *SM) clrBuf(i int) { s.bufMask[i>>6] &^= 1 << (uint(i) & 63) }

// warpIndex returns a resident warp's slot in s.warps.
func (s *SM) warpIndex(w *warpRT) int { return w.block.slot*s.warpsPerBlock + w.idx }

func (s *SM) doIssue() bool {
	if len(s.warps) == 0 {
		return false
	}
	var any uint64
	for _, wd := range s.bufMask {
		any |= wd
	}
	if any == 0 {
		return false
	}
	budget := s.cfg.SM.IssueWidth
	warpsLeft := s.cfg.SM.IssueWarps
	// Per-unit issue ports, indexed by isa.Unit (a map here shows up as
	// hashing in the cycle-loop profile).
	unitBudget := [...]int{
		isa.UnitMath:      s.cfg.SM.MathUnits,
		isa.UnitSpecial:   s.cfg.SM.SpecialUnits,
		isa.UnitLoadStore: s.cfg.SM.LoadStore,
		isa.UnitBranch:    s.cfg.SM.BranchUnits,
		isa.UnitNone:      budget,
	}
	n := len(s.warps)
	start := s.lastIssue
	// Loose round-robin starts after the last issuing warp; the greedy
	// policy starts at it, so a warp keeps issuing until it stalls.
	first := 1
	if s.cfg.SM.GreedyIssue {
		first = 0
	}
	issuedAny := false
	pos := start + first
	if pos >= n {
		pos -= n
	}
	// Walk the set bits of bufMask ascending from pos, wrapping once:
	// the starting word is visited twice, first its bits at or above
	// pos, then (after the full wrap) its bits below pos. That is
	// exactly the candidate sequence of a full slot scan, which skips
	// unbuffered slots anyway.
	nW := len(s.bufMask)
	startW := pos >> 6
	lowMask := uint64(1)<<(uint(pos)&63) - 1
	wIdx := startW
	cur := s.bufMask[startW] &^ lowMask
	step := 0
issueLoop:
	for budget > 0 && warpsLeft > 0 {
		for cur == 0 {
			step++
			if step > nW {
				break issueLoop
			}
			wIdx = wrapNext(wIdx, nW)
			cur = s.bufMask[wIdx]
			if step == nW { // back at the starting word
				cur &= lowMask
			}
		}
		pos = wIdx<<6 | bits.TrailingZeros64(cur)
		cur &= cur - 1
		w := s.warps[pos]
		if w == nil || w.done || w.buf == nil || w.bufReady > s.q.Now() ||
			w.block.state != blockActive || w.faultsOutstanding > 0 {
			continue
		}
		f := w.buf
		unit := f.ti.Static.ExecUnit()
		if unitBudget[unit] <= 0 {
			s.stall(w, f, obs.StallPort)
			continue
		}
		if s.chaos != nil && f.global() && s.chaos.StallIssue(s.ID, f.isReplay) {
			// The stall counts as activity so the SM retries next cycle
			// instead of sleeping for an event that may never come.
			s.stats.IssueStallChaos++
			s.stall(w, f, obs.StallChaos)
			issuedAny = true
			continue
		}
		if f.isReplay {
			var heldOwn []isa.Reg
			if s.cfg.Scheme == config.ReplayQueue {
				heldOwn = w.heldSrcs[f.tIdx]
			}
			checkSources := s.cfg.Scheme != config.ReplayQueue && s.cfg.Scheme != config.OperandLog
			if !w.canIssueReplay(f, heldOwn, checkSources) {
				s.stats.IssueStallScore++
				s.stall(w, f, obs.StallScoreboard)
				continue
			}
		} else if !w.canIssue(f) {
			s.stats.IssueStallScore++
			s.stall(w, f, obs.StallScoreboard)
			continue
		}
		// Operand log capacity: loads/atomics hold one entry, stores
		// two (address and data); allocation happens at issue
		// (Section 3.3). Entries of squashed instructions stay held
		// until their replay passes its TLB checks, so a replayed
		// instruction does not allocate again.
		logNeed := 0
		if s.cfg.Scheme == config.OperandLog && f.global() {
			logNeed = logEntriesFor(f.ti.Static)
			if !f.isReplay {
				if w.block.logUsed+logNeed > s.logPerBlock {
					s.stats.IssueStallLog++
					s.stall(w, f, obs.StallLogFull)
					continue
				}
				w.block.logUsed += logNeed
				s.observeLogOcc(int64(w.block.logUsed))
			}
			f.logHeld = logNeed
		}
		// Issue: mark the scoreboard. A replayed instruction under the
		// replay-queue scheme inherits the source holds it kept across
		// the fault; under the operand-log scheme it reads from the log
		// and takes no source holds at all.
		if f.isReplay {
			if f.ti.Static.Writes() {
				w.setWritePending(f.ti.Static.Dst)
			}
			switch s.cfg.Scheme {
			case config.ReplayQueue:
				f.srcHeld = append(f.srcHeld[:0], w.heldSrcs[f.tIdx]...)
				delete(w.heldSrcs, f.tIdx)
			case config.OperandLog:
				// No register file reads on replay.
			default:
				w.acquireSources(f)
			}
		} else {
			w.acquire(f)
		}
		w.inFlight++
		w.buf = nil
		s.clrBuf(pos)
		s.stats.Issued++
		s.event("issue", w, f.tIdx)
		s.trace(obs.KIssue, w, f.tIdx)
		s.schedule(1, f.opReadFn)
		budget--
		unitBudget[unit]--
		warpsLeft--
		s.lastIssue = pos
		issuedAny = true
	}
	return issuedAny
}

func logEntriesFor(in *isa.Instruction) int {
	if in.Op == isa.OpStGlobal || in.Op == isa.OpAtomGlobal {
		return 2
	}
	return 1
}

// opRead is the operand read stage, one cycle after issue. Source
// scoreboards are released here in the baseline, warp-disable and
// operand-log schemes; the replay-queue scheme defers the release of
// global memory sources to the last TLB check (Section 3.2).
//
// Shard-pure as a boundary, not by staging: opRead runs only as an
// event callback (scheduled via s.schedule from doIssue), so it
// executes in the single-threaded drain phase, never inside a
// concurrent TickStaged. The static call graph cannot see that the
// closure referencing it is deferred, so the boundary is asserted
// here.
//
//simlint:shardsafe
func (s *SM) opRead(f *flight) {
	w := f.w
	if !(s.cfg.Scheme == config.ReplayQueue && f.global()) {
		w.releaseSources(f)
	}
	in := f.ti.Static
	switch {
	case in.Op == isa.OpBar:
		s.arriveBarrier(f)
	case in.Op == isa.OpExit:
		s.q.After(1, f.commitFn)
	case in.Op == isa.OpBra:
		s.q.After(int64(s.cfg.SM.BranchLatency), f.commitFn)
	case in.Op == isa.OpLdShared || in.Op == isa.OpStShared:
		s.q.After(int64(s.cfg.SM.SharedLatency), f.commitFn)
	case in.IsGlobalMem():
		s.startMem(f)
	case in.ExecUnit() == isa.UnitSpecial:
		s.q.After(int64(s.cfg.SM.SpecialLatency), f.commitFn)
	default:
		s.q.After(int64(s.cfg.SM.MathLatency), f.commitFn)
	}
}

// arriveBarrier handles a warp reaching bar.sync: the warp stalls until
// every live warp of its block has arrived, then all their barrier
// instructions commit together.
func (s *SM) arriveBarrier(f *flight) {
	w := f.w
	b := w.block
	w.atBarrier = true
	w.barFlight = f
	w.barStart = s.q.Now()
	b.barrierCount++
	if b.barrierCount >= b.liveWarps {
		s.releaseBarrier(b)
	}
}

// releaseBarrier frees every warp parked at the block's barrier,
// attributing the waited cycles, and commits their barrier
// instructions together.
func (s *SM) releaseBarrier(b *blockRT) {
	b.barrierCount = 0
	for _, bw := range b.warps {
		if bw.atBarrier {
			bw.atBarrier = false
			s.stats.Stalls[obs.StallBarrier] += s.q.Now() - bw.barStart
			bf := bw.barFlight
			bw.barFlight = nil
			s.q.After(1, bf.commitFn)
		}
	}
}

// clearFetchBlock re-enables a warp's fetch, attributing the blocked
// interval to the control-flow or warp-disable stall bucket.
func (s *SM) clearFetchBlock(w *warpRT) {
	switch w.fetchBlock {
	case fetchControl:
		s.stats.Stalls[obs.StallFetchCtl] += s.q.Now() - w.fetchBlockStart
	case fetchWarpDisable:
		s.stats.Stalls[obs.StallFetchWD] += s.q.Now() - w.fetchBlockStart
	case fetchOK:
		// Nothing was blocked; no stall interval to attribute.
	}
	w.fetchBlock = fetchOK
	w.fetchOwner = nil
}

// commit retires an instruction: scoreboard release, fetch unblocking,
// warp/block completion checks, and drain progress for block switching.
//
// Shard-pure as a boundary, not by staging: commit runs only as an
// event callback (commitFn, scheduled from event-time stages), so it
// executes in the single-threaded drain phase, never inside a
// concurrent TickStaged.
//
//simlint:shardsafe
func (s *SM) commit(f *flight) {
	if f.committed || f.squashed {
		return
	}
	f.committed = true
	w := f.w
	s.event("commit", w, f.tIdx)
	if f.isReplay {
		s.trace(obs.KReplayCommit, w, f.tIdx)
	} else {
		s.trace(obs.KCommit, w, f.tIdx)
	}
	w.releaseDest(f)
	// Replay-queue holds sources until last TLB check; a non-memory
	// path never reaches here with holds, but guard for squash races.
	w.releaseSources(f)
	w.inFlight--
	s.stats.Committed++
	if f.global() {
		s.stats.GlobalMemInsts++
	}
	if w.fetchOwner == f {
		s.clearFetchBlock(w)
	}
	s.afterDrainStep(w.block)
	s.checkWarpDone(w)
	s.freeFlight(f)
}

// checkWarpDone marks the warp done when its trace is exhausted, and
// completes the block when all warps are done.
func (s *SM) checkWarpDone(w *warpRT) {
	if w.done || !w.exhausted() || w.faultsOutstanding > 0 {
		return
	}
	w.done = true
	b := w.block
	if w.excep != nil {
		s.deliverExcep(w)
	}
	b.liveWarps--
	if b.excepted {
		// The block is being squashed: it never finishes, and warps
		// parked at its barriers stay parked (barrier unit state is
		// saved as part of the context).
		return
	}
	// A warp that exits while others wait at a barrier can release it.
	if b.liveWarps > 0 && b.barrierCount >= b.liveWarps {
		s.releaseBarrier(b)
	}
	if b.liveWarps == 0 {
		s.blockFinished(b)
	}
}

// blockFinished releases the block's slot and pulls in the next work.
func (s *SM) blockFinished(b *blockRT) {
	slot := b.slot
	s.slots[slot] = nil
	for i := 0; i < s.warpsPerBlock; i++ {
		s.warps[slot*s.warpsPerBlock+i] = nil
		s.clrBuf(slot*s.warpsPerBlock + i)
	}
	s.assigned--
	s.src.BlockDone(s.ID, b.id)
	s.refillSlot(slot)
	s.wake()
}

// refillSlot chooses what to run in a freed slot: a ready off-chip
// block first (restore), otherwise a fresh pending block.
func (s *SM) refillSlot(slot int) {
	if s.restoreReadyBlock(slot) {
		return
	}
	s.startBlock(slot)
}
