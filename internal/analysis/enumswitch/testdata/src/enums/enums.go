// Package enums is the enumswitch analyzer's golden corpus.
package enums

// Color is an int-backed enum with a count sentinel.
type Color uint8

const (
	Red Color = iota
	Green
	Blue
	NumColors // sentinel: highest value + counter name, not required
)

// Mode is a string-backed enum.
type Mode string

const (
	ModeFast Mode = "fast"
	ModeSlow Mode = "slow"
)

// Stat has a member that merely resembles a sentinel: MaxSeen is not
// the highest value, so it stays required.
type Stat uint8

const (
	MaxSeen Stat = iota
	Other
	StatCount // the real sentinel
)

// ExcKind mirrors the exception taxonomy: an iota block whose sentinel
// name embeds "Num" mid-identifier (NumExcKinds).
type ExcKind uint8

const (
	ExcAssert ExcKind = iota
	ExcIllegalAddr
	ExcMisaligned
	ExcOOM
	ExcTrap
	NumExcKinds // sentinel
)

// Outcome mirrors the resilience-campaign classification enum.
type Outcome uint8

const (
	OutMasked Outcome = iota
	OutSDC
	OutException
	OutCrash
	OutHang
	NumOutcomes
)

// --- flagged constructs ------------------------------------------------

func colorName(c Color) string {
	switch c { // want "switch over Color is not exhaustive and has no default: missing Blue"
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

func modeCost(m Mode) int {
	switch m { // want "missing ModeSlow"
	case ModeFast:
		return 1
	}
	return 0
}

func statName(s Stat) string {
	switch s { // want "missing MaxSeen"
	case Other:
		return "other"
	}
	return ""
}

func excKindFatal(k ExcKind) bool {
	switch k { // want "missing ExcOOM, ExcTrap"
	case ExcAssert, ExcIllegalAddr, ExcMisaligned:
		return true
	}
	return false
}

func outcomeBenign(o Outcome) bool {
	switch o { // want "missing OutCrash, OutHang, OutSDC"
	case OutMasked, OutException:
		return true
	}
	return false
}

// --- clean patterns (no diagnostics allowed) ---------------------------

func exhaustive(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return "?"
}

func withDefault(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

func nonConstantCase(c, x Color) int {
	switch c {
	case x:
		return 1
	}
	return 0
}

func notAnEnum(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

func outcomeName(o Outcome) string {
	switch o { // exhaustive without NumOutcomes: sentinel not required
	case OutMasked:
		return "masked"
	case OutSDC:
		return "sdc"
	case OutException:
		return "exception"
	case OutCrash:
		return "crash"
	case OutHang:
		return "hang"
	}
	return "?"
}
