package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestChaosKillAndResume exercises the sweep's crash recovery: a full
// pass records one done-file per clean/chaos run half; deleting a
// subset (simulating a campaign killed mid-flight) and re-invoking
// re-runs exactly the missing halves and reproduces the original
// result bit for bit.
func TestChaosKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	opt := Options{Scale: 1, Benchmarks: []string{"mri-q"}, ResumeDir: dir}

	first, err := Chaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	done, err := filepath.Glob(filepath.Join(dir, "chaos-mri-q-*.done.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 8 { // 4 schemes x {clean, chaos}
		t.Fatalf("done files = %v, want 8", done)
	}

	// Kill mid-campaign: drop the replay-queue halves and one clean
	// half of another scheme, keeping the rest finished.
	for _, name := range []string{
		"chaos-mri-q-replay-queue-clean.done.json",
		"chaos-mri-q-replay-queue-chaos.done.json",
		"chaos-mri-q-wd-commit-clean.done.json",
	} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}

	var lines []string
	opt.Progress = func(s string) { lines = append(lines, s) }
	second, err := Chaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("resumed sweep differs:\nfirst  %v\nsecond %v", first, second)
	}
	var skipped int
	for _, l := range lines {
		if strings.Contains(l, "(done, skipped)") {
			skipped++
		}
	}
	if skipped != 5 { // 8 halves minus the 3 deleted done-files
		t.Errorf("skipped %d halves on resume, want 5:\n%s", skipped, strings.Join(lines, "\n"))
	}

	// A third pass must skip everything.
	lines = nil
	if _, err := Chaos(opt); err != nil {
		t.Fatal(err)
	}
	skipped = 0
	for _, l := range lines {
		if strings.Contains(l, "(done, skipped)") {
			skipped++
		}
	}
	if skipped != 8 {
		t.Errorf("skipped %d halves on full resume, want 8", skipped)
	}
}
