package asm

import (
	"strings"
	"testing"

	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/workloads"
)

const saxpySrc = `
.kernel saxpy
.shared 0
.param X 0x1000000
.param Y 0x2000000

    s2r     r0, tid.x
    s2r     r1, ctaid.x
    s2r     r2, ntid.x
    imad    r3, r1, r2, r0
    shl     r4, r3, #3
    ldc     r5, X
    iadd    r6, r5, r4
    ld.global.u64 r7, [r6]
    ldc     r5, Y
    iadd    r6, r5, r4
    ld.global.u64 r8, [r6+0]
    mov     r9, #4612811918334230528 // 2.5 as float64 bits
    ffma    r8, r9, r7, r8
    st.global.u64 [r6], r8
    exit
`

func TestAssembleSaxpy(t *testing.T) {
	k, err := Assemble(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "saxpy" {
		t.Errorf("name = %q", k.Name)
	}
	if len(k.Code) != 15 {
		t.Fatalf("instructions = %d, want 15", len(k.Code))
	}
	if len(k.Params) != 2 || k.Params[0] != 0x1000000 || k.Params[1] != 0x2000000 {
		t.Errorf("params = %v", k.Params)
	}
	ld := k.Code[7]
	if ld.Op != isa.OpLdGlobal || ld.Dst != 7 || ld.SrcA != 6 || ld.Size != 8 {
		t.Errorf("ld = %+v", ld)
	}
	// The assembled kernel actually runs.
	mem := emu.NewMemory()
	for i := 0; i < 64; i++ {
		mem.WriteF64(0x1000000+uint64(i*8), float64(i))
		mem.WriteF64(0x2000000+uint64(i*8), 1)
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 2}, Block: kernel.Dim3{X: 32}}
	e, err := emu.New(l, mem, 128)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		if _, err := e.EmulateBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		want := 2.5*float64(i) + 1
		if got := mem.ReadF64(0x2000000 + uint64(i*8)); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAssembleBranchesAndPredication(t *testing.T) {
	src := `
.kernel diverge
    s2r r0, laneid
    isetp.lt r1, r0, rz, #16
    @r1 bra low, join
    mov r2, #2
    bra join
low:
    mov r2, #1
join:
    @!r1 nop
loop:
    iadd r3, r3, rz, #1
    isetp.lt r4, r3, rz, #4
    @r4 bra.uni loop
    exit
`
	k, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	br := k.Code[2]
	if br.Op != isa.OpBra || br.Pred != 1 || br.PredNeg {
		t.Errorf("predicated branch = %+v", br)
	}
	if br.Target != 5 || br.Reconv != 6 {
		t.Errorf("branch target/reconv = %d/%d, want 5/6", br.Target, br.Reconv)
	}
	uni := k.Code[9]
	if uni.Op != isa.OpBra || uni.Reconv != -1 || uni.Pred != 4 {
		t.Errorf("uniform branch = %+v", uni)
	}
	pnop := k.Code[6]
	if pnop.Op != isa.OpNop || !pnop.PredNeg || pnop.Pred != 1 {
		t.Errorf("negated predicate = %+v", pnop)
	}
	// The divergent kernel runs to completion.
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	e, _ := emu.New(l, emu.NewMemory(), 128)
	if _, err := e.EmulateBlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleAtomics(t *testing.T) {
	src := `
.kernel atoms
    mov r0, #4096
    mov r1, #1
    atom.global.add.u64 r2, [r0], r1
    atom.global.cas.u64 r3, [r0+8], r1, r2
    exit
`
	k, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	add := k.Code[2]
	if add.Op != isa.OpAtomGlobal || add.Atom != isa.AtomAdd || add.Dst != 2 {
		t.Errorf("atom.add = %+v", add)
	}
	cas := k.Code[3]
	if cas.Atom != isa.AtomCAS || cas.SrcC != 2 || cas.Imm != 8 {
		t.Errorf("atom.cas = %+v", cas)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   "    frob r1, r2\n    exit",
		"unknown label":      "    bra nowhere\n    exit",
		"bad register":       "    mov rq, #1\n    exit",
		"bad directive":      ".bogus 3\n    exit",
		"missing reconv":     "    @r1 bra a, b\na:\nb:\n    exit",
		"duplicate label":    "a:\n    nop\na:\n    exit",
		"bad mem operand":    "    ld.global.u64 r1, r2\n    exit",
		"bad size":           "    ld.global.u16 r1, [r2]\n    exit",
		"bad param":          "    ldc r1, missing\n    exit",
		"no exit":            "    nop",
		"bad sreg":           "    s2r r1, tid.q\n    exit",
		"operand count":      "    imad r1, r2\n    exit",
		"atomic cas 3 ops":   "    atom.global.cas.u64 r1, [r2], r3\n    exit",
		"shared atomics":     "    atom.shared.add.u64 r1, [r2], r3\n    exit",
		"bad float imm":      "    fmov r1, #abc\n    exit",
		"bad regs directive": ".regs zero\n    exit",
	}
	for name, src := range cases {
		if name == "missing reconv" {
			// This source is actually valid (two labels given); replace
			// with a truly missing reconvergence operand.
			src = "    @r1 bra a\na:\n    exit"
		}
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; full-line comment
.kernel c   // trailing comment

    nop     ; mid comment
    exit
`
	k, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Code) != 2 {
		t.Errorf("instructions = %d, want 2", len(k.Code))
	}
}

// TestRoundTripWorkloads: disassembling every bundled workload kernel
// and reassembling it yields identical code.
func TestRoundTripWorkloads(t *testing.T) {
	for _, name := range workloads.Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.Build(name, workloads.Params{Scale: 1})
			if err != nil {
				t.Fatal(err)
			}
			k := spec.Launch.Kernel
			listing := Disassemble(k)
			k2, err := Assemble(listing)
			if err != nil {
				t.Fatalf("reassembly failed: %v\n%s", err, listing)
			}
			if len(k2.Code) != len(k.Code) {
				t.Fatalf("instruction count %d != %d", len(k2.Code), len(k.Code))
			}
			for pc := range k.Code {
				if k.Code[pc] != k2.Code[pc] {
					t.Fatalf("pc %d differs:\n  orig: %+v\n  trip: %+v\nlisting line: %s",
						pc, k.Code[pc], k2.Code[pc], k.Code[pc].String())
				}
			}
			if k2.SharedMemBytes != k.SharedMemBytes || k2.RegsPerThread != k.RegsPerThread {
				t.Errorf("metadata differs: shared %d/%d regs %d/%d",
					k2.SharedMemBytes, k.SharedMemBytes, k2.RegsPerThread, k.RegsPerThread)
			}
			if len(k2.Params) != len(k.Params) {
				t.Fatalf("params %d != %d", len(k2.Params), len(k.Params))
			}
			for i := range k.Params {
				if k.Params[i] != k2.Params[i] {
					t.Errorf("param %d: %#x != %#x", i, k2.Params[i], k.Params[i])
				}
			}
		})
	}
}

func TestDisassembleReadable(t *testing.T) {
	k := MustAssemble(saxpySrc)
	out := Disassemble(k)
	for _, want := range []string{".kernel saxpy", "s2r r0, tid.x", "ffma", "ld.global.u64", "exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}
