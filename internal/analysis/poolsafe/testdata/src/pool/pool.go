// Package pool is the poolsafe analyzer's golden corpus.
package pool

import "sync"

type node struct {
	id   int
	next *node
}

type freeList struct{ head *node }

// put returns nd to the free list.
//
//simlint:releases 0
func (q *freeList) put(nd *node) {
	nd.next = q.head
	q.head = nd
}

// release returns the receiver to its pool.
//
//simlint:releases recv
func (nd *node) release() {}

var bufPool sync.Pool

// --- flagged constructs ------------------------------------------------

func useAfterPut(q *freeList, nd *node) int {
	q.put(nd)
	return nd.id // want "use of nd after it was released"
}

func walkFreed(q *freeList, nd *node) {
	q.put(nd)
	nd = nd.next // want "use of nd after it was released"
	_ = nd
}

func useAfterRecvRelease(nd *node) {
	nd.release()
	nd.id = 0 // want "use of nd after it was released"
}

func useAfterSyncPoolPut(nd *node) {
	bufPool.Put(nd)
	nd.id++ // want "use of nd after it was released"
}

// --- clean patterns (no diagnostics allowed) ---------------------------

func copyBeforePut(q *freeList, nd *node) int {
	id := nd.id
	q.put(nd)
	return id
}

func reacquired(q *freeList, nd *node) *node {
	q.put(nd)
	nd = &node{}
	return nd
}

func conditionalPut(q *freeList, nd *node, done bool) int {
	if done {
		q.put(nd)
		return 0
	}
	return nd.id
}

func deferredPut(q *freeList, nd *node) int {
	defer q.put(nd)
	return nd.id
}
