package main

import (
	"math"
	"strconv"
	"strings"
)

// Report is the JSON shape of one benchmark run.
type Report struct {
	Commit     string      `json:"commit,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line. Metrics maps unit to value, e.g.
// "ns/op" to the wall time and "sim-cycles" to the simulated cycle
// count reported via b.ReportMetric.
type Benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// parseLine folds one output line into the report. Benchmark lines look
// like:
//
//	BenchmarkFig10/baseline    1    579904096 ns/op    117137 sim-cycles
//
// i.e. name, iteration count, then value/unit pairs. Header lines
// (goos:, goarch:, pkg:, cpu:) and everything else (PASS, ok, test
// logs) are matched by prefix or ignored.
func parseLine(rep *Report, line string) {
	switch {
	case strings.HasPrefix(line, "goos: "):
		rep.GoOS = strings.TrimSpace(line[len("goos: "):])
		return
	case strings.HasPrefix(line, "goarch: "):
		rep.GoArch = strings.TrimSpace(line[len("goarch: "):])
		return
	case strings.HasPrefix(line, "pkg: "):
		rep.Package = strings.TrimSpace(line[len("pkg: "):])
		return
	case strings.HasPrefix(line, "cpu: "):
		rep.CPU = strings.TrimSpace(line[len("cpu: "):])
		return
	}
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return
	}
	b := Benchmark{Name: f[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			// Not a value where one was expected (an optional metric —
			// fault-lat-* under schemes that took no faults — left a unit
			// without a value). Resync one token ahead instead of
			// discarding the metrics that did parse.
			i++
			continue
		}
		// Non-finite values (a rate whose denominator was zero) would
		// make the report unmarshalable as JSON; drop the pair only.
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			b.Metrics[f[i+1]] = v
		}
		i += 2
	}
	if len(b.Metrics) == 0 {
		return
	}
	rep.Benchmarks = append(rep.Benchmarks, b)
}

// workersSuffix introduces the worker-count subcase names the parallel
// benchmarks use (BenchmarkParallel/<shape>/workers-N).
const workersSuffix = "/workers-"

// deriveSpeedups attaches a speedup-vs-workers-1 metric to every
// benchmark named .../workers-N: its sibling's (.../workers-1) wall
// time divided by its own. The metric makes the parallel scaling a
// first-class field of BENCH_<sha>.json instead of a ratio readers
// compute by hand; it is derived per report, so artifacts from hosts
// with different core counts stay directly comparable. Benchmarks
// without a workers-1 sibling (or without ns/op) are left untouched.
func deriveSpeedups(rep *Report) {
	base := map[string]float64{}
	for _, b := range rep.Benchmarks {
		if i := strings.LastIndex(b.Name, workersSuffix); i >= 0 && b.Name[i+len(workersSuffix):] == "1" {
			if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
				base[b.Name[:i]] = ns
			}
		}
	}
	for _, b := range rep.Benchmarks {
		i := strings.LastIndex(b.Name, workersSuffix)
		if i < 0 {
			continue
		}
		ref, ok := base[b.Name[:i]]
		if !ok {
			continue
		}
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			b.Metrics["speedup-vs-workers-1"] = ref / ns
		}
	}
}
