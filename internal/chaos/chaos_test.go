// Property tests for the chaos harness, run through the full simulator
// (external test package: chaos itself must stay a stdlib-only leaf).
package chaos_test

import (
	"strings"
	"testing"

	"gpues/internal/chaos"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
	"gpues/internal/vm"
)

var preemptible = []config.Scheme{
	config.WarpDisableCommit, config.WarpDisableLastCheck,
	config.ReplayQueue, config.OperandLog,
}

// vecAddSpec builds a vector-add launch (out[i] = a[i] + b[i]) with the
// given region placements; every spec gets fresh functional memory so
// runs never share mutable state.
func vecAddSpec(t *testing.T, blocks, threads int, inKind, outKind vm.RegionKind) sim.LaunchSpec {
	t.Helper()
	n := blocks * threads
	const (
		aAddr = uint64(0x1000000)
		bAddr = uint64(0x2000000)
		oAddr = uint64(0x3000000)
	)
	mem := emu.NewMemory()
	for i := 0; i < n; i++ {
		mem.WriteF64(aAddr+uint64(i*8), float64(i))
		mem.WriteF64(bAddr+uint64(i*8), float64(i)*2)
	}

	b := kernel.NewBuilder("vecadd")
	pa := b.AddParam(aAddr)
	pb := b.AddParam(bAddr)
	po := b.AddParam(oAddr)
	tid, ctaid, ntid := b.Reg(), b.Reg(), b.Reg()
	gid, off, base, va, vb := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid)
	b.Shl(off, gid, 3)
	b.LoadParam(base, pa)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(va, base, 0, 8)
	b.LoadParam(base, pb)
	b.IAdd(base, base, off, 0)
	b.LdGlobal(vb, base, 0, 8)
	b.FAdd(va, va, vb)
	b.LoadParam(base, po)
	b.IAdd(base, base, off, 0)
	b.StGlobal(base, 0, va, 8)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	size := uint64(n * 8)
	if size < 4096 {
		size = 4096
	}
	return sim.LaunchSpec{
		Launch: &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: blocks}, Block: kernel.Dim3{X: threads}},
		Memory: mem,
		Regions: []vm.Region{
			{Name: "a", Base: aAddr, Size: size, Kind: inKind},
			{Name: "b", Base: bAddr, Size: size, Kind: inKind},
			{Name: "out", Base: oAddr, Size: size, Kind: outKind},
		},
	}
}

// TestChaosOracleAllSchemes is the restartability property test: under a
// level-3 fault storm, every preemptible scheme must finish with memory
// byte-identical to the functional oracle, both for CPU-resident inputs
// (demand paging + block switching) and for lazily allocated outputs
// handled by the GPU-local handler.
func TestChaosOracleAllSchemes(t *testing.T) {
	variants := []struct {
		name            string
		inKind, outKind vm.RegionKind
		local           bool
	}{
		{"demand-paging", vm.RegionCPUInit, vm.RegionGPUInit, false},
		{"lazy-local", vm.RegionGPUInit, vm.RegionLazy, true},
	}
	for _, scheme := range preemptible {
		for _, va := range variants {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := config.Default()
				cfg.Scheme = scheme
				cfg.Scheduler.Enabled = true
				cfg.DemandPaging = va.inKind == vm.RegionCPUInit
				cfg.Local.Enabled = va.local
				plan, err := chaos.ForLevel(3, seed)
				if err != nil {
					t.Fatal(err)
				}
				spec := vecAddSpec(t, 16, 128, va.inKind, va.outKind)
				cr, err := sim.RunChaos(cfg, spec, plan)
				if err != nil {
					t.Fatalf("%v/%s seed %d: %v", scheme, va.name, seed, err)
				}
				if !cr.OracleOK() {
					t.Errorf("%v/%s seed %d: %d oracle mismatches, first %+v (injected: %s)",
						scheme, va.name, seed, len(cr.Mismatches), cr.Mismatches[0], cr.Summary)
				}
				if cr.Blocks != 16 {
					t.Errorf("%v/%s seed %d: %d blocks completed, want 16", scheme, va.name, seed, cr.Blocks)
				}
			}
		}
	}
}

// TestChaosReproducible checks bit-reproducibility: the same seed must
// yield the same cycle count and the same injected-event log.
func TestChaosReproducible(t *testing.T) {
	run := func() *sim.ChaosResult {
		cfg := config.Default()
		cfg.Scheme = config.ReplayQueue
		cfg.DemandPaging = true
		cfg.Scheduler.Enabled = true
		plan, err := chaos.ForLevel(3, 42)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := sim.RunChaos(cfg, vecAddSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionGPUInit), plan)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ across identical seeds: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("event-log fingerprints differ: %#x vs %#x", a.Fingerprint, b.Fingerprint)
	}
	if len(a.Events) != len(b.Events) {
		t.Errorf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	if len(a.Events) == 0 {
		t.Error("level-3 plan injected nothing")
	}
}

// TestChaosZeroPlanNoOverhead checks that both a nil plan and the zero
// config change nothing: cycle counts must equal a plain run's.
func TestChaosZeroPlanNoOverhead(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.OperandLog
	plain, err := sim.RunSpec(cfg, vecAddSpec(t, 8, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*chaos.Plan{nil, chaos.New(chaos.Config{})} {
		cr, err := sim.RunChaos(cfg, vecAddSpec(t, 8, 128, vm.RegionGPUInit, vm.RegionGPUInit), plan)
		if err != nil {
			t.Fatal(err)
		}
		if cr.Cycles != plain.Cycles {
			t.Errorf("zero plan changed timing: %d cycles vs %d plain", cr.Cycles, plain.Cycles)
		}
		if !cr.OracleOK() {
			t.Error("zero-plan run diverged from oracle")
		}
		if len(cr.Events) != 0 {
			t.Errorf("zero plan injected %d events", len(cr.Events))
		}
	}
}

// TestChaosOOMStructuredError checks the memory-exhaustion path: a
// demand-paging run with no free GPU frames must fail with a structured
// error (the old code path panicked).
func TestChaosOOMStructuredError(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	plan := chaos.New(chaos.Config{ExhaustGPUMemory: true})
	spec := vecAddSpec(t, 4, 128, vm.RegionCPUInit, vm.RegionGPUInit)
	_, err := sim.RunChaos(cfg, spec, plan)
	if err == nil {
		t.Fatal("run under exhausted GPU memory succeeded")
	}
	if !strings.Contains(err.Error(), "fault resolution") {
		t.Errorf("error lacks fault-resolution diagnostic: %v", err)
	}
}

// TestChaosForcedSwitches checks that the force-switch hook actually
// drives the block scheduler: a level-3 storm over a faulting workload
// must record forced-switch events and real switch-outs.
func TestChaosForcedSwitches(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := config.Default()
		cfg.Scheme = config.ReplayQueue
		cfg.DemandPaging = true
		cfg.Scheduler.Enabled = true
		// An unreachable organic threshold: every switch-out below must
		// come from the chaos hook.
		cfg.Scheduler.SwitchThreshold = 1 << 30
		plan, err := chaos.ForLevel(3, seed)
		if err != nil {
			t.Fatal(err)
		}
		// 512-thread blocks cap occupancy at 4 blocks/SM, so half the
		// grid is pending and the scheduler always has work to switch in.
		cr, err := sim.RunChaos(cfg, vecAddSpec(t, 128, 512, vm.RegionCPUInit, vm.RegionGPUInit), plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		forced := 0
		for _, e := range cr.Events {
			if e.Kind == chaos.EventForceSwitch {
				forced++
			}
		}
		var out int64
		for _, st := range cr.SMs {
			out += st.SwitchesOut
		}
		t.Logf("seed %d: %d forced-switch events, %d switch-outs", seed, forced, out)
		if forced > 0 && out > 0 {
			return
		}
	}
	t.Error("no seed in 1..5 produced a forced switch with switch-outs")
}

// TestChaosLevelRange checks the preset validation.
func TestChaosLevelRange(t *testing.T) {
	if _, err := chaos.ForLevel(4, 1); err == nil {
		t.Error("level 4 accepted")
	}
	if _, err := chaos.ForLevel(-1, 1); err == nil {
		t.Error("level -1 accepted")
	}
	p, err := chaos.ForLevel(0, 1)
	if err != nil || p == nil {
		t.Errorf("level 0 rejected: %v", err)
	}
}
