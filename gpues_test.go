package gpues_test

import (
	"strings"
	"testing"

	"gpues"
)

// TestPublicAPIRoundTrip drives the whole stack through the public
// facade only: build a workload, run it under two schemes, regenerate a
// small figure slice and the static tables.
func TestPublicAPIRoundTrip(t *testing.T) {
	names := gpues.WorkloadNames("")
	if len(names) != 18 {
		t.Fatalf("workloads = %d, want 18", len(names))
	}
	if _, err := gpues.WorkloadDescription("lbm"); err != nil {
		t.Fatal(err)
	}
	if _, err := gpues.WorkloadDescription("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}

	spec, err := gpues.BuildWorkload("mri-q", gpues.WorkloadParams{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpues.DefaultConfig()
	base, err := gpues.Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles <= 0 || base.IPC() <= 0 {
		t.Fatalf("degenerate result: %+v", base)
	}

	spec2, _ := gpues.BuildWorkload("mri-q", gpues.WorkloadParams{Scale: 1})
	cfg.Scheme = gpues.WarpDisableCommit
	wd, err := gpues.Run(cfg, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Cycles < base.Cycles {
		t.Errorf("wd-commit (%d cycles) faster than baseline (%d)", wd.Cycles, base.Cycles)
	}
}

func TestPublicTables(t *testing.T) {
	t1 := gpues.Table1()
	for _, want := range []string{"16 SMs", "64 max warps", "256 KB RF", "walkers"} {
		if !strings.Contains(strings.ToLower(t1), strings.ToLower(want)) {
			t.Errorf("Table1 output missing %q:\n%s", want, t1)
		}
	}
	rows, err := gpues.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[1].LogKB != 16 {
		t.Errorf("Table2 rows = %+v", rows)
	}
}

func TestPublicFigureSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r, err := gpues.Figure10(gpues.ExperimentOptions{Scale: 1, Benchmarks: []string{"mri-q"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Benchmark != "mri-q" {
		t.Fatalf("rows = %+v", r.Rows)
	}
	v := r.Rows[0].Values["wd-commit"]
	if v <= 0 || v > 1.05 {
		t.Errorf("wd-commit relative perf = %v, want (0, 1.05]", v)
	}
	if !strings.Contains(r.String(), "geomean") {
		t.Error("rendered result missing geomean row")
	}
}

func TestCustomKernelThroughFacade(t *testing.T) {
	b := gpues.NewKernelBuilder("noop")
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := gpues.NewMemory()
	spec := gpues.LaunchSpec{
		Launch: &gpues.Launch{Kernel: k, Grid: gpues.Dim3{X: 4}, Block: gpues.Dim3{X: 64}},
		Memory: mem,
	}
	res, err := gpues.Run(gpues.DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// 4 blocks x 2 warps x 1 exit instruction.
	if res.Committed != 8 {
		t.Errorf("committed = %d, want 8", res.Committed)
	}
}
