package clock

import (
	"container/heap"
	"math/rand"
	"testing"
)

// heapQueue is the previous container/heap implementation, kept verbatim
// as the reference model for the differential test: the calendar queue
// must order events exactly the way the heap did — earliest cycle first,
// FIFO among same-cycle events.

type refEvent struct {
	cycle int64
	seq   uint64
	fn    func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type heapQueue struct {
	now    int64
	seq    uint64
	events refHeap
}

func (q *heapQueue) Now() int64 { return q.now }
func (q *heapQueue) Len() int   { return len(q.events) }

func (q *heapQueue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	heap.Push(&q.events, refEvent{cycle: cycle, seq: q.seq, fn: fn})
}

func (q *heapQueue) After(delay int64, fn func()) { q.At(q.now+delay, fn) }

func (q *heapQueue) RunDue() {
	for len(q.events) > 0 && q.events[0].cycle <= q.now {
		e := heap.Pop(&q.events).(refEvent)
		e.fn()
	}
}

func (q *heapQueue) Step() {
	q.now++
	q.RunDue()
}

func (q *heapQueue) NextEvent() (int64, bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].cycle, true
}

func (q *heapQueue) SkipTo(cycle int64) {
	for len(q.events) > 0 && q.events[0].cycle <= cycle {
		if c := q.events[0].cycle; c > q.now {
			q.now = c
		}
		e := heap.Pop(&q.events).(refEvent)
		e.fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// TestSameCycleFIFOAcrossHorizon schedules interleaved events at the
// same cycle through both the ring path (near) and the overflow path
// (far) and checks they fire in scheduling order — the case the
// overflow migration must get right.
func TestSameCycleFIFOAcrossHorizon(t *testing.T) {
	q := New()
	far := int64(3 * numBuckets)
	var order []int
	q.At(far, func() { order = append(order, 0) }) // overflow path
	q.SkipTo(far - numBuckets/2)
	q.At(far, func() { order = append(order, 1) }) // ring path, after migration
	q.At(far, func() { order = append(order, 2) })
	q.SkipTo(far)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("same-cycle order across horizon = %v, want [0 1 2]", order)
	}
}

// TestPastSchedulingClamp checks that events scheduled in the past run
// at the current cycle, in scheduling order relative to current-cycle
// events.
func TestPastSchedulingClamp(t *testing.T) {
	q := New()
	q.SkipTo(50)
	var order []int
	q.At(50, func() { order = append(order, 1) })
	q.At(10, func() { order = append(order, 2) }) // clamps to 50, after 1
	q.At(-5, func() { order = append(order, 3) })
	q.RunDue()
	if q.Now() != 50 {
		t.Fatalf("Now = %d, want 50", q.Now())
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("clamped order = %v, want [1 2 3]", order)
	}
}

// TestSkipToCallbackObservesNow checks that every callback run during a
// SkipTo observes its own scheduled cycle as Now, including callbacks
// that migrate out of the overflow heap mid-skip.
func TestSkipToCallbackObservesNow(t *testing.T) {
	q := New()
	cycles := []int64{3, numBuckets - 1, numBuckets + 7, 5 * numBuckets}
	seen := map[int64]int64{}
	for _, c := range cycles {
		c := c
		q.At(c, func() { seen[c] = q.Now() })
	}
	q.SkipTo(10 * numBuckets)
	for _, c := range cycles {
		if seen[c] != c {
			t.Errorf("callback at %d observed Now=%d", c, seen[c])
		}
	}
	if q.Now() != 10*numBuckets {
		t.Errorf("final Now = %d, want %d", q.Now(), int64(10*numBuckets))
	}
}

// TestDifferentialVsHeap drives the calendar queue and the old heap
// implementation with an identical randomized operation stream —
// including callbacks that schedule more work, delays straddling the
// horizon, and mixed Step/SkipTo advancement — and requires the exact
// same firing sequence and clock positions.
func TestDifferentialVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))

		newQ := New()
		oldQ := &heapQueue{}
		var newLog, oldLog []int64

		id := int64(0)
		// schedule installs the same (possibly re-scheduling) callback on
		// both queues.
		var schedule func(delay int64)
		schedule = func(delay int64) {
			id++
			ev := id
			resched := rng.Intn(4) == 0
			next := int64(rng.Intn(3 * numBuckets))
			newQ.After(delay, func() {
				newLog = append(newLog, ev, newQ.Now())
				if resched {
					schedule2(newQ, &newLog, ev, next)
				}
			})
			oldQ.After(delay, func() {
				oldLog = append(oldLog, ev, oldQ.Now())
				if resched {
					schedule2(oldQ, &oldLog, ev, next)
				}
			})
		}
		_ = schedule

		for op := 0; op < 400; op++ {
			switch rng.Intn(5) {
			case 0, 1:
				// Mix near-future, horizon-edge and far-future delays.
				d := int64(rng.Intn(8))
				if rng.Intn(3) == 0 {
					d = int64(numBuckets - 4 + rng.Intn(8))
				}
				if rng.Intn(5) == 0 {
					d = int64(rng.Intn(4 * numBuckets))
				}
				schedule(d)
			case 2:
				newQ.Step()
				oldQ.Step()
			case 3:
				d := int64(rng.Intn(2 * numBuckets))
				newQ.SkipTo(newQ.Now() + d)
				oldQ.SkipTo(oldQ.Now() + d)
			case 4:
				newQ.RunDue()
				oldQ.RunDue()
			}
			if newQ.Now() != oldQ.Now() {
				t.Fatalf("seed %d op %d: Now diverged: %d vs %d", seed, op, newQ.Now(), oldQ.Now())
			}
			if newQ.Len() != oldQ.Len() {
				t.Fatalf("seed %d op %d: Len diverged: %d vs %d", seed, op, newQ.Len(), oldQ.Len())
			}
			nc, nok := newQ.NextEvent()
			oc, ook := oldQ.NextEvent()
			if nok != ook || (nok && nc != oc) {
				t.Fatalf("seed %d op %d: NextEvent diverged: %d,%v vs %d,%v", seed, op, nc, nok, oc, ook)
			}
		}
		// Drain everything.
		newQ.SkipTo(newQ.Now() + 10*numBuckets)
		oldQ.SkipTo(oldQ.Now() + 10*numBuckets)

		if len(newLog) != len(oldLog) {
			t.Fatalf("seed %d: fired %d entries vs %d", seed, len(newLog)/2, len(oldLog)/2)
		}
		for i := range newLog {
			if newLog[i] != oldLog[i] {
				t.Fatalf("seed %d: firing log diverged at %d: %d vs %d", seed, i, newLog[i], oldLog[i])
			}
		}
	}
}

// schedule2 is the rescheduling arm of the differential test's
// callbacks, shared so both queues run identical logic.
func schedule2(q interface {
	After(int64, func())
	Now() int64
}, log *[]int64, ev, delay int64) {
	q.After(delay, func() {
		*log = append(*log, -ev, q.Now())
	})
}

// TestZeroAllocSteadyState asserts the allocation-free guarantee of the
// hot path: once the node free list is warm, After + Step performs no
// heap allocations.
func TestZeroAllocSteadyState(t *testing.T) {
	q := New()
	fn := func() {}
	// Warm the free list.
	for i := 0; i < 64; i++ {
		q.After(1, fn)
		q.After(3, fn)
	}
	q.SkipTo(q.Now() + 8)

	allocs := testing.AllocsPerRun(1000, func() {
		q.After(1, fn)
		q.After(2, fn)
		q.After(5, fn)
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state After+Step allocates %v times per run, want 0", allocs)
	}
}

// TestOverflowStress pushes thousands of far-future events with random
// cycles and checks they all fire, in order, with correct Now.
func TestOverflowStress(t *testing.T) {
	q := New()
	rng := rand.New(rand.NewSource(7))
	var fired []int64
	const n = 5000
	for i := 0; i < n; i++ {
		c := int64(rng.Intn(20 * numBuckets))
		q.At(c, func() { fired = append(fired, q.Now()) })
	}
	q.SkipTo(25 * numBuckets)
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out-of-order firing: %d after %d", fired[i], fired[i-1])
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}
