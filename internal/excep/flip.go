package excep

// The bit-flip injector of the resilience campaign. Every injection
// decision is a pure function of (seed, block, warp, lane, dynamic
// instruction index): the injector carries no RNG stream, so decisions
// do not depend on emulation order and a rerun of the same seed flips
// exactly the same bits — the property the campaign's classification
// reproducibility rests on.

// FlipConfig parameterizes a seeded bit-flip campaign over
// architectural state. The zero value injects nothing.
type FlipConfig struct {
	// Seed selects the campaign's deterministic flip pattern.
	Seed int64
	// Rate is the per-lane-instruction flip probability in [0,1].
	Rate float64
	// ProtectThreads shields the first N threads of every block
	// (in-block linear thread id < N): the partial thread protection
	// knob of the campaign.
	ProtectThreads int
}

// Enabled reports whether the config injects anything.
func (c FlipConfig) Enabled() bool { return c.Rate > 0 }

// Target says which piece of architectural state a flip corrupts.
type Target uint8

const (
	// TargetRegister flips one bit of a source register value.
	TargetRegister Target = iota
	// TargetPredicate inverts the lane's participation in the
	// instruction (its execution-mask bit).
	TargetPredicate
	// TargetAddress flips one bit of a memory instruction's effective
	// address.
	TargetAddress
	// NumTargets bounds the Target range.
	NumTargets
)

var targetNames = [NumTargets]string{
	TargetRegister:  "register",
	TargetPredicate: "predicate",
	TargetAddress:   "address",
}

// String returns the target's report name.
func (t Target) String() string {
	if t < NumTargets {
		return targetNames[t]
	}
	return "Target(?)"
}

// Decision is one flip to apply at a site.
type Decision struct {
	Target Target
	// Src selects which of the instruction's source operands to
	// corrupt (TargetRegister; modulo the number present).
	Src uint8
	// Bit is the bit position to flip (modulo the state's width).
	Bit uint8
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// siteHash derives the site's 64 decision bits from the campaign seed
// and the site coordinates.
func siteHash(seed int64, block, warp, lane, inst int32) uint64 {
	h := mix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(uint32(block)))
	h = mix64(h ^ uint64(uint32(warp))<<32 ^ uint64(uint32(lane)))
	h = mix64(h ^ uint64(uint32(inst)))
	return h
}

// At decides whether to flip at the site and, if so, what. inst is the
// lane's dynamic instruction index within the warp; memOp widens the
// target set to addresses. Protected threads never flip: the caller
// passes tid, the lane's in-block linear thread id.
func (c FlipConfig) At(block, warp, lane, inst int32, tid int, memOp bool) (Decision, bool) {
	if c.Rate <= 0 || tid < c.ProtectThreads {
		return Decision{}, false
	}
	h := siteHash(c.Seed, block, warp, lane, inst)
	// The top 32 bits gate the flip against the rate; the low bits pick
	// the target, operand and bit position.
	threshold := uint64(c.Rate * float64(1<<32))
	if threshold > 1<<32 {
		threshold = 1 << 32
	}
	if h>>32 >= threshold {
		return Decision{}, false
	}
	targets := uint64(NumTargets)
	if !memOp {
		targets-- // TargetAddress only applies to memory instructions
	}
	return Decision{
		Target: Target(h % targets),
		Src:    uint8((h >> 8) & 0xff),
		Bit:    uint8((h >> 16) & 0x3f),
	}, true
}
