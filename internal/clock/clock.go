// Package clock provides the discrete-event backbone of the timing
// simulator: a current cycle and a queue of scheduled callbacks. The SM
// pipelines tick cycle by cycle; the memory system components (caches,
// TLBs, DRAM, interconnect, host) schedule completions on the queue.
// When every SM is idle the main loop skips directly to the next event
// cycle, which makes fault-dominated phases cheap to simulate.
//
// The queue is a bucketed calendar queue: events within the near-future
// horizon (numBuckets cycles) live in a ring of per-cycle FIFO lists
// indexed by cycle modulo the horizon, with a two-level bitmap locating
// the next non-empty bucket in O(1) word operations. Events beyond the
// horizon wait in a small overflow min-heap and migrate into the ring
// as the clock advances. Event nodes come from a free list, so
// steady-state scheduling performs no heap allocation. Ordering
// semantics are exactly those of the previous container/heap
// implementation: earliest cycle first, FIFO (scheduling order) among
// same-cycle events.
//
// Nearly every latency in the simulated machine — L1/L2 hit latencies,
// TLB fills, DRAM accesses, link occupancies — is far below the
// horizon, so the overflow heap only sees the microsecond-scale fault
// service round trips, which are rare by construction.
package clock

import "math/bits"

const (
	bucketBits = 11
	// numBuckets is the calendar horizon: events scheduled fewer than
	// this many cycles ahead go straight into the ring.
	numBuckets = 1 << bucketBits
	bucketMask = numBuckets - 1
	// occWords is the size of the first-level occupancy bitmap; the
	// second level (occSum) has one bit per word and fits in a uint32.
	occWords = numBuckets / 64
)

// node is one scheduled event. Nodes are pooled: RunDue returns them to
// the free list before invoking the callback.
type node struct {
	cycle int64
	seq   uint64 // FIFO order among same-cycle events
	fn    func()
	next  *node
}

// bucketList is one calendar slot: a FIFO of same-cycle events.
type bucketList struct {
	head, tail *node
}

// Queue is the simulation clock and event queue. Not safe for
// concurrent use; the whole timing simulation is single-threaded.
type Queue struct {
	now int64
	seq uint64
	n   int // total pending events (ring + overflow)

	//simlint:ckptskip holds closures; SaveState digests the per-cycle counts and replay rebuilds the population
	buckets [numBuckets]bucketList
	//simlint:ckptskip derived occupancy index over buckets; rebuilt as replay reschedules events
	occ [occWords]uint64 // bit per non-empty bucket
	//simlint:ckptskip derived occupancy index over occ; rebuilt as replay reschedules events
	occSum uint32 // bit per non-zero occ word

	// overdue holds events left behind at a cycle the clock has already
	// advanced past (scheduled at cycle == now and not drained before the
	// clock moved, e.g. via After(0) outside a drain). They run at the
	// next drain, ahead of everything scheduled for later cycles. The
	// list is in insertion order, which is exactly (cycle, seq) order:
	// an overdue event's cycle is the now at its insertion, and now is
	// monotonic.
	//simlint:ckptskip holds closures; SaveState digests the count and replay rebuilds the population
	overdue bucketList

	//simlint:ckptskip node free list, a pure allocation cache; an empty list after restore is correct
	free *node

	// overflow holds events at now+numBuckets or later, ordered by
	// (cycle, seq); they migrate into the ring as now advances.
	//simlint:ckptskip holds closures; SaveState digests the per-cycle counts and replay rebuilds the population
	overflow []*node
}

// New returns a queue at cycle 0.
func New() *Queue { return &Queue{} }

// Now returns the current cycle.
func (q *Queue) Now() int64 { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.n }

// alloc takes a node from the free list; the grow path is the only
// allocation, paid once per high-water mark of pending events.
//
//simlint:noalloc
func (q *Queue) alloc() *node {
	nd := q.free
	if nd == nil {
		//simlint:ignore noalloc grow path, runs once per high-water mark of pending events
		return &node{}
	}
	q.free = nd.next
	nd.next = nil
	return nd
}

// recycle returns a drained node to the free list. Callers must drop
// every reference to nd first: the next alloc may hand it out again.
//
//simlint:releases 0
//simlint:noalloc
func (q *Queue) recycle(nd *node) {
	nd.fn = nil
	nd.next = q.free
	q.free = nd
}

func (q *Queue) setOcc(b int) {
	q.occ[b>>6] |= 1 << (uint(b) & 63)
	q.occSum |= 1 << (uint(b) >> 6)
}

func (q *Queue) clrOcc(b int) {
	w := b >> 6
	q.occ[w] &^= 1 << (uint(b) & 63)
	if q.occ[w] == 0 {
		q.occSum &^= 1 << uint(w)
	}
}

// push appends nd to its ring bucket (FIFO tail).
//
//simlint:noalloc
func (q *Queue) push(nd *node) {
	b := int(nd.cycle) & bucketMask
	bl := &q.buckets[b]
	if bl.tail == nil {
		bl.head = nd
		q.setOcc(b)
	} else {
		bl.tail.next = nd
	}
	bl.tail = nd
}

// At schedules fn to run at the given absolute cycle. Events scheduled
// in the past run at the current cycle's drain. Same-cycle events run in
// scheduling order.
//
//simlint:noalloc
func (q *Queue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	nd := q.alloc()
	nd.cycle, nd.seq, nd.fn = cycle, q.seq, fn
	if cycle-q.now < numBuckets {
		q.push(nd)
	} else {
		q.overflowPush(nd)
	}
	q.n++
}

// After schedules fn to run delay cycles from now.
//
//simlint:noalloc
func (q *Queue) After(delay int64, fn func()) { q.At(q.now+delay, fn) }

// migrate moves overflow events that entered the horizon into the ring.
// It must run every time now changes: the migration condition matches
// the ring-insertion condition in At, so a bucket never receives a
// direct insert while an earlier-scheduled same-cycle event still waits
// in the overflow heap — which is what keeps same-cycle FIFO exact.
//
//simlint:noalloc
func (q *Queue) migrate() {
	for len(q.overflow) > 0 && q.overflow[0].cycle-q.now < numBuckets {
		q.push(q.overflowPop())
	}
}

// advance moves the clock to a later cycle: events still pending at the
// cycle being left (the current slot can only hold cycle == now events)
// are stashed on the overdue list, and overflow events that entered the
// horizon migrate into the ring.
//
//simlint:noalloc
func (q *Queue) advance(to int64) {
	b := int(q.now) & bucketMask
	if bl := &q.buckets[b]; bl.head != nil {
		if q.overdue.tail == nil {
			q.overdue.head = bl.head
		} else {
			q.overdue.tail.next = bl.head
		}
		q.overdue.tail = bl.tail
		bl.head, bl.tail = nil, nil
		q.clrOcc(b)
	}
	q.now = to
	if len(q.overflow) > 0 {
		q.migrate()
	}
}

// RunDue runs every event scheduled at or before the current cycle,
// including events those events schedule for the current cycle.
//
//simlint:noalloc
func (q *Queue) RunDue() {
	for q.overdue.head != nil {
		nd := q.overdue.head
		q.overdue.head = nd.next
		if q.overdue.head == nil {
			q.overdue.tail = nil
		}
		q.n--
		fn := nd.fn
		q.recycle(nd)
		fn()
	}
	b := int(q.now) & bucketMask
	bl := &q.buckets[b]
	for bl.head != nil && bl.head.cycle <= q.now {
		nd := bl.head
		bl.head = nd.next
		if bl.head == nil {
			bl.tail = nil
			q.clrOcc(b)
		}
		q.n--
		fn := nd.fn
		q.recycle(nd)
		fn()
	}
}

// Step advances the clock by one cycle and runs due events.
//
//simlint:noalloc
func (q *Queue) Step() {
	q.advance(q.now + 1)
	q.RunDue()
}

// nextBucket returns the ring index of the first non-empty bucket at or
// cyclically after the current cycle's slot, or -1 when the ring is
// empty. Because every ring event lies in [now, now+numBuckets), cyclic
// distance from now's slot equals cycle order.
func (q *Queue) nextBucket() int {
	if q.occSum == 0 {
		return -1
	}
	s := int(q.now) & bucketMask
	w, bit := s>>6, uint(s)&63
	if m := q.occ[w] &^ (1<<bit - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	// Remaining words in cyclic order after w; the summary bitmap (never
	// zero here) gives the first non-zero one. A full wrap back to w
	// means only w's low bits — cyclically the farthest buckets — remain.
	rot := bits.RotateLeft32(q.occSum, -(w + 1))
	w2 := (w + 1 + bits.TrailingZeros32(rot)) % occWords
	if w2 == w {
		if m := q.occ[w] & (1<<bit - 1); m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
		return -1
	}
	return w2<<6 + bits.TrailingZeros64(q.occ[w2])
}

// NextEvent returns the cycle of the earliest pending event.
func (q *Queue) NextEvent() (int64, bool) {
	if q.overdue.head != nil {
		return q.overdue.head.cycle, true
	}
	if b := q.nextBucket(); b >= 0 {
		return q.buckets[b].head.cycle, true
	}
	if len(q.overflow) > 0 {
		return q.overflow[0].cycle, true
	}
	return 0, false
}

// SkipTo advances the clock to the given cycle (never backwards),
// running intermediate events at their own scheduled cycles so that
// callbacks observe the correct Now. Used when all SMs are asleep.
func (q *Queue) SkipTo(cycle int64) {
	for {
		next, ok := q.NextEvent()
		if !ok || next > cycle {
			break
		}
		if next > q.now {
			q.advance(next)
		}
		q.RunDue()
	}
	if cycle > q.now {
		q.advance(cycle)
	}
}

// Stage is a deferred-schedule buffer for the parallel tick phase of
// the simulator's run loop. Shard workers tick SMs concurrently, and a
// concurrent At/After on the shared Queue would race on the node free
// list and — worse — assign FIFO sequence numbers in a
// schedule-dependent order. Instead each SM records its schedules into
// a private Stage, and the main goroutine flushes the stages in SM
// index order after the barrier: FlushTo replays the buffered calls
// through Queue.After in recording order, so the queue's (cycle, seq)
// assignment is exactly what a sequential tick sweep would have
// produced. The buffer is reused across flushes; steady-state staging
// performs no allocation once the high-water mark is reached.
//
// A Stage belongs to one goroutine at a time: the ticking worker
// between barrier entry and exit, the flushing main goroutine
// otherwise. It provides no locking of its own.
type Stage struct {
	events []stagedEvent
}

// stagedEvent is one deferred After call.
type stagedEvent struct {
	delay int64
	fn    func()
}

// After records a deferred Queue.After(delay, fn).
//
//simlint:noalloc
func (st *Stage) After(delay int64, fn func()) {
	if len(st.events) < cap(st.events) {
		st.events = st.events[:len(st.events)+1]
		st.events[len(st.events)-1] = stagedEvent{delay, fn}
		return
	}
	//simlint:ignore noalloc grow path, runs once per high-water mark of staged events
	st.events = append(st.events, stagedEvent{delay, fn})
}

// Len returns the number of buffered schedules.
func (st *Stage) Len() int { return len(st.events) }

// Cap returns the buffer's retained capacity (its staging high-water
// mark; nonzero once the stage has ever buffered a schedule).
func (st *Stage) Cap() int { return cap(st.events) }

// FlushTo replays the buffered schedules onto q in recording order and
// resets the stage (retaining capacity). Buffered entries are cleared
// so the stage does not pin callbacks past the flush.
//
//simlint:noalloc
func (st *Stage) FlushTo(q *Queue) {
	for i := range st.events {
		e := &st.events[i]
		q.After(e.delay, e.fn)
		e.fn = nil
	}
	st.events = st.events[:0]
}

// overflow min-heap, ordered by (cycle, seq) ----------------------------

func overflowLess(a, b *node) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (q *Queue) overflowPush(nd *node) {
	q.overflow = append(q.overflow, nd)
	i := len(q.overflow) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !overflowLess(q.overflow[i], q.overflow[p]) {
			break
		}
		q.overflow[i], q.overflow[p] = q.overflow[p], q.overflow[i]
		i = p
	}
}

func (q *Queue) overflowPop() *node {
	h := q.overflow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	q.overflow = h[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && overflowLess(h[l], h[small]) {
			small = l
		}
		if r < n && overflowLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}
