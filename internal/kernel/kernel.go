// Package kernel represents GPU kernels: a static instruction sequence
// plus launch metadata (grid/block geometry, register and shared memory
// usage, parameters). Kernels are produced with the Builder, a small
// structured assembler that resolves labels into branch targets and
// reconvergence points.
package kernel

import (
	"fmt"
	"math"

	"gpues/internal/isa"
)

// Dim3 is a 2D launch dimension (the modelled ISA exposes x and y).
type Dim3 struct {
	X, Y int
}

// Count returns the total number of elements in the dimension.
func (d Dim3) Count() int {
	y := d.Y
	if y == 0 {
		y = 1
	}
	x := d.X
	if x == 0 {
		x = 1
	}
	return x * y
}

// Kernel is a compiled kernel ready to launch.
type Kernel struct {
	Name string
	Code []isa.Instruction

	// RegsPerThread is the register file cost per thread in 32-bit
	// register units (used for occupancy, like CUDA's regs/thread).
	RegsPerThread int
	// SharedMemBytes is the static shared memory used per thread block.
	SharedMemBytes int

	// Params are the kernel launch parameters, readable with OpLdParam.
	Params []uint64
}

// Validate checks structural well-formedness of the code: branch targets
// and reconvergence points in range, terminating exit paths, operand
// registers in range.
func (k *Kernel) Validate() error {
	n := int32(len(k.Code))
	if n == 0 {
		return fmt.Errorf("kernel %s: empty code", k.Name)
	}
	sawExit := false
	for pc, in := range k.Code {
		if in.Op == isa.OpExit {
			sawExit = true
		}
		if in.Op == isa.OpBra {
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("kernel %s: pc %d branch target %d out of range [0,%d)",
					k.Name, pc, in.Target, n)
			}
			if in.Reconv >= n {
				return fmt.Errorf("kernel %s: pc %d reconvergence %d out of range",
					k.Name, pc, in.Reconv)
			}
		}
		for _, r := range [...]isa.Reg{in.Dst, in.SrcA, in.SrcB, in.SrcC, in.Pred} {
			if r != isa.RegNone && (r < 0 || int(r) >= isa.MaxRegs) {
				return fmt.Errorf("kernel %s: pc %d register %d out of range", k.Name, pc, r)
			}
		}
		if in.Op == isa.OpLdParam {
			if in.Imm < 0 || int(in.Imm) >= len(k.Params) {
				return fmt.Errorf("kernel %s: pc %d reads param %d of %d",
					k.Name, pc, in.Imm, len(k.Params))
			}
		}
		if in.IsMem() && in.Size != 4 && in.Size != 8 {
			return fmt.Errorf("kernel %s: pc %d memory access size %d (want 4 or 8)",
				k.Name, pc, in.Size)
		}
	}
	if !sawExit {
		return fmt.Errorf("kernel %s: no exit instruction", k.Name)
	}
	return nil
}

// Launch describes one kernel launch: the kernel and its grid geometry.
type Launch struct {
	Kernel *Kernel
	Grid   Dim3
	Block  Dim3

	// HeapBase and HeapBytes describe the device-malloc heap backing
	// OpMalloc (zero = no heap; any malloc then raises device-OOM).
	// Workloads place the heap inside a reserved memory region.
	HeapBase  uint64
	HeapBytes uint64
}

// Blocks returns the number of thread blocks in the launch.
func (l *Launch) Blocks() int { return l.Grid.Count() }

// ThreadsPerBlock returns the block size in threads.
func (l *Launch) ThreadsPerBlock() int { return l.Block.Count() }

// WarpsPerBlock returns the number of warps per block for the given warp
// size, rounding up.
func (l *Launch) WarpsPerBlock(warpSize int) int {
	return (l.ThreadsPerBlock() + warpSize - 1) / warpSize
}

// Occupancy computes how many thread blocks of this launch fit
// concurrently on one SM, limited by the register file, shared memory,
// warp slots and the block residency limit — mirroring the CUDA
// occupancy rules the paper relies on (e.g. lbm's 8-warp occupancy).
func (l *Launch) Occupancy(maxBlocks, maxWarps, warpSize, regFileKB, sharedKB int) int {
	blocks := maxBlocks
	warps := l.WarpsPerBlock(warpSize)
	if warps > 0 {
		if byWarps := maxWarps / warps; byWarps < blocks {
			blocks = byWarps
		}
	}
	if l.Kernel.RegsPerThread > 0 {
		regsPerBlock := l.Kernel.RegsPerThread * warps * warpSize
		if regsPerBlock > 0 {
			if byRegs := regFileKB * 1024 / 4 / regsPerBlock; byRegs < blocks {
				blocks = byRegs
			}
		}
	}
	if l.Kernel.SharedMemBytes > 0 {
		if byShared := sharedKB * 1024 / l.Kernel.SharedMemBytes; byShared < blocks {
			blocks = byShared
		}
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// Label is a forward- or backward-referenced code position used by the
// Builder.
type Label struct {
	id int
}

// Builder assembles kernels. All emit methods return the Builder-chosen
// structure; branches take Labels which are resolved by Build.
type Builder struct {
	name    string
	code    []isa.Instruction
	labels  []int32 // label id -> pc, -1 if unbound
	fixups  []fixup
	regs    int
	shared  int
	params  []uint64
	errs    []error
	nextReg isa.Reg
}

type fixup struct {
	pc     int
	target int // label id for Target, -1 none
	reconv int // label id for Reconv, -1 none
}

// NewBuilder returns a Builder for a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, nextReg: 0}
}

// SetRegsPerThread sets the occupancy-relevant register cost per thread
// (in 32-bit units). If unset, Build derives it from the highest register
// used (counting 2 slots per register, since registers hold 64 bits).
func (b *Builder) SetRegsPerThread(n int) *Builder { b.regs = n; return b }

// SetSharedMem sets the static shared memory per block in bytes.
func (b *Builder) SetSharedMem(bytes int) *Builder { b.shared = bytes; return b }

// AddParam appends a launch parameter and returns its index for
// LoadParam.
func (b *Builder) AddParam(v uint64) int {
	b.params = append(b.params, v)
	return len(b.params) - 1
}

// SetParam overwrites a previously added parameter (used by workloads to
// patch buffer addresses after allocation).
func (b *Builder) SetParam(idx int, v uint64) {
	if idx < 0 || idx >= len(b.params) {
		b.errs = append(b.errs, fmt.Errorf("SetParam(%d) out of range", idx))
		return
	}
	b.params[idx] = v
}

// Reg allocates a fresh register.
func (b *Builder) Reg() isa.Reg {
	r := b.nextReg
	if r >= isa.RZ {
		b.errs = append(b.errs, fmt.Errorf("out of registers in kernel %s", b.name))
		return 0
	}
	b.nextReg++
	return r
}

// NewLabel creates an unbound label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label{id: len(b.labels) - 1}
}

// Bind binds the label to the current code position.
func (b *Builder) Bind(l Label) {
	if b.labels[l.id] != -1 {
		b.errs = append(b.errs, fmt.Errorf("label %d bound twice", l.id))
		return
	}
	b.labels[l.id] = int32(len(b.code))
}

// Here creates a label bound to the current position.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

func (b *Builder) emit(in isa.Instruction) *Builder {
	b.code = append(b.code, in)
	return b
}

// Emit appends a hand-constructed instruction, for forms the helper
// methods do not cover (e.g. predicated ALU operations). Branches must
// go through Bra/BraIf so their labels resolve.
func (b *Builder) Emit(in isa.Instruction) *Builder {
	if in.Op == isa.OpBra {
		b.errs = append(b.errs, fmt.Errorf("kernel %s: Emit cannot take branches; use Bra/BraIf", b.name))
		return b
	}
	return b.emit(in)
}

// PC returns the current instruction count (next pc to be emitted).
func (b *Builder) PC() int { return len(b.code) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.NewInstruction(isa.OpNop)) }

func (b *Builder) alu3(op isa.Op, d, a, rb isa.Reg, imm int64) *Builder {
	in := isa.NewInstruction(op)
	in.Dst, in.SrcA, in.SrcB, in.Imm = d, a, rb, imm
	return b.emit(in)
}

// IAdd emits d = a + rb + imm (use RZ for unused addend).
func (b *Builder) IAdd(d, a, rb isa.Reg, imm int64) *Builder {
	return b.alu3(isa.OpIAdd, d, a, rb, imm)
}

// ISub emits d = a - rb.
func (b *Builder) ISub(d, a, rb isa.Reg) *Builder { return b.alu3(isa.OpISub, d, a, rb, 0) }

// IMul emits d = a * rb (or a * imm with rb == RZ and imm != 0; the
// emulator multiplies by imm when rb is RZ).
func (b *Builder) IMul(d, a, rb isa.Reg, imm int64) *Builder {
	return b.alu3(isa.OpIMul, d, a, rb, imm)
}

// IMad emits d = a*rb + c.
func (b *Builder) IMad(d, a, rb, c isa.Reg) *Builder {
	in := isa.NewInstruction(isa.OpIMad)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = d, a, rb, c
	return b.emit(in)
}

// IMin and IMax emit signed min/max.
func (b *Builder) IMin(d, a, rb isa.Reg) *Builder { return b.alu3(isa.OpIMin, d, a, rb, 0) }

// IMax emits signed max.
func (b *Builder) IMax(d, a, rb isa.Reg) *Builder { return b.alu3(isa.OpIMax, d, a, rb, 0) }

// Shl emits d = a << imm.
func (b *Builder) Shl(d, a isa.Reg, imm int64) *Builder { return b.alu3(isa.OpShl, d, a, isa.RZ, imm) }

// Shr emits d = a >> imm (logical).
func (b *Builder) Shr(d, a isa.Reg, imm int64) *Builder { return b.alu3(isa.OpShr, d, a, isa.RZ, imm) }

// And emits d = a & imm (rb == RZ) or d = a & rb.
func (b *Builder) And(d, a, rb isa.Reg, imm int64) *Builder { return b.alu3(isa.OpAnd, d, a, rb, imm) }

// Or emits d = a | rb | imm.
func (b *Builder) Or(d, a, rb isa.Reg, imm int64) *Builder { return b.alu3(isa.OpOr, d, a, rb, imm) }

// Xor emits d = a ^ rb ^ imm.
func (b *Builder) Xor(d, a, rb isa.Reg, imm int64) *Builder { return b.alu3(isa.OpXor, d, a, rb, imm) }

// MovI emits d = imm.
func (b *Builder) MovI(d isa.Reg, imm int64) *Builder {
	in := isa.NewInstruction(isa.OpMov)
	in.Dst, in.Imm = d, imm
	return b.emit(in)
}

// Mov emits d = a.
func (b *Builder) Mov(d, a isa.Reg) *Builder {
	in := isa.NewInstruction(isa.OpMov)
	in.Dst, in.SrcA = d, a
	return b.emit(in)
}

// SetP emits d = (a cmp rb+imm) ? 1 : 0 on signed integers.
func (b *Builder) SetP(cmp isa.Cmp, d, a, rb isa.Reg, imm int64) *Builder {
	in := isa.NewInstruction(isa.OpSetP)
	in.Dst, in.SrcA, in.SrcB, in.Imm, in.Cmp = d, a, rb, imm, cmp
	return b.emit(in)
}

// FSetP emits d = (a cmp rb) ? 1 : 0 on floats.
func (b *Builder) FSetP(cmp isa.Cmp, d, a, rb isa.Reg) *Builder {
	in := isa.NewInstruction(isa.OpFSetP)
	in.Dst, in.SrcA, in.SrcB, in.Cmp = d, a, rb, cmp
	return b.emit(in)
}

// FAdd emits d = a + rb.
func (b *Builder) FAdd(d, a, rb isa.Reg) *Builder { return b.alu3(isa.OpFAdd, d, a, rb, 0) }

// FSub emits d = a - rb.
func (b *Builder) FSub(d, a, rb isa.Reg) *Builder { return b.alu3(isa.OpFSub, d, a, rb, 0) }

// FMul emits d = a * rb.
func (b *Builder) FMul(d, a, rb isa.Reg) *Builder { return b.alu3(isa.OpFMul, d, a, rb, 0) }

// FFma emits d = a*rb + c.
func (b *Builder) FFma(d, a, rb, c isa.Reg) *Builder {
	in := isa.NewInstruction(isa.OpFFma)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = d, a, rb, c
	return b.emit(in)
}

// FMovI emits d = the float immediate f.
func (b *Builder) FMovI(d isa.Reg, f float64) *Builder {
	return b.MovI(d, int64(math.Float64bits(f)))
}

// I2F emits d = float64(int64(a)).
func (b *Builder) I2F(d, a isa.Reg) *Builder { return b.alu3(isa.OpI2F, d, a, isa.RegNone, 0) }

// F2I emits d = int64(float64(a)).
func (b *Builder) F2I(d, a isa.Reg) *Builder { return b.alu3(isa.OpF2I, d, a, isa.RegNone, 0) }

func (b *Builder) sfu(op isa.Op, d, a isa.Reg) *Builder {
	in := isa.NewInstruction(op)
	in.Dst, in.SrcA = d, a
	return b.emit(in)
}

// FRcp emits d = 1/a on the special function unit.
func (b *Builder) FRcp(d, a isa.Reg) *Builder { return b.sfu(isa.OpFRcp, d, a) }

// FSqrt emits d = sqrt(a).
func (b *Builder) FSqrt(d, a isa.Reg) *Builder { return b.sfu(isa.OpFSqrt, d, a) }

// FRsqrt emits d = 1/sqrt(a).
func (b *Builder) FRsqrt(d, a isa.Reg) *Builder { return b.sfu(isa.OpFRsqrt, d, a) }

// FExp emits d = 2^a.
func (b *Builder) FExp(d, a isa.Reg) *Builder { return b.sfu(isa.OpFExp, d, a) }

// FLog emits d = log2(a).
func (b *Builder) FLog(d, a isa.Reg) *Builder { return b.sfu(isa.OpFLog, d, a) }

// FSin emits d = sin(a).
func (b *Builder) FSin(d, a isa.Reg) *Builder { return b.sfu(isa.OpFSin, d, a) }

// FCos emits d = cos(a).
func (b *Builder) FCos(d, a isa.Reg) *Builder { return b.sfu(isa.OpFCos, d, a) }

// S2R emits d = special register s.
func (b *Builder) S2R(d isa.Reg, s isa.SReg) *Builder {
	in := isa.NewInstruction(isa.OpS2R)
	in.Dst, in.Imm = d, int64(s)
	return b.emit(in)
}

// LoadParam emits d = params[idx].
func (b *Builder) LoadParam(d isa.Reg, idx int) *Builder {
	in := isa.NewInstruction(isa.OpLdParam)
	in.Dst, in.Imm = d, int64(idx)
	return b.emit(in)
}

// LdGlobal emits d = global[a + imm] with the given access size.
func (b *Builder) LdGlobal(d, a isa.Reg, imm int64, size int) *Builder {
	in := isa.NewInstruction(isa.OpLdGlobal)
	in.Dst, in.SrcA, in.Imm, in.Size = d, a, imm, uint8(size)
	return b.emit(in)
}

// StGlobal emits global[a + imm] = v.
func (b *Builder) StGlobal(a isa.Reg, imm int64, v isa.Reg, size int) *Builder {
	in := isa.NewInstruction(isa.OpStGlobal)
	in.SrcA, in.SrcB, in.Imm, in.Size = a, v, imm, uint8(size)
	return b.emit(in)
}

// AtomGlobal emits d = atomic-op(global[a], v). For AtomCAS, SrcC is the
// compare value and v the swap value.
func (b *Builder) AtomGlobal(op isa.AtomOp, d, a, v, cmp isa.Reg, size int) *Builder {
	in := isa.NewInstruction(isa.OpAtomGlobal)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = d, a, v, cmp
	in.Atom, in.Size = op, uint8(size)
	return b.emit(in)
}

// LdShared emits d = shared[a + imm].
func (b *Builder) LdShared(d, a isa.Reg, imm int64, size int) *Builder {
	in := isa.NewInstruction(isa.OpLdShared)
	in.Dst, in.SrcA, in.Imm, in.Size = d, a, imm, uint8(size)
	return b.emit(in)
}

// StShared emits shared[a + imm] = v.
func (b *Builder) StShared(a isa.Reg, imm int64, v isa.Reg, size int) *Builder {
	in := isa.NewInstruction(isa.OpStShared)
	in.SrcA, in.SrcB, in.Imm, in.Size = a, v, imm, uint8(size)
	return b.emit(in)
}

// Assert emits a device-side assertion: lanes where cond is zero raise
// a KindAssert exception. id tags the assertion in the report.
func (b *Builder) Assert(cond isa.Reg, id int64) *Builder {
	in := isa.NewInstruction(isa.OpAssert)
	in.SrcA, in.Imm = cond, id
	return b.emit(in)
}

// Trap emits an unconditional trap: any active lane raises a KindTrap
// exception with the given code. Predicate with Emit-style Pred fields
// via TrapIf for conditional traps.
func (b *Builder) Trap(code int64) *Builder {
	in := isa.NewInstruction(isa.OpTrap)
	in.Imm = code
	return b.emit(in)
}

// TrapIf emits a trap taken by lanes where pred is non-zero (inverted
// when neg).
func (b *Builder) TrapIf(pred isa.Reg, neg bool, code int64) *Builder {
	in := isa.NewInstruction(isa.OpTrap)
	in.Pred, in.PredNeg, in.Imm = pred, neg, code
	return b.emit(in)
}

// Malloc emits d = device-heap allocation of size bytes per lane
// (size from register a, or the imm bytes when a is RZ). Exhausting
// the heap raises a KindDeviceOOM exception.
func (b *Builder) Malloc(d, a isa.Reg, imm int64) *Builder {
	in := isa.NewInstruction(isa.OpMalloc)
	if a == isa.RegNone {
		// Normalize the immediate form to RZ so listings round-trip
		// exactly (the assembler writes RZ for "malloc rD, #size").
		a = isa.RZ
	}
	in.Dst, in.SrcA, in.Imm = d, a, imm
	return b.emit(in)
}

// Bar emits a block-wide barrier.
func (b *Builder) Bar() *Builder { return b.emit(isa.NewInstruction(isa.OpBar)) }

// Exit emits thread exit.
func (b *Builder) Exit() *Builder { return b.emit(isa.NewInstruction(isa.OpExit)) }

// Bra emits an unconditional branch to target. Unconditional branches
// are warp-uniform by construction and need no reconvergence point.
func (b *Builder) Bra(target Label) *Builder {
	in := isa.NewInstruction(isa.OpBra)
	b.fixups = append(b.fixups, fixup{pc: len(b.code), target: target.id, reconv: -1})
	return b.emit(in)
}

// BraIf emits a branch to target taken by lanes where pred is non-zero
// (inverted when neg). Reconv is the reconvergence point where diverged
// lanes rejoin; pass a label bound at the immediate post-dominator.
func (b *Builder) BraIf(pred isa.Reg, neg bool, target, reconv Label) *Builder {
	in := isa.NewInstruction(isa.OpBra)
	in.Pred, in.PredNeg = pred, neg
	b.fixups = append(b.fixups, fixup{pc: len(b.code), target: target.id, reconv: reconv.id})
	return b.emit(in)
}

// BraIfUniform emits a predicated branch that the kernel author asserts
// is warp-uniform (all lanes agree), e.g. a loop back-edge on a counter
// shared by the whole warp. The emulator verifies the assertion.
func (b *Builder) BraIfUniform(pred isa.Reg, neg bool, target Label) *Builder {
	in := isa.NewInstruction(isa.OpBra)
	in.Pred, in.PredNeg = pred, neg
	b.fixups = append(b.fixups, fixup{pc: len(b.code), target: target.id, reconv: -1})
	return b.emit(in)
}

// Build resolves labels and returns the kernel.
func (b *Builder) Build() (*Kernel, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		in := &b.code[f.pc]
		if f.target >= 0 {
			pc := b.labels[f.target]
			if pc < 0 {
				return nil, fmt.Errorf("kernel %s: unbound branch target label at pc %d", b.name, f.pc)
			}
			in.Target = pc
		}
		if f.reconv >= 0 {
			pc := b.labels[f.reconv]
			if pc < 0 {
				return nil, fmt.Errorf("kernel %s: unbound reconvergence label at pc %d", b.name, f.pc)
			}
			in.Reconv = pc
		}
	}
	regs := b.regs
	if regs == 0 {
		// Two 32-bit slots per allocated 64-bit register.
		regs = 2 * int(b.nextReg)
		if regs == 0 {
			regs = 2
		}
	}
	k := &Kernel{
		Name:           b.name,
		Code:           b.code,
		RegsPerThread:  regs,
		SharedMemBytes: b.shared,
		Params:         b.params,
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustBuild is Build that panics on error, for statically known-good
// kernels in workloads and tests.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
