// Package sp is the shardpurity corpus: a tick root whose call graph
// mixes staged (legal) and direct (flagged) shared effects.
package sp

import (
	"gpues/internal/clock"
	"gpues/internal/obs"
)

// Shard is a per-worker component with wiring to shared services.
type Shard struct {
	q     *clock.Queue
	tr    *obs.Tracer
	hist  *obs.Histogram
	stage *clock.Stage
	emit  *obs.EmitStage

	count int
}

// Tick is the corpus tick root.
//
//simlint:tickroot
func (s *Shard) Tick() {
	// Mutating the receiver's own state is the whole point of a tick.
	s.count++

	// Staging into the ledger types is the sanctioned channel.
	s.stage.After(1, func() {})
	s.emit.Emit(0, obs.KIssue, 0, 0, 0)

	// The injected defect: a stray direct schedule on the shared queue.
	s.q.After(1, func() {}) // want "Queue.After schedules directly on the shared event queue"

	s.helper()
	s.flush()
}

// helper buries direct shared effects one call deep: the proof must
// follow the chain and name it.
func (s *Shard) helper() {
	s.tr.Emit(0, obs.KIssue, 0, 0, 0) // want "Tracer.Emit emits directly on the shared tracer.*reachable via sp.Shard.Tick → sp.Shard.helper"
	s.hist.Observe(1)                 // want "Histogram.Observe observes directly into a shared histogram"
}

// flush applies staged effects directly; it is a reviewed boundary the
// traversal must not descend into (the no-false-positive case).
//
//simlint:shardsafe
func (s *Shard) flush() {
	s.q.After(1, func() {})
	s.tr.Emit(0, obs.KIssue, 0, 0, 0)
	s.hist.Observe(1)
}

// offTick is not reachable from the root: its direct effects are
// legal.
func (s *Shard) offTick() {
	s.q.After(1, func() {})
}
