package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpues/internal/analysis/registry"
)

// inModule runs fn with the working directory set to the fixture
// module, so standalone()'s FindModule resolves the fixture's go.mod.
func inModule(t *testing.T, dir string, fn func() int) int {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(abs); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	return fn()
}

// TestExitCodeContract pins the driver's exit statuses: 0 clean, 1
// driver error, 2 findings (matching go vet).
func TestExitCodeContract(t *testing.T) {
	if got := inModule(t, "testdata/cleanmod", func() int { return standalone([]string{"./..."}) }); got != 0 {
		t.Errorf("clean module: standalone exited %d, want 0", got)
	}
	if got := inModule(t, "testdata/badmod", func() int { return standalone([]string{"./..."}) }); got != 2 {
		t.Errorf("module with unserialized field: standalone exited %d, want 2", got)
	}
	if got := inModule(t, "testdata/brokenmod", func() int { return standalone([]string{"./..."}) }); got != 1 {
		t.Errorf("unparseable module: standalone exited %d, want 1", got)
	}
}

// TestList checks that -list prints every registered analyzer with a
// one-line doc.
func TestList(t *testing.T) {
	var sb strings.Builder
	listAnalyzers(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := len(registry.All()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, out)
	}
	for i, a := range registry.All() {
		prefix := a.Name + ": "
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], prefix)
		}
		if strings.TrimPrefix(lines[i], prefix) == "" {
			t.Errorf("analyzer %s has no one-line doc", a.Name)
		}
		if strings.Contains(lines[i], "\n") {
			t.Errorf("analyzer %s doc spills past one line", a.Name)
		}
	}
	for _, name := range []string{"determinism", "poolsafe", "noalloc", "enumswitch", "directive", "ckptcomplete", "shardpurity"} {
		if !strings.Contains(out, name+": ") {
			t.Errorf("-list output is missing analyzer %s:\n%s", name, out)
		}
	}
}
