package clock

import "testing"

// TestStageFlushPreservesSequentialOrder is the staging equivalence
// check at the queue level: scheduling through a Stage and flushing
// must assign the same (cycle, seq) drain order as calling After
// directly in the same order.
func TestStageFlushPreservesSequentialOrder(t *testing.T) {
	run := func(schedule func(q *Queue, delay int64, fn func())) []int {
		q := New()
		var order []int
		for i, d := range []int64{3, 1, 3, 1, 2, 1} {
			i := i
			schedule(q, d, func() { order = append(order, i) })
		}
		for q.Len() > 0 {
			next, ok := q.NextEvent()
			if !ok {
				t.Fatal("events pending but none scheduled")
			}
			q.SkipTo(next)
			q.Step()
		}
		return order
	}

	direct := run(func(q *Queue, d int64, fn func()) { q.After(d, fn) })
	staged := run(func(q *Queue, d int64, fn func()) {
		var st Stage
		st.After(d, fn)
		st.FlushTo(q)
	})
	var batched []int
	{
		q := New()
		var st Stage
		for i, d := range []int64{3, 1, 3, 1, 2, 1} {
			i := i
			st.After(d, func() { batched = append(batched, i) })
		}
		st.FlushTo(q)
		for q.Len() > 0 {
			next, _ := q.NextEvent()
			q.SkipTo(next)
			q.Step()
		}
	}

	want := []int{1, 3, 5, 4, 0, 2} // by (cycle, scheduling order)
	for name, got := range map[string][]int{"direct": direct, "staged": staged, "batched": batched} {
		if len(got) != len(want) {
			t.Fatalf("%s ran %d events, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s drain order %v, want %v", name, got, want)
			}
		}
	}
}

// TestStageReuseDoesNotAllocate pins the steady-state zero-allocation
// property: once the high-water mark is reached, staging and flushing
// reuse the buffer.
func TestStageReuseDoesNotAllocate(t *testing.T) {
	q := New()
	var st Stage
	fn := func() {}
	// Reach the high-water mark.
	for i := 0; i < 8; i++ {
		st.After(1, fn)
	}
	st.FlushTo(q)
	for q.Len() > 0 {
		next, _ := q.NextEvent()
		q.SkipTo(next)
		q.Step()
	}
	if st.Cap() < 8 {
		t.Fatalf("stage capacity %d after 8 staged events, want >= 8", st.Cap())
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			st.After(1, fn)
		}
		st.events = st.events[:0] // drop without flushing; the queue would grow its own pool
	})
	if allocs != 0 {
		t.Fatalf("steady-state staging allocated %.1f times per run, want 0", allocs)
	}
}

// TestStageFlushClearsCallbacks verifies FlushTo resets length and
// drops callback references (so the stage does not pin closures).
func TestStageFlushClearsCallbacks(t *testing.T) {
	q := New()
	var st Stage
	ran := 0
	st.After(2, func() { ran++ })
	st.After(1, func() { ran++ })
	if st.Len() != 2 {
		t.Fatalf("Len=%d, want 2", st.Len())
	}
	st.FlushTo(q)
	if st.Len() != 0 {
		t.Fatalf("Len=%d after flush, want 0", st.Len())
	}
	for i := range st.events[:cap(st.events)][:2] {
		if st.events[:2][i].fn != nil {
			t.Errorf("flushed entry %d still references its callback", i)
		}
	}
	for q.Len() > 0 {
		next, _ := q.NextEvent()
		q.SkipTo(next)
		q.Step()
	}
	if ran != 2 {
		t.Fatalf("%d callbacks ran, want 2", ran)
	}
}
