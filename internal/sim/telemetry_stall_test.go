package sim

import (
	"errors"
	"strings"
	"testing"

	"gpues/internal/config"
	"gpues/internal/vm"
)

// TestStallReportEmbedsLastSample forces the watchdog livelock of
// TestWatchdogConvertsLivelock on a sampled run and checks the stall
// report carries the metric trajectory into the stall.
func TestStallReportEmbedsLastSample(t *testing.T) {
	cfg := config.Default()
	cfg.ProgressWindow = 50_000
	cfg.SampleEvery = 10_000
	s, err := New(cfg, testSpec(t, 4, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range s.sms {
		m.SetChaos(stallAll{})
	}
	_, err = s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("livelock returned %v, want *StallError", err)
	}
	p := se.Report.LastSample
	if p.Values == nil {
		t.Fatal("stall report has no last sample despite SampleEvery > 0")
	}
	if p.Cycle < cfg.SampleEvery {
		t.Errorf("last sample at cycle %d, want at least one period (%d)", p.Cycle, cfg.SampleEvery)
	}
	if _, ok := p.Values["sm.committed"]; !ok {
		t.Errorf("last sample misses sm.committed: %v", p.Values)
	}
	if !strings.Contains(se.Report.String(), "last sample at cycle") {
		t.Errorf("report does not render the sample:\n%s", se.Report)
	}

	// Without sampling, the report stays sample-free.
	cfg.SampleEvery = 0
	s2, err := New(cfg, testSpec(t, 4, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range s2.sms {
		m.SetChaos(stallAll{})
	}
	_, err = s2.Run()
	if !errors.As(err, &se) {
		t.Fatalf("livelock returned %v, want *StallError", err)
	}
	if se.Report.LastSample.Values != nil {
		t.Error("unsampled stall report carries a sample")
	}
}
