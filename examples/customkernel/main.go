// Custom kernel example: write a kernel directly against the
// simulator's ISA with the kernel builder, give it memory and regions,
// and run it through the full timing model.
//
// The kernel is a SAXPY with a divergent tail: y[i] = a*x[i] + y[i],
// but elements whose x is negative take a slow path with an extra
// square root — demonstrating predication and divergence handling.
package main

import (
	"fmt"
	"log"
	"math"

	"gpues"
	"gpues/internal/isa"
)

const (
	n     = 32768
	xBase = uint64(0x1000000)
	yBase = uint64(0x2000000)
)

func buildSaxpy() (*gpues.Kernel, error) {
	b := gpues.NewKernelBuilder("saxpy")
	pX := b.AddParam(xBase)
	pY := b.AddParam(yBase)

	tid := b.Reg()
	ctaid := b.Reg()
	ntid := b.Reg()
	gid := b.Reg()
	off := b.Reg()
	xa := b.Reg()
	ya := b.Reg()
	x := b.Reg()
	y := b.Reg()
	a := b.Reg()
	p := b.Reg()
	zero := b.Reg()

	// gid = ctaid.x * ntid.x + tid.x
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.S2R(ntid, isa.SRNTidX)
	b.IMad(gid, ctaid, ntid, tid)
	b.Shl(off, gid, 3)

	// x = X[gid]; y = Y[gid]
	b.LoadParam(xa, pX)
	b.IAdd(xa, xa, off, 0)
	b.LdGlobal(x, xa, 0, 8)
	b.LoadParam(ya, pY)
	b.IAdd(ya, ya, off, 0)
	b.LdGlobal(y, ya, 0, 8)

	// Divergent tail: lanes with x < 0 take a slow path first.
	b.MovI(zero, 0)
	b.FSetP(isa.CmpLT, p, x, zero)
	slow := b.NewLabel()
	join := b.NewLabel()
	b.BraIf(p, false, slow, join)
	b.Bra(join) // fast path: fall through to the FFMA
	b.Bind(slow)
	b.FMul(x, x, x) // slow path: x = sqrt(x*x)
	b.FSqrt(x, x)
	b.Bind(join)

	// y = a*x + y
	b.FMovI(a, 2.5)
	b.FFma(y, a, x, y)
	b.StGlobal(ya, 0, y, 8)
	b.Exit()
	return b.Build()
}

func main() {
	// Initialize functional memory: half the x values negative.
	mem := gpues.NewMemory()
	for i := 0; i < n; i++ {
		v := float64(i%100) / 100
		if i%2 == 1 {
			v = -v
		}
		mem.WriteF64(xBase+uint64(i*8), v)
		mem.WriteF64(yBase+uint64(i*8), 1.0)
	}

	k, err := buildSaxpy()
	if err != nil {
		log.Fatal(err)
	}

	spec := gpues.LaunchSpec{
		Launch: &gpues.Launch{
			Kernel: k,
			Grid:   gpues.Dim3{X: n / 256},
			Block:  gpues.Dim3{X: 256},
		},
		Memory: mem,
		Regions: []gpues.Region{
			{Name: "x", Base: xBase, Size: n * 8, Kind: gpues.RegionGPUInit},
			{Name: "y", Base: yBase, Size: n * 8, Kind: gpues.RegionGPUInit},
		},
	}

	cfg := gpues.DefaultConfig()
	cfg.Scheme = gpues.OperandLog
	res, err := gpues.Run(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("saxpy over %d elements: %d cycles, IPC %.2f, %d blocks/SM\n",
		n, res.Cycles, res.IPC(), res.Occupancy)

	// The functional result is available in the same memory.
	ok := 0
	for i := 0; i < n; i++ {
		got := mem.ReadF64(yBase + uint64(i*8))
		x := float64(i%100) / 100
		want := 2.5*x + 1.0 // slow path computes sqrt(x^2) = |x|
		if math.Abs(got-want) < 1e-9 {
			ok++
		}
	}
	fmt.Printf("verified %d/%d results (divergent lanes rejoin correctly)\n", ok, n)
	if ok != n {
		log.Fatalf("%d results wrong", n-ok)
	}
}
