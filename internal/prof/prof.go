// Package prof wires the standard pprof CPU and heap profilers to
// command-line flags, so any binary in this repo can produce profiles
// consumable by `go tool pprof`.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path. The returned stop
// function flushes and closes the file; it is idempotent, so it is safe
// to call on every exit path. An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps a GC-settled heap profile to path. An empty path is a
// no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
