// Package tlb models the GPU's address translation hardware (Table 1):
// a small private L1 TLB per SM, a large shared L2 TLB with MSHRs, and
// the fill unit whose page table walkers resolve L2 misses at a fixed
// walk latency. Walkers are the point where page faults are detected
// (Figure 2, step 1).
package tlb

import (
	"fmt"
	"sort"

	"gpues/internal/clock"
	"gpues/internal/obs"
	"gpues/internal/vm"
)

// Result is the outcome of a translation: either the page is present in
// the GPU page table, or the access faults with the given kind.
type Result struct {
	Present bool
	Fault   vm.FaultKind
}

// Level is anything that can translate a page: an underlying TLB level
// or the fill unit.
type Level interface {
	// Lookup translates the page containing pageVA; done receives the
	// result. A false return means the level is full (MSHR/queue
	// backpressure) and the caller must retry.
	Lookup(pageVA uint64, done func(Result)) bool
}

// Stats counts TLB events.
type Stats struct {
	Hits    int64
	Misses  int64
	Merges  int64
	Rejects int64
	Faults  int64 // fault results delivered
}

// Config sizes a TLB level.
type Config struct {
	Name    string
	Entries int
	Ways    int
	MSHRs   int // 0 means unbounded (L1 TLB misses are bounded by the LSU)
	Latency int64
}

type tlbEntry struct {
	vpn   uint64
	valid bool
	lru   int64
}

// tlbMSHR tracks one outstanding translation miss. Like cache MSHRs,
// they are pooled: waiters capacity and the prebuilt issue/fill
// closures survive reuse so steady-state misses do not allocate.
type tlbMSHR struct {
	pageVA  uint64
	vpn     uint64
	waiters []func(Result)
	born    int64 // cycle the miss was allocated (leak detection)

	issueFn func()       // issue(m); also the downstream-full retry
	fillFn  func(Result) // fill(m, r) — the downstream completion
	next    *tlbMSHR     // free list
}

// delivery carries one hit result through the latency delay. Deliveries
// are pooled so the hit path — the common case on the L1 TLB, once per
// coalesced request — schedules without allocating.
type delivery struct {
	done func(Result)
	r    Result
	fire func()
	next *delivery
}

// TLB is one translation level backed by a lower Level.
type TLB struct {
	cfg     Config
	sets    int
	entries [][]tlbEntry
	//simlint:ckptskip construction-time geometry derived from cfg; restore cross-checks sets and ways
	pageSize uint64
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip wiring to the lower level, rebuilt by the harness before restore
	next  Level
	mshrs map[uint64]*tlbMSHR
	//simlint:ckptskip free list of recycled MSHRs, a pure allocation cache; an empty list after restore is correct
	pool *tlbMSHR // free list of recycled MSHRs
	//simlint:ckptskip free list of recycled hit deliveries, a pure allocation cache; an empty list after restore is correct
	deliver *delivery // free list of recycled hit deliveries
	stats   Stats
	tick    int64
	//simlint:ckptskip retry closures; SaveState digests the count and replay rebuilds the population
	waiters []func()
}

// sendResult schedules done(r) after the TLB latency using a pooled
// delivery node. The node recycles itself when it fires, after copying
// its payload out, so re-entrant lookups from inside done reuse it.
func (t *TLB) sendResult(done func(Result), r Result) {
	d := t.deliver
	if d == nil {
		d = &delivery{}
		d.fire = func() {
			dn, res := d.done, d.r
			d.done = nil
			d.next = t.deliver
			t.deliver = d
			dn(res)
		}
	} else {
		t.deliver = d.next
		d.next = nil
	}
	d.done, d.r = done, r
	t.q.After(t.cfg.Latency, d.fire)
}

// freeNotifier is implemented by levels that can call back when miss
// resources free up.
type freeNotifier interface{ OnFree(func()) }

// OnFree registers fn to run when a TLB MSHR is released; rejected
// callers use this instead of polling.
func (t *TLB) OnFree(fn func()) { t.waiters = append(t.waiters, fn) }

func (t *TLB) release() {
	for len(t.waiters) > 0 && (t.cfg.MSHRs == 0 || len(t.mshrs) < t.cfg.MSHRs) {
		fn := t.waiters[0]
		t.waiters = t.waiters[1:]
		fn()
	}
}

// New builds a TLB with the given geometry over the next level.
func New(cfg Config, pageSize int, q *clock.Queue, next Level) (*TLB, error) {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("tlb %s: bad geometry %d entries / %d ways", cfg.Name, cfg.Entries, cfg.Ways)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("tlb %s: page size %d", cfg.Name, pageSize)
	}
	sets := cfg.Entries / cfg.Ways
	e := make([][]tlbEntry, sets)
	for i := range e {
		e[i] = make([]tlbEntry, cfg.Ways)
	}
	return &TLB{
		cfg:      cfg,
		sets:     sets,
		entries:  e,
		pageSize: uint64(pageSize),
		q:        q,
		next:     next,
		mshrs:    make(map[uint64]*tlbMSHR),
	}, nil
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// RegisterMetrics exposes the TLB's counters as gauges.
func (t *TLB) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".hits", func() int64 { return t.stats.Hits })
	reg.Gauge(prefix+".misses", func() int64 { return t.stats.Misses })
	reg.Gauge(prefix+".merges", func() int64 { return t.stats.Merges })
	reg.Gauge(prefix+".rejects", func() int64 { return t.stats.Rejects })
	reg.Gauge(prefix+".faults", func() int64 { return t.stats.Faults })
}

// InFlight returns the number of outstanding misses.
func (t *TLB) InFlight() int { return len(t.mshrs) }

func (t *TLB) vpn(va uint64) uint64 { return va / t.pageSize }

func (t *TLB) find(vpn uint64) *tlbEntry {
	set := int(vpn % uint64(t.sets))
	for w := range t.entries[set] {
		e := &t.entries[set][w]
		if e.valid && e.vpn == vpn {
			return e
		}
	}
	return nil
}

func (t *TLB) install(vpn uint64) {
	set := int(vpn % uint64(t.sets))
	victim := &t.entries[set][0]
	for w := range t.entries[set] {
		e := &t.entries[set][w]
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	t.tick++
	*victim = tlbEntry{vpn: vpn, valid: true, lru: t.tick}
}

// Lookup implements Level.
func (t *TLB) Lookup(pageVA uint64, done func(Result)) bool {
	vpn := t.vpn(pageVA)
	if e := t.find(vpn); e != nil {
		t.stats.Hits++
		t.tick++
		e.lru = t.tick
		t.sendResult(done, Result{Present: true})
		return true
	}
	if m, ok := t.mshrs[vpn]; ok {
		t.stats.Merges++
		m.waiters = append(m.waiters, done)
		return true
	}
	if t.cfg.MSHRs > 0 && len(t.mshrs) >= t.cfg.MSHRs {
		t.stats.Rejects++
		return false
	}
	t.stats.Misses++
	m := t.allocMSHR(pageVA, vpn)
	m.waiters = append(m.waiters, done)
	t.mshrs[vpn] = m
	t.q.After(t.cfg.Latency, m.issueFn)
	return true
}

// allocMSHR takes a miss tracker from the pool (or builds one, wiring
// its reusable closures) and resets its per-miss state.
func (t *TLB) allocMSHR(pageVA, vpn uint64) *tlbMSHR {
	m := t.pool
	if m == nil {
		m = &tlbMSHR{}
		m.issueFn = func() { t.issue(m) }
		m.fillFn = func(r Result) { t.fill(m, r) }
	} else {
		t.pool = m.next
		m.next = nil
	}
	m.pageVA, m.vpn = pageVA, vpn
	m.born = t.q.Now()
	m.waiters = m.waiters[:0]
	return m
}

func (t *TLB) issue(m *tlbMSHR) {
	if !t.next.Lookup(m.pageVA, m.fillFn) {
		if fn, okN := t.next.(freeNotifier); okN {
			fn.OnFree(m.issueFn)
		} else {
			t.q.After(1, m.issueFn)
		}
	}
}

// fill completes a miss: install on a hit, retire the tracker, run the
// merged waiters in arrival order, then recycle it (last, so waiters
// that immediately re-miss get a different node).
func (t *TLB) fill(m *tlbMSHR, r Result) {
	if r.Present {
		t.install(m.vpn)
	} else {
		t.stats.Faults++
	}
	delete(t.mshrs, m.vpn)
	for _, w := range m.waiters {
		w(r)
	}
	t.release()
	t.putMSHR(m)
}

// putMSHR returns a retired miss tracker to the free list. Callers must
// drop every reference first: the next allocMSHR may hand it out again.
//
//simlint:releases 0
func (t *TLB) putMSHR(m *tlbMSHR) {
	m.waiters = m.waiters[:0]
	m.next = t.pool
	t.pool = m
}

// CheckInvariants validates the TLB's structural state: MSHR occupancy
// within capacity, and (when maxAge > 0) no outstanding miss older than
// maxAge cycles — a stuck MSHR is a leaked miss that would otherwise
// only surface as a hang.
func (t *TLB) CheckInvariants(now, maxAge int64) []string {
	var v []string
	if t.cfg.MSHRs > 0 && len(t.mshrs) > t.cfg.MSHRs {
		v = append(v, fmt.Sprintf("%s: %d MSHRs in flight exceed capacity %d",
			t.cfg.Name, len(t.mshrs), t.cfg.MSHRs))
	}
	if maxAge > 0 {
		// Sorted VPNs keep the violation report deterministic run to
		// run (map iteration order is randomised).
		vpns := make([]uint64, 0, len(t.mshrs))
		for vpn := range t.mshrs {
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			if age := now - t.mshrs[vpn].born; age > maxAge {
				v = append(v, fmt.Sprintf("%s: miss on vpn %#x outstanding for %d cycles (leak?)",
					t.cfg.Name, vpn, age))
			}
		}
	}
	return v
}

// Flush invalidates all entries (kernel boundary).
func (t *TLB) Flush() {
	for s := range t.entries {
		for w := range t.entries[s] {
			t.entries[s][w] = tlbEntry{}
		}
	}
}

// WalkInjector is the chaos hook of the fill unit: it may turn a
// page-table walk that would hit into a transient alloc-only fault.
// Resolving such a fault is architecturally a no-op (the page is
// already mapped), so a correct pipeline replays to the same result —
// the restartability property the injection exists to stress.
type WalkInjector interface {
	InjectWalkFault(pageVA uint64) bool
}

// FillUnit performs GPU page table walks on L2 TLB misses with a pool
// of hardware walkers (Table 1: 64 walkers, 500-cycle walks). The
// classify callback consults the GPU page table; non-present results
// are page faults reported upward.
type FillUnit struct {
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip construction-time capacity (Table 1: 64 walkers), fixed for the life of the unit
	walkers int
	//simlint:ckptskip construction-time latency (Table 1: 500-cycle walks), fixed for the life of the unit
	walkLatency int64
	busy        int
	queue       []walkReq
	//simlint:ckptskip page-table-probe closure, rebound by the harness before restore
	classify func(pageVA uint64) Result
	//simlint:ckptskip chaos hook, rebound by AttachChaos on restore; the plan checkpoints its own progress
	injector WalkInjector
	//simlint:ckptskip tracer wiring; trace emission is observability, not simulation state
	tr *obs.Tracer

	// Walks and FaultsDetected count completed walks and those that
	// ended in a fault; FaultsInjected counts the detected faults that
	// were injected rather than organic.
	Walks          int64
	FaultsDetected int64
	FaultsInjected int64
}

type walkReq struct {
	pageVA uint64
	done   func(Result)
}

// NewFillUnit builds the fill unit. classify must return the current
// page table state for a page.
func NewFillUnit(q *clock.Queue, walkers int, walkLatency int64, classify func(uint64) Result) (*FillUnit, error) {
	if walkers <= 0 || walkLatency <= 0 || classify == nil {
		return nil, fmt.Errorf("tlb: bad fill unit config (%d walkers, %d latency)", walkers, walkLatency)
	}
	return &FillUnit{q: q, walkers: walkers, walkLatency: walkLatency, classify: classify}, nil
}

// Lookup implements Level: it starts a page walk, queueing when all
// walkers are busy.
func (f *FillUnit) Lookup(pageVA uint64, done func(Result)) bool {
	if f.busy < f.walkers {
		f.startWalk(pageVA, done)
	} else {
		f.queue = append(f.queue, walkReq{pageVA: pageVA, done: done})
	}
	return true
}

// Busy returns the number of active walkers.
func (f *FillUnit) Busy() int { return f.busy }

// Queued returns the number of walks waiting for a walker.
func (f *FillUnit) Queued() int { return len(f.queue) }

// SetInjector installs the chaos hook; nil removes it.
func (f *FillUnit) SetInjector(i WalkInjector) { f.injector = i }

// SetTracer installs the event tracer; nil disables tracing.
func (f *FillUnit) SetTracer(tr *obs.Tracer) { f.tr = tr }

// RegisterMetrics exposes the fill unit's counters as gauges.
func (f *FillUnit) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".walks", func() int64 { return f.Walks })
	reg.Gauge(prefix+".faults_detected", func() int64 { return f.FaultsDetected })
	reg.Gauge(prefix+".faults_injected", func() int64 { return f.FaultsInjected })
}

// CheckInvariants validates the fill unit's structural state.
func (f *FillUnit) CheckInvariants() []string {
	if f.busy < 0 || f.busy > f.walkers {
		return []string{fmt.Sprintf("fill unit: %d busy walkers outside [0,%d]", f.busy, f.walkers)}
	}
	return nil
}

func (f *FillUnit) startWalk(pageVA uint64, done func(Result)) {
	f.busy++
	f.q.After(f.walkLatency, func() {
		f.busy--
		f.Walks++
		r := f.classify(pageVA)
		if r.Present && f.injector != nil && f.injector.InjectWalkFault(pageVA) {
			r = Result{Fault: vm.FaultAllocOnly}
			f.FaultsInjected++
		}
		if !r.Present {
			f.FaultsDetected++
			if f.tr != nil {
				f.tr.Emit(-1, obs.KWalkFault, -1, pageVA, uint64(r.Fault))
			}
		}
		if len(f.queue) > 0 {
			next := f.queue[0]
			f.queue = f.queue[1:]
			f.startWalk(next.pageVA, next.done)
		}
		done(r)
	})
}
