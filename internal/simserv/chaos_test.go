package simserv

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"gpues/internal/sim"
	"gpues/internal/simserv/queue"
)

// The fabric chaos campaign: a seeded schedule of worker kills, lease
// expiries, voluntary preemptions, duplicate (zombie) completion
// attempts and one corrupted checkpoint, driven against a coordinator
// under a fake clock with real simulations underneath. The acceptance
// bar: every job completes exactly once, every completed job reports
// the bit-identical cycle count of an uninterrupted sequential
// reference run, the doomed job dead-letters with its stall report,
// and the whole campaign is deterministic — the same seed replays to
// the same counters.

// campaignRNG is a tiny deterministic LCG; the campaign must not
// depend on the global math/rand state.
type campaignRNG struct{ s uint64 }

func (r *campaignRNG) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *campaignRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// chaosWorker is one simulated fabric worker: at most one claim with
// its in-memory simulator. A "kill" drops the simulator but remembers
// the lease so the zombie can attempt a stale completion later.
type chaosWorker struct {
	name  string
	claim *ClaimResponse
	sim   *sim.Simulator
}

type zombie struct {
	worker string
	claim  ClaimResponse
	// rounds until the zombie tries its stale (and wrong) completion.
	fuse int
}

type campaignOutcome struct {
	rounds    int
	counters  queue.Counters
	staleHits int // zombie completions fenced with 409
	results   map[string]queue.Result
}

func runCampaign(t *testing.T, seed uint64) campaignOutcome {
	t.Helper()
	h := newHarness(t, func(o *Options) {
		o.Queue.Lease = int64(3 * time.Second)
		o.Queue.MaxRetries = 4
		o.Queue.Backoff = int64(time.Millisecond)
		o.Queue.Seed = int64(seed)
	})
	rng := &campaignRNG{s: seed}

	specA := JobSpec{Benchmark: "sgemm", Scale: 1}
	specB := JobSpec{Benchmark: "sgemm", Scale: 1, Scheme: "replay-queue"}
	specC := JobSpec{Benchmark: "mri-q", Scale: 1}
	// Doomed: MaxCycles far below completion stalls every attempt.
	specStall := JobSpec{Benchmark: "sgemm", Scale: 1, MaxCycles: 2000}

	submissions := []struct {
		id   string
		spec JobSpec
	}{
		{"job-a1", specA}, {"job-b1", specB}, {"job-c1", specC},
		{"job-a2", specA}, // coalesces onto job-a1 or hits its cache
		{"job-b2", specB},
		{"job-doom", specStall},
	}
	for _, s := range submissions {
		h.submit(t, SubmitRequest{ID: s.id, Spec: s.spec})
	}

	workers := []*chaosWorker{{name: "cw1"}, {name: "cw2"}, {name: "cw3"}}
	var zombies []*zombie
	staleHits := 0
	corruptedOnce := false

	const slice = 25_000
	allTerminal := func() bool {
		jobs, err := h.cl.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if j.State != "done" && j.State != "dead" {
				return false
			}
		}
		return true
	}

	round := 0
	for ; round < 400 && !allTerminal(); round++ {
		for _, w := range workers {
			if w.claim == nil {
				claim, ok, err := h.cl.Claim(w.name)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				cfg, lspec, err := claim.Spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				s, err := sim.New(cfg, lspec)
				if err != nil {
					t.Fatal(err)
				}
				if claim.Checkpoint != "" {
					if err := s.RestoreFile(claim.Checkpoint); err != nil {
						// Corrupt or diverged checkpoint: the restore
						// audit caught it; fail and retry from scratch.
						if _, ferr := h.cl.Fail(FailRequest{
							JobID: claim.JobID, Worker: w.name, Token: claim.Token,
							Error: fmt.Sprintf("restore: %v", err),
						}); ferr != nil {
							t.Fatalf("fail report: %v", ferr)
						}
						continue
					}
				} else if err := s.Start(); err != nil {
					t.Fatal(err)
				}
				w.claim, w.sim = &claim, s
				continue
			}

			switch roll := rng.intn(100); {
			case roll < 70: // make progress for one slice
				d, err := h.cl.Renew(w.claim.JobID, w.name, w.claim.Token)
				if err != nil {
					t.Fatal(err)
				}
				if d == DirectiveLost {
					// The reaper reassigned the job while this worker
					// dawdled; drop the run.
					w.claim, w.sim = nil, nil
					continue
				}
				reached, err := w.sim.StepTo(w.sim.Cycle() + slice)
				if err != nil {
					req := FailRequest{JobID: w.claim.JobID, Worker: w.name, Token: w.claim.Token, Error: err.Error()}
					var stall *sim.StallError
					if errors.As(err, &stall) {
						req.Error = "stall: " + stall.Report.Reason
						req.Stall = stall.Report.String()
					}
					if _, ferr := h.cl.Fail(req); ferr != nil && !IsStatus(ferr, http.StatusConflict) {
						t.Fatalf("fail report: %v", ferr)
					}
					w.claim, w.sim = nil, nil
					continue
				}
				if !reached {
					res, err := w.sim.Run()
					if err != nil {
						t.Fatalf("finalize %s: %v", w.claim.JobID, err)
					}
					err = h.cl.Complete(CompleteRequest{
						JobID: w.claim.JobID, Worker: w.name, Token: w.claim.Token,
						Cycles: res.Cycles, Committed: res.Committed,
					})
					if err != nil && !IsStatus(err, http.StatusConflict) {
						t.Fatalf("complete: %v", err)
					}
					w.claim, w.sim = nil, nil
				}
			case roll < 80: // SIGKILL: drop everything, leave a zombie
				zombies = append(zombies, &zombie{worker: w.name, claim: *w.claim, fuse: 2 + rng.intn(3)})
				w.claim, w.sim = nil, nil
			case roll < 90: // voluntary preemption (migration)
				dir := fmt.Sprintf("%s/%s-r%d", h.coord.SpoolDir(), w.claim.JobID, round)
				path, err := w.sim.WriteCheckpoint(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !corruptedOnce {
					// Sabotage the first spooled checkpoint: the next
					// claimant's restore must detect it and recover.
					corruptedOnce = true
					if err := os.Truncate(path, 100); err != nil {
						t.Fatal(err)
					}
				}
				err = h.cl.Preempt(PreemptRequest{
					JobID: w.claim.JobID, Worker: w.name, Token: w.claim.Token, Checkpoint: path,
				})
				if err != nil && !IsStatus(err, http.StatusConflict) {
					t.Fatalf("preempt: %v", err)
				}
				w.claim, w.sim = nil, nil
			default: // dawdle: no renew, the lease ages toward expiry
			}
		}

		// Zombies report back with stale tokens and garbage cycles; the
		// fencing token must reject every one, or the bit-exactness
		// assertion below would fail. A zombie only fires once its
		// lease has actually been superseded (reaped or reclaimed) — a
		// kill is invisible to the fabric until the lease lapses, and a
		// genuinely dead process never reports at all.
		live := zombies[:0]
		for _, z := range zombies {
			z.fuse--
			if z.fuse > 0 {
				live = append(live, z)
				continue
			}
			st, err := h.cl.Job(z.claim.JobID)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == "leased" && st.Worker == z.worker && st.Attempts == z.claim.Attempt {
				// The abandoned lease is still live; wait for the reaper.
				z.fuse = 1
				live = append(live, z)
				continue
			}
			err = h.cl.Complete(CompleteRequest{
				JobID: z.claim.JobID, Worker: z.worker, Token: z.claim.Token, Cycles: 1,
			})
			if err == nil {
				t.Fatalf("zombie completion of %s with stale token was accepted", z.claim.JobID)
			}
			if IsStatus(err, http.StatusConflict) {
				staleHits++
			}
		}
		zombies = live

		h.advance(time.Duration(500+rng.intn(1500)) * time.Millisecond)
	}

	if !allTerminal() {
		t.Fatalf("campaign did not converge in %d rounds", round)
	}
	jobs, err := h.cl.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	out := campaignOutcome{rounds: round, staleHits: staleHits, results: map[string]queue.Result{}}
	for _, j := range jobs {
		if j.Result != nil {
			out.results[j.ID] = *j.Result
		}
	}
	stats, err := h.cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	out.counters = stats.Counters

	// Verdicts. The doomed job dead-letters carrying its stall report;
	// everything else completes with bit-identical reference cycles.
	refs := map[string]JobSpec{
		"job-a1": specA, "job-a2": specA,
		"job-b1": specB, "job-b2": specB,
		"job-c1": specC,
	}
	refCycles := map[string]int64{}
	for _, j := range jobs {
		switch j.ID {
		case "job-doom":
			if j.State != "dead" {
				t.Fatalf("doomed job = %+v, want dead", j)
			}
			if !strings.Contains(j.StallReport, "max-cycles") {
				t.Fatalf("dead letter without max-cycles stall report: %q", j.StallReport)
			}
			if j.Retries != 5 { // MaxRetries 4 + the burying failure
				t.Fatalf("doomed retries = %d, want 5", j.Retries)
			}
		default:
			spec := refs[j.ID]
			key, _ := spec.Key()
			if _, ok := refCycles[key]; !ok {
				cfg, lspec, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := sim.RunSpec(cfg, lspec)
				if err != nil {
					t.Fatal(err)
				}
				refCycles[key] = ref.Cycles
			}
			if j.State != "done" || j.Result == nil {
				t.Fatalf("job %s = %+v, want done", j.ID, j)
			}
			if j.Result.Cycles != refCycles[key] {
				t.Fatalf("job %s: fabric cycles %d != sequential reference %d (exactly-once or determinism broken)",
					j.ID, j.Result.Cycles, refCycles[key])
			}
		}
	}
	// Exactly once: completions count every done job (primaries,
	// coalesced followers and cache hits alike), and each job holds
	// exactly one result.
	if out.counters.Completed != 5 {
		t.Fatalf("completed = %d, want 5: %+v", out.counters.Completed, out.counters)
	}
	if out.counters.DeadLetters != 1 {
		t.Fatalf("dead letters = %d, want 1 (job-doom)", out.counters.DeadLetters)
	}
	return out
}

func TestFabricChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	out := runCampaign(t, 1234)
	// The seeded schedule must actually have exercised the failure
	// paths, or the campaign proves nothing.
	if out.counters.LeaseExpiries == 0 {
		t.Error("campaign produced no lease expiries")
	}
	if out.counters.Preemptions == 0 || out.counters.Resumes == 0 {
		t.Errorf("campaign produced no preemption/resume: %+v", out.counters)
	}
	if out.staleHits == 0 && out.counters.StaleOps == 0 {
		t.Error("campaign produced no fenced stale operations")
	}
	if out.counters.Retries == 0 {
		t.Error("campaign produced no retries")
	}
	t.Logf("campaign: %d rounds, counters %+v, %d zombie completions fenced",
		out.rounds, out.counters, out.staleHits)
}

// The campaign is a deterministic function of its seed: replaying it
// must land on identical counters and identical per-job results.
func TestFabricChaosCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	a := runCampaign(t, 99)
	b := runCampaign(t, 99)
	if a.counters != b.counters {
		t.Fatalf("same seed, different counters:\n%+v\n%+v", a.counters, b.counters)
	}
	if a.rounds != b.rounds || a.staleHits != b.staleHits {
		t.Fatalf("same seed, different schedule: rounds %d/%d stale %d/%d",
			a.rounds, b.rounds, a.staleHits, b.staleHits)
	}
	for id, ra := range a.results {
		if rb, ok := b.results[id]; !ok || ra.Cycles != rb.Cycles || ra.Worker != rb.Worker {
			t.Fatalf("job %s diverged between replays: %+v vs %+v", id, ra, b.results[id])
		}
	}
}
