package sm

import (
	"fmt"
	"testing"

	"gpues/internal/cache"
	"gpues/internal/clock"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/tlb"
	"gpues/internal/vm"
)

// ---- test harness -----------------------------------------------------

// harness wires one SM to a real L1/L2/TLB/fill-unit chain with a
// controllable set of faulting pages and a manually-resolved fault sink.
type harness struct {
	t     *testing.T
	q     *clock.Queue
	cfg   config.Config
	sm    *SM
	sink  *fakeSink
	src   *fakeSource
	fault map[uint64]vm.FaultKind // pages that fault until resolved
	ev    map[string]int64        // "kind:tIdx" -> cycle (warp 0)
	evs   []string
}

type fakeSink struct {
	h       *harness
	raised  []uint64
	pending []func()
	pos     int
}

func (fs *fakeSink) RaiseFault(pageVA uint64, kind vm.FaultKind, smID int, resolved func()) int {
	fs.raised = append(fs.raised, pageVA)
	page := pageVA
	fs.pending = append(fs.pending, func() {
		delete(fs.h.fault, page)
		resolved()
	})
	fs.pos++
	return fs.pos
}

// resolveAll resolves every pending fault after delay cycles.
func (fs *fakeSink) resolveAll(delay int64) {
	ps := fs.pending
	fs.pending = nil
	fs.h.q.After(delay, func() {
		for _, p := range ps {
			p()
		}
	})
}

type fakeSource struct {
	blocks []*emu.BlockTrace
	next   int
	done   int
}

func (fs *fakeSource) NextBlock(smID int) (*emu.BlockTrace, bool) {
	if fs.next >= len(fs.blocks) {
		return nil, false
	}
	bt := fs.blocks[fs.next]
	fs.next++
	return bt, true
}
func (fs *fakeSource) BlockDone(smID, blockID int) { fs.done++ }
func (fs *fakeSource) PendingBlocks() int          { return len(fs.blocks) - fs.next }

type nullMover struct{ q *clock.Queue }

func (m nullMover) Move(bytes int, done func()) { m.q.After(10, done) }

func newHarness(t *testing.T, scheme config.Scheme, blocks []*emu.BlockTrace, launch *kernel.Launch) *harness {
	return newHarnessCfg(t, scheme, blocks, launch, nil)
}

// newHarnessCfg lets a test adjust the configuration before the SM is
// prepared and filled.
func newHarnessCfg(t *testing.T, scheme config.Scheme, blocks []*emu.BlockTrace,
	launch *kernel.Launch, mutate func(*config.Config)) *harness {
	t.Helper()
	cfg := config.Default()
	cfg.Scheme = scheme
	if mutate != nil {
		mutate(&cfg)
	}
	cfg.System.NumSMs = 1
	h := &harness{
		t:     t,
		q:     clock.New(),
		cfg:   cfg,
		fault: map[uint64]vm.FaultKind{},
		ev:    map[string]int64{},
	}
	h.sink = &fakeSink{h: h}
	h.src = &fakeSource{blocks: blocks}

	fu, err := tlb.NewFillUnit(h.q, cfg.System.PTWalkers, int64(cfg.System.WalkLatency),
		func(pageVA uint64) tlb.Result {
			if k, ok := h.fault[pageVA]; ok {
				return tlb.Result{Fault: k}
			}
			return tlb.Result{Present: true}
		})
	if err != nil {
		t.Fatal(err)
	}
	l2tlb, err := tlb.New(tlb.Config{Name: "l2tlb", Entries: 1024, Ways: 8, MSHRs: 128, Latency: 70},
		cfg.System.PageSize, h.q, fu)
	if err != nil {
		t.Fatal(err)
	}
	l1tlb, err := tlb.New(tlb.Config{Name: "l1tlb", Entries: 32, Ways: 8, Latency: 1},
		cfg.System.PageSize, h.q, l2tlb)
	if err != nil {
		t.Fatal(err)
	}
	l2be := &memBackend{q: h.q, latency: 70}
	l1, err := cache.New(cache.Config{Name: "l1", SizeKB: 32, Ways: 4, LineB: 128, MSHRs: 32,
		Latency: 40, Policy: cache.WriteThrough}, h.q, l2be)
	if err != nil {
		t.Fatal(err)
	}

	h.sm = New(0, &h.cfg, h.q, l1, l1tlb, h.sink, h.src, nullMover{h.q})
	h.sm.OnEvent = func(kind string, warp int, tIdx int32, cycle int64) {
		if warp == 0 {
			key := fmt.Sprintf("%s:%d", kind, tIdx)
			if _, seen := h.ev[key]; !seen {
				h.ev[key] = cycle
			}
			h.evs = append(h.evs, fmt.Sprintf("%s@%d", key, cycle))
		}
	}
	h.sm.PrepareLaunch(launch)
	h.sm.FillBlocks()
	return h
}

type memBackend struct {
	q       *clock.Queue
	latency int64
}

func (b *memBackend) Fetch(addr uint64, done func()) bool { b.q.After(b.latency, done); return true }
func (b *memBackend) Write(addr uint64, done func()) bool { b.q.After(b.latency, done); return true }

// run drives the SM until it is done or maxCycles pass.
func (h *harness) run(maxCycles int64) {
	for h.q.Now() < maxCycles {
		if h.sm.Done() {
			return
		}
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, ok := h.q.NextEvent()
			if !ok {
				h.t.Fatalf("deadlock at cycle %d (events: %v)", h.q.Now(), h.evs)
			}
			h.q.SkipTo(next)
		}
	}
	h.t.Fatalf("SM did not finish within %d cycles", maxCycles)
}

// at returns the recorded cycle of an event, failing if absent.
func (h *harness) at(kind string, tIdx int) int64 {
	c, ok := h.ev[fmt.Sprintf("%s:%d", kind, tIdx)]
	if !ok {
		h.t.Fatalf("event %s:%d never happened; log: %v", kind, tIdx, h.evs)
	}
	return c
}

// ---- the paper's example program (Figure 3) ---------------------------

// figure3Trace builds the 4-instruction example of Section 2.5 plus an
// exit:
//
//	A (0): R3 <- ld [R2]
//	B (1): R9 <- sub R9, 4
//	C (2): R8 <- ld [R4]
//	D (3): R4 <- add R7, 8
//	  (4): exit
//
// A and C load from distinct pages so their faults are independent.
func figure3Trace() (*emu.BlockTrace, *kernel.Launch, []isa.Instruction) {
	code := make([]isa.Instruction, 5)
	ldA := isa.NewInstruction(isa.OpLdGlobal)
	ldA.Dst, ldA.SrcA, ldA.Size = 3, 2, 8
	code[0] = ldA
	sub := isa.NewInstruction(isa.OpISub)
	sub.Dst, sub.SrcA, sub.SrcB = 9, 9, isa.RZ
	code[1] = sub
	ldC := isa.NewInstruction(isa.OpLdGlobal)
	ldC.Dst, ldC.SrcA, ldC.Size = 8, 4, 8
	code[2] = ldC
	add := isa.NewInstruction(isa.OpIAdd)
	add.Dst, add.SrcA, add.SrcB, add.Imm = 4, 7, isa.RZ, 8
	code[3] = add
	code[4] = isa.NewInstruction(isa.OpExit)

	full := ^uint32(0)
	insts := []emu.TraceInst{
		{PC: 0, Static: &code[0], Mask: full, Lines: []uint64{0x10000}},
		{PC: 1, Static: &code[1], Mask: full},
		{PC: 2, Static: &code[2], Mask: full, Lines: []uint64{0x20000}},
		{PC: 3, Static: &code[3], Mask: full},
		{PC: 4, Static: &code[4], Mask: full},
	}
	bt := &emu.BlockTrace{BlockID: 0, Warps: []emu.WarpTrace{{WarpID: 0, Insts: insts}}}
	k := &kernel.Kernel{Name: "fig3", Code: code, RegsPerThread: 16}
	launch := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	return bt, launch, code
}

const (
	iA = 0
	iB = 1
	iC = 2
	iD = 3
)

// TestTimelineBaseline reproduces the orderings of Figure 3: B and D
// issue right behind their predecessors (source scoreboards release at
// operand read) and commit out of order, before the loads.
func TestTimelineBaseline(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.Baseline, []*emu.BlockTrace{bt}, launch)
	h.run(100000)

	if got := h.at("issue", iB) - h.at("issue", iA); got != 1 {
		t.Errorf("B issued %d cycles after A, want 1", got)
	}
	// D's WAR on R4 clears at C's operand read: at most a couple of
	// cycles after C issues.
	if got := h.at("issue", iD) - h.at("issue", iC); got > 3 {
		t.Errorf("D issued %d cycles after C, want <= 3 (early source release)", got)
	}
	// Out-of-order commit: B and D retire before the loads.
	if h.at("commit", iB) >= h.at("commit", iA) {
		t.Error("B must commit before load A (out-of-order commit)")
	}
	if h.at("commit", iD) >= h.at("commit", iC) {
		t.Error("D must commit before load C")
	}
}

// TestTimelineWarpDisableCommit reproduces Figure 4: after fetching load
// A the warp fetches nothing until A commits.
func TestTimelineWarpDisableCommit(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.WarpDisableCommit, []*emu.BlockTrace{bt}, launch)
	h.run(100000)

	if h.at("fetch", iB) < h.at("commit", iA) {
		t.Errorf("B fetched at %d, before A committed at %d", h.at("fetch", iB), h.at("commit", iA))
	}
	if h.at("fetch", iD) < h.at("commit", iC) {
		t.Errorf("D fetched before C committed")
	}
}

// TestTimelineWarpDisableLastCheck: fetch resumes at A's last TLB check,
// strictly before A's commit (the data access is still in flight).
func TestTimelineWarpDisableLastCheck(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.WarpDisableLastCheck, []*emu.BlockTrace{bt}, launch)
	h.run(100000)

	if h.at("fetch", iB) < h.at("lastcheck", iA) {
		t.Errorf("B fetched at %d, before A's last TLB check at %d",
			h.at("fetch", iB), h.at("lastcheck", iA))
	}
	if h.at("fetch", iB) >= h.at("commit", iA) {
		t.Errorf("B fetched at %d, not before A's commit at %d (should beat wd-commit)",
			h.at("fetch", iB), h.at("commit", iA))
	}
}

// TestTimelineReplayQueue reproduces Figure 6: A, B, C issue back to
// back, but D's WAR on R4 holds until C's last TLB check.
func TestTimelineReplayQueue(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.ReplayQueue, []*emu.BlockTrace{bt}, launch)
	h.run(100000)

	if got := h.at("issue", iB) - h.at("issue", iA); got != 1 {
		t.Errorf("B issued %d cycles after A, want 1 (no instruction barrier)", got)
	}
	if h.at("issue", iD) < h.at("lastcheck", iC) {
		t.Errorf("D issued at %d, before C's last TLB check at %d (RAW-on-replay guard)",
			h.at("issue", iD), h.at("lastcheck", iC))
	}
	if h.at("commit", iB) >= h.at("commit", iA) {
		t.Error("B must still commit out of order")
	}
}

// TestTimelineOperandLog reproduces Figure 7: the log restores the
// baseline's early source release, so D issues right after C's operand
// read — long before C's last TLB check.
func TestTimelineOperandLog(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.OperandLog, []*emu.BlockTrace{bt}, launch)
	h.run(100000)

	if got := h.at("issue", iD) - h.at("issue", iC); got > 3 {
		t.Errorf("D issued %d cycles after C, want <= 3 (log enables early release)", got)
	}
	if h.at("issue", iD) >= h.at("lastcheck", iC) {
		t.Error("operand log must not delay D to C's last TLB check")
	}
}

// ---- fault behaviour ---------------------------------------------------

// TestFaultSquashAndReplay: load C faults; it must be squashed and
// replayed after resolution, while committed instructions (B, D under
// operand log) are not replayed.
func TestFaultSquashAndReplay(t *testing.T) {
	for _, scheme := range []config.Scheme{
		config.WarpDisableCommit, config.WarpDisableLastCheck,
		config.ReplayQueue, config.OperandLog,
	} {
		t.Run(scheme.String(), func(t *testing.T) {
			bt, launch, _ := figure3Trace()
			h := newHarness(t, scheme, []*emu.BlockTrace{bt}, launch)
			h.fault[0x20000] = vm.FaultMigrate // C's page

			// Drive until the fault is raised, then resolve it.
			for len(h.sink.pending) == 0 {
				if !h.sm.Idle() {
					h.sm.Tick()
					h.q.Step()
				} else {
					next, ok := h.q.NextEvent()
					if !ok {
						t.Fatalf("deadlock before fault; log %v", h.evs)
					}
					h.q.SkipTo(next)
				}
				if h.q.Now() > 100000 {
					t.Fatal("fault never raised")
				}
			}
			h.sink.resolveAll(1000)
			h.run(200000)

			if h.at("squash", iC) == 0 {
				t.Error("C never squashed")
			}
			st := h.sm.Stats()
			if st.Squashed != 1 {
				t.Errorf("squashed = %d, want 1", st.Squashed)
			}
			if st.Replays != 1 {
				t.Errorf("replays = %d, want 1 (sparse replay: only C)", st.Replays)
			}
			// All five instructions committed exactly once.
			if st.Committed != 5 {
				t.Errorf("committed = %d, want 5", st.Committed)
			}
			// The replay of C must come after resolution.
			if h.at("commit", iC) < h.at("squash", iC) {
				t.Error("C committed before its squash resolved")
			}
		})
	}
}

// TestBaselineFaultStalls: under the baseline the faulting load is never
// squashed; it completes after resolution.
func TestBaselineFaultStalls(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.Baseline, []*emu.BlockTrace{bt}, launch)
	h.fault[0x20000] = vm.FaultMigrate

	for len(h.sink.pending) == 0 {
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, ok := h.q.NextEvent()
			if !ok {
				t.Fatal("deadlock before fault")
			}
			h.q.SkipTo(next)
		}
	}
	h.sink.resolveAll(5000)
	h.run(200000)

	st := h.sm.Stats()
	if st.Squashed != 0 || st.Replays != 0 {
		t.Errorf("baseline squashed=%d replays=%d, want 0", st.Squashed, st.Replays)
	}
	if st.Committed != 5 {
		t.Errorf("committed = %d, want 5", st.Committed)
	}
	// The fault cost is visible in C's commit time.
	if h.at("commit", iC) < 5000 {
		t.Errorf("C committed at %d, before the fault resolved", h.at("commit", iC))
	}
}

// TestWarpDisableSingleInFlight: under wd-commit, when C faults it is
// the only in-flight instruction of the warp.
func TestWarpDisableSingleInFlight(t *testing.T) {
	bt, launch, _ := figure3Trace()
	h := newHarness(t, config.WarpDisableCommit, []*emu.BlockTrace{bt}, launch)
	h.fault[0x10000] = vm.FaultMigrate // A's page
	var inFlightAtSquash int
	h.sm.OnEvent = func(kind string, warp int, tIdx int32, cycle int64) {
		if kind == "squash" {
			// The squash event fires while the faulting instruction
			// still counts as in flight; nothing else may be.
			inFlightAtSquash = h.sm.warps[0].inFlight
		}
	}
	for len(h.sink.pending) == 0 {
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, _ := h.q.NextEvent()
			h.q.SkipTo(next)
		}
	}
	h.sink.resolveAll(100)
	h.run(200000)
	if inFlightAtSquash != 1 {
		t.Errorf("in-flight at squash = %d, want 1 (only the faulting instruction)", inFlightAtSquash)
	}
}

// TestOperandLogBackpressure: a one-entry log partition forces memory
// instructions of a block to issue one at a time.
func TestOperandLogBackpressure(t *testing.T) {
	bt, launch, _ := figure3Trace()
	// Shrink the log so each block partition holds a single entry
	// (16 resident blocks, 16 entries total).
	h := newHarnessCfg(t, config.OperandLog, []*emu.BlockTrace{bt}, launch,
		func(cfg *config.Config) {
			cfg.SM.OperandLog = config.OperandLogConfig{SizeKB: 4, EntryBytes: 256}
		})
	h.run(200000)
	// With one entry, C cannot issue until A's entry frees at A's last
	// TLB check.
	if h.at("issue", iC) < h.at("lastcheck", iA) {
		t.Errorf("C issued at %d before A's last check at %d despite a full log",
			h.at("issue", iC), h.at("lastcheck", iA))
	}
	if h.sm.Stats().IssueStallLog == 0 {
		t.Error("no log-full stalls recorded")
	}
}

// TestBlockSwitchingLifecycle: a fault above the threshold switches the
// block out; a pending block runs; the faulted block restores and
// finishes.
func TestBlockSwitchingLifecycle(t *testing.T) {
	bt1, launch, _ := figure3Trace()
	bt2, _, _ := figure3Trace()
	bt2.BlockID = 1
	// Block 2's loads hit different, non-faulting pages.
	bt2.Warps[0].Insts[0].Lines = []uint64{0x50000}
	bt2.Warps[0].Insts[2].Lines = []uint64{0x60000}
	launch.Grid = kernel.Dim3{X: 2}

	// Occupancy 1 (one resident block) so the second block only runs
	// via switching.
	h := newHarnessCfg(t, config.ReplayQueue, []*emu.BlockTrace{bt1, bt2}, launch,
		func(cfg *config.Config) {
			cfg.Scheduler = config.SchedulerConfig{
				Enabled:         true,
				MaxExtraBlocks:  4,
				SwitchThreshold: 0,
			}
			cfg.SM.MaxThreadBlocks = 1
		})
	h.fault[0x10000] = vm.FaultMigrate

	for len(h.sink.pending) == 0 {
		if !h.sm.Idle() {
			h.sm.Tick()
			h.q.Step()
		} else {
			next, ok := h.q.NextEvent()
			if !ok {
				t.Fatal("deadlock before fault")
			}
			h.q.SkipTo(next)
		}
	}
	h.sink.resolveAll(20000)
	h.run(500000)

	st := h.sm.Stats()
	if st.SwitchesOut < 1 {
		t.Errorf("switches out = %d, want >= 1", st.SwitchesOut)
	}
	if st.SwitchesIn < 1 {
		t.Errorf("switches in = %d, want >= 1 (faulted block restored)", st.SwitchesIn)
	}
	if h.src.done != 2 {
		t.Errorf("blocks completed = %d, want 2", h.src.done)
	}
	if st.ContextBytes == 0 {
		t.Error("context switching moved no bytes")
	}
}

// TestOccupancyPartitioning checks PrepareLaunch's occupancy and log
// partitioning.
func TestOccupancyPartitioning(t *testing.T) {
	_, launch, _ := figure3Trace()
	cfg := config.Default()
	cfg.Scheme = config.OperandLog
	q := clock.New()
	m := New(0, &cfg, q, nil, nil, nil, nil, nil)
	m.PrepareLaunch(launch)
	// 32-thread blocks, 16 regs: occupancy capped by MaxThreadBlocks=16.
	if m.Occupancy() != 16 {
		t.Errorf("occupancy = %d, want 16", m.Occupancy())
	}
	// 16KB log / 256B entries = 64 entries / 16 blocks = 4 each.
	if m.logPerBlock != 4 {
		t.Errorf("log per block = %d, want 4", m.logPerBlock)
	}
}
