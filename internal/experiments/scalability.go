package experiments

import (
	"fmt"
	"sort"

	"gpues/internal/config"
	"gpues/internal/workloads"
)

// This file implements the Section 5.5 scalability discussion as
// experiments: how the scheme costs and the two use cases respond to
// the number of SMs — and the ablation sweeps over the design
// parameters DESIGN.md calls out (switch threshold, extra block budget,
// handler concurrency, fault handling granularity).

// smCounts are the GPU sizes swept by the scalability experiments.
var smCounts = []int{4, 8, 16, 32}

// SchemeScalability measures the performance of the preemptible schemes
// relative to the baseline as the GPU grows, on a fixed-size workload.
// Section 5.5: when the workload does not scale with the GPU (occupancy
// drops), the gap between the schemes widens.
func SchemeScalability(opt Options) (*Result, error) {
	opt = opt.normalize()
	bench := "lbm" // the scheme-sensitive benchmark
	if len(opt.Benchmarks) == 1 {
		bench = opt.Benchmarks[0]
	}
	schemes := []config.Scheme{
		config.Baseline, config.WarpDisableCommit,
		config.WarpDisableLastCheck, config.ReplayQueue,
	}
	var jobs []runJob
	for _, sms := range smCounts {
		for _, s := range schemes {
			cfg := config.Default()
			cfg.System.NumSMs = sms
			cfg.Scheme = s
			jobs = append(jobs, runJob{
				bench: fmt.Sprintf("%d-SMs", sms),
				col:   s.String(),
				cfg:   cfg,
				place: workloads.Resident(),
			})
		}
	}
	// All rows run the same benchmark; runJob.bench doubles as the row
	// label, so resolve the real benchmark in a custom runner.
	cycles, err := runAllNamed(opt, "scal-schemes", bench, jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "scal-schemes",
		Title:   fmt.Sprintf("Scheme cost vs. GPU size (%s, fixed dataset)", bench),
		Metric:  "normalized to baseline at the same SM count, higher is better",
		Columns: []string{"wd-commit", "wd-lastcheck", "replay-queue"},
		Geomean: map[string]float64{},
	}
	for _, sms := range smCounts {
		label := fmt.Sprintf("%d-SMs", sms)
		row := Row{Benchmark: label, Values: map[string]float64{}}
		base := cycles[label]["baseline"]
		for _, c := range res.Columns {
			if v := cycles[label][c]; v > 0 && base > 0 {
				row.Values[c] = float64(base) / float64(v)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for _, c := range res.Columns {
		res.Geomean[c] = geomean(res.Rows, c)
	}
	return res, nil
}

// LocalHandlingScalability measures use case 2's speedup as the GPU
// grows. Section 5.5: local handling improves with the number of SMs,
// because it decreases the contention of the CPU and the interconnect.
func LocalHandlingScalability(opt Options) (*Result, error) {
	opt = opt.normalize()
	bench := "halloc-spree"
	if len(opt.Benchmarks) == 1 {
		bench = opt.Benchmarks[0]
	}
	var jobs []runJob
	for _, sms := range smCounts {
		cpu := config.Default()
		cpu.System.NumSMs = sms
		cpu.Scheme = config.ReplayQueue
		jobs = append(jobs, runJob{bench: fmt.Sprintf("%d-SMs", sms), col: "cpu", cfg: cpu, place: workloads.LazyOutput()})
		gpu := cpu
		gpu.Local.Enabled = true
		jobs = append(jobs, runJob{bench: fmt.Sprintf("%d-SMs", sms), col: "gpu-local", cfg: gpu, place: workloads.LazyOutput()})
	}
	cycles, err := runAllNamed(opt, "scal-local", bench, jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "scal-local",
		Title:   fmt.Sprintf("Local fault handling vs. GPU size (%s)", bench),
		Metric:  "speedup of GPU-local over CPU handling, higher is better",
		Columns: []string{"speedup"},
		Geomean: map[string]float64{},
	}
	for _, sms := range smCounts {
		label := fmt.Sprintf("%d-SMs", sms)
		row := Row{Benchmark: label, Values: map[string]float64{}}
		if c, g := cycles[label]["cpu"], cycles[label]["gpu-local"]; c > 0 && g > 0 {
			row.Values["speedup"] = float64(c) / float64(g)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Geomean["speedup"] = geomean(res.Rows, "speedup")
	return res, nil
}

// runAllNamed is runAll for jobs whose bench field is a row label
// rather than a workload name: every job runs `bench`.
func runAllNamed(opt Options, fig, bench string, jobs []runJob) (map[string]map[string]int64, error) {
	for i := range jobs {
		jobs[i].realBench = bench
	}
	return runAll(opt, fig, jobs)
}

// Ablations runs the design-parameter sweeps: each Result isolates one
// knob of the paper's mechanisms.
func Ablations(opt Options) ([]*Result, error) {
	opt = opt.normalize()
	var out []*Result

	// 1. Switch threshold (use case 1): how aggressive should the local
	// scheduler be about switching on a queued fault?
	thr, err := sweep(opt, "switch-threshold",
		"Block switching threshold (sgemm, demand paging, NVLink)",
		"speedup over no-switching", "sgemm", workloads.DemandPaging(),
		[]int{0, 1, 2, 4},
		func(cfg *config.Config, v int) {
			cfg.Scheme = config.ReplayQueue
			cfg.DemandPaging = true
			cfg.Scheduler.Enabled = true
			cfg.Scheduler.SwitchThreshold = v
		},
		func(cfg *config.Config) {
			cfg.Scheme = config.ReplayQueue
			cfg.DemandPaging = true
		})
	if err != nil {
		return nil, err
	}
	out = append(out, thr)

	// 2. Extra block budget (use case 1): the paper allows 4 off-chip
	// blocks per SM.
	extra, err := sweep(opt, "extra-blocks",
		"Extra off-chip blocks per SM (sgemm, demand paging, NVLink)",
		"speedup over no-switching", "sgemm", workloads.DemandPaging(),
		[]int{1, 2, 4, 8},
		func(cfg *config.Config, v int) {
			cfg.Scheme = config.ReplayQueue
			cfg.DemandPaging = true
			cfg.Scheduler.Enabled = true
			cfg.Scheduler.MaxExtraBlocks = v
		},
		func(cfg *config.Config) {
			cfg.Scheme = config.ReplayQueue
			cfg.DemandPaging = true
		})
	if err != nil {
		return nil, err
	}
	out = append(out, extra)

	// 3. GPU handler concurrency (use case 2): how much parallelism the
	// system-level synchronization permits.
	conc, err := sweep(opt, "handler-concurrency",
		"GPU-local handler concurrency (halloc-spree, lazy heap, NVLink)",
		"speedup over CPU handling", "halloc-spree", workloads.LazyOutput(),
		[]int{1, 2, 3, 4, 8},
		func(cfg *config.Config, v int) {
			cfg.Scheme = config.ReplayQueue
			cfg.Local.Enabled = true
			cfg.Local.Concurrency = v
		},
		func(cfg *config.Config) {
			cfg.Scheme = config.ReplayQueue
		})
	if err != nil {
		return nil, err
	}
	out = append(out, conc)

	// 4. Fault handling granularity (Section 5.1 fixes 64 KB): the
	// prefetch-vs-overfetch trade-off of region size.
	gran, err := sweep(opt, "fault-granularity",
		"Fault handling granularity in KB (stencil, demand paging, NVLink)",
		"speedup over 64 KB handling", "stencil", workloads.DemandPaging(),
		[]int{16, 64, 256},
		func(cfg *config.Config, v int) {
			cfg.Scheme = config.ReplayQueue
			cfg.DemandPaging = true
			cfg.System.FaultGranularity = v * 1024
		},
		nil)
	if err != nil {
		return nil, err
	}
	// Normalize granularity rows to the 64 KB row instead of a base run.
	if base := findRow(gran, "64"); base > 0 {
		for i := range gran.Rows {
			gran.Rows[i].Values["speedup"] = base / gran.Rows[i].Values["cycles"]
			delete(gran.Rows[i].Values, "cycles")
		}
		gran.Columns = []string{"speedup"}
		gran.Geomean = map[string]float64{"speedup": geomean(gran.Rows, "speedup")}
	}
	out = append(out, gran)
	return out, nil
}

func findRow(r *Result, label string) float64 {
	for _, row := range r.Rows {
		if row.Benchmark == label {
			return row.Values["cycles"]
		}
	}
	return 0
}

// sweep runs `bench` once per value (plus one base run when baseMut is
// set) and returns speedups vs. the base, or raw cycles when baseMut is
// nil.
func sweep(opt Options, id, title, metric, bench string, place workloads.Placement,
	values []int, mut func(*config.Config, int), baseMut func(*config.Config)) (*Result, error) {
	var jobs []runJob
	for _, v := range values {
		cfg := config.Default()
		mut(&cfg, v)
		jobs = append(jobs, runJob{
			bench:     fmt.Sprintf("%d", v),
			realBench: bench,
			col:       "run",
			cfg:       cfg,
			place:     place,
		})
	}
	if baseMut != nil {
		cfg := config.Default()
		baseMut(&cfg)
		jobs = append(jobs, runJob{bench: "base", realBench: bench, col: "run", cfg: cfg, place: place})
	}
	cycles, err := runAll(opt, id, jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      id,
		Title:   title,
		Metric:  metric,
		Geomean: map[string]float64{},
	}
	labels := make([]string, 0, len(values))
	for _, v := range values {
		labels = append(labels, fmt.Sprintf("%d", v))
	}
	sort.Strings(labels) // stable row order; numeric labels sort well enough for small sweeps
	if baseMut != nil {
		res.Columns = []string{"speedup"}
		base := cycles["base"]["run"]
		for _, v := range values {
			label := fmt.Sprintf("%d", v)
			row := Row{Benchmark: label, Values: map[string]float64{}}
			if c := cycles[label]["run"]; c > 0 && base > 0 {
				row.Values["speedup"] = float64(base) / float64(c)
			}
			res.Rows = append(res.Rows, row)
		}
		res.Geomean["speedup"] = geomean(res.Rows, "speedup")
	} else {
		res.Columns = []string{"cycles"}
		for _, v := range values {
			label := fmt.Sprintf("%d", v)
			row := Row{Benchmark: label, Values: map[string]float64{}}
			row.Values["cycles"] = float64(cycles[label]["run"])
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
