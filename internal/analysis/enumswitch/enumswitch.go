// Package enumswitch checks exhaustiveness of switches over the
// simulator's enum types (obs.Kind, obs.StallReason, fault-lifecycle
// states, ISA opcodes, …). An enum is any defined integer or string
// type with at least two package-level constants of that exact type;
// sentinel members (NumX, xCount, …) are not required.
//
// Only switches WITHOUT a default clause are checked: a default arm is
// an explicit statement that unlisted members are handled (typically a
// panic, which fails loudly instead of silently falling through).
// Adding a new event kind or stall reason therefore either hits a
// default the author wrote on purpose, or trips this analyzer.
package enumswitch

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gpues/internal/analysis"
)

// Analyzer is the enum-exhaustiveness check.
var Analyzer = &analysis.Analyzer{
	Name: "enumswitch",
	Doc:  "flag non-exhaustive switches (without default) over simulator enum types",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				check(pass, sw)
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return // not an enum-style type
	}

	covered := map[string]bool{} // by exact constant value representation
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // default clause present: author handles the rest
		}
		for _, e := range cc.List {
			if etv, ok := pass.TypesInfo.Types[e]; ok && etv.Value != nil {
				covered[etv.Value.ExactString()] = true
			} else {
				return // non-constant case: coverage unknowable
			}
		}
	}

	var missing []string
	seen := map[string]bool{}
	for _, m := range members {
		key := m.Val().ExactString()
		if covered[key] || seen[key] {
			continue
		}
		seen[key] = true
		missing = append(missing, m.Name())
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if p := named.Obj().Pkg(); p != nil && p != pass.Pkg {
		typeName = p.Name() + "." + typeName
	}
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive and has no default: missing %s — a newly added member would silently fall through",
		typeName, strings.Join(missing, ", "))
}

// enumMembers collects the package-level constants of exactly the
// given named type, excluding the count sentinel closing the iota
// block: the highest-valued member whose name says it is a counter
// (NumKinds, NumStallReasons, SRNumSReg, opCount, …).
func enumMembers(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil // built-in type
	}
	scope := pkg.Scope()
	var out []*types.Const
	var maxVal constant.Value
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, c)
		if maxVal == nil || constant.Compare(c.Val(), token.GTR, maxVal) {
			maxVal = c.Val()
		}
	}
	kept := out[:0]
	for _, c := range out {
		if sentinelName(c.Name()) && constant.Compare(c.Val(), token.EQL, maxVal) {
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

// sentinelName recognises the member-count idiom by name; the value
// check in enumMembers (must be the maximum) keeps real members whose
// names merely resemble a counter.
func sentinelName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "num") ||
		strings.HasSuffix(name, "Count") ||
		strings.Contains(name, "Sentinel") ||
		strings.HasPrefix(lower, "max") ||
		strings.HasSuffix(name, "Invalid")
}
