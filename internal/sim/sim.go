// Package sim assembles the full GPU system of Figure 1 — SMs with
// private L1 caches and TLBs, the shared L2 cache and L2 TLB, the fill
// unit, DRAM, the CPU-GPU interconnect, the CPU driver and the
// exception support — and runs one kernel launch to completion,
// cycle by cycle.
package sim

import (
	"fmt"

	"gpues/internal/cache"
	"gpues/internal/chaos"
	"gpues/internal/clock"
	"gpues/internal/config"
	"gpues/internal/core"
	"gpues/internal/dram"
	"gpues/internal/emu"
	"gpues/internal/host"
	"gpues/internal/interconnect"
	"gpues/internal/kernel"
	"gpues/internal/obs"
	"gpues/internal/sm"
	"gpues/internal/tlb"
	"gpues/internal/vm"
)

// LaunchSpec is everything needed to run one kernel: the launch, the
// functional memory holding its data, and the registered virtual
// memory regions with their initial placement.
type LaunchSpec struct {
	Launch  *kernel.Launch
	Memory  *emu.Memory
	Regions []vm.Region
}

// Result summarizes one simulated kernel execution.
type Result struct {
	Cycles int64
	// Per-component statistics.
	SMs        []sm.Stats
	L2         cache.Stats
	L2TLB      tlb.Stats
	DRAM       dram.Stats
	Link       interconnect.Stats
	LinkUtil   float64
	CPUFaults  host.FaultStats
	FaultUnit  core.Stats
	Local      core.LocalStats
	WalkFaults int64
	Walks      int64
	// InjectedFaults counts walk faults a chaos plan injected (included
	// in WalkFaults).
	InjectedFaults int64
	// Exceptions counts device-exception records delivered to the host
	// exception board (a completed run can carry a nonzero count only
	// when the board drained after the grid finished).
	Exceptions int64
	// Flips counts architectural bit flips the resilience campaign
	// injected during functional emulation.
	Flips int64
	// Derived totals.
	Committed int64
	Blocks    int
	// Occupancy aggregates blocks-per-SM across all SMs (they can
	// differ when a launch does not fill the machine). Occupancy is the
	// maximum — the launch's nominal blocks/SM.
	Occupancy     int
	OccupancyMin  int
	OccupancyMean float64
	// Stalls is the GPU-wide stall breakdown (per-SM breakdowns summed).
	Stalls obs.StallBreakdown
	// Metrics is the full registry snapshot: component counters plus the
	// fault-latency and occupancy histograms.
	Metrics obs.Snapshot
	// Series is the sampled telemetry series (a zero view unless
	// Config.SampleEvery was positive).
	Series obs.SeriesView
}

// IPC returns committed warp instructions per cycle across the GPU.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Simulator is a one-shot full-system simulation of a kernel launch.
type Simulator struct {
	cfg  config.Config
	spec LaunchSpec

	q      *clock.Queue
	as     *vm.AddressSpace
	emul   *emu.Emulator
	board  *host.ExcepBoard
	disp   *host.Dispatcher
	fu     *tlb.FillUnit
	l2tlb  *tlb.TLB
	l2     *cache.Cache
	mem    *dram.DRAM
	link   *interconnect.Link
	cpu    *host.FaultService
	funit  *core.FaultUnit
	local  *core.LocalHandler
	sms    []*sm.SM
	l1s    []*cache.Cache
	l1tlbs []*tlb.TLB

	// MaxCycles aborts runaway simulations (hard bound; the progress
	// watchdog normally fires far earlier).
	MaxCycles int64

	// progressWindow is the watchdog window (0 disables the watchdog).
	progressWindow int64

	// chaos, when attached, is the active injection plan; sweepEvery and
	// nextSweep schedule the periodic invariant sweep it enables.
	chaos      *chaos.Plan
	sweepEvery int64
	nextSweep  int64

	// active is the runnable-SM bitset (bit i set when sms[i] may need a
	// tick). Bits are set by each SM's wake hook when an event callback
	// wakes it, and cleared by the main loop when the SM reports itself
	// idle or done, so quiescent SMs cost nothing per cycle.
	active []uint64

	// workers is the tick-phase worker count from Config.Workers; with
	// workers >= 2 StepTo shards the SM tick sweep across that many
	// goroutines (see parallel.go), bit-identical to sequential.
	// ledgers and tickRes are the per-SM staging buffers and outcome
	// slots, allocated on first parallel use and reused across calls.
	workers int
	ledgers []sm.Ledger
	tickRes []uint8
	// parTicks counts tick phases run through the worker barrier
	// (diagnostic; see ParallelTicks).
	parTicks int64

	// reg holds the metrics registry; tracer is the attached event
	// tracer (nil unless AttachTracer was called).
	reg    *obs.Registry
	tracer *obs.Tracer

	// sampler is the interval telemetry sampler (nil unless
	// Config.SampleEvery > 0); nextSample is the cycle at or after
	// which the next sample is due. sink, when attached, receives
	// telemetry snapshots every sinkEvery cycles (see telemetry.go).
	sampler     *obs.Sampler
	nextSample  int64
	sink        TelemetrySink
	sinkEvery   int64
	nextPublish int64

	// CheckpointEvery, when positive with CheckpointDir set, writes a
	// checkpoint into CheckpointDir every that-many cycles (at the next
	// cycle boundary the main loop reaches). Checkpoint writing never
	// schedules events, so a checkpointed run is bit-identical to an
	// uncheckpointed one.
	CheckpointEvery int64
	// CheckpointDir is where periodic and stall checkpoints land.
	CheckpointDir string

	// started marks that Start has seeded the launch; lastNow and wd
	// carry the main loop's progress tracking across StepTo calls.
	started bool
	lastNow int64
	wd      *watchdog
	// nextCkpt is the cycle at or after which the next periodic
	// checkpoint is due; replaying suppresses checkpoint writes while
	// RestoreFrom replays up to the checkpoint cycle.
	nextCkpt  int64
	replaying bool

	// cfgFP and specFP fingerprint the configuration and launch spec; a
	// checkpoint only restores onto a simulator with matching prints.
	cfgFP  uint64
	specFP uint64

	// nonces are per-component divergence counters folded into each
	// component's checkpoint section; InjectDivergence bumps one at a
	// chosen cycle (via perturbs) to seed an artificial state
	// divergence for bisection tests without touching timing.
	nonces   map[string]uint64
	perturbs map[int64][]string
}

// DefaultMaxCycles bounds a single kernel simulation.
const DefaultMaxCycles = 2_000_000_000

// New wires up a simulator for the spec under the configuration.
func New(cfg config.Config, spec LaunchSpec) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if spec.Launch == nil || spec.Memory == nil {
		return nil, fmt.Errorf("sim: launch spec needs a kernel launch and memory")
	}
	if err := spec.Launch.Kernel.Validate(); err != nil {
		return nil, err
	}

	s := &Simulator{cfg: cfg, spec: spec, q: clock.New(), MaxCycles: DefaultMaxCycles,
		progressWindow: DefaultProgressWindow, workers: cfg.Workers}
	if cfg.MaxCycles > 0 {
		s.MaxCycles = cfg.MaxCycles
	}
	switch {
	case cfg.ProgressWindow > 0:
		s.progressWindow = cfg.ProgressWindow
	case cfg.ProgressWindow < 0:
		s.progressWindow = 0
	}

	// Virtual memory substrate.
	as, err := vm.NewAddressSpace(cfg.System.PageSize,
		uint64(cfg.System.GPUMemoryMB)<<20, uint64(cfg.System.CPUMemoryMB)<<20)
	if err != nil {
		return nil, err
	}
	for _, r := range spec.Regions {
		if err := as.AddRegion(r); err != nil {
			return nil, err
		}
	}
	s.as = as

	// Memory hierarchy: DRAM <- L2 <- per-SM L1s.
	s.mem, err = dram.New(s.q, int64(cfg.System.DRAMLatency), cfg.BytesPerCycle(), cfg.System.L2LineB)
	if err != nil {
		return nil, err
	}
	s.l2, err = cache.New(cache.Config{
		Name:    "L2",
		SizeKB:  cfg.System.L2SizeKB,
		Ways:    cfg.System.L2Ways,
		LineB:   cfg.System.L2LineB,
		MSHRs:   cfg.System.L2MSHRs,
		Latency: int64(cfg.System.L2Latency),
		Policy:  cache.WriteBack,
	}, s.q, s.mem)
	if err != nil {
		return nil, err
	}

	// Translation hierarchy: fill unit <- L2 TLB <- per-SM L1 TLBs.
	s.fu, err = tlb.NewFillUnit(s.q, cfg.System.PTWalkers, int64(cfg.System.WalkLatency),
		func(pageVA uint64) tlb.Result {
			k := as.Classify(pageVA)
			if k == vm.FaultNone {
				return tlb.Result{Present: true}
			}
			return tlb.Result{Fault: k}
		})
	if err != nil {
		return nil, err
	}
	s.l2tlb, err = tlb.New(tlb.Config{
		Name:    "L2TLB",
		Entries: cfg.System.L2TLBEntries,
		Ways:    cfg.System.L2TLBWays,
		MSHRs:   cfg.System.L2TLBMSHRs,
		Latency: int64(cfg.System.L2TLBLatency),
	}, cfg.System.PageSize, s.q, s.fu)
	if err != nil {
		return nil, err
	}

	// Host side: interconnect, CPU fault service, exception unit.
	s.link, err = interconnect.New(cfg.Link.Kind.String(), s.q, cfg.Link.DuplexChannels)
	if err != nil {
		return nil, err
	}
	s.cpu, err = host.NewFaultService(s.q, s.link, as, cfg.System.FaultGranularity,
		cfg.Link.FaultCosts, cfg.Cycles)
	if err != nil {
		return nil, err
	}
	if cfg.Local.Enabled {
		s.local, err = core.NewLocalHandler(s.q, as, cfg.System.NumSMs,
			cfg.System.FaultGranularity, cfg.Cycles(cfg.Link.FaultCosts.GPUHandleUS),
			cfg.Local.Concurrency)
		if err != nil {
			return nil, err
		}
	}
	var localResolver core.Resolver
	if s.local != nil {
		localResolver = s.local
	}
	s.funit, err = core.NewFaultUnit(s.q, cfg.System.FaultGranularity, s.cpu, localResolver)
	if err != nil {
		return nil, err
	}

	// Functional emulation and block dispatch.
	s.emul, err = emu.New(spec.Launch, spec.Memory, cfg.SM.L1LineB)
	if err != nil {
		return nil, err
	}
	s.emul.ConfigureFlips(cfg.Excep.Flip)
	s.emul.AddrValid = regionChecker(spec.Regions)
	s.disp, err = host.NewDispatcher(spec.Launch.Blocks(), s.emul.EmulateBlock)
	if err != nil {
		return nil, err
	}
	// Host-mapped exception flag, polled at API-call granularity.
	s.board = host.NewExcepBoard(s.q, cfg.Excep.PollEvery)

	// SMs with private L1 cache and TLB.
	s.sms = make([]*sm.SM, cfg.System.NumSMs)
	for i := range s.sms {
		l1, err := cache.New(cache.Config{
			Name:    fmt.Sprintf("L1.%d", i),
			SizeKB:  cfg.SM.L1SizeKB,
			Ways:    cfg.SM.L1Ways,
			LineB:   cfg.SM.L1LineB,
			MSHRs:   cfg.SM.L1MSHRs,
			Latency: int64(cfg.SM.L1Latency),
			Policy:  cache.WriteThrough,
		}, s.q, s.l2)
		if err != nil {
			return nil, err
		}
		l1tlb, err := tlb.New(tlb.Config{
			Name:    fmt.Sprintf("L1TLB.%d", i),
			Entries: cfg.SM.L1TLBSize,
			Ways:    cfg.SM.L1TLBWays,
			Latency: int64(cfg.SM.L1TLBLat),
		}, cfg.System.PageSize, s.q, s.l2tlb)
		if err != nil {
			return nil, err
		}
		s.sms[i] = sm.New(i, &s.cfg, s.q, l1, l1tlb, s.funit, s.disp, contextMover{s.mem})
		s.sms[i].SetExcepSink(s.board)
		s.l1s = append(s.l1s, l1)
		s.l1tlbs = append(s.l1tlbs, l1tlb)
	}
	s.active = make([]uint64, (len(s.sms)+63)/64)
	for i := range s.sms {
		w, bit := i>>6, uint(i)&63
		s.sms[i].SetWakeHook(func() { s.active[w] |= 1 << bit })
	}
	s.registerMetrics()
	if cfg.SampleEvery > 0 {
		// Build after registerMetrics: the sampler freezes its column
		// set over the instruments registered so far.
		s.sampler = obs.NewSampler(cfg.SampleEvery, s.reg)
	}
	s.nonces = make(map[string]uint64)
	// Neither the worker count nor the sampling period ever changes
	// simulation results (the parallel tick phase is bit-identical to
	// sequential, and the sampler only reads), so both are excluded
	// from the config fingerprint (see FingerprintConfig): a checkpoint
	// taken at one worker count or sampling period restores under any
	// other.
	s.cfgFP = FingerprintConfig(cfg)
	s.specFP = FingerprintSpec(spec)
	return s, nil
}

// registerMetrics builds the metrics registry over the wired system:
// component counters as gauges, the fault-service-latency histogram on
// the fault unit, the shared replay-queue / operand-log occupancy
// histograms across SMs, and the per-reason stall breakdown.
func (s *Simulator) registerMetrics() {
	s.reg = obs.NewRegistry()
	s.l2.RegisterMetrics(s.reg, "l2")
	s.l2tlb.RegisterMetrics(s.reg, "l2tlb")
	s.fu.RegisterMetrics(s.reg, "fillunit")
	s.mem.RegisterMetrics(s.reg, "dram")
	s.link.RegisterMetrics(s.reg, "link")
	s.cpu.RegisterMetrics(s.reg, "cpu.fault")
	s.funit.RegisterMetrics(s.reg, "faultunit")
	if s.local != nil {
		s.local.RegisterMetrics(s.reg, "local")
	}
	s.funit.SetLatency(s.reg.Histogram("fault.latency_cycles"))
	met := sm.Metrics{
		ReplayOcc: s.reg.Histogram("sm.replay_occupancy"),
		LogOcc:    s.reg.Histogram("sm.operand_log_occupancy"),
	}
	for _, m := range s.sms {
		m.SetMetrics(met)
	}
	smSum := func(pick func(sm.Stats) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, m := range s.sms {
				t += pick(m.Stats())
			}
			return t
		}
	}
	s.reg.Gauge("excep.pending", func() int64 { return int64(s.board.Pending()) })
	s.reg.Gauge("sm.occupancy_blocks", func() int64 {
		var t int64
		for _, m := range s.sms {
			t += int64(m.Occupancy())
		}
		return t
	})
	s.reg.Gauge("emu.flips", s.emul.Flips)
	s.reg.Gauge("sm.committed", smSum(func(st sm.Stats) int64 { return st.Committed }))
	s.reg.Gauge("sm.exceptions", smSum(func(st sm.Stats) int64 { return st.Exceptions }))
	s.reg.Gauge("sm.faults", smSum(func(st sm.Stats) int64 { return st.Faults }))
	s.reg.Gauge("sm.squashed", smSum(func(st sm.Stats) int64 { return st.Squashed }))
	s.reg.Gauge("sm.replays", smSum(func(st sm.Stats) int64 { return st.Replays }))
	s.reg.Gauge("sm.switches_out", smSum(func(st sm.Stats) int64 { return st.SwitchesOut }))
	s.reg.Gauge("sm.context_bytes", smSum(func(st sm.Stats) int64 { return st.ContextBytes }))
	for r := obs.StallReason(0); r < obs.NumStallReasons; r++ {
		r := r
		s.reg.Gauge("sm.stall."+r.String(),
			smSum(func(st sm.Stats) int64 { return st.Stalls[r] }))
	}
}

// AttachTracer binds tr to the simulator's clock and threads it through
// every traced component: the SMs, the fault unit, the fill unit, the
// CPU fault service and the GPU-local handler. A nil tracer is a no-op.
// Call before Run; the tracer never schedules events, so an attached
// tracer cannot change simulated cycle counts.
func (s *Simulator) AttachTracer(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	s.tracer = tr
	tr.Bind(len(s.sms), s.q.Now)
	for _, m := range s.sms {
		m.SetTracer(tr)
	}
	s.funit.SetTracer(tr)
	s.fu.SetTracer(tr)
	s.cpu.SetTracer(tr)
	if s.local != nil {
		s.local.SetTracer(tr)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (s *Simulator) Tracer() *obs.Tracer { return s.tracer }

// contextMover adapts the DRAM model to sm.ContextMover.
type contextMover struct{ d *dram.DRAM }

func (m contextMover) Move(bytes int, done func()) { m.d.Transfer(bytes, done) }

// AddressSpace exposes the simulator's VM state (for tests and tools).
func (s *Simulator) AddressSpace() *vm.AddressSpace { return s.as }

// Start seeds the launch: blocks are filled onto the SMs and the
// active set and progress tracking are initialized. Idempotent; Run
// calls it automatically, RestoreFrom calls it before replaying.
func (s *Simulator) Start() error {
	if s.started {
		return nil
	}
	for _, m := range s.sms {
		m.PrepareLaunch(s.spec.Launch)
	}
	for _, m := range s.sms {
		m.FillBlocks()
	}
	if err := s.disp.Err(); err != nil {
		return err
	}
	// Seed the active set: wake hooks only fire on the idle→awake
	// transition, which the initial block fill never takes.
	for i := range s.active {
		s.active[i] = 0
	}
	for i, m := range s.sms {
		if !m.Done() && !m.Idle() {
			s.active[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	if s.progressWindow > 0 {
		s.wd = &watchdog{window: s.progressWindow, lastSig: -1}
	}
	s.lastNow = -1
	if s.CheckpointEvery > 0 {
		s.nextCkpt = s.CheckpointEvery
	}
	s.started = true
	return nil
}

// StepTo advances the simulation until the clock reaches cycle stop or
// the launch finishes, whichever comes first (stop < 0 means run to
// completion). It returns true when it stopped at a cycle boundary
// with now >= stop while work remains. The stop check sits at the top
// of the loop, before any per-cycle bookkeeping mutates state: a
// checkpoint written at cycle C captures exactly the state a fresh
// simulator reaches via StepTo(C) — the foundation of restore
// verification and divergence bisection.
func (s *Simulator) StepTo(stop int64) (bool, error) {
	// With Workers >= 2 and an isolated tick path, shard the tick sweep
	// across worker goroutines for this call (parallel.go); the workers
	// are parked at a barrier except during the tick phase and stopped
	// before return. A nil pool means the sequential sweep below — the
	// two produce bit-identical state.
	pool := s.newShardPool()
	if pool != nil {
		pool.launch()
		defer pool.stop()
	}
	for !s.finished() {
		now := s.q.Now()
		s.applyPerturbs(now)
		if stop >= 0 && now >= stop {
			return true, nil
		}
		if err := s.maybeWriteCheckpoint(now); err != nil {
			return false, err
		}
		if err := s.firstError(); err != nil {
			return false, err
		}
		if now < s.lastNow {
			return false, s.stallError("invariant",
				[]string{fmt.Sprintf("clock moved backwards: %d after %d", now, s.lastNow)})
		}
		s.lastNow = now
		if now > s.MaxCycles {
			return false, s.stallError("max-cycles", nil)
		}
		if s.wd != nil && s.wd.observe(now, s.progressSignature()) {
			return false, s.stallError("watchdog", nil)
		}
		if s.sweepEvery > 0 && now >= s.nextSweep {
			s.nextSweep = now + s.sweepEvery
			if v := s.CheckInvariants(); len(v) > 0 {
				return false, s.stallError("invariant", v)
			}
		}
		// Tick the active set in SM index order. The bitset may
		// over-approximate (a woken SM can be done), so each set bit
		// re-checks the old scan's !Done && !Idle condition; SMs that
		// fail it drop out of the set until their next wake.
		var anyActive bool
		if pool != nil {
			anyActive = pool.tick()
		} else {
			anyActive = s.tickSequential()
		}
		if err := s.firstError(); err != nil {
			return false, err
		}
		// Telemetry fires here — after the tick phase and, for parallel
		// runs, after the ordered ledger flush — so samples observe
		// exactly the sequential sweep's state at this cycle.
		s.maybeTelemetry(now)
		if s.finished() {
			break
		}
		if anyActive {
			s.q.Step()
		} else {
			next, ok := s.q.NextEvent()
			if !ok {
				return false, s.stallError("deadlock", nil)
			}
			s.q.SkipTo(next)
		}
	}
	return false, nil
}

// Run simulates the launch to completion and returns the result.
func (s *Simulator) Run() (*Result, error) {
	if err := s.Start(); err != nil {
		return nil, err
	}
	if _, err := s.StepTo(-1); err != nil {
		return nil, err
	}
	if err := s.firstError(); err != nil {
		return nil, err
	}
	// Launch completion is an API-call boundary: any exception posted
	// after the last in-loop poll is observed now, so a precise-mode
	// exception surfaces even when the rest of the grid finished first.
	if e := s.board.Drain(s.q.Now()); e != nil {
		return nil, e
	}
	if s.chaos != nil {
		// End-of-run sweep: a run that completes while violating a
		// structural invariant has silently corrupted its statistics.
		if v := s.CheckInvariants(); len(v) > 0 {
			return nil, s.stallError("invariant", v)
		}
	}
	s.closeTelemetry()
	return s.collect(), nil
}

// Cycle returns the current simulated cycle.
func (s *Simulator) Cycle() int64 { return s.q.Now() }

// Finished reports whether the launch has run to completion.
func (s *Simulator) Finished() bool { return s.finished() }

// Collect builds the result summary for the current state. Run calls
// it on completion; bisection probes call it after a partial StepTo.
func (s *Simulator) Collect() *Result { return s.collect() }

func (s *Simulator) finished() bool {
	if !s.disp.AllDone() {
		return false
	}
	for _, m := range s.sms {
		if !m.Done() {
			return false
		}
	}
	return true
}

func (s *Simulator) firstError() error {
	if err := s.disp.Err(); err != nil {
		return err
	}
	if e := s.board.Poll(s.q.Now()); e != nil {
		return e
	}
	if err := s.funit.Err(); err != nil {
		return err
	}
	if err := s.cpu.Err(); err != nil {
		return err
	}
	if s.local != nil {
		if err := s.local.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Simulator) collect() *Result {
	r := &Result{
		Cycles:         s.q.Now(),
		L2:             s.l2.Stats(),
		L2TLB:          s.l2tlb.Stats(),
		DRAM:           s.mem.Stats(),
		Link:           s.link.Stats(),
		LinkUtil:       s.link.Utilization(),
		CPUFaults:      s.cpu.Stats(),
		FaultUnit:      s.funit.Stats(),
		Walks:          s.fu.Walks,
		WalkFaults:     s.fu.FaultsDetected,
		InjectedFaults: s.fu.FaultsInjected,
		Blocks:         s.disp.Completed(),
	}
	if s.local != nil {
		r.Local = s.local.Stats()
	}
	for _, m := range s.sms {
		st := m.Stats()
		r.SMs = append(r.SMs, st)
		r.Committed += st.Committed
		r.Exceptions += st.Exceptions
		r.Stalls.Add(st.Stalls)
	}
	r.Flips = s.emul.Flips()
	r.Metrics = s.reg.Snapshot()
	r.Series = s.sampler.View()
	if len(s.sms) > 0 {
		sum := 0
		r.OccupancyMin = s.sms[0].Occupancy()
		for _, m := range s.sms {
			occ := m.Occupancy()
			sum += occ
			if occ > r.Occupancy {
				r.Occupancy = occ
			}
			if occ < r.OccupancyMin {
				r.OccupancyMin = occ
			}
		}
		r.OccupancyMean = float64(sum) / float64(len(s.sms))
	}
	return r
}

// RunSpec is a convenience: build a simulator for cfg/spec and run it.
func RunSpec(cfg config.Config, spec LaunchSpec) (*Result, error) {
	s, err := New(cfg, spec)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
