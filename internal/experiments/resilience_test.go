package experiments

import (
	"reflect"
	"testing"

	"gpues/internal/excep"
)

// resilienceCounts runs a one-benchmark campaign and returns the rows
// keyed by name, for exact comparison.
func resilienceCounts(t *testing.T, opt Options) map[string]map[string]float64 {
	t.Helper()
	r, err := Resilience(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Benchmark] = row.Values
	}
	return rows
}

func TestResilienceCountsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := Options{Scale: 1, Benchmarks: []string{"mri-q"}, Trials: 2}
	a := resilienceCounts(t, opt)
	b := resilienceCounts(t, opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("classification counts differ across reruns:\n%v\n%v", a, b)
	}
	for row, vals := range a {
		var total float64
		for _, v := range vals {
			total += v
		}
		if total != 2 {
			t.Errorf("row %s classified %v trials, want 2: %v", row, total, vals)
		}
	}
	if len(a) != len(resilienceProtections) {
		t.Errorf("got %d rows, want the %d-rung protection ladder", len(a), len(resilienceProtections))
	}
}

func TestResiliencePinnedCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := Options{Scale: 1, Benchmarks: []string{"mri-q"}, Trials: 1,
		FlipSeed: 12345, FlipRate: 1e-4, ProtectPin: true, ProtectThreads: 0}
	rows := resilienceCounts(t, opt)
	if len(rows) != 1 {
		t.Fatalf("pinned protection must collapse the ladder to one row, got %v", rows)
	}
	vals, ok := rows["mri-q/t0"]
	if !ok {
		t.Fatalf("missing pinned row mri-q/t0: %v", rows)
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	if total != 1 {
		t.Fatalf("pinned cell classified %v trials, want 1: %v", total, vals)
	}
	if !reflect.DeepEqual(rows, resilienceCounts(t, opt)) {
		t.Fatal("pinned-seed counts differ across reruns")
	}
}

func TestResiliencePreemptibleMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := Options{Scale: 1, Benchmarks: []string{"mri-q"}, Trials: 1,
		ProtectPin: true, ProtectThreads: 0, ExcepMode: excep.ModePreemptible}
	rows := resilienceCounts(t, opt)
	if !reflect.DeepEqual(rows, resilienceCounts(t, opt)) {
		t.Fatal("preemptible-mode counts differ across reruns")
	}
}
