// Package atomicio holds the crash-only file idioms shared by the
// checkpoint container, the experiment campaign's done-files and the
// simulation-service journal: every write lands in a .tmp sibling
// first and is renamed into place, so a reader — or a resume after
// kill -9 — only ever sees complete files. A file cut short by a crash
// is left behind as a .tmp orphan, which readers skip by construction.
package atomicio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// TmpSuffix is the suffix of in-flight write files; readers that scan
// directories must skip names carrying it.
const TmpSuffix = ".tmp"

// WriteFile atomically writes data to path: the bytes land in a .tmp
// sibling first and are renamed into place. On any error the partial
// .tmp file is removed, never the destination.
func WriteFile(path string, data []byte) error {
	tmp := path + TmpSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteJSON atomically writes v as JSON to path, creating the parent
// directory if needed.
func WriteJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFile(path, data)
}

// ReadJSON reads path and unmarshals it into v. It fails on missing,
// torn (.tmp never renamed) or malformed files with the underlying
// error; callers treating those as "no record" check with os.IsNotExist
// or simply discard on any error.
func ReadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// IsTmp reports whether name is an in-flight write file that directory
// scans must skip.
func IsTmp(name string) bool { return strings.HasSuffix(name, TmpSuffix) }
