// Package directive validates the //simlint: directives themselves: an
// unknown verb (a typo like //simlint:noaloc, or a directive removed
// from the suite) is a diagnostic, never a silent no-op. The other
// analyzers change behavior based on directives — noalloc only checks
// annotated functions, ckptcomplete exempts annotated fields — so a
// misspelled directive would otherwise disable a check invisibly.
package directive

import (
	"sort"
	"strings"

	"gpues/internal/analysis"
)

// Analyzer is the directive-spelling check.
var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  "flag unknown //simlint: directive verbs so a typo cannot silently disable a check",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	known := make([]string, 0, len(analysis.KnownDirectives))
	for v := range analysis.KnownDirectives {
		known = append(known, v)
	}
	sort.Strings(known)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, _ := analysis.DirectiveOf(c)
				if verb == "" || analysis.KnownDirectives[verb] {
					continue
				}
				pass.Reportf(c.Pos(), "unknown simlint directive //simlint:%s (known: %s)",
					verb, strings.Join(known, ", "))
			}
		}
	}
	return nil
}
