package host

import (
	"errors"
	"testing"

	"gpues/internal/clock"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/interconnect"
	"gpues/internal/vm"
)

func drain(q *clock.Queue) {
	for q.Len() > 0 {
		q.Step()
	}
}

func TestDispatcherHandsBlocksInOrder(t *testing.T) {
	emulated := []int{}
	d, err := NewDispatcher(5, func(b int) (*emu.BlockTrace, error) {
		emulated = append(emulated, b)
		return &emu.BlockTrace{BlockID: b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		bt, ok := d.NextBlock(i % 2)
		if !ok || bt.BlockID != i {
			t.Fatalf("block %d: got %v/%v", i, bt, ok)
		}
	}
	if _, ok := d.NextBlock(0); ok {
		t.Error("exhausted dispatcher handed out a block")
	}
	if d.PendingBlocks() != 0 {
		t.Errorf("pending = %d", d.PendingBlocks())
	}
	for i := 0; i < 5; i++ {
		if d.AllDone() {
			t.Fatalf("AllDone before %d completions", i)
		}
		d.BlockDone(0, i)
	}
	if !d.AllDone() || d.Completed() != 5 {
		t.Errorf("completed = %d, allDone = %v", d.Completed(), d.AllDone())
	}
	if len(emulated) != 5 {
		t.Errorf("lazy emulation ran %d times, want 5", len(emulated))
	}
}

func TestDispatcherPropagatesEmulationError(t *testing.T) {
	boom := errors.New("boom")
	d, _ := NewDispatcher(3, func(b int) (*emu.BlockTrace, error) {
		if b == 1 {
			return nil, boom
		}
		return &emu.BlockTrace{BlockID: b}, nil
	})
	if _, ok := d.NextBlock(0); !ok {
		t.Fatal("first block failed")
	}
	if _, ok := d.NextBlock(0); ok {
		t.Fatal("errored block handed out")
	}
	if !errors.Is(d.Err(), boom) {
		t.Errorf("Err() = %v", d.Err())
	}
	if _, ok := d.NextBlock(0); ok {
		t.Error("dispatcher must stay dead after an error")
	}
}

func TestDispatcherValidation(t *testing.T) {
	if _, err := NewDispatcher(0, func(int) (*emu.BlockTrace, error) { return nil, nil }); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewDispatcher(1, nil); err == nil {
		t.Error("nil emulator accepted")
	}
}

func newService(t *testing.T, q *clock.Queue) (*FaultService, *vm.AddressSpace, *interconnect.Link) {
	t.Helper()
	as, err := vm.NewAddressSpace(4096, 64<<20, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.AddRegion(vm.Region{Name: "in", Base: 0, Size: 1 << 20, Kind: vm.RegionCPUInit}); err != nil {
		t.Fatal(err)
	}
	link, err := interconnect.New("nvlink", q, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	svc, err := NewFaultService(q, link, as, 64*1024, config.NVLinkConfig().FaultCosts, cfg.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	return svc, as, link
}

func TestFaultServiceMigration(t *testing.T) {
	q := clock.New()
	svc, as, link := newService(t, q)
	var doneAt int64 = -1
	svc.Service(0x10000, vm.FaultMigrate, 0, func() { doneAt = q.Now() })
	drain(q)
	// NVLink migration: 12 us = 12000 cycles end to end.
	if doneAt != 12000 {
		t.Errorf("migration completed at %d, want 12000", doneAt)
	}
	// All 16 pages of the region are now GPU resident.
	for p := uint64(0x10000); p < 0x20000; p += 4096 {
		if as.Classify(p) != vm.FaultNone {
			t.Errorf("page %#x not resident", p)
		}
	}
	st := svc.Stats()
	if st.Served != 1 || st.Migrations != 1 || st.PagesMapped != 16 {
		t.Errorf("stats = %+v", st)
	}
	if link.Stats().Transfers != 1 {
		t.Error("migration must occupy the interconnect")
	}
}

func TestFaultServiceSerializesOneByOne(t *testing.T) {
	q := clock.New()
	svc, _, _ := newService(t, q)
	var times []int64
	for i := 0; i < 3; i++ {
		svc.Service(uint64(i)<<16, vm.FaultMigrate, 0, func() { times = append(times, q.Now()) })
	}
	drain(q)
	want := []int64{12000, 24000, 36000}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("fault %d resolved at %d, want %d (one-by-one handling)", i, times[i], want[i])
		}
	}
	if svc.Stats().QueueCycles != 12000+24000 {
		t.Errorf("queue cycles = %d, want 36000", svc.Stats().QueueCycles)
	}
}

func TestFaultServiceAllocOnlyCheaper(t *testing.T) {
	q := clock.New()
	svc, as, _ := newService(t, q)
	if err := as.AddRegion(vm.Region{Name: "out", Base: 1 << 20, Size: 1 << 20, Kind: vm.RegionLazy}); err != nil {
		t.Fatal(err)
	}
	var doneAt int64
	svc.Service(1<<20, vm.FaultAllocOnly, 0, func() { doneAt = q.Now() })
	drain(q)
	// NVLink alloc-only: 10 us.
	if doneAt != 10000 {
		t.Errorf("alloc-only completed at %d, want 10000", doneAt)
	}
	if svc.Stats().AllocOnly != 1 {
		t.Errorf("stats = %+v", svc.Stats())
	}
}

func TestFaultServiceSkipsUnregisteredPages(t *testing.T) {
	q := clock.New()
	svc, as, _ := newService(t, q)
	// Region covering only half a 64 KB handling window.
	if err := as.AddRegion(vm.Region{Name: "tail", Base: 1 << 20, Size: 32 * 1024, Kind: vm.RegionLazy}); err != nil {
		t.Fatal(err)
	}
	svc.Service(1<<20, vm.FaultAllocOnly, 0, func() {})
	drain(q)
	if got := svc.Stats().PagesMapped; got != 8 {
		t.Errorf("pages mapped = %d, want 8 (half the window registered)", got)
	}
}

func TestFaultServiceValidation(t *testing.T) {
	q := clock.New()
	link, _ := interconnect.New("x", q, 1)
	cfg := config.Default()
	if _, err := NewFaultService(q, link, nil, 0, config.FaultCosts{}, cfg.Cycles); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := NewFaultService(q, link, nil, 65536, config.FaultCosts{}, nil); err == nil {
		t.Error("nil cycle converter accepted")
	}
}
