package obs

import (
	"reflect"
	"testing"
)

// TestEmitStageMatchesDirectEmission is the staging equivalence check
// at the tracer level: emitting through an EmitStage and flushing must
// produce the same events — same global sequence numbers, same ring
// placement — as calling Emit directly in the same order.
func TestEmitStageMatchesDirectEmission(t *testing.T) {
	emitAll := func(emit func(sm int, k Kind, warp int32, a, b uint64)) {
		emit(0, KFetch, 3, 10, 20)
		emit(1, KIssue, 4, 11, 21)
		emit(0, KStall, 3, 12, 22)
		emit(-1, KFaultRaised, 0, 13, 23) // system ring
		emit(1, KFetch, 5, 14, 24)
	}

	direct := New(Options{})
	direct.Bind(2, func() int64 { return 7 })
	emitAll(direct.Emit)

	staged := New(Options{})
	staged.Bind(2, func() int64 { return 7 })
	var st EmitStage
	emitAll(func(sm int, k Kind, warp int32, a, b uint64) {
		if staged.Enabled(k) {
			st.Emit(sm, k, warp, a, b)
		}
	})
	if st.Len() != 5 {
		t.Fatalf("staged %d emissions, want 5", st.Len())
	}
	st.FlushTo(staged)
	if st.Len() != 0 {
		t.Fatalf("stage holds %d emissions after flush, want 0", st.Len())
	}

	want, got := direct.Events(), staged.Events()
	if len(got) != len(want) || len(want) != 5 {
		t.Fatalf("staged tracer holds %d events, direct %d, want 5", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("staged events diverge from direct emission:\n got %+v\nwant %+v", got, want)
	}
}

// TestEmitStageRespectsFilterAtStageTime mirrors the SM staging sites:
// they consult Enabled before staging, so a filtered tracer sees the
// same sequence numbers either way (Emit assigns seq only to
// filter-passing kinds).
func TestEmitStageRespectsFilterAtStageTime(t *testing.T) {
	filter := uint64(1<<KFetch | 1<<KIssue)
	direct := New(Options{Filter: filter})
	direct.Bind(1, func() int64 { return 3 })
	direct.Emit(0, KFetch, 1, 1, 1)
	direct.Emit(0, KStall, 1, 2, 2) // dropped by the filter, no seq consumed
	direct.Emit(0, KIssue, 1, 3, 3)

	staged := New(Options{Filter: filter})
	staged.Bind(1, func() int64 { return 3 })
	var st EmitStage
	for _, e := range []struct {
		k    Kind
		a, b uint64
	}{{KFetch, 1, 1}, {KStall, 2, 2}, {KIssue, 3, 3}} {
		if staged.Enabled(e.k) {
			st.Emit(0, e.k, 1, e.a, e.b)
		}
	}
	st.FlushTo(staged)

	if !reflect.DeepEqual(staged.Events(), direct.Events()) {
		t.Fatalf("filtered staged events diverge:\n got %+v\nwant %+v",
			staged.Events(), direct.Events())
	}
}

// TestEmitStageReuseDoesNotAllocate pins the steady-state
// zero-allocation property of the staging buffer.
func TestEmitStageReuseDoesNotAllocate(t *testing.T) {
	var st EmitStage
	for i := 0; i < 8; i++ {
		st.Emit(0, KFetch, 0, 0, 0)
	}
	st.events = st.events[:0]
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			st.Emit(0, KFetch, 0, 0, 0)
		}
		st.events = st.events[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state staging allocated %.1f times per run, want 0", allocs)
	}
}
