// Differential tests for the parallel tick phase: every worker count
// must produce results bit-identical to the sequential run — cycle
// counts, the full stall breakdown, the complete metrics snapshot, and
// every per-component state digest — across the paper's workload
// shapes (resident Fig10, demand-paging-with-switching Fig12,
// lazy-allocation-with-local-handling Fig13), both exception delivery
// modes, chaos injection, and checkpoints crossing worker counts.
//
// The tests live in the external sim_test package because the workload
// builders import sim.
package sim_test

import (
	"reflect"
	"testing"

	"gpues/internal/chaos"
	"gpues/internal/ckpt"
	"gpues/internal/config"
	"gpues/internal/excep"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

// workerCounts is the differential matrix's worker axis; 1 is the
// sequential reference.
var workerCounts = []int{1, 2, 4, 8}

// parCase is one workload/config shape of the differential matrix.
type parCase struct {
	name  string
	bench string
	place workloads.Placement
	mut   func(*config.Config)
	modes []excep.Mode
}

func parCases() []parCase {
	return []parCase{
		{
			// Fig10 shape: resident data, the operand-log pipeline.
			name: "fig10-lbm-operand-log", bench: "lbm",
			place: workloads.Resident(),
			mut:   func(c *config.Config) { c.Scheme = config.OperandLog },
			modes: []excep.Mode{excep.ModePrecise},
		},
		{
			// Fig12 shape: on-demand paging with block switching on fault.
			name: "fig12-sgemm-paging-switching", bench: "sgemm",
			place: workloads.DemandPaging(),
			mut: func(c *config.Config) {
				c.Scheme = config.ReplayQueue
				c.DemandPaging = true
				c.Scheduler.Enabled = true
			},
			modes: []excep.Mode{excep.ModePrecise, excep.ModePreemptible},
		},
		{
			// Fig13 shape: lazy allocation with GPU-local fault handling.
			name: "fig13-halloc-spree-lazy-local", bench: "halloc-spree",
			place: workloads.LazyOutput(),
			mut: func(c *config.Config) {
				c.Scheme = config.ReplayQueue
				c.LazyOutput = true
				c.Local.Enabled = true
			},
			modes: []excep.Mode{excep.ModePrecise, excep.ModePreemptible},
		},
	}
}

// buildSpec builds the case's workload afresh: runs mutate the
// functional memory image, so every simulation needs its own.
func buildSpec(t *testing.T, pc parCase) sim.LaunchSpec {
	t.Helper()
	spec, err := workloads.Build(pc.bench, workloads.Params{Scale: 1, Placement: pc.place})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func caseConfig(pc parCase, mode excep.Mode, workers int) config.Config {
	cfg := config.Default()
	pc.mut(&cfg)
	cfg.Excep.Mode = mode
	cfg.Workers = workers
	return cfg
}

// runWithDigests runs the case to completion and returns the result
// plus the end-of-run per-component state digests.
func runWithDigests(t *testing.T, pc parCase, mode excep.Mode, workers int) (*sim.Result, []ckpt.SectionDigest) {
	t.Helper()
	s, err := sim.New(caseConfig(pc, mode, workers), buildSpec(t, pc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Guard against a vacuous pass: these workloads keep many SMs
	// runnable at once, so a multi-worker run must have gone through
	// the barrier path, not fallen back to inline sequential sweeps.
	if workers > 1 && s.ParallelTicks() == 0 {
		t.Fatalf("workers=%d run never engaged the parallel tick phase", workers)
	}
	return r, s.ComponentDigests()
}

// checkSame fails unless the parallel run matches the sequential
// reference exactly: cycles, stall breakdown, metrics snapshot, the
// whole Result, and every component digest.
func checkSame(t *testing.T, workers int, refR, gotR *sim.Result, refD, gotD []ckpt.SectionDigest) {
	t.Helper()
	if gotR.Cycles != refR.Cycles {
		t.Errorf("workers=%d: %d cycles, sequential %d", workers, gotR.Cycles, refR.Cycles)
	}
	if gotR.Stalls != refR.Stalls {
		t.Errorf("workers=%d: stall breakdown %+v, sequential %+v", workers, gotR.Stalls, refR.Stalls)
	}
	if !reflect.DeepEqual(gotR.Metrics, refR.Metrics) {
		t.Errorf("workers=%d: metrics snapshot diverged from sequential", workers)
	}
	if !reflect.DeepEqual(gotR, refR) {
		t.Errorf("workers=%d: result diverged from sequential:\n got %+v\nwant %+v", workers, gotR, refR)
	}
	if !reflect.DeepEqual(gotD, refD) {
		for i := range refD {
			if i < len(gotD) && gotD[i] != refD[i] {
				t.Errorf("workers=%d: component %q digest %#x, sequential %#x",
					workers, refD[i].Name, gotD[i].Digest, refD[i].Digest)
			}
		}
		if len(gotD) != len(refD) {
			t.Errorf("workers=%d: %d digest sections, sequential %d", workers, len(gotD), len(refD))
		}
	}
}

// TestParallelBitIdentical is the core differential matrix: every
// workload shape × exception mode × worker count must reproduce the
// sequential run bit for bit.
func TestParallelBitIdentical(t *testing.T) {
	for _, pc := range parCases() {
		for _, mode := range pc.modes {
			pc, mode := pc, mode
			t.Run(pc.name+"/"+mode.String(), func(t *testing.T) {
				refR, refD := runWithDigests(t, pc, mode, 1)
				for _, w := range workerCounts[1:] {
					gotR, gotD := runWithDigests(t, pc, mode, w)
					checkSame(t, w, refR, gotR, refD, gotD)
				}
			})
		}
	}
}

// TestParallelChaosBitIdentical runs the chaos matrix: level 1 keeps
// the tick path randomness-free, so the parallel phase stays engaged;
// level 3 injects issue stalls, so the run loop must detect the
// tick-order hazard and fall back to sequential ticking. Either way
// every worker count must reproduce the sequential injected-event
// fingerprint, cycle count, and component digests.
func TestParallelChaosBitIdentical(t *testing.T) {
	pc := parCases()[1] // the paging+switching shape exercises every chaos hook
	for _, level := range []int{1, 3} {
		level := level
		t.Run(map[int]string{1: "level1-parallel", 3: "level3-fallback"}[level], func(t *testing.T) {
			run := func(workers int) (*sim.ChaosResult, []ckpt.SectionDigest) {
				plan, err := chaos.ForLevel(level, 42)
				if err != nil {
					t.Fatal(err)
				}
				cfg := caseConfig(pc, excep.ModePrecise, workers)
				spec := buildSpec(t, pc)
				s, err := sim.New(cfg, spec)
				if err != nil {
					t.Fatal(err)
				}
				s.AttachChaos(plan)
				r, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return &sim.ChaosResult{Result: r, Events: plan.Events(),
					Fingerprint: plan.Fingerprint()}, s.ComponentDigests()
			}
			refC, refD := run(1)
			for _, w := range workerCounts[1:] {
				gotC, gotD := run(w)
				if gotC.Fingerprint != refC.Fingerprint {
					t.Errorf("workers=%d: chaos fingerprint %#x, sequential %#x (%d vs %d events)",
						w, gotC.Fingerprint, refC.Fingerprint, len(gotC.Events), len(refC.Events))
				}
				checkSame(t, w, refC.Result, gotC.Result, refD, gotD)
			}
		})
	}
}

// TestParallelCheckpointCrossWorkers checkpoints a run at one worker
// count and restores it at another: the worker count is excluded from
// the checkpoint's config fingerprint (it cannot change results), so
// a parallel checkpoint must restore — with Restore's byte-exact
// section comparison — onto a sequential simulator and vice versa,
// and both resumed runs must finish bit-identical to the
// uninterrupted reference.
func TestParallelCheckpointCrossWorkers(t *testing.T) {
	pc := parCases()[1]
	mode := excep.ModePrecise
	refR, refD := runWithDigests(t, pc, mode, 1)
	at := refR.Cycles / 2

	saveAt := func(workers int) *ckpt.Checkpoint {
		s, err := sim.New(caseConfig(pc, mode, workers), buildSpec(t, pc))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		reached, err := s.StepTo(at)
		if err != nil {
			t.Fatal(err)
		}
		if !reached {
			t.Fatalf("workers=%d: finished at cycle %d before snapshot cycle %d", workers, s.Cycle(), at)
		}
		return s.Capture()
	}
	resume := func(workers int, ck *ckpt.Checkpoint) (*sim.Result, []ckpt.SectionDigest) {
		s, err := sim.New(caseConfig(pc, mode, workers), buildSpec(t, pc))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(ck); err != nil {
			t.Fatalf("restore at workers=%d: %v", workers, err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r, s.ComponentDigests()
	}

	for _, dir := range []struct {
		name       string
		save, load int
	}{
		{"parallel-to-sequential", 4, 1},
		{"sequential-to-parallel", 1, 4},
	} {
		dir := dir
		t.Run(dir.name, func(t *testing.T) {
			gotR, gotD := resume(dir.load, saveAt(dir.save))
			checkSame(t, dir.load, refR, gotR, refD, gotD)
		})
	}
}
