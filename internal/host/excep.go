package host

import (
	"gpues/internal/ckpt"
	"gpues/internal/clock"
	"gpues/internal/excep"
)

// DefaultExcepPollEvery is the host's exception-flag polling period in
// cycles when the configuration does not choose one. It models the
// granularity at which the driver inspects the host-mapped exception
// flag between API calls.
const DefaultExcepPollEvery = 1024

// ExcepBoard is the host-mapped exception flag plus the record area
// behind it: SMs post device-raised exception records (sm.ExcepSink),
// and the driver observes them at its next poll boundary — the first
// multiple of the polling period after the first record posted. The
// poll boundary is a pure function of the first post cycle, so the
// cycle a run terminates at is deterministic and seed-stable.
type ExcepBoard struct {
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip construction-time polling period, fixed for the life of the board
	pollEvery int64

	// firstPosted is the cycle of the first posted record (-1 when the
	// board is clean); records accumulate in post order.
	firstPosted int64
	records     []*excep.Record
}

// NewExcepBoard builds a board polled every pollEvery cycles
// (0 or negative selects DefaultExcepPollEvery).
func NewExcepBoard(q *clock.Queue, pollEvery int64) *ExcepBoard {
	if pollEvery <= 0 {
		pollEvery = DefaultExcepPollEvery
	}
	return &ExcepBoard{q: q, pollEvery: pollEvery, firstPosted: -1}
}

// PostExcep implements sm.ExcepSink: it latches the record and, on the
// first post, schedules a no-op clock event at the poll boundary so an
// otherwise-quiescent simulation still advances to the cycle at which
// the host observes the flag.
func (b *ExcepBoard) PostExcep(now int64, r *excep.Record) {
	if b.firstPosted < 0 {
		b.firstPosted = now
		b.q.At(b.Boundary(), func() {})
	}
	b.records = append(b.records, r)
}

// Boundary returns the cycle at which the host will observe the posted
// records, or -1 when the board is clean.
func (b *ExcepBoard) Boundary() int64 {
	if b.firstPosted < 0 {
		return -1
	}
	return (b.firstPosted/b.pollEvery + 1) * b.pollEvery
}

// Pending returns the number of posted, not-yet-observed records.
func (b *ExcepBoard) Pending() int { return len(b.records) }

// Poll is the driver's periodic flag check: it returns the structured
// exception error once the clock has reached the poll boundary, nil
// before that (or when the board is clean).
func (b *ExcepBoard) Poll(now int64) *excep.Error {
	if len(b.records) == 0 || now < b.Boundary() {
		return nil
	}
	return &excep.Error{Cycle: now, Records: b.records}
}

// Drain is the launch-completion API call: any posted record is
// observed immediately, poll boundary or not.
func (b *ExcepBoard) Drain(now int64) *excep.Error {
	if len(b.records) == 0 {
		return nil
	}
	return &excep.Error{Cycle: now, Records: b.records}
}

// SaveState serializes the board: the first-post cycle and the full
// record contents (records are plain data, rebuilt verbatim on
// restore).
func (b *ExcepBoard) SaveState(w *ckpt.Writer) {
	w.I64(b.firstPosted)
	w.Int(len(b.records))
	for _, r := range b.records {
		w.U64(uint64(r.Kind))
		w.U64(uint64(uint32(r.Block)))
		w.U64(uint64(uint32(r.Warp)))
		w.U64(uint64(uint32(r.Lane)))
		w.U64(uint64(uint32(r.PC)))
		w.String(r.Mnemonic)
		w.U64(r.Addr)
		w.String(r.Detail)
		w.Int(len(r.Frames))
		for _, f := range r.Frames {
			w.U64(uint64(uint32(f.PC)))
			w.U64(uint64(uint32(f.RPC)))
			w.U32(f.Mask)
		}
	}
}

// RestoreState reads the SaveState stream back and installs it. The
// replay that precedes installation re-posts identical records (and
// re-schedules the boundary event), so installation only swaps in
// byte-identical state.
func (b *ExcepBoard) RestoreState(r *ckpt.Reader) error {
	b.firstPosted = r.I64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	records := make([]*excep.Record, 0, n)
	for i := 0; i < n; i++ {
		rec := &excep.Record{
			Kind:     excep.Kind(r.U64()),
			Block:    int32(uint32(r.U64())),
			Warp:     int32(uint32(r.U64())),
			Lane:     int32(uint32(r.U64())),
			PC:       int32(uint32(r.U64())),
			Mnemonic: r.String(),
			Addr:     r.U64(),
			Detail:   r.String(),
		}
		nf := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for j := 0; j < nf; j++ {
			rec.Frames = append(rec.Frames, excep.Frame{
				PC:   int32(uint32(r.U64())),
				RPC:  int32(uint32(r.U64())),
				Mask: r.U32(),
			})
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		records = nil
	}
	b.records = records
	return r.Err()
}
