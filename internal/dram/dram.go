// Package dram models the GPU's off-chip memory as a fixed access
// latency plus a shared bandwidth pipe (Table 1: 200 cycles, 256 GB/s).
// Requests queue for bandwidth in arrival order; completion is when the
// data has both waited for the pipe and paid the access latency.
package dram

import (
	"fmt"

	"gpues/internal/clock"
	"gpues/internal/obs"
)

// Stats counts DRAM traffic.
type Stats struct {
	Reads     int64
	Writes    int64
	BytesRead int64
	BytesWrit int64
	// StallCycles accumulates cycles requests spent queued for
	// bandwidth beyond the raw latency.
	StallCycles int64
}

// DRAM is the memory controller + devices model. It implements
// cache.Backend for line traffic and serves bulk transfers (context
// save/restore) through Transfer.
type DRAM struct {
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip construction-time timing parameter, fixed for the life of the model
	latency int64
	//simlint:ckptskip construction-time bandwidth parameter, fixed for the life of the model
	bytesPerCycle float64
	//simlint:ckptskip construction-time geometry, fixed for the life of the model
	lineBytes int
	nextFree  float64 // cycle at which the pipe is free
	stats     Stats
}

// New builds the DRAM model. bytesPerCycle is bandwidth divided by the
// core frequency (256 B/cycle in the baseline).
func New(q *clock.Queue, latency int64, bytesPerCycle float64, lineBytes int) (*DRAM, error) {
	if latency < 0 || bytesPerCycle <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("dram: bad parameters latency=%d bw=%v line=%d",
			latency, bytesPerCycle, lineBytes)
	}
	return &DRAM{q: q, latency: latency, bytesPerCycle: bytesPerCycle, lineBytes: lineBytes}, nil
}

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// RegisterMetrics exposes the DRAM counters as gauges.
func (d *DRAM) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".reads", func() int64 { return d.stats.Reads })
	reg.Gauge(prefix+".writes", func() int64 { return d.stats.Writes })
	reg.Gauge(prefix+".bytes_read", func() int64 { return d.stats.BytesRead })
	reg.Gauge(prefix+".bytes_written", func() int64 { return d.stats.BytesWrit })
	reg.Gauge(prefix+".stall_cycles", func() int64 { return d.stats.StallCycles })
}

// occupy reserves pipe time for n bytes and returns the completion
// cycle (start-of-service plus latency).
func (d *DRAM) occupy(bytes int) int64 {
	now := float64(d.q.Now())
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	dur := float64(bytes) / d.bytesPerCycle
	d.nextFree = start + dur
	stall := int64(start - now)
	d.stats.StallCycles += stall
	done := int64(start+dur) + d.latency
	if done <= d.q.Now() {
		done = d.q.Now() + 1
	}
	return done
}

// Fetch implements cache.Backend: a line read.
func (d *DRAM) Fetch(addr uint64, done func()) bool {
	d.stats.Reads++
	d.stats.BytesRead += int64(d.lineBytes)
	d.q.At(d.occupy(d.lineBytes), done)
	return true
}

// Write implements cache.Backend: a line of write traffic.
func (d *DRAM) Write(addr uint64, done func()) bool {
	d.stats.Writes++
	d.stats.BytesWrit += int64(d.lineBytes)
	d.q.At(d.occupy(d.lineBytes), done)
	return true
}

// Transfer moves bytes in bulk (context save/restore, migrated page
// copies into GPU memory); done runs at completion.
func (d *DRAM) Transfer(bytes int, done func()) {
	if bytes <= 0 {
		d.q.After(1, done)
		return
	}
	d.stats.BytesWrit += int64(bytes)
	d.q.At(d.occupy(bytes), done)
}
