// Quickstart: run one benchmark under every exception scheme and see
// the performance cost of preemptible faults (the Figure 10 experiment
// in miniature).
package main

import (
	"fmt"
	"log"

	"gpues"
)

func main() {
	const workload = "sgemm"
	desc, err := gpues.WorkloadDescription(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n\n", workload, desc)

	schemes := []gpues.Scheme{
		gpues.Baseline,
		gpues.WarpDisableCommit,
		gpues.WarpDisableLastCheck,
		gpues.ReplayQueue,
		gpues.OperandLog,
	}

	var baseline int64
	for _, scheme := range schemes {
		// Each run needs a fresh build: the functional memory is
		// mutated by execution.
		spec, err := gpues.BuildWorkload(workload, gpues.WorkloadParams{Scale: 1})
		if err != nil {
			log.Fatal(err)
		}
		cfg := gpues.DefaultConfig()
		cfg.Scheme = scheme

		res, err := gpues.Run(cfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == gpues.Baseline {
			baseline = res.Cycles
		}
		fmt.Printf("%-14v %8d cycles   IPC %5.2f   relative perf %.3f\n",
			scheme, res.Cycles, res.IPC(), float64(baseline)/float64(res.Cycles))
	}

	fmt.Println("\nThe baseline cannot preempt faulted warps; every other scheme")
	fmt.Println("can context switch them at the cost shown in the last column.")
}
