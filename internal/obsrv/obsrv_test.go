package obsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gpues/internal/obs"
	"gpues/internal/sim"
)

func TestValidateAddr(t *testing.T) {
	for _, ok := range []string{":8080", "127.0.0.1:0", "localhost:http", "[::1]:9"} {
		if err := ValidateAddr(ok); err != nil {
			t.Errorf("ValidateAddr(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "8080", "127.0.0.1", "host:port:extra"} {
		if err := ValidateAddr(bad); err == nil {
			t.Errorf("ValidateAddr(%q) accepted", bad)
		}
	}
}

// testSnapshot builds a snapshot with a sampled series, metrics and a
// trace tail — the shape a live simulation publishes.
func testSnapshot(cycle int64) sim.TelemetrySnapshot {
	r := obs.NewRegistry()
	r.Counter("sm.committed").Add(cycle * 2)
	r.Gauge("excep.pending", func() int64 { return 0 })
	r.Histogram("fault.latency_cycles").Observe(1200)
	sp := obs.NewSampler(1000, r)
	for c := int64(1000); c <= cycle; c += 1000 {
		sp.Sample(c)
	}
	tr := obs.New(obs.Options{RingSize: 64})
	now := cycle
	tr.Bind(2, func() int64 { return now })
	tr.Emit(0, obs.KCommit, 7, 1, 2)
	tr.Emit(1, obs.KFaultRaised, 3, 0x1000, 0)
	return sim.TelemetrySnapshot{
		Cycle:          cycle,
		ActiveSMs:      3,
		TotalSMs:       16,
		BlocksDone:     5,
		BlocksTotal:    64,
		Committed:      cycle * 2,
		WatchdogWindow: 2_000_000,
		SinceProgress:  42,
		Metrics:        r.Snapshot(),
		Series:         sp.View(),
		Trace:          tr.Tail(64),
	}
}

// startServer starts a server on an ephemeral port and returns its
// base URL.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := New("127.0.0.1:0")
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, "http://" + addr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	s, base := startServer(t)

	// Before the first publish every endpoint still answers.
	code, body := get(t, base+"/status")
	if code != http.StatusOK || !strings.Contains(body, `"published": false`) {
		t.Fatalf("pre-publish /status = %d %q", code, body)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("pre-publish /metrics = %d", code)
	}

	s.PublishTelemetry(testSnapshot(5000))
	s.SetCampaign(3, 12, "sgemm/replay-queue done")

	code, body = get(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st["cycle"].(float64) != 5000 || st["published"] != true {
		t.Errorf("/status = %s", body)
	}
	if st["samples"].(float64) != 5 {
		t.Errorf("samples = %v, want 5", st["samples"])
	}
	camp := st["campaign"].(map[string]any)
	if camp["done"].(float64) != 3 || camp["total"].(float64) != 12 {
		t.Errorf("campaign = %v", camp)
	}
	wd := st["watchdog"].(map[string]any)
	if wd["since_progress"].(float64) != 42 {
		t.Errorf("watchdog = %v", wd)
	}

	_, body = get(t, base+"/metrics")
	for _, want := range []string{
		"gpues_cycle 5000",
		"gpues_sm_committed 10000",
		"# TYPE gpues_sm_committed counter",
		"# TYPE gpues_excep_pending gauge",
		"gpues_fault_latency_cycles_count 1",
		`gpues_fault_latency_cycles{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q:\n%s", want, body)
		}
	}

	_, body = get(t, base+"/series")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 6 { // header + 5 samples
		t.Fatalf("/series has %d lines:\n%s", len(lines), body)
	}
	if !strings.Contains(lines[0], "gpues-series/1") {
		t.Errorf("series header %q", lines[0])
	}

	_, body = get(t, base+"/trace/last?n=1")
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/trace/last not JSON: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0]["kind"] != "fault-raised" {
		t.Errorf("/trace/last = %s", body)
	}
	if code, _ := get(t, base+"/trace/last?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n returned %d", code)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", code)
	}
}

// TestConcurrentPublishAndServe drives publishes and reads in parallel;
// under -race this proves the atomic-snapshot handoff is race-clean.
func TestConcurrentPublishAndServe(t *testing.T) {
	s, base := startServer(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := int64(1); c <= 50; c++ {
			s.PublishTelemetry(testSnapshot(c * 1000))
			s.SetCampaign(int(c), 50, fmt.Sprintf("run %d", c))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, ep := range []string{"/status", "/metrics", "/series", "/trace/last?n=4"} {
					if code, _ := get(t, base+ep); code != http.StatusOK {
						t.Errorf("%s = %d", ep, code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
