// Package na is the noalloc analyzer's golden corpus.
package na

import "fmt"

type buf struct {
	data []int
	s    string
}

func (b *buf) id() int       { return len(b.data) }
func (b *buf) fill(n int)    { b.data = append(b.data, n) }
func run(fn func())          { fn() }
func sink(any)               {}
func sinkInt(int)            {}

// --- flagged constructs ------------------------------------------------

//simlint:noalloc
func allocators(b *buf, n int, s string) {
	b.data = make([]int, n) // want "make allocates"
	p := new(buf)           // want "new allocates"
	_ = p
	x := []int{1, 2, 3} // want "slice literal allocates"
	_ = x
	m := map[string]int{} // want "map literal allocates"
	_ = m
	q := &buf{} // want "&composite literal escapes"
	_ = q
	b.s = s + "!" // want "non-constant string concatenation allocates"
	bs := []byte(s) // want "string/slice conversion copies"
	_ = bs
}

//simlint:noalloc
func closures(b *buf) {
	f := func() {} // want "closure \\(func literal\\) allocates"
	run(f)
	go b.fill(1) // want "go statement allocates"
	g := b.id    // want "method value b.id allocates a bound-method closure"
	_ = g
}

//simlint:noalloc
func boxing(n int) any {
	sink(n)          // want "value of type int boxed into .* allocates"
	fmt.Sprint("x")  // want "fmt.Sprint allocates" "value of type string boxed into .* allocates"
	var v any = 3.14 // want "value of type float64 boxed into .* allocates"
	_ = v
	return n // want "value of type int boxed into .* allocates"
}

// --- clean patterns (no diagnostics allowed) ---------------------------

//simlint:noalloc
func clean(b *buf, n int) int {
	if len(b.data) == 0 {
		return 0
	}
	b.data = b.data[:0]
	b.data = append(b.data, n) // plain append: in-capacity appends are free
	var total int
	for _, v := range b.data {
		total += v
	}
	b.fill(total) // callees are checked via their own annotations
	sinkInt(total)
	sink(b)   // pointers store in the interface word without boxing
	sink(nil) // nil never boxes
	return total
}

//simlint:noalloc
func growPath(b *buf, n int) {
	if cap(b.data) < n {
		//simlint:ignore noalloc amortised grow path, runs once per high-water mark
		b.data = make([]int, n)
	}
	b.data = b.data[:n]
}

func unannotated() []int {
	return []int{1} // unchecked: no //simlint:noalloc annotation
}
