package workloads

import (
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
)

// Dense-compute Parboil workloads: sgemm, stencil, lbm, sad.

func init() {
	register(Workload{
		Name:        "sgemm",
		Suite:       "parboil",
		Description: "dense matrix multiply, shared-memory tiled, compute bound with heavy inter-block reuse of B",
		Build:       buildSGEMM,
	})
	register(Workload{
		Name:        "stencil",
		Suite:       "parboil",
		Description: "5-point Jacobi stencil over a 2D grid, streaming with halo reuse between neighbouring blocks",
		Build:       buildStencil,
	})
	register(Workload{
		Name:        "lbm",
		Suite:       "parboil",
		Description: "lattice-Boltzmann step (D2Q9), 255 registers/thread forcing 8-warp occupancy, pointer-increment load chains",
		Build:       buildLBM,
	})
	register(Workload{
		Name:        "sad",
		Suite:       "parboil",
		Description: "sum of absolute differences block matching, integer streaming with reference reuse",
		Build:       buildSAD,
	})
}

// buildSGEMM: C[M x N] = A[M x K] * B[K x N], float64 row-major.
// Each 128-thread block computes a 4 x 128 tile of C: its strip of A is
// staged in shared memory, B columns are read coalesced from global
// memory and fully reused across block rows.
func buildSGEMM(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	const (
		tileM = 4
		tileN = 128
		K     = 48
	)
	M := 256
	N := 384 * p.Scale

	c := newBuildCtx(p.Seed)
	aBuf := c.buffer("A", M*K*8, p.Placement.Inputs)
	bBuf := c.buffer("B", K*N*8, p.Placement.Inputs)
	cBuf := c.buffer("C", M*N*8, p.Placement.Outputs)
	c.fillF64(aBuf, M*K)
	c.fillF64(bBuf, K*N)

	// Staged A strip plus double-buffered B tile: 8 KB of shared memory
	// caps occupancy at 4 blocks (16 warps), like the original's tiles.
	b := kernel.NewBuilder("sgemm").SetSharedMem(8 * 1024)
	pA := b.AddParam(aBuf)
	pB := b.AddParam(bBuf)
	pC := b.AddParam(cBuf)
	pBlocksI := b.AddParam(uint64(M / tileM)) // blocks along M

	tid := b.Reg()
	ctaid := b.Reg()
	bi := b.Reg() // block row index
	bj := b.Reg() // block column index
	blocksI := b.Reg()
	tmp := b.Reg()
	j := b.Reg() // this thread's C column
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	b.LoadParam(blocksI, pBlocksI)

	// bi = ctaid % blocksI; bj = ctaid / blocksI. blocksI is a power of
	// two by construction (M = 32*scale, tileM = 4 -> 8*scale; require
	// scale power of two is too strict, so compute with multiply-sub).
	// bj = ctaid / blocksI via iterative subtract is wasteful; instead
	// lay the grid out as bj-major and recover indices with IMul/ISub:
	// since the emulator has no divide, the launch passes blocksI and
	// the kernel uses repeated shift-free decomposition: grid is
	// organized so that ctaid = bj*blocksI + bi.
	// bj = high part: computed with multiply by reciprocal is overkill;
	// use the fact that bi occupies log2(blocksI) bits when blocksI is a
	// power of two. M/tileM = 8*scale: the builder rounds blocksI up to
	// a power of two and pads the grid.
	b.And(bi, ctaid, isa.RZ, int64(nextPow2(M/tileM)-1))
	b.Shr(bj, ctaid, int64(log2(nextPow2(M/tileM))))

	// Guard padded blocks: bi >= blocksI -> exit.
	pred := b.Reg()
	done := b.NewLabel()
	b.SetP(isa.CmpGE, pred, bi, blocksI, 0)
	b.BraIfUniform(pred, false, done)

	// Stage the A strip (tileM x K) into shared memory: thread t copies
	// elements t, t+128, ... of the strip.
	aAddr := b.Reg()
	sOff := b.Reg()
	row := b.Reg()
	col := b.Reg()
	v := b.Reg()
	// strip element e -> A[bi*tileM + e/K][e%K]
	for e := 0; e < tileM*K/tileN; e++ { // tileM*K/128 iterations per thread
		idx := b.Reg()
		b.IAdd(idx, tid, isa.RZ, int64(e*tileN))
		b.Shr(row, idx, int64(log2(K)))
		b.And(col, idx, isa.RZ, int64(K-1))
		// aAddr = A + ((bi*tileM+row)*K + col)*8
		b.IMul(aAddr, bi, isa.RZ, tileM)
		b.IAdd(aAddr, aAddr, row, 0)
		b.IMul(aAddr, aAddr, isa.RZ, K)
		b.IAdd(aAddr, aAddr, col, 0)
		b.Shl(aAddr, aAddr, 3)
		b.LoadParam(v, pA)
		b.IAdd(aAddr, aAddr, v, 0)
		b.LdGlobal(v, aAddr, 0, 8)
		b.Shl(sOff, idx, 3)
		b.StShared(sOff, 0, v, 8)
	}
	b.Bar()

	// j = bj*tileN + tid; bAddr walks column j down B.
	b.IMul(j, bj, isa.RZ, tileN)
	b.IAdd(j, j, tid, 0)
	bAddr := b.Reg()
	b.Shl(bAddr, j, 3)
	b.LoadParam(tmp, pB)
	b.IAdd(bAddr, bAddr, tmp, 0)

	acc := make([]isa.Reg, tileM)
	for i := range acc {
		acc[i] = b.Reg()
		b.MovI(acc[i], 0)
	}
	bv := b.Reg()
	av := b.Reg()
	uniformLoop(b, K, func(k isa.Reg) {
		b.LdGlobal(bv, bAddr, 0, 8)
		b.IAdd(bAddr, bAddr, isa.RZ, int64(N*8))
		for i := 0; i < tileM; i++ {
			// shared[i*K + k]
			b.IAdd(sOff, k, isa.RZ, int64(i*K))
			b.Shl(sOff, sOff, 3)
			b.LdShared(av, sOff, 0, 8)
			b.FFma(acc[i], av, bv, acc[i])
		}
	})

	// C[bi*tileM + i][j] = acc[i]
	cAddr := b.Reg()
	for i := 0; i < tileM; i++ {
		b.IMul(cAddr, bi, isa.RZ, tileM)
		b.IAdd(cAddr, cAddr, isa.RZ, int64(i))
		b.IMul(cAddr, cAddr, isa.RZ, int64(N))
		b.IAdd(cAddr, cAddr, j, 0)
		b.Shl(cAddr, cAddr, 3)
		b.LoadParam(tmp, pC)
		b.IAdd(cAddr, cAddr, tmp, 0)
		b.StGlobal(cAddr, 0, acc[i], 8)
	}
	b.Bind(done)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	grid := nextPow2(M/tileM) * (N / tileN)
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: grid}, Block: kernel.Dim3{X: tileN}}
	return c.spec(l), nil
}

// buildStencil: out[y][x] = c0*in[y][x] + c1*(N+S+E+W) over an NxN
// float64 grid; one 128-thread block per row segment.
func buildStencil(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	N := 256 * p.Scale // grid edge; rows are N wide
	const (
		seg          = 128
		rowsPerBlock = 8 // the original's z-loop: each block sweeps a slab
	)

	c := newBuildCtx(p.Seed)
	inBuf := c.buffer("in", N*N*8, p.Placement.Inputs)
	outBuf := c.buffer("out", N*N*8, p.Placement.Outputs)
	c.fillF64(inBuf, N*N)

	// Halo staging buffers: 8 KB of shared memory (occupancy 4).
	b := kernel.NewBuilder("stencil").SetSharedMem(8 * 1024)
	pIn := b.AddParam(inBuf)
	pOut := b.AddParam(outBuf)

	tid := b.Reg()
	ctaid := b.Reg()
	y0 := b.Reg()
	x := b.Reg()
	segs := N / seg
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	// y0 = 1 + (ctaid/segs)*rowsPerBlock ; x = (ctaid%segs)*seg + tid
	b.Shr(y0, ctaid, int64(log2(segs)))
	b.IMul(y0, y0, isa.RZ, rowsPerBlock)
	b.IAdd(y0, y0, isa.RZ, 1)
	b.And(x, ctaid, isa.RZ, int64(segs-1))
	b.IMul(x, x, isa.RZ, seg)
	b.IAdd(x, x, tid, 0)

	// Interior-only x: edge lanes skip the whole slab.
	pEdge := b.Reg()
	skip := b.NewLabel()
	recon := b.NewLabel()
	b.SetP(isa.CmpEQ, pEdge, x, isa.RZ, 0)
	tmp := b.Reg()
	b.SetP(isa.CmpGE, tmp, x, isa.RZ, int64(N-1))
	b.Or(pEdge, pEdge, tmp, 0)
	b.BraIf(pEdge, false, skip, recon)

	center := b.Reg()
	sum := b.Reg()
	v := b.Reg()
	addr := b.Reg()
	oaddr := b.Reg()
	base := b.Reg()
	obase := b.Reg()
	cc := b.Reg()
	ce := b.Reg()
	b.FMovI(cc, 0.5)
	b.FMovI(ce, 0.125)
	b.LoadParam(base, pIn)
	b.LoadParam(obase, pOut)
	// addr walks down the slab one row per iteration.
	b.IMul(addr, y0, isa.RZ, int64(N))
	b.IAdd(addr, addr, x, 0)
	b.Shl(addr, addr, 3)
	b.IAdd(oaddr, addr, obase, 0)
	b.IAdd(addr, addr, base, 0)
	uniformLoop(b, rowsPerBlock, func(z isa.Reg) {
		b.LdGlobal(center, addr, 0, 8)
		b.LdGlobal(sum, addr, -8, 8) // west
		b.LdGlobal(v, addr, 8, 8)    // east
		b.FAdd(sum, sum, v)
		b.LdGlobal(v, addr, int64(-N*8), 8) // north
		b.FAdd(sum, sum, v)
		b.LdGlobal(v, addr, int64(N*8), 8) // south
		b.FAdd(sum, sum, v)
		b.FMul(center, center, cc)
		b.FFma(center, sum, ce, center)
		b.StGlobal(oaddr, 0, center, 8)
		b.IAdd(addr, addr, isa.RZ, int64(N*8))
		b.IAdd(oaddr, oaddr, isa.RZ, int64(N*8))
	})
	b.Bind(skip)
	b.Bind(recon)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	grid := segs * ((N - 2) / rowsPerBlock)
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: grid}, Block: kernel.Dim3{X: seg}}
	return c.spec(l), nil
}

// buildLBM: one D2Q9 lattice-Boltzmann collision+stream step over
// `cells` sites. 9 distribution arrays in, 9 out, laid out SoA and
// walked with the load/increment idiom. 255 registers per thread cap
// the SM at 8 resident warps, starving it of TLP exactly like Parboil's
// lbm (Section 5.2).
func buildLBM(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	const (
		dirs           = 7
		cellsPerThread = 6 // each thread streams several sites, like the original's z-loop
	)
	cells := 18432 * p.Scale
	threads := cells / cellsPerThread

	c := newBuildCtx(p.Seed)
	inBuf := c.buffer("f-in", dirs*cells*8, p.Placement.Inputs)
	outBuf := c.buffer("f-out", dirs*cells*8, p.Placement.Outputs)
	c.fillF64(inBuf, dirs*cells)

	b := kernel.NewBuilder("lbm").SetRegsPerThread(255)
	pIn := b.AddParam(inBuf)
	pOut := b.AddParam(outBuf)

	tid := b.Reg()
	ctaid := b.Reg()
	blockBase := b.Reg()
	b.S2R(tid, isa.SRTidX)
	b.S2R(ctaid, isa.SRCtaIDX)
	// Each block owns a contiguous run of 128*cellsPerThread cells, so
	// successive iterations of a warp stay on the same pages (L1 TLB
	// resident) while each access is unit-stride across lanes.
	b.IMul(blockBase, ctaid, isa.RZ, int64(128*cellsPerThread))
	b.IAdd(blockBase, blockBase, tid, 0)
	addr := b.Reg()
	inBase := b.Reg()
	outBase := b.Reg()
	stride := int64(cells * 8)
	b.LoadParam(inBase, pIn)
	b.LoadParam(outBase, pOut)

	f := make([]isa.Reg, dirs)
	for d := range f {
		f[d] = b.Reg()
	}
	rho := b.Reg()
	ux := b.Reg()
	uy := b.Reg()
	w := b.Reg()
	omega := b.Reg()
	diff := b.Reg()
	cell := b.Reg()
	b.FMovI(w, 0.1111111)
	b.FMovI(omega, 1.85)

	uniformLoop(b, cellsPerThread, func(it isa.Reg) {
		// cell = blockBase + it*128: block-contiguous grid stride.
		b.IMul(cell, it, isa.RZ, 128)
		b.IAdd(cell, cell, blockBase, 0)
		// Load the distributions through one walking pointer — the
		// ld/iadd chain on a single address register reused under
		// register pressure is what makes lbm the replay-queue scheme's
		// worst case (Section 5.2). The compiler interleaves collision
		// arithmetic of the previous direction between the pairs.
		b.Shl(addr, cell, 3)
		b.IAdd(addr, addr, inBase, 0)
		b.MovI(rho, 0)
		for d := 0; d < dirs; d++ {
			emitLoadStream(b, f[d], addr, stride, 8)
			if d > 0 {
				// Relaxation chain of the previous direction, independent
				// of the in-flight load.
				b.FFma(diff, uy, f[d-1], ux)
				b.FAdd(diff, diff, rho)
				b.FMul(diff, diff, w)
				b.FSub(diff, diff, f[d-1])
				b.FFma(f[d-1], omega, diff, f[d-1])
				b.FAdd(rho, rho, f[d-1])
			}
		}
		b.FMul(ux, rho, w)
		b.FMul(uy, ux, w)
		b.FFma(uy, ux, ux, uy)
		last := dirs - 1
		b.FFma(diff, uy, f[last], ux)
		b.FAdd(diff, diff, rho)
		b.FMul(diff, diff, w)
		b.FSub(diff, diff, f[last])
		b.FFma(f[last], omega, diff, f[last])
		// Stream: write back through a walking pointer.
		b.Shl(addr, cell, 3)
		b.IAdd(addr, addr, outBase, 0)
		for d := 0; d < dirs; d++ {
			emitStoreStream(b, f[d], addr, stride, 8)
		}
	})
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: threads / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildSAD: block-matching sum of absolute differences. Each thread
// evaluates one candidate position: 16 reference values (shared across
// the warp, cache resident) against 16 frame values (streaming).
func buildSAD(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	const window = 16
	candidates := 32768 * p.Scale

	c := newBuildCtx(p.Seed)
	refBuf := c.buffer("ref", window*8, p.Placement.Inputs)
	frameBuf := c.buffer("frame", (candidates+window)*8, p.Placement.Inputs)
	outBuf := c.buffer("sad", candidates*8, p.Placement.Outputs)
	c.fillU64(refBuf, window, 256)
	c.fillU64(frameBuf, candidates+window, 256)

	b := kernel.NewBuilder("sad")
	pRef := b.AddParam(refBuf)
	pFrame := b.AddParam(frameBuf)
	pOut := b.AddParam(outBuf)

	gid := emitGlobalTID(b)
	refA := b.Reg()
	frmA := b.Reg()
	acc := b.Reg()
	a := b.Reg()
	d := b.Reg()
	d2 := b.Reg()
	tmp := b.Reg()
	b.LoadParam(refA, pRef)
	b.Shl(frmA, gid, 3)
	b.LoadParam(tmp, pFrame)
	b.IAdd(frmA, frmA, tmp, 0)
	b.MovI(acc, 0)
	uniformLoop(b, window, func(i isa.Reg) {
		off := b.Reg()
		b.Shl(off, i, 3)
		ra := b.Reg()
		b.IAdd(ra, refA, off, 0)
		b.LdGlobal(a, ra, 0, 8)
		fa := b.Reg()
		b.IAdd(fa, frmA, off, 0)
		b.LdGlobal(d, fa, 0, 8)
		// |a - d| = max(a-d, d-a)
		b.ISub(d2, a, d)
		b.ISub(d, d, a)
		b.IMax(d, d, d2)
		b.IAdd(acc, acc, d, 0)
	})
	outA := b.Reg()
	b.Shl(outA, gid, 3)
	b.LoadParam(tmp, pOut)
	b.IAdd(outA, outA, tmp, 0)
	b.StGlobal(outA, 0, acc, 8)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: candidates / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// log2 of a power of two.
func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
