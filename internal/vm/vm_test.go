package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageTableLookupUnmapped(t *testing.T) {
	pt, err := NewPageTable(4096)
	if err != nil {
		t.Fatal(err)
	}
	if e := pt.Lookup(0x123456); e.State != PageUnmapped {
		t.Errorf("unmapped lookup = %v", e)
	}
	if pt.MappedPages() != 0 {
		t.Errorf("MappedPages = %d, want 0", pt.MappedPages())
	}
}

func TestPageTableSetLookup(t *testing.T) {
	pt, _ := NewPageTable(4096)
	pt.Set(0x7f0000001000, PTE{State: PageGPU, PA: 0xabc000})
	e := pt.Lookup(0x7f0000001fff) // any offset within the page
	if e.State != PageGPU || e.PA != 0xabc000 {
		t.Errorf("lookup = %+v", e)
	}
	if pt.MappedPages() != 1 {
		t.Errorf("MappedPages = %d, want 1", pt.MappedPages())
	}
	// Neighbouring pages unaffected.
	if e := pt.Lookup(0x7f0000000000); e.State != PageUnmapped {
		t.Errorf("neighbour mapped: %+v", e)
	}
	// Unmap decrements the count.
	pt.Set(0x7f0000001000, PTE{})
	if pt.MappedPages() != 0 {
		t.Errorf("MappedPages after unmap = %d", pt.MappedPages())
	}
}

func TestPageTableRejectsBadPageSize(t *testing.T) {
	for _, s := range []int{0, -4096, 3000} {
		if _, err := NewPageTable(s); err == nil {
			t.Errorf("NewPageTable(%d) must fail", s)
		}
	}
}

func TestForRange(t *testing.T) {
	pt, _ := NewPageTable(4096)
	var pages []uint64
	pt.ForRange(4096+100, 8192, func(p uint64) { pages = append(pages, p) })
	// [4196, 12388) covers pages 4096, 8192, 12288.
	want := []uint64{4096, 8192, 12288}
	if len(pages) != len(want) {
		t.Fatalf("ForRange pages = %v, want %v", pages, want)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Errorf("page[%d] = %#x, want %#x", i, pages[i], want[i])
		}
	}
	pages = nil
	pt.ForRange(0, 0, func(p uint64) { pages = append(pages, p) })
	if len(pages) != 0 {
		t.Errorf("empty range visited %v", pages)
	}
}

// Property: a set of random mappings reads back exactly, against a map
// shadow.
func TestPageTableQuickConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt, _ := NewPageTable(4096)
		shadow := make(map[uint64]PTE)
		for i := 0; i < 200; i++ {
			va := uint64(rng.Intn(1<<30)) &^ 4095
			e := PTE{State: PageState(rng.Intn(3)), PA: rng.Uint64(), Dirty: rng.Intn(2) == 0}
			pt.Set(va, e)
			shadow[va] = e
		}
		mapped := 0
		for va, e := range shadow {
			got := pt.Lookup(va)
			if got != e {
				return false
			}
			if e.State != PageUnmapped {
				mapped++
			}
		}
		return pt.MappedPages() == mapped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPhysAllocatorBasic(t *testing.T) {
	a, err := NewPhysAllocator(0x1000, 16*4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != 16 {
		t.Errorf("FreeFrames = %d, want 16", a.FreeFrames())
	}
	f1, err := a.Alloc()
	if err != nil || f1 != 0x1000 {
		t.Errorf("first frame = %#x, err %v", f1, err)
	}
	f2, _ := a.Alloc()
	if f2 == f1 {
		t.Error("duplicate frame")
	}
	if a.Allocated() != 2 {
		t.Errorf("Allocated = %d", a.Allocated())
	}
	if err := a.Free(f1); err != nil {
		t.Fatal(err)
	}
	f3, _ := a.Alloc()
	if f3 != f1 {
		t.Errorf("freed frame not reused: got %#x want %#x", f3, f1)
	}
}

func TestPhysAllocatorExhaustion(t *testing.T) {
	a, _ := NewPhysAllocator(0, 2*4096, 4096)
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err == nil {
		t.Error("third alloc from 2-frame pool must fail")
	}
}

func TestPhysAllocatorFreeValidation(t *testing.T) {
	a, _ := NewPhysAllocator(0x10000, 4*4096, 4096)
	if err := a.Free(0x5000); err == nil {
		t.Error("free outside range must fail")
	}
	if err := a.Free(0x10001); err == nil {
		t.Error("unaligned free must fail")
	}
}

func TestPhysAllocatorPartition(t *testing.T) {
	a, _ := NewPhysAllocator(0, 64*4096, 4096)
	parts, err := a.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	seen := make(map[uint64]bool)
	for _, p := range parts {
		if p.FreeFrames() != 16 {
			t.Errorf("partition frames = %d, want 16", p.FreeFrames())
		}
		for {
			f, err := p.Alloc()
			if err != nil {
				break
			}
			if seen[f] {
				t.Fatalf("frame %#x handed out twice", f)
			}
			seen[f] = true
		}
	}
	if len(seen) != 64 {
		t.Errorf("total frames = %d, want 64", len(seen))
	}
	if _, err := a.Alloc(); err == nil {
		t.Error("parent must be empty after partition")
	}
}

// Property: alloc/free interleavings never hand out a frame twice and
// never exceed capacity.
func TestPhysAllocatorQuickNoDoubleAlloc(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const frames = 32
		a, _ := NewPhysAllocator(0, frames*4096, 4096)
		live := make(map[uint64]bool)
		for i := 0; i < 500; i++ {
			if rng.Intn(2) == 0 && len(live) < frames {
				f, err := a.Alloc()
				if err != nil {
					return false
				}
				if live[f] {
					return false // double allocation
				}
				live[f] = true
			} else if len(live) > 0 {
				for f := range live {
					if a.Free(f) != nil {
						return false
					}
					delete(live, f)
					break
				}
			}
			if a.Allocated() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func newTestAS(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := NewAddressSpace(4096, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestClassifyDecisionTree(t *testing.T) {
	as := newTestAS(t)
	if err := as.AddRegion(Region{Name: "in", Base: 0x10000, Size: 0x10000, Kind: RegionCPUInit}); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRegion(Region{Name: "out", Base: 0x30000, Size: 0x10000, Kind: RegionLazy}); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRegion(Region{Name: "pre", Base: 0x50000, Size: 0x10000, Kind: RegionGPUInit}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		va   uint64
		want FaultKind
	}{
		{0x10000, FaultMigrate},   // CPU-dirty input
		{0x1ffff, FaultMigrate},   // last byte of input
		{0x30000, FaultAllocOnly}, // lazy output, first touch
		{0x50000, FaultNone},      // pre-placed in GPU
		{0x90000, FaultInvalid},   // outside all regions
	}
	for _, c := range cases {
		if got := as.Classify(c.va); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.va, got, c.want)
		}
	}
}

func TestMapToGPUMigration(t *testing.T) {
	as := newTestAS(t)
	if err := as.AddRegion(Region{Name: "in", Base: 0x10000, Size: 0x2000, Kind: RegionCPUInit}); err != nil {
		t.Fatal(err)
	}
	cpuBefore := as.CPUPhys.Allocated()
	transferred, err := as.MapToGPU(0x10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !transferred {
		t.Error("migration of dirty CPU page must transfer data")
	}
	if as.Classify(0x10000) != FaultNone {
		t.Error("page must be GPU-resident after migration")
	}
	if as.CPUPhys.Allocated() != cpuBefore-1 {
		t.Error("CPU frame must be freed after migration")
	}
	// Second map is a no-op.
	transferred, err = as.MapToGPU(0x10000, nil)
	if err != nil || transferred {
		t.Errorf("re-map: transferred=%v err=%v", transferred, err)
	}
}

func TestMapToGPULazyAllocation(t *testing.T) {
	as := newTestAS(t)
	if err := as.AddRegion(Region{Name: "heap", Base: 0x40000, Size: 0x4000, Kind: RegionLazy}); err != nil {
		t.Fatal(err)
	}
	transferred, err := as.MapToGPU(0x40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if transferred {
		t.Error("lazy allocation must not transfer data")
	}
	if as.ResidentGPUPages() != 1 {
		t.Errorf("resident pages = %d, want 1", as.ResidentGPUPages())
	}
}

func TestMapToGPUWithPrivateAllocator(t *testing.T) {
	as := newTestAS(t)
	if err := as.AddRegion(Region{Name: "heap", Base: 0x40000, Size: 0x10000, Kind: RegionLazy}); err != nil {
		t.Fatal(err)
	}
	parts, err := as.GPUPhys.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapToGPU(0x40000, parts[2]); err != nil {
		t.Fatal(err)
	}
	if parts[2].Allocated() != 1 {
		t.Errorf("partition 2 allocated = %d, want 1", parts[2].Allocated())
	}
	pte := as.GPUTable.Lookup(0x40000)
	if !pte.Present() {
		t.Error("page not mapped")
	}
}

func TestMapToGPUInvalid(t *testing.T) {
	as := newTestAS(t)
	if _, err := as.MapToGPU(0xdead0000, nil); err == nil {
		t.Error("mapping an unregistered address must fail")
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	as := newTestAS(t)
	if err := as.AddRegion(Region{Name: "a", Base: 0x1000, Size: 0x2000, Kind: RegionLazy}); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRegion(Region{Name: "b", Base: 0x2000, Size: 0x2000, Kind: RegionLazy}); err == nil {
		t.Error("overlapping region must be rejected")
	}
	if err := as.AddRegion(Region{Name: "empty", Base: 0x9000, Size: 0, Kind: RegionLazy}); err == nil {
		t.Error("empty region must be rejected")
	}
}

func TestRegionGPUInitPreallocates(t *testing.T) {
	as := newTestAS(t)
	if err := as.AddRegion(Region{Name: "pre", Base: 0, Size: 8 * 4096, Kind: RegionGPUInit}); err != nil {
		t.Fatal(err)
	}
	if as.GPUPhys.Allocated() != 8 {
		t.Errorf("GPU frames = %d, want 8", as.GPUPhys.Allocated())
	}
	if as.ResidentGPUPages() != 8 {
		t.Errorf("resident = %d, want 8", as.ResidentGPUPages())
	}
}
