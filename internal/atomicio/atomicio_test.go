package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := WriteFile(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q, wrote %q", got, "hello")
	}
	// No .tmp sibling may survive a successful write.
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatalf("tmp sibling left behind: %v", err)
	}
	// Overwrite goes through the same path.
	if err := WriteFile(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("overwrite read %q", got)
	}
}

func TestWriteFileErrorKeepsDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := WriteFile(path, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// A write into a missing directory must fail without touching the
	// existing destination.
	if err := WriteFile(filepath.Join(dir, "missing", "rec.json"), []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "keep" {
		t.Fatalf("destination changed to %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type rec struct {
		Name   string `json:"name"`
		Cycles int64  `json:"cycles"`
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "rec.json") // parent created on demand
	want := rec{Name: "sgemm", Cycles: 101471}
	if err := WriteJSON(path, want); err != nil {
		t.Fatal(err)
	}
	var got rec
	if err := ReadJSON(path, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip %+v != %+v", got, want)
	}
}

// TestTornFile models a kill -9 mid-write: only the .tmp sibling
// exists. Readers must fail (record absent), and the tmp name must be
// recognizable so directory scans skip it.
func TestTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := os.WriteFile(path+TmpSuffix, []byte(`{"name":"half`), 0o644); err != nil {
		t.Fatal(err)
	}
	var v struct{ Name string }
	if err := ReadJSON(path, &v); !os.IsNotExist(err) {
		t.Fatalf("torn write visible at destination: %v", err)
	}
	if !IsTmp(path + TmpSuffix) {
		t.Fatal("IsTmp missed a .tmp name")
	}
	if IsTmp(path) {
		t.Fatal("IsTmp flagged a complete file")
	}
}

// TestCorruptFile: a destination holding garbage (torn by a non-atomic
// writer, or flipped bits) must fail ReadJSON rather than yield a
// half-decoded record.
func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := os.WriteFile(path, []byte(`{"name": "trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	var v struct{ Name string }
	if err := ReadJSON(path, &v); err == nil {
		t.Fatal("corrupt JSON decoded without error")
	}
}
