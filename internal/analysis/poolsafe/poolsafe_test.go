package poolsafe_test

import (
	"testing"

	"gpues/internal/analysis/analysistest"
	"gpues/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, poolsafe.Analyzer, "testdata/src/pool",
		"gpues/internal/analysis/poolsafe/testdata/src/pool")
}
