package sim

import (
	"fmt"

	"gpues/internal/chaos"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/kernel"
	"gpues/internal/obs"
)

// DefaultInvariantInterval is the cycle period of the structural
// invariant sweep during chaos runs when the plan does not choose one.
const DefaultInvariantInterval = 100_000

// AttachChaos wires a chaos plan through every injection hook of the
// system — fill-unit walker, CPU fault service, interconnect, SMs —
// binds it to the simulation clock, applies plan-level resource
// exhaustion, and enables the periodic invariant sweep. A nil plan is a
// no-op. Call before Run.
func (s *Simulator) AttachChaos(p *chaos.Plan) {
	if p == nil {
		return
	}
	s.chaos = p
	p.Bind(s.q.Now)
	s.fu.SetInjector(p)
	s.cpu.SetDelayer(p)
	s.link.SetJitter(p)
	for _, m := range s.sms {
		m.SetChaos(p)
	}
	cfg := p.Config()
	if cfg.ExhaustGPUMemory {
		s.as.GPUPhys.Exhaust(cfg.LeaveGPUFrames)
	}
	interval := cfg.InvariantInterval
	switch {
	case interval == 0:
		interval = DefaultInvariantInterval
	case interval < 0:
		interval = 0 // periodic sweep disabled; end-of-run sweep remains
	}
	s.sweepEvery = interval
	s.nextSweep = interval
}

// ChaosResult is the outcome of a chaos run: the timing result plus the
// injected-event log and the verdict of the restartability oracle.
type ChaosResult struct {
	*Result

	// Events is the injected-fault log; Fingerprint hashes it, so equal
	// seeds must yield equal fingerprints (bit-reproducibility).
	Events      []chaos.Event
	Fingerprint uint64
	// Summary is the one-line per-kind injection count.
	Summary string

	// Mismatches holds up to maxOracleMismatches bytes on which the
	// final memory disagrees with the functional oracle. Injected faults
	// must never change architectural results, so any entry here is a
	// restartability violation.
	Mismatches []emu.Mismatch
}

const maxOracleMismatches = 16

// OracleOK reports whether the final memory matched the oracle.
func (r *ChaosResult) OracleOK() bool { return len(r.Mismatches) == 0 }

// oracleMemory re-executes the whole grid functionally on mem (the
// cloned initial memory) and returns it: the architectural reference
// any timing run — however perturbed — must reproduce.
func oracleMemory(l *kernel.Launch, mem *emu.Memory, lineSize int) (*emu.Memory, error) {
	em, err := emu.New(l, mem, lineSize)
	if err != nil {
		return nil, err
	}
	for b := 0; b < l.Blocks(); b++ {
		if _, err := em.EmulateBlock(b); err != nil {
			return nil, err
		}
	}
	return mem, nil
}

// RunChaos builds a simulator for cfg/spec, attaches the plan, runs the
// launch, and checks the restartability property: the final functional
// memory must be byte-identical to a pure functional re-execution of
// the grid from the initial memory. A nil plan runs clean. The returned
// ChaosResult carries the event log and fingerprint even when the run
// itself fails (its Result is nil in that case).
func RunChaos(cfg config.Config, spec LaunchSpec, plan *chaos.Plan) (*ChaosResult, error) {
	return RunChaosTraced(cfg, spec, plan, nil)
}

// chaosRingSize bounds the default chaos flight recorder: enough for
// the recent fault-lifecycle history without retaining a full run.
const chaosRingSize = 4096

// chaosTraceFilter is the default chaos flight-recorder filter: the
// fault lifecycle plus context switching and both handler paths.
const chaosTraceFilter = "fault,switch,migrate,local"

// RunChaosTraced is RunChaos with an explicit tracer. When tr is nil, a
// small flight-recorder tracer (fault, switch, migrate and local
// events) is attached anyway, so a failing run's StallReport carries
// the recent fault-lifecycle history; pass a tracer built from
// obs.Options to keep it for export.
func RunChaosTraced(cfg config.Config, spec LaunchSpec, plan *chaos.Plan, tr *obs.Tracer) (*ChaosResult, error) {
	return RunChaosOpts(cfg, spec, plan, ChaosRunOptions{Tracer: tr})
}

// ChaosRunOptions carries the optional knobs of a chaos run.
type ChaosRunOptions struct {
	// Tracer to attach; nil attaches the default flight recorder.
	Tracer *obs.Tracer
	// CheckpointEvery/CheckpointDir enable periodic checkpoints.
	CheckpointEvery int64
	CheckpointDir   string
	// Resume is a checkpoint file (or a directory, whose latest valid
	// checkpoint is used) to restore before running. The plan must be
	// built from the same config and seed as the checkpointing run.
	Resume string
	// Telemetry, when non-nil, receives telemetry snapshots every
	// TelemetryEvery cycles (<= 0 selects the simulator default).
	Telemetry      TelemetrySink
	TelemetryEvery int64
}

// RunChaosOpts is RunChaosTraced plus checkpoint/resume knobs.
func RunChaosOpts(cfg config.Config, spec LaunchSpec, plan *chaos.Plan, opt ChaosRunOptions) (*ChaosResult, error) {
	initial := spec.Memory
	if initial == nil {
		return nil, fmt.Errorf("sim: launch spec needs memory")
	}
	snapshot := initial.Clone()

	s, err := New(cfg, spec)
	if err != nil {
		return nil, err
	}
	s.AttachChaos(plan)
	tr := opt.Tracer
	if tr == nil {
		mask, ferr := obs.ParseFilter(chaosTraceFilter)
		if ferr != nil {
			return nil, ferr
		}
		tr = obs.New(obs.Options{Filter: mask, RingSize: chaosRingSize})
	}
	s.AttachTracer(tr)
	s.CheckpointEvery = opt.CheckpointEvery
	s.CheckpointDir = opt.CheckpointDir
	if opt.Telemetry != nil {
		s.SetTelemetrySink(opt.Telemetry, opt.TelemetryEvery)
	}
	if opt.Resume != "" {
		path, rerr := ResolveCheckpoint(opt.Resume)
		if rerr != nil {
			return nil, rerr
		}
		if rerr := s.RestoreFile(path); rerr != nil {
			return nil, rerr
		}
	}
	r, err := s.Run()
	cr := &ChaosResult{
		Result:      r,
		Events:      plan.Events(),
		Fingerprint: plan.Fingerprint(),
		Summary:     plan.Summary(),
	}
	if err != nil {
		return cr, err
	}
	oracle, err := oracleMemory(spec.Launch, snapshot, cfg.SM.L1LineB)
	if err != nil {
		return cr, fmt.Errorf("sim: functional oracle failed: %w", err)
	}
	cr.Mismatches = spec.Memory.Diff(oracle, maxOracleMismatches)
	return cr, nil
}
