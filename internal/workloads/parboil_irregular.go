package workloads

import (
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/sim"
)

// Irregular-memory Parboil workloads: spmv, bfs, histo.

func init() {
	register(Workload{
		Name:        "spmv",
		Suite:       "parboil",
		Description: "CSR sparse matrix-vector product: one thread per row, data-dependent trip counts, scattered x gathers",
		Build:       buildSPMV,
	})
	register(Workload{
		Name:        "bfs",
		Suite:       "parboil",
		Description: "one level of frontier BFS: adjacency gathers, divergent visit checks, CAS visits and frontier append atomics",
		Build:       buildBFS,
	})
	register(Workload{
		Name:        "histo",
		Suite:       "parboil",
		Description: "large histogram: streaming reads, scattered atomic increments over a multi-page bin array",
		Build:       buildHisto,
	})
}

// buildSPMV: y = A*x with A in CSR form. Thread per row; row lengths
// are drawn from a skewed distribution so lanes of a warp finish at
// different times (warp divergence).
func buildSPMV(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	rows := 8192 * p.Scale
	const avgNNZ = 12

	c := newBuildCtx(p.Seed)
	// Generate row lengths: mostly short, a tail of longer rows.
	lens := make([]int, rows)
	total := 0
	for i := range lens {
		l := 2 + c.rng.Intn(avgNNZ)
		if c.rng.Intn(16) == 0 {
			l += 4 * avgNNZ
		}
		lens[i] = l
		total += l
	}
	rowPtrBuf := c.buffer("rowptr", (rows+1)*8, p.Placement.Inputs)
	colBuf := c.buffer("col", total*8, p.Placement.Inputs)
	valBuf := c.buffer("val", total*8, p.Placement.Inputs)
	xBuf := c.buffer("x", rows*8, p.Placement.Inputs)
	yBuf := c.buffer("y", rows*8, p.Placement.Outputs)

	off := 0
	for i := 0; i < rows; i++ {
		c.mem.WriteU64(rowPtrBuf+uint64(i*8), uint64(off))
		for j := 0; j < lens[i]; j++ {
			c.mem.WriteU64(colBuf+uint64((off+j)*8), uint64(c.rng.Intn(rows)))
			c.mem.WriteF64(valBuf+uint64((off+j)*8), c.rng.Float64())
		}
		off += lens[i]
	}
	c.mem.WriteU64(rowPtrBuf+uint64(rows*8), uint64(off))
	c.fillF64(xBuf, rows)

	b := kernel.NewBuilder("spmv")
	pRowPtr := b.AddParam(rowPtrBuf)
	pCol := b.AddParam(colBuf)
	pVal := b.AddParam(valBuf)
	pX := b.AddParam(xBuf)
	pY := b.AddParam(yBuf)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	rpA := b.Reg()
	start := b.Reg()
	end := b.Reg()
	b.Shl(rpA, gid, 3)
	b.LoadParam(tmp, pRowPtr)
	b.IAdd(rpA, rpA, tmp, 0)
	b.LdGlobal(start, rpA, 0, 8)
	b.LdGlobal(end, rpA, 8, 8)

	acc := b.Reg()
	i := b.Reg()
	colA := b.Reg()
	valA := b.Reg()
	col := b.Reg()
	v := b.Reg()
	xv := b.Reg()
	xBase := b.Reg()
	b.MovI(acc, 0)
	b.Mov(i, start)
	b.LoadParam(xBase, pX)
	divergentWhile(b, i, end, func() {
		// col = col[i]; v = val[i]; acc += v * x[col]
		b.Shl(colA, i, 3)
		b.LoadParam(tmp, pCol)
		b.IAdd(colA, colA, tmp, 0)
		b.LdGlobal(col, colA, 0, 8)
		b.Shl(valA, i, 3)
		b.LoadParam(tmp, pVal)
		b.IAdd(valA, valA, tmp, 0)
		b.LdGlobal(v, valA, 0, 8)
		b.Shl(col, col, 3)
		b.IAdd(col, col, xBase, 0)
		b.LdGlobal(xv, col, 0, 8)
		b.FFma(acc, v, xv, acc)
	})
	outA := b.Reg()
	b.Shl(outA, gid, 3)
	b.LoadParam(tmp, pY)
	b.IAdd(outA, outA, tmp, 0)
	b.StGlobal(outA, 0, acc, 8)
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: rows / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildBFS: one level of breadth-first search. Threads take frontier
// nodes, gather adjacency lists, claim unvisited neighbours with CAS
// and append them to the next frontier through an atomic cursor.
func buildBFS(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	nodes := 16384 * p.Scale
	const avgDeg = 8
	frontier := nodes / 4

	c := newBuildCtx(p.Seed)
	degs := make([]int, frontier)
	total := 0
	for i := range degs {
		degs[i] = 1 + c.rng.Intn(2*avgDeg)
		total += degs[i]
	}
	frontBuf := c.buffer("frontier", frontier*8, p.Placement.Inputs)
	adjPtrBuf := c.buffer("adjptr", (frontier+1)*8, p.Placement.Inputs)
	adjBuf := c.buffer("adj", total*8, p.Placement.Inputs)
	levelBuf := c.buffer("level", nodes*8, p.Placement.Outputs)
	nextBuf := c.buffer("next", (total+64)*8, p.Placement.Outputs)
	cursorBuf := c.buffer("cursor", 64, p.Placement.Outputs)

	off := 0
	for i := 0; i < frontier; i++ {
		c.mem.WriteU64(frontBuf+uint64(i*8), uint64(c.rng.Intn(nodes)))
		c.mem.WriteU64(adjPtrBuf+uint64(i*8), uint64(off))
		for j := 0; j < degs[i]; j++ {
			c.mem.WriteU64(adjBuf+uint64((off+j)*8), uint64(c.rng.Intn(nodes)))
		}
		off += degs[i]
	}
	c.mem.WriteU64(adjPtrBuf+uint64(frontier*8), uint64(off))

	b := kernel.NewBuilder("bfs")
	pAdjPtr := b.AddParam(adjPtrBuf)
	pAdj := b.AddParam(adjBuf)
	pLevel := b.AddParam(levelBuf)
	pNext := b.AddParam(nextBuf)
	pCursor := b.AddParam(cursorBuf)

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	a := b.Reg()
	start := b.Reg()
	end := b.Reg()
	b.Shl(a, gid, 3)
	b.LoadParam(tmp, pAdjPtr)
	b.IAdd(a, a, tmp, 0)
	b.LdGlobal(start, a, 0, 8)
	b.LdGlobal(end, a, 8, 8)

	i := b.Reg()
	nbr := b.Reg()
	lvlA := b.Reg()
	old := b.Reg()
	one := b.Reg()
	zero := b.Reg()
	slot := b.Reg()
	pUnvisited := b.Reg()
	b.Mov(i, start)
	b.MovI(one, 1)
	b.MovI(zero, 0)
	divergentWhile(b, i, end, func() {
		// nbr = adj[i]
		b.Shl(a, i, 3)
		b.LoadParam(tmp, pAdj)
		b.IAdd(a, a, tmp, 0)
		b.LdGlobal(nbr, a, 0, 8)
		// try to claim: old = CAS(level[nbr], 0, 1)
		b.Shl(lvlA, nbr, 3)
		b.LoadParam(tmp, pLevel)
		b.IAdd(lvlA, lvlA, tmp, 0)
		b.AtomGlobal(isa.AtomCAS, old, lvlA, one, zero, 8)
		// if old == 0 we claimed it: append to the next frontier.
		visited := b.NewLabel()
		recon := b.NewLabel()
		b.SetP(isa.CmpNE, pUnvisited, old, isa.RZ, 0)
		b.BraIf(pUnvisited, false, visited, recon)
		b.LoadParam(tmp, pCursor)
		b.AtomGlobal(isa.AtomAdd, slot, tmp, one, isa.RegNone, 8)
		b.Shl(slot, slot, 3)
		b.LoadParam(tmp, pNext)
		b.IAdd(slot, slot, tmp, 0)
		b.StGlobal(slot, 0, nbr, 8)
		b.Bind(visited)
		b.Bind(recon)
	})
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	// The frontier array itself is read by block indexing only to keep
	// the kernel focused on the gather/claim pattern.
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: frontier / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}

// buildHisto: each thread streams a strided slice of the input and
// atomically increments one of 64K bins per element — the scattered
// atomic pattern whose output pages make Figure 14's histo case.
func buildHisto(p Params) (sim.LaunchSpec, error) {
	p = p.normalize()
	elems := 131072 * p.Scale
	const bins = 131072
	const perThread = 4

	c := newBuildCtx(p.Seed)
	inBuf := c.buffer("in", elems*8, p.Placement.Inputs)
	histBuf := c.buffer("hist", bins*8, p.Placement.Outputs)
	c.fillU64(inBuf, elems, bins)

	// Per-block privatized histogram staging (Parboil's design): 8 KB of
	// shared memory, capping occupancy at 4 blocks.
	b := kernel.NewBuilder("histo").SetSharedMem(8 * 1024)
	pIn := b.AddParam(inBuf)
	pHist := b.AddParam(histBuf)
	threads := elems / perThread

	gid := emitGlobalTID(b)
	tmp := b.Reg()
	inA := b.Reg()
	vreg := b.Reg()
	binA := b.Reg()
	one := b.Reg()
	old := b.Reg()
	histBase := b.Reg()
	b.Shl(inA, gid, 3)
	b.LoadParam(tmp, pIn)
	b.IAdd(inA, inA, tmp, 0)
	b.LoadParam(histBase, pHist)
	b.MovI(one, 1)
	stride := int64(threads * 8)
	mix := b.Reg()
	uniformLoop(b, perThread, func(i isa.Reg) {
		b.LdGlobal(vreg, inA, 0, 8)
		b.IAdd(inA, inA, isa.RZ, stride)
		// Bin computation: the original transforms pixel coordinates
		// before binning; an integer mix chain models that work.
		b.IMul(mix, vreg, isa.RZ, 2654435761)
		b.Xor(mix, mix, vreg, 0)
		b.Shr(mix, mix, 7)
		b.IMul(mix, mix, isa.RZ, 0x9e3779b9)
		b.Xor(mix, mix, vreg, 0)
		b.Shr(mix, mix, 5)
		b.IAdd(mix, mix, vreg, 0)
		b.And(vreg, mix, isa.RZ, bins-1)
		b.Shl(binA, vreg, 3)
		b.IAdd(binA, binA, histBase, 0)
		b.AtomGlobal(isa.AtomAdd, old, binA, one, isa.RegNone, 8)
	})
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return sim.LaunchSpec{}, err
	}
	l := &kernel.Launch{Kernel: k, Grid: kernel.Dim3{X: threads / 128}, Block: kernel.Dim3{X: 128}}
	return c.spec(l), nil
}
