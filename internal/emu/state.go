package emu

import (
	"fmt"
	"sort"

	"gpues/internal/ckpt"
)

// SaveState serializes the sparse memory as a fingerprint: allocated
// bytes, chunk count, and a digest over every chunk's key and contents
// in ascending key order. Benchmark footprints reach hundreds of MiB,
// so checkpoints carry the digest and the contents are rebuilt by
// replay on restore.
func (m *Memory) SaveState(w *ckpt.Writer) {
	w.Int(m.allocated)
	w.Int(len(m.chunks))
	w.U64(m.digest())
}

// RestoreState reads the SaveState stream back and cross-checks the
// replayed memory image against it.
func (m *Memory) RestoreState(r *ckpt.Reader) error {
	allocated := r.Int()
	chunks := r.Int()
	digest := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if allocated != m.allocated || chunks != len(m.chunks) {
		return fmt.Errorf("emu: replayed memory has %d chunks/%d bytes, checkpoint has %d/%d",
			len(m.chunks), m.allocated, chunks, allocated)
	}
	if got := m.digest(); got != digest {
		return fmt.Errorf("emu: replayed memory digest %#016x, checkpoint has %#016x", got, digest)
	}
	return nil
}

func (m *Memory) digest() uint64 {
	keys := make([]uint64, 0, len(m.chunks))
	for k := range m.chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := ckpt.NewHasher()
	for _, k := range keys {
		h.U64(k)
		h.Bytes(m.chunks[k])
	}
	return h.Sum()
}
